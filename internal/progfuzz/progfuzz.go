// Package progfuzz generates random MC programs with fully defined
// behaviour: bounded counted loops, masked shift amounts, strictly positive
// divisors and in-bounds array indices. The programs exercise the whole
// stack — compiler, simulator, interpreter, CFG reconstruction, automatic
// loop-bound derivation and the IPET analysis — in differential and
// property tests.
package progfuzz

import (
	"fmt"
	"math/rand"
	"strings"
)

// MaxLoops is the number of reserved loop counter variables (it1..itN).
const MaxLoops = 10

// MaxLoopTrip is the largest generated loop trip count.
const MaxLoopTrip = 6

type gen struct {
	rng    *rand.Rand
	buf    strings.Builder
	loopID int
	vars   []string
}

func (g *gen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

func (g *gen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(2001)-1000)
		case 1:
			return g.pick(g.vars)
		case 2:
			return fmt.Sprintf("arr[%s & 7]", g.pick(g.vars))
		default:
			return fmt.Sprintf("(%s)", g.expr(0))
		}
	}
	switch g.rng.Intn(12) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("(%s / ((%s & 15) + 1))", g.expr(depth-1), g.expr(depth-1))
	case 4:
		return fmt.Sprintf("(%s %% ((%s & 15) + 1))", g.expr(depth-1), g.expr(depth-1))
	case 5:
		return fmt.Sprintf("(%s & %s)", g.expr(depth-1), g.expr(depth-1))
	case 6:
		return fmt.Sprintf("(%s | %s)", g.expr(depth-1), g.expr(depth-1))
	case 7:
		return fmt.Sprintf("(%s ^ %s)", g.expr(depth-1), g.expr(depth-1))
	case 8:
		return fmt.Sprintf("(%s << (%s & 7))", g.expr(depth-1), g.expr(depth-1))
	case 9:
		return fmt.Sprintf("(%s >> (%s & 7))", g.expr(depth-1), g.expr(depth-1))
	case 10:
		return fmt.Sprintf("(%s ? %s : %s)", g.cond(depth-1), g.expr(depth-1), g.expr(depth-1))
	default:
		// Parenthesized subtraction avoids gluing "-" onto a negative
		// literal (which would lex as "--").
		return fmt.Sprintf("(0 - %s)", g.expr(depth-1))
	}
}

func (g *gen) cond(depth int) string {
	ops := []string{"==", "!=", "<", "<=", ">", ">="}
	c := fmt.Sprintf("(%s %s %s)", g.expr(depth), g.pick(ops), g.expr(depth))
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s && %s)", c, g.cond(0))
	case 1:
		return fmt.Sprintf("(%s || %s)", c, g.cond(0))
	case 2:
		return "(!" + c + ")"
	}
	return c
}

func (g *gen) stmt(indent string, depth int) {
	switch g.rng.Intn(8) {
	case 0, 1, 2:
		lhs := g.pick(g.vars)
		if g.rng.Intn(3) == 0 {
			lhs = fmt.Sprintf("arr[%s & 7]", g.pick(g.vars))
		}
		op := g.pick([]string{"=", "+=", "-=", "*=", "^=", "|=", "&="})
		fmt.Fprintf(&g.buf, "%s%s %s %s;\n", indent, lhs, op, g.expr(2))
	case 3:
		if depth <= 0 {
			fmt.Fprintf(&g.buf, "%sglob += %s;\n", indent, g.expr(1))
			return
		}
		fmt.Fprintf(&g.buf, "%sif (%s) {\n", indent, g.cond(1))
		g.stmt(indent+"    ", depth-1)
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&g.buf, "%s} else {\n", indent)
			g.stmt(indent+"    ", depth-1)
		}
		fmt.Fprintf(&g.buf, "%s}\n", indent)
	case 4:
		if depth <= 0 || g.loopID >= MaxLoops {
			fmt.Fprintf(&g.buf, "%sglob ^= %s;\n", indent, g.expr(1))
			return
		}
		g.loopID++
		iv := fmt.Sprintf("it%d", g.loopID)
		n := g.rng.Intn(MaxLoopTrip) + 1
		fmt.Fprintf(&g.buf, "%sfor (%s = 0; %s < %d; %s++) {\n", indent, iv, iv, n, iv)
		g.stmt(indent+"    ", depth-1)
		fmt.Fprintf(&g.buf, "%s}\n", indent)
	case 5:
		fmt.Fprintf(&g.buf, "%sglob = helper(%s, %s);\n", indent, g.expr(1), g.expr(1))
	case 6:
		v := g.pick(g.vars)
		fmt.Fprintf(&g.buf, "%s%s%s;\n", indent, v, g.pick([]string{"++", "--"}))
	default:
		fmt.Fprintf(&g.buf, "%sglob += abs(%s);\n", indent, g.expr(1))
	}
}

// Generate builds a complete random program. The entry routine is
// f(int a, int b); the globals glob and arr[8] carry observable state.
func Generate(seed int64) string {
	g := &gen{rng: rand.New(rand.NewSource(seed))}
	g.vars = []string{"a", "b", "v0", "v1", "glob"}
	g.buf.WriteString("int glob;\nint arr[8];\n")
	g.buf.WriteString("int main() { return 0; }\n")
	g.buf.WriteString("int helper(int x, int y) {\n    return (x & 1023) * 3 - (y & 1023);\n}\n")
	g.buf.WriteString("int f(int a, int b) {\n")
	g.buf.WriteString("    int v0, v1")
	for i := 1; i <= MaxLoops; i++ {
		fmt.Fprintf(&g.buf, ", it%d", i)
	}
	g.buf.WriteString(";\n")
	g.buf.WriteString("    v0 = a * 3; v1 = b - 7;\n")
	g.buf.WriteString("   ")
	for i := 1; i <= MaxLoops; i++ {
		fmt.Fprintf(&g.buf, " it%d = 0;", i)
	}
	g.buf.WriteString("\n")
	nStmts := g.rng.Intn(6) + 3
	for i := 0; i < nStmts; i++ {
		g.stmt("    ", 2)
	}
	g.buf.WriteString("    return glob + v0 * 5 + v1 + arr[0] + arr[7] + it1;\n")
	g.buf.WriteString("}\n")
	return g.buf.String()
}
