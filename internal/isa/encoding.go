package isa

import "fmt"

// Instruction word layout:
//
//	bits 31..24  opcode
//	format R:    rd[23:20] rs1[19:16] rs2[15:12]
//	format I:    rd[23:20] rs1[19:16] imm16[15:0]   (imm sign-extended)
//	format B:    rs1[23:20] rs2[19:16] imm16[15:0]  (signed word offset from pc+4)
//	format J:    imm24[23:0]                        (absolute word address)

// Encode packs an instruction into its 32-bit machine word. It returns an
// error when an operand does not fit its field, so the assembler can report
// range problems at assembly time rather than producing corrupt images.
func Encode(ins Instruction) (uint32, error) {
	if !ins.Op.Valid() {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", ins.Op)
	}
	if ins.Rd >= NumIntRegs || ins.Rs1 >= NumIntRegs || ins.Rs2 >= NumIntRegs {
		return 0, fmt.Errorf("isa: encode %s: register field out of range", ins.Op)
	}
	w := uint32(ins.Op) << 24
	info := InfoFor(ins.Op)
	switch info.Format {
	case FmtNone:
		return w, nil
	case FmtR:
		w |= uint32(ins.Rd)<<20 | uint32(ins.Rs1)<<16 | uint32(ins.Rs2)<<12
		return w, nil
	case FmtI:
		if ins.Imm < -(1<<15) || ins.Imm >= 1<<15 {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of 16-bit range", ins.Op, ins.Imm)
		}
		w |= uint32(ins.Rd)<<20 | uint32(ins.Rs1)<<16 | uint32(uint16(ins.Imm))
		return w, nil
	case FmtB:
		if ins.Imm < -(1<<15) || ins.Imm >= 1<<15 {
			return 0, fmt.Errorf("isa: encode %s: branch offset %d out of 16-bit range", ins.Op, ins.Imm)
		}
		w |= uint32(ins.Rs1)<<20 | uint32(ins.Rs2)<<16 | uint32(uint16(ins.Imm))
		return w, nil
	case FmtJ:
		if ins.Imm < 0 || ins.Imm >= 1<<24 {
			return 0, fmt.Errorf("isa: encode %s: target word %d out of 24-bit range", ins.Op, ins.Imm)
		}
		w |= uint32(ins.Imm) & 0xffffff
		return w, nil
	}
	return 0, fmt.Errorf("isa: encode %s: unknown format", ins.Op)
}

// Decode unpacks a 32-bit machine word into an instruction.
func Decode(w uint32) (Instruction, error) {
	op := Opcode(w >> 24)
	if !op.Valid() {
		return Instruction{}, fmt.Errorf("isa: decode: invalid opcode byte %#x", w>>24)
	}
	ins := Instruction{Op: op}
	switch InfoFor(op).Format {
	case FmtNone:
	case FmtR:
		ins.Rd = uint8(w >> 20 & 0xf)
		ins.Rs1 = uint8(w >> 16 & 0xf)
		ins.Rs2 = uint8(w >> 12 & 0xf)
	case FmtI:
		ins.Rd = uint8(w >> 20 & 0xf)
		ins.Rs1 = uint8(w >> 16 & 0xf)
		ins.Imm = int32(int16(uint16(w & 0xffff)))
	case FmtB:
		ins.Rs1 = uint8(w >> 20 & 0xf)
		ins.Rs2 = uint8(w >> 16 & 0xf)
		ins.Imm = int32(int16(uint16(w & 0xffff)))
	case FmtJ:
		ins.Imm = int32(w & 0xffffff)
	}
	return ins, nil
}

// IsBlockTerminator reports whether the instruction ends a basic block in
// the sense of the paper's CFG construction: branches, jumps, calls (which
// carry f-edges to the callee CFG) and halt all terminate blocks.
func IsBlockTerminator(op Opcode) bool {
	info := InfoFor(op)
	return info.Branch || info.Jump || op == OpHalt
}
