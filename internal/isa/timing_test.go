package isa

import "testing"

func TestProfilesValidate(t *testing.T) {
	for name, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile key %q has Name %q", name, p.Name)
		}
	}
}

func TestI960KBMatchesInfoTable(t *testing.T) {
	p := I960KB()
	for op := Opcode(0); op < numOpcodes; op++ {
		if p.Exec[op] != InfoFor(op).ExecCycles {
			t.Errorf("%s: profile %d != info %d", op, p.Exec[op], InfoFor(op).ExecCycles)
		}
	}
	if p.BranchTakenPenalty != BranchTakenPenalty || p.LoadUseStall != LoadUseStall {
		t.Error("penalty mismatch")
	}
}

func TestDSP3210Character(t *testing.T) {
	dsp := DSP3210()
	gp := I960KB()
	if dsp.Exec[OpFmul] >= gp.Exec[OpFmul] {
		t.Error("DSP float multiply should be faster")
	}
	if dsp.Exec[OpMul] >= gp.Exec[OpMul] {
		t.Error("DSP integer multiply should ride the MAC")
	}
	if dsp.Exec[OpDiv] <= gp.Exec[OpDiv] {
		t.Error("DSP integer divide should be emulated (slower)")
	}
	if dsp.BranchTakenPenalty <= gp.BranchTakenPenalty {
		t.Error("DSP pipeline should pay more for taken branches")
	}
	if dsp.Exec[OpAdd] != gp.Exec[OpAdd] {
		t.Error("basic ALU should be unchanged")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	var nilT *Timing
	if err := nilT.Validate(); err == nil {
		t.Error("nil profile accepted")
	}
	bad := I960KB()
	bad.Exec[OpAdd] = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero latency accepted")
	}
	neg := I960KB()
	neg.LoadUseStall = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative stall accepted")
	}
}
