package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpcodeNamesUniqueAndRoundTrip(t *testing.T) {
	seen := map[string]Opcode{}
	for op := Opcode(0); op < numOpcodes; op++ {
		name := op.String()
		if name == "" {
			t.Fatalf("opcode %d has empty name", op)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("mnemonic %q used by both %d and %d", name, prev, op)
		}
		seen[name] = op
		back, ok := OpcodeByName(name)
		if !ok || back != op {
			t.Fatalf("OpcodeByName(%q) = %v, %v; want %v", name, back, ok, op)
		}
	}
}

func TestOpcodeByNameUnknown(t *testing.T) {
	if _, ok := OpcodeByName("frobnicate"); ok {
		t.Fatal("unknown mnemonic resolved")
	}
}

func TestEveryOpcodeHasPositiveCost(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		if InfoFor(op).ExecCycles <= 0 {
			t.Errorf("opcode %s has non-positive ExecCycles", op)
		}
	}
}

func TestEncodeDecodeAllFormats(t *testing.T) {
	cases := []Instruction{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSltu, Rd: 15, Rs1: 14, Rs2: 13},
		{Op: OpAddi, Rd: 4, Rs1: 5, Imm: -32768},
		{Op: OpAddi, Rd: 4, Rs1: 5, Imm: 32767},
		{Op: OpLui, Rd: 7, Imm: 4096},
		{Op: OpLw, Rd: 2, Rs1: 15, Imm: -8},
		{Op: OpSb, Rd: 3, Rs1: 6, Imm: 255},
		{Op: OpFld, Rd: 9, Rs1: 15, Imm: 16},
		{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: -100},
		{Op: OpBgeu, Rs1: 0, Rs2: 9, Imm: 12},
		{Op: OpJmp, Imm: 0xabcde},
		{Op: OpCall, Imm: 1},
		{Op: OpJr, Rs1: RegLR},
		{Op: OpFadd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpFcvtIF, Rd: 5, Rs1: 6},
		{Op: OpFeq, Rd: 2, Rs1: 3, Rs2: 4},
	}
	for _, ins := range cases {
		w, err := Encode(ins)
		if err != nil {
			t.Fatalf("Encode(%v): %v", ins, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", ins, err)
		}
		if got != ins {
			t.Fatalf("round trip: got %+v want %+v", got, ins)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Instruction{
		{Op: OpAddi, Rd: 1, Rs1: 2, Imm: 32768},
		{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -32769},
		{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 1 << 20},
		{Op: OpJmp, Imm: -1},
		{Op: OpJmp, Imm: 1 << 24},
		{Op: OpAdd, Rd: 16},
		{Op: Opcode(200)},
	}
	for _, ins := range bad {
		if _, err := Encode(ins); err == nil {
			t.Errorf("Encode(%+v) succeeded, want range error", ins)
		}
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	if _, err := Decode(uint32(numOpcodes) << 24); err == nil {
		t.Fatal("decoding invalid opcode byte succeeded")
	}
}

// TestEncodeDecodeQuick property-tests the round trip over randomly drawn
// well-formed instructions.
func TestEncodeDecodeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Instruction {
		op := Opcode(rng.Intn(int(numOpcodes)))
		ins := Instruction{Op: op}
		switch InfoFor(op).Format {
		case FmtR:
			ins.Rd = uint8(rng.Intn(NumIntRegs))
			ins.Rs1 = uint8(rng.Intn(NumIntRegs))
			ins.Rs2 = uint8(rng.Intn(NumIntRegs))
		case FmtI:
			ins.Rd = uint8(rng.Intn(NumIntRegs))
			ins.Rs1 = uint8(rng.Intn(NumIntRegs))
			ins.Imm = int32(rng.Intn(1<<16)) - 1<<15
		case FmtB:
			ins.Rs1 = uint8(rng.Intn(NumIntRegs))
			ins.Rs2 = uint8(rng.Intn(NumIntRegs))
			ins.Imm = int32(rng.Intn(1<<16)) - 1<<15
		case FmtJ:
			ins.Imm = int32(rng.Intn(1 << 24))
		}
		return ins
	}
	f := func(seed uint16) bool {
		_ = seed
		ins := gen()
		w, err := Encode(ins)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockTerminators(t *testing.T) {
	want := map[Opcode]bool{
		OpBeq: true, OpBne: true, OpBlt: true, OpBge: true, OpBltu: true, OpBgeu: true,
		OpJmp: true, OpCall: true, OpJr: true, OpHalt: true,
	}
	for op := Opcode(0); op < numOpcodes; op++ {
		if got := IsBlockTerminator(op); got != want[op] {
			t.Errorf("IsBlockTerminator(%s) = %v, want %v", op, got, want[op])
		}
	}
}

func TestStringForms(t *testing.T) {
	cases := map[string]Instruction{
		"nop":             {Op: OpNop},
		"add r1, r2, r3":  {Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		"addi r4, r5, -1": {Op: OpAddi, Rd: 4, Rs1: 5, Imm: -1},
		"lw r2, 8(r15)":   {Op: OpLw, Rd: 2, Rs1: 15, Imm: 8},
		"sw r2, -4(r13)":  {Op: OpSw, Rd: 2, Rs1: 13, Imm: -4},
		"fld f3, 0(r15)":  {Op: OpFld, Rd: 3, Rs1: 15},
		"lui r7, 16":      {Op: OpLui, Rd: 7, Imm: 16},
		"beq r1, r2, -3":  {Op: OpBeq, Rs1: 1, Rs2: 2, Imm: -3},
		"jr r14":          {Op: OpJr, Rs1: 14},
		"fadd f1, f2, f3": {Op: OpFadd, Rd: 1, Rs1: 2, Rs2: 3},
		"fsqrt f1, f2":    {Op: OpFsqrt, Rd: 1, Rs1: 2},
		"fcvtif f5, r6":   {Op: OpFcvtIF, Rd: 5, Rs1: 6},
		"fcvtfi r5, f6":   {Op: OpFcvtFI, Rd: 5, Rs1: 6},
		"feq r2, f3, f4":  {Op: OpFeq, Rd: 2, Rs1: 3, Rs2: 4},
		"jmp 0x400":       {Op: OpJmp, Imm: 0x100},
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", ins, got, want)
		}
	}
}
