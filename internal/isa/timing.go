package isa

import "fmt"

// Timing is a processor timing profile: per-opcode execute-stage latencies
// plus the pipeline penalty parameters. The simulator and the static cost
// model both consume the same profile, which is what keeps the analysis
// bracket sound per construction.
//
// The paper's conclusion reports "porting cinderella to handle programs
// running on other hardware platforms. In collaboration with AT&T, we have
// completed a port for the AT&T DSP3210 processor." Profiles make that
// port a data change: the same analysis runs against any table.
type Timing struct {
	Name string
	// Exec is the execute-stage latency per opcode.
	Exec [NumOpcodes]int
	// BranchTakenPenalty is the pipeline refill after a taken transfer.
	BranchTakenPenalty int
	// LoadUseStall is the interlock when a load's value is used
	// immediately.
	LoadUseStall int
}

// Validate checks that every defined opcode has a positive latency.
func (t *Timing) Validate() error {
	if t == nil {
		return fmt.Errorf("isa: nil timing profile")
	}
	for op := 0; op < NumOpcodes; op++ {
		if t.Exec[op] <= 0 {
			return fmt.Errorf("isa: profile %q has non-positive latency for %s", t.Name, Opcode(op))
		}
	}
	if t.BranchTakenPenalty < 0 || t.LoadUseStall < 0 {
		return fmt.Errorf("isa: profile %q has negative penalties", t.Name)
	}
	return nil
}

// I960KB is the default profile, matching the per-opcode ExecCycles table
// of this package (a 4-stage pipelined 32-bit RISC with a microcoded
// integer divider and a sequential FPU, in the spirit of the i960KB).
func I960KB() *Timing {
	t := &Timing{
		Name:               "i960kb",
		BranchTakenPenalty: BranchTakenPenalty,
		LoadUseStall:       LoadUseStall,
	}
	for op := 0; op < NumOpcodes; op++ {
		t.Exec[op] = infos[op].ExecCycles
	}
	return t
}

// DSP3210 approximates AT&T's DSP3210 floating-point DSP, the paper's
// second port target: single-cycle pipelined floating multiply-add
// hardware, hardware assistance for the float transcendentals, but weak
// integer divide and a deeper taken-branch penalty.
func DSP3210() *Timing {
	t := I960KB()
	t.Name = "dsp3210"
	// Floating point is the DSP's home turf.
	t.Exec[OpFadd] = 2
	t.Exec[OpFsub] = 2
	t.Exec[OpFmul] = 2
	t.Exec[OpFdiv] = 18
	t.Exec[OpFsqrt] = 22
	t.Exec[OpFsin] = 40
	t.Exec[OpFcos] = 40
	t.Exec[OpFatan] = 48
	t.Exec[OpFexp] = 52
	t.Exec[OpFlog] = 56
	t.Exec[OpFcvtIF] = 2
	t.Exec[OpFcvtFI] = 2
	// Integer multiply rides the MAC unit; divide is emulated.
	t.Exec[OpMul] = 1
	t.Exec[OpDiv] = 36
	t.Exec[OpRem] = 36
	// Deeper pipeline: taken transfers cost more.
	t.BranchTakenPenalty = 3
	return t
}

// Profiles returns the built-in timing profiles by name.
func Profiles() map[string]*Timing {
	return map[string]*Timing{
		"i960kb":  I960KB(),
		"dsp3210": DSP3210(),
	}
}
