// Package isa defines CR32, a synthetic 32-bit RISC instruction set with the
// micro-architectural traits of the Intel i960KB targeted by the paper: a
// small fixed-width instruction encoding, a four-stage pipeline timing model,
// an on-chip floating point unit, and a 512-byte direct-mapped instruction
// cache (modelled in package cache).
//
// CR32 stands in for the i960KB: the timing analysis in package ipet operates
// on assembly-level control flow graphs, so any RISC ISA with branches, calls
// and memory operations exercises the identical analysis code path.
package isa

import "fmt"

// Word is the machine word: 32 bits, also the fixed instruction width.
const WordBytes = 4

// Register file sizes.
const (
	NumIntRegs   = 16
	NumFloatRegs = 16
)

// Conventional register assignments used by the assembler and compiler.
const (
	RegZero = 0  // r0: hardwired to zero
	RegRV   = 1  // r1: integer return value
	RegFP   = 13 // r13: frame pointer
	RegLR   = 14 // r14: link register (written by CALL)
	RegSP   = 15 // r15: stack pointer
)

// FRegRV is the floating-point return value register (f1).
const FRegRV = 1

// Opcode identifies a CR32 machine operation.
type Opcode uint8

// Instruction opcodes. The numeric values are the encoded opcode byte and
// must remain stable: executables store them.
const (
	OpNop Opcode = iota
	OpHalt

	// Integer register-register ALU (format R): rd <- rs1 op rs2.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical right shift
	OpSra // arithmetic right shift
	OpSlt // rd = (rs1 < rs2) signed
	OpSltu

	// Integer immediate ALU (format I): rd <- rs1 op signext(imm16).
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri
	OpSrai
	OpSlti
	OpLui // rd <- imm16 << 16

	// Memory (format I): address = rs1 + signext(imm16).
	OpLw // rd <- mem32[addr]
	OpSw // mem32[addr] <- rd
	OpLb // rd <- signext(mem8[addr])
	OpLbu
	OpSb  // mem8[addr] <- rd & 0xff
	OpFld // fd <- mem64[addr] (float64)
	OpFst // mem64[addr] <- fd

	// Control (format B: pc-relative word offset; format J: absolute word).
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJmp  // format J: absolute jump
	OpCall // format J: lr <- pc+4; jump absolute
	OpJr   // format R: jump to rs1 (used for returns)

	// Floating point (register fields address the float register file).
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFneg
	OpFabs
	OpFsqrt
	OpFsin
	OpFcos
	OpFatan
	OpFexp
	OpFlog
	OpFmov
	OpFcvtIF // fd <- float64(rs1): rs1 is an integer register
	OpFcvtFI // rd <- int32(trunc(fs1)): rd is an integer register
	OpFeq    // rd <- (fs1 == fs2), rd integer
	OpFlt    // rd <- (fs1 <  fs2)
	OpFle    // rd <- (fs1 <= fs2)

	numOpcodes
)

// Format describes how an instruction's operand fields are laid out.
type Format uint8

const (
	FmtNone Format = iota // no operands (NOP, HALT)
	FmtR                  // rd, rs1, rs2
	FmtI                  // rd, rs1, imm16
	FmtB                  // rs1, rs2, imm16 (pc-relative word offset)
	FmtJ                  // imm24 (absolute word address)
)

// Info is the static description of an opcode.
type Info struct {
	Name   string
	Format Format
	// ExecCycles is the execute-stage latency in cycles, excluding
	// instruction fetch, branch penalties and hazard stalls. This mirrors
	// the per-instruction tables of the i960KB programmer's reference the
	// paper reads block costs from.
	ExecCycles int
	// Load reports that the instruction writes a register from memory
	// (source of load-use hazards).
	Load bool
	// Store reports that the instruction writes memory.
	Store bool
	// Branch reports conditional control transfer (format B).
	Branch bool
	// Jump reports unconditional control transfer (JMP, CALL, JR).
	Jump bool
	// FloatDst and FloatSrc report which register file the fields address.
	FloatDst bool
	FloatSrc bool
}

var infos = [numOpcodes]Info{
	OpNop:  {Name: "nop", Format: FmtNone, ExecCycles: 1},
	OpHalt: {Name: "halt", Format: FmtNone, ExecCycles: 1},

	OpAdd:  {Name: "add", Format: FmtR, ExecCycles: 1},
	OpSub:  {Name: "sub", Format: FmtR, ExecCycles: 1},
	OpMul:  {Name: "mul", Format: FmtR, ExecCycles: 5},
	OpDiv:  {Name: "div", Format: FmtR, ExecCycles: 20},
	OpRem:  {Name: "rem", Format: FmtR, ExecCycles: 20},
	OpAnd:  {Name: "and", Format: FmtR, ExecCycles: 1},
	OpOr:   {Name: "or", Format: FmtR, ExecCycles: 1},
	OpXor:  {Name: "xor", Format: FmtR, ExecCycles: 1},
	OpShl:  {Name: "shl", Format: FmtR, ExecCycles: 1},
	OpShr:  {Name: "shr", Format: FmtR, ExecCycles: 1},
	OpSra:  {Name: "sra", Format: FmtR, ExecCycles: 1},
	OpSlt:  {Name: "slt", Format: FmtR, ExecCycles: 1},
	OpSltu: {Name: "sltu", Format: FmtR, ExecCycles: 1},

	OpAddi: {Name: "addi", Format: FmtI, ExecCycles: 1},
	OpAndi: {Name: "andi", Format: FmtI, ExecCycles: 1},
	OpOri:  {Name: "ori", Format: FmtI, ExecCycles: 1},
	OpXori: {Name: "xori", Format: FmtI, ExecCycles: 1},
	OpShli: {Name: "shli", Format: FmtI, ExecCycles: 1},
	OpShri: {Name: "shri", Format: FmtI, ExecCycles: 1},
	OpSrai: {Name: "srai", Format: FmtI, ExecCycles: 1},
	OpSlti: {Name: "slti", Format: FmtI, ExecCycles: 1},
	OpLui:  {Name: "lui", Format: FmtI, ExecCycles: 1},

	OpLw:  {Name: "lw", Format: FmtI, ExecCycles: 3, Load: true},
	OpSw:  {Name: "sw", Format: FmtI, ExecCycles: 2, Store: true},
	OpLb:  {Name: "lb", Format: FmtI, ExecCycles: 3, Load: true},
	OpLbu: {Name: "lbu", Format: FmtI, ExecCycles: 3, Load: true},
	OpSb:  {Name: "sb", Format: FmtI, ExecCycles: 2, Store: true},
	OpFld: {Name: "fld", Format: FmtI, ExecCycles: 4, Load: true, FloatDst: true},
	OpFst: {Name: "fst", Format: FmtI, ExecCycles: 3, Store: true, FloatDst: true},

	OpBeq:  {Name: "beq", Format: FmtB, ExecCycles: 1, Branch: true},
	OpBne:  {Name: "bne", Format: FmtB, ExecCycles: 1, Branch: true},
	OpBlt:  {Name: "blt", Format: FmtB, ExecCycles: 1, Branch: true},
	OpBge:  {Name: "bge", Format: FmtB, ExecCycles: 1, Branch: true},
	OpBltu: {Name: "bltu", Format: FmtB, ExecCycles: 1, Branch: true},
	OpBgeu: {Name: "bgeu", Format: FmtB, ExecCycles: 1, Branch: true},
	OpJmp:  {Name: "jmp", Format: FmtJ, ExecCycles: 1, Jump: true},
	OpCall: {Name: "call", Format: FmtJ, ExecCycles: 2, Jump: true},
	OpJr:   {Name: "jr", Format: FmtR, ExecCycles: 2, Jump: true},

	OpFadd:   {Name: "fadd", Format: FmtR, ExecCycles: 7, FloatDst: true, FloatSrc: true},
	OpFsub:   {Name: "fsub", Format: FmtR, ExecCycles: 7, FloatDst: true, FloatSrc: true},
	OpFmul:   {Name: "fmul", Format: FmtR, ExecCycles: 12, FloatDst: true, FloatSrc: true},
	OpFdiv:   {Name: "fdiv", Format: FmtR, ExecCycles: 35, FloatDst: true, FloatSrc: true},
	OpFneg:   {Name: "fneg", Format: FmtR, ExecCycles: 1, FloatDst: true, FloatSrc: true},
	OpFabs:   {Name: "fabs", Format: FmtR, ExecCycles: 1, FloatDst: true, FloatSrc: true},
	OpFsqrt:  {Name: "fsqrt", Format: FmtR, ExecCycles: 40, FloatDst: true, FloatSrc: true},
	OpFsin:   {Name: "fsin", Format: FmtR, ExecCycles: 90, FloatDst: true, FloatSrc: true},
	OpFcos:   {Name: "fcos", Format: FmtR, ExecCycles: 90, FloatDst: true, FloatSrc: true},
	OpFatan:  {Name: "fatan", Format: FmtR, ExecCycles: 100, FloatDst: true, FloatSrc: true},
	OpFexp:   {Name: "fexp", Format: FmtR, ExecCycles: 110, FloatDst: true, FloatSrc: true},
	OpFlog:   {Name: "flog", Format: FmtR, ExecCycles: 120, FloatDst: true, FloatSrc: true},
	OpFmov:   {Name: "fmov", Format: FmtR, ExecCycles: 1, FloatDst: true, FloatSrc: true},
	OpFcvtIF: {Name: "fcvtif", Format: FmtR, ExecCycles: 5, FloatDst: true},
	OpFcvtFI: {Name: "fcvtfi", Format: FmtR, ExecCycles: 5, FloatSrc: true},
	OpFeq:    {Name: "feq", Format: FmtR, ExecCycles: 3, FloatSrc: true},
	OpFlt:    {Name: "flt", Format: FmtR, ExecCycles: 3, FloatSrc: true},
	OpFle:    {Name: "fle", Format: FmtR, ExecCycles: 3, FloatSrc: true},
}

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(numOpcodes)

// InfoFor returns the static description of op.
func InfoFor(op Opcode) Info {
	if int(op) >= int(numOpcodes) {
		return Info{Name: fmt.Sprintf("op%d", op), Format: FmtNone, ExecCycles: 1}
	}
	return infos[op]
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return int(op) < int(numOpcodes) }

// String returns the assembler mnemonic for op.
func (op Opcode) String() string { return InfoFor(op).Name }

// opsByName maps mnemonics back to opcodes, for the assembler.
var opsByName = func() map[string]Opcode {
	m := make(map[string]Opcode, numOpcodes)
	for op := Opcode(0); op < numOpcodes; op++ {
		m[infos[op].Name] = op
	}
	return m
}()

// OpcodeByName returns the opcode for an assembler mnemonic.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opsByName[name]
	return op, ok
}

// Instruction is a decoded CR32 instruction. Rd/Rs1/Rs2 address the integer
// or floating register file depending on the opcode (see Info.FloatDst /
// Info.FloatSrc); Imm holds the sign-extended immediate for formats I and B
// and the absolute word address for format J.
type Instruction struct {
	Op  Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// Pipeline timing parameters of the modelled core. These are shared by the
// simulator (package sim) and the static cost model (package march) so that
// the static model brackets the simulator by construction.
const (
	// BranchTakenPenalty is the pipeline refill cost paid when control
	// transfers away from the fall-through path.
	BranchTakenPenalty = 2
	// LoadUseStall is the interlock stall when an instruction reads a
	// register loaded by the immediately preceding instruction.
	LoadUseStall = 1
)

func (i Instruction) String() string {
	info := InfoFor(i.Op)
	switch info.Format {
	case FmtNone:
		return info.Name
	case FmtR:
		if i.Op == OpJr {
			return fmt.Sprintf("%s r%d", info.Name, i.Rs1)
		}
		p := "r"
		if info.FloatDst || info.FloatSrc {
			p = "f"
		}
		dp, sp := p, p
		if i.Op == OpFcvtIF {
			dp, sp = "f", "r"
		}
		if i.Op == OpFcvtFI || i.Op == OpFeq || i.Op == OpFlt || i.Op == OpFle {
			dp, sp = "r", "f"
		}
		switch i.Op {
		case OpFneg, OpFabs, OpFsqrt, OpFsin, OpFcos, OpFatan, OpFexp, OpFlog, OpFmov, OpFcvtIF, OpFcvtFI:
			return fmt.Sprintf("%s %s%d, %s%d", info.Name, dp, i.Rd, sp, i.Rs1)
		}
		return fmt.Sprintf("%s %s%d, %s%d, %s%d", info.Name, dp, i.Rd, sp, i.Rs1, sp, i.Rs2)
	case FmtI:
		switch i.Op {
		case OpLw, OpLb, OpLbu:
			return fmt.Sprintf("%s r%d, %d(r%d)", info.Name, i.Rd, i.Imm, i.Rs1)
		case OpSw, OpSb:
			return fmt.Sprintf("%s r%d, %d(r%d)", info.Name, i.Rd, i.Imm, i.Rs1)
		case OpFld, OpFst:
			return fmt.Sprintf("%s f%d, %d(r%d)", info.Name, i.Rd, i.Imm, i.Rs1)
		case OpLui:
			return fmt.Sprintf("%s r%d, %d", info.Name, i.Rd, i.Imm)
		}
		return fmt.Sprintf("%s r%d, r%d, %d", info.Name, i.Rd, i.Rs1, i.Imm)
	case FmtB:
		return fmt.Sprintf("%s r%d, r%d, %d", info.Name, i.Rs1, i.Rs2, i.Imm)
	case FmtJ:
		return fmt.Sprintf("%s %#x", info.Name, uint32(i.Imm)*WordBytes)
	}
	return info.Name
}
