// Package cache models the direct-mapped on-chip instruction cache of the
// target processor. The paper's i960KB carries a 512-byte direct-mapped
// instruction cache and no data cache; the micro-architectural model of
// Section IV assumes all-hits for the best case and all-misses for the worst
// case, and the measurement protocol of Experiment 2 flushes this cache
// before each call when measuring the worst case.
package cache

import "fmt"

// Config describes an instruction cache geometry.
type Config struct {
	// SizeBytes is the total capacity. Default 512 (i960KB).
	SizeBytes int
	// LineBytes is the line (block) size. Default 16.
	LineBytes int
	// MissPenalty is the extra cycles for a line fill on miss. Default 8.
	MissPenalty int
}

// DefaultConfig mirrors the i960KB: 512-byte direct-mapped I-cache with
// 16-byte lines.
func DefaultConfig() Config {
	return Config{SizeBytes: 512, LineBytes: 16, MissPenalty: 8}
}

func (c Config) validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.MissPenalty < 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.SizeBytes%c.LineBytes != 0 {
		return fmt.Errorf("cache: size %d not a multiple of line %d", c.SizeBytes, c.LineBytes)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	return nil
}

// Lines returns the number of cache lines.
func (c Config) Lines() int { return c.SizeBytes / c.LineBytes }

// Cache is a direct-mapped instruction cache simulator. The zero value is
// not usable; construct with New.
type Cache struct {
	cfg   Config
	tags  []uint32
	valid []bool

	hits   uint64
	misses uint64
}

// New builds a cache with the given geometry.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Cache{
		cfg:   cfg,
		tags:  make([]uint32, cfg.Lines()),
		valid: make([]bool, cfg.Lines()),
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access simulates a fetch of addr and returns the cycles it costs beyond
// the base fetch cycle: 0 on a hit, MissPenalty on a miss (the line is
// filled).
func (c *Cache) Access(addr uint32) int {
	line := addr / uint32(c.cfg.LineBytes)
	idx := line % uint32(c.cfg.Lines())
	tag := line / uint32(c.cfg.Lines())
	if c.valid[idx] && c.tags[idx] == tag {
		c.hits++
		return 0
	}
	c.misses++
	c.valid[idx] = true
	c.tags[idx] = tag
	return c.cfg.MissPenalty
}

// Lookup reports whether addr currently hits, without changing state.
func (c *Cache) Lookup(addr uint32) bool {
	line := addr / uint32(c.cfg.LineBytes)
	idx := line % uint32(c.cfg.Lines())
	tag := line / uint32(c.cfg.Lines())
	return c.valid[idx] && c.tags[idx] == tag
}

// Flush invalidates every line, as the QT960 measurement loop does before
// each worst-case call.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// ResetStats clears the hit/miss counters without touching cache contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Hits returns the number of hitting accesses since the last ResetStats.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of missing accesses since the last ResetStats.
func (c *Cache) Misses() uint64 { return c.misses }
