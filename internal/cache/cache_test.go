package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultConfigIsI960KB(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SizeBytes != 512 || cfg.LineBytes != 16 {
		t.Fatalf("default geometry %+v", cfg)
	}
	if cfg.Lines() != 32 {
		t.Fatalf("Lines = %d", cfg.Lines())
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 16, MissPenalty: 1},
		{SizeBytes: 512, LineBytes: 0, MissPenalty: 1},
		{SizeBytes: 512, LineBytes: 24, MissPenalty: 1}, // not power of two
		{SizeBytes: 520, LineBytes: 16, MissPenalty: 1}, // not a multiple
		{SizeBytes: 512, LineBytes: 16, MissPenalty: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded", cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	c := MustNew(DefaultConfig())
	if got := c.Access(0); got != 8 {
		t.Fatalf("first access cost %d, want miss penalty 8", got)
	}
	// Same line (addresses 0..15) must hit.
	for addr := uint32(0); addr < 16; addr += 4 {
		if got := c.Access(addr); got != 0 {
			t.Fatalf("access %d cost %d, want hit", addr, got)
		}
	}
	// Next line misses once.
	if got := c.Access(16); got != 8 {
		t.Fatalf("new line cost %d", got)
	}
	if c.Misses() != 2 || c.Hits() != 4 {
		t.Fatalf("stats: %d hits, %d misses", c.Hits(), c.Misses())
	}
}

func TestConflictEviction(t *testing.T) {
	c := MustNew(DefaultConfig())
	// Addresses 0 and 512 map to the same line in a 512-byte cache.
	c.Access(0)
	if got := c.Access(512); got == 0 {
		t.Fatal("conflicting address hit")
	}
	if got := c.Access(0); got == 0 {
		t.Fatal("evicted address hit")
	}
}

func TestFlush(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Access(0)
	if !c.Lookup(0) {
		t.Fatal("Lookup after fill")
	}
	c.Flush()
	if c.Lookup(0) {
		t.Fatal("Lookup after flush")
	}
	if got := c.Access(0); got == 0 {
		t.Fatal("flushed line hit")
	}
}

func TestLookupDoesNotFill(t *testing.T) {
	c := MustNew(DefaultConfig())
	if c.Lookup(64) {
		t.Fatal("cold lookup hit")
	}
	if c.Lookup(64) {
		t.Fatal("lookup filled the line")
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Access(0)
	c.Access(0)
	c.ResetStats()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("stats not reset")
	}
	if !c.Lookup(0) {
		t.Fatal("ResetStats flushed contents")
	}
}

// Property: miss count never exceeds number of accesses, and a second access
// to the same address with no intervening conflicting access always hits.
func TestAccessPropertiesQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(DefaultConfig())
		accesses := int(n)%200 + 1
		for i := 0; i < accesses; i++ {
			addr := uint32(rng.Intn(4096)) &^ 3
			c.Access(addr)
			if !c.Lookup(addr) {
				return false // just-accessed address must be resident
			}
			if c.Access(addr) != 0 {
				return false // immediate re-access must hit
			}
		}
		return c.Hits()+c.Misses() == uint64(2*accesses) && c.Misses() <= uint64(accesses)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: total cost with a flush before a re-run is >= cost without (the
// monotonicity Experiment 2's measurement protocol relies on).
func TestFlushMonotoneCost(t *testing.T) {
	trace := make([]uint32, 300)
	rng := rand.New(rand.NewSource(7))
	for i := range trace {
		trace[i] = uint32(rng.Intn(2048)) &^ 3
	}
	run := func(c *Cache) int {
		total := 0
		for _, a := range trace {
			total += c.Access(a)
		}
		return total
	}
	warm := MustNew(DefaultConfig())
	run(warm) // first pass warms
	warmCost := run(warm)

	flushed := MustNew(DefaultConfig())
	run(flushed)
	flushed.Flush()
	flushedCost := run(flushed)
	if flushedCost < warmCost {
		t.Fatalf("flushed cost %d < warm cost %d", flushedCost, warmCost)
	}
}
