package cache

import (
	"sync"
	"testing"
)

func TestKeyedBasics(t *testing.T) {
	k := NewKeyed[string, int]()
	if _, ok := k.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	k.Put("a", 1)
	if v, ok := k.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	v, hit := k.GetOrCompute("a", func() int { t.Fatal("computed despite hit"); return 0 })
	if !hit || v != 1 {
		t.Fatalf("GetOrCompute hit = %d, %v", v, hit)
	}
	v, hit = k.GetOrCompute("b", func() int { return 2 })
	if hit || v != 2 {
		t.Fatalf("GetOrCompute miss = %d, %v", v, hit)
	}
	if k.Len() != 2 {
		t.Fatalf("Len = %d", k.Len())
	}
	k.Clear()
	if k.Len() != 0 {
		t.Fatalf("Len after Clear = %d", k.Len())
	}
}

func TestKeyedConcurrent(t *testing.T) {
	k := NewKeyed[int, int]()
	var wg sync.WaitGroup
	computed := make([]int, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := i % 16
				k.GetOrCompute(key, func() int {
					computed[key]++
					return key * key
				})
			}
		}()
	}
	wg.Wait()
	for key := 0; key < 16; key++ {
		if v, ok := k.Get(key); !ok || v != key*key {
			t.Fatalf("key %d: %d, %v", key, v, ok)
		}
		if computed[key] != 1 {
			t.Fatalf("key %d computed %d times", key, computed[key])
		}
	}
}
