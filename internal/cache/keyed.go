package cache

import "sync"

// Keyed is a small concurrency-safe memo table keyed by any comparable
// type. The timing analysis uses it for solver-side memoization: mapping a
// canonical constraint-set key to the job that first produced it (set
// dedup), and holding per-direction warm-start state across repeated
// Estimate calls on one analyzer.
//
// The zero value is not ready; construct with NewKeyed.
type Keyed[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

// NewKeyed returns an empty cache.
func NewKeyed[K comparable, V any]() *Keyed[K, V] {
	return &Keyed[K, V]{m: map[K]V{}}
}

// Get returns the cached value for key, if present.
func (c *Keyed[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

// Put stores value under key, overwriting any previous entry.
func (c *Keyed[K, V]) Put(key K, value V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = value
}

// GetOrCompute returns the cached value for key, computing and caching it
// on a miss. The computation runs under the cache lock, so it is executed
// at most once per key; keep it cheap or tolerate the serialization.
func (c *Keyed[K, V]) GetOrCompute(key K, compute func() V) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.m[key]; ok {
		return v, true
	}
	v := compute()
	c.m[key] = v
	return v, false
}

// Len returns the number of cached entries.
func (c *Keyed[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Clear drops every entry (annotation changes invalidate memoized solver
// state).
func (c *Keyed[K, V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.m)
}
