package sim

import (
	"fmt"
	"math"

	"cinderella/internal/isa"
)

// Step fetches and executes one instruction and returns the cycles it
// consumed (fetch + execute + penalties).
func (m *Machine) Step() (int, error) {
	if m.halted {
		return 0, m.fault("step on halted machine")
	}
	if m.pc%isa.WordBytes != 0 || m.pc+isa.WordBytes > m.exe.TextBytes {
		return 0, m.fault("instruction fetch outside text segment")
	}
	if m.counts != nil {
		if _, ok := m.counts[m.pc]; ok {
			m.counts[m.pc]++
		}
	}
	ins, err := m.exe.Instr(m.pc)
	if err != nil {
		return 0, m.fault("%v", err)
	}
	info := isa.InfoFor(ins.Op)

	cost := 1 + m.icache.Access(m.pc) // base fetch cycle + miss penalty
	cost += m.cfg.Timing.Exec[ins.Op]
	if m.lastLoadReg >= 0 && readsReg(ins, m.lastLoadReg, m.lastLoadFloat) {
		cost += m.cfg.Timing.LoadUseStall
	}
	m.lastLoadReg = -1

	next := m.pc + isa.WordBytes
	taken := false

	switch ins.Op {
	case isa.OpNop:
	case isa.OpHalt:
		m.halted = true

	case isa.OpAdd:
		m.SetReg(int(ins.Rd), m.regs[ins.Rs1]+m.regs[ins.Rs2])
	case isa.OpSub:
		m.SetReg(int(ins.Rd), m.regs[ins.Rs1]-m.regs[ins.Rs2])
	case isa.OpMul:
		m.SetReg(int(ins.Rd), m.regs[ins.Rs1]*m.regs[ins.Rs2])
	case isa.OpDiv:
		if m.regs[ins.Rs2] == 0 {
			return 0, m.fault("integer division by zero")
		}
		m.SetReg(int(ins.Rd), m.regs[ins.Rs1]/m.regs[ins.Rs2])
	case isa.OpRem:
		if m.regs[ins.Rs2] == 0 {
			return 0, m.fault("integer remainder by zero")
		}
		m.SetReg(int(ins.Rd), m.regs[ins.Rs1]%m.regs[ins.Rs2])
	case isa.OpAnd:
		m.SetReg(int(ins.Rd), m.regs[ins.Rs1]&m.regs[ins.Rs2])
	case isa.OpOr:
		m.SetReg(int(ins.Rd), m.regs[ins.Rs1]|m.regs[ins.Rs2])
	case isa.OpXor:
		m.SetReg(int(ins.Rd), m.regs[ins.Rs1]^m.regs[ins.Rs2])
	case isa.OpShl:
		m.SetReg(int(ins.Rd), m.regs[ins.Rs1]<<(uint32(m.regs[ins.Rs2])&31))
	case isa.OpShr:
		m.SetReg(int(ins.Rd), int32(uint32(m.regs[ins.Rs1])>>(uint32(m.regs[ins.Rs2])&31)))
	case isa.OpSra:
		m.SetReg(int(ins.Rd), m.regs[ins.Rs1]>>(uint32(m.regs[ins.Rs2])&31))
	case isa.OpSlt:
		m.SetReg(int(ins.Rd), b2i(m.regs[ins.Rs1] < m.regs[ins.Rs2]))
	case isa.OpSltu:
		m.SetReg(int(ins.Rd), b2i(uint32(m.regs[ins.Rs1]) < uint32(m.regs[ins.Rs2])))

	case isa.OpAddi:
		m.SetReg(int(ins.Rd), m.regs[ins.Rs1]+ins.Imm)
	case isa.OpSlti:
		m.SetReg(int(ins.Rd), b2i(m.regs[ins.Rs1] < ins.Imm))
	// The logical immediates zero-extend their 16-bit field (as on MIPS),
	// which is what makes the lui+ori expansion of li/la work.
	case isa.OpAndi:
		m.SetReg(int(ins.Rd), int32(uint32(m.regs[ins.Rs1])&uint32(uint16(ins.Imm))))
	case isa.OpOri:
		m.SetReg(int(ins.Rd), int32(uint32(m.regs[ins.Rs1])|uint32(uint16(ins.Imm))))
	case isa.OpXori:
		m.SetReg(int(ins.Rd), int32(uint32(m.regs[ins.Rs1])^uint32(uint16(ins.Imm))))
	case isa.OpShli:
		m.SetReg(int(ins.Rd), m.regs[ins.Rs1]<<(uint32(ins.Imm)&31))
	case isa.OpShri:
		m.SetReg(int(ins.Rd), int32(uint32(m.regs[ins.Rs1])>>(uint32(ins.Imm)&31)))
	case isa.OpSrai:
		m.SetReg(int(ins.Rd), m.regs[ins.Rs1]>>(uint32(ins.Imm)&31))
	case isa.OpLui:
		m.SetReg(int(ins.Rd), int32(uint32(uint16(ins.Imm))<<16))

	case isa.OpLw:
		v, err := m.ReadWord(uint32(m.regs[ins.Rs1] + ins.Imm))
		if err != nil {
			return 0, err
		}
		m.SetReg(int(ins.Rd), v)
		m.lastLoadReg, m.lastLoadFloat = int(ins.Rd), false
	case isa.OpSw:
		if err := m.WriteWord(uint32(m.regs[ins.Rs1]+ins.Imm), m.regs[ins.Rd]); err != nil {
			return 0, err
		}
	case isa.OpLb:
		v, err := m.LoadByte(uint32(m.regs[ins.Rs1] + ins.Imm))
		if err != nil {
			return 0, err
		}
		m.SetReg(int(ins.Rd), int32(int8(v)))
		m.lastLoadReg, m.lastLoadFloat = int(ins.Rd), false
	case isa.OpLbu:
		v, err := m.LoadByte(uint32(m.regs[ins.Rs1] + ins.Imm))
		if err != nil {
			return 0, err
		}
		m.SetReg(int(ins.Rd), int32(v))
		m.lastLoadReg, m.lastLoadFloat = int(ins.Rd), false
	case isa.OpSb:
		if err := m.StoreByte(uint32(m.regs[ins.Rs1]+ins.Imm), byte(m.regs[ins.Rd])); err != nil {
			return 0, err
		}
	case isa.OpFld:
		v, err := m.ReadFloat(uint32(m.regs[ins.Rs1] + ins.Imm))
		if err != nil {
			return 0, err
		}
		m.fregs[ins.Rd] = v
		m.lastLoadReg, m.lastLoadFloat = int(ins.Rd), true
	case isa.OpFst:
		if err := m.WriteFloat(uint32(m.regs[ins.Rs1]+ins.Imm), m.fregs[ins.Rd]); err != nil {
			return 0, err
		}

	case isa.OpBeq:
		taken = m.regs[ins.Rs1] == m.regs[ins.Rs2]
	case isa.OpBne:
		taken = m.regs[ins.Rs1] != m.regs[ins.Rs2]
	case isa.OpBlt:
		taken = m.regs[ins.Rs1] < m.regs[ins.Rs2]
	case isa.OpBge:
		taken = m.regs[ins.Rs1] >= m.regs[ins.Rs2]
	case isa.OpBltu:
		taken = uint32(m.regs[ins.Rs1]) < uint32(m.regs[ins.Rs2])
	case isa.OpBgeu:
		taken = uint32(m.regs[ins.Rs1]) >= uint32(m.regs[ins.Rs2])
	case isa.OpJmp:
		next = uint32(ins.Imm) * isa.WordBytes
		taken = true
	case isa.OpCall:
		m.SetReg(isa.RegLR, int32(m.pc+isa.WordBytes))
		next = uint32(ins.Imm) * isa.WordBytes
		taken = true
	case isa.OpJr:
		target := uint32(m.regs[ins.Rs1])
		if target%isa.WordBytes != 0 {
			return 0, m.fault("jr to misaligned address %#x", target)
		}
		next = target
		taken = true

	case isa.OpFadd:
		m.fregs[ins.Rd] = m.fregs[ins.Rs1] + m.fregs[ins.Rs2]
	case isa.OpFsub:
		m.fregs[ins.Rd] = m.fregs[ins.Rs1] - m.fregs[ins.Rs2]
	case isa.OpFmul:
		m.fregs[ins.Rd] = m.fregs[ins.Rs1] * m.fregs[ins.Rs2]
	case isa.OpFdiv:
		m.fregs[ins.Rd] = m.fregs[ins.Rs1] / m.fregs[ins.Rs2]
	case isa.OpFneg:
		m.fregs[ins.Rd] = -m.fregs[ins.Rs1]
	case isa.OpFabs:
		m.fregs[ins.Rd] = math.Abs(m.fregs[ins.Rs1])
	case isa.OpFsqrt:
		m.fregs[ins.Rd] = math.Sqrt(m.fregs[ins.Rs1])
	case isa.OpFsin:
		m.fregs[ins.Rd] = math.Sin(m.fregs[ins.Rs1])
	case isa.OpFcos:
		m.fregs[ins.Rd] = math.Cos(m.fregs[ins.Rs1])
	case isa.OpFatan:
		m.fregs[ins.Rd] = math.Atan(m.fregs[ins.Rs1])
	case isa.OpFexp:
		m.fregs[ins.Rd] = math.Exp(m.fregs[ins.Rs1])
	case isa.OpFlog:
		m.fregs[ins.Rd] = math.Log(m.fregs[ins.Rs1])
	case isa.OpFmov:
		m.fregs[ins.Rd] = m.fregs[ins.Rs1]
	case isa.OpFcvtIF:
		m.fregs[ins.Rd] = float64(m.regs[ins.Rs1])
	case isa.OpFcvtFI:
		m.SetReg(int(ins.Rd), clampToInt32(m.fregs[ins.Rs1]))
	case isa.OpFeq:
		m.SetReg(int(ins.Rd), b2i(m.fregs[ins.Rs1] == m.fregs[ins.Rs2]))
	case isa.OpFlt:
		m.SetReg(int(ins.Rd), b2i(m.fregs[ins.Rs1] < m.fregs[ins.Rs2]))
	case isa.OpFle:
		m.SetReg(int(ins.Rd), b2i(m.fregs[ins.Rs1] <= m.fregs[ins.Rs2]))

	default:
		return 0, m.fault("unimplemented opcode %v", ins.Op)
	}

	if info.Branch && taken {
		next = uint32(int64(m.pc) + isa.WordBytes + int64(ins.Imm)*isa.WordBytes)
	}
	if taken {
		cost += m.cfg.Timing.BranchTakenPenalty
	}

	m.pc = next
	m.cycles += uint64(cost)
	m.steps++
	if m.steps > m.cfg.MaxSteps {
		return cost, m.fault("step watchdog exceeded (%d instructions)", m.cfg.MaxSteps)
	}
	return cost, nil
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func clampToInt32(f float64) int32 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt32:
		return math.MaxInt32
	case f <= math.MinInt32:
		return math.MinInt32
	}
	return int32(f)
}

// readsReg reports whether ins reads register r of the given register file,
// mirroring the pipeline's interlock logic.
func readsReg(ins isa.Instruction, r int, float bool) bool {
	if !float && r == isa.RegZero {
		return false // r0 never interlocks
	}
	type use struct {
		reg   int
		float bool
	}
	var uses []use
	switch ins.Op {
	case isa.OpNop, isa.OpHalt, isa.OpLui, isa.OpJmp, isa.OpCall:
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem, isa.OpAnd,
		isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSra, isa.OpSlt, isa.OpSltu:
		uses = []use{{int(ins.Rs1), false}, {int(ins.Rs2), false}}
	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpShli, isa.OpShri,
		isa.OpSrai, isa.OpSlti:
		uses = []use{{int(ins.Rs1), false}}
	case isa.OpLw, isa.OpLb, isa.OpLbu, isa.OpFld:
		uses = []use{{int(ins.Rs1), false}}
	case isa.OpSw, isa.OpSb:
		uses = []use{{int(ins.Rs1), false}, {int(ins.Rd), false}}
	case isa.OpFst:
		uses = []use{{int(ins.Rs1), false}, {int(ins.Rd), true}}
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		uses = []use{{int(ins.Rs1), false}, {int(ins.Rs2), false}}
	case isa.OpJr:
		uses = []use{{int(ins.Rs1), false}}
	case isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv, isa.OpFeq, isa.OpFlt, isa.OpFle:
		uses = []use{{int(ins.Rs1), true}, {int(ins.Rs2), true}}
	case isa.OpFneg, isa.OpFabs, isa.OpFsqrt, isa.OpFsin, isa.OpFcos, isa.OpFatan,
		isa.OpFexp, isa.OpFlog, isa.OpFmov, isa.OpFcvtFI:
		uses = []use{{int(ins.Rs1), true}}
	case isa.OpFcvtIF:
		uses = []use{{int(ins.Rs1), false}}
	}
	for _, u := range uses {
		if u.reg == r && u.float == float {
			return true
		}
	}
	return false
}

// Run executes until HALT, a fault, or the watchdog fires.
func (m *Machine) Run() error {
	for !m.halted {
		if _, err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Call runs the function at addr with the given integer arguments and
// returns the integer return value (register rv). Arguments are passed on
// the stack per the compiler's convention: every argument occupies an
// 8-byte slot, and at function entry argument i is the word at sp + 8*i.
// The machine state (globals, cache) is otherwise left as-is so callers can
// implement warm or flushed measurement protocols.
func (m *Machine) Call(addr uint32, args ...int32) (int32, error) {
	sp := uint32(m.regs[isa.RegSP])
	sp -= uint32(8 * len(args))
	for i, a := range args {
		if err := m.WriteWord(sp+uint32(8*i), a); err != nil {
			return 0, err
		}
	}
	savedSP := m.regs[isa.RegSP]
	m.regs[isa.RegSP] = int32(sp)
	stop := StopAddr
	m.SetReg(isa.RegLR, int32(stop))
	m.pc = addr
	m.halted = false
	for m.pc != StopAddr && !m.halted {
		if _, err := m.Step(); err != nil {
			return 0, err
		}
	}
	m.regs[isa.RegSP] = savedSP
	return m.regs[isa.RegRV], nil
}

// CallNamed is Call addressing the function by symbol name.
func (m *Machine) CallNamed(name string, args ...int32) (int32, error) {
	f, ok := m.exe.FunctionNamed(name)
	if !ok {
		return 0, fmt.Errorf("sim: no function %q", name)
	}
	return m.Call(f.Addr, args...)
}
