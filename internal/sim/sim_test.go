package sim

import (
	"math"
	"strings"
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/isa"
)

func build(t *testing.T, src string) *Machine {
	t.Helper()
	exe, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := New(exe, Config{})
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	return m
}

func TestArithmetic(t *testing.T) {
	m := build(t, `
main:
        li r1, 6
        li r2, 7
        mul r3, r1, r2
        sub r4, r3, r1
        div r5, r3, r2
        rem r6, r3, r4
        halt
`)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(3) != 42 || m.Reg(4) != 36 || m.Reg(5) != 6 || m.Reg(6) != 42%36 {
		t.Fatalf("regs: r3=%d r4=%d r5=%d r6=%d", m.Reg(3), m.Reg(4), m.Reg(5), m.Reg(6))
	}
}

func TestLogicAndShifts(t *testing.T) {
	m := build(t, `
main:
        li r1, 0xf0
        li r2, 0x0f
        or r3, r1, r2
        and r4, r1, r2
        xor r5, r1, r2
        li r6, -8
        srai r7, r6, 1
        shri r8, r6, 28
        shli r9, r2, 4
        slt r10, r6, r0
        sltu r11, r6, r0
        halt
`)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(3) != 0xff || m.Reg(4) != 0 || m.Reg(5) != 0xff {
		t.Fatalf("logic: %d %d %d", m.Reg(3), m.Reg(4), m.Reg(5))
	}
	if m.Reg(7) != -4 {
		t.Fatalf("srai: %d", m.Reg(7))
	}
	if m.Reg(8) != 0xf {
		t.Fatalf("shri: %d", m.Reg(8))
	}
	if m.Reg(9) != 0xf0 {
		t.Fatalf("shli: %d", m.Reg(9))
	}
	if m.Reg(10) != 1 || m.Reg(11) != 0 {
		t.Fatalf("slt/sltu: %d %d", m.Reg(10), m.Reg(11))
	}
}

func TestR0IsHardZero(t *testing.T) {
	m := build(t, "main:\n addi r0, r0, 5\n add r1, r0, r0\n halt\n")
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(0) != 0 || m.Reg(1) != 0 {
		t.Fatalf("r0=%d r1=%d", m.Reg(0), m.Reg(1))
	}
}

func TestMemoryOps(t *testing.T) {
	m := build(t, `
main:
        la r1, buf
        li r2, -123456
        sw r2, 0(r1)
        lw r3, 0(r1)
        li r4, 200
        sb r4, 4(r1)
        lb r5, 4(r1)    ; sign-extended: 200 -> -56
        lbu r6, 4(r1)   ; zero-extended: 200
        halt
        .data
buf:    .space 16
`)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(3) != -123456 {
		t.Fatalf("lw: %d", m.Reg(3))
	}
	if m.Reg(5) != -56 || m.Reg(6) != 200 {
		t.Fatalf("lb/lbu: %d %d", m.Reg(5), m.Reg(6))
	}
}

func TestLoopSum(t *testing.T) {
	// sum 1..10 = 55
	m := build(t, `
main:
        li r1, 10
        li r2, 0
.Lloop: add r2, r2, r1
        addi r1, r1, -1
        bne r1, r0, .Lloop
        halt
`)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(2) != 55 {
		t.Fatalf("sum = %d", m.Reg(2))
	}
}

func TestCallAndReturn(t *testing.T) {
	m := build(t, `
main:
        li r2, 21
        call double
        halt
double:
        add r1, r2, r2
        ret
`)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(1) != 42 {
		t.Fatalf("rv = %d", m.Reg(1))
	}
}

func TestFloatOps(t *testing.T) {
	m := build(t, `
main:
        la r1, vals
        fld f1, 0(r1)
        fld f2, 8(r1)
        fadd f3, f1, f2
        fmul f4, f1, f2
        fdiv f5, f2, f1
        fsqrt f6, f2
        fneg f7, f1
        fabs f8, f7
        flt r2, f1, f2
        fle r3, f2, f1
        feq r4, f1, f1
        fcvtfi r5, f4
        li r6, 9
        fcvtif f9, r6
        halt
        .data
vals:   .double 2.0, 16.0
`)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.FReg(3) != 18 || m.FReg(4) != 32 || m.FReg(5) != 8 || m.FReg(6) != 4 {
		t.Fatalf("float arith: %v %v %v %v", m.FReg(3), m.FReg(4), m.FReg(5), m.FReg(6))
	}
	if m.FReg(7) != -2 || m.FReg(8) != 2 {
		t.Fatalf("fneg/fabs: %v %v", m.FReg(7), m.FReg(8))
	}
	if m.Reg(2) != 1 || m.Reg(3) != 0 || m.Reg(4) != 1 {
		t.Fatalf("fcmp: %d %d %d", m.Reg(2), m.Reg(3), m.Reg(4))
	}
	if m.Reg(5) != 32 || m.FReg(9) != 9 {
		t.Fatalf("cvt: %d %v", m.Reg(5), m.FReg(9))
	}
}

func TestTranscendentals(t *testing.T) {
	m := build(t, `
main:
        la r1, x
        fld f1, 0(r1)
        fsin f2, f1
        fcos f3, f1
        fatan f4, f1
        fexp f5, f1
        flog f6, f5
        halt
        .data
x:      .double 1.0
`)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.FReg(2)-math.Sin(1)) > 1e-15 || math.Abs(m.FReg(3)-math.Cos(1)) > 1e-15 {
		t.Fatal("sin/cos wrong")
	}
	if math.Abs(m.FReg(6)-1) > 1e-12 {
		t.Fatalf("log(exp(1)) = %v", m.FReg(6))
	}
}

func TestDivByZeroFaults(t *testing.T) {
	m := build(t, "main:\n li r1, 1\n div r2, r1, r0\n halt\n")
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
	var f *Fault
	if !asFault(err, &f) || f.Line == 0 {
		t.Fatalf("fault has no line info: %#v", err)
	}
}

func asFault(err error, out **Fault) bool {
	f, ok := err.(*Fault)
	if ok {
		*out = f
	}
	return ok
}

func TestOutOfBoundsFaults(t *testing.T) {
	m := build(t, "main:\n li r1, -4\n lw r2, 0(r1)\n halt\n")
	if err := m.Run(); err == nil {
		t.Fatal("oob load succeeded")
	}
	m = build(t, "main:\n li r1, 2\n lw r2, 0(r1)\n halt\n")
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Fatalf("misaligned err = %v", err)
	}
}

func TestWatchdog(t *testing.T) {
	exe, err := asm.Assemble("main:\n jmp main\n")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(exe, Config{MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("err = %v", err)
	}
}

func TestTimingTakenVsNotTaken(t *testing.T) {
	// Not-taken branch path.
	m1 := build(t, "main:\n beq r1, r2, .L\n nop\n.L: halt\n")
	m1.SetReg(1, 1) // r1 != r2: not taken
	m1.SetReg(2, 2)
	if err := m1.Run(); err != nil {
		t.Fatal(err)
	}
	m2 := build(t, "main:\n beq r1, r2, .L\n nop\n.L: halt\n")
	// taken (both zero): skips the nop but pays the refill penalty
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	// Taken run: 2 instructions + penalty; not-taken: 3 instructions.
	if m2.Steps() != 2 || m1.Steps() != 3 {
		t.Fatalf("steps: taken=%d not=%d", m2.Steps(), m1.Steps())
	}
	// Cycle check: every instruction costs fetch(1+miss?)+exec(1).
	// m1: 3 instrs on the same line: 1 miss (8) + 3*(1+1) = 14.
	if m1.Cycles() != 14 {
		t.Fatalf("not-taken cycles = %d", m1.Cycles())
	}
	// m2: beq(miss 8 +1+1 +2 penalty) + halt at addr 8 (same 16B line, hit: 1+1) = 14.
	if m2.Cycles() != 14 {
		t.Fatalf("taken cycles = %d", m2.Cycles())
	}
}

func TestLoadUseStall(t *testing.T) {
	// With dependent use immediately after the load.
	m1 := build(t, `
main:
        la r1, w
        lw r2, 0(r1)
        add r3, r2, r2   ; load-use: +1 stall
        halt
        .data
w:      .word 5
`)
	if err := m1.Run(); err != nil {
		t.Fatal(err)
	}
	// Same program with an independent instruction in between.
	m2 := build(t, `
main:
        la r1, w
        lw r2, 0(r1)
        add r4, r0, r0
        add r3, r2, r2
        halt
        .data
w:      .word 5
`)
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	// m2 executes one extra 2-cycle instruction but avoids the 1-cycle stall.
	want := m1.Cycles() + 2 - 1
	// Account for possible extra cache line crossing in the longer program.
	if m2.Cycles() != want && m2.Cycles() != want+8 {
		t.Fatalf("m1=%d cycles, m2=%d cycles", m1.Cycles(), m2.Cycles())
	}
	if m2.Cycles() <= m1.Cycles() {
		t.Fatal("stall accounting inverted")
	}
}

func TestCacheFlushRaisesCycles(t *testing.T) {
	src := `
main:
        li r1, 50
.Lloop: addi r1, r1, -1
        bne r1, r0, .Lloop
        halt
`
	m := build(t, src)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	cold := m.Cycles()
	if m.Cache().Misses() == 0 {
		t.Fatal("no cold misses recorded")
	}
	// Re-run warm via Call on a fresh machine that ran once already.
	m2 := build(t, src)
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	// Warm second pass of the loop body alone:
	mWarm := build(t, src)
	if err := mWarm.Run(); err != nil {
		t.Fatal(err)
	}
	warmMisses := mWarm.Cache().Misses()
	mWarm.Cache().Flush()
	_ = cold
	_ = warmMisses
	// After flush, a re-run through Call pays misses again.
	start := mWarm.Cycles()
	if _, err := mWarm.CallNamed("main"); err != nil {
		t.Fatal(err)
	}
	flushedCost := mWarm.Cycles() - start
	m3 := build(t, src)
	if err := m3.Run(); err != nil {
		t.Fatal(err)
	}
	startWarm := m3.Cycles()
	if _, err := m3.CallNamed("main"); err != nil { // warm: lines resident
		t.Fatal(err)
	}
	warmCost := m3.Cycles() - startWarm
	if flushedCost <= warmCost {
		t.Fatalf("flushed %d <= warm %d", flushedCost, warmCost)
	}
}

func TestCallWithStackArgs(t *testing.T) {
	// sum2: returns arg0 + arg1, args in 8-byte slots at sp+0, sp+8.
	m := build(t, `
sum2:
        lw r2, 0(sp)
        lw r3, 8(sp)
        add r1, r2, r3
        ret
`)
	got, err := m.CallNamed("sum2", 30, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("sum2 = %d", got)
	}
}

func TestBlockCounts(t *testing.T) {
	m := build(t, `
main:
        li r1, 3
.Lloop: addi r1, r1, -1
        bne r1, r0, .Lloop
        halt
`)
	loop := uint32(4) // .Lloop is the second instruction (after li expansion of small imm = 1 instr)
	m.WatchBlocks([]uint32{0, loop})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	counts := m.BlockCounts()
	if counts[0] != 1 || counts[loop] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestReset(t *testing.T) {
	m := build(t, `
main:
        la r1, w
        lw r2, 0(r1)
        addi r2, r2, 1
        sw r2, 0(r1)
        halt
        .data
w:      .word 10
`)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	addr := uint32(0)
	for name, a := range map[string]uint32{"w": 0} {
		_ = name
		_ = a
	}
	// Find w's address via the loaded image: last 4 bytes of initialized image.
	addr = uint32(len(m.exe.Mem) - 4)
	v, _ := m.ReadWord(addr)
	if v != 11 {
		t.Fatalf("w after run = %d", v)
	}
	m.Reset()
	v, _ = m.ReadWord(addr)
	if v != 10 {
		t.Fatalf("w after reset = %d", v)
	}
	if m.Cycles() != 0 || m.Steps() != 0 || m.Halted() {
		t.Fatal("state not reset")
	}
}

func TestFcvtClamp(t *testing.T) {
	if clampToInt32(math.NaN()) != 0 {
		t.Fatal("NaN")
	}
	if clampToInt32(1e18) != math.MaxInt32 {
		t.Fatal("overflow high")
	}
	if clampToInt32(-1e18) != math.MinInt32 {
		t.Fatal("overflow low")
	}
	if clampToInt32(-2.9) != -2 {
		t.Fatal("trunc")
	}
}

func TestJrMisaligned(t *testing.T) {
	m := build(t, "main:\n li r1, 2\n jr r1\n")
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Fatalf("err = %v", err)
	}
}

func TestStepOnHalted(t *testing.T) {
	m := build(t, "main:\n halt\n")
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err == nil {
		t.Fatal("step on halted machine succeeded")
	}
}

func TestImageTooLarge(t *testing.T) {
	exe, err := asm.Assemble("main: halt\n.data\nx: .space 2048\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(exe, Config{MemSize: 1024}); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestReadsRegHelpers(t *testing.T) {
	cases := []struct {
		ins   isa.Instruction
		reg   int
		float bool
		want  bool
	}{
		{isa.Instruction{Op: isa.OpAdd, Rs1: 2, Rs2: 3}, 2, false, true},
		{isa.Instruction{Op: isa.OpAdd, Rs1: 2, Rs2: 3}, 3, false, true},
		{isa.Instruction{Op: isa.OpAdd, Rs1: 2, Rs2: 3}, 4, false, false},
		{isa.Instruction{Op: isa.OpAdd, Rs1: 0, Rs2: 3}, 0, false, false}, // r0 never interlocks
		{isa.Instruction{Op: isa.OpSw, Rd: 5, Rs1: 6}, 5, false, true},    // store reads its data reg
		{isa.Instruction{Op: isa.OpFst, Rd: 5, Rs1: 6}, 5, true, true},
		{isa.Instruction{Op: isa.OpFst, Rd: 5, Rs1: 6}, 6, false, true},
		{isa.Instruction{Op: isa.OpFadd, Rs1: 1, Rs2: 2}, 1, true, true},
		{isa.Instruction{Op: isa.OpFadd, Rs1: 1, Rs2: 2}, 1, false, false},
		{isa.Instruction{Op: isa.OpLui, Rd: 1}, 1, false, false},
		{isa.Instruction{Op: isa.OpJr, Rs1: 14}, 14, false, true},
	}
	for _, c := range cases {
		if got := readsReg(c.ins, c.reg, c.float); got != c.want {
			t.Errorf("readsReg(%v, %d, %v) = %v, want %v", c.ins, c.reg, c.float, got, c.want)
		}
	}
}
