// Package sim is a cycle-counting simulator for CR32 executables. It stands
// in for the paper's Intel QT960 evaluation board (20 MHz i960KB): it
// executes programs deterministically and charges cycles according to the
// same pipeline parameters the static cost model (package march) brackets —
// per-instruction execute latencies, instruction-cache hit/miss fetch costs,
// a branch-taken pipeline refill penalty, and a load-use interlock stall.
//
// Experiment 2's measurement protocol is reproduced with Flush (invalidate
// the I-cache before a worst-case call) and warm re-runs for the best case.
package sim

import (
	"fmt"
	"math"

	"cinderella/internal/asm"
	"cinderella/internal/cache"
	"cinderella/internal/isa"
)

// StopAddr is the sentinel return address installed by Call: when the
// machine is about to fetch from it, the call has returned.
const StopAddr uint32 = 0xfffffffc

// Config describes the simulated machine.
type Config struct {
	// MemSize is the size of simulated memory in bytes; the stack grows
	// down from the top. Default 1 MiB.
	MemSize int
	// Cache is the instruction cache geometry. Default cache.DefaultConfig.
	Cache cache.Config
	// Timing is the processor timing profile. Default isa.I960KB().
	Timing *isa.Timing
	// MaxSteps bounds execution as a runaway watchdog. Default 200M.
	MaxSteps uint64
}

// DefaultConfig returns the standard board configuration.
func DefaultConfig() Config {
	return Config{MemSize: 1 << 20, Cache: cache.DefaultConfig(), Timing: isa.I960KB(), MaxSteps: 200_000_000}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MemSize == 0 {
		c.MemSize = d.MemSize
	}
	if c.Cache == (cache.Config{}) {
		c.Cache = d.Cache
	}
	if c.Timing == nil {
		c.Timing = d.Timing
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = d.MaxSteps
	}
	return c
}

// Fault is a runtime error raised by the simulated machine.
type Fault struct {
	PC   uint32
	Line int // assembly source line when known, else 0
	Msg  string
}

func (f *Fault) Error() string {
	if f.Line > 0 {
		return fmt.Sprintf("sim: fault at pc=%#x (asm line %d): %s", f.PC, f.Line, f.Msg)
	}
	return fmt.Sprintf("sim: fault at pc=%#x: %s", f.PC, f.Msg)
}

// Machine is a simulated CR32 processor plus memory. Construct with New.
type Machine struct {
	exe *asm.Executable
	cfg Config

	mem   []byte
	regs  [isa.NumIntRegs]int32
	fregs [isa.NumFloatRegs]float64
	pc    uint32

	icache *cache.Cache

	cycles uint64
	steps  uint64
	halted bool

	// lastLoadReg is the destination register of the previous instruction
	// when it was a load (for load-use interlock modelling); -1 otherwise.
	// lastLoadFloat distinguishes the register file.
	lastLoadReg   int
	lastLoadFloat bool

	// counts tracks executions of watched addresses (basic-block entries),
	// implementing the paper's "insert a counter into each basic block"
	// without perturbing timing.
	counts map[uint32]uint64
}

// New builds a machine loaded with exe.
func New(exe *asm.Executable, cfg Config) (*Machine, error) {
	cfg = cfg.withDefaults()
	if len(exe.Mem) > cfg.MemSize {
		return nil, fmt.Errorf("sim: image (%d bytes) exceeds memory (%d bytes)", len(exe.Mem), cfg.MemSize)
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	ic, err := cache.New(cfg.Cache)
	if err != nil {
		return nil, err
	}
	m := &Machine{exe: exe, cfg: cfg, icache: ic, lastLoadReg: -1}
	m.mem = make([]byte, cfg.MemSize)
	copy(m.mem, exe.Mem)
	m.pc = exe.Entry
	m.regs[isa.RegSP] = int32(cfg.MemSize)
	return m, nil
}

// Reset restores memory to the loaded image, clears registers, flushes the
// cache and rewinds the program counter to the entry point.
func (m *Machine) Reset() {
	for i := range m.mem {
		m.mem[i] = 0
	}
	copy(m.mem, m.exe.Mem)
	m.regs = [isa.NumIntRegs]int32{}
	m.fregs = [isa.NumFloatRegs]float64{}
	m.regs[isa.RegSP] = int32(m.cfg.MemSize)
	m.pc = m.exe.Entry
	m.cycles, m.steps = 0, 0
	m.halted = false
	m.lastLoadReg = -1
	m.icache.Flush()
	m.icache.ResetStats()
	for k := range m.counts {
		delete(m.counts, k)
	}
}

// Cycles returns total cycles charged so far.
func (m *Machine) Cycles() uint64 { return m.cycles }

// Steps returns the number of instructions executed so far.
func (m *Machine) Steps() uint64 { return m.steps }

// PC returns the current program counter.
func (m *Machine) PC() uint32 { return m.pc }

// SetPC repositions the program counter (a debugger-style entry point used
// by harnesses that drive a routine with Step instead of Call). The target
// must be word-aligned inside the text segment or the StopAddr sentinel.
func (m *Machine) SetPC(addr uint32) error {
	if addr != StopAddr && (addr%isa.WordBytes != 0 || addr+isa.WordBytes > m.exe.TextBytes) {
		return fmt.Errorf("sim: SetPC target %#x outside text segment", addr)
	}
	m.pc = addr
	m.halted = false
	m.lastLoadReg = -1
	return nil
}

// Halted reports whether a HALT instruction has executed.
func (m *Machine) Halted() bool { return m.halted }

// Cache exposes the instruction cache (for Flush and statistics).
func (m *Machine) Cache() *cache.Cache { return m.icache }

// Reg returns integer register r.
func (m *Machine) Reg(r int) int32 { return m.regs[r] }

// SetReg sets integer register r (writes to r0 are ignored).
func (m *Machine) SetReg(r int, v int32) {
	if r != isa.RegZero {
		m.regs[r] = v
	}
}

// FReg returns float register r.
func (m *Machine) FReg(r int) float64 { return m.fregs[r] }

// SetFReg sets float register r.
func (m *Machine) SetFReg(r int, v float64) { m.fregs[r] = v }

// WatchBlocks registers basic-block entry addresses whose execution counts
// should be recorded.
func (m *Machine) WatchBlocks(addrs []uint32) {
	if m.counts == nil {
		m.counts = make(map[uint32]uint64, len(addrs))
	}
	for _, a := range addrs {
		m.counts[a] = 0
	}
}

// BlockCounts returns the recorded execution count per watched address.
func (m *Machine) BlockCounts() map[uint32]uint64 {
	out := make(map[uint32]uint64, len(m.counts))
	for k, v := range m.counts {
		out[k] = v
	}
	return out
}

func (m *Machine) fault(format string, args ...interface{}) error {
	return &Fault{PC: m.pc, Line: m.exe.Lines[m.pc], Msg: fmt.Sprintf(format, args...)}
}

// checkAddr validates a data access of size bytes at addr.
func (m *Machine) checkAddr(addr uint32, size uint32) error {
	if addr%size != 0 {
		return m.fault("misaligned %d-byte access at %#x", size, addr)
	}
	if uint64(addr)+uint64(size) > uint64(len(m.mem)) {
		return m.fault("out-of-bounds %d-byte access at %#x", size, addr)
	}
	return nil
}

// ReadWord reads a 32-bit word from data memory.
func (m *Machine) ReadWord(addr uint32) (int32, error) {
	if err := m.checkAddr(addr, 4); err != nil {
		return 0, err
	}
	return int32(uint32(m.mem[addr]) | uint32(m.mem[addr+1])<<8 |
		uint32(m.mem[addr+2])<<16 | uint32(m.mem[addr+3])<<24), nil
}

// WriteWord writes a 32-bit word to data memory.
func (m *Machine) WriteWord(addr uint32, v int32) error {
	if err := m.checkAddr(addr, 4); err != nil {
		return err
	}
	u := uint32(v)
	m.mem[addr] = byte(u)
	m.mem[addr+1] = byte(u >> 8)
	m.mem[addr+2] = byte(u >> 16)
	m.mem[addr+3] = byte(u >> 24)
	return nil
}

// ReadFloat reads a float64 from data memory.
func (m *Machine) ReadFloat(addr uint32) (float64, error) {
	if err := m.checkAddr(addr, 8); err != nil {
		return 0, err
	}
	var bits uint64
	for i := uint32(0); i < 8; i++ {
		bits |= uint64(m.mem[addr+i]) << (8 * i)
	}
	return math.Float64frombits(bits), nil
}

// WriteFloat writes a float64 to data memory.
func (m *Machine) WriteFloat(addr uint32, v float64) error {
	if err := m.checkAddr(addr, 8); err != nil {
		return err
	}
	bits := math.Float64bits(v)
	for i := uint32(0); i < 8; i++ {
		m.mem[addr+i] = byte(bits >> (8 * i))
	}
	return nil
}

// LoadByte reads one byte of data memory.
func (m *Machine) LoadByte(addr uint32) (byte, error) {
	if uint64(addr) >= uint64(len(m.mem)) {
		return 0, m.fault("out-of-bounds byte access at %#x", addr)
	}
	return m.mem[addr], nil
}

// StoreByte writes one byte of data memory.
func (m *Machine) StoreByte(addr uint32, v byte) error {
	if uint64(addr) >= uint64(len(m.mem)) {
		return m.fault("out-of-bounds byte access at %#x", addr)
	}
	m.mem[addr] = v
	return nil
}
