package sim

import (
	"strings"
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/isa"
)

func TestSetPC(t *testing.T) {
	m := build(t, "main:\n nop\n nop\n halt\n")
	if err := m.SetPC(4); err != nil {
		t.Fatal(err)
	}
	if m.PC() != 4 {
		t.Fatalf("pc = %#x", m.PC())
	}
	if err := m.SetPC(2); err == nil {
		t.Fatal("misaligned SetPC accepted")
	}
	if err := m.SetPC(0x1000); err == nil {
		t.Fatal("out-of-text SetPC accepted")
	}
	if err := m.SetPC(StopAddr); err != nil {
		t.Fatalf("StopAddr SetPC rejected: %v", err)
	}
}

func TestSetPCClearsHalt(t *testing.T) {
	m := build(t, "main:\n halt\n nop\n")
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("not halted")
	}
	if err := m.SetPC(0); err != nil {
		t.Fatal(err)
	}
	if m.Halted() {
		t.Fatal("SetPC did not clear halt")
	}
}

func TestFloatMemoryAlignmentFaults(t *testing.T) {
	m := build(t, "main:\n halt\n")
	if _, err := m.ReadFloat(4); err == nil {
		t.Fatal("misaligned float read accepted")
	}
	if err := m.WriteFloat(12, 1.0); err == nil {
		t.Fatal("misaligned float write accepted")
	}
	if _, err := m.ReadFloat(uint32(1 << 20)); err == nil {
		t.Fatal("oob float read accepted")
	}
}

func TestByteMemoryFaults(t *testing.T) {
	m := build(t, "main:\n halt\n")
	if _, err := m.LoadByte(1 << 21); err == nil {
		t.Fatal("oob byte load accepted")
	}
	if err := m.StoreByte(1<<21, 1); err == nil {
		t.Fatal("oob byte store accepted")
	}
	if err := m.StoreByte(100, 0xAB); err != nil {
		t.Fatal(err)
	}
	if v, err := m.LoadByte(100); err != nil || v != 0xAB {
		t.Fatalf("byte round trip: %v %v", v, err)
	}
}

func TestFetchOutsideText(t *testing.T) {
	m := build(t, "main:\n jmp 0x100\n")
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "outside text") {
		t.Fatalf("err = %v", err)
	}
}

func TestRemainderAndDivideFaultMessages(t *testing.T) {
	m := build(t, "main:\n li r1, 7\n rem r2, r1, r0\n halt\n")
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "remainder by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestStoreConditionalOps(t *testing.T) {
	// Exercise bltu/bgeu with boundary values.
	m := build(t, `
main:
        li r1, -1           ; 0xffffffff: maximal unsigned
        li r2, 1
        bltu r1, r2, .La    ; not taken (unsigned)
        addi r3, r0, 1
.La:
        bgeu r1, r2, .Lb    ; taken
        addi r4, r0, 1
.Lb:    halt
`)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(3) != 1 {
		t.Fatal("bltu mis-taken")
	}
	if m.Reg(4) != 0 {
		t.Fatal("bgeu not taken")
	}
}

func TestCallNamedUnknown(t *testing.T) {
	m := build(t, "main:\n halt\n")
	if _, err := m.CallNamed("ghost"); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestDefaultConfigTiming(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Timing == nil || cfg.Timing.Name != "i960kb" {
		t.Fatalf("default timing: %+v", cfg.Timing)
	}
	exe := buildExe(t, "main:\n halt\n")
	bad := isa.I960KB()
	bad.Exec[isa.OpAdd] = 0
	if _, err := New(exe, Config{Timing: bad}); err == nil {
		t.Fatal("invalid timing accepted")
	}
}

func buildExe(t *testing.T, src string) *asm.Executable {
	t.Helper()
	return build(t, src).exe
}
