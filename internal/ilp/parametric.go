package ilp

import (
	"fmt"
	"math"
	"math/big"
)

// This file implements the RHS-parametric simplex behind ipet's parametric
// WCET formulas: a Problem whose right-hand sides are affine in an integer
// parameter vector θ is solved once per optimal basis, and each solve
// returns a *piece* — a polyhedral region of parameter space together with
// the affine optimum value the basis yields there.
//
// The construction is the classic one: for a fixed basis B the reduced
// costs do not depend on θ (only b(θ) does), so a basis that is optimal at
// the seed point θ0 stays optimal exactly where it stays primal feasible,
// i.e. where every basic value of x_B(θ) = B⁻¹·b(θ) is nonnegative. Each
// basic value is affine in θ, so the region is a conjunction of integer
// affine inequalities and the optimum c_B·x_B(θ) is affine too.
//
// Soundness does not rest on float64 pivoting: after the float solve the
// candidate affine table is rounded to integers and re-checked exactly in
// rational arithmetic (B·C = [b0 | b1 … bK] by multiplication, no
// inversion), the value row is recomputed exactly from the verified table,
// and infeasible seeds yield an integer Farkas certificate that is likewise
// checked exactly. A piece that fails any exact check is reported with
// Exact=false and discarded by the caller, whose queries then fall back to
// a concrete solve — never a wrong number.

// ParamAffine is an integer affine form C0 + Σ Coef[k]·θ_k over the
// parameter vector θ.
type ParamAffine struct {
	C0   int64
	Coef []int64
}

// At evaluates the form at θ. len(theta) must be len(Coef).
func (a ParamAffine) At(theta []int64) int64 {
	v := a.C0
	for k, c := range a.Coef {
		v += c * theta[k]
	}
	return v
}

func (a ParamAffine) String() string {
	s := fmt.Sprintf("%d", a.C0)
	for k, c := range a.Coef {
		if c == 0 {
			continue
		}
		if c >= 0 {
			s += fmt.Sprintf(" + %d·θ%d", c, k+1)
		} else {
			s += fmt.Sprintf(" - %d·θ%d", -c, k+1)
		}
	}
	return s
}

// ParamPiece is one piece of a parametric LP solution: for every integer θ
// with g(θ) >= 0 for all g in Region, the problem's LP relaxation is either
// infeasible (Feasible == false) or has optimum Value.At(θ), attained at an
// all-integer vertex.
type ParamPiece struct {
	// Feasible distinguishes an optimal-basis piece from an
	// infeasibility-certificate piece.
	Feasible bool
	// Exact reports that the piece survived the exact rational re-check.
	// Callers must discard pieces with Exact == false.
	Exact bool
	// Value is the optimum as an affine form of θ (Feasible pieces only).
	Value ParamAffine
	// Region is the piece's validity region: the conjunction of
	// g(θ) >= 0 over all entries.
	Region []ParamAffine
	// Basis is the optimal basis in the cold standard-form column layout
	// (certify.Verify-compatible), for Feasible pieces.
	Basis []int
}

// Covers reports whether θ lies in the piece's region.
func (pc *ParamPiece) Covers(theta []int64) bool {
	for _, g := range pc.Region {
		if g.At(theta) < 0 {
			return false
		}
	}
	return true
}

// paramRound rounds a float64 tableau entry to the integer it should be,
// rejecting values that are not convincingly integral. The tolerance is
// loose on purpose: a wrong rounding is caught by the exact re-check, an
// overly strict tolerance only costs coverage.
func paramRound(v float64) (int64, bool) {
	r := math.Round(v)
	if math.Abs(v-r) > 1e-4+1e-8*math.Abs(v) {
		return 0, false
	}
	if math.Abs(r) >= float64(MaxExactCoeff) {
		return 0, false
	}
	return int64(r), true
}

// SolveParametric solves the LP relaxation of p at the integer seed point
// theta, where the RHS of constraint i is p.Constraints[i].RHS plus
// Σ rhsCoef[i][k]·theta[k] (a nil rhsCoef[i] means a non-parametric row).
// It returns the resulting piece (nil on Unbounded), the status at the
// seed, and the pivot count. p.Prefix must be empty — callers unpack — and
// p.Integer is ignored: integrality over the region follows from the
// exactness checks, which only emit all-integer affine tables.
func SolveParametric(p *Problem, nParams int, rhsCoef [][]int64, theta []int64) (*ParamPiece, Status, int, error) {
	if err := p.Validate(); err != nil {
		return nil, Infeasible, 0, err
	}
	if len(p.Prefix) != 0 {
		return nil, Infeasible, 0, fmt.Errorf("ilp: SolveParametric requires an unpacked problem (no Prefix rows)")
	}
	if len(rhsCoef) != len(p.Constraints) {
		return nil, Infeasible, 0, fmt.Errorf("ilp: rhsCoef has %d rows, problem has %d constraints", len(rhsCoef), len(p.Constraints))
	}
	if len(theta) != nParams {
		return nil, Infeasible, 0, fmt.Errorf("ilp: seed point has %d coordinates, want %d", len(theta), nParams)
	}

	m := len(p.Constraints)
	n := p.NumVars
	K := nParams

	// Lower to standard form exactly as the dense kernel and certify's
	// coldForm do: sign-normalize each row by its RHS *at the seed point*
	// (the sample problem handed to certify.Verify evaluates its RHS there
	// too, so the layouts agree), then assign one slack per <=, surplus
	// plus artificial per >=, artificial per =, in row order.
	specs := make([]paramRowSpec, m)
	rows := make([][]float64, m)
	for i := range p.Constraints {
		c := &p.Constraints[i]
		row := make([]float64, n)
		for j, v := range c.Coeffs {
			row[j] = v
		}
		coef := make([]int64, K)
		copy(coef, rhsCoef[i])
		rhs0 := c.RHS
		rhsAt := rhs0
		for k := 0; k < K; k++ {
			rhsAt += float64(coef[k]) * float64(theta[k])
		}
		rel := c.Rel
		if rhsAt < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			for k := range coef {
				coef[k] = -coef[k]
			}
			rhs0, rhsAt = -rhs0, -rhsAt
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = row
		specs[i] = paramRowSpec{rel: rel, rhs0: rhs0, rhsCoef: coef, rhsAt: rhsAt}
	}

	numSlack, numArt := 0, 0
	for i := range specs {
		switch specs[i].rel {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	total := n + numSlack + numArt
	artStart := n + numSlack
	width := total + 1 + K // structural | numeric rhs at theta | K coef cols

	tab := make([][]float64, m)
	basis := make([]int, m)
	initCol := make([]int, m) // the row's slack (LE) or artificial (GE/EQ)
	// auxCol/auxVal record each row's slack/surplus entry for the exact
	// checks, which need the pristine standard-form matrix after the
	// tableau has been pivoted to bits.
	auxCol := make([]int, m)
	auxVal := make([]float64, m)
	slackCol, artCol := n, artStart
	for i := range rows {
		r := make([]float64, width)
		copy(r, rows[i])
		r[total] = specs[i].rhsAt
		for k := 0; k < K; k++ {
			r[total+1+k] = float64(specs[i].rhsCoef[k])
		}
		auxCol[i] = -1
		switch specs[i].rel {
		case LE:
			r[slackCol] = 1
			basis[i] = slackCol
			initCol[i] = slackCol
			auxCol[i], auxVal[i] = slackCol, 1
			slackCol++
		case GE:
			r[slackCol] = -1
			auxCol[i], auxVal[i] = slackCol, -1
			slackCol++
			r[artCol] = 1
			basis[i] = artCol
			initCol[i] = artCol
			artCol++
		case EQ:
			r[artCol] = 1
			basis[i] = artCol
			initCol[i] = artCol
			artCol++
		}
		tab[i] = r
	}

	pivots := 0
	pivot := func(row, col int) {
		pivots++
		pr := tab[row]
		pv := pr[col]
		for j := 0; j < width; j++ {
			pr[j] /= pv
		}
		for i := range tab {
			if i == row {
				continue
			}
			f := tab[i][col]
			if f == 0 {
				continue
			}
			ri := tab[i]
			for j := 0; j < width; j++ {
				ri[j] -= f * pr[j]
			}
		}
		basis[row] = col
	}

	// optimize mirrors the dense kernel's primal loop (same pricing, same
	// Bland fallback, same ratio test on the numeric RHS column) and
	// returns the final reduced-cost row, from which the Farkas dual is
	// recovered on infeasibility.
	optimize := func(obj []float64, allowed int) (bool, []float64) {
		rc := make([]float64, total+1)
		copy(rc, obj)
		for i, b := range basis {
			cb := obj[b]
			if cb == 0 {
				continue
			}
			ri := tab[i]
			for j := 0; j <= total; j++ {
				rc[j] -= cb * ri[j]
			}
		}
		iter := 0
		blandAfter := 50 * (m + total + 10)
		for {
			iter++
			useBland := iter > blandAfter
			bestCol := -1
			bestVal := eps
			for j := 0; j < allowed; j++ {
				if rc[j] > eps {
					if useBland {
						bestCol = j
						break
					}
					if rc[j] > bestVal {
						bestVal = rc[j]
						bestCol = j
					}
				}
			}
			if bestCol < 0 {
				return true, rc
			}
			bestRow := -1
			bestRatio := math.Inf(1)
			for i := range tab {
				a := tab[i][bestCol]
				if a > eps {
					ratio := tab[i][total] / a
					if ratio < bestRatio-eps ||
						(math.Abs(ratio-bestRatio) <= eps && (bestRow < 0 || basis[i] < basis[bestRow])) {
						bestRatio = ratio
						bestRow = i
					}
				}
			}
			if bestRow < 0 {
				return false, rc
			}
			pivot(bestRow, bestCol)
			f := rc[bestCol]
			if f != 0 {
				pr := tab[bestRow]
				for j := 0; j <= total; j++ {
					rc[j] -= f * pr[j]
				}
				rc[bestCol] = 0
			}
		}
	}

	// ratAt returns the exact standard-form entry A[row][col], zero when
	// the row does not touch the column.
	ratAt := func(row, col int) *big.Rat {
		r := new(big.Rat)
		if col < n {
			if v := rows[row][col]; v != 0 {
				r.SetFloat64(v)
			}
			return r
		}
		if col == auxCol[row] {
			r.SetFloat64(auxVal[row])
		} else if col == initCol[row] && col >= artStart {
			r.SetInt64(1)
		}
		return r
	}

	// Phase 1.
	if numArt > 0 {
		obj1 := make([]float64, total+1)
		for j := artStart; j < total; j++ {
			obj1[j] = -1
		}
		ok, rc1 := optimize(obj1, total)
		if !ok {
			return nil, Infeasible, pivots, nil
		}
		sumArt := 0.0
		for i, b := range basis {
			if b >= artStart {
				sumArt += tab[i][total]
			}
		}
		if sumArt > feasTol {
			piece := farkasPiece(m, n, K, artStart, specs, rows, auxCol, auxVal, initCol, rc1, theta)
			return piece, Infeasible, pivots, nil
		}
		for i, b := range basis {
			if b < artStart {
				continue
			}
			done := false
			for j := 0; j < artStart && !done; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(i, j)
					done = true
				}
			}
		}
	}

	// Phase 2.
	obj2 := make([]float64, total+1)
	sign := 1.0
	if p.Sense == Minimize {
		sign = -1
	}
	for j, v := range p.Objective {
		obj2[j] = sign * v
	}
	if ok, _ := optimize(obj2, artStart); !ok {
		return nil, Unbounded, pivots, nil
	}

	piece := &ParamPiece{Feasible: true, Basis: append([]int(nil), basis...)}

	// Round the affine basic-value table to integers: C[i] gives
	// x_{basis[i]}(θ) = C0 + Σ Coef[k]·θ_k. The constant term is the
	// numeric value minus the parametric part at the seed.
	table := make([]ParamAffine, m)
	exact := true
	for i := range tab {
		coefs := make([]int64, K)
		c0f := tab[i][total]
		for k := 0; k < K; k++ {
			ck, ok := paramRound(tab[i][total+1+k])
			if !ok {
				exact = false
				break
			}
			coefs[k] = ck
			c0f -= float64(ck) * float64(theta[k])
		}
		if !exact {
			break
		}
		c0, ok := paramRound(c0f)
		if !ok {
			exact = false
			break
		}
		table[i] = ParamAffine{C0: c0, Coef: coefs}
	}

	// Exact re-check: B·C must reproduce [b0 | b1 … bK] row by row, where
	// B is the basic column submatrix of the pristine standard form. This
	// is a multiplication, not an inversion: if it holds, setting the
	// basic variables to C(θ) and the rest to zero satisfies A·x = b(θ)
	// for every θ, whether or not float64 pivoting was trustworthy.
	if exact {
		whichBasic := make([]int, total)
		for j := range whichBasic {
			whichBasic[j] = -1
		}
		for i, b := range basis {
			whichBasic[b] = i
		}
		acc := new(big.Rat)
		term := new(big.Rat)
		want := new(big.Rat)
	check:
		for r := 0; r < m && exact; r++ {
			// Collect the row's nonzero columns once.
			var cols []int
			for j := 0; j < n; j++ {
				if rows[r][j] != 0 {
					cols = append(cols, j)
				}
			}
			if auxCol[r] >= 0 {
				cols = append(cols, auxCol[r])
			}
			if initCol[r] >= artStart {
				cols = append(cols, initCol[r])
			}
			for k := 0; k <= K; k++ {
				acc.SetInt64(0)
				for _, j := range cols {
					i := whichBasic[j]
					if i < 0 {
						continue
					}
					var ci int64
					if k == 0 {
						ci = table[i].C0
					} else {
						ci = table[i].Coef[k-1]
					}
					if ci == 0 {
						continue
					}
					term.SetInt64(ci)
					term.Mul(term, ratAt(r, j))
					acc.Add(acc, term)
				}
				if k == 0 {
					want.SetFloat64(specs[r].rhs0)
				} else {
					want.SetInt64(specs[r].rhsCoef[k-1])
				}
				if acc.Cmp(want) != 0 {
					exact = false
					break check
				}
			}
		}
	}

	// Value and region from the verified table.
	if exact {
		zc := make([]*big.Int, K+1)
		for k := range zc {
			zc[k] = new(big.Int)
		}
		t := new(big.Int)
		for i, b := range basis {
			if b >= n {
				continue
			}
			cv := p.Objective[b]
			ci, ok := paramRound(cv)
			if !ok || float64(ci) != cv {
				exact = false
				break
			}
			if ci == 0 {
				continue
			}
			t.SetInt64(table[i].C0).Mul(t, big.NewInt(ci))
			zc[0].Add(zc[0], t)
			for k := 0; k < K; k++ {
				t.SetInt64(table[i].Coef[k]).Mul(t, big.NewInt(ci))
				zc[k+1].Add(zc[k+1], t)
			}
		}
		if exact {
			val := ParamAffine{Coef: make([]int64, K)}
			for k := 0; k <= K; k++ {
				if !zc[k].IsInt64() {
					exact = false
					break
				}
				if k == 0 {
					val.C0 = zc[k].Int64()
				} else {
					val.Coef[k-1] = zc[k].Int64()
				}
			}
			piece.Value = val
		}
	}
	if exact {
		for i := range table {
			aff := table[i]
			constant := true
			for _, c := range aff.Coef {
				if c != 0 {
					constant = false
					break
				}
			}
			if constant {
				if aff.C0 < 0 {
					exact = false // cannot happen for a verified table; bail
					break
				}
				continue
			}
			piece.Region = append(piece.Region, aff)
			if basis[i] >= artStart {
				// A basic artificial must stay at zero over the whole
				// region: add the mirrored inequality to pin it.
				neg := ParamAffine{C0: -aff.C0, Coef: make([]int64, K)}
				for k, c := range aff.Coef {
					neg.Coef[k] = -c
				}
				piece.Region = append(piece.Region, neg)
			}
		}
	}
	piece.Exact = exact
	return piece, Optimal, pivots, nil
}

// paramRowSpec is one sign-normalized standard-form row of the parametric
// solve: relation, constant RHS term, parametric RHS coefficients, and the
// RHS evaluated at the seed (>= 0 after normalization).
type paramRowSpec struct {
	rel     Relation
	rhs0    float64
	rhsCoef []int64
	rhsAt   float64
}

// farkasPiece builds an infeasibility piece from the phase-1 reduced-cost
// row: the dual y is read off the initial columns (slack for <=: y_i =
// -rc[s_i]; artificial for >=/=: y_i = -1 - rc[a_i]), rounded to integers
// and checked exactly — yᵀA_j >= 0 over every non-artificial column. Then
// yᵀb(θ) < 0 proves infeasibility at θ, and with integer y and integer
// RHS data that is exactly yᵀb(θ) <= -1.
func farkasPiece(m, n, K, artStart int, specs []paramRowSpec, rows [][]float64, auxCol []int, auxVal []float64, initCol []int, rc1 []float64, theta []int64) *ParamPiece {
	piece := &ParamPiece{Feasible: false}
	yf := make([]float64, m)
	for i := 0; i < m; i++ {
		if initCol[i] >= artStart {
			yf[i] = -1 - rc1[initCol[i]]
		} else {
			yf[i] = -rc1[initCol[i]]
		}
	}
	// A Farkas certificate is a ray: scaling by a positive integer proves
	// the same infeasibility. Phase-1 duals of integer-data rows are small
	// rationals (loop rows like Σback - 30·Σentry give denominators of 30),
	// so recover each as a fraction and scale the vector by the common
	// denominator before rounding.
	scale := int64(1)
	for i := range yf {
		if _, ok := paramRound(yf[i]); ok {
			continue
		}
		den, ok := ratDenominator(yf[i])
		if !ok {
			return piece
		}
		if scale = lcm(scale, den); scale > maxFarkasScale {
			return piece
		}
	}
	y := make([]int64, m)
	for i := 0; i < m; i++ {
		yi, ok := paramRound(yf[i] * float64(scale))
		if !ok {
			return piece
		}
		y[i] = yi
	}
	// Exact Farkas check over the non-artificial columns.
	colSum := make([]*big.Rat, artStart)
	for j := range colSum {
		colSum[j] = new(big.Rat)
	}
	term := new(big.Rat)
	for i := 0; i < m; i++ {
		if y[i] == 0 {
			continue
		}
		yr := new(big.Rat).SetInt64(y[i])
		for j := 0; j < n; j++ {
			if rows[i][j] == 0 {
				continue
			}
			term.SetFloat64(rows[i][j])
			term.Mul(term, yr)
			colSum[j].Add(colSum[j], term)
		}
		if auxCol[i] >= 0 {
			term.SetFloat64(auxVal[i])
			term.Mul(term, yr)
			colSum[auxCol[i]].Add(colSum[auxCol[i]], term)
		}
	}
	zero := new(big.Rat)
	for j := range colSum {
		if colSum[j].Cmp(zero) < 0 {
			return piece
		}
	}
	// β(θ) = yᵀb(θ) must be integral; the region is β(θ) <= -1.
	beta0 := new(big.Rat)
	for i := 0; i < m; i++ {
		if y[i] == 0 {
			continue
		}
		term.SetFloat64(specs[i].rhs0)
		term.Mul(term, new(big.Rat).SetInt64(y[i]))
		beta0.Add(beta0, term)
	}
	if !beta0.IsInt() || !beta0.Num().IsInt64() {
		return piece
	}
	g := ParamAffine{C0: -beta0.Num().Int64() - 1, Coef: make([]int64, K)}
	bk := new(big.Int)
	t := new(big.Int)
	for k := 0; k < K; k++ {
		bk.SetInt64(0)
		for i := 0; i < m; i++ {
			if y[i] == 0 || specs[i].rhsCoef[k] == 0 {
				continue
			}
			t.SetInt64(y[i]).Mul(t, big.NewInt(specs[i].rhsCoef[k]))
			bk.Add(bk, t)
		}
		if !bk.IsInt64() {
			return piece
		}
		g.Coef[k] = -bk.Int64()
	}
	// The seed itself must lie in the region (β(θ0) <= -1); rounding the
	// float dual can in principle produce a valid certificate for some
	// other part of parameter space, but a piece that does not cover its
	// own seed is useless to the enumerator.
	if g.At(theta) < 0 {
		return piece
	}
	piece.Region = []ParamAffine{g}
	piece.Exact = true
	return piece
}

// maxFarkasScale caps the common denominator a Farkas dual is scaled by;
// past it the float duals are too noisy to trust a rounding.
const maxFarkasScale = int64(1) << 20

// ratDenominator finds the smallest denominator d <= 2^16 with v·d
// convincingly integral (a continued-fraction expansion of v).
func ratDenominator(v float64) (int64, bool) {
	const maxDen = int64(1) << 16
	// Continued fractions on the fractional part: convergent denominators
	// h-2, h-1 follow the standard recurrence.
	x := v
	var d0, d1 int64 = 1, 0
	for iter := 0; iter < 64; iter++ {
		a := math.Floor(x)
		d0, d1 = d1, int64(a)*d1+d0
		if d1 <= 0 || d1 > maxDen {
			return 0, false
		}
		if _, ok := paramRound(v * float64(d1)); ok {
			return d1, true
		}
		frac := x - a
		if frac < 1e-12 {
			return 0, false
		}
		x = 1 / frac
	}
	return 0, false
}

// lcm is the least common multiple of two positive int64s (no overflow
// guard beyond the caller's cap).
func lcm(a, b int64) int64 {
	g := a
	for x := b; x != 0; g, x = x, g%x {
	}
	return a / g * b
}
