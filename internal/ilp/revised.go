package ilp

import (
	"math"
	"sync"
)

// The revised simplex kernel: the same two-phase primal method as the
// tableau kernel — identical standard-form layout, Dantzig entering rule
// with Bland's fallback at the same iteration threshold, ratio test, and
// phase structure — but the basis is carried as an eta factorization
// (lu.go) instead of an explicitly updated tableau.
//
// Reduced costs are not recomputed per iteration. They are maintained
// across pivots by the classic pricing-row update: when column q enters at
// row r, rho = Bᵀ⁻¹·e_r is one unit-vector BTRAN, the pivot row is
// alpha_j = rho·a_j gathered from a row-major mirror of the matrix over
// rho's support, and rc_j -= (rc_q / w_r)·alpha_j. Choosing the entering
// column is then a flat scan of the rc array, and the per-iteration cost
// drops from a dense-dual BTRAN plus a full pricing pass over every
// column's nonzeros to one sparse BTRAN plus the touched rows. The vector
// is rebuilt exactly — dual prices from scratch — at every phase entry and
// every refactorization, which sheds the accumulated float64 drift on the
// same schedule that sheds the eta file's.
//
// The kernel emits the same basis Certificate the tableau does (the
// standard-form layouts agree column for column), so the certify layer
// verifies its optima unchanged. Anything it cannot finish — a singular
// refactorization, an iteration cap — abandons the solve with ok=false and
// the router falls back to the tableau, so the kernel can never change an
// answer.

type revOutcome int

const (
	revOptimal revOutcome = iota
	revUnbounded
	revGiveUp
)

// revScratch is the pooled working memory of one revised solve: the
// standard form in column-major sparse form, the eta file, and the dense
// per-iteration vectors.
type revScratch struct {
	n, m, total, artStart, numArt int

	relBuf []Relation // normalized relation per row
	colPtr []int32    // column-major standard form: [total+1]
	colRow []int32
	colVal []float64
	cur    []int32 // fill cursors during build
	bvec   []float64

	basis   []int
	inBasis []bool
	xB      []float64
	y       []float64 // BTRAN target: dual prices / drive-out rows
	w       []float64 // FTRAN target: entering column
	work    []float64 // refactorization column scratch
	obj     []float64

	etas     etaFile
	ord      []int32
	newBasis []int
	used     []bool
	mark     []bool  // refactorization support flags
	pos      []int32 // refactorization support rows
	cnt      []int32 // counting-sort buckets (column nnz)
	wMark    []bool  // entering-column support flags (pivot path)
	wPos     []int32 // entering-column support rows
	rPtr     []int32 // basis CSR for refactorization peeling: row starts
	rCol     []int32 // basis CSR: column ordinals (positions in basis)
	rVal     []float64
	rCnt     []int32 // remaining columns touching each row
	done     []bool  // basis column ordinal already factored
	rq       []int32 // singleton-row worklist

	rc   []float64 // maintained reduced costs (pricing-row updates)
	aPtr []int32   // row-major standard form for the pricing-row update
	aCol []int32
	aVal []float64

	pivots, suspect, refactors, sinceRefactor int
}

var revPool = sync.Pool{New: func() any { return new(revScratch) }}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// revisedSimplex attempts one LP solve on the revised kernel. ok=false
// means the kernel gave up (the caller falls back to the tableau); every
// ok=true status is definitive.
func revisedSimplex(p *Problem, wantCert bool) (lpResult, bool) {
	s := revPool.Get().(*revScratch)
	defer revPool.Put(s)
	return s.run(p, wantCert)
}

// build lowers p into the column-major standard form, normalizing rows
// exactly as the tableau kernel does: Prefix rows as packed, Constraints
// sign-normalized, slack and artificial columns assigned in row order.
func (s *revScratch) build(p *Problem) {
	n, mPre := p.NumVars, len(p.Prefix)
	m := mPre + len(p.Constraints)
	s.n, s.m = n, m

	if cap(s.relBuf) < m {
		s.relBuf = make([]Relation, m)
	}
	s.relBuf = s.relBuf[:m]
	numSlack, numArt := 0, 0
	for i := 0; i < m; i++ {
		var rel Relation
		if i < mPre {
			rel = p.Prefix[i].Rel
		} else {
			c := &p.Constraints[i-mPre]
			rel = c.Rel
			if c.RHS < 0 {
				switch rel {
				case LE:
					rel = GE
				case GE:
					rel = LE
				}
			}
		}
		s.relBuf[i] = rel
		switch rel {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	total := n + numSlack + numArt
	s.total, s.artStart, s.numArt = total, n+numSlack, numArt

	// Count column entries (real columns from the rows, one per auxiliary
	// column), then prefix-sum into colPtr.
	s.colPtr = growI32(s.colPtr, total+1)
	for i := range s.colPtr {
		s.colPtr[i] = 0
	}
	for i := 0; i < mPre; i++ {
		for _, col := range p.Prefix[i].Cols {
			s.colPtr[col+1]++
		}
	}
	for ci := range p.Constraints {
		for j, v := range p.Constraints[ci].Coeffs {
			if v != 0 {
				s.colPtr[j+1]++
			}
		}
	}
	for j := n; j < total; j++ {
		s.colPtr[j+1] = 1
	}
	for j := 0; j < total; j++ {
		s.colPtr[j+1] += s.colPtr[j]
	}
	nnz := int(s.colPtr[total])
	s.colRow = growI32(s.colRow, nnz)
	s.colVal = growF64(s.colVal, nnz)
	s.cur = growI32(s.cur, total)
	copy(s.cur, s.colPtr[:total])

	s.bvec = growF64(s.bvec, m)
	s.basis = growInt(s.basis, m)
	s.inBasis = growBool(s.inBasis, total)
	for j := range s.inBasis {
		s.inBasis[j] = false
	}
	place := func(j int, row int, v float64) {
		k := s.cur[j]
		s.colRow[k] = int32(row)
		s.colVal[k] = v
		s.cur[j] = k + 1
	}
	slackCol, artCol := n, n+numSlack
	for i := 0; i < m; i++ {
		var rhs float64
		if i < mPre {
			pr := &p.Prefix[i]
			for k, col := range pr.Cols {
				place(int(col), i, pr.Vals[k])
			}
			rhs = pr.RHS
		} else {
			c := &p.Constraints[i-mPre]
			rhs = c.RHS
			neg := rhs < 0
			if neg {
				rhs = -rhs
			}
			for j, v := range c.Coeffs {
				if v == 0 {
					continue
				}
				if neg {
					v = -v
				}
				place(j, i, v)
			}
		}
		s.bvec[i] = rhs
		switch s.relBuf[i] {
		case LE:
			place(slackCol, i, 1)
			s.basis[i] = slackCol
			slackCol++
		case GE:
			place(slackCol, i, -1)
			slackCol++
			place(artCol, i, 1)
			s.basis[i] = artCol
			artCol++
		case EQ:
			place(artCol, i, 1)
			s.basis[i] = artCol
			artCol++
		}
		s.inBasis[s.basis[i]] = true
	}

	// Row-major mirror of the same matrix, for the pricing-row update:
	// given the sparse BTRAN'd pivot row rho, the reduced-cost deltas are
	// gathered row by row over rho's support instead of column by column
	// over everything.
	s.aPtr = growI32(s.aPtr, m+1)
	for i := range s.aPtr {
		s.aPtr[i] = 0
	}
	s.aCol = growI32(s.aCol, nnz)
	s.aVal = growF64(s.aVal, nnz)
	for k := 0; k < nnz; k++ {
		s.aPtr[s.colRow[k]+1]++
	}
	for i := 0; i < m; i++ {
		s.aPtr[i+1] += s.aPtr[i]
	}
	rcur := s.cur[:m] // column fill above is complete; reuse the cursors
	copy(rcur, s.aPtr[:m])
	for j := 0; j < total; j++ {
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			r := s.colRow[k]
			s.aCol[rcur[r]] = int32(j)
			s.aVal[rcur[r]] = s.colVal[k]
			rcur[r]++
		}
	}

	s.xB = growF64(s.xB, m)
	s.y = growF64(s.y, m)
	s.w = growF64(s.w, m)
	s.work = growF64(s.work, m)
	s.obj = growF64(s.obj, total)
	s.rc = growF64(s.rc, total)
	s.wMark = growBool(s.wMark, m)
	if cap(s.wPos) < m {
		s.wPos = make([]int32, 0, m)
	}
	// The pivot path keeps w all-zero between iterations, clearing only
	// each entering column's tracked support; establish the invariant once.
	clear(s.w)
	for i := range s.wMark {
		s.wMark[i] = false
	}
}

// scatterCol expands standard-form column j into the dense vector w.
func (s *revScratch) scatterCol(j int, w []float64) {
	clear(w)
	for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
		w[s.colRow[k]] = s.colVal[k]
	}
}

// price computes the reduced cost of column j against dual prices y.
func (s *revScratch) price(obj, y []float64, j int) float64 {
	rc := obj[j]
	for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
		if yv := y[s.colRow[k]]; yv != 0 {
			rc -= yv * s.colVal[k]
		}
	}
	return rc
}

// computeRC rebuilds the maintained reduced costs exactly: dual prices by
// BTRAN of the basic objective, then one pricing pass over the candidate
// columns. Called at phase entry and after every refactorization to shed
// the drift the per-pivot updates accumulate.
func (s *revScratch) computeRC(obj []float64, allowed int) {
	y := s.y
	for i := 0; i < s.m; i++ {
		y[i] = obj[s.basis[i]]
	}
	s.etas.btran(y)
	for j := 0; j < allowed; j++ {
		if s.inBasis[j] {
			s.rc[j] = 0 // exactly, so the entering scan can test rc first
		} else {
			s.rc[j] = s.price(obj, y, j)
		}
	}
}

// pivotAt records the pivot (entering col, leaving row) with the FTRAN'd
// entering column w whose nonzero support is pos, updates the basic values
// incrementally, and refactorizes on schedule (suppressed during phase-1
// drive-out, whose row scan assumes stable row association). Every step
// touches only the support, never all m rows.
func (s *revScratch) pivotAt(row, col int, w []float64, pos []int32, allowRefactor bool) bool {
	if a := math.Abs(w[row]); a < suspectPivotLo || a > suspectPivotHi {
		s.suspect++
	}
	if !s.etas.pushS(w, pos, row) {
		return false
	}
	d := s.xB[row] / w[row]
	for _, i := range pos {
		if int(i) == row {
			continue
		}
		if wi := w[i]; wi != 0 {
			s.xB[i] -= wi * d
		}
	}
	s.xB[row] = d
	s.inBasis[s.basis[row]] = false
	s.basis[row] = col
	s.inBasis[col] = true
	s.pivots++
	s.sinceRefactor++
	if allowRefactor && s.sinceRefactor >= revisedRefactorEvery {
		s.sinceRefactor = 0
		s.refactors++
		if !s.refactorize() {
			return false
		}
	}
	return true
}

// optimize runs one primal phase on the given objective, entering among
// columns below allowed.
func (s *revScratch) optimize(obj []float64, allowed int) revOutcome {
	m := s.m
	iter := 0
	blandAfter := 50 * (m + s.total + 10)
	hardCap := 10 * blandAfter
	y, w := s.y, s.w
	s.computeRC(obj, allowed)
	for {
		iter++
		if iter > hardCap {
			return revGiveUp
		}
		// rc of basic columns is held at zero, so testing rc first keeps
		// the inBasis load off the common (non-improving) path.
		bestCol := -1
		if iter > blandAfter {
			for j := 0; j < allowed; j++ {
				if s.rc[j] > eps && !s.inBasis[j] {
					bestCol = j
					break
				}
			}
		} else {
			bestVal := eps
			for j := 0; j < allowed; j++ {
				if rc := s.rc[j]; rc > bestVal && !s.inBasis[j] {
					bestVal, bestCol = rc, j
				}
			}
		}
		if bestCol < 0 {
			return revOptimal
		}
		// Scatter the entering column and FTRAN it with support tracking:
		// the ratio test, the basic-value update, the eta record, and the
		// clear all walk only the column's fill-in.
		pos := s.wPos[:0]
		for k := s.colPtr[bestCol]; k < s.colPtr[bestCol+1]; k++ {
			r := s.colRow[k]
			w[r] = s.colVal[k]
			if !s.wMark[r] {
				s.wMark[r] = true
				pos = append(pos, r)
			}
		}
		pos = s.etas.ftranS(w, pos, s.wMark)
		s.wPos = pos[:0]
		bestRow := -1
		bestRatio := math.Inf(1)
		for _, i := range pos {
			a := w[i]
			if a > eps {
				ratio := s.xB[i] / a
				if ratio < bestRatio-eps ||
					(math.Abs(ratio-bestRatio) <= eps && (bestRow < 0 || s.basis[i] < s.basis[bestRow])) {
					bestRatio, bestRow = ratio, int(i)
				}
			}
		}
		if bestRow >= 0 {
			// Pricing-row update against the outgoing basis, before pivotAt
			// grows the eta file: rho = Bᵀ⁻¹·e_bestRow, then subtract
			// (rc_q/w_r)·(rho·a_j) row by row over rho's support. Basic
			// columns stay at zero automatically (rho·a_j = e_r·e_i = 0) and
			// the leaver picks up its correct new reduced cost (alpha = 1).
			delta := s.rc[bestCol] / w[bestRow]
			clear(y)
			y[bestRow] = 1
			s.etas.btran(y)
			for i := 0; i < m; i++ {
				if ri := y[i]; ri != 0 {
					rv := delta * ri
					for k := s.aPtr[i]; k < s.aPtr[i+1]; k++ {
						s.rc[s.aCol[k]] -= rv * s.aVal[k]
					}
				}
			}
			s.rc[bestCol] = 0
		}
		ok := bestRow >= 0 && s.pivotAt(bestRow, bestCol, w, pos, true)
		for _, r := range pos {
			w[r] = 0
			s.wMark[r] = false
		}
		if bestRow < 0 {
			return revUnbounded
		}
		if !ok {
			return revGiveUp
		}
		if s.sinceRefactor == 0 {
			// pivotAt just refactorized: the eta file is fresh and the row
			// association may have changed; rebuild the reduced costs exactly
			// on the same schedule.
			s.computeRC(obj, allowed)
		}
	}
}

// driveOut removes basic artificials left at value zero after phase 1 by
// pivoting each onto the first real or slack column with a nonzero entry
// in its row, exactly as the tableau kernel does. Rows with no such entry
// are redundant and keep their zero-valued artificial.
func (s *revScratch) driveOut() bool {
	for i := 0; i < s.m; i++ {
		if s.basis[i] < s.artStart {
			continue
		}
		beta := s.y
		clear(beta)
		beta[i] = 1
		s.etas.btran(beta)
		for j := 0; j < s.artStart; j++ {
			if s.inBasis[j] {
				continue
			}
			alpha := 0.0
			for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
				if bv := beta[s.colRow[k]]; bv != 0 {
					alpha += bv * s.colVal[k]
				}
			}
			if math.Abs(alpha) <= eps {
				continue
			}
			s.scatterCol(j, s.w)
			s.etas.ftran(s.w)
			if math.Abs(s.w[i]) <= eps {
				continue // drift disagrees with the priced row; try the next column
			}
			pos := s.wPos[:0]
			for r := 0; r < s.m; r++ {
				if s.w[r] != 0 {
					pos = append(pos, int32(r))
				}
			}
			s.wPos = pos[:0]
			ok := s.pivotAt(i, j, s.w, pos, false)
			for _, r := range pos {
				s.w[r] = 0
			}
			if !ok {
				return false
			}
			break
		}
	}
	// A rejected attempt (drifted row, redundant row) can leave its
	// column in w; restore the pivot path's all-zero invariant densely.
	clear(s.w)
	return true
}

func (s *revScratch) run(p *Problem, wantCert bool) (lpResult, bool) {
	s.build(p)
	s.pivots, s.suspect, s.refactors, s.sinceRefactor = 0, 0, 0, 0
	s.etas.reset()
	copy(s.xB, s.bvec)

	result := func(st Status, obj float64, x []float64) lpResult {
		return lpResult{
			status: st, obj: obj, x: x,
			pivots: s.pivots, suspect: s.suspect,
			revisedPivots: s.pivots, refactors: s.refactors,
		}
	}

	if s.numArt > 0 {
		obj1 := s.obj
		clear(obj1)
		for j := s.artStart; j < s.total; j++ {
			obj1[j] = -1
		}
		switch s.optimize(obj1, s.total) {
		case revGiveUp:
			return lpResult{}, false
		case revUnbounded:
			// Phase 1 is bounded by zero; mirror the tableau's guard.
			return result(Infeasible, 0, nil), true
		}
		sumArt := 0.0
		for i := 0; i < s.m; i++ {
			if s.basis[i] >= s.artStart {
				sumArt += s.xB[i]
			}
		}
		if sumArt > feasTol {
			return result(Infeasible, 0, nil), true
		}
		if !s.driveOut() {
			return lpResult{}, false
		}
	}

	sign := 1.0
	if p.Sense == Minimize {
		sign = -1
	}
	obj2 := s.obj
	clear(obj2)
	for j, v := range p.Objective {
		obj2[j] = sign * v
	}
	switch s.optimize(obj2, s.artStart) {
	case revGiveUp:
		return lpResult{}, false
	case revUnbounded:
		return result(Unbounded, 0, nil), true
	}

	x := make([]float64, p.NumVars)
	for i := 0; i < s.m; i++ {
		if b := s.basis[i]; b < p.NumVars {
			v := s.xB[i]
			if v < 0 && v > -feasTol {
				v = 0
			}
			x[b] = v
		}
	}
	objVal := 0.0
	for j, v := range p.Objective {
		objVal += v * x[j]
	}
	r := result(Optimal, objVal, x)
	if wantCert && s.m > 0 {
		r.cert = &Certificate{Basis: append([]int(nil), s.basis[:s.m]...)}
	}
	return r, true
}
