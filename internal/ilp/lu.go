package ilp

import "math"

// The factored-basis machinery of the revised simplex kernel: a
// product-form-of-the-inverse eta file with periodic refactorization.
//
// The basis inverse is never formed. It is represented as B = E_1·E_2·…·E_k
// where each eta matrix E is the identity with one column r replaced by a
// (sparse) vector w — exactly the transformation one pivot applies. Solving
// B·v = a (FTRAN) applies the eta inverses left to right; solving yᵀ·B = c
// (BTRAN) applies their transposes right to left. Each application touches
// only an eta's nonzeros, which is what makes a revised pivot O(nnz)
// instead of O(rows·cols).
//
// The file grows by one eta per pivot, so both the work per solve and the
// accumulated float64 drift grow with it. Every revisedRefactorEvery pivots
// the file is rebuilt from scratch out of the current basis columns —
// singleton-ish columns first, partial pivoting over the unused rows — and
// the basic values are re-derived from the original right-hand side, which
// sheds the drift along with the length.

// revisedRefactorEvery is the eta-file growth budget between
// refactorizations.
const revisedRefactorEvery = 24

// revisedSingularTol is the smallest refactorization pivot magnitude
// accepted before the basis is declared numerically singular and the
// revised kernel gives up (the router falls back to the tableau).
const revisedSingularTol = 1e-11

// etaCol is one elementary transformation: identity with column r replaced
// by w, stored as the diagonal element wr plus the off-diagonal nonzeros.
type etaCol struct {
	r    int32
	wr   float64
	rows []int32
	vals []float64
}

// etaFile is the product-form basis representation. Off-diagonal nonzeros
// of all etas share two arena slices, so a pivot costs at most one arena
// growth, not two fresh slices.
type etaFile struct {
	etas     []etaCol
	rowArena []int32
	valArena []float64
}

func (f *etaFile) reset() {
	f.etas = f.etas[:0]
	f.rowArena = f.rowArena[:0]
	f.valArena = f.valArena[:0]
}

// push appends the eta of a pivot at row r with FTRAN'd entering column w.
// Returns false when the pivot element is unusable.
func (f *etaFile) push(w []float64, r int) bool {
	wr := w[r]
	if wr == 0 || math.IsNaN(wr) || math.IsInf(wr, 0) {
		return false
	}
	lo := len(f.rowArena)
	for i, v := range w {
		if i != r && v != 0 {
			f.rowArena = append(f.rowArena, int32(i))
			f.valArena = append(f.valArena, v)
		}
	}
	if wr == 1 && len(f.rowArena) == lo {
		return true // exact identity: nothing to record
	}
	f.etas = append(f.etas, etaCol{
		r:    int32(r),
		wr:   wr,
		rows: f.rowArena[lo:len(f.rowArena):len(f.rowArena)],
		vals: f.valArena[lo:len(f.valArena):len(f.valArena)],
	})
	return true
}

// ftran solves B·z = v in place: apply every eta inverse in file order.
func (f *etaFile) ftran(v []float64) {
	for k := range f.etas {
		e := &f.etas[k]
		vr := v[e.r]
		if vr == 0 {
			continue
		}
		z := vr / e.wr
		v[e.r] = z
		for i, row := range e.rows {
			v[row] -= e.vals[i] * z
		}
	}
}

// btran solves yᵀ·B = vᵀ in place: apply every eta transpose inverse in
// reverse file order.
func (f *etaFile) btran(v []float64) {
	for k := len(f.etas) - 1; k >= 0; k-- {
		e := &f.etas[k]
		s := v[e.r]
		for i, row := range e.rows {
			s -= e.vals[i] * v[row]
		}
		v[e.r] = s / e.wr
	}
}

// ftranS is ftran with support tracking: pos lists the rows where v is
// (possibly) nonzero, mark flags them, and fill-in rows are appended as
// the etas introduce them. The caller owns clearing both afterwards.
func (f *etaFile) ftranS(v []float64, pos []int32, mark []bool) []int32 {
	for k := range f.etas {
		e := &f.etas[k]
		vr := v[e.r]
		if vr == 0 {
			continue
		}
		z := vr / e.wr
		v[e.r] = z
		for i, row := range e.rows {
			if !mark[row] {
				mark[row] = true
				pos = append(pos, row)
			}
			v[row] -= e.vals[i] * z
		}
	}
	return pos
}

// pushS is push restricted to a tracked support, so recording the eta
// costs O(nnz) instead of a dense scan.
func (f *etaFile) pushS(w []float64, pos []int32, r int) bool {
	wr := w[r]
	if wr == 0 || math.IsNaN(wr) || math.IsInf(wr, 0) {
		return false
	}
	lo := len(f.rowArena)
	for _, i := range pos {
		if int(i) != r && w[i] != 0 {
			f.rowArena = append(f.rowArena, i)
			f.valArena = append(f.valArena, w[i])
		}
	}
	if wr == 1 && len(f.rowArena) == lo {
		return true // exact identity: nothing to record
	}
	f.etas = append(f.etas, etaCol{
		r:    int32(r),
		wr:   wr,
		rows: f.rowArena[lo:len(f.rowArena):len(f.rowArena)],
		vals: f.valArena[lo:len(f.valArena):len(f.valArena)],
	})
	return true
}

// refactorize rebuilds the eta file from the current basis columns and
// re-derives the basic values from the original right-hand side. Columns
// are processed sparsest-first (an LP basis is mostly slacks and
// near-triangular structure, which then factor with almost no fill), each
// pivoting at the largest-magnitude entry over the not-yet-pivoted rows.
// The row a column ends up pivoted in may differ from the row it was basic
// in before; the basis array is re-associated accordingly, which changes
// nothing observable — a basis is a set of columns, the row pairing is
// bookkeeping. Returns false when some column cannot pivot anywhere
// (numerically singular basis).
func (s *revScratch) refactorize() bool {
	m := s.m
	s.etas.reset()
	if cap(s.ord) < m {
		s.ord = make([]int32, m)
		s.newBasis = make([]int, m)
	}
	s.ord = s.ord[:m]
	s.newBasis = s.newBasis[:m]
	s.used = growBool(s.used, m)
	s.mark = growBool(s.mark, m)
	s.done = growBool(s.done, m)
	s.rCnt = growI32(s.rCnt, m)
	s.rPtr = growI32(s.rPtr, m+1)
	for i := range s.used {
		s.used[i] = false
		s.mark[i] = false
		s.done[i] = false
		s.rCnt[i] = 0
		s.rPtr[i] = 0
	}
	s.rPtr[m] = 0

	// Row-form copy of the basis submatrix (column ordinals per row), for
	// the peeling phase below.
	bnnz := 0
	for oi := 0; oi < m; oi++ {
		j := s.basis[oi]
		bnnz += int(s.colPtr[j+1] - s.colPtr[j])
	}
	s.rCol = growI32(s.rCol, bnnz)
	s.rVal = growF64(s.rVal, bnnz)
	for oi := 0; oi < m; oi++ {
		j := s.basis[oi]
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			s.rPtr[s.colRow[k]+1]++
		}
	}
	for r := 0; r < m; r++ {
		s.rPtr[r+1] += s.rPtr[r]
		s.rCnt[r] = s.rPtr[r+1] - s.rPtr[r]
	}
	s.cur = growI32(s.cur, m)
	copy(s.cur[:m], s.rPtr[:m])
	for oi := 0; oi < m; oi++ {
		j := s.basis[oi]
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			r := s.colRow[k]
			s.rCol[s.cur[r]] = int32(oi)
			s.rVal[s.cur[r]] = s.colVal[k]
			s.cur[r]++
		}
	}

	// Phase 1 — singleton-row peeling. A row touched by exactly one
	// remaining basis column can be pivoted there with NO fill: no other
	// remaining column has an entry in that row, so every later FTRAN
	// skips the eta, and the eta itself is just the original column. An
	// LP basis over flow equations is near-triangular, so this usually
	// factors almost everything; only the "bump" (loop structure) is left
	// to the general phase. Rows whose only entry is numerically tiny are
	// left for the bump rather than pivoted unstably.
	peeled := 0
	rq := s.rq[:0]
	for r := 0; r < m; r++ {
		if s.rCnt[r] == 1 {
			rq = append(rq, int32(r))
		}
	}
	for len(rq) > 0 {
		r := int(rq[len(rq)-1])
		rq = rq[:len(rq)-1]
		if s.used[r] || s.rCnt[r] != 1 {
			continue
		}
		oi, pv := -1, 0.0
		for k := s.rPtr[r]; k < s.rPtr[r+1]; k++ {
			if !s.done[s.rCol[k]] {
				oi, pv = int(s.rCol[k]), s.rVal[k]
				break
			}
		}
		if oi < 0 || math.Abs(pv) < revisedSingularTol {
			continue
		}
		j := s.basis[oi]
		// Emit the eta straight from the column: prior etas cannot touch it.
		f := &s.etas
		lo := len(f.rowArena)
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			if int(s.colRow[k]) != r {
				f.rowArena = append(f.rowArena, s.colRow[k])
				f.valArena = append(f.valArena, s.colVal[k])
			}
		}
		if !(pv == 1 && len(f.rowArena) == lo) {
			f.etas = append(f.etas, etaCol{
				r:    int32(r),
				wr:   pv,
				rows: f.rowArena[lo:len(f.rowArena):len(f.rowArena)],
				vals: f.valArena[lo:len(f.valArena):len(f.valArena)],
			})
		}
		s.done[oi] = true
		s.used[r] = true
		s.newBasis[r] = j
		peeled++
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			r2 := s.colRow[k]
			if s.used[r2] {
				continue
			}
			s.rCnt[r2]--
			if s.rCnt[r2] == 1 {
				rq = append(rq, r2)
			}
		}
	}
	s.rq = rq[:0]

	// Phase 2 — the bump: remaining columns sparsest-first (counting sort,
	// stable on row position), FTRAN'd with support tracking, pivoting at
	// the largest-magnitude entry over the unused rows.
	rest := m - peeled
	if rest > 0 {
		nnz := func(i int) int {
			j := s.basis[i]
			return int(s.colPtr[j+1] - s.colPtr[j])
		}
		maxn := 0
		for i := 0; i < m; i++ {
			if !s.done[i] {
				if c := nnz(i); c > maxn {
					maxn = c
				}
			}
		}
		if cap(s.cnt) < maxn+2 {
			s.cnt = make([]int32, maxn+2)
		}
		s.cnt = s.cnt[:maxn+2]
		for i := range s.cnt {
			s.cnt[i] = 0
		}
		for i := 0; i < m; i++ {
			if !s.done[i] {
				s.cnt[nnz(i)+1]++
			}
		}
		for k := 1; k <= maxn; k++ {
			s.cnt[k] += s.cnt[k-1]
		}
		ord := s.ord[:rest]
		for i := 0; i < m; i++ {
			if !s.done[i] {
				c := nnz(i)
				ord[s.cnt[c]] = int32(i)
				s.cnt[c]++
			}
		}
		w := s.work
		clear(w)
		pos := s.pos[:0]
		clearSupport := func() {
			for _, r := range pos {
				w[r] = 0
				s.mark[r] = false
			}
			s.pos = pos[:0]
		}
		for _, oi := range ord {
			j := s.basis[oi]
			pos = pos[:0]
			for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
				r := s.colRow[k]
				w[r] = s.colVal[k]
				if !s.mark[r] {
					s.mark[r] = true
					pos = append(pos, r)
				}
			}
			pos = s.etas.ftranS(w, pos, s.mark)
			best, bestAbs := -1, revisedSingularTol
			for _, r := range pos {
				if s.used[r] {
					continue
				}
				if a := math.Abs(w[r]); a > bestAbs {
					bestAbs, best = a, int(r)
				}
			}
			if best < 0 || !s.etas.pushS(w, pos, best) {
				clearSupport()
				return false
			}
			s.used[best] = true
			s.newBasis[best] = j
			for _, r := range pos {
				w[r] = 0
				s.mark[r] = false
			}
		}
		s.pos = pos[:0]
	}
	copy(s.basis, s.newBasis)
	// Fresh basic values from the original right-hand side.
	copy(s.xB, s.bvec)
	s.etas.ftran(s.xB)
	return true
}
