package certify

import (
	"context"
	"fmt"
	"math/big"

	"cinderella/internal/ilp"
)

// ExactResult is the outcome of SolveExact.
type ExactResult struct {
	Status ilp.Status
	// Objective and X are the exact optimum (problem's own sense) when
	// Status is Optimal.
	Objective *big.Rat
	X         []*big.Rat
	// LPSolves / Pivots count the exact-arithmetic work performed.
	LPSolves int
	Pivots   int
	// RootIntegral reports that the root relaxation was already integral.
	RootIntegral bool
}

// SolveExact solves p from scratch in exact rational arithmetic: a
// two-phase primal simplex under Bland's rule (termination guaranteed —
// there is no tolerance to mis-set) with a branch-and-bound layer for
// Integer problems. It is the correctness-first slow path a certifying
// caller falls back to when a float64 result has no certificate or its
// certificate fails to verify; the problems of this domain are small, so
// "slow" is relative.
func SolveExact(ctx context.Context, p *ilp.Problem) (*ExactResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res := &ExactResult{}
	status, obj, x, pivots := exactLP(p, nil)
	res.LPSolves++
	res.Pivots += pivots
	if status != ilp.Optimal {
		res.Status = status
		return res, nil
	}
	if !p.Integer || ratsIntegral(x) {
		res.RootIntegral = ratsIntegral(x)
		res.Status = ilp.Optimal
		res.Objective = obj
		res.X = x
		return res, nil
	}

	// Branch and bound, depth-first with exact best-bound pruning, in the
	// internal maximization sense (Minimize compares reversed).
	better := func(a, b *big.Rat) bool {
		if p.Sense == ilp.Maximize {
			return a.Cmp(b) > 0
		}
		return a.Cmp(b) < 0
	}
	type node struct {
		extra []ilp.Constraint
		bound *big.Rat
	}
	var best *ExactResult
	stack := []node{{bound: obj}}
	nodes := 0
	for len(stack) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if best != nil && !better(nd.bound, best.Objective) {
			continue
		}
		nodes++
		if nodes > ilp.MaxNodes {
			return nil, fmt.Errorf("certify: exact branch-and-bound node limit exceeded (%d)", ilp.MaxNodes)
		}
		status, obj, x, pivots := exactLP(p, nd.extra)
		res.LPSolves++
		res.Pivots += pivots
		if status == ilp.Unbounded {
			res.Status = ilp.Unbounded
			return res, nil
		}
		if status != ilp.Optimal {
			continue
		}
		if best != nil && !better(obj, best.Objective) {
			continue
		}
		if bi := firstFractional(x); bi < 0 {
			best = &ExactResult{Status: ilp.Optimal, Objective: obj, X: x}
			continue
		} else {
			floor := ratFloorFloat(x[bi])
			left := append(append([]ilp.Constraint{}, nd.extra...),
				ilp.Constraint{Coeffs: map[int]float64{bi: 1}, Rel: ilp.LE, RHS: floor})
			right := append(append([]ilp.Constraint{}, nd.extra...),
				ilp.Constraint{Coeffs: map[int]float64{bi: 1}, Rel: ilp.GE, RHS: floor + 1})
			stack = append(stack, node{extra: left, bound: obj}, node{extra: right, bound: obj})
		}
	}
	if best == nil {
		res.Status = ilp.Infeasible
		return res, nil
	}
	res.Status = ilp.Optimal
	res.Objective = best.Objective
	res.X = best.X
	return res, nil
}

// exactLP solves the LP relaxation of p with extra branching rows appended,
// exactly, via the cold standard form.
func exactLP(p *ilp.Problem, extra []ilp.Constraint) (ilp.Status, *big.Rat, []*big.Rat, int) {
	q := p
	if len(extra) > 0 {
		q = &ilp.Problem{
			Sense:       p.Sense,
			NumVars:     p.NumVars,
			Objective:   p.Objective,
			Prefix:      p.Prefix,
			Constraints: append(append([]ilp.Constraint{}, p.Constraints...), extra...),
		}
	}
	sf := coldForm(q)
	cInt := internalObj(q, sf.total)

	if sf.m == 0 {
		// The origin is the only basic point of the nonnegative orthant.
		for j := 0; j < sf.n; j++ {
			if cInt[j].Sign() > 0 {
				return ilp.Unbounded, nil, nil, 0
			}
		}
		return ilp.Optimal, new(big.Rat), ratZeros(sf.n), 0
	}

	// Dense rational tableau; rhs at column total.
	t := &exactTab{
		m:     sf.m,
		total: sf.total,
		tab:   make([][]*big.Rat, sf.m),
		basis: append([]int(nil), sf.initBasis...),
	}
	for i := range t.tab {
		t.tab[i] = ratZeros(sf.total + 1)
		for k, col := range sf.rows[i].cols {
			t.tab[i][col].Add(t.tab[i][col], sf.rows[i].vals[k])
		}
		t.tab[i][sf.total].Set(sf.rows[i].rhs)
	}

	artStart := sf.total - sf.numArt
	if sf.numArt > 0 {
		obj1 := ratZeros(sf.total)
		for j := artStart; j < sf.total; j++ {
			obj1[j].SetInt64(-1)
		}
		t.optimize(obj1, sf.total) // bounded by 0: cannot be unbounded
		for i, b := range t.basis {
			if b >= artStart && t.tab[i][sf.total].Sign() != 0 {
				return ilp.Infeasible, nil, nil, t.pivots
			}
		}
		// Drive zero-valued artificials out of the basis where a nonzero
		// real/slack pivot exists; redundant rows keep theirs at zero.
		for i, b := range t.basis {
			if b < artStart {
				continue
			}
			for j := 0; j < artStart; j++ {
				if t.tab[i][j].Sign() != 0 {
					t.pivot(i, j)
					break
				}
			}
		}
	}

	if !t.optimize(cInt, artStart) {
		return ilp.Unbounded, nil, nil, t.pivots
	}

	x := ratZeros(sf.n)
	for i, b := range t.basis {
		if b < sf.n {
			x[b].Set(t.tab[i][sf.total])
		}
	}
	obj := new(big.Rat)
	tmp := new(big.Rat)
	for j, v := range q.Objective {
		tmp.SetFloat64(v)
		tmp.Mul(tmp, x[j])
		obj.Add(obj, tmp)
	}
	return ilp.Optimal, obj, x, t.pivots
}

type exactTab struct {
	m, total int
	tab      [][]*big.Rat // m rows × (total+1)
	basis    []int
	pivots   int
}

// optimize runs primal simplex (maximization) under Bland's rule: entering
// column is the lowest-index one with positive reduced cost, leaving row
// the exact minimum ratio with ties broken by lowest basic column. Returns
// false when unbounded.
func (t *exactTab) optimize(obj []*big.Rat, allowed int) bool {
	// Price out the basis: rc_j = c_j − Σ_i c_B(i)·tab[i][j].
	rc := ratZeros(t.total)
	tmp := new(big.Rat)
	for j := 0; j < t.total; j++ {
		rc[j].Set(obj[j])
	}
	for i, b := range t.basis {
		cb := obj[b]
		if cb.Sign() == 0 {
			continue
		}
		for j := 0; j < t.total; j++ {
			if t.tab[i][j].Sign() != 0 {
				tmp.Mul(cb, t.tab[i][j])
				rc[j].Sub(rc[j], tmp)
			}
		}
	}
	ratio := new(big.Rat)
	for {
		enter := -1
		for j := 0; j < allowed; j++ {
			if rc[j].Sign() > 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return true
		}
		leave := -1
		var bestRatio *big.Rat
		for i := 0; i < t.m; i++ {
			a := t.tab[i][enter]
			if a.Sign() <= 0 {
				continue
			}
			ratio.Quo(t.tab[i][t.total], a)
			switch {
			case leave < 0 || ratio.Cmp(bestRatio) < 0:
				leave = i
				bestRatio = new(big.Rat).Set(ratio)
			case ratio.Cmp(bestRatio) == 0 && t.basis[i] < t.basis[leave]:
				leave = i
			}
		}
		if leave < 0 {
			return false
		}
		f := new(big.Rat).Set(rc[enter])
		t.pivot(leave, enter)
		pr := t.tab[leave]
		for j := 0; j <= t.total; j++ {
			if j < t.total && pr[j].Sign() != 0 {
				tmp.Mul(f, pr[j])
				rc[j].Sub(rc[j], tmp)
			}
		}
		rc[enter].SetInt64(0)
	}
}

func (t *exactTab) pivot(row, col int) {
	t.pivots++
	pr := t.tab[row]
	inv := new(big.Rat).Inv(pr[col])
	for j := 0; j <= t.total; j++ {
		if pr[j].Sign() != 0 {
			pr[j].Mul(pr[j], inv)
		}
	}
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		ri := t.tab[i]
		f := ri[col]
		if f.Sign() == 0 {
			continue
		}
		f = new(big.Rat).Set(f)
		for j := 0; j <= t.total; j++ {
			if pr[j].Sign() != 0 {
				tmp.Mul(f, pr[j])
				ri[j].Sub(ri[j], tmp)
			}
		}
	}
	t.basis[row] = col
}

func ratsIntegral(x []*big.Rat) bool {
	for _, v := range x {
		if !v.IsInt() {
			return false
		}
	}
	return true
}

// firstFractional returns the lowest-index non-integral entry, or -1.
func firstFractional(x []*big.Rat) int {
	for i, v := range x {
		if !v.IsInt() {
			return i
		}
	}
	return -1
}

// ratFloorFloat returns floor(v) as a float64; branching bounds in this
// domain are far below 2^53, so the conversion is exact.
func ratFloorFloat(v *big.Rat) float64 {
	q := new(big.Int).Quo(v.Num(), v.Denom())
	// big.Int Quo truncates toward zero; adjust for negative non-integers.
	if v.Sign() < 0 && !v.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	f, _ := new(big.Rat).SetInt(q).Float64()
	return f
}
