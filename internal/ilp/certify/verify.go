package certify

import (
	"fmt"
	"math/big"

	"cinderella/internal/ilp"
)

// Result is the exact account of a verified certificate or an exact solve:
// the optimum in the problem's own sense and the optimal assignment, both
// as rationals (integral rationals whenever the problem is integer).
type Result struct {
	// Objective is the exact optimum value.
	Objective *big.Rat
	// X is the exact optimal assignment over the real variables.
	X []*big.Rat
}

// Verify checks cert against p in exact rational arithmetic and returns
// the certified optimum, or an error describing why the certificate does
// not prove the claim. The checks, all exact:
//
//   - the basis is well-formed (m distinct in-range columns) and the basis
//     matrix is nonsingular;
//   - the basic solution x_B = B⁻¹b is nonnegative and the induced real
//     assignment satisfies every original Prefix/Constraints row — so the
//     point is genuinely feasible, even if a zero-valued artificial is
//     still basic;
//   - every non-artificial nonbasic column has a nonpositive reduced cost
//     c_j − c_B·B⁻¹·A_j in the internal maximization sense — so by weak
//     duality no feasible point beats x;
//   - for an Integer problem, x is integral, making the LP certificate a
//     certificate of the ILP optimum too.
//
// Verify rebuilds the standard form from p itself (cold or warm lowering
// per cert.Warm); the certificate contributes only the basis column
// indices, so it cannot misrepresent the feasible region.
func Verify(p *ilp.Problem, cert *ilp.Certificate) (*Result, error) {
	if cert == nil {
		return nil, fmt.Errorf("certify: no certificate")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cert.Flow {
		return verifyFlow(p, cert)
	}
	var (
		sf  *stdForm
		err error
	)
	if cert.Warm {
		sf, err = warmForm(p)
	} else {
		sf = coldForm(p)
	}
	if err != nil {
		return nil, err
	}
	if sf.m == 0 {
		return nil, fmt.Errorf("certify: problem has no rows; no basis to check")
	}
	if len(cert.Basis) != sf.m {
		return nil, fmt.Errorf("certify: basis names %d rows, standard form has %d", len(cert.Basis), sf.m)
	}
	seen := make(map[int]int, sf.m) // column -> basis position
	for i, j := range cert.Basis {
		if j < 0 || j >= sf.total {
			return nil, fmt.Errorf("certify: basis column %d out of range [0,%d)", j, sf.total)
		}
		if _, dup := seen[j]; dup {
			return nil, fmt.Errorf("certify: column %d basic in two rows", j)
		}
		seen[j] = i
	}

	// Basis matrix B (column i = standard-form column cert.Basis[i]), its
	// transpose, and the right-hand side. Both copies are built up front:
	// gaussSolve consumes its matrix.
	B := make([][]*big.Rat, sf.m)
	Bt := make([][]*big.Rat, sf.m)
	b := make([]*big.Rat, sf.m)
	for r := range B {
		B[r] = ratZeros(sf.m)
		Bt[r] = ratZeros(sf.m)
	}
	for r := range B {
		b[r] = new(big.Rat).Set(sf.rows[r].rhs)
		for k, col := range sf.rows[r].cols {
			if i, basic := seen[col]; basic {
				B[r][i].Add(B[r][i], sf.rows[r].vals[k])
				Bt[i][r].Add(Bt[i][r], sf.rows[r].vals[k])
			}
		}
	}

	xB, ok := gaussSolve(B, b)
	if !ok {
		return nil, fmt.Errorf("certify: basis matrix is singular")
	}
	for i, v := range xB {
		if v.Sign() < 0 {
			return nil, fmt.Errorf("certify: basic variable for column %d is negative (%s)", cert.Basis[i], v.RatString())
		}
	}

	// The real-variable assignment, and its exact feasibility against the
	// original rows. This is load-bearing, not belt-and-braces: a leftover
	// artificial basic at a nonzero value satisfies the standard form but
	// not the original row it patches.
	x := ratZeros(sf.n)
	for i, j := range cert.Basis {
		if j < sf.n {
			x[j].Set(xB[i])
		}
	}
	if err := checkOriginalRows(p, x); err != nil {
		return nil, err
	}
	if p.Integer {
		for j, v := range x {
			if !v.IsInt() {
				return nil, fmt.Errorf("certify: x%d = %s is not integral", j, v.RatString())
			}
		}
	}

	// Dual prices y solve Bᵀy = c_B; reduced costs must be nonpositive on
	// every admissible (non-artificial) nonbasic column.
	cInt := internalObj(p, sf.total)
	cB := make([]*big.Rat, sf.m)
	for r := range cB {
		cB[r] = new(big.Rat).Set(cInt[cert.Basis[r]])
	}
	y, ok := gaussSolve(Bt, cB)
	if !ok {
		return nil, fmt.Errorf("certify: basis matrix is singular (dual)")
	}
	yA := ratZeros(sf.total)
	tmp := new(big.Rat)
	for r := range sf.rows {
		if y[r].Sign() == 0 {
			continue
		}
		for k, col := range sf.rows[r].cols {
			tmp.Mul(y[r], sf.rows[r].vals[k])
			yA[col].Add(yA[col], tmp)
		}
	}
	for j := 0; j < sf.total; j++ {
		if sf.isArt[j] {
			continue
		}
		if _, basic := seen[j]; basic {
			continue
		}
		rc := new(big.Rat).Sub(cInt[j], yA[j])
		if rc.Sign() > 0 {
			return nil, fmt.Errorf("certify: nonbasic column %d has positive reduced cost %s; basis is not optimal", j, rc.RatString())
		}
	}

	obj := new(big.Rat)
	for j, v := range p.Objective {
		tmp.SetFloat64(v)
		tmp.Mul(tmp, x[j])
		obj.Add(obj, tmp)
	}
	return &Result{Objective: obj, X: x}, nil
}

// checkOriginalRows verifies x >= 0 and every Prefix/Constraints row of p
// at x, exactly.
func checkOriginalRows(p *ilp.Problem, x []*big.Rat) error {
	for j, v := range x {
		if v.Sign() < 0 {
			return fmt.Errorf("certify: x%d = %s is negative", j, v.RatString())
		}
	}
	lhs := new(big.Rat)
	tmp := new(big.Rat)
	holds := func(rel ilp.Relation, rhs *big.Rat) bool {
		switch rel {
		case ilp.LE:
			return lhs.Cmp(rhs) <= 0
		case ilp.GE:
			return lhs.Cmp(rhs) >= 0
		}
		return lhs.Cmp(rhs) == 0
	}
	for ri := range p.Prefix {
		r := &p.Prefix[ri]
		lhs.SetInt64(0)
		for k, col := range r.Cols {
			tmp.SetFloat64(r.Vals[k])
			tmp.Mul(tmp, x[col])
			lhs.Add(lhs, tmp)
		}
		if !holds(r.Rel, ratOf(r.RHS)) {
			return fmt.Errorf("certify: solution violates prefix row %d", ri)
		}
	}
	for ci := range p.Constraints {
		c := &p.Constraints[ci]
		lhs.SetInt64(0)
		for j, v := range c.Coeffs {
			tmp.SetFloat64(v)
			tmp.Mul(tmp, x[j])
			lhs.Add(lhs, tmp)
		}
		if !holds(c.Rel, ratOf(c.RHS)) {
			return fmt.Errorf("certify: solution violates constraint %d (%s)", ci, c.Name)
		}
	}
	return nil
}

func ratZeros(n int) []*big.Rat {
	z := make([]*big.Rat, n)
	for i := range z {
		z[i] = new(big.Rat)
	}
	return z
}

// gaussSolve solves M·z = rhs by Gaussian elimination with nonzero
// pivoting, consuming M and rhs. Returns ok=false when M is singular.
func gaussSolve(M [][]*big.Rat, rhs []*big.Rat) ([]*big.Rat, bool) {
	m := len(M)
	tmp := new(big.Rat)
	for col := 0; col < m; col++ {
		pr := -1
		for r := col; r < m; r++ {
			if M[r][col].Sign() != 0 {
				pr = r
				break
			}
		}
		if pr < 0 {
			return nil, false
		}
		M[col], M[pr] = M[pr], M[col]
		rhs[col], rhs[pr] = rhs[pr], rhs[col]
		inv := new(big.Rat).Inv(M[col][col])
		for j := col; j < m; j++ {
			M[col][j].Mul(M[col][j], inv)
		}
		rhs[col].Mul(rhs[col], inv)
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := M[r][col]
			if f.Sign() == 0 {
				continue
			}
			f = new(big.Rat).Set(f)
			for j := col; j < m; j++ {
				tmp.Mul(f, M[col][j])
				M[r][j].Sub(M[r][j], tmp)
			}
			tmp.Mul(f, rhs[col])
			rhs[r].Sub(rhs[r], tmp)
		}
	}
	return rhs, true
}
