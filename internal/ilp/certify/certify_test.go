package certify

import (
	"context"
	"math"
	"math/big"
	"math/rand"
	"testing"

	"cinderella/internal/ilp"
)

func cn(coeffs map[int]float64, rel ilp.Relation, rhs float64) ilp.Constraint {
	return ilp.Constraint{Coeffs: coeffs, Rel: rel, RHS: rhs}
}

// randomProblems generates boxed random problems (every variable carries an
// upper bound, so integer solves terminate) across senses and relation
// kinds, in the style of the ilp differential suite.
func randomProblems(seed int64, trials int, integer bool) []*ilp.Problem {
	rng := rand.New(rand.NewSource(seed))
	var ps []*ilp.Problem
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(3)
		p := &ilp.Problem{
			Sense: ilp.Sense(rng.Intn(2)), NumVars: n,
			Objective: map[int]float64{}, Integer: integer,
		}
		var rows []ilp.Constraint
		for i := 0; i < n; i++ {
			p.Objective[i] = float64(rng.Intn(11) - 5)
			rows = append(rows, cn(map[int]float64{i: 1}, ilp.LE, float64(1+rng.Intn(6))))
		}
		for r := 0; r < 1+rng.Intn(3); r++ {
			coeffs := map[int]float64{}
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					coeffs[i] = float64(rng.Intn(7) - 3)
				}
			}
			if len(coeffs) == 0 {
				coeffs[0] = 1
			}
			rows = append(rows, cn(coeffs, ilp.Relation(rng.Intn(3)), float64(rng.Intn(13)-4)))
		}
		// Exercise the shared-prefix layout half the time.
		if rng.Intn(2) == 0 {
			half := len(rows) / 2
			p.Prefix = ilp.Pack(rows[:half])
			p.Constraints = rows[half:]
		} else {
			p.Constraints = rows
		}
		ps = append(ps, p)
	}
	return ps
}

// TestCertifyColdDifferential runs the float64 solver with certificates on
// random problems and checks that every certificate verifies exactly, that
// the exact objective matches the float one, and that the exact rational
// solver reproduces status and optimum independently.
func TestCertifyColdDifferential(t *testing.T) {
	ctx := context.Background()
	certified := 0
	for i, p := range randomProblems(7, 150, true) {
		sol, err := ilp.SolveCtxOpts(ctx, p, ilp.SolveOptions{WantCert: true})
		if err != nil {
			t.Fatalf("problem %d: solve: %v", i, err)
		}
		ex, err := SolveExact(ctx, p)
		if err != nil {
			t.Fatalf("problem %d: exact: %v", i, err)
		}
		if ex.Status != sol.Status {
			t.Fatalf("problem %d: float status %v, exact %v\n%s", i, sol.Status, ex.Status, p)
		}
		if sol.Status == ilp.Optimal {
			exObj, _ := ex.Objective.Float64()
			if math.Abs(exObj-sol.Objective) > 1e-6 {
				t.Fatalf("problem %d: float obj %v, exact %v\n%s", i, sol.Objective, exObj, p)
			}
		}
		if sol.Cert == nil {
			continue
		}
		certified++
		res, err := Verify(p, sol.Cert)
		if err != nil {
			t.Fatalf("problem %d: certificate rejected: %v\n%s", i, err, p)
		}
		if res.Objective.Cmp(ex.Objective) != 0 {
			t.Fatalf("problem %d: certified obj %s, exact obj %s\n%s",
				i, res.Objective.RatString(), ex.Objective.RatString(), p)
		}
	}
	if certified < 50 {
		t.Fatalf("only %d certificates emitted; root-integral rate suspiciously low", certified)
	}
}

// TestCertifyDensePath certifies the dense oracle's solves: all three
// solver paths must emit checkable certificates.
func TestCertifyDensePath(t *testing.T) {
	certified := 0
	for i, p := range randomProblems(11, 80, false) {
		sol, err := ilp.SolveDenseCert(p)
		if err != nil {
			t.Fatalf("problem %d: %v", i, err)
		}
		if sol.Cert == nil {
			continue
		}
		certified++
		res, err := Verify(p, sol.Cert)
		if err != nil {
			t.Fatalf("problem %d: dense certificate rejected: %v\n%s", i, err, p)
		}
		got, _ := res.Objective.Float64()
		if math.Abs(got-sol.Objective) > 1e-6 {
			t.Fatalf("problem %d: dense obj %v, certified %v", i, sol.Objective, got)
		}
	}
	if certified == 0 {
		t.Fatal("no dense certificates emitted")
	}
}

// TestCertifyWarmPath certifies warm dual-simplex solves: a presolve-free
// warm start over a shared base, with per-set deltas covering <=, >= and =
// (the = case exercises the pair-split lowering).
func TestCertifyWarmPath(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ctx := context.Background()
	certified := 0
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(3)
		base := &ilp.Problem{
			Sense: ilp.Sense(rng.Intn(2)), NumVars: n, Objective: map[int]float64{},
		}
		var baseRows []ilp.Constraint
		for i := 0; i < n; i++ {
			base.Objective[i] = float64(rng.Intn(9) - 3)
			baseRows = append(baseRows, cn(map[int]float64{i: 1}, ilp.LE, float64(2+rng.Intn(6))))
		}
		base.Prefix = ilp.Pack(baseRows)
		w := ilp.NewWarmStartOpts(base, ilp.WarmOptions{DisablePresolve: true})
		if !w.Ready() {
			t.Fatalf("trial %d: base not ready", trial)
		}
		for s := 0; s < 4; s++ {
			var set []ilp.Constraint
			for r := 0; r < 1+rng.Intn(2); r++ {
				coeffs := map[int]float64{}
				for i := 0; i < n; i++ {
					if rng.Intn(2) == 0 {
						coeffs[i] = float64(rng.Intn(5) - 2)
					}
				}
				set = append(set, cn(coeffs, ilp.Relation(rng.Intn(3)), float64(rng.Intn(9)-2)))
			}
			r := w.SolveSetFull(set, 0, false, true)
			if !r.OK || r.Status != ilp.Optimal || r.Cert == nil {
				continue
			}
			certified++
			full := &ilp.Problem{
				Sense: base.Sense, NumVars: n, Objective: base.Objective,
				Prefix: base.Prefix, Constraints: set,
			}
			res, err := Verify(full, r.Cert)
			if err != nil {
				t.Fatalf("trial %d set %d: warm certificate rejected: %v\n%s", trial, s, err, full)
			}
			got, _ := res.Objective.Float64()
			if math.Abs(got-r.Objective) > 1e-6 {
				t.Fatalf("trial %d set %d: warm obj %v, certified %v", trial, s, r.Objective, got)
			}
			ex, err := SolveExact(ctx, full)
			if err != nil || ex.Status != ilp.Optimal {
				t.Fatalf("trial %d set %d: exact re-solve: %v %v", trial, s, ex, err)
			}
			if res.Objective.Cmp(ex.Objective) != 0 {
				t.Fatalf("trial %d set %d: certified %s, exact %s",
					trial, s, res.Objective.RatString(), ex.Objective.RatString())
			}
		}
	}
	if certified < 20 {
		t.Fatalf("only %d warm certificates exercised", certified)
	}
}

// TestVerifyRejectsTamperedCertificate corrupts a valid certificate in the
// ways a broken solver would and asserts Verify refuses each.
func TestVerifyRejectsTamperedCertificate(t *testing.T) {
	p := &ilp.Problem{
		Sense: ilp.Maximize, NumVars: 2, Objective: map[int]float64{0: 3, 1: 2},
		Constraints: []ilp.Constraint{
			cn(map[int]float64{0: 1, 1: 1}, ilp.LE, 4),
			cn(map[int]float64{0: 1, 1: 3}, ilp.LE, 6),
		},
	}
	sol, err := ilp.SolveCtxOpts(context.Background(), p, ilp.SolveOptions{WantCert: true})
	if err != nil || sol.Status != ilp.Optimal || sol.Cert == nil {
		t.Fatalf("setup solve: %+v %v", sol, err)
	}
	if _, err := Verify(p, sol.Cert); err != nil {
		t.Fatalf("genuine certificate rejected: %v", err)
	}

	tamper := func(name string, mutate func(c *ilp.Certificate)) {
		c := &ilp.Certificate{Warm: sol.Cert.Warm, Basis: append([]int(nil), sol.Cert.Basis...)}
		mutate(c)
		if _, err := Verify(p, c); err == nil {
			t.Errorf("%s: tampered certificate verified", name)
		}
	}
	tamper("basis swapped to slack", func(c *ilp.Certificate) { c.Basis[0] = 2 }) // x0 out, slack 0 in: suboptimal vertex
	tamper("duplicate column", func(c *ilp.Certificate) { c.Basis[1] = c.Basis[0] })
	tamper("out of range", func(c *ilp.Certificate) { c.Basis[0] = 99 })
	tamper("truncated", func(c *ilp.Certificate) { c.Basis = c.Basis[:1] })
	if _, err := Verify(p, nil); err == nil {
		t.Error("nil certificate verified")
	}
}

// TestSolveExactKnapsack pins the exact branch-and-bound on the knapsack
// fixture whose root relaxation is fractional.
func TestSolveExactKnapsack(t *testing.T) {
	p := &ilp.Problem{
		Sense: ilp.Maximize, NumVars: 4, Integer: true,
		Objective: map[int]float64{0: 8, 1: 11, 2: 6, 3: 4},
		Constraints: []ilp.Constraint{
			cn(map[int]float64{0: 5, 1: 7, 2: 4, 3: 3}, ilp.LE, 14),
			cn(map[int]float64{0: 1}, ilp.LE, 1),
			cn(map[int]float64{1: 1}, ilp.LE, 1),
			cn(map[int]float64{2: 1}, ilp.LE, 1),
			cn(map[int]float64{3: 1}, ilp.LE, 1),
		},
	}
	ex, err := SolveExact(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Status != ilp.Optimal || ex.Objective.Cmp(big.NewRat(21, 1)) != 0 {
		t.Fatalf("exact knapsack: %v %v, want optimal 21", ex.Status, ex.Objective)
	}
	if ex.RootIntegral {
		t.Fatal("knapsack root should be fractional")
	}
	if !ratsIntegral(ex.X) {
		t.Fatalf("exact optimum not integral: %v", ex.X)
	}
}

// TestSolveExactDegenerate covers the no-rows and infeasible corners.
func TestSolveExactDegenerate(t *testing.T) {
	ctx := context.Background()
	unb := &ilp.Problem{Sense: ilp.Maximize, NumVars: 1, Objective: map[int]float64{0: 1}}
	if ex, err := SolveExact(ctx, unb); err != nil || ex.Status != ilp.Unbounded {
		t.Fatalf("unbounded: %+v %v", ex, err)
	}
	inf := &ilp.Problem{
		Sense: ilp.Maximize, NumVars: 1, Objective: map[int]float64{0: 1},
		Constraints: []ilp.Constraint{
			cn(map[int]float64{0: 1}, ilp.LE, 3),
			cn(map[int]float64{0: 1}, ilp.GE, 5),
		},
	}
	if ex, err := SolveExact(ctx, inf); err != nil || ex.Status != ilp.Infeasible {
		t.Fatalf("infeasible: %+v %v", ex, err)
	}
	origin := &ilp.Problem{Sense: ilp.Minimize, NumVars: 2, Objective: map[int]float64{0: 1, 1: 1}}
	if ex, err := SolveExact(ctx, origin); err != nil || ex.Status != ilp.Optimal || ex.Objective.Sign() != 0 {
		t.Fatalf("origin: %+v %v", ex, err)
	}
}
