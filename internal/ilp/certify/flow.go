package certify

import (
	"fmt"
	"math/big"

	"cinderella/internal/ilp"
)

// verifyFlow checks a network-kernel certificate (ilp.Certificate.Flow) in
// exact rational arithmetic. The flow kernel works on a transformed
// min-cost-flow network, but its certificate is expressed against the
// original rows exactly as stored — a primal assignment X over the real
// variables and one dual multiplier per row (Prefix first, then
// Constraints), in the solver's internal maximization sense. That makes
// the check pure LP duality, with no reference to the network transform:
//
//   - X >= 0 and X satisfies every original row (primal feasibility);
//   - each Y_i has the sign its row's relation admits for a maximization
//     dual — y >= 0 for <=, y <= 0 for >=, free for = — so yᵀ·(Ax) is
//     bounded by yᵀ·b at any feasible point;
//   - Aᵀ·Y >= c componentwise over the real columns (dual feasibility
//     against the internal-sense objective), so yᵀb bounds cᵀx from above
//     for every feasible x;
//   - Yᵀ·b == cᵀ·X (strong duality), pinning X as optimal, not merely
//     feasible;
//   - for an Integer problem, X is integral, lifting the LP proof to the
//     ILP.
func verifyFlow(p *ilp.Problem, cert *ilp.Certificate) (*Result, error) {
	n := p.NumVars
	m := len(p.Prefix) + len(p.Constraints)
	if m == 0 {
		return nil, fmt.Errorf("certify: problem has no rows; nothing for a flow certificate to prove")
	}
	if len(cert.X) != n {
		return nil, fmt.Errorf("certify: flow certificate has %d primal values, problem has %d variables", len(cert.X), n)
	}
	if len(cert.Y) != m {
		return nil, fmt.Errorf("certify: flow certificate has %d duals, problem has %d rows", len(cert.Y), m)
	}

	x := make([]*big.Rat, n)
	for j, v := range cert.X {
		x[j] = ratOf(v)
	}
	if err := checkOriginalRows(p, x); err != nil {
		return nil, err
	}
	if p.Integer {
		for j, v := range x {
			if !v.IsInt() {
				return nil, fmt.Errorf("certify: x%d = %s is not integral", j, v.RatString())
			}
		}
	}

	// Row views as stored: relation, rhs, and coefficient walk.
	y := make([]*big.Rat, m)
	for i, v := range cert.Y {
		y[i] = ratOf(v)
	}
	rel := func(i int) ilp.Relation {
		if i < len(p.Prefix) {
			return p.Prefix[i].Rel
		}
		return p.Constraints[i-len(p.Prefix)].Rel
	}
	rhs := func(i int) *big.Rat {
		if i < len(p.Prefix) {
			return ratOf(p.Prefix[i].RHS)
		}
		return ratOf(p.Constraints[i-len(p.Prefix)].RHS)
	}
	for i := 0; i < m; i++ {
		switch rel(i) {
		case ilp.LE:
			if y[i].Sign() < 0 {
				return nil, fmt.Errorf("certify: dual y%d = %s is negative on a <= row", i, y[i].RatString())
			}
		case ilp.GE:
			if y[i].Sign() > 0 {
				return nil, fmt.Errorf("certify: dual y%d = %s is positive on a >= row", i, y[i].RatString())
			}
		}
	}

	// Dual feasibility: (Aᵀ·Y)_j >= c_j for every real column, in the
	// internal maximization sense.
	cInt := internalObj(p, n)
	yA := ratZeros(n)
	tmp := new(big.Rat)
	addRow := func(i int, cols []int, vals []*big.Rat) {
		if y[i].Sign() == 0 {
			return
		}
		for k, col := range cols {
			tmp.Mul(y[i], vals[k])
			yA[col].Add(yA[col], tmp)
		}
	}
	for i := range p.Prefix {
		r := &p.Prefix[i]
		cols := make([]int, len(r.Cols))
		vals := make([]*big.Rat, len(r.Cols))
		for k, col := range r.Cols {
			cols[k] = int(col)
			vals[k] = ratOf(r.Vals[k])
		}
		addRow(i, cols, vals)
	}
	for ci := range p.Constraints {
		c := &p.Constraints[ci]
		cols := sortedCols(c.Coeffs)
		vals := make([]*big.Rat, len(cols))
		for k, j := range cols {
			vals[k] = ratOf(c.Coeffs[j])
		}
		addRow(len(p.Prefix)+ci, cols, vals)
	}
	for j := 0; j < n; j++ {
		if yA[j].Cmp(cInt[j]) < 0 {
			return nil, fmt.Errorf("certify: flow dual is infeasible at column %d (yᵀA = %s < c = %s)", j, yA[j].RatString(), cInt[j].RatString())
		}
	}

	// Strong duality: Yᵀ·b == cᵀ·X.
	dual := new(big.Rat)
	for i := 0; i < m; i++ {
		if y[i].Sign() == 0 {
			continue
		}
		tmp.Mul(y[i], rhs(i))
		dual.Add(dual, tmp)
	}
	primal := new(big.Rat)
	for j := 0; j < n; j++ {
		if cInt[j].Sign() == 0 {
			continue
		}
		tmp.Mul(cInt[j], x[j])
		primal.Add(primal, tmp)
	}
	if primal.Cmp(dual) != 0 {
		return nil, fmt.Errorf("certify: flow duality gap (primal %s, dual %s)", primal.RatString(), dual.RatString())
	}

	obj := new(big.Rat)
	for j, v := range p.Objective {
		tmp.SetFloat64(v)
		tmp.Mul(tmp, x[j])
		obj.Add(obj, tmp)
	}
	return &Result{Objective: obj, X: x}, nil
}
