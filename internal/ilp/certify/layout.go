// Package certify is the exact verification layer of the float64 simplex
// kernels: it re-checks a reported optimum against the optimal-basis
// certificate the solver emitted (ilp.Certificate), entirely in rational
// arithmetic (math/big.Rat, to which every float64 coefficient converts
// exactly), and provides an exact rational simplex fallback for solves the
// certificate cannot vouch for.
//
// The checker never trusts solver-computed numbers: it rebuilds the
// standard form itself from the Problem using the same deterministic
// lowering the solver used (cold two-phase layout or warm delta layout,
// per Certificate.Warm), takes only the basis column indices from the
// certificate, and derives the basic solution, the dual prices and every
// reduced cost exactly. A verified certificate is a proof: the basic
// solution is feasible for the original rows, and weak duality over the
// exactly-nonpositive reduced costs shows no feasible point does better.
package certify

import (
	"fmt"
	"math/big"

	"cinderella/internal/ilp"
)

// stdRow is one row of the exact standard form A·x = b over x >= 0.
type stdRow struct {
	cols []int
	vals []*big.Rat
	rhs  *big.Rat
}

// stdForm is the exact standard form of a Problem under one of the two
// deterministic lowerings of the float64 solvers. Columns are: the n real
// variables, then slack/surplus columns, then artificial columns (cold
// layout), then — warm layout only — one fresh slack per lowered delta row.
type stdForm struct {
	n     int // real columns
	total int // all columns
	m     int
	rows  []stdRow
	// isArt marks artificial columns: excluded from the reduced-cost
	// optimality check (an original-feasible point always extends with
	// artificials at zero) and barred from entering in the exact solver.
	isArt []bool
	// initBasis is the per-row starting basis of the cold layout (slack for
	// <=, artificial for >= and =); meaningless for the warm layout, whose
	// solves start from the retained base basis instead.
	initBasis []int
	// numArt counts artificial columns (phase 1 needed when > 0).
	numArt int
}

func ratOf(f float64) *big.Rat {
	r := new(big.Rat)
	r.SetFloat64(f) // exact: Validate rejected NaN/Inf
	return r
}

// normRel flips a raw constraint into the sign-normalized form the solvers
// lower (RHS >= 0, LE/GE swapped when the RHS was negative).
func normRel(rel ilp.Relation, rhs float64) (ilp.Relation, bool) {
	if rhs >= 0 {
		return rel, false
	}
	switch rel {
	case ilp.LE:
		return ilp.GE, true
	case ilp.GE:
		return ilp.LE, true
	}
	return rel, true
}

// coldForm rebuilds the cold two-phase standard form of p exactly: Prefix
// rows as packed (already normalized), Constraints sign-normalized, one
// slack per <=, surplus+artificial per >=, artificial per =, columns
// assigned in row order exactly as the sparse and dense kernels do.
func coldForm(p *ilp.Problem) *stdForm {
	n := p.NumVars
	type spec struct {
		cols []int
		vals []*big.Rat
		rel  ilp.Relation
		rhs  *big.Rat
	}
	specs := make([]spec, 0, len(p.Prefix)+len(p.Constraints))
	for i := range p.Prefix {
		r := &p.Prefix[i]
		s := spec{rel: r.Rel, rhs: ratOf(r.RHS)}
		for k, col := range r.Cols {
			s.cols = append(s.cols, int(col))
			s.vals = append(s.vals, ratOf(r.Vals[k]))
		}
		specs = append(specs, s)
	}
	for i := range p.Constraints {
		c := &p.Constraints[i]
		rel, neg := normRel(c.Rel, c.RHS)
		rhs := c.RHS
		if neg {
			rhs = -rhs
		}
		s := spec{rel: rel, rhs: ratOf(rhs)}
		// Iterate columns in sorted order for determinism of the row's
		// sparse form; the column assignment below depends only on rel.
		for _, j := range sortedCols(c.Coeffs) {
			v := c.Coeffs[j]
			if v == 0 {
				continue
			}
			if neg {
				v = -v
			}
			s.cols = append(s.cols, j)
			s.vals = append(s.vals, ratOf(v))
		}
		specs = append(specs, s)
	}

	numSlack, numArt := 0, 0
	for i := range specs {
		switch specs[i].rel {
		case ilp.LE:
			numSlack++
		case ilp.GE:
			numSlack++
			numArt++
		case ilp.EQ:
			numArt++
		}
	}
	sf := &stdForm{
		n:      n,
		total:  n + numSlack + numArt,
		m:      len(specs),
		numArt: numArt,
	}
	sf.isArt = make([]bool, sf.total)
	for j := n + numSlack; j < sf.total; j++ {
		sf.isArt[j] = true
	}
	sf.rows = make([]stdRow, sf.m)
	sf.initBasis = make([]int, sf.m)
	slackCol, artCol := n, n+numSlack
	one := big.NewRat(1, 1)
	negOne := big.NewRat(-1, 1)
	for i := range specs {
		s := &specs[i]
		row := stdRow{cols: s.cols, vals: s.vals, rhs: s.rhs}
		switch s.rel {
		case ilp.LE:
			row.cols = append(row.cols, slackCol)
			row.vals = append(row.vals, one)
			sf.initBasis[i] = slackCol
			slackCol++
		case ilp.GE:
			row.cols = append(row.cols, slackCol)
			row.vals = append(row.vals, negOne)
			slackCol++
			row.cols = append(row.cols, artCol)
			row.vals = append(row.vals, one)
			sf.initBasis[i] = artCol
			artCol++
		case ilp.EQ:
			row.cols = append(row.cols, artCol)
			row.vals = append(row.vals, one)
			sf.initBasis[i] = artCol
			artCol++
		}
		sf.rows[i] = row
	}
	return sf
}

// warmForm rebuilds the warm-path standard form: the base (Prefix rows
// only) lowered cold, then each per-set constraint lowered to <= rows each
// carried by one fresh slack — >= negated, = split into a <=/>= pair, no
// sign normalization — with constant rows the base trivially satisfies
// dropped, exactly as WarmStart.SolveSet does. Returns an error when a
// constant row is a contradiction: such a set reports Infeasible without a
// tableau and can never have produced a certificate.
func warmForm(p *ilp.Problem) (*stdForm, error) {
	base := coldForm(&ilp.Problem{
		Sense:     p.Sense,
		NumVars:   p.NumVars,
		Objective: p.Objective,
		Prefix:    p.Prefix,
	})
	type delta struct {
		cols []int
		vals []*big.Rat
		rhs  *big.Rat
	}
	var deltas []delta
	lower := func(c *ilp.Constraint, negate bool) {
		d := delta{rhs: ratOf(c.RHS)}
		if negate {
			d.rhs.Neg(d.rhs)
		}
		for _, j := range sortedCols(c.Coeffs) {
			v := c.Coeffs[j]
			if v == 0 {
				continue
			}
			if negate {
				v = -v
			}
			d.cols = append(d.cols, j)
			d.vals = append(d.vals, ratOf(v))
		}
		deltas = append(deltas, d)
	}
	for i := range p.Constraints {
		c := &p.Constraints[i]
		dropped, infeasible := ilp.DroppedDeltaRow(c)
		if infeasible {
			return nil, fmt.Errorf("certify: set constraint %d is a constant contradiction; the warm path cannot have certified it", i)
		}
		if dropped {
			continue
		}
		switch c.Rel {
		case ilp.LE:
			lower(c, false)
		case ilp.GE:
			lower(c, true)
		case ilp.EQ:
			lower(c, false)
			lower(c, true)
		}
	}

	k := len(deltas)
	sf := &stdForm{
		n:      base.n,
		total:  base.total + k,
		m:      base.m + k,
		numArt: base.numArt,
	}
	sf.isArt = make([]bool, sf.total)
	copy(sf.isArt, base.isArt)
	sf.rows = make([]stdRow, 0, sf.m)
	sf.rows = append(sf.rows, base.rows...)
	one := big.NewRat(1, 1)
	for i, d := range deltas {
		slack := base.total + i
		sf.rows = append(sf.rows, stdRow{
			cols: append(d.cols, slack),
			vals: append(d.vals, one),
			rhs:  d.rhs,
		})
	}
	return sf, nil
}

func sortedCols(coeffs map[int]float64) []int {
	cols := make([]int, 0, len(coeffs))
	for j := range coeffs {
		cols = append(cols, j)
	}
	// Insertion sort: coefficient maps in this domain hold a handful of
	// entries.
	for i := 1; i < len(cols); i++ {
		for k := i; k > 0 && cols[k] < cols[k-1]; k-- {
			cols[k], cols[k-1] = cols[k-1], cols[k]
		}
	}
	return cols
}

// internalObj is the objective in the solver's internal maximization sense
// over standard-form columns: sign * Objective on real columns, zero on
// auxiliary ones.
func internalObj(p *ilp.Problem, total int) []*big.Rat {
	c := make([]*big.Rat, total)
	for j := range c {
		c[j] = new(big.Rat)
	}
	neg := p.Sense == ilp.Minimize
	for j, v := range p.Objective {
		c[j].SetFloat64(v)
		if neg {
			c[j].Neg(c[j])
		}
	}
	return c
}
