package ilp

// Numeric tolerances of the float64 solver paths, collected in one place.
// The dense oracle, the sparse production kernel, the warm-started dual
// simplex and the branch-and-bound layer all share these; a tolerance that
// appears in one path must mean the same thing in the others, or the
// differential checks (SetSelfCheck, checkAgainstCold) report divergence
// where there is only disagreement about rounding.
const (
	// eps is the pivot/reduced-cost tolerance: entries whose magnitude is
	// below it are treated as zero when choosing entering columns and ratio
	// rows. Problems in this domain carry small-integer coefficients, so
	// anything under eps is accumulated float noise, not signal.
	eps = 1e-9

	// intTol is the integrality tolerance of branch and bound: a relaxation
	// value within intTol of an integer counts as that integer.
	intTol = 1e-6

	// feasTol is the residual feasibility tolerance: phase 1 declares a
	// problem infeasible when the artificial variables cannot be driven
	// below it, solution extraction clamps basic values in (-feasTol, 0) to
	// zero, and the dual simplex treats a right-hand side above -feasTol as
	// primal feasible. It is looser than eps because a residual is a sum of
	// per-pivot errors, not a single entry.
	feasTol = 1e-7

	// cutoffTol is the strict-domination margin for incumbent cutoffs on
	// the warm path: a dual bound must beat the cutoff by more than
	// cutoffTol before the solve is abandoned as Dominated, so a set tied
	// with the incumbent is still solved exactly.
	cutoffTol = 1e-7

	// agreeTol is the objective agreement tolerance of the differential
	// checks: two float64 solvers that followed different pivot sequences
	// to the same optimum may disagree by accumulated rounding, never by
	// more than this on the problems of this domain.
	agreeTol = 1e-6

	// presolveTol is the tolerance for treating a substituted coefficient
	// or right-hand side as zero during the structural presolve. Base rows
	// in this domain carry small integers, so anything below it is float
	// noise.
	presolveTol = 1e-7

	// suspectPivotLo / suspectPivotHi bound the pivot magnitudes the solver
	// considers well-conditioned. A pivot outside [lo, hi] divides the
	// tableau by a number small (or large) enough that float64 cancellation
	// can poison every later row update, so such solves are flagged suspect
	// (Stats.SuspectPivots) and, under ipet's Certify mode, re-verified
	// exactly and never cached.
	suspectPivotLo = 1e-7
	suspectPivotHi = 1e7
)

// MaxExactCoeff is the largest integer magnitude float64 represents exactly
// (2^53). Objective coefficients are built by summing int64 per-block costs
// and then solved in float64 arithmetic; a sum beyond this bound would be
// silently rounded, so callers must refuse to build such an objective
// rather than hand the solver a coefficient that is already wrong.
const MaxExactCoeff = int64(1) << 53
