package ilp

import (
	"math"
	"math/rand"
	"testing"
)

// randomFlowProblem derives a random flow-conservation problem from seed:
// a chain of nodes with random forward arcs (each arc variable appears in
// exactly two conservation rows, +1 at its head and -1 at its tail), random
// node imbalances folded into the right-hand sides, single-variable bound
// rows, and a small integer objective. This is the shape the network
// kernel's fast path exists for; the generator also flips some rows to
// inequalities so slack arcs and infeasible/unbounded outcomes occur.
func randomFlowProblem(seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	nNodes := 2 + rng.Intn(5)
	type arc struct{ from, to int }
	var arcs []arc
	// A spine so every node participates, plus random extra arcs.
	for v := 1; v < nNodes; v++ {
		arcs = append(arcs, arc{v - 1, v})
	}
	for k := rng.Intn(2 * nNodes); k > 0; k-- {
		u, v := rng.Intn(nNodes), rng.Intn(nNodes)
		if u != v {
			arcs = append(arcs, arc{u, v})
		}
	}
	p := &Problem{
		Sense:     Sense(rng.Intn(2)),
		NumVars:   len(arcs),
		Objective: map[int]float64{},
	}
	for j := range arcs {
		if rng.Intn(3) > 0 {
			p.Objective[j] = float64(rng.Intn(9) - 4)
		}
	}
	rows := make([]map[int]float64, nNodes)
	for v := range rows {
		rows[v] = map[int]float64{}
	}
	for j, a := range arcs {
		rows[a.to][j] += 1
		rows[a.from][j] -= 1
	}
	for _, coeffs := range rows {
		if len(coeffs) == 0 {
			continue
		}
		rel := EQ
		if rng.Intn(4) == 0 {
			rel = Relation(rng.Intn(3))
		}
		p.Constraints = append(p.Constraints, Constraint{
			Coeffs: coeffs, Rel: rel, RHS: float64(rng.Intn(7) - 3),
		})
	}
	// Single-variable bound rows (capacities and lower bounds).
	for j := 0; j < len(arcs); j++ {
		if rng.Intn(2) == 0 {
			p.Constraints = append(p.Constraints,
				Constraint{Coeffs: map[int]float64{j: 1}, Rel: LE, RHS: float64(rng.Intn(8))})
		}
		if rng.Intn(5) == 0 {
			p.Constraints = append(p.Constraints,
				Constraint{Coeffs: map[int]float64{j: 1}, Rel: GE, RHS: float64(rng.Intn(3))})
		}
	}
	return p
}

// checkNetworkAgainstDense cross-checks the network kernel on p against the
// dense oracle. A kernel that declines (ok=false) is fine — the router
// would fall back — but an answer it does give must match the oracle
// exactly in status and objective, be feasible, and be integral.
func checkNetworkAgainstDense(t *testing.T, seed int64, p *Problem) {
	t.Helper()
	r, ok := networkSolve(p, true)
	if !ok {
		return
	}
	dStatus, dObj, _, _ := denseSimplex(p)
	if r.status != dStatus {
		t.Fatalf("seed %d: network status %v, dense %v\n%s", seed, r.status, dStatus, p)
	}
	if r.status != Optimal {
		return
	}
	if math.Abs(r.obj-dObj) > 1e-6 {
		t.Fatalf("seed %d: network obj %v, dense %v\n%s", seed, r.obj, dObj, p)
	}
	if !p.Feasible(r.x, 1e-6) {
		t.Fatalf("seed %d: network optimum infeasible: %v\n%s", seed, r.x, p)
	}
	for j, v := range r.x {
		if v != math.Trunc(v) {
			t.Fatalf("seed %d: network x%d = %v is fractional on an all-integer instance\n%s", seed, j, v, p)
		}
	}
	if r.cert == nil || !r.cert.Flow {
		t.Fatalf("seed %d: network optimum came back without a flow certificate", seed)
	}
}

// TestNetworkKernelRandomFlows is the deterministic slice of the fuzz
// corpus: the kernel must agree with the dense oracle on a few thousand
// random min-cost-flow instances every CI run, fuzzing or not.
func TestNetworkKernelRandomFlows(t *testing.T) {
	for seed := int64(0); seed < 3000; seed++ {
		checkNetworkAgainstDense(t, seed, randomFlowProblem(seed))
	}
}

// FuzzNetworkKernel drives the network kernel differential from fuzzed
// seeds (the seed feeds a PRNG that grows a random flow-conservation
// problem, so every input is a well-formed LP by construction).
func FuzzNetworkKernel(f *testing.F) {
	for seed := int64(0); seed < 64; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkNetworkAgainstDense(t, seed, randomFlowProblem(seed))
	})
}

// TestNetworkKernelSolvesExplosionShape pins the routing claim the perf
// artifact records: a diamond-chain problem whose annotation rows are
// single-variable equalities (the explosion64 workload's shape) must be
// answered by the network kernel, visible as lpResult.network through
// Solve's stats.
func TestNetworkKernelSolvesExplosionShape(t *testing.T) {
	p := &Problem{
		Sense: Maximize, NumVars: 4, Integer: true,
		Objective: map[int]float64{0: 10, 1: 5, 2: 2, 3: 7},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: 1},
			{Coeffs: map[int]float64{1: 1, 2: 1, 0: -1}, Rel: EQ, RHS: 0},
			{Coeffs: map[int]float64{3: 1, 1: -1, 2: -1}, Rel: EQ, RHS: 0},
			{Coeffs: map[int]float64{1: 1}, Rel: EQ, RHS: 1},
			{Coeffs: map[int]float64{2: 1}, Rel: EQ, RHS: 0},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective != 22 {
		t.Fatalf("got %v %v, want optimal 22", sol.Status, sol.Objective)
	}
	if sol.Stats.NetworkSolves == 0 {
		t.Fatalf("flow-shaped problem was not answered by the network kernel: %+v", sol.Stats)
	}
	if !sol.Stats.RootIntegral {
		t.Fatalf("network root not integral: %+v", sol.Stats)
	}
}

// TestRevisedKernelMatchesOracles runs the revised kernel directly over the
// full fixture corpus (the same problems the sparse/dense differential
// uses) and checks status, objective, and feasibility against the dense
// oracle wherever the kernel doesn't decline.
func TestRevisedKernelMatchesOracles(t *testing.T) {
	for i, p := range fixtureProblems() {
		r, ok := revisedSimplex(p, false)
		if !ok {
			t.Fatalf("fixture %d: revised kernel declined\n%s", i, p)
		}
		dStatus, dObj, _, _ := denseSimplex(p)
		if r.status != dStatus {
			t.Fatalf("fixture %d: revised status %v, dense %v\n%s", i, r.status, dStatus, p)
		}
		if r.status == Optimal {
			if math.Abs(r.obj-dObj) > 1e-6 {
				t.Fatalf("fixture %d: revised obj %v, dense %v\n%s", i, r.obj, dObj, p)
			}
			if !p.Feasible(r.x, 1e-6) {
				t.Fatalf("fixture %d: revised optimum infeasible: %v\n%s", i, r.x, p)
			}
		}
	}
}

// TestKernelToggles checks SetKernels routing: with both fast paths off,
// solves still answer identically through the tableau.
func TestKernelToggles(t *testing.T) {
	defer SetKernels(true, true)
	p := fixtureProblems()[0]
	ref, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range [][2]bool{{true, true}, {true, false}, {false, true}, {false, false}} {
		SetKernels(cfg[0], cfg[1])
		if n, r := KernelsEnabled(); n != cfg[0] || r != cfg[1] {
			t.Fatalf("KernelsEnabled = %v,%v after SetKernels(%v,%v)", n, r, cfg[0], cfg[1])
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != ref.Status || sol.Objective != ref.Objective {
			t.Fatalf("kernels %v: %v %v, want %v %v", cfg, sol.Status, sol.Objective, ref.Status, ref.Objective)
		}
	}
}
