package ilp

import (
	"math"
	"math/rand"
	"testing"
)

// presolveProblem packs base rows for presolve the way the analysis does.
func presolveProblem(sense Sense, nVars int, obj map[int]float64, rows []Constraint) *Problem {
	return &Problem{
		Sense:     sense,
		NumVars:   nVars,
		Objective: obj,
		Prefix:    Pack(rows),
	}
}

func TestPresolveFixAndSubstitute(t *testing.T) {
	// x0 = 1 (root), x1 = x0's flow via x1 - x2 = 0, x3 <= 5, x4 fixed by
	// x4 = 2*x0. Reduced space should keep one column for {x1,x2} and one
	// for x3.
	p := presolveProblem(Maximize, 5, map[int]float64{0: 10, 1: 3, 2: 4, 3: 1, 4: 2},
		[]Constraint{
			{Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: 1},
			{Coeffs: map[int]float64{1: 1, 2: -1}, Rel: EQ, RHS: 0},
			{Coeffs: map[int]float64{3: 1}, Rel: LE, RHS: 5},
			{Coeffs: map[int]float64{4: 1, 0: -2}, Rel: EQ, RHS: 0},
			{Coeffs: map[int]float64{1: 1}, Rel: LE, RHS: 7},
		})
	red, infeasible := presolveBase(p)
	if infeasible {
		t.Fatalf("presolve reported infeasible")
	}
	if red == nil {
		t.Fatalf("presolve eliminated nothing")
	}
	if red.nRed != 2 {
		t.Fatalf("nRed = %d, want 2", red.nRed)
	}
	if red.col[0] != -1 || red.fixed[0] != 1 {
		t.Errorf("x0: col %d fixed %g, want fixed 1", red.col[0], red.fixed[0])
	}
	if red.col[4] != -1 || red.fixed[4] != 2 {
		t.Errorf("x4: col %d fixed %g, want fixed 2", red.col[4], red.fixed[4])
	}
	if red.col[1] != red.col[2] || red.col[1] < 0 {
		t.Errorf("x1/x2 should share a reduced column, got %d/%d", red.col[1], red.col[2])
	}
	// Objective: 10*1 + 2*2 fixed offset, x1+x2 merge to 7 on one column.
	if red.objOffset != 14 {
		t.Errorf("objOffset = %g, want 14", red.objOffset)
	}
	if red.obj[int(red.col[1])] != 7 {
		t.Errorf("merged objective coefficient = %g, want 7", red.obj[int(red.col[1])])
	}
	// The two x0/x4 equalities and nothing else should drop; x1<=7 and
	// x3<=5 remain.
	if len(red.rows) != 2 {
		t.Errorf("reduced rows = %d, want 2", len(red.rows))
	}
}

func TestPresolveNullBranch(t *testing.T) {
	// x0 + x1 = 0 over nonnegative variables forces both to zero, which
	// then propagates through x2 - x1 = 0.
	p := presolveProblem(Maximize, 4, map[int]float64{3: 1},
		[]Constraint{
			{Coeffs: map[int]float64{0: 1, 1: 1}, Rel: EQ, RHS: 0},
			{Coeffs: map[int]float64{2: 1, 1: -1}, Rel: EQ, RHS: 0},
			{Coeffs: map[int]float64{3: 1}, Rel: LE, RHS: 9},
		})
	red, infeasible := presolveBase(p)
	if infeasible || red == nil {
		t.Fatalf("presolve failed: red=%v infeasible=%v", red, infeasible)
	}
	for v := 0; v <= 2; v++ {
		if red.col[v] != -1 || red.fixed[v] != 0 {
			t.Errorf("x%d: col %d fixed %g, want fixed 0", v, red.col[v], red.fixed[v])
		}
	}
	if red.nRed != 1 {
		t.Errorf("nRed = %d, want 1", red.nRed)
	}
}

func TestPresolveInfeasibleBase(t *testing.T) {
	// x0 = 1 and x0 = 2 contradict.
	p := presolveProblem(Maximize, 2, map[int]float64{1: 1},
		[]Constraint{
			{Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: 1},
			{Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: 2},
			{Coeffs: map[int]float64{1: 1}, Rel: LE, RHS: 3},
		})
	if _, infeasible := presolveBase(p); !infeasible {
		t.Fatalf("contradictory base not detected")
	}
	// A negative fixed value also contradicts nonnegativity.
	p = presolveProblem(Maximize, 2, map[int]float64{1: 1},
		[]Constraint{
			{Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: -1},
			{Coeffs: map[int]float64{1: 1}, Rel: LE, RHS: 3},
		})
	if _, infeasible := presolveBase(p); !infeasible {
		t.Fatalf("negative fixed value not detected")
	}
}

func TestPresolveDeltaLowering(t *testing.T) {
	p := presolveProblem(Maximize, 3, map[int]float64{1: 1, 2: 1},
		[]Constraint{
			{Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: 4},
			{Coeffs: map[int]float64{1: 1, 0: 1}, Rel: LE, RHS: 10},
			{Coeffs: map[int]float64{2: 1}, Rel: LE, RHS: 3},
		})
	red, infeasible := presolveBase(p)
	if infeasible || red == nil {
		t.Fatalf("presolve failed: red=%v infeasible=%v", red, infeasible)
	}
	// Delta pinning the fixed variable to its value: redundant.
	if _, _, fate := red.lowerConstraint(&Constraint{Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: 4}); fate != rowRedundant {
		t.Errorf("consistent fixed-variable delta: fate %v, want redundant", fate)
	}
	// Delta pinning it elsewhere: infeasible.
	if _, _, fate := red.lowerConstraint(&Constraint{Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: 5}); fate != rowInfeasible {
		t.Errorf("contradicting fixed-variable delta: fate %v, want infeasible", fate)
	}
	// Mixed delta keeps the live part with the fixed contribution folded
	// into the right-hand side.
	coeffs, rhs, fate := red.lowerConstraint(&Constraint{Coeffs: map[int]float64{0: 2, 1: 1}, Rel: LE, RHS: 11})
	if fate != rowKeep || rhs != 3 || len(coeffs) != 1 || coeffs[int(red.col[1])] != 1 {
		t.Errorf("mixed delta lowered to %v <= %g (fate %v), want x'%d <= 3", coeffs, rhs, fate, red.col[1])
	}
}

// TestPresolveWarmStartEquivalence replays random bases with presolvable
// structure (fixed roots, equal-pair rows, null branches) through the warm
// start and asserts SolveSet agrees with the cold solver on status,
// objective, and feasibility of the returned point — the same contract the
// unreduced warm start honors.
func TestPresolveWarmStartEquivalence(t *testing.T) {
	SetSelfCheck(true)
	defer SetSelfCheck(false)
	rng := rand.New(rand.NewSource(0xC0FFEE))
	for trial := 0; trial < 150; trial++ {
		n := 4 + rng.Intn(5)
		obj := map[int]float64{}
		for j := 0; j < n; j++ {
			obj[j] = float64(rng.Intn(9) + 1)
		}
		rows := []Constraint{
			// Fixed root plus an equal pair referencing it downstream.
			{Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: float64(1 + rng.Intn(3))},
			{Coeffs: map[int]float64{1: 1, 2: -1}, Rel: EQ, RHS: 0},
		}
		for j := 0; j < n; j++ {
			// Box bounds at least as large as the fixed root's value so the
			// base stays feasible.
			rows = append(rows, Constraint{Coeffs: map[int]float64{j: 1}, Rel: LE, RHS: float64(3 + rng.Intn(8))})
		}
		if rng.Intn(2) == 0 && n > 4 {
			rows = append(rows, Constraint{Coeffs: map[int]float64{3: 1, 4: 1}, Rel: EQ, RHS: 0})
		}
		sense := Maximize
		if rng.Intn(2) == 0 {
			sense = Minimize
		}
		base := presolveProblem(sense, n, obj, rows)
		w := NewWarmStart(base)
		if !w.Ready() {
			t.Fatalf("trial %d: warm start not ready (base status %v)", trial, w.BaseStatus())
		}
		if w.red == nil {
			t.Fatalf("trial %d: presolve eliminated nothing on a reducible base", trial)
		}

		// Random delta set over ORIGINAL variable indices, including the
		// presolved-away ones.
		set := make([]Constraint, rng.Intn(3)+1)
		for i := range set {
			c := Constraint{Coeffs: map[int]float64{}, Rel: Relation(rng.Intn(3)), RHS: float64(rng.Intn(10))}
			for k := 0; k < 1+rng.Intn(2); k++ {
				c.Coeffs[rng.Intn(n)] = float64(rng.Intn(5) - 2)
			}
			set[i] = c
		}
		status, objv, x, _, ok := w.SolveSet(set, 0, false)
		if !ok {
			t.Fatalf("trial %d: warm path gave up", trial)
		}
		cold := &Problem{Sense: sense, NumVars: n, Objective: obj, Prefix: base.Prefix, Constraints: set}
		cStatus, cObj, _, _ := simplex(cold)
		if status != cStatus {
			t.Fatalf("trial %d: warm %v, cold %v", trial, status, cStatus)
		}
		if status == Optimal {
			if math.Abs(objv-cObj) > 1e-6 {
				t.Fatalf("trial %d: warm obj %.9g, cold %.9g", trial, objv, cObj)
			}
			if !cold.Feasible(x, 1e-6) {
				t.Fatalf("trial %d: reconstructed point infeasible: %v", trial, x)
			}
		}
	}
}
