package ilp

import "math"

// IsNetworkMatrix reports whether the constraint matrix is recognizably
// totally unimodular by the classic two-nonzeros test: every coefficient is
// 0 or ±1, every column carries at most two nonzero entries, and the rows
// admit a bipartition in which a column's two same-signed entries fall in
// different parts and opposite-signed entries fall in the same part.
//
// Flow-conservation systems (one row per block for inflow, one for outflow)
// always pass: this is the paper's Section III.D observation that
// structural constraints — and functionality constraints limited to the
// IDL-expressible forms — make the ILP "equivalent to a network flow
// problem, which can be solved in polynomial time", so the first LP
// relaxation is integral whenever the right-hand sides are integers.
// General functionality constraints (k·x loop bounds, disjunction members)
// fall outside the test, which is exactly when the paper says the problem
// is "a general ILP" in principle — though never in their practice, an
// observation the solver's Stats reproduce.
func IsNetworkMatrix(p *Problem) bool {
	type entry struct {
		row  int
		sign int
	}
	cols := map[int][]entry{}
	for ri, c := range p.Constraints {
		for v, coef := range c.Coeffs {
			switch {
			case coef == 0:
			case math.Abs(coef-1) < 1e-12:
				cols[v] = append(cols[v], entry{ri, +1})
			case math.Abs(coef+1) < 1e-12:
				cols[v] = append(cols[v], entry{ri, -1})
			default:
				return false
			}
		}
		if c.RHS != math.Trunc(c.RHS) {
			return false
		}
	}

	// Build the row-bipartition constraint graph: an edge for every column
	// with two nonzeros; parity 1 (different parts) for same signs,
	// parity 0 (same part) for opposite signs.
	type edge struct {
		to     int
		parity int
	}
	adj := map[int][]edge{}
	for _, es := range cols {
		if len(es) > 2 {
			return false
		}
		if len(es) == 2 {
			parity := 0
			if es[0].sign == es[1].sign {
				parity = 1
			}
			adj[es[0].row] = append(adj[es[0].row], edge{es[1].row, parity})
			adj[es[1].row] = append(adj[es[1].row], edge{es[0].row, parity})
		}
	}

	// Two-color with parity constraints (union-find-free BFS).
	color := map[int]int{}
	for start := range adj {
		if _, seen := color[start]; seen {
			continue
		}
		color[start] = 0
		queue := []int{start}
		for len(queue) > 0 {
			r := queue[0]
			queue = queue[1:]
			for _, e := range adj[r] {
				want := color[r] ^ e.parity
				if c, seen := color[e.to]; seen {
					if c != want {
						return false
					}
					continue
				}
				color[e.to] = want
				queue = append(queue, e.to)
			}
		}
	}
	return true
}
