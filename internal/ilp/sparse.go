package ilp

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// The constraint rows of this domain are network-flow sparse: a block
// equation touches the block variable and its few incident edges, a loop
// bound touches the entry and back edges, so almost every tableau column is
// zero in almost every row. The production simplex below exploits that: it
// builds rows directly from the sparse coefficient form (skipping zeros),
// keeps a per-row upper bound on the last nonzero column so inner loops
// never walk the untouched tail of the tableau, updates rows during a pivot
// only at the pivot row's nonzero columns, and draws all of its working
// memory (tableau rows, reduced costs, basis, objectives) from a sync.Pool
// arena so the branch-and-bound re-solves and the per-set parallel fan-out
// of package ipet stop hammering the allocator.
//
// The original dense implementation is retained in simplex.go as
// denseSimplex, the differential oracle: both perform mathematically
// identical pivots (the sparse inner loops skip only coefficients that are
// exactly zero), and SetSelfCheck can force every production solve to be
// verified against it.

// scratch is the pooled working memory of one simplex call. After a
// successful solve through sparseSimplexOn it also records the tableau
// layout (m, total, artStart), so a caller that owns the scratch (the
// warm-start layer) can keep the final basis/tableau/reduced costs and
// restart a dual simplex from them.
type scratch struct {
	tab   [][]float64
	basis []int
	hi    []int // hi[i] bounds the last nonzero column of row i (rhs excluded)
	rc    []float64
	obj   []float64
	cols  []int // nonzero columns of the current pivot row

	// Layout of the most recent solve: row count, column count before the
	// rhs (real + slack + artificial), and the first artificial column
	// (phase 2 and any warm restart must never let artificials re-enter).
	m, total, artStart int

	// suspect counts ill-conditioned pivots of the current solve: pivot
	// elements whose magnitude fell outside [suspectPivotLo, suspectPivotHi],
	// after which float64 row updates can no longer be trusted blindly.
	suspect int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// ensure sizes the arena to m zeroed tableau rows of the given width with
// the side arrays sized to match.
func (s *scratch) ensure(m, width int) {
	if cap(s.tab) < m {
		s.tab = append(s.tab[:cap(s.tab)], make([][]float64, m-cap(s.tab))...)
	}
	s.tab = s.tab[:m]
	for i := range s.tab {
		if cap(s.tab[i]) < width {
			s.tab[i] = make([]float64, width)
		} else {
			s.tab[i] = s.tab[i][:width]
			clear(s.tab[i])
		}
	}
	if cap(s.basis) < m {
		s.basis = make([]int, m)
		s.hi = make([]int, m)
	}
	s.basis = s.basis[:m]
	s.hi = s.hi[:m]
	if cap(s.rc) < width {
		s.rc = make([]float64, width)
		s.obj = make([]float64, width)
	}
	s.rc = s.rc[:width]
	s.obj = s.obj[:width]
}

// selfCheck, when enabled via SetSelfCheck, verifies every sparse solve
// against the dense oracle.
var selfCheck atomic.Bool

// SetSelfCheck toggles differential verification: with it on, every
// simplex solve is re-run through the retained dense-tableau oracle and
// the two must agree on status and objective (within 1e-6), panicking
// otherwise. Intended for tests; the dense re-solve roughly doubles the
// cost of every LP.
func SetSelfCheck(on bool) { selfCheck.Store(on) }

// simplex solves the LP relaxation of p (ignoring Integer): it lowers
// Prefix and Constraints into the pooled sparse-aware tableau and runs the
// two-phase primal simplex. Degenerate inputs get a defined treatment
// rather than a silent Optimal 0: with no constraint rows at all the
// origin is the unique basic point, so the result is Unbounded when the
// objective improves off the origin and Optimal at x = 0 otherwise; a
// problem with NumVars == 0 never reaches here through Solve (Validate
// rejects it) but a direct call gets the same origin treatment over an
// empty solution vector, with infeasible constant rows (e.g. 0 >= 5)
// reported as Infeasible by phase 1.
func simplex(p *Problem) (Status, float64, []float64, int) {
	r := simplexFull(p, false)
	return r.status, r.obj, r.x, r.pivots
}

// lpResult is one simplex call's outcome plus the certification metadata
// (suspect-pivot count, optimal-basis certificate) and the kernel
// accounting (which kernel answered, its revised-pivot and refactorization
// counts) the plain 4-tuple signature of simplex cannot carry.
type lpResult struct {
	status  Status
	obj     float64
	x       []float64
	pivots  int
	suspect int
	cert    *Certificate

	// network marks a solve answered by the min-cost-flow kernel;
	// revisedPivots/refactors count the revised kernel's work. Both feed
	// Stats.NetworkSolves / Stats.RevisedPivots / Stats.Refactorizations.
	network       bool
	revisedPivots int
	refactors     int
}

// simplexFull is simplex with certification metadata: it routes the solve
// to the cheapest sound kernel (see routeSimplex) and additionally reports
// the solve's suspect-pivot count and, when wantCert is set and the solve
// ended Optimal on a nonempty row set, an optimality certificate for exact
// re-verification.
func simplexFull(p *Problem, wantCert bool) lpResult {
	r := routeSimplex(p, wantCert)
	if selfCheck.Load() {
		dStatus, dObj, _, _ := denseSimplex(unpackProblem(p))
		if dStatus != r.status || (r.status == Optimal && math.Abs(dObj-r.obj) > agreeTol) {
			panic(fmt.Sprintf("ilp: kernel/dense divergence: kernel %v %.9g, dense %v %.9g on\n%s",
				r.status, r.obj, dStatus, dObj, unpackProblem(p)))
		}
	}
	return r
}

// routeSimplex picks the cheapest sound kernel for one LP solve:
//
//   - the network fast path, when the rows convert exactly to a
//     min-cost-flow instance (integer arithmetic, certificates for free);
//   - the revised simplex, whose factored-basis pivots touch O(nnz)
//     entries instead of a full tableau row set;
//   - the retained full-tableau kernel, the fallback that accepts
//     everything.
//
// A kernel that declines (inexpressible rows, a singular refactorization,
// an iteration cap) falls through to the next, so routing can never change
// an answer — only the work done to reach it. With a fault injector
// installed everything runs on the tableau kernel: the documented fault
// sites are tableau computations, and the certification tests that inject
// them must keep faulting the solver that actually answers.
func routeSimplex(p *Problem, wantCert bool) lpResult {
	if len(p.Prefix)+len(p.Constraints) > 0 && faultInjector.Load() == nil {
		off := kernelsOff.Load()
		if off&kernelNetwork == 0 {
			if r, ok := networkSolve(p, wantCert); ok {
				return r
			}
		}
		if off&kernelRevised == 0 {
			if r, ok := revisedSimplex(p, wantCert); ok {
				return r
			}
		}
	}
	return tableauSimplex(p, wantCert)
}

// tableauSimplex is the retained full-tableau kernel behind the pooled
// scratch arena.
func tableauSimplex(p *Problem, wantCert bool) lpResult {
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	status, obj, x, pivots := sparseSimplexOn(p, s)
	r := lpResult{status: status, obj: obj, x: x, pivots: pivots, suspect: s.suspect}
	if wantCert && status == Optimal && s.m > 0 {
		r.cert = &Certificate{Basis: append([]int(nil), s.basis[:s.m]...)}
	}
	return r
}

func sparseSimplex(p *Problem) (Status, float64, []float64, int) {
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	return sparseSimplexOn(p, s)
}

// sparseSimplexOn runs the two-phase primal simplex in the caller's
// scratch. On an Optimal return the scratch holds the final tableau, basis,
// per-row nonzero bounds, the phase-2 reduced-cost row (rc[total] = -z in
// the internal maximization sense), and the recorded layout — everything a
// warm restart needs.
func sparseSimplexOn(p *Problem, s *scratch) (Status, float64, []float64, int) {
	n := p.NumVars
	mPre := len(p.Prefix)
	m := mPre + len(p.Constraints)
	s.m, s.suspect = 0, 0 // no layout recorded yet for this solve

	sign := 1.0
	if p.Sense == Minimize {
		sign = -1
	}

	// No rows: the origin is the only basic feasible point.
	if m == 0 {
		for j, v := range p.Objective {
			if j < n && sign*v > eps {
				return Unbounded, 0, nil, 0
			}
		}
		return Optimal, 0, make([]float64, n), 0
	}

	// Pass 1: count auxiliary columns from the normalized relations.
	numSlack, numArt := 0, 0
	countRel := func(rel Relation) {
		switch rel {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	for i := range p.Prefix {
		countRel(p.Prefix[i].Rel)
	}
	for i := range p.Constraints {
		rel := p.Constraints[i].Rel
		if p.Constraints[i].RHS < 0 {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		countRel(rel)
	}

	total := n + numSlack + numArt
	width := total + 1 // + rhs column
	s.ensure(m, width)
	s.m, s.total, s.artStart = m, total, n+numSlack
	tab, basis, hi := s.tab, s.basis, s.hi

	// Pass 2: build the rows sparsely, tracking each row's nonzero bound.
	slackCol := n
	artCol := n + numSlack
	artStart := artCol
	for i := 0; i < m; i++ {
		r := tab[i]
		var rel Relation
		var rhs float64
		top := 0
		if i < mPre {
			pr := &p.Prefix[i]
			for k, col := range pr.Cols {
				r[col] = pr.Vals[k]
			}
			if len(pr.Cols) > 0 {
				top = int(pr.Cols[len(pr.Cols)-1])
			}
			rel, rhs = pr.Rel, pr.RHS
		} else {
			c := &p.Constraints[i-mPre]
			rel, rhs = c.Rel, c.RHS
			neg := rhs < 0
			if neg {
				rhs = -rhs
				switch rel {
				case LE:
					rel = GE
				case GE:
					rel = LE
				}
			}
			for j, v := range c.Coeffs {
				if v == 0 {
					continue
				}
				if neg {
					v = -v
				}
				r[j] = v
				if j > top {
					top = j
				}
			}
		}
		r[total] = rhs
		switch rel {
		case LE:
			r[slackCol] = 1
			basis[i] = slackCol
			top = slackCol
			slackCol++
		case GE:
			r[slackCol] = -1
			slackCol++
			r[artCol] = 1
			basis[i] = artCol
			top = artCol
			artCol++
		case EQ:
			r[artCol] = 1
			basis[i] = artCol
			top = artCol
			artCol++
		}
		hi[i] = top
	}

	pivots := 0
	pivot := func(row, col int) {
		pivots++
		s.pivot(row, col, total)
	}

	// optimize runs primal simplex on the given objective coefficients
	// (maximization). allowed limits the entering columns. Returns false if
	// unbounded. The reduced-cost row is maintained incrementally against
	// the pivot row's nonzero columns.
	rc := s.rc
	optimize := func(obj []float64, allowed int) bool {
		// Price out the current basis: rc[j] = c_j - sum_i c_B(i)*tab[i][j].
		copy(rc, obj)
		for i, b := range basis {
			cb := obj[b]
			if cb == 0 {
				continue
			}
			ri := tab[i]
			for j := 0; j <= hi[i]; j++ {
				if v := ri[j]; v != 0 {
					rc[j] -= cb * v
				}
			}
			rc[total] -= cb * ri[total]
		}
		iter := 0
		blandAfter := 50 * (m + total + 10)
		// Bland's rule guarantees termination only under exact pivoting; a
		// corrupted tableau (an injected fault, or float64 gone genuinely
		// bad) could cycle forever, so give up after a generous hard cap.
		// Reporting unbounded is the conservative surrender: it never
		// certifies, so a certifying caller re-solves exactly.
		hardCap := 10 * blandAfter
		for {
			iter++
			if iter > hardCap {
				return false
			}
			useBland := iter > blandAfter
			bestCol := -1
			bestVal := eps
			for j := 0; j < allowed; j++ {
				if rc[j] > eps {
					if useBland {
						bestCol = j
						break
					}
					if rc[j] > bestVal {
						bestVal = rc[j]
						bestCol = j
					}
				}
			}
			if bestCol < 0 {
				return true // optimal
			}
			// Ratio test.
			bestRow := -1
			bestRatio := math.Inf(1)
			for i := range tab {
				a := tab[i][bestCol]
				if a > eps {
					ratio := tab[i][total] / a
					if ratio < bestRatio-eps ||
						(math.Abs(ratio-bestRatio) <= eps && (bestRow < 0 || basis[i] < basis[bestRow])) {
						bestRatio = ratio
						bestRow = i
					}
				}
			}
			if bestRow < 0 {
				return false // unbounded
			}
			pivot(bestRow, bestCol)
			// Update the reduced-cost row against the (normalized) pivot
			// row, touching only its nonzero columns.
			f := rc[bestCol]
			if f != 0 {
				pr := tab[bestRow]
				for _, j := range s.cols {
					rc[j] -= f * pr[j]
				}
				rc[bestCol] = 0
				rc[total] -= f * pr[total]
			}
		}
	}

	// Phase 1: maximize -(sum of artificials).
	if numArt > 0 {
		obj1 := s.obj
		clear(obj1)
		for j := artStart; j < total; j++ {
			obj1[j] = -1
		}
		if !optimize(obj1, total) {
			// Phase 1 cannot be unbounded (objective bounded by 0), but
			// guard anyway.
			return Infeasible, 0, nil, pivots
		}
		sumArt := 0.0
		for i, b := range basis {
			if b >= artStart {
				sumArt += tab[i][total]
			}
		}
		if sumArt > feasTol {
			return Infeasible, 0, nil, pivots
		}
		// Drive remaining artificials out of the basis where possible.
		for i, b := range basis {
			if b < artStart {
				continue
			}
			done := false
			stop := artStart
			if hi[i]+1 < stop {
				stop = hi[i] + 1
			}
			for j := 0; j < stop && !done; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(i, j)
					done = true
				}
			}
			// If the row is all zeros over real columns it is redundant;
			// the artificial stays basic at value 0, which is harmless as
			// long as phase 2 never lets it re-enter (allowed=artStart).
		}
	}

	// Phase 2: original objective over real + slack columns only.
	obj2 := s.obj
	clear(obj2)
	for j, v := range p.Objective {
		obj2[j] = injectFault(FaultObjective, sign*v)
	}
	if !optimize(obj2, artStart) {
		return Unbounded, 0, nil, pivots
	}

	x := make([]float64, p.NumVars)
	for i, b := range basis {
		if b < p.NumVars {
			x[b] = tab[i][total]
			if x[b] < 0 && x[b] > -feasTol {
				x[b] = 0
			}
		}
	}
	objVal := 0.0
	for j, v := range p.Objective {
		objVal += v * x[j]
	}
	return Optimal, objVal, x, pivots
}

// pivot performs one tableau pivot at (row, col), normalizing the pivot row
// and eliminating the column from every other row. The rhs lives at index
// total. The pivot row's nonzero columns are left in s.cols so the caller
// can update its reduced-cost row against them.
func (s *scratch) pivot(row, col, total int) {
	pr := s.tab[row]
	pv := injectFault(FaultPivot, pr[col])
	if a := math.Abs(pv); a < suspectPivotLo || a > suspectPivotHi {
		s.suspect++
	}
	hr := s.hi[row]
	s.cols = s.cols[:0]
	for j := 0; j <= hr; j++ {
		if pr[j] != 0 {
			pr[j] /= pv
			s.cols = append(s.cols, j)
		}
	}
	pr[total] /= pv
	for i := range s.tab {
		if i == row {
			continue
		}
		ri := s.tab[i]
		f := ri[col]
		if f == 0 {
			continue
		}
		for _, j := range s.cols {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0 // pr[col] == 1 exactly, so the update lands on zero
		ri[total] -= f * pr[total]
		if hr > s.hi[i] {
			s.hi[i] = hr
		}
	}
	s.basis[row] = col
}
