package ilp

import (
	"math/rand"
	"testing"
)

func TestNetworkMatrixFlowSystem(t *testing.T) {
	// A diamond CFG's flow equations: x0 = d_in; x0 = d1 + d2;
	// x1 = d1; x1 = d3; x2 = d2; x2 = d4; x3 = d3 + d4; x3 = d_out.
	// Variables: 0..3 blocks, 4..9 edges (in, d1, d2, d3, d4, out).
	eq := func(coeffs map[int]float64, rhs float64) Constraint {
		return Constraint{Coeffs: coeffs, Rel: EQ, RHS: rhs}
	}
	p := &Problem{
		Sense:     Maximize,
		NumVars:   10,
		Objective: map[int]float64{0: 3, 1: 5, 2: 2, 3: 4},
		Constraints: []Constraint{
			eq(map[int]float64{0: 1, 4: -1}, 0),
			eq(map[int]float64{0: 1, 5: -1, 6: -1}, 0),
			eq(map[int]float64{1: 1, 5: -1}, 0),
			eq(map[int]float64{1: 1, 7: -1}, 0),
			eq(map[int]float64{2: 1, 6: -1}, 0),
			eq(map[int]float64{2: 1, 8: -1}, 0),
			eq(map[int]float64{3: 1, 7: -1, 8: -1}, 0),
			eq(map[int]float64{3: 1, 9: -1}, 0),
			eq(map[int]float64{4: 1}, 1),
		},
	}
	if !IsNetworkMatrix(p) {
		t.Fatal("flow system not recognized as network matrix")
	}
	// And the guarantee it implies: the LP relaxation is integral.
	p.Integer = true
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !sol.Stats.RootIntegral {
		t.Fatalf("flow LP not integral at root: %+v", sol)
	}
}

func TestNetworkMatrixRejectsGeneralCoefficients(t *testing.T) {
	// A k-scaled loop bound (x <= 10*e) is outside the incidence form.
	p := &Problem{
		NumVars: 2,
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1, 1: -10}, Rel: LE, RHS: 0},
		},
	}
	if IsNetworkMatrix(p) {
		t.Fatal("scaled constraint accepted")
	}
}

func TestNetworkMatrixRejectsTripleColumns(t *testing.T) {
	p := &Problem{
		NumVars: 1,
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: 1},
			{Coeffs: map[int]float64{0: 1}, Rel: LE, RHS: 2},
			{Coeffs: map[int]float64{0: -1}, Rel: LE, RHS: 0},
		},
	}
	if IsNetworkMatrix(p) {
		t.Fatal("three-entry column accepted")
	}
}

func TestNetworkMatrixRejectsFractionalRHS(t *testing.T) {
	p := &Problem{
		NumVars: 1,
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1}, Rel: LE, RHS: 2.5},
		},
	}
	if IsNetworkMatrix(p) {
		t.Fatal("fractional rhs accepted")
	}
}

func TestNetworkMatrixRejectsOddCycle(t *testing.T) {
	// Three rows pairwise linked with "different part" parity: an odd
	// cycle, not 2-colorable, hence not an incidence structure.
	p := &Problem{
		NumVars: 3,
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1, 1: 1}, Rel: EQ, RHS: 1}, // rows 0-?
			{Coeffs: map[int]float64{0: 1, 2: 1}, Rel: EQ, RHS: 1},
			{Coeffs: map[int]float64{1: 1, 2: 1}, Rel: EQ, RHS: 1},
		},
	}
	// Columns: v0 in rows {0,1} same sign, v1 in {0,2} same sign,
	// v2 in {1,2} same sign: triangle with all-odd parities.
	if IsNetworkMatrix(p) {
		t.Fatal("odd parity cycle accepted")
	}
}

// TestNetworkImpliesIntegralRoot property-checks the point of the
// recognition: random recognized systems solve integrally at the root.
func TestNetworkImpliesIntegralRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		// Random layered flow network: source -> layer1 -> layer2 -> sink.
		l1 := rng.Intn(3) + 1
		l2 := rng.Intn(3) + 1
		// Variables: arcs source->l1 (l1), l1->l2 (l1*l2), l2->sink (l2).
		n := l1 + l1*l2 + l2
		p := &Problem{Sense: Maximize, NumVars: n, Integer: true, Objective: map[int]float64{}}
		arcIn := func(i int) int { return i }
		arcMid := func(i, j int) int { return l1 + i*l2 + j }
		arcOut := func(j int) int { return l1 + l1*l2 + j }
		// Conservation at each l1 node: in = sum mid.
		for i := 0; i < l1; i++ {
			c := Constraint{Coeffs: map[int]float64{arcIn(i): 1}, Rel: EQ}
			for j := 0; j < l2; j++ {
				c.Coeffs[arcMid(i, j)] = -1
			}
			p.Constraints = append(p.Constraints, c)
		}
		// Conservation at each l2 node: sum mid = out.
		for j := 0; j < l2; j++ {
			c := Constraint{Coeffs: map[int]float64{arcOut(j): -1}, Rel: EQ}
			for i := 0; i < l1; i++ {
				c.Coeffs[arcMid(i, j)] = 1
			}
			p.Constraints = append(p.Constraints, c)
		}
		// Capacities on source arcs keep it bounded.
		for i := 0; i < l1; i++ {
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: map[int]float64{arcIn(i): 1}, Rel: LE, RHS: float64(1 + rng.Intn(9)),
			})
		}
		for v := 0; v < n; v++ {
			p.Objective[v] = float64(rng.Intn(7))
		}
		if !IsNetworkMatrix(p) {
			t.Fatalf("trial %d: generated network not recognized", trial)
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if !sol.Stats.RootIntegral {
			t.Fatalf("trial %d: network problem needed branching", trial)
		}
	}
}
