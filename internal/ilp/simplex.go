package ilp

import "math"

// denseSimplex solves the LP relaxation of p (ignoring Integer) with a
// two-phase dense-tableau primal simplex. It returns the status, optimum
// objective, variable values and the pivot count.
//
// This is the original reference implementation, retained as the
// differential oracle for the sparse-aware production simplex in sparse.go
// (see SetSelfCheck): both perform the same pivot sequence, so they must
// agree on status and objective. It reads only p.Constraints — callers
// with a packed Prefix go through unpackProblem first.
//
// Standard form used internally: maximize cᵀx subject to rows of
// (A|b) with b >= 0, a slack for every <=, a surplus plus artificial for
// every >=, and an artificial for every =. Phase 1 drives the artificials
// to zero; phase 2 optimizes the real objective.
func denseSimplex(p *Problem) (Status, float64, []float64, int) {
	status, obj, x, pivots, _ := denseSimplexBasis(p)
	return status, obj, x, pivots
}

// SolveDenseCert solves the LP relaxation of p through the dense oracle and
// attaches the optimal-basis certificate, so the exact checker can verify
// the reference path with the same machinery as the production kernels. It
// reads only p.Constraints (the packed Prefix, if any, must be unpacked by
// the caller) and ignores p.Integer.
func SolveDenseCert(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	full := unpackProblem(p)
	status, obj, x, pivots, basis := denseSimplexBasis(full)
	sol := &Solution{Status: status, Objective: obj, Values: x}
	sol.Stats.LPSolves = 1
	sol.Stats.Pivots = pivots
	if status == Optimal && len(basis) > 0 {
		sol.Cert = &Certificate{Basis: append([]int(nil), basis...)}
	}
	return sol, nil
}

func denseSimplexBasis(p *Problem) (Status, float64, []float64, int, []int) {
	m := len(p.Constraints)
	n := p.NumVars

	// Count auxiliary columns.
	numSlack := 0
	numArt := 0
	for _, c := range p.Constraints {
		switch c.Rel {
		case LE, GE:
			numSlack++
		}
	}
	// Artificials: decide per row after normalizing sign.
	type rowSpec struct {
		rel Relation
		rhs float64
	}
	specs := make([]rowSpec, m)
	rows := make([][]float64, m)
	for i, c := range p.Constraints {
		row := make([]float64, n)
		for j, v := range c.Coeffs {
			row[j] = v
		}
		rel, rhs := c.Rel, c.RHS
		if rhs < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = row
		specs[i] = rowSpec{rel, rhs}
	}
	for _, s := range specs {
		if s.rel == GE || s.rel == EQ {
			numArt++
		}
	}

	total := n + numSlack + numArt
	width := total + 1 // + rhs column
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackCol := n
	artCol := n + numSlack
	artStart := artCol
	for i := range rows {
		r := make([]float64, width)
		copy(r, rows[i])
		r[total] = specs[i].rhs
		switch specs[i].rel {
		case LE:
			r[slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			r[slackCol] = -1
			slackCol++
			r[artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			r[artCol] = 1
			basis[i] = artCol
			artCol++
		}
		tab[i] = r
	}

	pivots := 0
	pivot := func(row, col int) {
		pivots++
		pr := tab[row]
		pv := pr[col]
		for j := 0; j <= total; j++ {
			pr[j] /= pv
		}
		for i := range tab {
			if i == row {
				continue
			}
			f := tab[i][col]
			if f == 0 {
				continue
			}
			ri := tab[i]
			for j := 0; j <= total; j++ {
				ri[j] -= f * pr[j]
			}
		}
		basis[row] = col
	}

	// optimize runs primal simplex on the given objective coefficients
	// (maximization). allowed limits the entering columns. Returns false if
	// unbounded. The reduced-cost row is maintained incrementally and
	// updated on every pivot alongside the tableau.
	optimize := func(obj []float64, allowed int) bool {
		// Price out the current basis: rc[j] = c_j - sum_i c_B(i)*tab[i][j].
		rc := make([]float64, total+1)
		copy(rc, obj)
		for i, b := range basis {
			cb := obj[b]
			if cb == 0 {
				continue
			}
			ri := tab[i]
			for j := 0; j <= total; j++ {
				rc[j] -= cb * ri[j]
			}
		}
		iter := 0
		blandAfter := 50 * (m + total + 10)
		for {
			iter++
			useBland := iter > blandAfter
			bestCol := -1
			bestVal := eps
			for j := 0; j < allowed; j++ {
				if rc[j] > eps {
					if useBland {
						bestCol = j
						break
					}
					if rc[j] > bestVal {
						bestVal = rc[j]
						bestCol = j
					}
				}
			}
			if bestCol < 0 {
				return true // optimal
			}
			// Ratio test.
			bestRow := -1
			bestRatio := math.Inf(1)
			for i := range tab {
				a := tab[i][bestCol]
				if a > eps {
					ratio := tab[i][total] / a
					if ratio < bestRatio-eps ||
						(math.Abs(ratio-bestRatio) <= eps && (bestRow < 0 || basis[i] < basis[bestRow])) {
						bestRatio = ratio
						bestRow = i
					}
				}
			}
			if bestRow < 0 {
				return false // unbounded
			}
			pivot(bestRow, bestCol)
			// Update the reduced-cost row against the (normalized) pivot row.
			f := rc[bestCol]
			if f != 0 {
				pr := tab[bestRow]
				for j := 0; j <= total; j++ {
					rc[j] -= f * pr[j]
				}
				rc[bestCol] = 0
			}
		}
	}

	// Phase 1: maximize -(sum of artificials).
	if numArt > 0 {
		obj1 := make([]float64, total+1)
		for j := artStart; j < total; j++ {
			obj1[j] = -1
		}
		if !optimize(obj1, total) {
			// Phase 1 cannot be unbounded (objective bounded by 0), but
			// guard anyway.
			return Infeasible, 0, nil, pivots, nil
		}
		sumArt := 0.0
		for i, b := range basis {
			if b >= artStart {
				sumArt += tab[i][total]
			}
		}
		if sumArt > feasTol {
			return Infeasible, 0, nil, pivots, nil
		}
		// Drive remaining artificials out of the basis where possible.
		for i, b := range basis {
			if b < artStart {
				continue
			}
			done := false
			for j := 0; j < artStart && !done; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(i, j)
					done = true
				}
			}
			// If the row is all zeros over real columns it is redundant;
			// the artificial stays basic at value 0, which is harmless as
			// long as phase 2 never lets it re-enter (allowed=artStart).
		}
	}

	// Phase 2: original objective over real + slack columns only.
	obj2 := make([]float64, total+1)
	sign := 1.0
	if p.Sense == Minimize {
		sign = -1
	}
	for j, v := range p.Objective {
		obj2[j] = sign * v
	}
	if !optimize(obj2, artStart) {
		return Unbounded, 0, nil, pivots, nil
	}

	x := make([]float64, p.NumVars)
	for i, b := range basis {
		if b < p.NumVars {
			x[b] = tab[i][total]
			if x[b] < 0 && x[b] > -feasTol {
				x[b] = 0
			}
		}
	}
	objVal := 0.0
	for j, v := range p.Objective {
		objVal += v * x[j]
	}
	return Optimal, objVal, x, pivots, basis
}
