package ilp

import (
	"math"
	"math/rand"
	"testing"
)

// TestParametricAgainstDense enumerates parametric pieces of random
// integer-data problems over a 1-D and 2-D parameter grid and checks every
// claim against the dense oracle run on the concretized problem: a feasible
// piece's affine value must equal the dense optimum at every covered grid
// point, and an infeasibility piece must only cover points the dense solver
// also rejects.
func TestParametricAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	trials := 150
	covered, solved := 0, 0
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(3)
		p := &Problem{Sense: Sense(rng.Intn(2)), NumVars: n, Objective: map[int]float64{}}
		for i := 0; i < n; i++ {
			p.Objective[i] = float64(rng.Intn(11) - 5)
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: map[int]float64{i: 1}, Rel: LE, RHS: float64(1 + rng.Intn(6)),
			})
		}
		for r := 0; r < 1+rng.Intn(3); r++ {
			coeffs := map[int]float64{}
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					coeffs[i] = float64(rng.Intn(7) - 3)
				}
			}
			if len(coeffs) == 0 {
				coeffs[0] = 1
			}
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: coeffs, Rel: Relation(rng.Intn(3)), RHS: float64(rng.Intn(13) - 4),
			})
		}

		// Make one or two rows RHS-parametric.
		K := 1 + rng.Intn(2)
		rhsCoef := make([][]int64, len(p.Constraints))
		for picks := 0; picks < K; picks++ {
			row := rng.Intn(len(p.Constraints))
			coef := make([]int64, K)
			coef[picks] = int64(1 + rng.Intn(3))
			rhsCoef[row] = coef
		}

		// Enumerate pieces by walking the grid and solving at the first
		// uncovered point, exactly as the ipet layer does.
		lo, hi := int64(0), int64(6)
		var pieces []*ParamPiece
		grid := func(f func(theta []int64)) {
			theta := make([]int64, K)
			if K == 1 {
				for a := lo; a <= hi; a++ {
					theta[0] = a
					f(theta)
				}
				return
			}
			for a := lo; a <= hi; a++ {
				for b := lo; b <= hi; b++ {
					theta[0], theta[1] = a, b
					f(theta)
				}
			}
		}
		grid(func(theta []int64) {
			for _, pc := range pieces {
				if pc.Covers(theta) {
					return
				}
			}
			pc, _, _, err := SolveParametric(p, K, rhsCoef, theta)
			solved++
			if err != nil {
				t.Fatalf("trial %d: SolveParametric: %v", trial, err)
			}
			if pc != nil && pc.Exact {
				pieces = append(pieces, pc)
			}
		})

		// Check every claim against the dense oracle.
		grid(func(theta []int64) {
			conc := &Problem{Sense: p.Sense, NumVars: p.NumVars, Objective: p.Objective}
			for i, c := range p.Constraints {
				cc := c
				for k, coef := range rhsCoef[i] {
					cc.RHS += float64(coef) * float64(theta[k])
				}
				conc.Constraints = append(conc.Constraints, cc)
			}
			st, obj, _, _ := denseSimplex(conc)
			for _, pc := range pieces {
				if !pc.Covers(theta) {
					continue
				}
				covered++
				if !pc.Feasible {
					if st != Infeasible {
						t.Fatalf("trial %d θ=%v: piece claims infeasible, dense says %v\n%s", trial, theta, st, p)
					}
					continue
				}
				if st != Optimal {
					t.Fatalf("trial %d θ=%v: piece claims optimum, dense says %v\n%s", trial, theta, st, p)
				}
				if got, want := float64(pc.Value.At(theta)), obj; math.Abs(got-want) > 1e-6 {
					t.Fatalf("trial %d θ=%v: piece value %v, dense optimum %v\n%s", trial, theta, got, want, p)
				}
			}
		})
	}
	if covered == 0 {
		t.Fatalf("no grid point was ever covered by a piece (%d parametric solves)", solved)
	}
	t.Logf("%d parametric solves, %d covered grid-point checks", solved, covered)
}

// TestParamAffineAt pins the affine evaluation arithmetic.
func TestParamAffineAt(t *testing.T) {
	a := ParamAffine{C0: 7, Coef: []int64{2, -3}}
	if got := a.At([]int64{5, 4}); got != 7+10-12 {
		t.Fatalf("At = %d, want %d", got, 7+10-12)
	}
	if !(&ParamPiece{Region: []ParamAffine{a}}).Covers([]int64{5, 4}) {
		t.Fatalf("Covers should hold at a nonnegative region value")
	}
	if (&ParamPiece{Region: []ParamAffine{a}}).Covers([]int64{0, 3}) {
		t.Fatalf("Covers should fail at a negative region value")
	}
}
