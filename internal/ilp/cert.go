package ilp

// Certificate is the optimality certificate a float64 solve emits so an
// exact checker (package certify) can re-verify the reported optimum in
// rational arithmetic. It names the basis the solve ended on; everything
// else — the standard-form matrix, the right-hand sides, the objective —
// the checker rebuilds itself from the Problem, exactly, using the same
// deterministic lowering the solver used. A certificate therefore proves
// or fails to prove optimality; it cannot smuggle in a wrong feasible
// region.
//
// Verification is the textbook basis check: with B the basis columns,
// x_B = B⁻¹b must be nonnegative (primal feasibility), and the reduced
// costs c_j − c_B B⁻¹ A_j must be nonpositive for every admissible
// nonbasic column (dual feasibility), which together certify x as an
// optimum of the LP relaxation by weak duality. An integral certified x
// also answers the integer problem.
// DroppedDeltaRow reports how the warm path disposes of a per-set
// constraint before it reaches the tableau: dropped (a constant row the
// base trivially satisfies), infeasible (a constant row the base
// contradicts — the solve reports Infeasible without building a tableau),
// or neither (the row is lowered). Exported for the exact checker, which
// must reproduce the warm standard form row for row; only meaningful for a
// warm start running without a presolve, the only configuration that emits
// certificates.
func DroppedDeltaRow(c *Constraint) (dropped, infeasible bool) {
	switch emptyRowFate(c.Coeffs, c.Rel, c.RHS) {
	case rowRedundant:
		return true, false
	case rowInfeasible:
		return false, true
	}
	return false, false
}

type Certificate struct {
	// Warm marks a certificate from the warm-started dual-simplex path,
	// whose standard form differs from the cold lowering: the checker must
	// rebuild the base rows cold and append the per-set delta rows with the
	// warm lowering (each delta row carried by one fresh slack, equalities
	// split into a ≤/≥ pair, no right-hand-side sign normalization).
	Warm bool
	// Basis[i] is the standard-form column that is basic in row i. Rows are
	// ordered Prefix first, then Constraints (for Warm: base rows first,
	// then the lowered delta rows).
	Basis []int

	// Flow marks a certificate from the network-simplex kernel, which does
	// not carry a tableau basis. Instead it names a primal point X and a
	// dual price Y per original row (Prefix rows first, then Constraints,
	// in the internal maximization sense), both integral by construction.
	// The checker verifies strong duality directly: X feasible, Y
	// sign-feasible per row relation, AᵀY ≥ ĉ componentwise, and
	// YᵀB = ĉᵀX exactly — which proves optimality by weak duality without
	// trusting the kernel's spanning tree.
	Flow bool
	// X is the claimed optimal assignment (length NumVars); Flow only.
	X []float64
	// Y holds one dual price per original row, Prefix rows first then
	// Constraints, against the rows exactly as stored in the Problem
	// (Prefix rows are already sign-normalized by Pack; Constraints are
	// taken as written, unnormalized); Flow only.
	Y []float64
}
