package ilp

import (
	"math"
	"math/rand"
	"testing"
)

func c(coeffs map[int]float64, rel Relation, rhs float64) Constraint {
	return Constraint{Coeffs: coeffs, Rel: rel, RHS: rhs}
}

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v\n%s", err, p)
	}
	return sol
}

func TestSimpleLPMax(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12.
	p := &Problem{
		Sense:     Maximize,
		NumVars:   2,
		Objective: map[int]float64{0: 3, 1: 2},
		Constraints: []Constraint{
			c(map[int]float64{0: 1, 1: 1}, LE, 4),
			c(map[int]float64{0: 1, 1: 3}, LE, 6),
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-12) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
	if math.Abs(sol.Values[0]-4) > 1e-6 || math.Abs(sol.Values[1]) > 1e-6 {
		t.Fatalf("values = %v", sol.Values)
	}
}

func TestSimpleLPMin(t *testing.T) {
	// min x + y s.t. x + 2y >= 6, 3x + y >= 9 -> intersection (2.4, 1.8), obj 4.2.
	p := &Problem{
		Sense:     Minimize,
		NumVars:   2,
		Objective: map[int]float64{0: 1, 1: 1},
		Constraints: []Constraint{
			c(map[int]float64{0: 1, 1: 2}, GE, 6),
			c(map[int]float64{0: 3, 1: 1}, GE, 9),
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-4.2) > 1e-6 {
		t.Fatalf("sol = %+v (values %v)", sol, sol.Values)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// max x + y s.t. x + y = 5, x - y = 1 -> x=3, y=2.
	p := &Problem{
		Sense:     Maximize,
		NumVars:   2,
		Objective: map[int]float64{0: 1, 1: 1},
		Constraints: []Constraint{
			c(map[int]float64{0: 1, 1: 1}, EQ, 5),
			c(map[int]float64{0: 1, 1: -1}, EQ, 1),
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal || math.Abs(sol.Values[0]-3) > 1e-6 || math.Abs(sol.Values[1]-2) > 1e-6 {
		t.Fatalf("sol = %+v values %v", sol, sol.Values)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		Sense:     Maximize,
		NumVars:   1,
		Objective: map[int]float64{0: 1},
		Constraints: []Constraint{
			c(map[int]float64{0: 1}, LE, 3),
			c(map[int]float64{0: 1}, GE, 5),
		},
	}
	if sol := mustSolve(t, p); sol.Status != Infeasible {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		Sense:     Maximize,
		NumVars:   2,
		Objective: map[int]float64{0: 1},
		Constraints: []Constraint{
			c(map[int]float64{1: 1}, LE, 3),
		},
	}
	if sol := mustSolve(t, p); sol.Status != Unbounded {
		t.Fatalf("status = %v", sol.Status)
	}
	// Unbounded must also be detected for integer problems.
	p.Integer = true
	if sol := mustSolve(t, p); sol.Status != Unbounded {
		t.Fatalf("integer status = %v", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2 with x,y >= 0: max x + y s.t. y - x >= 2, y <= 5.
	p := &Problem{
		Sense:     Maximize,
		NumVars:   2,
		Objective: map[int]float64{0: 1, 1: 1},
		Constraints: []Constraint{
			c(map[int]float64{0: 1, 1: -1}, LE, -2),
			c(map[int]float64{1: 1}, LE, 5),
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-8) > 1e-6 {
		t.Fatalf("sol = %+v values %v", sol, sol.Values)
	}
}

func TestIntegerKnapsack(t *testing.T) {
	// max 8x + 11y + 6z + 4w s.t. 5x + 7y + 4z + 3w <= 14, x..w <= 1.
	// LP relaxation is fractional; integer optimum is 21 (x=0,y=1,z=1,w=1).
	p := &Problem{
		Sense:     Maximize,
		NumVars:   4,
		Integer:   true,
		Objective: map[int]float64{0: 8, 1: 11, 2: 6, 3: 4},
		Constraints: []Constraint{
			c(map[int]float64{0: 5, 1: 7, 2: 4, 3: 3}, LE, 14),
			c(map[int]float64{0: 1}, LE, 1),
			c(map[int]float64{1: 1}, LE, 1),
			c(map[int]float64{2: 1}, LE, 1),
			c(map[int]float64{3: 1}, LE, 1),
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-21) > 1e-6 {
		t.Fatalf("sol = %+v values %v", sol, sol.Values)
	}
	if sol.Stats.RootIntegral {
		t.Fatal("knapsack root should be fractional")
	}
	if sol.Stats.Branches == 0 {
		t.Fatal("expected branching")
	}
	if !p.Feasible(sol.Values, 1e-6) {
		t.Fatalf("solution infeasible: %v", sol.Values)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 2x = 3 has no integer (or any) solution with x integer: LP gives
	// x = 1.5 and branching makes both children infeasible.
	p := &Problem{
		Sense:     Maximize,
		NumVars:   1,
		Integer:   true,
		Objective: map[int]float64{0: 1},
		Constraints: []Constraint{
			c(map[int]float64{0: 2}, EQ, 3),
		},
	}
	if sol := mustSolve(t, p); sol.Status != Infeasible {
		t.Fatalf("status = %v", sol.Status)
	}
}

// TestNetworkFlowRootIntegral checks the paper's observation: flow
// conservation constraint matrices are totally unimodular, so the first LP
// relaxation is already integral.
func TestNetworkFlowRootIntegral(t *testing.T) {
	// Variables: x1..x4 block counts, d-edges of the Fig. 2 diamond.
	// x0 = 1 (entry); x0 = d1 + d2; x1 = d1; x2 = d2; x3 = d1' + d2'...
	// Simplified: x0=1, x1+x2 = x0, x3 = x1+x2; max 10x0+5x1+2x2+7x3.
	p := &Problem{
		Sense:     Maximize,
		NumVars:   4,
		Integer:   true,
		Objective: map[int]float64{0: 10, 1: 5, 2: 2, 3: 7},
		Constraints: []Constraint{
			c(map[int]float64{0: 1}, EQ, 1),
			c(map[int]float64{1: 1, 2: 1, 0: -1}, EQ, 0),
			c(map[int]float64{3: 1, 1: -1, 2: -1}, EQ, 0),
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !sol.Stats.RootIntegral {
		t.Fatal("flow problem root not integral")
	}
	if sol.Stats.LPSolves != 1 {
		t.Fatalf("LPSolves = %d, want 1", sol.Stats.LPSolves)
	}
	if math.Abs(sol.Objective-22) > 1e-6 { // takes the x1 branch
		t.Fatalf("objective = %v, values %v", sol.Objective, sol.Values)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Problem{
		{NumVars: 0},
		{NumVars: 2, Objective: map[int]float64{5: 1}},
		{NumVars: 2, Objective: map[int]float64{0: math.NaN()}},
		{NumVars: 1, Constraints: []Constraint{c(map[int]float64{3: 1}, LE, 1)}},
		{NumVars: 1, Constraints: []Constraint{c(map[int]float64{0: 1}, LE, math.Inf(1))}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: Solve accepted invalid problem", i)
		}
	}
}

// bruteForce finds the integer optimum by enumerating the box [0,ub]^n.
func bruteForce(p *Problem, ub int) (bool, float64, []float64) {
	n := p.NumVars
	x := make([]float64, n)
	best := make([]float64, n)
	found := false
	bestObj := 0.0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if !p.Feasible(x, 1e-9) {
				return
			}
			obj := p.EvalObjective(x)
			if !found ||
				(p.Sense == Maximize && obj > bestObj) ||
				(p.Sense == Minimize && obj < bestObj) {
				found = true
				bestObj = obj
				copy(best, x)
			}
			return
		}
		for v := 0; v <= ub; v++ {
			x[i] = float64(v)
			rec(i + 1)
		}
	}
	rec(0)
	return found, bestObj, best
}

// TestRandomILPsAgainstBruteForce cross-checks the solver against exhaustive
// search on small random problems.
func TestRandomILPsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const ub = 4
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(2) // 2-3 vars
		p := &Problem{
			Sense:     Sense(rng.Intn(2)),
			NumVars:   n,
			Integer:   true,
			Objective: map[int]float64{},
		}
		for i := 0; i < n; i++ {
			p.Objective[i] = float64(rng.Intn(11) - 5)
			// Box constraint keeps everything bounded.
			p.Constraints = append(p.Constraints, c(map[int]float64{i: 1}, LE, ub))
		}
		rows := 1 + rng.Intn(3)
		for r := 0; r < rows; r++ {
			coeffs := map[int]float64{}
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					coeffs[i] = float64(rng.Intn(7) - 3)
				}
			}
			if len(coeffs) == 0 {
				coeffs[0] = 1
			}
			rel := Relation(rng.Intn(3))
			rhs := float64(rng.Intn(13) - 4)
			p.Constraints = append(p.Constraints, c(coeffs, rel, rhs))
		}

		wantFound, wantObj, _ := bruteForce(p, ub)
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, p)
		}
		if !wantFound {
			if sol.Status == Optimal {
				t.Fatalf("trial %d: solver found %v/%v but brute force says infeasible\n%s",
					trial, sol.Objective, sol.Values, p)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: solver says %v but brute force found obj %v\n%s",
				trial, sol.Status, wantObj, p)
		}
		if math.Abs(sol.Objective-wantObj) > 1e-6 {
			t.Fatalf("trial %d: solver obj %v != brute force %v (values %v)\n%s",
				trial, sol.Objective, wantObj, sol.Values, p)
		}
		if !p.Feasible(sol.Values, 1e-6) {
			t.Fatalf("trial %d: solver values infeasible: %v\n%s", trial, sol.Values, p)
		}
	}
}

// TestRandomLPsSanity: for pure LPs, verify returned points are feasible
// and at least as good as a sample of random feasible lattice points.
func TestRandomLPsSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(3)
		p := &Problem{
			Sense:     Maximize,
			NumVars:   n,
			Objective: map[int]float64{},
		}
		for i := 0; i < n; i++ {
			p.Objective[i] = float64(rng.Intn(9) - 4)
			p.Constraints = append(p.Constraints, c(map[int]float64{i: 1}, LE, float64(1+rng.Intn(8))))
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v\n%s", trial, sol.Status, p)
		}
		if !p.Feasible(sol.Values, 1e-6) {
			t.Fatalf("trial %d: infeasible optimum\n%s", trial, p)
		}
		// Sample feasible points; none may beat the reported optimum.
		for s := 0; s < 50; s++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = float64(rng.Intn(9))
			}
			if p.Feasible(x, 1e-9) && p.EvalObjective(x) > sol.Objective+1e-6 {
				t.Fatalf("trial %d: point %v beats optimum %v\n%s", trial, x, sol.Objective, p)
			}
		}
	}
}

func TestStringRendering(t *testing.T) {
	p := &Problem{
		Sense:     Maximize,
		NumVars:   3,
		Objective: map[int]float64{0: 1, 2: -2.5},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1, 1: -1}, Rel: LE, RHS: 4, Name: "flow"},
			{Coeffs: map[int]float64{}, Rel: EQ, RHS: 0},
		},
	}
	s := p.String()
	for _, want := range []string{"max", "x0", "- 2.5 x2", "<= 4", "; flow", "0 = 0"} {
		if !contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

// TestDegenerateProblems pins the documented behavior on empty and
// near-empty inputs: NumVars == 0 is a distinct Validate error (never a
// silent Optimal 0), an empty constraint list resolves at the origin
// (Unbounded when the objective improves off it, Optimal 0 otherwise), and
// single-row constant or degenerate systems get their mathematically
// correct status.
func TestDegenerateProblems(t *testing.T) {
	cases := []struct {
		name    string
		p       *Problem
		wantErr bool
		status  Status
		obj     float64
	}{
		{
			name:    "no variables",
			p:       &Problem{NumVars: 0, Sense: Maximize},
			wantErr: true,
		},
		{
			name:    "no variables with constraints",
			p:       &Problem{NumVars: 0, Constraints: []Constraint{c(map[int]float64{}, LE, 1)}},
			wantErr: true,
		},
		{
			name:   "empty constraints improving objective",
			p:      &Problem{NumVars: 1, Sense: Maximize, Objective: map[int]float64{0: 1}},
			status: Unbounded,
		},
		{
			name:   "empty constraints minimizing",
			p:      &Problem{NumVars: 1, Sense: Minimize, Objective: map[int]float64{0: 1}},
			status: Optimal, obj: 0,
		},
		{
			name:   "empty constraints worsening objective",
			p:      &Problem{NumVars: 2, Sense: Maximize, Objective: map[int]float64{0: -3, 1: -1}},
			status: Optimal, obj: 0,
		},
		{
			name:   "empty constraints zero objective",
			p:      &Problem{NumVars: 3, Sense: Maximize},
			status: Optimal, obj: 0,
		},
		{
			name: "single constant row infeasible",
			p: &Problem{NumVars: 1, Sense: Maximize, Objective: map[int]float64{0: 1},
				Constraints: []Constraint{c(map[int]float64{}, GE, 5)}},
			status: Infeasible,
		},
		{
			name: "single constant row redundant",
			p: &Problem{NumVars: 1, Sense: Minimize, Objective: map[int]float64{0: 2},
				Constraints: []Constraint{c(map[int]float64{}, LE, 5)}},
			status: Optimal, obj: 0,
		},
		{
			name: "single trivial equality",
			p: &Problem{NumVars: 1, Sense: Minimize, Objective: map[int]float64{0: 1},
				Constraints: []Constraint{c(map[int]float64{}, EQ, 0)}},
			status: Optimal, obj: 0,
		},
		{
			name: "single row pins variable",
			p: &Problem{NumVars: 1, Sense: Maximize, Objective: map[int]float64{0: 7},
				Constraints: []Constraint{c(map[int]float64{0: 1}, EQ, 3)}},
			status: Optimal, obj: 21,
		},
		{
			name: "single row all coefficients zero with nonzero rhs",
			p: &Problem{NumVars: 2, Sense: Maximize, Objective: map[int]float64{0: 1},
				Constraints: []Constraint{c(map[int]float64{0: 0, 1: 0}, EQ, 4)}},
			status: Infeasible,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sol, err := Solve(tc.p)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Solve accepted %s (got %+v)", tc.name, sol)
				}
				return
			}
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if sol.Status != tc.status {
				t.Fatalf("status = %v, want %v", sol.Status, tc.status)
			}
			if tc.status == Optimal && math.Abs(sol.Objective-tc.obj) > 1e-6 {
				t.Fatalf("objective = %v, want %v", sol.Objective, tc.obj)
			}
			// The degenerate paths must agree with the dense oracle too.
			dStatus, dObj, _, _ := denseSimplex(tc.p)
			if dStatus != tc.status || (tc.status == Optimal && math.Abs(dObj-tc.obj) > 1e-6) {
				t.Fatalf("dense oracle disagrees: %v %v", dStatus, dObj)
			}
		})
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
