package ilp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// fixtureProblems collects the hand-written fixtures from the other test
// files plus a batch of random integer and pure-LP problems, so the
// sparse/dense differential runs over every shape the suite exercises.
func fixtureProblems() []*Problem {
	ps := []*Problem{
		{ // TestSimpleLPMax
			Sense: Maximize, NumVars: 2, Objective: map[int]float64{0: 3, 1: 2},
			Constraints: []Constraint{
				c(map[int]float64{0: 1, 1: 1}, LE, 4),
				c(map[int]float64{0: 1, 1: 3}, LE, 6),
			},
		},
		{ // TestSimpleLPMin
			Sense: Minimize, NumVars: 2, Objective: map[int]float64{0: 1, 1: 1},
			Constraints: []Constraint{
				c(map[int]float64{0: 1, 1: 2}, GE, 6),
				c(map[int]float64{0: 3, 1: 1}, GE, 9),
			},
		},
		{ // TestEqualityConstraints
			Sense: Maximize, NumVars: 2, Objective: map[int]float64{0: 1, 1: 1},
			Constraints: []Constraint{
				c(map[int]float64{0: 1, 1: 1}, EQ, 5),
				c(map[int]float64{0: 1, 1: -1}, EQ, 1),
			},
		},
		{ // TestInfeasible
			Sense: Maximize, NumVars: 1, Objective: map[int]float64{0: 1},
			Constraints: []Constraint{
				c(map[int]float64{0: 1}, LE, 3),
				c(map[int]float64{0: 1}, GE, 5),
			},
		},
		{ // TestUnbounded
			Sense: Maximize, NumVars: 2, Objective: map[int]float64{0: 1},
			Constraints: []Constraint{
				c(map[int]float64{1: 1}, LE, 3),
			},
		},
		{ // TestNegativeRHSNormalization
			Sense: Maximize, NumVars: 2, Objective: map[int]float64{0: 1, 1: 1},
			Constraints: []Constraint{
				c(map[int]float64{0: 1, 1: -1}, LE, -2),
				c(map[int]float64{1: 1}, LE, 5),
			},
		},
		{ // TestIntegerKnapsack relaxation
			Sense: Maximize, NumVars: 4, Objective: map[int]float64{0: 8, 1: 11, 2: 6, 3: 4},
			Constraints: []Constraint{
				c(map[int]float64{0: 5, 1: 7, 2: 4, 3: 3}, LE, 14),
				c(map[int]float64{0: 1}, LE, 1),
				c(map[int]float64{1: 1}, LE, 1),
				c(map[int]float64{2: 1}, LE, 1),
				c(map[int]float64{3: 1}, LE, 1),
			},
		},
		{ // TestNetworkFlowRootIntegral
			Sense: Maximize, NumVars: 4, Objective: map[int]float64{0: 10, 1: 5, 2: 2, 3: 7},
			Constraints: []Constraint{
				c(map[int]float64{0: 1}, EQ, 1),
				c(map[int]float64{1: 1, 2: 1, 0: -1}, EQ, 0),
				c(map[int]float64{3: 1, 1: -1, 2: -1}, EQ, 0),
			},
		},
		{ // TestBealeCycling
			Sense: Maximize, NumVars: 4, Objective: map[int]float64{0: 0.75, 1: -150, 2: 0.02, 3: -6},
			Constraints: []Constraint{
				{Coeffs: map[int]float64{0: 0.25, 1: -60, 2: -0.04, 3: 9}, Rel: LE, RHS: 0},
				{Coeffs: map[int]float64{0: 0.5, 1: -90, 2: -0.02, 3: 3}, Rel: LE, RHS: 0},
				{Coeffs: map[int]float64{2: 1}, Rel: LE, RHS: 1},
			},
		},
		{ // TestZeroObjective
			Sense: Minimize, NumVars: 2,
			Constraints: []Constraint{
				{Coeffs: map[int]float64{0: 1, 1: 1}, Rel: EQ, RHS: 7},
			},
		},
	}

	// The degenerate flow of TestHighlyDegenerateFlow.
	deg := &Problem{Sense: Maximize, NumVars: 3, Objective: map[int]float64{0: 1, 1: 2, 2: 3}}
	for _, r := range []Constraint{
		{Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: 4},
		{Coeffs: map[int]float64{0: 1, 1: -1}, Rel: EQ, RHS: 0},
		{Coeffs: map[int]float64{1: 1, 2: -1}, Rel: EQ, RHS: 0},
	} {
		deg.Constraints = append(deg.Constraints, r, r,
			Constraint{Coeffs: r.Coeffs, Rel: LE, RHS: r.RHS})
	}
	ps = append(ps, deg)

	// The long flow chain of TestLargeScaleFlowChain.
	chain := &Problem{Sense: Maximize, NumVars: 120, Objective: map[int]float64{}}
	chain.Constraints = append(chain.Constraints, Constraint{Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: 3})
	for i := 1; i < chain.NumVars; i++ {
		chain.Constraints = append(chain.Constraints, Constraint{
			Coeffs: map[int]float64{i - 1: 1, i: -1}, Rel: EQ, RHS: 0,
		})
		chain.Objective[i] = float64(i % 5)
	}
	ps = append(ps, chain)

	// Random problems in the style of TestRandomILPsAgainstBruteForce.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(3)
		p := &Problem{Sense: Sense(rng.Intn(2)), NumVars: n, Objective: map[int]float64{}}
		for i := 0; i < n; i++ {
			p.Objective[i] = float64(rng.Intn(11) - 5)
			p.Constraints = append(p.Constraints, c(map[int]float64{i: 1}, LE, float64(1+rng.Intn(6))))
		}
		for r := 0; r < 1+rng.Intn(3); r++ {
			coeffs := map[int]float64{}
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					coeffs[i] = float64(rng.Intn(7) - 3)
				}
			}
			if len(coeffs) == 0 {
				coeffs[0] = 1
			}
			p.Constraints = append(p.Constraints, c(coeffs, Relation(rng.Intn(3)), float64(rng.Intn(13)-4)))
		}
		ps = append(ps, p)
	}
	return ps
}

// TestSparseDenseDifferential asserts the production sparse simplex and the
// retained dense oracle agree — identical status, objective within 1e-6 —
// on every fixture, both with plain constraints and with the rows packed
// into a Prefix.
func TestSparseDenseDifferential(t *testing.T) {
	for i, p := range fixtureProblems() {
		dStatus, dObj, _, _ := denseSimplex(p)

		st, obj, x, _ := sparseSimplex(p)
		if st != dStatus {
			t.Fatalf("fixture %d: sparse status %v, dense %v\n%s", i, st, dStatus, p)
		}
		if st == Optimal {
			if math.Abs(obj-dObj) > 1e-6 {
				t.Fatalf("fixture %d: sparse obj %v, dense %v\n%s", i, obj, dObj, p)
			}
			if !p.Feasible(x, 1e-6) {
				t.Fatalf("fixture %d: sparse optimum infeasible: %v\n%s", i, x, p)
			}
		}

		// Same problem with every row pre-lowered into the Prefix.
		packed := &Problem{
			Sense: p.Sense, NumVars: p.NumVars, Objective: p.Objective,
			Prefix: Pack(p.Constraints),
		}
		pst, pobj, px, _ := sparseSimplex(packed)
		if pst != dStatus {
			t.Fatalf("fixture %d (packed): status %v, dense %v\n%s", i, pst, dStatus, p)
		}
		if pst == Optimal {
			if math.Abs(pobj-dObj) > 1e-6 {
				t.Fatalf("fixture %d (packed): obj %v, dense %v\n%s", i, pobj, dObj, p)
			}
			if !packed.Feasible(px, 1e-6) {
				t.Fatalf("fixture %d (packed): optimum infeasible: %v", i, px)
			}
		}

		// Split: half the rows packed, half raw — the production layout of
		// package ipet (shared prefix + per-set tail).
		half := len(p.Constraints) / 2
		split := &Problem{
			Sense: p.Sense, NumVars: p.NumVars, Objective: p.Objective,
			Prefix:      Pack(p.Constraints[:half]),
			Constraints: p.Constraints[half:],
		}
		sst, sobj, _, _ := sparseSimplex(split)
		if sst != dStatus || (sst == Optimal && math.Abs(sobj-dObj) > 1e-6) {
			t.Fatalf("fixture %d (split): %v %v vs dense %v %v\n%s", i, sst, sobj, dStatus, dObj, p)
		}
	}
}

// TestSelfCheckSolve runs integer solves through Solve with the built-in
// sparse/dense self-check armed, covering the branch-and-bound re-solve
// path (which shares the Prefix across nodes).
func TestSelfCheckSolve(t *testing.T) {
	SetSelfCheck(true)
	defer SetSelfCheck(false)
	for i, p := range fixtureProblems() {
		q := &Problem{
			Sense: p.Sense, NumVars: p.NumVars, Objective: p.Objective,
			Prefix: Pack(p.Constraints),
		}
		// Branch and bound only over fixtures where every variable carries
		// an upper bound (unboxed integer problems, e.g. Beale's, can
		// branch astronomically).
		boxed := make([]bool, p.NumVars)
		for _, c := range p.Constraints {
			if len(c.Coeffs) == 1 && c.Rel == LE && c.RHS >= 0 {
				for v, coef := range c.Coeffs {
					if coef > 0 {
						boxed[v] = true
					}
				}
			}
		}
		q.Integer = true
		for _, b := range boxed {
			if !b {
				q.Integer = false
				break
			}
		}
		if _, err := SolveCtx(context.Background(), q); err != nil {
			t.Fatalf("fixture %d: %v\n%s", i, err, p)
		}
	}
}

// TestPackNormalization checks Pack's sign normalization and zero dropping.
func TestPackNormalization(t *testing.T) {
	rows := Pack([]Constraint{
		{Coeffs: map[int]float64{2: 1, 0: -1, 1: 0}, Rel: LE, RHS: -2},
		{Coeffs: map[int]float64{0: 3}, Rel: GE, RHS: 6},
	})
	r := rows[0]
	if r.RHS != 2 || r.Rel != GE {
		t.Fatalf("row 0 not normalized: %+v", r)
	}
	if len(r.Cols) != 2 || r.Cols[0] != 0 || r.Cols[1] != 2 || r.Vals[0] != 1 || r.Vals[1] != -1 {
		t.Fatalf("row 0 cols/vals wrong: %+v", r)
	}
	if got := r.unpack(); got.Coeffs[0] != 1 || got.Coeffs[2] != -1 || got.RHS != 2 || got.Rel != GE {
		t.Fatalf("unpack mismatch: %+v", got)
	}
	if rows[1].RHS != 6 || rows[1].Rel != GE || rows[1].Vals[0] != 3 {
		t.Fatalf("row 1 wrong: %+v", rows[1])
	}
}
