package ilp

import (
	"context"
	"fmt"
	"math"
)

// MaxNodes bounds the branch-and-bound search; path-analysis problems solve
// at the root, so hitting this indicates a malformed problem.
const MaxNodes = 200000

// Solve optimizes the problem. For Integer problems it runs branch and
// bound over LP relaxations; otherwise it is a single simplex solve.
func Solve(p *Problem) (*Solution, error) {
	return SolveCtx(context.Background(), p)
}

// SolveOptions tunes SolveCtxOpts beyond the plain Solve behavior.
type SolveOptions struct {
	// Cutoff, together with UseCutoff, gives the solver an incumbent bound
	// from a sibling problem: once a relaxation proves the optimum is
	// strictly worse than Cutoff (below it for Maximize, above it for
	// Minimize), the solve stops with Status Dominated instead of
	// computing the exact value. Branch-and-bound additionally prunes
	// every node whose LP bound is worse than Cutoff.
	Cutoff    float64
	UseCutoff bool
	// WantCert asks the solve to attach the root relaxation's optimal-basis
	// certificate to the Solution (Solution.Cert) when the root already
	// answers the problem, so a certifying caller can re-verify the result
	// in exact arithmetic.
	WantCert bool
}

// SolveCtx is Solve with cancellation: the context is checked before the
// root relaxation and between branch-and-bound nodes, so a concurrent
// caller (the parallel constraint-set fan-out of package ipet) can abandon
// in-flight solves once a sibling job has failed. Returns ctx.Err() when
// cancelled.
func SolveCtx(ctx context.Context, p *Problem) (*Solution, error) {
	return SolveCtxOpts(ctx, p, SolveOptions{})
}

// SolveCtxOpts is SolveCtx with incumbent-cutoff support (SolveOptions).
func SolveCtxOpts(ctx context.Context, p *Problem, opts SolveOptions) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sol := &Solution{}
	worseThanCutoff := func(v float64) bool {
		if !opts.UseCutoff {
			return false
		}
		if p.Sense == Maximize {
			return v < opts.Cutoff-eps
		}
		return v > opts.Cutoff+eps
	}

	addKernelStats := func(r *lpResult) {
		sol.Stats.LPSolves++
		sol.Stats.Pivots += r.pivots
		sol.Stats.SuspectPivots += r.suspect
		if r.network {
			sol.Stats.NetworkSolves++
		}
		sol.Stats.RevisedPivots += r.revisedPivots
		sol.Stats.Refactorizations += r.refactors
	}

	root := simplexFull(p, opts.WantCert)
	status, obj, x := root.status, root.obj, root.x
	addKernelStats(&root)
	if status != Optimal {
		sol.Status = status
		return sol, nil
	}
	if worseThanCutoff(obj) {
		// The relaxation bounds the integer optimum, so the whole problem
		// is strictly worse than the caller's incumbent.
		sol.Status = Dominated
		return sol, nil
	}
	if !p.Integer || isIntegral(x) {
		sol.Stats.RootIntegral = isIntegral(x)
		sol.Status = Optimal
		sol.Objective = obj
		sol.Values = roundIfIntegral(x, p.Integer)
		sol.Cert = root.cert
		return sol, nil
	}

	// Branch and bound, depth-first with best-bound pruning.
	type node struct {
		extra []Constraint
		bound float64
	}
	better := func(a, b float64) bool {
		if p.Sense == Maximize {
			return a > b+eps
		}
		return a < b-eps
	}

	var best *Solution
	prunedByCutoff := false
	stack := []node{{bound: obj}}
	nodes := 0
	for len(stack) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if best != nil && !better(nd.bound, best.Objective) {
			continue
		}
		if worseThanCutoff(nd.bound) {
			prunedByCutoff = true
			continue
		}
		nodes++
		if nodes > MaxNodes {
			return nil, fmt.Errorf("ilp: branch-and-bound node limit exceeded (%d)", MaxNodes)
		}
		sub := &Problem{
			Sense:       p.Sense,
			NumVars:     p.NumVars,
			Objective:   p.Objective,
			Prefix:      p.Prefix,
			Constraints: append(append([]Constraint{}, p.Constraints...), nd.extra...),
		}
		sub2 := simplexFull(sub, false)
		status, obj, x := sub2.status, sub2.obj, sub2.x
		addKernelStats(&sub2)
		if nodes > 1 || len(nd.extra) > 0 {
			sol.Stats.Branches++
		}
		if status == Unbounded {
			// An unbounded subproblem means the original is unbounded in
			// the integer sense too (rational polyhedra).
			sol.Status = Unbounded
			return sol, nil
		}
		if status != Optimal {
			continue
		}
		if worseThanCutoff(obj) {
			prunedByCutoff = true
			continue
		}
		if best != nil && !better(obj, best.Objective) {
			continue
		}
		if bi := mostFractional(x); bi < 0 {
			cand := &Solution{Status: Optimal, Objective: obj, Values: roundIfIntegral(x, true)}
			if best == nil || better(obj, best.Objective) {
				best = cand
			}
			continue
		} else {
			floor := math.Floor(x[bi])
			left := append(append([]Constraint{}, nd.extra...),
				Constraint{Coeffs: map[int]float64{bi: 1}, Rel: LE, RHS: floor})
			right := append(append([]Constraint{}, nd.extra...),
				Constraint{Coeffs: map[int]float64{bi: 1}, Rel: GE, RHS: floor + 1})
			stack = append(stack, node{extra: left, bound: obj}, node{extra: right, bound: obj})
		}
	}
	if best == nil {
		if prunedByCutoff {
			sol.Status = Dominated
		} else {
			sol.Status = Infeasible
		}
		return sol, nil
	}
	sol.Status = Optimal
	sol.Objective = best.Objective
	sol.Values = best.Values
	return sol, nil
}

func isIntegral(x []float64) bool {
	for _, v := range x {
		if math.Abs(v-math.Round(v)) > intTol {
			return false
		}
	}
	return true
}

// mostFractional returns the index of the variable farthest from an
// integer, or -1 when all are integral.
func mostFractional(x []float64) int {
	best := -1
	bestFrac := intTol
	for i, v := range x {
		f := math.Abs(v - math.Round(v))
		if f > bestFrac {
			bestFrac = f
			best = i
		}
	}
	return best
}

func roundIfIntegral(x []float64, round bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	if round {
		for i, v := range out {
			out[i] = math.Round(v)
		}
	}
	return out
}
