package ilp

import (
	"fmt"
	"math"
	"sync"
)

// WarmStart retains the optimal tableau of a base problem — the shared
// Prefix rows plus an objective, with no set-specific constraints — so that
// the many sibling problems of one analysis direction (one ILP per
// functionality constraint set, all sharing the base) can be re-solved by
// dual simplex from the base basis with only their delta rows attached,
// instead of paying a full two-phase cold solve each.
//
// The retained tableau is read-only after NewWarmStart; SolveSet copies it
// into pooled scratch, so concurrent SolveSet calls on one WarmStart are
// safe.
type WarmStart struct {
	prob       *Problem
	red        *presolved // non-nil when the structural presolve shrank the base
	nTab       int        // variable count of the retained tableau's problem
	sign       float64    // +1 Maximize, -1 Minimize (internal max sense)
	ok         bool
	baseStatus Status
	basePivots int
	baseObj    float64
	baseX      []float64
	base       *scratch     // final tableau, basis, hi, phase-2 reduced costs
	baseCert   *Certificate // base optimal basis, when certifiable (no presolve)
	// baseXIntegral and redFixedIntegral are precomputed so the lean NoX
	// solve path can report integrality without materializing an assignment:
	// the base optimum's integrality, and (under a presolve) whether every
	// fixed variable's reconstructed constant is integral.
	baseXIntegral    bool
	redFixedIntegral bool
}

// WarmOptions tunes NewWarmStartOpts.
type WarmOptions struct {
	// DisablePresolve skips the structural presolve, so the retained
	// tableau works in the original variable space. A certifying caller
	// needs this: certificates name standard-form columns of the original
	// problem, and a presolved tableau's basis does not translate.
	DisablePresolve bool
}

// NewWarmStart solves the base problem once with the cold two-phase
// simplex and retains the optimal tableau. The problem must consist of
// Prefix rows only (no Constraints — those are the per-set deltas). When
// the base is not solvable to optimality (infeasible, unbounded, or
// degenerate with no rows), Ready reports false and every SolveSet call
// asks the caller to fall back to a cold solve.
func NewWarmStart(p *Problem) *WarmStart {
	return NewWarmStartOpts(p, WarmOptions{})
}

// NewWarmStartOpts is NewWarmStart with options.
func NewWarmStartOpts(p *Problem, opts WarmOptions) *WarmStart {
	w := &WarmStart{prob: p, sign: 1, baseStatus: Infeasible}
	if p.Sense == Minimize {
		w.sign = -1
	}
	if len(p.Constraints) != 0 || len(p.Prefix) == 0 {
		return w
	}
	// Structural presolve: substitute away variables the base rows pin down
	// (fixed counts, equal-count pairs, null branches) so the retained
	// tableau — and every per-set dual-simplex re-solve on top of it — works
	// in the smaller space. A presolve-detected contradiction means the base
	// itself is infeasible; leave the warm start not-ready and let the cold
	// path report that per set.
	solveProb := p
	if !opts.DisablePresolve {
		red, infeasible := presolveBase(p)
		if infeasible {
			return w
		}
		if red != nil {
			w.red = red
			solveProb = &Problem{
				Sense:     p.Sense,
				NumVars:   red.nRed,
				Objective: red.obj,
				Prefix:    red.rows,
			}
		}
	}
	w.nTab = solveProb.NumVars
	s := new(scratch) // owned, never pooled: the tableau outlives the call
	status, obj, x, pivots := sparseSimplexOn(solveProb, s)
	w.baseStatus = status
	w.basePivots = pivots
	if status != Optimal {
		return w
	}
	w.ok = true
	w.base = s
	if w.red != nil {
		obj += w.red.objOffset
		x = w.red.reconstruct(x)
	} else if s.m > 0 {
		w.baseCert = &Certificate{Warm: true, Basis: append([]int(nil), s.basis[:s.m]...)}
	}
	w.baseObj = obj
	w.baseX = x
	w.baseXIntegral = isIntegral(x)
	w.redFixedIntegral = true
	if w.red != nil {
		for v, c := range w.red.col {
			if c < 0 && math.Abs(w.red.fixed[v]-math.Round(w.red.fixed[v])) > intTol {
				w.redFixedIntegral = false
				break
			}
		}
	}
	return w
}

// Ready reports whether the base tableau is available for warm solves.
func (w *WarmStart) Ready() bool { return w.ok }

// BaseStatus returns the base solve's status (Optimal when Ready).
func (w *WarmStart) BaseStatus() Status { return w.baseStatus }

// BasePivots returns the pivot count of the one-time base solve.
func (w *WarmStart) BasePivots() int { return w.basePivots }

// BaseObjective returns the base LP relaxation's optimal objective when
// Ready. Because every per-set problem only adds rows to the base, this
// value bounds every set's optimum from above for Maximize (below for
// Minimize) — the envelope an anytime analysis reports for sets it never
// got to solve.
func (w *WarmStart) BaseObjective() (float64, bool) { return w.baseObj, w.ok }

// SolveSet re-solves the base problem with the given delta rows appended,
// by dual simplex from the retained base optimum. It returns the LP
// relaxation's result: the caller handles integrality (the root is
// integral in this domain almost always; a fractional root falls back to
// the cold branch-and-bound path).
//
// When useCutoff is set, cutoff is a bound in the problem's own sense: the
// solve returns Dominated as soon as the (monotonically tightening) dual
// bound proves the optimum is strictly worse than cutoff — below it for
// Maximize, above it for Minimize — without finishing the solve.
//
// The final result ok=false means the warm path gave up (anti-cycling
// iteration cap) and the caller must re-solve cold; the returned pivot
// count is still valid work performed.
func (w *WarmStart) SolveSet(set []Constraint, cutoff float64, useCutoff bool) (status Status, obj float64, x []float64, pivots int, ok bool) {
	r := w.SolveSetFull(set, cutoff, useCutoff, false)
	return r.Status, r.Objective, r.X, r.Pivots, r.OK
}

// SetSolveOptions tunes one warm per-set solve (SolveSetOpts).
type SetSolveOptions struct {
	// Cutoff, with UseCutoff, is an incumbent bound in the problem's own
	// sense; the solve returns Dominated as soon as the dual bound proves
	// the optimum strictly worse.
	Cutoff    float64
	UseCutoff bool
	// WantCert asks for the optimal-basis certificate (SetSolution.Cert).
	WantCert bool
	// NoX skips materializing the optimum assignment: SetSolution.X stays
	// nil and SetSolution.XIntegral still reports whether the assignment
	// would have been integral. Callers that only need the objective (the
	// per-set fan-out of package ipet re-derives the winner's counts with a
	// canonical cold re-solve anyway) save the per-solve vector allocation
	// and, under a presolve, the reconstruction.
	NoX bool
}

// SetSolution is the full result of one warm per-set solve.
type SetSolution struct {
	Status    Status
	Objective float64
	// X holds the optimum assignment (length NumVars) when Optimal —
	// unless the solve ran with SetSolveOptions.NoX, which leaves it nil.
	X []float64
	// XIntegral reports whether the optimum assignment is integral within
	// the branch-and-bound tolerance (meaningful when Optimal; valid under
	// NoX even though X itself is not materialized).
	XIntegral bool
	Pivots    int
	// Suspect counts ill-conditioned pivots of this solve.
	Suspect int
	// Cert is the optimal-basis certificate, present when the solve was
	// asked for one, ended Optimal, and the warm start runs without a
	// presolve (a presolved basis names reduced columns and cannot be
	// checked against the original problem).
	Cert *Certificate
	// OK false means the warm path gave up and the caller must solve cold.
	OK bool
}

// SolveSetFull is SolveSet returning the full per-solve result, including
// the suspect-pivot count and, when wantCert is set, the optimal-basis
// certificate for exact re-verification.
func (w *WarmStart) SolveSetFull(set []Constraint, cutoff float64, useCutoff, wantCert bool) SetSolution {
	return w.SolveSetOpts(set, SetSolveOptions{Cutoff: cutoff, UseCutoff: useCutoff, WantCert: wantCert})
}

// deltaRowsPool recycles the lowered-row slices of SolveSetOpts: one warm
// per-set solve is a few pointer-sized rows, and the fan-out performs
// thousands of them.
var deltaRowsPool = sync.Pool{New: func() any { s := make([]deltaRow, 0, 8); return &s }}

// SolveSetOpts is SolveSet with the full option set (SetSolveOptions) and
// the full per-solve result.
func (w *WarmStart) SolveSetOpts(set []Constraint, opts SetSolveOptions) SetSolution {
	if !w.ok {
		return SetSolution{Status: Infeasible}
	}
	var r SetSolution
	buf := deltaRowsPool.Get().(*[]deltaRow)
	rows, setInfeasible := w.lowerSet(set, (*buf)[:0])
	switch {
	case setInfeasible:
		// A delta row reduced to a violated constant (e.g. it pins a
		// presolve-fixed variable to a different value): the set is
		// infeasible without touching the tableau.
		r = SetSolution{Status: Infeasible, OK: true}
	case len(rows) == 0:
		// Every delta row is implied by the base (or the set was empty):
		// the base optimum answers the set — unless the incumbent cutoff
		// already proves it uninteresting, matching the dual bound check a
		// tableau solve would hit on its first iteration.
		if opts.UseCutoff && w.sign*w.baseObj < w.sign*opts.Cutoff-cutoffTol {
			r = SetSolution{Status: Dominated, OK: true}
		} else {
			r = SetSolution{Status: Optimal, Objective: w.baseObj,
				XIntegral: w.baseXIntegral, OK: true}
			if !opts.NoX {
				r.X = append([]float64(nil), w.baseX...)
			}
			if opts.WantCert {
				r.Cert = w.baseCert
			}
		}
	default:
		r = w.solveDelta(rows, opts)
	}
	// Drop the map references before recycling so a pooled slice cannot
	// pin a caller's coefficient maps alive.
	for i := range rows {
		rows[i] = deltaRow{}
	}
	*buf = rows[:0]
	deltaRowsPool.Put(buf)
	if r.OK && selfCheck.Load() {
		w.checkAgainstCold(set, r.Status, r.Objective, opts.Cutoff)
	}
	return r
}

// lowerSet translates per-set delta constraints into the tableau's variable
// space, dropping rows the base substitution already satisfies and
// reporting sets it outright contradicts. The rows are appended to the
// caller-supplied (pooled) slice.
func (w *WarmStart) lowerSet(set []Constraint, rows []deltaRow) ([]deltaRow, bool) {
	for i := range set {
		c := &set[i]
		var (
			coeffs map[int]float64
			rhs    float64
			fate   rowFate
		)
		if w.red == nil {
			coeffs, rhs = c.Coeffs, c.RHS
			fate = emptyRowFate(coeffs, c.Rel, rhs)
		} else {
			coeffs, rhs, fate = w.red.lowerConstraint(c)
		}
		switch fate {
		case rowInfeasible:
			return rows, true
		case rowRedundant:
			continue
		}
		rows = append(rows, deltaRow{coeffs: coeffs, rel: c.Rel, rhs: rhs})
	}
	return rows, false
}

func (w *WarmStart) solveDelta(rows []deltaRow, opts SetSolveOptions) SetSolution {
	b := w.base
	m0, total0 := b.m, b.total

	// Every delta row is lowered to <= form and carried by one fresh slack
	// column; an equality contributes a <= and a >= (negated <=) pair.
	k := 0
	for i := range rows {
		if rows[i].rel == EQ {
			k += 2
		} else {
			k++
		}
	}
	m := m0 + k
	total := total0 + k
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	s.ensure(m, total+1)
	s.suspect = 0

	// Copy the base tableau, shifting the rhs right past the new slack
	// columns (which ensure left zeroed).
	for i := 0; i < m0; i++ {
		src, dst := b.tab[i], s.tab[i]
		copy(dst[:total0], src[:total0])
		dst[total] = injectFault(FaultWarmBase, src[total0])
		s.basis[i] = b.basis[i]
		s.hi[i] = b.hi[i]
	}
	rc := s.rc
	copy(rc[:total0], b.rc[:total0])
	for j := total0; j < total; j++ {
		rc[j] = 0
	}
	rc[total] = b.rc[total0] // -z of the base optimum

	// Append the delta rows, eliminating basic columns against the base
	// tableau so each new row is expressed over nonbasic columns plus its
	// own (basic) slack. In a canonical tableau every basic column is a
	// unit vector, so a single pass cannot reintroduce an eliminated one.
	row, slack := m0, total0
	appendLE := func(coeffs map[int]float64, negate bool, rhs float64) {
		r := s.tab[row]
		for j, v := range coeffs {
			if v == 0 {
				continue
			}
			if negate {
				v = -v
			}
			r[j] = v
		}
		r[total] = rhs
		for i := 0; i < m0; i++ {
			f := r[s.basis[i]]
			if f == 0 {
				continue
			}
			ri := s.tab[i]
			for j := 0; j <= s.hi[i]; j++ {
				if ri[j] != 0 {
					r[j] -= f * ri[j]
				}
			}
			r[total] -= f * ri[total]
		}
		r[slack] = 1
		s.basis[row] = slack
		s.hi[row] = slack
		row++
		slack++
	}
	for i := range rows {
		c := &rows[i]
		switch c.rel {
		case LE:
			appendLE(c.coeffs, false, c.rhs)
		case GE:
			appendLE(c.coeffs, true, -c.rhs)
		case EQ:
			appendLE(c.coeffs, false, c.rhs)
			appendLE(c.coeffs, true, -c.rhs)
		}
	}

	// Dual simplex: the basis stays dual feasible (rc <= 0 over admissible
	// columns); drive the negative right-hand sides out. Base artificial
	// columns must never re-enter; the fresh slacks may.
	admissible := func(j int) bool { return j < b.artStart || j >= total0 }
	// The tableau's dual bound -rc[total] tracks the reduced objective when
	// a presolve is active; shift the caller's full-space cutoff by the
	// fixed-variable contribution before comparing.
	var off float64
	if w.red != nil {
		off = w.red.objOffset
	}
	internalCutoff := w.sign * (opts.Cutoff - off)
	pivots := 0
	blandAfter := 50 * (m + total + 10)
	hardCap := 10 * blandAfter
	for iter := 0; ; iter++ {
		// The dual bound -rc[total] tightens monotonically toward the
		// optimum; once it proves the set strictly worse than the caller's
		// incumbent, the exact value no longer matters.
		if opts.UseCutoff && -rc[total] < internalCutoff-cutoffTol {
			return SetSolution{Status: Dominated, Pivots: pivots, Suspect: s.suspect, OK: true}
		}
		if iter > hardCap {
			// Give up; cold fallback. The pivot count is still valid work.
			return SetSolution{Status: Infeasible, Pivots: pivots, Suspect: s.suspect}
		}
		useBland := iter > blandAfter
		lr := -1
		worst := -feasTol
		for i := 0; i < m; i++ {
			if v := s.tab[i][total]; v < worst {
				lr = i
				if useBland {
					break
				}
				worst = v
			}
		}
		if lr < 0 {
			break // primal feasible again: optimal
		}
		pr := s.tab[lr]
		ec := -1
		bestRatio := math.Inf(1)
		for j := 0; j < total; j++ {
			a := pr[j]
			if a < -eps && admissible(j) {
				ratio := rc[j] / a // >= 0: rc <= 0, a < 0
				if ec < 0 || ratio < bestRatio-eps {
					bestRatio = ratio
					ec = j
					if useBland && ratio <= eps {
						break
					}
				}
			}
		}
		if ec < 0 {
			// The row reads sum(nonneg terms) <= negative: infeasible.
			return SetSolution{Status: Infeasible, Pivots: pivots, Suspect: s.suspect, OK: true}
		}
		s.pivot(lr, ec, total)
		pivots++
		if f := rc[ec]; f != 0 {
			npr := s.tab[lr]
			for _, j := range s.cols {
				rc[j] -= f * npr[j]
			}
			rc[ec] = 0
			rc[total] -= f * npr[total]
		}
	}

	var r SetSolution
	if opts.NoX {
		// Lean extraction: the assignment is zero off the basis, so its
		// objective and integrality read straight off the basic rows (plus,
		// under a presolve, the precomputed fixed-variable constants) with
		// no vector materialized and nothing reconstructed.
		objMap := w.prob.Objective
		integral := true
		if w.red != nil {
			objMap = w.red.obj
			integral = w.redFixedIntegral
		}
		obj := 0.0
		for i := 0; i < m; i++ {
			if bc := s.basis[i]; bc < w.nTab {
				v := s.tab[i][total]
				if v < 0 && v > -feasTol {
					v = 0
				}
				if math.Abs(v-math.Round(v)) > intTol {
					integral = false
				}
				if c := objMap[bc]; c != 0 && v != 0 {
					obj += c * v
				}
			}
		}
		if w.red != nil {
			obj += w.red.objOffset
		}
		r = SetSolution{Status: Optimal, Objective: obj, XIntegral: integral,
			Pivots: pivots, Suspect: s.suspect, OK: true}
	} else {
		x := make([]float64, w.nTab)
		for i := 0; i < m; i++ {
			if bc := s.basis[i]; bc < w.nTab {
				v := s.tab[i][total]
				if v < 0 && v > -feasTol {
					v = 0
				}
				x[bc] = v
			}
		}
		if w.red != nil {
			x = w.red.reconstruct(x)
		}
		obj := 0.0
		for j, v := range w.prob.Objective {
			obj += v * x[j]
		}
		r = SetSolution{Status: Optimal, Objective: obj, X: x, XIntegral: isIntegral(x),
			Pivots: pivots, Suspect: s.suspect, OK: true}
	}
	if opts.WantCert && w.red == nil {
		r.Cert = &Certificate{Warm: true, Basis: append([]int(nil), s.basis[:m]...)}
	}
	return r
}

// checkAgainstCold is the SetSelfCheck differential for the warm path: the
// same base + delta problem is re-solved through the cold production
// simplex (itself checked against the dense oracle when enabled) and the
// outcomes must agree.
func (w *WarmStart) checkAgainstCold(set []Constraint, status Status, obj, cutoff float64) {
	cold := &Problem{
		Sense:       w.prob.Sense,
		NumVars:     w.prob.NumVars,
		Objective:   w.prob.Objective,
		Prefix:      w.prob.Prefix,
		Constraints: set,
	}
	cStatus, cObj, _, _ := simplex(cold)
	switch status {
	case Optimal:
		if cStatus != Optimal || math.Abs(cObj-obj) > agreeTol {
			panic(fmt.Sprintf("ilp: warm/cold divergence: warm optimal %.9g, cold %v %.9g on\n%s",
				obj, cStatus, cObj, unpackProblem(cold)))
		}
	case Infeasible:
		if cStatus != Infeasible {
			panic(fmt.Sprintf("ilp: warm/cold divergence: warm infeasible, cold %v %.9g on\n%s",
				cStatus, cObj, unpackProblem(cold)))
		}
	case Dominated:
		// Domination claims the optimum is strictly worse than the cutoff;
		// an infeasible set is vacuously dominated.
		if cStatus == Optimal && !(w.sign*cObj < w.sign*cutoff+agreeTol) {
			panic(fmt.Sprintf("ilp: warm/cold divergence: warm dominated under cutoff %.9g (%v), cold optimal %.9g on\n%s",
				cutoff, w.prob.Sense, cObj, unpackProblem(cold)))
		}
	}
}

// IsIntegral reports whether every entry of x is integral within the
// branch-and-bound tolerance — exported so callers consuming a warm LP
// solve can decide whether it already answers the integer problem.
func IsIntegral(x []float64) bool { return isIntegral(x) }
