package ilp

import (
	"math"
	"math/rand"
	"testing"
)

// warmBase builds a bounded random base problem in the shape the analysis
// produces: a shared Prefix of equality/inequality rows plus box bounds
// that keep every direction bounded.
func warmBase(rng *rand.Rand, sense Sense, n int) *Problem {
	var rows []Constraint
	// Box bounds guarantee a bounded polytope.
	for j := 0; j < n; j++ {
		rows = append(rows, c(map[int]float64{j: 1}, LE, float64(3+rng.Intn(8))))
	}
	// A few coupling rows, including equalities (like flow conservation).
	for i := 0; i < n; i++ {
		coeffs := map[int]float64{}
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				coeffs[j] = float64(rng.Intn(5) - 2)
			}
		}
		if len(coeffs) == 0 {
			continue
		}
		rel := []Relation{LE, GE, EQ}[rng.Intn(3)]
		rhs := float64(rng.Intn(12))
		if rel == GE {
			rhs = 0 // keep the base feasible: every lhs >= 0 at the origin... not
			// generally true with negative coefficients, so use a small rhs.
			rhs = -float64(rng.Intn(4))
		}
		if rel == EQ {
			// x_a - x_b = 0 style rows are always satisfiable inside the box.
			coeffs = map[int]float64{rng.Intn(n): 1, (1 + rng.Intn(n-1)) % n: -1}
			rhs = 0
		}
		rows = append(rows, c(coeffs, rel, rhs))
	}
	obj := map[int]float64{}
	for j := 0; j < n; j++ {
		obj[j] = float64(rng.Intn(9) - 2)
	}
	return &Problem{
		Sense:     sense,
		NumVars:   n,
		Objective: obj,
		Prefix:    Pack(rows),
	}
}

func randomDelta(rng *rand.Rand, n int) []Constraint {
	k := 1 + rng.Intn(3)
	var set []Constraint
	for i := 0; i < k; i++ {
		coeffs := map[int]float64{}
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				coeffs[j] = float64(rng.Intn(5) - 2)
			}
		}
		if len(coeffs) == 0 {
			coeffs[rng.Intn(n)] = 1
		}
		rel := []Relation{LE, GE, EQ}[rng.Intn(3)]
		rhs := float64(rng.Intn(10) - 2)
		set = append(set, c(coeffs, rel, rhs))
	}
	return set
}

// TestWarmStartAgainstCold is the warm-path differential: many random
// (base, delta-set) pairs, both senses, warm dual-simplex result compared
// to the cold two-phase solve of the identical problem — with the
// dense-oracle self-check enabled so all three solvers must agree.
func TestWarmStartAgainstCold(t *testing.T) {
	SetSelfCheck(true)
	defer SetSelfCheck(false)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		sense := Maximize
		if trial%2 == 1 {
			sense = Minimize
		}
		n := 3 + rng.Intn(5)
		base := warmBase(rng, sense, n)
		w := NewWarmStart(base)
		if !w.Ready() {
			// Base infeasible/unbounded by construction is rare but legal;
			// the caller would go cold. Nothing warm to verify.
			continue
		}
		for si := 0; si < 4; si++ {
			set := randomDelta(rng, n)
			cold := &Problem{
				Sense: sense, NumVars: n, Objective: base.Objective,
				Prefix: base.Prefix, Constraints: set,
			}
			cStatus, cObj, _, _ := simplex(cold)
			status, obj, x, _, ok := w.SolveSet(set, 0, false)
			if !ok {
				t.Fatalf("trial %d set %d: warm solve gave up", trial, si)
			}
			if status != cStatus {
				t.Fatalf("trial %d set %d: warm %v, cold %v on\n%s", trial, si, status, cStatus, unpackProblem(cold))
			}
			if status == Optimal {
				if math.Abs(obj-cObj) > 1e-6 {
					t.Fatalf("trial %d set %d: warm obj %.9g, cold %.9g", trial, si, obj, cObj)
				}
				if !cold.Feasible(x, 1e-6) {
					t.Fatalf("trial %d set %d: warm optimum violates constraints: %v", trial, si, x)
				}
			}
		}
	}
}

// TestWarmStartCutoff: the incumbent cutoff must return Dominated exactly
// when the optimum is strictly worse than the cutoff, and never lie.
func TestWarmStartCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		sense := Maximize
		if trial%2 == 1 {
			sense = Minimize
		}
		n := 3 + rng.Intn(4)
		base := warmBase(rng, sense, n)
		w := NewWarmStart(base)
		if !w.Ready() {
			continue
		}
		set := randomDelta(rng, n)
		status, obj, _, _, ok := w.SolveSet(set, 0, false)
		if !ok || status != Optimal {
			continue
		}
		// A cutoff strictly beyond the optimum must dominate the set; one
		// strictly behind it must let the solve finish with the same value.
		var beyond, behind float64
		if sense == Maximize {
			beyond, behind = obj+1, obj-1
		} else {
			beyond, behind = obj-1, obj+1
		}
		if st, _, _, _, ok := w.SolveSet(set, beyond, true); !ok || st != Dominated {
			t.Fatalf("trial %d: cutoff %.9g past optimum %.9g: status %v ok=%v", trial, beyond, obj, st, ok)
		}
		st, got, _, _, ok := w.SolveSet(set, behind, true)
		if !ok || st != Optimal || math.Abs(got-obj) > 1e-6 {
			t.Fatalf("trial %d: cutoff %.9g behind optimum %.9g: status %v obj %.9g", trial, behind, obj, st, got)
		}
	}
}

// TestWarmStartEmptyAndInfeasibleSets covers the degenerate delta shapes
// the analysis produces: an empty set (base answer reused) and a set that
// contradicts the base.
func TestWarmStartEmptyAndInfeasibleSets(t *testing.T) {
	base := &Problem{
		Sense:     Maximize,
		NumVars:   2,
		Objective: map[int]float64{0: 3, 1: 2},
		Prefix: Pack([]Constraint{
			c(map[int]float64{0: 1, 1: 1}, LE, 4),
			c(map[int]float64{0: 1, 1: 3}, LE, 6),
		}),
	}
	w := NewWarmStart(base)
	if !w.Ready() {
		t.Fatalf("base not ready: %v", w.BaseStatus())
	}
	status, obj, x, pivots, ok := w.SolveSet(nil, 0, false)
	if !ok || status != Optimal || math.Abs(obj-12) > 1e-6 || pivots != 0 {
		t.Fatalf("empty set: %v obj=%v pivots=%d ok=%v", status, obj, pivots, ok)
	}
	if math.Abs(x[0]-4) > 1e-6 {
		t.Fatalf("empty set values: %v", x)
	}
	status, _, _, _, ok = w.SolveSet([]Constraint{
		c(map[int]float64{0: 1, 1: 1}, GE, 100),
	}, 0, false)
	if !ok || status != Infeasible {
		t.Fatalf("contradictory set: %v ok=%v", status, ok)
	}
	// Equality deltas pin the optimum to an interior face: with x0 = 1 the
	// binding row is x0 + 3 x1 <= 6, so x1 = 5/3 and the objective is 19/3.
	status, obj, _, _, ok = w.SolveSet([]Constraint{
		c(map[int]float64{0: 1}, EQ, 1),
	}, 0, false)
	if !ok || status != Optimal || math.Abs(obj-19.0/3) > 1e-6 {
		t.Fatalf("equality set: %v obj=%v ok=%v (want 19/3)", status, obj, ok)
	}
}

// TestSolveCtxOptsCutoff: the cold path's cutoff mirrors the warm one at
// the integer level.
func TestSolveCtxOptsCutoff(t *testing.T) {
	p := &Problem{
		Sense:     Maximize,
		NumVars:   2,
		Integer:   true,
		Objective: map[int]float64{0: 3, 1: 2},
		Constraints: []Constraint{
			c(map[int]float64{0: 1, 1: 1}, LE, 4),
		},
	}
	sol, err := SolveCtxOpts(t.Context(), p, SolveOptions{Cutoff: 13, UseCutoff: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Dominated {
		t.Fatalf("cutoff above optimum: %+v", sol)
	}
	sol, err = SolveCtxOpts(t.Context(), p, SolveOptions{Cutoff: 11, UseCutoff: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-12) > 1e-6 {
		t.Fatalf("cutoff below optimum: %+v", sol)
	}
}
