package ilp

import "sync/atomic"

// FaultSite identifies a float64 computation a test may perturb through
// SetFaultInjector to prove the certification layer catches corrupted
// solves. The dense oracle is deliberately not instrumented so it can keep
// serving as the clean reference while the production paths are faulted.
type FaultSite int

const (
	// FaultPivot is the pivot element of the sparse kernel, read once per
	// pivot in scratch.pivot (shared by the cold sparse solve and the warm
	// dual simplex). Perturbing it corrupts the tableau from that pivot on.
	FaultPivot FaultSite = iota
	// FaultObjective is a phase-2 objective coefficient as it is lowered
	// into the sparse tableau's internal maximization sense. Perturbing it
	// makes the solver optimize the wrong objective while still reporting
	// the true objective's value at the vertex it lands on.
	FaultObjective
	// FaultWarmBase is a base-tableau right-hand-side entry as it is copied
	// into a warm delta solve — a stale or corrupted warm-start basis.
	FaultWarmBase
)

// faultInjector, when non-nil, rewrites the value read at each FaultSite.
var faultInjector atomic.Pointer[func(FaultSite, float64) float64]

// SetFaultInjector installs f as a global perturbation applied at every
// FaultSite of the production solver paths (pass nil to remove it). It is a
// test-only hook: tests inject controlled numeric faults and assert that
// certification (package certify, via ipet.Options.Certify) rejects the
// corrupted result and the exact fallback recovers the true bound. The
// injector is process-global, so tests using it must not run in parallel
// with other solver tests, and must not enable SetSelfCheck (the dense
// oracle is unfaulted and the differential would panic by design).
func SetFaultInjector(f func(FaultSite, float64) float64) {
	if f == nil {
		faultInjector.Store(nil)
		return
	}
	faultInjector.Store(&f)
}

// injectFault filters v through the installed injector, if any.
func injectFault(site FaultSite, v float64) float64 {
	if f := faultInjector.Load(); f != nil {
		return (*f)(site, v)
	}
	return v
}
