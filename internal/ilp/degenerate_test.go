package ilp

import (
	"math"
	"testing"
)

// TestBealeCycling solves Beale's classic cycling example, on which plain
// Dantzig pivoting loops forever without anti-cycling protection. The
// solver's Bland fallback must terminate at the optimum 1/20.
func TestBealeCycling(t *testing.T) {
	p := &Problem{
		Sense:     Maximize,
		NumVars:   4,
		Objective: map[int]float64{0: 0.75, 1: -150, 2: 0.02, 3: -6},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 0.25, 1: -60, 2: -0.04, 3: 9}, Rel: LE, RHS: 0},
			{Coeffs: map[int]float64{0: 0.5, 1: -90, 2: -0.02, 3: 3}, Rel: LE, RHS: 0},
			{Coeffs: map[int]float64{2: 1}, Rel: LE, RHS: 1},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-0.05) > 1e-9 {
		t.Fatalf("objective = %v, want 0.05", sol.Objective)
	}
}

// TestHighlyDegenerateFlow: many redundant equalities (each block equation
// stated twice) must not upset the simplex.
func TestHighlyDegenerateFlow(t *testing.T) {
	p := &Problem{
		Sense:     Maximize,
		NumVars:   3,
		Integer:   true,
		Objective: map[int]float64{0: 1, 1: 2, 2: 3},
	}
	rows := []Constraint{
		{Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: 4},
		{Coeffs: map[int]float64{0: 1, 1: -1}, Rel: EQ, RHS: 0},
		{Coeffs: map[int]float64{1: 1, 2: -1}, Rel: EQ, RHS: 0},
	}
	// State each row twice, plus a redundant <= version.
	for _, r := range rows {
		p.Constraints = append(p.Constraints, r, r)
		le := Constraint{Coeffs: r.Coeffs, Rel: LE, RHS: r.RHS}
		p.Constraints = append(p.Constraints, le)
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-24) > 1e-6 {
		t.Fatalf("sol = %+v values %v", sol, sol.Values)
	}
	if !sol.Stats.RootIntegral {
		t.Fatal("degenerate flow needed branching")
	}
}

// TestZeroObjective: a pure feasibility problem.
func TestZeroObjective(t *testing.T) {
	p := &Problem{
		Sense:   Minimize,
		NumVars: 2,
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1, 1: 1}, Rel: EQ, RHS: 7},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("sol = %+v", sol)
	}
	if !p.Feasible(sol.Values, 1e-9) {
		t.Fatalf("infeasible point %v", sol.Values)
	}
}

// TestLargeScaleFlowChain: a longer chain keeps the incremental
// reduced-cost maintenance honest on a bigger tableau.
func TestLargeScaleFlowChain(t *testing.T) {
	const n = 120
	p := &Problem{Sense: Maximize, NumVars: n, Integer: true, Objective: map[int]float64{}}
	p.Constraints = append(p.Constraints, Constraint{
		Coeffs: map[int]float64{0: 1}, Rel: EQ, RHS: 3,
	})
	for i := 1; i < n; i++ {
		p.Constraints = append(p.Constraints, Constraint{
			Coeffs: map[int]float64{i - 1: 1, i: -1}, Rel: EQ, RHS: 0,
		})
		p.Objective[i] = float64(i % 5)
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	want := 0.0
	for i := 1; i < n; i++ {
		want += 3 * float64(i%5)
	}
	if math.Abs(sol.Objective-want) > 1e-6 {
		t.Fatalf("objective %v, want %v", sol.Objective, want)
	}
	if !sol.Stats.RootIntegral {
		t.Fatal("chain needed branching")
	}
}
