package ilp

import "math"

// Structural presolve for the shared base problem of a warm start. The
// analysis base rows (flow equations, the root's d1 = 1, loop bounds) are
// full of rows the simplex does not need to carry: equalities that merely
// name one variable in terms of another (x3 = x8, a block count equal to
// its single edge), variables fixed outright (d1 = 1), and null branches
// whose counts are forced to zero (x = 0 propagating through sums of
// nonnegative edge counts). Substituting those away before the base tableau
// is built shrinks every row the per-set dual-simplex re-solves inherit.
//
// The reduction is exact on the LP: every feasible point of the reduced
// problem reconstructs to a feasible point of the original with the same
// objective value, and vice versa. The warm path re-derives nothing — a
// reduced solve plus reconstruct answers the original problem — and the
// SetSelfCheck differential replays reduced solves against the unreduced
// cold solver, so a presolve defect cannot pass silently.

// presolved maps between an original base problem and its reduced form.
type presolved struct {
	n    int   // original variable count
	nRed int   // reduced variable count
	// col[v] is the reduced column of v's equality class, -1 when v is
	// fixed; fixed[v] holds the value in that case.
	col   []int32
	fixed []float64
	// rows is the reduced base, obj/objOffset the reduced objective: the
	// original objective equals reduced(x') + objOffset at corresponding
	// points.
	rows      []PackedRow
	obj       map[int]float64
	objOffset float64
}

// rowFate classifies a delta row after substitution.
type rowFate int

const (
	rowKeep rowFate = iota
	rowRedundant
	rowInfeasible
)

// deltaRow is one per-set constraint lowered into the tableau's variable
// space (reduced when a presolve is active, original otherwise).
type deltaRow struct {
	coeffs map[int]float64
	rel    Relation
	rhs    float64
}

// presolveBase derives the substitution implied by the base's structural
// rows. It returns nil when no variable can be eliminated (the reduction
// would be a plain copy); infeasible reports a contradiction among the
// rows, in which case the returned reduction is nil and the base problem
// has no feasible point.
func presolveBase(p *Problem) (red *presolved, infeasible bool) {
	n := p.NumVars
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	hasVal := make([]bool, n)
	val := make([]float64, n)

	bad := false
	changed := false
	fix := func(v int, x float64) {
		r := find(v)
		if x < 0 {
			if x < -presolveTol {
				bad = true
				return
			}
			x = 0
		}
		if hasVal[r] {
			if math.Abs(val[r]-x) > presolveTol {
				bad = true
			}
			return
		}
		hasVal[r], val[r] = true, x
		changed = true
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Merge the higher-numbered root into the lower so class
		// representatives are deterministic.
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		if hasVal[rb] {
			if hasVal[ra] && math.Abs(val[ra]-val[rb]) > presolveTol {
				bad = true
				return
			}
			hasVal[ra], val[ra] = true, val[rb]
		}
		changed = true
	}

	// Substitute to a fixpoint: each pass reduces every row under the
	// current classes/values and harvests new facts. Row counts here are
	// small and each pass either fixes or merges at least one variable, so
	// the loop is bounded by the variable count.
	terms := map[int]float64{}
	for {
		changed = false
		for ri := range p.Prefix {
			r := &p.Prefix[ri]
			clear(terms)
			rhs := r.RHS
			for k, cv := range r.Cols {
				rt := find(int(cv))
				if hasVal[rt] {
					rhs -= r.Vals[k] * val[rt]
					continue
				}
				terms[rt] += r.Vals[k]
				if terms[rt] == 0 {
					delete(terms, rt)
				}
			}
			pos, neg := 0, 0
			for _, c := range terms {
				if c > 0 {
					pos++
				} else {
					neg++
				}
			}
			switch r.Rel {
			case EQ:
				switch {
				case len(terms) == 0:
					if math.Abs(rhs) > presolveTol {
						bad = true
					}
				case len(terms) == 1:
					for rt, c := range terms {
						fix(rt, rhs/c)
					}
				case math.Abs(rhs) <= presolveTol && (pos == 0 || neg == 0):
					// Sum of same-signed terms over nonnegative variables
					// equals zero: every term is zero (null branches).
					for rt := range terms {
						fix(rt, 0)
					}
				case len(terms) == 2 && math.Abs(rhs) <= presolveTol:
					// c*x - c*y = 0 is x = y: merge the classes.
					var vs [2]int
					var cs [2]float64
					i := 0
					for rt, c := range terms {
						vs[i], cs[i] = rt, c
						i++
					}
					if cs[0] == -cs[1] {
						union(vs[0], vs[1])
					}
				}
			case LE:
				if len(terms) == 0 {
					if rhs < -presolveTol {
						bad = true
					}
				} else if neg == 0 {
					if rhs < -presolveTol {
						bad = true // sum of nonnegative terms <= negative
					} else if rhs <= presolveTol {
						for rt := range terms {
							fix(rt, 0)
						}
					}
				}
			case GE:
				if len(terms) == 0 {
					if rhs > presolveTol {
						bad = true
					}
				} else if pos == 0 {
					if rhs > presolveTol {
						bad = true // sum of nonpositive terms >= positive
					} else if rhs >= -presolveTol {
						for rt := range terms {
							fix(rt, 0)
						}
					}
				}
			}
			if bad {
				return nil, true
			}
		}
		if !changed {
			break
		}
	}

	// Assign reduced columns to the surviving classes, in variable order.
	col := make([]int32, n)
	fixed := make([]float64, n)
	nRed := 0
	rootCol := make(map[int]int32)
	for v := 0; v < n; v++ {
		rt := find(v)
		if hasVal[rt] {
			col[v] = -1
			fixed[v] = val[rt]
			continue
		}
		c, ok := rootCol[rt]
		if !ok {
			c = int32(nRed)
			rootCol[rt] = c
			nRed++
		}
		col[v] = c
	}
	if nRed == n || nRed == 0 {
		// Nothing eliminated (reduction would be a copy), or everything
		// fixed (degenerate; let the cold path handle it).
		return nil, false
	}
	red = &presolved{n: n, nRed: nRed, col: col, fixed: fixed}

	// Reduce the rows, dropping those the substitution satisfied outright
	// and deduplicating rows that collapse to the same reduced form (a
	// block's in- and out-equations often do once shared edges merge).
	seen := map[string]bool{}
	reduced := make([]Constraint, 0, len(p.Prefix))
	for ri := range p.Prefix {
		r := &p.Prefix[ri]
		coeffs, rhs, fate := red.lowerPacked(r)
		switch fate {
		case rowInfeasible:
			return nil, true
		case rowRedundant:
			continue
		}
		reduced = append(reduced, Constraint{Coeffs: coeffs, Rel: r.Rel, RHS: rhs})
	}
	packed := Pack(reduced)
	red.rows = packed[:0]
	for _, pr := range packed {
		key := rowKey(&pr)
		if seen[key] {
			continue
		}
		seen[key] = true
		red.rows = append(red.rows, pr)
	}

	red.obj = make(map[int]float64, len(p.Objective))
	for v, c := range p.Objective {
		if col[v] < 0 {
			red.objOffset += c * fixed[v]
		} else {
			red.obj[int(col[v])] += c
		}
	}
	return red, false
}

// rowKey serializes a packed row for exact-duplicate detection.
func rowKey(r *PackedRow) string {
	b := make([]byte, 0, 16+12*len(r.Cols))
	b = append(b, byte(r.Rel))
	b = appendFloatKey(b, r.RHS)
	for k, c := range r.Cols {
		b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
		b = appendFloatKey(b, r.Vals[k])
	}
	return string(b)
}

func appendFloatKey(b []byte, f float64) []byte {
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b = append(b, byte(u>>(8*i)))
	}
	return b
}

// lowerPacked substitutes a packed row into reduced space.
func (pr *presolved) lowerPacked(r *PackedRow) (map[int]float64, float64, rowFate) {
	coeffs := make(map[int]float64, len(r.Cols))
	rhs := r.RHS
	for k, cv := range r.Cols {
		v := int(cv)
		if pr.col[v] < 0 {
			rhs -= r.Vals[k] * pr.fixed[v]
			continue
		}
		j := int(pr.col[v])
		coeffs[j] += r.Vals[k]
		if coeffs[j] == 0 {
			delete(coeffs, j)
		}
	}
	return coeffs, rhs, emptyRowFate(coeffs, r.Rel, rhs)
}

// lowerConstraint substitutes a per-set delta constraint into reduced space.
func (pr *presolved) lowerConstraint(c *Constraint) (map[int]float64, float64, rowFate) {
	coeffs := make(map[int]float64, len(c.Coeffs))
	rhs := c.RHS
	for v, cv := range c.Coeffs {
		if cv == 0 {
			continue
		}
		if pr.col[v] < 0 {
			rhs -= cv * pr.fixed[v]
			continue
		}
		j := int(pr.col[v])
		coeffs[j] += cv
		if coeffs[j] == 0 {
			delete(coeffs, j)
		}
	}
	return coeffs, rhs, emptyRowFate(coeffs, c.Rel, rhs)
}

// emptyRowFate decides what to do with a substituted row: rows that still
// carry variables are kept; constant rows are either redundant or a
// contradiction (0 rel rhs).
func emptyRowFate(coeffs map[int]float64, rel Relation, rhs float64) rowFate {
	if len(coeffs) > 0 {
		return rowKeep
	}
	ok := false
	switch rel {
	case LE:
		ok = rhs >= -presolveTol
	case GE:
		ok = rhs <= presolveTol
	case EQ:
		ok = math.Abs(rhs) <= presolveTol
	}
	if ok {
		return rowRedundant
	}
	return rowInfeasible
}

// reconstruct maps a reduced solution back to the original variable space.
func (pr *presolved) reconstruct(xr []float64) []float64 {
	x := make([]float64, pr.n)
	for v := 0; v < pr.n; v++ {
		if pr.col[v] < 0 {
			x[v] = pr.fixed[v]
		} else {
			x[v] = xr[pr.col[v]]
		}
	}
	return x
}
