package ilp

import (
	"math"
	"math/big"
	"sync"
)

// The network fast path of the solver router. When a problem's rows are
// recognizably a min-cost-flow instance — every coefficient exactly 0 or
// ±1, at most two nonzero conservation entries per column, integral
// right-hand sides and objective, and the rows two-colorable so that each
// column's entries orient into one +1 (tail) and one -1 (head) — the
// problem is converted to a bounded-arc min-cost-flow network and solved
// with a spanning-tree network simplex in exact integer arithmetic. This is
// the paper's Section III.D observation made operational: structural flow
// constraints (and the IDL-expressible functionality forms, which lower to
// single-variable bound rows) keep the ILP "equivalent to a network flow
// problem", so the fast path returns an integral vertex with no float
// drift, and optimality certificates come for free from the node
// potentials.
//
// Conversion is conservative: any row the converter cannot express exactly
// (a k·x loop bound, a fractional coefficient, a column touching three
// conservation rows) rejects the whole problem and the router falls
// through to the general kernels, so the fast path can never change an
// answer — only the route taken to it.

const (
	// netMaxMag bounds the integer magnitudes (right-hand sides, objective
	// coefficients) the network kernel accepts. Staying well under 2^32
	// keeps every intermediate quantity — node balances, flows, potentials,
	// reduced costs — inside int64 with a wide margin.
	netMaxMag = int64(1) << 31
	// netCapInf is the sentinel for an unbounded arc capacity (and an
	// unset upper bound). Any ratio-test limit at or above it means the
	// pushed flow is genuinely unbounded.
	netCapInf = int64(1) << 60
)

// Arc states of the bounded-variable network simplex.
const (
	netLower uint8 = iota // nonbasic at its lower bound (flow 0)
	netTree               // basic: in the spanning tree
	netUpper              // nonbasic at its upper bound (flow == cap)
)

// netArc is one arc of the converted flow network: a problem variable
// (varIdx >= 0), a row slack (varIdx == -1), or a phase-1 artificial
// (varIdx == -2). cost is the phase-2 cost in the minimization sense.
type netArc struct {
	tail, head int32
	cap        int64
	cost       int64
	varIdx     int32
}

// netOutcome is the result of one network-simplex phase.
type netOutcome int

const (
	netOptimal netOutcome = iota
	netUnbounded
	netGiveUp
)

// netWork is the pooled working memory of one network solve: the
// conversion state (bounds, conservation-row entries, coloring) and the
// simplex state (arcs, flows, spanning tree, potentials).
type netWork struct {
	cHat         []int64 // internal maximization objective, integral
	lb, ub       []int64 // variable bounds from single-entry rows
	lbRow, ubRow []int32 // binding bound row (certificate order), -1 none
	lbSgn, ubSgn []int8  // the binding row's normalized coefficient sign
	rowNeg       []bool  // Constraints row was sign-normalized (RHS < 0)

	// Conservation rows, one node each; ground is node len(consOrig).
	consOrig []int32
	consNeg  []bool
	consRel  []Relation
	consRHS  []int64
	flip     []int8

	// Per-variable entries in conservation rows (pre-flip signs).
	entCnt  []int8
	entNode [][2]int32
	entSgn  [][2]int8

	// Row two-coloring worklist and edge list (edge e = variable edgeVar[e]).
	color   []int8
	edgeVar []int32
	queue   []int32

	arcs   []netArc
	flow   []int64
	state  []uint8
	varArc []int32
	b      []int64
	xInt   []int64

	pi        []int64
	parent    []int32
	parentArc []int32
	depth     []int32
	adjHead   []int32
	adjNext   []int32
	cyc       []int32
	cycDir    []int8

	yRow []int64
	yA   []int64

	// One materialized row during classification (avoids per-row iterator
	// closures, which dominated the solve's allocations).
	rowJ []int32
	rowV []float64

	pivots int
}

var netPool = sync.Pool{New: func() any { return new(netWork) }}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growI8(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n)
	}
	return s[:n]
}

// networkSolve attempts the network fast path. ok reports whether the
// kernel answered: false means the problem was not expressible (or the
// solve gave up / failed self-verification) and the caller must fall
// through to a general kernel. All returned statuses are definitive.
func networkSolve(p *Problem, wantCert bool) (lpResult, bool) {
	nw := netPool.Get().(*netWork)
	defer netPool.Put(nw)
	r, ok := nw.solve(p, wantCert)
	if ok {
		r.network = true
	}
	return r, ok
}

func (nw *netWork) solve(p *Problem, wantCert bool) (lpResult, bool) {
	n := p.NumVars
	rowsTotal := len(p.Prefix) + len(p.Constraints)
	signMul := int64(1)
	if p.Sense == Minimize {
		signMul = -1
	}

	// Objective: must be exactly integral and in magnitude range.
	nw.cHat = growI64(nw.cHat, n)
	clear(nw.cHat)
	for j, v := range p.Objective {
		if v != math.Trunc(v) || math.Abs(v) > float64(netMaxMag) {
			return lpResult{}, false
		}
		nw.cHat[j] = signMul * int64(v)
	}

	nw.lb = growI64(nw.lb, n)
	nw.ub = growI64(nw.ub, n)
	nw.lbRow = growI32(nw.lbRow, n)
	nw.ubRow = growI32(nw.ubRow, n)
	nw.lbSgn = growI8(nw.lbSgn, n)
	nw.ubSgn = growI8(nw.ubSgn, n)
	nw.entCnt = growI8(nw.entCnt, n)
	if cap(nw.entNode) < n {
		nw.entNode = make([][2]int32, n)
		nw.entSgn = make([][2]int8, n)
	}
	nw.entNode = nw.entNode[:n]
	nw.entSgn = nw.entSgn[:n]
	if cap(nw.rowNeg) < rowsTotal {
		nw.rowNeg = make([]bool, rowsTotal)
	}
	nw.rowNeg = nw.rowNeg[:rowsTotal]
	for j := 0; j < n; j++ {
		nw.lb[j], nw.ub[j] = 0, netCapInf
		nw.lbRow[j], nw.ubRow[j] = -1, -1
		nw.entCnt[j] = 0
	}
	nw.consOrig = nw.consOrig[:0]
	nw.consNeg = nw.consNeg[:0]
	nw.consRel = nw.consRel[:0]
	nw.consRHS = nw.consRHS[:0]

	// boundRow folds one single-variable row (normalized form s·x rel rhs)
	// into the variable's bounds, remembering which row set the binding
	// value so the certificate can charge its dual there.
	infeasible := false
	boundRow := func(rowIdx int, j int, s int8, rel Relation, rhs int64) {
		setLB := func(v int64) {
			if v > nw.lb[j] {
				nw.lb[j] = v
				nw.lbRow[j] = int32(rowIdx)
				nw.lbSgn[j] = s
			}
		}
		setUB := func(v int64) {
			if v < nw.ub[j] {
				nw.ub[j] = v
				nw.ubRow[j] = int32(rowIdx)
				nw.ubSgn[j] = s
			}
		}
		if s > 0 {
			switch rel {
			case LE:
				setUB(rhs)
			case GE:
				setLB(rhs)
			case EQ:
				setLB(rhs)
				setUB(rhs)
			}
		} else {
			// -x rel rhs is x flip(rel) -rhs.
			switch rel {
			case LE:
				setLB(-rhs)
			case GE:
				setUB(-rhs)
			case EQ:
				setLB(-rhs)
				setUB(-rhs)
			}
		}
	}

	// classify lowers one normalized row — materialized into nw.rowJ/rowV
	// by the caller — empty rows are checked outright, single-entry rows
	// become bounds, wider rows become conservation nodes. Returns false to
	// reject the conversion.
	classify := func(rowIdx int, rel Relation, rhsF float64, neg bool) bool {
		if rhsF != math.Trunc(rhsF) || math.Abs(rhsF) > float64(netMaxMag) {
			return false
		}
		rhs := int64(rhsF)
		nw.rowNeg[rowIdx] = neg
		// First scan: count nonzeros and validate coefficients.
		nnz := 0
		var oneJ int
		var oneS int8
		for k, v := range nw.rowV {
			switch v {
			case 0:
				continue
			case 1:
				oneJ, oneS = int(nw.rowJ[k]), 1
			case -1:
				oneJ, oneS = int(nw.rowJ[k]), -1
			default:
				return false
			}
			nnz++
		}
		switch {
		case nnz == 0:
			ok := false
			switch rel {
			case LE:
				ok = rhs >= 0
			case GE:
				ok = rhs <= 0
			case EQ:
				ok = rhs == 0
			}
			if !ok {
				infeasible = true
			}
		case nnz == 1:
			boundRow(rowIdx, oneJ, oneS, rel, rhs)
		default:
			v := int32(len(nw.consOrig))
			nw.consOrig = append(nw.consOrig, int32(rowIdx))
			nw.consNeg = append(nw.consNeg, neg)
			nw.consRel = append(nw.consRel, rel)
			nw.consRHS = append(nw.consRHS, rhs)
			for k, val := range nw.rowV {
				if val == 0 {
					continue
				}
				j := nw.rowJ[k]
				if nw.entCnt[j] >= 2 {
					return false
				}
				s := int8(1)
				if val < 0 {
					s = -1
				}
				nw.entNode[j][nw.entCnt[j]] = v
				nw.entSgn[j][nw.entCnt[j]] = s
				nw.entCnt[j]++
			}
		}
		return true
	}

	for i := range p.Prefix {
		pr := &p.Prefix[i]
		nw.rowJ = append(nw.rowJ[:0], pr.Cols...)
		nw.rowV = append(nw.rowV[:0], pr.Vals...)
		if !classify(i, pr.Rel, pr.RHS, false) {
			return lpResult{}, false
		}
	}
	for ci := range p.Constraints {
		c := &p.Constraints[ci]
		rel, rhs, neg := c.Rel, c.RHS, false
		if rhs < 0 {
			neg = true
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		nw.rowJ, nw.rowV = nw.rowJ[:0], nw.rowV[:0]
		for j, v := range c.Coeffs {
			if neg {
				v = -v
			}
			nw.rowJ = append(nw.rowJ, int32(j))
			nw.rowV = append(nw.rowV, v)
		}
		if !classify(len(p.Prefix)+ci, rel, rhs, neg) {
			return lpResult{}, false
		}
	}
	if infeasible {
		return lpResult{status: Infeasible}, true
	}
	for j := 0; j < n; j++ {
		if nw.lb[j] > nw.ub[j] {
			return lpResult{status: Infeasible}, true
		}
	}

	// Two-color the conservation rows so each column's pair orients into
	// one tail and one head: same-signed entries must land in opposite
	// parts (parity 1), opposite-signed in the same part (parity 0).
	nNodes := len(nw.consOrig)
	ground := int32(nNodes)
	nw.color = growI8(nw.color, nNodes)
	nw.flip = growI8(nw.flip, nNodes)
	for v := range nw.color {
		nw.color[v] = -1
	}
	nw.edgeVar = nw.edgeVar[:0]
	for j := 0; j < n; j++ {
		if nw.entCnt[j] == 2 {
			nw.edgeVar = append(nw.edgeVar, int32(j))
		}
	}
	nw.adjHead = growI32(nw.adjHead, nNodes)
	nw.adjNext = growI32(nw.adjNext, 2*len(nw.edgeVar))
	for v := range nw.adjHead {
		nw.adjHead[v] = -1
	}
	for e, j := range nw.edgeVar {
		a, b := nw.entNode[j][0], nw.entNode[j][1]
		nw.adjNext[2*e] = nw.adjHead[a]
		nw.adjHead[a] = int32(2 * e)
		nw.adjNext[2*e+1] = nw.adjHead[b]
		nw.adjHead[b] = int32(2*e + 1)
	}
	nw.queue = nw.queue[:0]
	for start := 0; start < nNodes; start++ {
		if nw.color[start] >= 0 {
			continue
		}
		nw.color[start] = 0
		nw.queue = append(nw.queue[:0], int32(start))
		for len(nw.queue) > 0 {
			cur := nw.queue[len(nw.queue)-1]
			nw.queue = nw.queue[:len(nw.queue)-1]
			for t := nw.adjHead[cur]; t >= 0; t = nw.adjNext[t] {
				j := nw.edgeVar[t/2]
				other := nw.entNode[j][0]
				if other == cur {
					other = nw.entNode[j][1]
				}
				parity := int8(0)
				if nw.entSgn[j][0] == nw.entSgn[j][1] {
					parity = 1
				}
				want := nw.color[cur] ^ parity
				if c := nw.color[other]; c >= 0 {
					if c != want {
						return lpResult{}, false
					}
					continue
				}
				nw.color[other] = want
				nw.queue = append(nw.queue, other)
			}
		}
	}
	for v := 0; v < nNodes; v++ {
		nw.flip[v] = 1 - 2*nw.color[v]
	}

	// Build arcs: one per variable touching a conservation row (fixed-cost
	// direction from the post-flip signs), then one slack arc per
	// inequality row, then the artificial spanning tree.
	nw.arcs = nw.arcs[:0]
	nw.varArc = growI32(nw.varArc, n)
	nw.xInt = growI64(nw.xInt, n)
	for j := 0; j < n; j++ {
		nw.varArc[j] = -1
		cnt := nw.entCnt[j]
		if cnt == 0 {
			continue
		}
		var tail, head int32
		if cnt == 1 {
			v := nw.entNode[j][0]
			if nw.flip[v]*nw.entSgn[j][0] > 0 {
				tail, head = v, ground
			} else {
				tail, head = ground, v
			}
		} else {
			v0, v1 := nw.entNode[j][0], nw.entNode[j][1]
			s0 := nw.flip[v0] * nw.entSgn[j][0]
			s1 := nw.flip[v1] * nw.entSgn[j][1]
			if s0 == s1 {
				return lpResult{}, false // coloring failed to orient (defensive)
			}
			if s0 > 0 {
				tail, head = v0, v1
			} else {
				tail, head = v1, v0
			}
		}
		capHi := netCapInf
		if nw.ub[j] < netCapInf {
			capHi = nw.ub[j] - nw.lb[j]
		}
		nw.varArc[j] = int32(len(nw.arcs))
		nw.arcs = append(nw.arcs, netArc{tail: tail, head: head, cap: capHi, cost: -nw.cHat[j], varIdx: int32(j)})
	}
	for v := 0; v < nNodes; v++ {
		rel := nw.consRel[v]
		if nw.flip[v] < 0 {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			nw.arcs = append(nw.arcs, netArc{tail: int32(v), head: ground, cap: netCapInf, varIdx: -1})
		case GE:
			nw.arcs = append(nw.arcs, netArc{tail: ground, head: int32(v), cap: netCapInf, varIdx: -1})
		}
	}

	// Node balances after the lower-bound shift y = x - lb: outflow minus
	// inflow at each row node; ground's balance is the implied remainder.
	nw.b = growI64(nw.b, nNodes+1)
	clear(nw.b)
	for v := 0; v < nNodes; v++ {
		nw.b[v] = int64(nw.flip[v]) * nw.consRHS[v]
	}
	for j := 0; j < n; j++ {
		if nw.lb[j] == 0 {
			continue
		}
		for k := int8(0); k < nw.entCnt[j]; k++ {
			v := nw.entNode[j][k]
			nw.b[v] -= int64(nw.flip[v]*nw.entSgn[j][k]) * nw.lb[j]
		}
	}
	var sum int64
	for v := 0; v < nNodes; v++ {
		sum += nw.b[v]
	}
	nw.b[ground] = -sum

	artStart := len(nw.arcs)
	for v := 0; v < nNodes; v++ {
		if nw.b[v] >= 0 {
			nw.arcs = append(nw.arcs, netArc{tail: int32(v), head: ground, cap: netCapInf, varIdx: -2})
		} else {
			nw.arcs = append(nw.arcs, netArc{tail: ground, head: int32(v), cap: netCapInf, varIdx: -2})
		}
	}
	nw.flow = growI64(nw.flow, len(nw.arcs))
	nw.state = nw.stateSlice(len(nw.arcs))
	for a := range nw.arcs {
		nw.flow[a] = 0
		nw.state[a] = netLower
	}
	needPhase1 := false
	for a := artStart; a < len(nw.arcs); a++ {
		v := nw.arcs[a].tail
		if v == ground {
			v = nw.arcs[a].head
		}
		f := nw.b[v]
		if f < 0 {
			f = -f
		}
		nw.flow[a] = f
		nw.state[a] = netTree
		if f != 0 {
			needPhase1 = true
		}
	}

	nw.pivots = 0
	nNodeAll := nNodes + 1
	if nNodes > 0 {
		if needPhase1 {
			switch nw.optimize(nNodeAll, 1) {
			case netGiveUp, netUnbounded:
				return lpResult{}, false
			}
			var artFlow int64
			for a := artStart; a < len(nw.arcs); a++ {
				artFlow += nw.flow[a]
			}
			if artFlow > 0 {
				return lpResult{status: Infeasible, pivots: nw.pivots}, true
			}
		}
		// Artificials carry no flow now; cap them at zero so no phase-2
		// cycle can route through one, and run the real objective.
		for a := artStart; a < len(nw.arcs); a++ {
			nw.arcs[a].cap = 0
		}
		switch nw.optimize(nNodeAll, 2) {
		case netGiveUp:
			return lpResult{}, false
		case netUnbounded:
			return lpResult{status: Unbounded, pivots: nw.pivots}, true
		}
	} else {
		nw.pi = growI64(nw.pi, 1)
		nw.pi[0] = 0
	}

	// Extract: arc variables read their shifted flow, bound-only variables
	// sit on whichever bound the objective prefers.
	for j := 0; j < n; j++ {
		if a := nw.varArc[j]; a >= 0 {
			nw.xInt[j] = nw.lb[j] + nw.flow[a]
			continue
		}
		if nw.cHat[j] > 0 {
			if nw.ub[j] >= netCapInf {
				return lpResult{status: Unbounded, pivots: nw.pivots}, true
			}
			nw.xInt[j] = nw.ub[j]
		} else {
			nw.xInt[j] = nw.lb[j]
		}
	}

	x := make([]float64, n)
	for j := range x {
		x[j] = float64(nw.xInt[j])
	}
	objVal := 0.0
	for j, v := range p.Objective {
		objVal += v * x[j]
	}
	r := lpResult{status: Optimal, obj: objVal, x: x, pivots: nw.pivots}
	if wantCert && rowsTotal > 0 {
		cert, ok := nw.buildCert(p)
		if !ok {
			return lpResult{}, false
		}
		r.cert = cert
	}
	return r, true
}

func (nw *netWork) stateSlice(n int) []uint8 {
	if cap(nw.state) < n {
		return make([]uint8, n)
	}
	return nw.state[:n]
}

// rebuildTree recomputes parents, depths, and node potentials by BFS from
// the ground root over the current spanning tree. phase selects the cost
// vector (1 on artificials in phase 1, the real costs in phase 2).
func (nw *netWork) rebuildTree(nNodeAll, phase int) bool {
	nw.pi = growI64(nw.pi, nNodeAll)
	nw.parent = growI32(nw.parent, nNodeAll)
	nw.parentArc = growI32(nw.parentArc, nNodeAll)
	nw.depth = growI32(nw.depth, nNodeAll)
	nw.adjHead = growI32(nw.adjHead, nNodeAll)
	nw.adjNext = growI32(nw.adjNext, 2*len(nw.arcs))
	for v := 0; v < nNodeAll; v++ {
		nw.adjHead[v] = -1
		nw.parent[v] = -2 // unvisited
	}
	for a := range nw.arcs {
		if nw.state[a] != netTree {
			continue
		}
		t, h := nw.arcs[a].tail, nw.arcs[a].head
		nw.adjNext[2*a] = nw.adjHead[t]
		nw.adjHead[t] = int32(2 * a)
		nw.adjNext[2*a+1] = nw.adjHead[h]
		nw.adjHead[h] = int32(2*a + 1)
	}
	ground := int32(nNodeAll - 1)
	nw.parent[ground] = -1
	nw.parentArc[ground] = -1
	nw.depth[ground] = 0
	nw.pi[ground] = 0
	nw.queue = append(nw.queue[:0], ground)
	seen := 1
	for len(nw.queue) > 0 {
		cur := nw.queue[len(nw.queue)-1]
		nw.queue = nw.queue[:len(nw.queue)-1]
		for t := nw.adjHead[cur]; t >= 0; t = nw.adjNext[t] {
			a := t / 2
			arc := &nw.arcs[a]
			other := arc.tail
			if other == cur {
				other = arc.head
			}
			if nw.parent[other] != -2 {
				continue
			}
			c := nw.netCost(int(a), phase)
			if arc.tail == cur {
				nw.pi[other] = nw.pi[cur] - c // other is the head
			} else {
				nw.pi[other] = nw.pi[cur] + c // other is the tail
			}
			nw.parent[other] = cur
			nw.parentArc[other] = a
			nw.depth[other] = nw.depth[cur] + 1
			nw.queue = append(nw.queue, other)
			seen++
		}
	}
	return seen == nNodeAll
}

func (nw *netWork) netCost(a, phase int) int64 {
	if phase == 1 {
		if nw.arcs[a].varIdx == -2 {
			return 1
		}
		return 0
	}
	return nw.arcs[a].cost
}

func (nw *netWork) capRem(a int) int64 {
	if nw.arcs[a].cap >= netCapInf {
		return netCapInf
	}
	return nw.arcs[a].cap - nw.flow[a]
}

// optimize runs the bounded-arc network simplex on the current spanning
// tree: Dantzig most-violating entering arc (lowest index on ties),
// Bland's rule after the same iteration threshold the tableau kernels use,
// leaving arc the lowest-indexed blocker on the tree cycle. All arithmetic
// is integer, so every intermediate flow is exact.
func (nw *netWork) optimize(nNodeAll, phase int) netOutcome {
	iter := 0
	blandAfter := 50 * (nNodeAll + len(nw.arcs) + 10)
	hardCap := 10 * blandAfter
	// Parents, depths, and potentials are rebuilt only when a pivot
	// actually changes the spanning tree; bound-flip pivots reuse them.
	if !nw.rebuildTree(nNodeAll, phase) {
		return netGiveUp
	}
	for {
		iter++
		if iter > hardCap {
			return netGiveUp
		}
		useBland := iter > blandAfter
		enter := -1
		var bestViol int64
		for a := range nw.arcs {
			arc := &nw.arcs[a]
			if arc.varIdx == -2 {
				continue // artificials never re-enter
			}
			st := nw.state[a]
			if st == netTree {
				continue
			}
			rc := nw.netCost(a, phase) - nw.pi[arc.tail] + nw.pi[arc.head]
			var viol int64
			if st == netLower && rc < 0 {
				viol = -rc
			} else if st == netUpper && rc > 0 {
				viol = rc
			} else {
				continue
			}
			if useBland {
				enter = a
				break
			}
			if viol > bestViol {
				bestViol, enter = viol, a
			}
		}
		if enter < 0 {
			return netOptimal
		}
		arc := &nw.arcs[enter]
		down := nw.state[enter] == netUpper
		// Pushing delta along the entering arc is balanced by delta along
		// the tree path from its head back to its tail (reversed when the
		// arc leaves its upper bound).
		u, w := arc.head, arc.tail
		if down {
			u, w = w, u
		}
		nw.cyc = nw.cyc[:0]
		nw.cycDir = nw.cycDir[:0]
		au, aw := u, w
		// Collect the w-side first so directions can be assigned per side:
		// on the u→LCA climb the path runs child→parent, on the LCA→w
		// descent it runs parent→child.
		for nw.depth[au] > nw.depth[aw] {
			pa := nw.parentArc[au]
			dir := int8(-1)
			if nw.arcs[pa].tail == au {
				dir = 1 // traversing au→parent along the arc's direction
			}
			nw.cyc = append(nw.cyc, pa)
			nw.cycDir = append(nw.cycDir, dir)
			au = nw.parent[au]
		}
		for nw.depth[aw] > nw.depth[au] {
			pa := nw.parentArc[aw]
			dir := int8(-1)
			if nw.arcs[pa].head == aw {
				dir = 1 // traversing parent→aw along the arc's direction
			}
			nw.cyc = append(nw.cyc, pa)
			nw.cycDir = append(nw.cycDir, dir)
			aw = nw.parent[aw]
		}
		for au != aw {
			pa := nw.parentArc[au]
			dir := int8(-1)
			if nw.arcs[pa].tail == au {
				dir = 1
			}
			nw.cyc = append(nw.cyc, pa)
			nw.cycDir = append(nw.cycDir, dir)
			au = nw.parent[au]

			pb := nw.parentArc[aw]
			dirB := int8(-1)
			if nw.arcs[pb].head == aw {
				dirB = 1
			}
			nw.cyc = append(nw.cyc, pb)
			nw.cycDir = append(nw.cycDir, dirB)
			aw = nw.parent[aw]
		}

		delta := nw.flow[enter]
		if !down {
			delta = nw.capRem(enter)
		}
		blocking := enter
		for k, pa := range nw.cyc {
			var lim int64
			if nw.cycDir[k] > 0 {
				lim = nw.capRem(int(pa))
			} else {
				lim = nw.flow[pa]
			}
			if lim < delta || (lim == delta && int(pa) < blocking) {
				delta, blocking = lim, int(pa)
			}
		}
		if delta >= netCapInf {
			if phase == 1 {
				return netGiveUp // phase 1 is bounded below; this is corruption
			}
			return netUnbounded
		}
		if down {
			nw.flow[enter] -= delta
		} else {
			nw.flow[enter] += delta
		}
		for k, pa := range nw.cyc {
			nw.flow[pa] += int64(nw.cycDir[k]) * delta
		}
		nw.pivots++
		if blocking == enter {
			// The entering arc blocked itself: a bound flip, tree unchanged.
			if down {
				nw.state[enter] = netLower
			} else {
				nw.state[enter] = netUpper
			}
			continue
		}
		nw.state[enter] = netTree
		if nw.flow[blocking] == 0 {
			nw.state[blocking] = netLower
		} else {
			nw.state[blocking] = netUpper
		}
		if !nw.rebuildTree(nNodeAll, phase) {
			return netGiveUp
		}
	}
}

// buildCert assembles the flow certificate — the integral primal point and
// one dual price per original row — and self-verifies it end to end in
// exact arithmetic before returning it. Conservation rows read their dual
// off the node potential; a nonbasic arc with a nonzero reduced cost
// charges that cost to the bound row that pinned it, which keeps the dual
// objective exactly equal to the primal one (complementary slackness by
// construction). A verification failure returns ok=false and the caller
// abandons the fast path entirely.
func (nw *netWork) buildCert(p *Problem) (*Certificate, bool) {
	n := p.NumVars
	rowsTotal := len(p.Prefix) + len(p.Constraints)
	nNodes := len(nw.consOrig)
	nw.yRow = growI64(nw.yRow, rowsTotal)
	clear(nw.yRow)

	for v := 0; v < nNodes; v++ {
		g := int64(1)
		if nw.consNeg[v] {
			g = -1
		}
		nw.yRow[nw.consOrig[v]] = g * int64(nw.flip[v]) * -nw.pi[v]
	}

	charge := func(row int32, sgn int8, wNorm int64) bool {
		if row < 0 {
			return false
		}
		w := wNorm * int64(sgn)
		if nw.rowNeg[row] {
			w = -w
		}
		nw.yRow[row] += w
		return true
	}
	for j := 0; j < n; j++ {
		a := nw.varArc[j]
		if a < 0 {
			// Bound-only variable: its "reduced cost" is -cHat.
			if nw.cHat[j] > 0 {
				if !charge(nw.ubRow[j], nw.ubSgn[j], nw.cHat[j]) {
					return nil, false
				}
			} else if nw.cHat[j] < 0 && nw.lb[j] > 0 {
				if !charge(nw.lbRow[j], nw.lbSgn[j], nw.cHat[j]) {
					return nil, false
				}
			}
			continue
		}
		if nw.state[a] == netTree {
			continue
		}
		arc := &nw.arcs[a]
		rc := arc.cost - nw.pi[arc.tail] + nw.pi[arc.head]
		if rc == 0 {
			continue
		}
		if nw.state[a] == netLower {
			if nw.lb[j] > 0 {
				if !charge(nw.lbRow[j], nw.lbSgn[j], -rc) {
					return nil, false
				}
			} else if rc < 0 {
				return nil, false // optimality violated with nothing to charge
			}
		} else {
			if !charge(nw.ubRow[j], nw.ubSgn[j], -rc) {
				return nil, false
			}
		}
	}

	// Exact self-verification: primal feasibility and dual sign per stored
	// row, componentwise dual feasibility, and strong duality. Products of
	// duals and right-hand sides can exceed int64, so the two objective
	// sums accumulate in big.Int.
	nw.yA = growI64(nw.yA, n)
	clear(nw.yA)
	primal := new(big.Int)
	dual := new(big.Int)
	tmp := new(big.Int)
	fac := new(big.Int)
	addProd := func(acc *big.Int, a, b int64) {
		tmp.SetInt64(a)
		fac.SetInt64(b)
		tmp.Mul(tmp, fac)
		acc.Add(acc, tmp)
	}
	checkRow := func(rowIdx int, cols func(yield func(j int, v float64) bool), rel Relation, rhsF float64) bool {
		rhs := int64(rhsF)
		y := nw.yRow[rowIdx]
		switch rel {
		case LE:
			if y < 0 {
				return false
			}
		case GE:
			if y > 0 {
				return false
			}
		}
		var lhs int64
		ok := true
		cols(func(j int, v float64) bool {
			var a int64
			switch v {
			case 1:
				a = 1
			case -1:
				a = -1
			case 0:
				return true
			default:
				ok = false
				return false
			}
			lhs += a * nw.xInt[j]
			if y != 0 {
				nw.yA[j] += y * a
			}
			return true
		})
		if !ok {
			return false
		}
		switch rel {
		case LE:
			ok = lhs <= rhs
		case GE:
			ok = lhs >= rhs
		case EQ:
			ok = lhs == rhs
		}
		if !ok {
			return false
		}
		addProd(dual, y, rhs)
		return true
	}
	for i := range p.Prefix {
		pr := &p.Prefix[i]
		ok := checkRow(i, func(yield func(int, float64) bool) {
			for k, col := range pr.Cols {
				if !yield(int(col), pr.Vals[k]) {
					return
				}
			}
		}, pr.Rel, pr.RHS)
		if !ok {
			return nil, false
		}
	}
	for ci := range p.Constraints {
		c := &p.Constraints[ci]
		ok := checkRow(len(p.Prefix)+ci, func(yield func(int, float64) bool) {
			for j, v := range c.Coeffs {
				if !yield(j, v) {
					return
				}
			}
		}, c.Rel, c.RHS)
		if !ok {
			return nil, false
		}
	}
	for j := 0; j < n; j++ {
		if nw.xInt[j] < 0 {
			return nil, false
		}
		if nw.yA[j] < nw.cHat[j] {
			return nil, false
		}
		addProd(primal, nw.cHat[j], nw.xInt[j])
	}
	if primal.Cmp(dual) != 0 {
		return nil, false
	}

	cert := &Certificate{
		Flow: true,
		X:    make([]float64, n),
		Y:    make([]float64, rowsTotal),
	}
	for j := 0; j < n; j++ {
		cert.X[j] = float64(nw.xInt[j])
	}
	for i := 0; i < rowsTotal; i++ {
		cert.Y[i] = float64(nw.yRow[i])
	}
	return cert, true
}
