// Package ilp is a pure-Go integer linear programming solver: a two-phase
// dense-tableau primal simplex with a branch-and-bound layer.
//
// The paper solves its path-analysis problems with a branch-and-bound ILP
// package and reports that "in practice ... the first call to the linear
// program package resulted in an integer valued solution" because the
// structural constraints form a network-flow matrix (Section III.D). This
// solver records per-solve statistics (LP calls, branches, whether the root
// relaxation was integral) precisely so that observation can be reproduced
// as experiment E-S1.
//
// All variables are constrained to x >= 0. Problems are expressed with
// sparse coefficient maps; sizes in this domain are tiny (tens of variables)
// so the simplex works on a dense tableau.
package ilp

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Kernel-disable bits of kernelsOff: the zero value leaves every kernel
// enabled, so the fast paths are on by default.
const (
	kernelNetwork uint32 = 1 << iota
	kernelRevised
)

var kernelsOff atomic.Uint32

// SetKernels toggles the solver's fast-path kernels globally: the network
// min-cost-flow kernel and the revised factored-basis simplex. Disabling
// both routes every solve through the retained full-tableau kernel.
// Routing never changes an answer — every kernel is differential-checked
// against the same oracles — so the toggles exist for benchmarking and for
// isolating a kernel under test.
func SetKernels(network, revised bool) {
	var off uint32
	if !network {
		off |= kernelNetwork
	}
	if !revised {
		off |= kernelRevised
	}
	kernelsOff.Store(off)
}

// KernelsEnabled reports the current kernel toggles.
func KernelsEnabled() (network, revised bool) {
	off := kernelsOff.Load()
	return off&kernelNetwork == 0, off&kernelRevised == 0
}

// Sense selects optimization direction.
type Sense int

const (
	Maximize Sense = iota
	Minimize
)

func (s Sense) String() string {
	if s == Minimize {
		return "min"
	}
	return "max"
}

// Relation is a constraint comparator.
type Relation int

const (
	LE Relation = iota // <=
	GE                 // >=
	EQ                 // ==
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	}
	return "="
}

// Constraint is sum(Coeffs[i] * x_i) Rel RHS.
type Constraint struct {
	Coeffs map[int]float64
	Rel    Relation
	RHS    float64
	// Name is an optional diagnostic tag (e.g. "x3 = d3 + d5").
	Name string
}

// Problem is an (integer) linear program over variables x_0..x_{NumVars-1},
// all implicitly >= 0.
type Problem struct {
	Sense     Sense
	NumVars   int
	Objective map[int]float64
	// Prefix holds constraint rows pre-lowered with Pack, logically
	// preceding Constraints. Callers solving many problems that share a
	// common row prefix (one ILP per functionality constraint set) pack
	// the shared rows once and attach them here; the rows are read-only
	// and safe to share across concurrent Solves.
	Prefix      []PackedRow
	Constraints []Constraint
	// Integer requires an all-integer solution (branch and bound).
	Integer bool
}

// Status reports the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	// Dominated reports a solve abandoned under a cutoff (SolveOptions or
	// WarmStart.SolveSet): the LP relaxation proved the optimum is strictly
	// worse than the caller's incumbent, so the exact value was never
	// computed. Only produced when a cutoff was supplied.
	Dominated
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Dominated:
		return "dominated"
	}
	return "unknown"
}

// Stats describes the work a solve performed.
type Stats struct {
	// LPSolves counts simplex invocations (1 when the root relaxation
	// already yields the answer).
	LPSolves int
	// Branches counts branch-and-bound nodes explored beyond the root.
	Branches int
	// RootIntegral reports that the first LP relaxation was integral —
	// the paper's key practical observation.
	RootIntegral bool
	// Pivots counts simplex pivot operations across all LP solves,
	// whichever kernel performed them (tableau, revised, or network-arc
	// pivots of the flow kernel).
	Pivots int
	// SuspectPivots counts pivots whose element fell outside the
	// well-conditioned magnitude range (see suspectPivotLo/Hi): the float64
	// result may be poisoned by cancellation and deserves exact
	// re-verification.
	SuspectPivots int
	// NetworkSolves counts LP solves answered by the min-cost-flow fast
	// path — the paper's polynomial-time route for structural and
	// IDL-expressible constraint sets.
	NetworkSolves int
	// RevisedPivots counts the subset of Pivots performed by the revised
	// (factored-basis) simplex kernel.
	RevisedPivots int
	// Refactorizations counts basis refactorizations of the revised
	// kernel (its eta file rebuilt from scratch to shed drift and length).
	Refactorizations int
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	Objective float64
	// Values holds the optimum assignment (length NumVars).
	Values []float64
	Stats  Stats
	// Cert is the optimal-basis certificate of the root relaxation,
	// present only when the solve was asked for one (SolveOptions.WantCert),
	// ended Optimal, and the answer came straight from the root LP (an
	// integer optimum found by branching has no single-basis certificate).
	Cert *Certificate
}

// Validate performs structural sanity checks on the problem. A problem
// with NumVars <= 0 is rejected outright — there is nothing to optimize —
// so Solve reports a distinct error for it rather than a degenerate
// Optimal 0 solution (an empty constraint list with NumVars > 0 is legal:
// the feasible region is the nonnegative orthant and the solve reports
// Unbounded or Optimal at the origin accordingly).
func (p *Problem) Validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("ilp: problem has no variables")
	}
	check := func(m map[int]float64, where string) error {
		for i, v := range m {
			if i < 0 || i >= p.NumVars {
				return fmt.Errorf("ilp: %s references variable %d (have %d)", where, i, p.NumVars)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ilp: %s has non-finite coefficient for x%d", where, i)
			}
		}
		return nil
	}
	if err := check(p.Objective, "objective"); err != nil {
		return err
	}
	for ri, r := range p.Prefix {
		if len(r.Cols) != len(r.Vals) {
			return fmt.Errorf("ilp: packed row %d has %d columns but %d values", ri, len(r.Cols), len(r.Vals))
		}
		for k, col := range r.Cols {
			if col < 0 || int(col) >= p.NumVars {
				return fmt.Errorf("ilp: packed row %d references variable %d (have %d)", ri, col, p.NumVars)
			}
			if math.IsNaN(r.Vals[k]) || math.IsInf(r.Vals[k], 0) {
				return fmt.Errorf("ilp: packed row %d has non-finite coefficient for x%d", ri, col)
			}
		}
		if math.IsNaN(r.RHS) || math.IsInf(r.RHS, 0) {
			return fmt.Errorf("ilp: packed row %d has non-finite rhs", ri)
		}
	}
	for ci, c := range p.Constraints {
		where := c.Name
		if where == "" {
			where = fmt.Sprintf("constraint %d", ci)
		}
		if err := check(c.Coeffs, where); err != nil {
			return err
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("ilp: %s has non-finite rhs", where)
		}
	}
	return nil
}

// Feasible reports whether x satisfies every constraint of p within tol.
func (p *Problem) Feasible(x []float64, tol float64) bool {
	if len(x) != p.NumVars {
		return false
	}
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	holds := func(lhs float64, rel Relation, rhs float64) bool {
		switch rel {
		case LE:
			return lhs <= rhs+tol
		case GE:
			return lhs >= rhs-tol
		default:
			return math.Abs(lhs-rhs) <= tol
		}
	}
	for _, r := range p.Prefix {
		lhs := 0.0
		for k, col := range r.Cols {
			lhs += r.Vals[k] * x[col]
		}
		if !holds(lhs, r.Rel, r.RHS) {
			return false
		}
	}
	for _, c := range p.Constraints {
		lhs := 0.0
		for i, coef := range c.Coeffs {
			lhs += coef * x[i]
		}
		if !holds(lhs, c.Rel, c.RHS) {
			return false
		}
	}
	return true
}

// EvalObjective computes the objective value at x.
func (p *Problem) EvalObjective(x []float64) float64 {
	v := 0.0
	for i, coef := range p.Objective {
		v += coef * x[i]
	}
	return v
}

// String renders the problem in LP-file-like form for debugging.
func (p *Problem) String() string {
	s := fmt.Sprintf("%s ", p.Sense)
	s += renderLinear(p.Objective) + "\ns.t.\n"
	for _, r := range p.Prefix {
		c := r.unpack()
		s += "  " + renderLinear(c.Coeffs) + " " + c.Rel.String() + " " + trimFloat(c.RHS) + "\n"
	}
	for _, c := range p.Constraints {
		s += "  " + renderLinear(c.Coeffs) + " " + c.Rel.String() + " " + trimFloat(c.RHS)
		if c.Name != "" {
			s += "   ; " + c.Name
		}
		s += "\n"
	}
	return s
}

func renderLinear(m map[int]float64) string {
	idxs := make([]int, 0, len(m))
	for i := range m {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	s := ""
	for n, i := range idxs {
		coef := m[i]
		if n > 0 {
			if coef >= 0 {
				s += " + "
			} else {
				s += " - "
				coef = -coef
			}
		} else if coef < 0 {
			s += "-"
			coef = -coef
		}
		if coef != 1 {
			s += trimFloat(coef) + " "
		}
		s += fmt.Sprintf("x%d", i)
	}
	if s == "" {
		return "0"
	}
	return s
}

func trimFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
