package ilp

import "sort"

// PackedRow is one constraint pre-lowered to the solver's internal row
// form: sign-normalized (RHS >= 0, relation flipped when the original RHS
// was negative) with the nonzero coefficients stored as parallel
// column/value slices sorted by column.
//
// Packing is how callers that solve many problems sharing a common
// constraint prefix (one ILP per functionality constraint set, or the
// re-solves of branch and bound) avoid re-lowering the shared rows on
// every simplex call: lower them once with Pack and attach the result to
// Problem.Prefix. A PackedRow is read-only after Pack and safe to share
// across concurrent Solves.
type PackedRow struct {
	Cols []int32
	Vals []float64
	Rel  Relation
	RHS  float64
}

// Pack lowers constraints to their normalized sparse row form. Zero
// coefficients are dropped; rows with a negative right-hand side are
// negated (and LE/GE flipped) so RHS >= 0 holds, matching the
// normalization the simplex applies to raw constraints.
func Pack(cs []Constraint) []PackedRow {
	nnz := 0
	for _, c := range cs {
		for _, v := range c.Coeffs {
			if v != 0 {
				nnz++
			}
		}
	}
	// One backing array per field for the whole batch: rows only ever
	// sub-slice it, so packing N rows costs three allocations, not 2N+1.
	colArena := make([]int32, 0, nnz)
	valArena := make([]float64, 0, nnz)
	rows := make([]PackedRow, len(cs))
	for i, c := range cs {
		lo := len(colArena)
		for j, v := range c.Coeffs {
			if v == 0 {
				continue
			}
			colArena = append(colArena, int32(j))
			valArena = append(valArena, v)
		}
		rows[i] = packOne(PackedRow{
			Cols: colArena[lo:len(colArena):len(colArena)],
			Vals: valArena[lo:len(valArena):len(valArena)],
			Rel:  c.Rel,
			RHS:  c.RHS,
		})
	}
	return rows
}

func packOne(r PackedRow) PackedRow {
	sort.Sort(&r)
	if r.RHS < 0 {
		for k := range r.Vals {
			r.Vals[k] = -r.Vals[k]
		}
		r.RHS = -r.RHS
		switch r.Rel {
		case LE:
			r.Rel = GE
		case GE:
			r.Rel = LE
		}
	}
	return r
}

// sort.Interface over the parallel column/value slices.
func (r *PackedRow) Len() int           { return len(r.Cols) }
func (r *PackedRow) Less(i, j int) bool { return r.Cols[i] < r.Cols[j] }
func (r *PackedRow) Swap(i, j int) {
	r.Cols[i], r.Cols[j] = r.Cols[j], r.Cols[i]
	r.Vals[i], r.Vals[j] = r.Vals[j], r.Vals[i]
}

// unpack converts a packed row back to a Constraint (used by the dense
// differential oracle and diagnostics).
func (r PackedRow) unpack() Constraint {
	c := Constraint{Coeffs: make(map[int]float64, len(r.Cols)), Rel: r.Rel, RHS: r.RHS}
	for k, col := range r.Cols {
		c.Coeffs[int(col)] = r.Vals[k]
	}
	return c
}

// unpackProblem flattens Prefix into plain Constraints, yielding an
// equivalent Problem in the pre-Prefix representation.
func unpackProblem(p *Problem) *Problem {
	if len(p.Prefix) == 0 {
		return p
	}
	q := &Problem{
		Sense:     p.Sense,
		NumVars:   p.NumVars,
		Objective: p.Objective,
		Integer:   p.Integer,
	}
	q.Constraints = make([]Constraint, 0, len(p.Prefix)+len(p.Constraints))
	for _, r := range p.Prefix {
		q.Constraints = append(q.Constraints, r.unpack())
	}
	q.Constraints = append(q.Constraints, p.Constraints...)
	return q
}
