package constraint

// Widening: a sound over-approximation of a formula by a single
// conjunctive set. The DNF cross product of Section III.D is worst-case
// exponential; when an analysis must bound the number of conjunctive sets
// it keeps, a disjunction can be replaced by the relations shared by all
// of its disjuncts. Dropping the non-shared rows only enlarges the
// feasible region (it is a superset of the union of the disjuncts'
// regions), so a WCET maximized — or a BCET minimized — over the widened
// set still encloses the true bound. The price is tightness, never
// soundness.

// relKey is the canonical identity used when intersecting relation lists:
// Rel.String() sorts variables and normalizes coefficient rendering, so
// syntactically reordered copies of one fact compare equal.
func relKey(r Rel) string { return r.String() }

// Union returns the relations common to every given set — the widened
// conjunction whose feasible region contains the union of the sets'
// regions. Rows keep the first set's order; with zero sets the result is
// the empty (unconstrained) set.
func Union(sets ...ConjunctiveSet) ConjunctiveSet {
	if len(sets) == 0 {
		return ConjunctiveSet{}
	}
	keep := make(ConjunctiveSet, 0, len(sets[0]))
	seen := map[string]bool{}
	for _, r := range sets[0] {
		k := relKey(r)
		if seen[k] {
			continue // a repeated row adds nothing to the intersection
		}
		seen[k] = true
		inAll := true
		for _, other := range sets[1:] {
			found := false
			for _, o := range other {
				if relKey(o) == k {
					found = true
					break
				}
			}
			if !found {
				inAll = false
				break
			}
		}
		if inAll {
			keep = append(keep, r)
		}
	}
	return keep
}

// Widen collapses a formula to one conjunctive set that every satisfying
// assignment of the formula also satisfies: atoms and conjunctions keep
// all their relations, a disjunction keeps only the relations common to
// all of its (recursively widened) parts.
func Widen(f Formula) ConjunctiveSet {
	switch x := f.(type) {
	case *Atom:
		return ConjunctiveSet{x.Rel}
	case *And:
		var out ConjunctiveSet
		for _, p := range x.Parts {
			out = append(out, Widen(p)...)
		}
		return out
	case *Or:
		parts := make([]ConjunctiveSet, 0, len(x.Parts))
		for _, p := range x.Parts {
			parts = append(parts, Widen(p))
		}
		return Union(parts...)
	}
	return nil
}

// CrossProductWiden is CrossProduct with graceful degradation: formulas
// whose DNF expansion would push the running product past maxSets are
// widened (see Widen) instead of failing the whole analysis. Every set a
// widened formula touched is flagged in the returned slice, so callers
// can mark the resulting bound as sound-but-not-exact. When no formula
// overflows, the output is identical to CrossProduct and no set is
// flagged.
func CrossProductWiden(formulas []Formula, maxSets int) ([]ConjunctiveSet, []bool, error) {
	if maxSets < 1 {
		maxSets = 1
	}
	out := []ConjunctiveSet{{}}
	widened := []bool{false}
	for _, f := range formulas {
		sub, err := dnf(f, maxSets)
		if err == nil && len(out)*len(sub) <= maxSets {
			next := make([]ConjunctiveSet, 0, len(out)*len(sub))
			nw := make([]bool, 0, len(out)*len(sub))
			for i, a := range out {
				for _, b := range sub {
					merged := make(ConjunctiveSet, 0, len(a)+len(b))
					merged = append(merged, a...)
					merged = append(merged, b...)
					next = append(next, merged)
					nw = append(nw, widened[i])
				}
			}
			out, widened = next, nw
			continue
		}
		rows := Widen(f)
		for i := range out {
			out[i] = append(out[i], rows...)
			widened[i] = true
		}
	}
	return out, widened, nil
}
