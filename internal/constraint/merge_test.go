package constraint

import "testing"

func TestMerge(t *testing.T) {
	a, err := Parse(`
func f {
    loop 1: 1 .. 5
    x1 = x2
}
func g {
    loop 1: 3 .. 3
}
`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(`
func f {
    loop 2: 0 .. 9
}
func h {
    x4 = 0
}
`)
	if err != nil {
		t.Fatal(err)
	}
	m := Merge(a, nil, b)
	if len(m.Sections) != 3 {
		t.Fatalf("sections = %d", len(m.Sections))
	}
	f, ok := m.Section("f")
	if !ok || len(f.LoopBounds) != 2 || len(f.Formulas) != 1 {
		t.Fatalf("f section: %+v", f)
	}
	if f.LoopBounds[0].Loop != 1 || f.LoopBounds[1].Loop != 2 {
		t.Fatalf("loop bounds: %+v", f.LoopBounds)
	}
	if _, ok := m.Section("h"); !ok {
		t.Fatal("h section missing")
	}
	// Merge of nothing is empty, not nil.
	if e := Merge(); e == nil || len(e.Sections) != 0 {
		t.Fatalf("empty merge: %+v", e)
	}
}
