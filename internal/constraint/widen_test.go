package constraint

import (
	"reflect"
	"testing"
)

// parseFormulas parses an annotation body for one function and returns its
// formulas.
func parseFormulas(t *testing.T, body string) []Formula {
	t.Helper()
	f, err := Parse("func f {\n" + body + "\n}\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sec, ok := f.Section("f")
	if !ok {
		t.Fatal("no section f")
	}
	return sec.Formulas
}

func setStrings(cs ConjunctiveSet) []string {
	out := make([]string, len(cs))
	for i, r := range cs {
		out[i] = r.String()
	}
	return out
}

func TestWidenDisjunctionKeepsSharedRows(t *testing.T) {
	fs := parseFormulas(t, "(x1 = 1 & x2 <= 3 & x3 = 0) | (x1 = 1 & x2 <= 3 & x3 = 1)")
	if len(fs) != 1 {
		t.Fatalf("got %d formulas, want 1", len(fs))
	}
	got := setStrings(Widen(fs[0]))
	want := setStrings(ConjunctiveSet{
		mustRel(t, "x1 = 1"), mustRel(t, "x2 <= 3"),
	})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Widen = %v, want %v", got, want)
	}
}

func TestWidenDisjointDisjunctionIsUnconstrained(t *testing.T) {
	fs := parseFormulas(t, "(x1 = 1 & x2 = 0) | (x1 = 0 & x2 = 1)")
	if got := Widen(fs[0]); len(got) != 0 {
		t.Errorf("Widen of disjoint disjunction = %v, want empty", setStrings(got))
	}
}

func TestWidenAtomAndConjunction(t *testing.T) {
	fs := parseFormulas(t, "x1 = 4\nx2 <= 7")
	all := Widen(&And{Parts: fs})
	if len(all) != 2 {
		t.Fatalf("Widen(And) kept %d rows, want 2", len(all))
	}
}

// mustRel parses one relation via a single-line annotation.
func mustRel(t *testing.T, s string) Rel {
	t.Helper()
	fs := parseFormulas(t, s)
	if len(fs) != 1 {
		t.Fatalf("%q parsed to %d formulas", s, len(fs))
	}
	a, ok := fs[0].(*Atom)
	if !ok {
		t.Fatalf("%q is %T, want Atom", s, fs[0])
	}
	return a.Rel
}

func TestUnionEmptyAndDuplicateRows(t *testing.T) {
	r1, r2 := mustRel(t, "x1 = 1"), mustRel(t, "x2 >= 2")
	if got := Union(); len(got) != 0 {
		t.Errorf("Union() = %v, want empty", got)
	}
	got := Union(ConjunctiveSet{r1, r1, r2}, ConjunctiveSet{r2, r1})
	want := []string{r1.String(), r2.String()}
	if !reflect.DeepEqual(setStrings(got), want) {
		t.Errorf("Union = %v, want %v", setStrings(got), want)
	}
}

// TestCrossProductWidenMatchesExactWhenUnderCap pins the degradation-free
// path: same sets in the same order as CrossProduct, nothing flagged.
func TestCrossProductWidenMatchesExactWhenUnderCap(t *testing.T) {
	fs := parseFormulas(t, "(x1 = 0) | (x1 >= 1)\n(x2 = 0) | (x2 >= 1)\nx3 <= 9")
	exact, err := CrossProduct(fs, 64)
	if err != nil {
		t.Fatal(err)
	}
	wide, flags, err := CrossProductWiden(fs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(wide) != len(exact) {
		t.Fatalf("widened product has %d sets, exact %d", len(wide), len(exact))
	}
	for i := range wide {
		if flags[i] {
			t.Errorf("set %d flagged widened under cap", i)
		}
		if !reflect.DeepEqual(setStrings(wide[i]), setStrings(exact[i])) {
			t.Errorf("set %d: %v != exact %v", i, setStrings(wide[i]), setStrings(exact[i]))
		}
	}
}

// TestCrossProductWidenOverflow pins the degraded path: with a cap the
// exact product rejects, the widened product stays within the cap, flags
// its sets, and every widened set keeps the disjuncts' shared rows.
func TestCrossProductWidenOverflow(t *testing.T) {
	fs := parseFormulas(t,
		"x9 = 1\n"+
			"(x1 = 0 & x5 <= 2) | (x1 >= 1 & x5 <= 2)\n"+
			"(x2 = 0 & x6 <= 3) | (x2 >= 1 & x6 <= 3)")
	if _, err := CrossProduct(fs, 2); err == nil {
		t.Fatal("exact cross product under cap 2 should fail")
	}
	wide, flags, err := CrossProductWiden(fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(wide) > 2 {
		t.Fatalf("widened product has %d sets, cap 2", len(wide))
	}
	sawWidened := false
	for i, cs := range wide {
		if !flags[i] {
			continue
		}
		sawWidened = true
		if want := "f.x6 <= 3"; !containsRel(cs, want) {
			t.Errorf("widened set %d lacks shared row %q: %v", i, want, setStrings(cs))
		}
	}
	if !sawWidened {
		t.Error("no set flagged widened despite overflow")
	}
}

func containsRel(cs ConjunctiveSet, s string) bool {
	for _, r := range cs {
		if r.String() == s {
			return true
		}
	}
	return false
}
