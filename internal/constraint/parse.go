package constraint

import (
	"fmt"
	"strconv"
	"strings"
)

// tokenizer for the annotation language.
type ctok struct {
	kind string // "int", "ident", or the punctuation itself
	text string
	ival int64
	line int
}

// lexAnnotations tokenizes the file. Newlines separate statements (the
// juxtaposition coefficient syntax "10 x1" would otherwise glue adjacent
// lines together) except inside parentheses, which allow multi-line
// disjunctions.
func lexAnnotations(src string) ([]ctok, error) {
	var toks []ctok
	line := 1
	i := 0
	depth := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			if depth == 0 && len(toks) > 0 && toks[len(toks)-1].kind != "nl" {
				toks = append(toks, ctok{kind: "nl", line: line})
			}
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ';' || c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			v, err := strconv.ParseInt(src[i:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("constraint: line %d: bad integer %q", line, src[i:j])
			}
			toks = append(toks, ctok{kind: "int", text: src[i:j], ival: v, line: line})
			i = j
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			j := i
			for j < len(src) && (src[j] == '_' || (src[j] >= 'a' && src[j] <= 'z') ||
				(src[j] >= 'A' && src[j] <= 'Z') || (src[j] >= '0' && src[j] <= '9')) {
				j++
			}
			toks = append(toks, ctok{kind: "ident", text: src[i:j], line: line})
			i = j
		default:
			for _, p := range []string{"..", "<=", ">=", "(", ")", "{", "}", "&", "|", "=", "<", ">", "+", "-", "*", ".", "@", ":", ","} {
				if strings.HasPrefix(src[i:], p) {
					if p == "(" {
						depth++
					} else if p == ")" && depth > 0 {
						depth--
					}
					toks = append(toks, ctok{kind: p, text: p, line: line})
					i += len(p)
					goto next
				}
			}
			return nil, fmt.Errorf("constraint: line %d: unexpected character %q", line, string(c))
		next:
		}
	}
	toks = append(toks, ctok{kind: "eof", line: line})
	return toks, nil
}

type cparser struct {
	toks []ctok
	pos  int
	// fn is the current section's function name (scope for bare vars).
	fn string
}

// Parse parses an annotation file.
func Parse(src string) (*File, error) {
	toks, err := lexAnnotations(src)
	if err != nil {
		return nil, err
	}
	p := &cparser{toks: toks}
	f := &File{}
	p.skipNL()
	for p.cur().kind != "eof" {
		sec, err := p.section()
		if err != nil {
			return nil, err
		}
		if _, dup := f.Section(sec.Func); dup {
			return nil, fmt.Errorf("constraint: line %d: duplicate section for %q", sec.Line, sec.Func)
		}
		f.Sections = append(f.Sections, *sec)
		p.skipNL()
	}
	return f, nil
}

// ParseNamed parses an annotation file and stamps name as the source file
// on every diagnostic position — the File itself, its sections, loop bounds,
// and relations — so errors raised later (ipet.Apply, set expansion) can
// point at file:line. Parse errors are prefixed with the name too.
func ParseNamed(name, src string) (*File, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	f.Name = name
	for si := range f.Sections {
		sec := &f.Sections[si]
		sec.File = name
		for li := range sec.LoopBounds {
			sec.LoopBounds[li].File = name
		}
		for _, fm := range sec.Formulas {
			stampFormula(fm, name)
		}
	}
	return f, nil
}

// stampFormula sets File on every relation of a formula tree in place.
func stampFormula(f Formula, name string) {
	switch n := f.(type) {
	case *Atom:
		n.Rel.File = name
	case *And:
		for _, p := range n.Parts {
			stampFormula(p, name)
		}
	case *Or:
		for _, p := range n.Parts {
			stampFormula(p, name)
		}
	}
}

func (p *cparser) cur() ctok { return p.toks[p.pos] }

// peek returns the token after the current one (eof at the end).
func (p *cparser) peek() ctok {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *cparser) skipNL() {
	for p.cur().kind == "nl" {
		p.advance()
	}
}

func (p *cparser) advance() ctok {
	t := p.toks[p.pos]
	if p.pos+1 < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *cparser) expect(kind string) (ctok, error) {
	t := p.cur()
	if t.kind != kind {
		return t, fmt.Errorf("constraint: line %d: expected %q, found %q", t.line, kind, t.text)
	}
	return p.advance(), nil
}

func (p *cparser) section() (*Section, error) {
	kw, err := p.expect("ident")
	if err != nil {
		return nil, err
	}
	if kw.text != "func" {
		return nil, fmt.Errorf("constraint: line %d: expected \"func\", found %q", kw.line, kw.text)
	}
	name, err := p.expect("ident")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	sec := &Section{Func: name.text, Line: kw.line}
	p.fn = name.text
	p.skipNL()
	for p.cur().kind != "}" {
		if p.cur().kind == "eof" {
			return nil, fmt.Errorf("constraint: line %d: unterminated section %q", kw.line, name.text)
		}
		if p.cur().kind == "ident" && p.cur().text == "loop" {
			lb, err := p.loopBound()
			if err != nil {
				return nil, err
			}
			sec.LoopBounds = append(sec.LoopBounds, *lb)
			p.skipNL()
			continue
		}
		f, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		sec.Formulas = append(sec.Formulas, f)
		p.skipNL()
	}
	p.advance() // }
	return sec, nil
}

func (p *cparser) loopBound() (*LoopBound, error) {
	kw := p.advance() // loop
	n, err := p.expect("int")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(":"); err != nil {
		return nil, err
	}
	lo, loSym, err := p.loopBoundEnd()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(".."); err != nil {
		return nil, err
	}
	hi, hiSym, err := p.loopBoundEnd()
	if err != nil {
		return nil, err
	}
	if n.ival < 1 {
		return nil, fmt.Errorf("constraint: line %d: loop numbers are 1-based", kw.line)
	}
	if loSym == "" && hiSym == "" && (lo < 0 || hi < lo) {
		return nil, fmt.Errorf("constraint: line %d: bad loop bound %d .. %d", kw.line, lo, hi)
	}
	if loSym == "" && lo < 0 {
		return nil, fmt.Errorf("constraint: line %d: negative loop bound %d", kw.line, lo)
	}
	return &LoopBound{Loop: int(n.ival), Lo: lo, Hi: hi, LoSym: loSym, HiSym: hiSym, Line: kw.line}, nil
}

// loopBoundEnd parses one end of a "lo .. hi" range: an integer or a
// parameter symbol. Identifiers that look like count variables (x3, d2, f1)
// are rejected — a loop bound end can never reference a count, so such a
// name is almost certainly a typo rather than a deliberate parameter.
func (p *cparser) loopBoundEnd() (int64, string, error) {
	t := p.cur()
	switch t.kind {
	case "int":
		p.advance()
		return t.ival, "", nil
	case "ident":
		if _, _, isVar := splitVarName(t.text); isVar || !symbolName(t.text) {
			return 0, "", fmt.Errorf("constraint: line %d: loop bound end %q names a count variable; use an integer or a parameter symbol (n1, n2, … or a multi-letter name)", t.line, t.text)
		}
		p.advance()
		return 0, t.text, nil
	}
	return 0, "", fmt.Errorf("constraint: line %d: expected integer or parameter symbol, found %q", t.line, t.text)
}

// symbolName reports whether an identifier may name a parameter symbol.
// Count variables are x3/d2/f1; any other single letter followed only by
// digits (y3, x0, q7) is far more likely a typo of a count variable than a
// deliberate parameter, so it stays an error. The conventional parameter
// prefix n (n1, n2, …) and multi-letter names (size, bound2) qualify.
func symbolName(s string) bool {
	if len(s) < 2 || s[1] < '0' || s[1] > '9' {
		return true
	}
	for i := 1; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return true
		}
	}
	return s[0] == 'n'
}

func (p *cparser) orExpr() (Formula, error) {
	f, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	parts := []Formula{f}
	for p.cur().kind == "|" {
		p.advance()
		g, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		parts = append(parts, g)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return &Or{Parts: parts}, nil
}

func (p *cparser) andExpr() (Formula, error) {
	f, err := p.atom()
	if err != nil {
		return nil, err
	}
	parts := []Formula{f}
	for p.cur().kind == "&" {
		p.advance()
		g, err := p.atom()
		if err != nil {
			return nil, err
		}
		parts = append(parts, g)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return &And{Parts: parts}, nil
}

func (p *cparser) atom() (Formula, error) {
	if p.cur().kind == "(" {
		p.advance()
		f, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	return p.relation()
}

// linExpr is an unnormalized linear expression.
type linExpr struct {
	terms map[Var]int64
	syms  map[string]int64
	cnst  int64
}

func (p *cparser) relation() (Formula, error) {
	start := p.cur().line
	lhs, err := p.linExpr()
	if err != nil {
		return nil, err
	}
	var atoms []Formula
	prev := lhs
	for {
		opTok := p.cur()
		var op RelOp
		strict := int64(0)
		switch opTok.kind {
		case "=":
			op = OpEQ
		case "<=":
			op = OpLE
		case ">=":
			op = OpGE
		case "<":
			op = OpLE
			strict = -1 // a < b  ==  a <= b - 1 over integers
		case ">":
			op = OpGE
			strict = 1
		default:
			if len(atoms) == 0 {
				return nil, fmt.Errorf("constraint: line %d: expected comparison operator, found %q", opTok.line, opTok.text)
			}
			if len(atoms) == 1 {
				return atoms[0], nil
			}
			return &And{Parts: atoms}, nil
		}
		p.advance()
		rhs, err := p.linExpr()
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, &Atom{Rel: normalize(prev, op, rhs, strict, start)})
		prev = rhs
	}
}

// normalize moves everything to the left side: lhs - rhs Op 0, then the
// constant to the right: terms Op -const (+ strictness adjustment).
func normalize(lhs linExpr, op RelOp, rhs linExpr, strict int64, line int) Rel {
	terms := map[Var]int64{}
	for v, c := range lhs.terms {
		terms[v] += c
	}
	for v, c := range rhs.terms {
		terms[v] -= c
	}
	for v, c := range terms {
		if c == 0 {
			delete(terms, v)
		}
	}
	var syms map[string]int64
	if len(lhs.syms) > 0 || len(rhs.syms) > 0 {
		syms = map[string]int64{}
		for s, c := range rhs.syms {
			syms[s] += c
		}
		for s, c := range lhs.syms {
			syms[s] -= c
		}
		for s, c := range syms {
			if c == 0 {
				delete(syms, s)
			}
		}
		if len(syms) == 0 {
			syms = nil
		}
	}
	r := Rel{
		Terms:  terms,
		Op:     op,
		RHS:    rhs.cnst - lhs.cnst + strict,
		Syms:   syms,
		Source: fmt.Sprintf("line %d", line),
		Line:   line,
	}
	return r
}

func (p *cparser) linExpr() (linExpr, error) {
	e := linExpr{terms: map[Var]int64{}, syms: map[string]int64{}}
	sign := int64(1)
	if p.cur().kind == "-" {
		sign = -1
		p.advance()
	}
	if err := p.term(&e, sign); err != nil {
		return e, err
	}
	for {
		switch p.cur().kind {
		case "+":
			p.advance()
			if err := p.term(&e, 1); err != nil {
				return e, err
			}
		case "-":
			p.advance()
			if err := p.term(&e, -1); err != nil {
				return e, err
			}
		default:
			return e, nil
		}
	}
}

// term parses [INT ['*']] var | INT | var into e with the given sign.
func (p *cparser) term(e *linExpr, sign int64) error {
	coef := int64(1)
	haveCoef := false
	if p.cur().kind == "int" {
		coef = p.advance().ival
		haveCoef = true
		if p.cur().kind == "*" {
			p.advance()
		}
	}
	// A bare integer term (no following variable).
	if p.cur().kind != "ident" {
		if !haveCoef {
			return fmt.Errorf("constraint: line %d: expected term, found %q", p.cur().line, p.cur().text)
		}
		e.cnst += sign * coef
		return nil
	}
	// A bare identifier that is not a count variable (and not a qualified
	// reference like func.x3) is a parameter symbol: it contributes an
	// affine term in the symbol, normalized onto the right-hand side.
	if t := p.cur(); p.peek().kind != "." && p.peek().kind != "@" {
		if _, _, isVar := splitVarName(t.text); !isVar && symbolName(t.text) {
			p.advance()
			e.syms[t.text] += sign * coef
			if e.syms[t.text] == 0 {
				delete(e.syms, t.text)
			}
			return nil
		}
	}
	v, err := p.varRef()
	if err != nil {
		return err
	}
	e.terms[v] += sign * coef
	if e.terms[v] == 0 {
		delete(e.terms, v)
	}
	return nil
}

// varRef parses [func '.'] (x|d|f)<n> ['@' [func '.'] f<n>].
func (p *cparser) varRef() (Var, error) {
	t, err := p.expect("ident")
	if err != nil {
		return Var{}, err
	}
	fn := p.fn
	name := t.text
	if p.cur().kind == "." {
		p.advance()
		fn = name
		t2, err := p.expect("ident")
		if err != nil {
			return Var{}, err
		}
		name = t2.text
	}
	kind, idx, ok := splitVarName(name)
	if !ok {
		return Var{}, fmt.Errorf("constraint: line %d: %q is not a variable (want x<n>, d<n> or f<n>)", t.line, name)
	}
	v := Var{Func: fn, Kind: kind, Index: idx}
	if p.cur().kind == "@" {
		p.advance()
		ct, err := p.expect("ident")
		if err != nil {
			return Var{}, err
		}
		ctxFn := p.fn
		ctxName := ct.text
		if p.cur().kind == "." {
			p.advance()
			ctxFn = ct.text
			ct2, err := p.expect("ident")
			if err != nil {
				return Var{}, err
			}
			ctxName = ct2.text
		}
		k, n, ok := splitVarName(ctxName)
		if !ok || k != VarCall {
			return Var{}, fmt.Errorf("constraint: line %d: context %q must be a call site f<n>", ct.line, ctxName)
		}
		v.CallSiteFunc = ctxFn
		v.CallSite = n
	}
	return v, nil
}

func splitVarName(name string) (VarKind, int, bool) {
	if len(name) < 2 {
		return 0, 0, false
	}
	var kind VarKind
	switch name[0] {
	case 'x':
		kind = VarBlock
	case 'd':
		kind = VarEdge
	case 'f':
		kind = VarCall
	default:
		return 0, 0, false
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n < 1 {
		return 0, 0, false
	}
	return kind, n, true
}
