package constraint

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseSymbolicPlaceholders: parameter symbols round-trip through the
// parser with positions stamped — in loop bounds and in formula relations.
func TestParseSymbolicPlaceholders(t *testing.T) {
	f, err := ParseNamed("p.ann", `
func check_data {
    loop 1: 1 .. n1
    loop 2: n2 .. n2
    x2 <= 3 n1 + 7
    x4 = x9
}
`)
	if err != nil {
		t.Fatal(err)
	}
	sec := f.Sections[0]
	lb := sec.LoopBounds[0]
	if lb.Lo != 1 || lb.LoSym != "" || lb.HiSym != "n1" || !lb.Symbolic() {
		t.Fatalf("loop 1 bound = %+v, want lo 1 hi n1", lb)
	}
	if lb.File != "p.ann" || lb.Line != 3 {
		t.Fatalf("loop 1 bound position = %s:%d, want p.ann:3", lb.File, lb.Line)
	}
	lb2 := sec.LoopBounds[1]
	if lb2.LoSym != "n2" || lb2.HiSym != "n2" {
		t.Fatalf("loop 2 bound = %+v, want n2 .. n2", lb2)
	}
	atom, ok := sec.Formulas[0].(*Atom)
	if !ok {
		t.Fatalf("formula 0 is %T, want *Atom", sec.Formulas[0])
	}
	if got := atom.Rel.Syms["n1"]; got != 3 {
		t.Fatalf("x2 <= 3 n1 + 7: Syms[n1] = %d, want 3", got)
	}
	if atom.Rel.RHS != 7 {
		t.Fatalf("x2 <= 3 n1 + 7: RHS = %d, want 7", atom.Rel.RHS)
	}
	if atom.Rel.File != "p.ann" || atom.Rel.Line != 5 {
		t.Fatalf("formula position = %s:%d, want p.ann:5", atom.Rel.File, atom.Rel.Line)
	}
	if got := f.Symbols(); !reflect.DeepEqual(got, []string{"n1", "n2"}) {
		t.Fatalf("Symbols() = %v, want [n1 n2]", got)
	}
	if s := atom.Rel.String(); !strings.Contains(s, "3 n1") {
		t.Fatalf("Rel.String() = %q, want the symbol term rendered", s)
	}
}

// TestCloneSymbolicIndependence: Clone must deep-copy symbol maps and
// symbolic bound fields — mutating the clone's view must not leak back.
func TestCloneSymbolicIndependence(t *testing.T) {
	f, err := Parse(`
func check_data {
    loop 1: 1 .. n1
    x2 <= 3 n1 + 7
}
`)
	if err != nil {
		t.Fatal(err)
	}
	cl := f.Clone()
	cl.Sections[0].LoopBounds[0].HiSym = "other"
	cl.Sections[0].Formulas[0].(*Atom).Rel.Syms["n1"] = 99
	if f.Sections[0].LoopBounds[0].HiSym != "n1" {
		t.Fatal("Clone aliased the loop-bound symbol field")
	}
	if f.Sections[0].Formulas[0].(*Atom).Rel.Syms["n1"] != 3 {
		t.Fatal("Clone aliased the Syms map")
	}
}

// TestBindSymbols: Bind substitutes every symbol and errors, with the
// source position, on a missing one.
func TestBindSymbols(t *testing.T) {
	f, err := ParseNamed("p.ann", `
func check_data {
    loop 1: 1 .. n1
    x2 <= 3 n1 + 7
}
`)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := f.Bind(map[string]int64{"n1": 5})
	if err != nil {
		t.Fatal(err)
	}
	lb := bound.Sections[0].LoopBounds[0]
	if lb.Hi != 5 || lb.Symbolic() {
		t.Fatalf("bound loop = %+v, want concrete hi 5", lb)
	}
	rel := bound.Sections[0].Formulas[0].(*Atom).Rel
	if rel.RHS != 22 || len(rel.Syms) != 0 {
		t.Fatalf("bound formula rel = %+v, want RHS 22 and no symbols", rel)
	}
	if len(bound.Symbols()) != 0 {
		t.Fatalf("bound file still has symbols: %v", bound.Symbols())
	}
	// The original is untouched.
	if f.Sections[0].LoopBounds[0].HiSym != "n1" {
		t.Fatal("Bind mutated its receiver")
	}
	_, err = f.Bind(map[string]int64{})
	if err == nil || !strings.Contains(err.Error(), "p.ann:3") || !strings.Contains(err.Error(), `"n1"`) {
		t.Fatalf("unbound error = %v, want p.ann:3 naming n1", err)
	}
}

// TestSymbolNotCountVariable: identifiers shaped like count variables can
// never silently become parameter symbols.
func TestSymbolNotCountVariable(t *testing.T) {
	_, err := Parse(`
func f {
    loop 1: 1 .. x3
}
`)
	if err == nil || !strings.Contains(err.Error(), "count variable") {
		t.Fatalf("err = %v, want a count-variable rejection", err)
	}
}
