package constraint

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseCheckDataAnnotations(t *testing.T) {
	// The running example of the paper: Fig. 5's constraints (14)-(17).
	f := parse(t, `
; check_data from Park's thesis
func check_data {
    loop 1: 1 .. 10
    (x3 = 0 & x5 = 1) | (x3 = 1 & x5 = 0)
    x3 = x8
}
`)
	sec, ok := f.Section("check_data")
	if !ok {
		t.Fatal("missing section")
	}
	if len(sec.LoopBounds) != 1 || sec.LoopBounds[0].Lo != 1 || sec.LoopBounds[0].Hi != 10 {
		t.Fatalf("loop bounds: %+v", sec.LoopBounds)
	}
	if len(sec.Formulas) != 2 {
		t.Fatalf("formulas: %d", len(sec.Formulas))
	}
	// First formula expands to exactly two conjunctive sets.
	sets, err := DNF(sec.Formulas[0], 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 || len(sets[0]) != 2 || len(sets[1]) != 2 {
		t.Fatalf("sets = %v", sets)
	}
}

func TestCoefficients(t *testing.T) {
	f := parse(t, `
func f {
    x2 <= 10 x1
    2*x3 + 3 x4 - x5 >= 7
}
`)
	sec, _ := f.Section("f")
	a := sec.Formulas[0].(*Atom)
	x1 := Var{Func: "f", Kind: VarBlock, Index: 1}
	x2 := Var{Func: "f", Kind: VarBlock, Index: 2}
	if a.Rel.Op != OpLE || a.Rel.Terms[x2] != 1 || a.Rel.Terms[x1] != -10 || a.Rel.RHS != 0 {
		t.Fatalf("rel = %v", a.Rel)
	}
	b := sec.Formulas[1].(*Atom)
	if b.Rel.Op != OpGE || b.Rel.RHS != 7 {
		t.Fatalf("rel = %v", b.Rel)
	}
	x3 := Var{Func: "f", Kind: VarBlock, Index: 3}
	x5 := Var{Func: "f", Kind: VarBlock, Index: 5}
	if b.Rel.Terms[x3] != 2 || b.Rel.Terms[x5] != -1 {
		t.Fatalf("terms = %v", b.Rel.Terms)
	}
}

func TestChainedComparison(t *testing.T) {
	f := parse(t, "func f { 1 <= x2 <= 10 }\n")
	sec, _ := f.Section("f")
	and, ok := sec.Formulas[0].(*And)
	if !ok || len(and.Parts) != 2 {
		t.Fatalf("formula = %#v", sec.Formulas[0])
	}
	sets, _ := DNF(sec.Formulas[0], 10)
	if len(sets) != 1 || len(sets[0]) != 2 {
		t.Fatalf("sets = %v", sets)
	}
}

func TestStrictComparisons(t *testing.T) {
	f := parse(t, "func f { x1 < 5\n x2 > 3 }\n")
	sec, _ := f.Section("f")
	a := sec.Formulas[0].(*Atom)
	if a.Rel.Op != OpLE || a.Rel.RHS != 4 {
		t.Fatalf("x1 < 5 normalized to %v", a.Rel)
	}
	b := sec.Formulas[1].(*Atom)
	if b.Rel.Op != OpGE || b.Rel.RHS != 4 {
		t.Fatalf("x2 > 3 normalized to %v", b.Rel)
	}
}

func TestQualifiedAndContextVars(t *testing.T) {
	// Fig. 6 / eq (18): x12 = check_data.x8 @ f1.
	f := parse(t, `
func task {
    x12 = check_data.x8 @ f1
    d2 + f1 >= 1
    x1 = other.x3 @ other.f2
}
`)
	sec, _ := f.Section("task")
	a := sec.Formulas[0].(*Atom)
	want := Var{Func: "check_data", Kind: VarBlock, Index: 8, CallSiteFunc: "task", CallSite: 1}
	if a.Rel.Terms[want] != -1 {
		t.Fatalf("terms = %v", a.Rel.Terms)
	}
	b := sec.Formulas[1].(*Atom)
	d2 := Var{Func: "task", Kind: VarEdge, Index: 2}
	f1 := Var{Func: "task", Kind: VarCall, Index: 1}
	if b.Rel.Terms[d2] != 1 || b.Rel.Terms[f1] != 1 {
		t.Fatalf("terms = %v", b.Rel.Terms)
	}
	c := sec.Formulas[2].(*Atom)
	ctxVar := Var{Func: "other", Kind: VarBlock, Index: 3, CallSiteFunc: "other", CallSite: 2}
	if c.Rel.Terms[ctxVar] != -1 {
		t.Fatalf("terms = %v", c.Rel.Terms)
	}
}

func TestDNFCrossProductDoubling(t *testing.T) {
	// Each added disjunction doubles the set count (Section III.D).
	src := `
func f {
    (x1 = 0 | x1 = 1)
    (x2 = 0 | x2 = 1)
    (x3 = 0 | x3 = 1)
}
`
	f := parse(t, src)
	sec, _ := f.Section("f")
	sets, err := CrossProduct(sec.Formulas, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 8 {
		t.Fatalf("sets = %d, want 8", len(sets))
	}
}

func TestDNFLimit(t *testing.T) {
	var parts []Formula
	for i := 1; i <= 20; i++ {
		parts = append(parts, &Or{Parts: []Formula{
			&Atom{Rel: Rel{Op: OpEQ, Terms: map[Var]int64{{Func: "f", Kind: VarBlock, Index: i}: 1}}},
			&Atom{Rel: Rel{Op: OpEQ, Terms: map[Var]int64{{Func: "f", Kind: VarBlock, Index: i}: 1}, RHS: 1}},
		}})
	}
	if _, err := CrossProduct(parts, 1000); err == nil {
		t.Fatal("expected DNF limit error")
	}
}

func TestSatisfied(t *testing.T) {
	x1 := Var{Func: "f", Kind: VarBlock, Index: 1}
	x2 := Var{Func: "f", Kind: VarBlock, Index: 2}
	cs := ConjunctiveSet{
		{Terms: map[Var]int64{x1: 1}, Op: OpEQ, RHS: 1},
		{Terms: map[Var]int64{x2: 1, x1: -10}, Op: OpLE, RHS: 0},
		{Terms: map[Var]int64{x2: 1}, Op: OpGE, RHS: 1},
	}
	if !cs.Satisfied(map[Var]int64{x1: 1, x2: 10}) {
		t.Fatal("satisfying assignment rejected")
	}
	if cs.Satisfied(map[Var]int64{x1: 1, x2: 11}) {
		t.Fatal("x2 > 10x1 accepted")
	}
	if cs.Satisfied(map[Var]int64{x1: 0, x2: 0}) {
		t.Fatal("x1 = 0 accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src string
		sub string
	}{
		{"fnc f {}", "expected \"func\""},
		{"func f { x1 }", "expected comparison"},
		{"func f { x1 = }", "expected term"},
		{"func f { loop 0: 1 .. 2 }", "1-based"},
		{"func f { loop 1: 5 .. 2 }", "bad loop bound"},
		{"func f { y3 = 1 }", "not a variable"},
		{"func f { x1 = x2 @ d3 }", "must be a call site"},
		{"func f { x1 = 1 ", "unterminated"},
		{"func f { x1 = 1 } func f { x2 = 1 }", "duplicate section"},
		{"func f { x1 = 1 $ }", "unexpected character"},
		{"func f { x0 = 1 }", "not a variable"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want %q", c.src, c.sub)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("Parse(%q) = %q, want containing %q", c.src, err, c.sub)
		}
	}
}

func TestRelString(t *testing.T) {
	x1 := Var{Func: "f", Kind: VarBlock, Index: 1}
	x2 := Var{Func: "f", Kind: VarBlock, Index: 2}
	r := Rel{Terms: map[Var]int64{x1: -10, x2: 1}, Op: OpLE, RHS: 0}
	s := r.String()
	if !strings.Contains(s, "10 f.x1") || !strings.Contains(s, "<= 0") {
		t.Fatalf("String = %q", s)
	}
	empty := Rel{Op: OpEQ, RHS: 3}
	if empty.String() != "0 = 3" {
		t.Fatalf("empty = %q", empty.String())
	}
}

// TestDNFSemanticEquivalence property-checks that an assignment satisfies
// the original formula iff it satisfies at least one expanded set.
func TestDNFSemanticEquivalence(t *testing.T) {
	src := `
func f {
    (x1 = 0 & x2 >= 2) | (x1 = 1 & x2 <= 1) | x3 >= 5
}
`
	f := parse(t, src)
	formula := f.Sections[0].Formulas[0]
	sets, err := DNF(formula, 100)
	if err != nil {
		t.Fatal(err)
	}
	x := func(i int) Var { return Var{Func: "f", Kind: VarBlock, Index: i} }

	var evalFormula func(fm Formula, a map[Var]int64) bool
	evalFormula = func(fm Formula, a map[Var]int64) bool {
		switch n := fm.(type) {
		case *Atom:
			return ConjunctiveSet{n.Rel}.Satisfied(a)
		case *And:
			for _, p := range n.Parts {
				if !evalFormula(p, a) {
					return false
				}
			}
			return true
		case *Or:
			for _, p := range n.Parts {
				if evalFormula(p, a) {
					return true
				}
			}
			return false
		}
		return false
	}

	for v1 := int64(0); v1 <= 2; v1++ {
		for v2 := int64(0); v2 <= 3; v2++ {
			for v3 := int64(0); v3 <= 6; v3 += 3 {
				a := map[Var]int64{x(1): v1, x(2): v2, x(3): v3}
				direct := evalFormula(formula, a)
				viaDNF := false
				for _, s := range sets {
					if s.Satisfied(a) {
						viaDNF = true
						break
					}
				}
				if direct != viaDNF {
					t.Fatalf("assign %v: direct=%v dnf=%v", a, direct, viaDNF)
				}
			}
		}
	}
}
