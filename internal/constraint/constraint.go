// Package constraint implements the program functionality constraint
// language of Section III.C: user-provided loop bounds and linear path
// facts over block execution counts (x-variables), edge counts
// (d-variables) and call-site counts (f-variables), combined with the
// conjunction (&) and disjunction (|) operators. Disjunctions expand to a
// set of conjunctive constraint sets — "a set of constraint sets, where at
// least one constraint set member must be satisfied".
//
// An annotation file contains one section per function:
//
//	; check_data from Park's thesis (paper Fig. 5)
//	func check_data {
//	    loop 1: 1 .. 10                       ; eqs (14)-(15)
//	    (x3 = 0 & x5 = 1) | (x3 = 1 & x5 = 0) ; eq (16)
//	    x3 = x8                               ; eq (17)
//	}
//	func task {
//	    x12 = check_data.x8 @ f1              ; eq (18)
//	}
//
// Variables are written the way cinderella's annotated-source listing
// labels them: x<i> for the i-th basic block, d<i> for the i-th CFG edge,
// f<i> for the i-th call site, all 1-based within the section's function.
// A variable may be qualified with another function (check_data.x8) and
// with a call-site context (@ f1), the paper's x8.f1 notation. Coefficients
// may use juxtaposition (10 x1) or an explicit star (10*x1).
package constraint

import (
	"fmt"
	"sort"
	"strings"
)

// VarKind distinguishes the three count-variable families of the paper.
type VarKind uint8

const (
	// VarBlock is an x-variable: executions of a basic block.
	VarBlock VarKind = iota
	// VarEdge is a d-variable: traversals of a CFG edge.
	VarEdge
	// VarCall is an f-variable: executions of a call site.
	VarCall
)

func (k VarKind) String() string {
	switch k {
	case VarBlock:
		return "x"
	case VarEdge:
		return "d"
	case VarCall:
		return "f"
	}
	return "?"
}

// Var is a symbolic reference to a count variable. It is resolved against
// the program CFG by package ipet.
type Var struct {
	// Func is the owning function name.
	Func string
	// Kind selects the variable family.
	Kind VarKind
	// Index is the 1-based number as displayed in the annotated listing.
	Index int
	// CallSiteFunc/CallSite qualify the count to executions reached via
	// call site f<CallSite> of function CallSiteFunc (the paper's x8.f1).
	// CallSite == 0 means the aggregate over all contexts.
	CallSiteFunc string
	CallSite     int
}

func (v Var) String() string {
	s := fmt.Sprintf("%s.%s%d", v.Func, v.Kind, v.Index)
	if v.CallSite != 0 {
		s += fmt.Sprintf("@%s.f%d", v.CallSiteFunc, v.CallSite)
	}
	return s
}

// RelOp is a linear relation comparator.
type RelOp uint8

const (
	OpEQ RelOp = iota
	OpLE
	OpGE
)

func (op RelOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpLE:
		return "<="
	}
	return ">="
}

// Rel is a normalized linear relation:
//
//	sum(Terms[v] * v)  Op  RHS + sum(Syms[s] * s)
//
// Syms holds parameter symbols (identifiers like n1 that name neither an
// x/d/f variable nor a function-qualified count): the relation's right-hand
// side is affine in them. A Rel with a non-empty Syms cannot be solved
// concretely until the symbols are bound (File.Bind) or the file is handed
// to a parametric analysis.
type Rel struct {
	Terms map[Var]int64
	Op    RelOp
	RHS   int64
	// Syms maps parameter symbol names to their RHS coefficients. Nil when
	// the relation is fully concrete.
	Syms map[string]int64
	// Source is the original text for diagnostics.
	Source string
	// File and Line locate the relation in its annotation source: File is
	// the name given to ParseNamed (empty under Parse or for relations built
	// in memory), Line the 1-based source line (0 when built in memory).
	// They survive Merge, so a diagnostic always points at the right file.
	File string
	Line int
}

func (r Rel) String() string {
	vars := make([]Var, 0, len(r.Terms))
	for v := range r.Terms {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].String() < vars[j].String() })
	var b strings.Builder
	for i, v := range vars {
		coef := r.Terms[v]
		if i > 0 {
			if coef >= 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
				coef = -coef
			}
		} else if coef < 0 {
			b.WriteString("-")
			coef = -coef
		}
		if coef != 1 {
			fmt.Fprintf(&b, "%d ", coef)
		}
		b.WriteString(v.String())
	}
	if len(vars) == 0 {
		b.WriteString("0")
	}
	fmt.Fprintf(&b, " %s %d", r.Op, r.RHS)
	syms := make([]string, 0, len(r.Syms))
	for s := range r.Syms {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, s := range syms {
		coef := r.Syms[s]
		if coef >= 0 {
			b.WriteString(" + ")
		} else {
			b.WriteString(" - ")
			coef = -coef
		}
		if coef != 1 {
			fmt.Fprintf(&b, "%d ", coef)
		}
		b.WriteString(s)
	}
	return b.String()
}

// Formula is a boolean combination of relations.
type Formula interface{ formulaNode() }

// Atom is a single relation.
type Atom struct{ Rel Rel }

// And is a conjunction of formulas.
type And struct{ Parts []Formula }

// Or is a disjunction of formulas.
type Or struct{ Parts []Formula }

func (*Atom) formulaNode() {}
func (*And) formulaNode()  {}
func (*Or) formulaNode()   {}

// LoopBound gives the iteration bound for one detected loop: per entry into
// the loop, the loop iterates (traverses a back edge to the header) between
// Lo and Hi times — the paper's "values 1 and 10" for check_data.
type LoopBound struct {
	// Loop is the 1-based loop number in the function's detection order.
	Loop   int
	Lo, Hi int64
	// LoSym/HiSym, when non-empty, name a parameter symbol that replaces the
	// corresponding numeric end ("loop 1: 0 .. n1"). The numeric field is
	// meaningless while its symbol is set; File.Bind substitutes the value.
	LoSym, HiSym string
	Line         int
	// File is the annotation file the bound came from (set by ParseNamed).
	File string
}

// Symbolic reports whether either end of the bound is a parameter symbol.
func (lb LoopBound) Symbolic() bool { return lb.LoSym != "" || lb.HiSym != "" }

// Section holds the annotations of one function.
type Section struct {
	Func       string
	LoopBounds []LoopBound
	Formulas   []Formula
	Line       int
	// File is the annotation file the section came from (set by ParseNamed).
	// Per-relation and per-loop-bound positions carry their own File so that
	// Merge-combined sections keep accurate diagnostics.
	File string
}

// File is a parsed annotation file.
type File struct {
	Sections []Section
	// Name is the source file name as given to ParseNamed; empty under
	// Parse.
	Name string
}

// Merge combines annotation files: sections for the same function are
// concatenated (loop bounds and formulas are all asserted facts, so the
// conjunction of two sound files is sound). Later loop bounds for the same
// loop tighten earlier ones by plain conjunction at solve time.
func Merge(files ...*File) *File {
	out := &File{}
	idx := map[string]int{}
	for _, f := range files {
		if f == nil {
			continue
		}
		for _, sec := range f.Sections {
			i, ok := idx[sec.Func]
			if !ok {
				idx[sec.Func] = len(out.Sections)
				out.Sections = append(out.Sections, Section{Func: sec.Func, Line: sec.Line, File: sec.File})
				i = len(out.Sections) - 1
			}
			out.Sections[i].LoopBounds = append(out.Sections[i].LoopBounds, sec.LoopBounds...)
			out.Sections[i].Formulas = append(out.Sections[i].Formulas, sec.Formulas...)
		}
	}
	return out
}

// Clone returns a deep copy of the file: sections, loop bounds, formulas,
// and relation term maps share no mutable state with the receiver. An
// analyzer clones what Apply receives, so a caller that keeps editing its
// annotation objects to build the next scenario cannot corrupt a live
// analysis.
func (f *File) Clone() *File {
	if f == nil {
		return nil
	}
	out := &File{Sections: make([]Section, len(f.Sections))}
	for i := range f.Sections {
		out.Sections[i] = f.Sections[i].clone()
	}
	return out
}

func (s *Section) clone() Section {
	c := *s
	c.LoopBounds = append([]LoopBound(nil), s.LoopBounds...)
	if s.Formulas != nil {
		c.Formulas = make([]Formula, len(s.Formulas))
		for i, fm := range s.Formulas {
			c.Formulas[i] = cloneFormula(fm)
		}
	}
	return c
}

func cloneFormula(f Formula) Formula {
	switch n := f.(type) {
	case *Atom:
		return &Atom{Rel: n.Rel.clone()}
	case *And:
		parts := make([]Formula, len(n.Parts))
		for i, p := range n.Parts {
			parts[i] = cloneFormula(p)
		}
		return &And{Parts: parts}
	case *Or:
		parts := make([]Formula, len(n.Parts))
		for i, p := range n.Parts {
			parts[i] = cloneFormula(p)
		}
		return &Or{Parts: parts}
	}
	return f
}

func (r Rel) clone() Rel {
	c := r
	if r.Terms != nil {
		c.Terms = make(map[Var]int64, len(r.Terms))
		for v, coef := range r.Terms {
			c.Terms[v] = coef
		}
	}
	if r.Syms != nil {
		c.Syms = make(map[string]int64, len(r.Syms))
		for s, coef := range r.Syms {
			c.Syms[s] = coef
		}
	}
	return c
}

// Symbols returns the sorted set of parameter symbol names that occur
// anywhere in the file — in loop-bound ends or on relation right-hand
// sides. Empty for a fully concrete file.
func (f *File) Symbols() []string {
	seen := map[string]bool{}
	for si := range f.Sections {
		sec := &f.Sections[si]
		for _, lb := range sec.LoopBounds {
			if lb.LoSym != "" {
				seen[lb.LoSym] = true
			}
			if lb.HiSym != "" {
				seen[lb.HiSym] = true
			}
		}
		for _, fm := range sec.Formulas {
			formulaSymbols(fm, seen)
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func formulaSymbols(f Formula, seen map[string]bool) {
	switch n := f.(type) {
	case *Atom:
		for s := range n.Rel.Syms {
			seen[s] = true
		}
	case *And:
		for _, p := range n.Parts {
			formulaSymbols(p, seen)
		}
	case *Or:
		for _, p := range n.Parts {
			formulaSymbols(p, seen)
		}
	}
}

// Bind substitutes concrete values for every parameter symbol and returns
// the resulting fully concrete file; the receiver is not modified. A symbol
// occurring in the file but missing from params is an error (positioned at
// the first occurrence). Range validation of the substituted loop bounds is
// left to the consumer (ipet.Apply), which already rejects lo > hi.
func (f *File) Bind(params map[string]int64) (*File, error) {
	out := f.Clone()
	if out == nil {
		return nil, nil
	}
	for si := range out.Sections {
		sec := &out.Sections[si]
		for li := range sec.LoopBounds {
			lb := &sec.LoopBounds[li]
			if lb.LoSym != "" {
				v, ok := params[lb.LoSym]
				if !ok {
					return nil, fmt.Errorf("%s:%d: unbound parameter symbol %q", lb.File, lb.Line, lb.LoSym)
				}
				lb.Lo, lb.LoSym = v, ""
			}
			if lb.HiSym != "" {
				v, ok := params[lb.HiSym]
				if !ok {
					return nil, fmt.Errorf("%s:%d: unbound parameter symbol %q", lb.File, lb.Line, lb.HiSym)
				}
				lb.Hi, lb.HiSym = v, ""
			}
		}
		for _, fm := range sec.Formulas {
			if err := bindFormula(fm, params); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func bindFormula(f Formula, params map[string]int64) error {
	switch n := f.(type) {
	case *Atom:
		for s, coef := range n.Rel.Syms {
			v, ok := params[s]
			if !ok {
				return fmt.Errorf("%s:%d: unbound parameter symbol %q", n.Rel.File, n.Rel.Line, s)
			}
			n.Rel.RHS += coef * v
		}
		n.Rel.Syms = nil
	case *And:
		for _, p := range n.Parts {
			if err := bindFormula(p, params); err != nil {
				return err
			}
		}
	case *Or:
		for _, p := range n.Parts {
			if err := bindFormula(p, params); err != nil {
				return err
			}
		}
	}
	return nil
}

// Section returns the section for a function, if present.
func (f *File) Section(name string) (*Section, bool) {
	for i := range f.Sections {
		if f.Sections[i].Func == name {
			return &f.Sections[i], true
		}
	}
	return nil, false
}

// ConjunctiveSet is one conjunction of relations produced by DNF expansion.
type ConjunctiveSet []Rel

// DNF expands a formula into disjunctive normal form: a set of conjunctive
// constraint sets, at least one of which must hold. Expansion is the cross
// product described in Section III.D ("the size of the constraint sets is
// doubled every time a functionality constraint with disjunction operator
// is added"); maxSets guards against blowup.
func DNF(f Formula, maxSets int) ([]ConjunctiveSet, error) {
	sets, err := dnf(f, maxSets)
	if err != nil {
		return nil, err
	}
	return sets, nil
}

func dnf(f Formula, maxSets int) ([]ConjunctiveSet, error) {
	switch x := f.(type) {
	case *Atom:
		return []ConjunctiveSet{{x.Rel}}, nil
	case *Or:
		var out []ConjunctiveSet
		for _, p := range x.Parts {
			sub, err := dnf(p, maxSets)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
			if len(out) > maxSets {
				return nil, fmt.Errorf("constraint: DNF expansion exceeds %d sets", maxSets)
			}
		}
		return out, nil
	case *And:
		out := []ConjunctiveSet{{}}
		for _, p := range x.Parts {
			sub, err := dnf(p, maxSets)
			if err != nil {
				return nil, err
			}
			var next []ConjunctiveSet
			for _, a := range out {
				for _, b := range sub {
					merged := make(ConjunctiveSet, 0, len(a)+len(b))
					merged = append(merged, a...)
					merged = append(merged, b...)
					next = append(next, merged)
					if len(next) > maxSets {
						return nil, fmt.Errorf("constraint: DNF expansion exceeds %d sets", maxSets)
					}
				}
			}
			out = next
		}
		return out, nil
	}
	return nil, fmt.Errorf("constraint: unknown formula node %T", f)
}

// CrossProduct combines the DNF expansions of several formulas into the
// overall set of constraint sets ("by intersecting all the functionality
// constraints we will obtain two functionality constraint sets").
func CrossProduct(formulas []Formula, maxSets int) ([]ConjunctiveSet, error) {
	if len(formulas) == 0 {
		return []ConjunctiveSet{{}}, nil
	}
	parts := make([]Formula, len(formulas))
	copy(parts, formulas)
	return DNF(&And{Parts: parts}, maxSets)
}

// Satisfied reports whether an assignment satisfies every relation of the
// set. Missing variables evaluate as zero.
func (cs ConjunctiveSet) Satisfied(assign map[Var]int64) bool {
	for _, r := range cs {
		lhs := int64(0)
		for v, coef := range r.Terms {
			lhs += coef * assign[v]
		}
		switch r.Op {
		case OpEQ:
			if lhs != r.RHS {
				return false
			}
		case OpLE:
			if lhs > r.RHS {
				return false
			}
		case OpGE:
			if lhs < r.RHS {
				return false
			}
		}
	}
	return true
}
