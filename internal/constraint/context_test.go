package constraint

import "testing"

// TestDNFCallContextPreserved: DNF expansion over @-qualified variables
// (the paper's x8.f1 notation, eq. 18) must carry the call-site qualifier
// through to the conjunctive sets unchanged, and sets differing only in the
// qualifier must remain distinct — downstream set dedup keys on the lowered
// variables, so losing the qualifier here would silently merge constraint
// sets that pin different call contexts.
func TestDNFCallContextPreserved(t *testing.T) {
	f := parse(t, `
func main {
    (store.x1 @ f1 = 1 & store.x1 @ f2 = 0) | (store.x1 @ f1 = 0 & store.x1 @ f2 = 1)
}
`)
	sec, ok := f.Section("main")
	if !ok {
		t.Fatal("missing section")
	}
	sets, err := CrossProduct(sec.Formulas, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("sets = %d, want 2", len(sets))
	}
	// Each set pins both contexts; collect the value assigned per call site
	// and per set.
	valueOf := func(set ConjunctiveSet) map[int]int64 {
		vals := map[int]int64{}
		for _, r := range set {
			if len(r.Terms) != 1 || r.Op != OpEQ {
				t.Fatalf("unexpected relation shape: %v", r)
			}
			for v := range r.Terms {
				if v.Func != "store" || v.CallSiteFunc != "main" || v.CallSite == 0 {
					t.Fatalf("call-site qualifier lost in DNF: %+v", v)
				}
				vals[v.CallSite] = r.RHS
			}
		}
		return vals
	}
	v0, v1 := valueOf(sets[0]), valueOf(sets[1])
	if len(v0) != 2 || len(v1) != 2 {
		t.Fatalf("each set must pin both call sites: %v / %v", v0, v1)
	}
	if v0[1] == v1[1] || v0[2] == v1[2] {
		t.Fatalf("DNF merged sets that differ only in call-context rows: %v / %v", v0, v1)
	}
}
