// Package eval implements the measurement machinery of the paper's two
// experiments.
//
// Experiment 1 (Table II) computes the *calculated bound*: "insert a
// counter into each basic block of the routine, run the routine with [the
// extreme] data set and record the values of all the counters, multiply
// each counter value with the slowest (fastest) running time for that basic
// block as provided by cinderella, add up all these products."
//
// Experiment 2 (Table III) computes the *measured bound* on the board
// simulator: the routine runs with its worst-case data set and the
// instruction cache flushed before the call (paper: "the cache memory is
// flushed before each function call"); the best case runs warm.
package eval

import (
	"fmt"

	"cinderella/internal/asm"
	"cinderella/internal/cfg"
	"cinderella/internal/march"
	"cinderella/internal/sim"
)

// Setup prepares machine state (input data, globals) before a measured or
// counted run. A nil Setup leaves the loaded image untouched.
type Setup func(m *sim.Machine) error

// Bound is an interval of cycle counts.
type Bound struct {
	Lo, Hi int64
}

// Pessimism computes the paper's pessimism metric for this (estimated)
// bound against a reference bound: [(ref.Lo-est.Lo)/ref.Lo,
// (est.Hi-ref.Hi)/ref.Hi].
func Pessimism(est, ref Bound) (lo, hi float64) {
	if ref.Lo != 0 {
		lo = float64(ref.Lo-est.Lo) / float64(ref.Lo)
	}
	if ref.Hi != 0 {
		hi = float64(est.Hi-ref.Hi) / float64(ref.Hi)
	}
	return lo, hi
}

// Encloses reports whether est contains ref (Fig. 1's requirement).
func (b Bound) Encloses(ref Bound) bool { return b.Lo <= ref.Lo && b.Hi >= ref.Hi }

// newMachine builds a fresh machine for an executable.
func newMachine(exe *asm.Executable, cfgSim sim.Config) (*sim.Machine, error) {
	return sim.New(exe, cfgSim)
}

// CountRun executes root once with block counters installed on every block
// of every function reachable from root, and returns the per-function
// counts in block-index order.
func CountRun(exe *asm.Executable, prog *cfg.Program, root string, setup Setup, cfgSim sim.Config) (map[string][]int64, error) {
	m, err := newMachine(exe, cfgSim)
	if err != nil {
		return nil, err
	}
	reach, err := prog.Reachable(root)
	if err != nil {
		return nil, err
	}
	var addrs []uint32
	for _, fn := range reach {
		for _, b := range prog.Funcs[fn].Blocks {
			addrs = append(addrs, b.Start)
		}
	}
	m.WatchBlocks(addrs)
	if setup != nil {
		if err := setup(m); err != nil {
			return nil, err
		}
	}
	if _, err := m.CallNamed(root); err != nil {
		return nil, err
	}
	raw := m.BlockCounts()
	out := map[string][]int64{}
	for _, fn := range reach {
		fc := prog.Funcs[fn]
		counts := make([]int64, len(fc.Blocks))
		for i, b := range fc.Blocks {
			counts[i] = int64(raw[b.Start])
		}
		out[fn] = counts
	}
	return out, nil
}

// Calculated combines observed block counts with cinderella's block costs:
// the upper calculated bound uses worst-case costs, the lower bound
// best-case costs.
func Calculated(counts map[string][]int64, costs map[string][]march.BlockCost, worst bool) (int64, error) {
	total := int64(0)
	for fn, cnts := range counts {
		cs, ok := costs[fn]
		if !ok {
			return 0, fmt.Errorf("eval: no costs for function %q", fn)
		}
		if len(cs) != len(cnts) {
			return 0, fmt.Errorf("eval: %q has %d cost entries for %d blocks", fn, len(cs), len(cnts))
		}
		for i, n := range cnts {
			if worst {
				total += n * cs[i].Worst
			} else {
				total += n * cs[i].Best
			}
		}
	}
	return total, nil
}

// CalculatedBound runs the Experiment 1 protocol end to end: one counted
// run per extreme-case data set, products with the cost brackets.
func CalculatedBound(exe *asm.Executable, prog *cfg.Program, root string,
	costs map[string][]march.BlockCost, worstSetup, bestSetup Setup, cfgSim sim.Config) (Bound, error) {
	worstCounts, err := CountRun(exe, prog, root, worstSetup, cfgSim)
	if err != nil {
		return Bound{}, fmt.Errorf("eval: worst-case counted run: %w", err)
	}
	hi, err := Calculated(worstCounts, costs, true)
	if err != nil {
		return Bound{}, err
	}
	bestCounts, err := CountRun(exe, prog, root, bestSetup, cfgSim)
	if err != nil {
		return Bound{}, fmt.Errorf("eval: best-case counted run: %w", err)
	}
	lo, err := Calculated(bestCounts, costs, false)
	if err != nil {
		return Bound{}, err
	}
	return Bound{Lo: lo, Hi: hi}, nil
}

// MeasuredWorst runs root with the worst-case data and a flushed
// instruction cache and returns the elapsed cycles.
func MeasuredWorst(exe *asm.Executable, root string, setup Setup, cfgSim sim.Config) (int64, error) {
	m, err := newMachine(exe, cfgSim)
	if err != nil {
		return 0, err
	}
	if setup != nil {
		if err := setup(m); err != nil {
			return 0, err
		}
	}
	m.Cache().Flush()
	before := m.Cycles()
	if _, err := m.CallNamed(root); err != nil {
		return 0, err
	}
	return int64(m.Cycles() - before), nil
}

// MeasuredBest runs root once to warm the cache, re-applies the best-case
// data and measures a warm run.
func MeasuredBest(exe *asm.Executable, root string, setup Setup, cfgSim sim.Config) (int64, error) {
	m, err := newMachine(exe, cfgSim)
	if err != nil {
		return 0, err
	}
	apply := func() error {
		if setup != nil {
			return setup(m)
		}
		return nil
	}
	if err := apply(); err != nil {
		return 0, err
	}
	if _, err := m.CallNamed(root); err != nil {
		return 0, err
	}
	if err := apply(); err != nil {
		return 0, err
	}
	before := m.Cycles()
	if _, err := m.CallNamed(root); err != nil {
		return 0, err
	}
	return int64(m.Cycles() - before), nil
}

// MeasuredBound runs the Experiment 2 protocol for both extremes.
func MeasuredBound(exe *asm.Executable, root string, worstSetup, bestSetup Setup, cfgSim sim.Config) (Bound, error) {
	hi, err := MeasuredWorst(exe, root, worstSetup, cfgSim)
	if err != nil {
		return Bound{}, fmt.Errorf("eval: measured worst: %w", err)
	}
	lo, err := MeasuredBest(exe, root, bestSetup, cfgSim)
	if err != nil {
		return Bound{}, fmt.Errorf("eval: measured best: %w", err)
	}
	return Bound{Lo: lo, Hi: hi}, nil
}
