package eval

import (
	"strings"
	"testing"

	"cinderella/internal/cc"
	"cinderella/internal/cfg"
	"cinderella/internal/march"
	"cinderella/internal/sim"
)

const src = `
int n;
int main() { return work(); }
int work() {
    int i, s;
    s = 0;
    for (i = 0; i < n; i++) {
        s += i * i;
    }
    return s;
}
`

func TestPessimismMath(t *testing.T) {
	est := Bound{Lo: 80, Hi: 240}
	ref := Bound{Lo: 100, Hi: 200}
	lo, hi := Pessimism(est, ref)
	if lo != 0.2 || hi != 0.2 {
		t.Fatalf("pessimism = [%v, %v]", lo, hi)
	}
	if !est.Encloses(ref) {
		t.Fatal("enclosure")
	}
	if ref.Encloses(est) {
		t.Fatal("reverse enclosure")
	}
	// Zero reference sides are left at zero pessimism rather than dividing.
	lo, hi = Pessimism(est, Bound{})
	if lo != 0 || hi != 0 {
		t.Fatalf("zero-ref pessimism = [%v, %v]", lo, hi)
	}
}

func TestCalculatedMissingFunction(t *testing.T) {
	_, err := Calculated(map[string][]int64{"ghost": {1}}, map[string][]march.BlockCost{}, true)
	if err == nil || !strings.Contains(err.Error(), "no costs") {
		t.Fatalf("err = %v", err)
	}
	_, err = Calculated(
		map[string][]int64{"f": {1, 2}},
		map[string][]march.BlockCost{"f": {{Best: 1, Worst: 2}}},
		true)
	if err == nil || !strings.Contains(err.Error(), "cost entries") {
		t.Fatalf("err = %v", err)
	}
}

func TestCountRunAndCalculated(t *testing.T) {
	exe, _, err := cc.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	costs := map[string][]march.BlockCost{}
	for name, fc := range prog.Funcs {
		costs[name] = march.CostsOf(fc, march.DefaultOptions())
	}
	setN := func(n int32) Setup {
		return func(m *sim.Machine) error { return m.WriteWord(exe.Symbols["g_n"], n) }
	}

	counts, err := CountRun(exe, prog, "work", setN(5), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The entry block runs once; the loop body runs 5 times. Find the body
	// as the most frequent block.
	var maxCount int64
	for _, c := range counts["work"] {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount != 6 { // loop header runs n+1 = 6 times
		t.Fatalf("max block count = %d, want 6", maxCount)
	}

	hi, err := Calculated(counts, costs, true)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Calculated(counts, costs, false)
	if err != nil {
		t.Fatal(err)
	}
	if lo <= 0 || hi <= lo {
		t.Fatalf("calculated [%d, %d]", lo, hi)
	}

	// The same run measured on the board lies within [lo, hi].
	cycles, err := MeasuredWorst(exe, "work", setN(5), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cycles < lo || cycles > hi {
		t.Fatalf("measured %d outside calculated [%d, %d]", cycles, lo, hi)
	}
}

func TestCalculatedBoundOrdering(t *testing.T) {
	exe, _, err := cc.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	costs := map[string][]march.BlockCost{}
	for name, fc := range prog.Funcs {
		costs[name] = march.CostsOf(fc, march.DefaultOptions())
	}
	setN := func(n int32) Setup {
		return func(m *sim.Machine) error { return m.WriteWord(exe.Symbols["g_n"], n) }
	}
	b, err := CalculatedBound(exe, prog, "work", costs, setN(20), setN(0), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Lo <= 0 || b.Lo >= b.Hi {
		t.Fatalf("bound %v", b)
	}
}

func TestMeasuredWarmVsFlushed(t *testing.T) {
	exe, _, err := cc.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	setN := func(n int32) Setup {
		return func(m *sim.Machine) error { return m.WriteWord(exe.Symbols["g_n"], n) }
	}
	cold, err := MeasuredWorst(exe, "work", setN(10), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := MeasuredBest(exe, "work", setN(10), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Fatalf("warm %d >= cold %d", warm, cold)
	}
	// Same data, so the difference is purely cache state.
	b, err := MeasuredBound(exe, "work", setN(10), setN(10), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Lo != warm || b.Hi != cold {
		t.Fatalf("bound %v, want [%d, %d]", b, warm, cold)
	}
}

func TestMeasuredUnknownFunction(t *testing.T) {
	exe, _, err := cc.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasuredWorst(exe, "ghost", nil, sim.Config{}); err == nil {
		t.Fatal("unknown function accepted")
	}
}
