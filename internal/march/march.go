// Package march is the micro-architectural model of Section IV: it assigns
// every basic block a best-case and worst-case execution cost c_i, assuming
// all cache hits for the best case and all cache misses for the worst case,
// with pipeline effects (load-use interlocks, branch-taken refills) analyzed
// between adjacent instructions inside the block.
//
// The costs bracket the simulator (package sim) by construction: for any
// single execution of a block, Best <= simulated cycles <= Worst. That is
// the property that makes the estimated bound of the ILP enclose the
// measured bound (Fig. 1), and it is fuzz-tested in package ipet.
//
// The paper notes the all-miss assumption "can be very pessimistic" for
// loops and suggests treating the first iteration as a separate block with
// its own cost (Section IV). WorstSteady plus LoopCacheResident implement
// that refinement; package ipet applies it when Options.SplitFirstIteration
// is on.
package march

import (
	"cinderella/internal/cache"
	"cinderella/internal/cfg"
	"cinderella/internal/isa"
)

// Options configures the cost model.
type Options struct {
	// Cache is the instruction cache geometry (miss penalty, line size).
	Cache cache.Config
	// Timing is the processor timing profile. Default isa.I960KB(). The
	// same profile must drive the simulator for the bracket to be
	// meaningful (package eval wires this up).
	Timing *isa.Timing
	// ModelPipeline enables exact intra-block load-use interlock analysis.
	// When false, the model pessimistically charges a stall on every
	// instruction (the ablation of DESIGN.md: "pipeline-adjacency
	// modelling on/off").
	ModelPipeline bool
}

// DefaultOptions mirrors the modelled i960KB.
func DefaultOptions() Options {
	return Options{Cache: cache.DefaultConfig(), Timing: isa.I960KB(), ModelPipeline: true}
}

func (o Options) timing() *isa.Timing {
	if o.Timing == nil {
		return isa.I960KB()
	}
	return o.Timing
}

// BlockCost is the cost bracket of one basic block, in cycles per
// execution.
type BlockCost struct {
	// Best assumes every fetch hits and conditional branches fall through.
	Best int64
	// Worst assumes every fetch misses, conditional branches are taken,
	// and a possible cross-block load-use stall hits the first
	// instruction.
	Worst int64
	// WorstSteady is Worst computed with all-hit fetches: the worst-case
	// cost of a steady-state loop iteration whose code is cache-resident.
	WorstSteady int64
}

// CostOf computes the cost bracket of a block.
func CostOf(b *cfg.Block, opts Options) BlockCost {
	var c BlockCost
	missPenalty := int64(opts.Cache.MissPenalty)
	timing := opts.timing()

	var prevLoadReg = -1
	var prevLoadFloat bool
	for i, ins := range b.Instrs {
		info := isa.InfoFor(ins.Op)
		exec := int64(timing.Exec[ins.Op])

		// Fetch: one cycle, plus the miss penalty in the worst case.
		c.Best += 1 + exec
		c.Worst += 1 + missPenalty + exec
		c.WorstSteady += 1 + exec

		// Load-use interlock.
		stall := int64(0)
		switch {
		case !opts.ModelPipeline:
			// Crude model: assume every instruction may stall.
			stall = int64(timing.LoadUseStall)
		case i == 0:
			// Cross-block stall: unknown predecessor; charge the worst
			// case when the instruction reads any register at all.
			if readsAnyReg(ins) {
				stall = int64(timing.LoadUseStall)
			}
		case prevLoadReg >= 0 && readsReg(ins, prevLoadReg, prevLoadFloat):
			stall = int64(timing.LoadUseStall)
			// An exact intra-block stall happens in the best case too.
			c.Best += stall
		}
		c.Worst += stall
		c.WorstSteady += stall

		if info.Load {
			prevLoadReg = int(ins.Rd)
			prevLoadFloat = info.FloatDst
		} else {
			prevLoadReg = -1
		}
	}

	// Control-transfer penalty on the terminator.
	last := b.Instrs[len(b.Instrs)-1]
	lastInfo := isa.InfoFor(last.Op)
	switch {
	case lastInfo.Branch:
		// Taken in the worst case, fall-through in the best.
		c.Worst += int64(timing.BranchTakenPenalty)
		c.WorstSteady += int64(timing.BranchTakenPenalty)
	case lastInfo.Jump:
		// Unconditional: always pays the refill.
		c.Best += int64(timing.BranchTakenPenalty)
		c.Worst += int64(timing.BranchTakenPenalty)
		c.WorstSteady += int64(timing.BranchTakenPenalty)
	}
	return c
}

// CostsOf computes brackets for every block of a function.
func CostsOf(fc *cfg.FuncCFG, opts Options) []BlockCost {
	out := make([]BlockCost, len(fc.Blocks))
	for i, b := range fc.Blocks {
		out[i] = CostOf(b, opts)
	}
	return out
}

// LoopCacheResident reports whether a loop's code provably stays resident
// in a direct-mapped cache across iterations: no two instructions of the
// loop map to the same cache line with different tags, and the loop body
// performs no calls (a callee could evict loop lines).
//
// When true, every fetch after the first full iteration hits, so
// WorstSteady is a sound per-iteration bound for iterations 2..n.
func LoopCacheResident(fc *cfg.FuncCFG, loop *cfg.Loop, cacheCfg cache.Config) bool {
	lineBytes := uint32(cacheCfg.LineBytes)
	lines := uint32(cacheCfg.SizeBytes) / lineBytes
	owner := map[uint32]uint32{} // line index -> line address
	for _, bi := range loop.Blocks {
		b := fc.Blocks[bi]
		// Calls inside the loop may evict arbitrary lines.
		for _, id := range b.Out {
			if fc.Edges[id].Kind == cfg.EdgeCall {
				return false
			}
		}
		for pc := b.Start; pc < b.End; pc += isa.WordBytes {
			lineAddr := pc / lineBytes
			idx := lineAddr % lines
			if prev, ok := owner[idx]; ok && prev != lineAddr {
				return false // conflict miss inside the loop
			}
			owner[idx] = lineAddr
		}
	}
	return true
}

// readsAnyReg reports whether the instruction reads at least one register
// (of either file) that could have been written by a load.
func readsAnyReg(ins isa.Instruction) bool {
	for r := 0; r < isa.NumIntRegs; r++ {
		if readsReg(ins, r, false) || readsReg(ins, r, true) {
			return true
		}
	}
	return false
}

// readsReg mirrors the simulator's interlock logic (sim.readsReg); the two
// must stay in agreement, which the ipet bracket fuzz test enforces
// end-to-end.
func readsReg(ins isa.Instruction, r int, float bool) bool {
	if !float && r == isa.RegZero {
		return false
	}
	type use struct {
		reg   int
		float bool
	}
	var uses []use
	switch ins.Op {
	case isa.OpNop, isa.OpHalt, isa.OpLui, isa.OpJmp, isa.OpCall:
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem, isa.OpAnd,
		isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSra, isa.OpSlt, isa.OpSltu:
		uses = []use{{int(ins.Rs1), false}, {int(ins.Rs2), false}}
	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpShli, isa.OpShri,
		isa.OpSrai, isa.OpSlti:
		uses = []use{{int(ins.Rs1), false}}
	case isa.OpLw, isa.OpLb, isa.OpLbu, isa.OpFld:
		uses = []use{{int(ins.Rs1), false}}
	case isa.OpSw, isa.OpSb:
		uses = []use{{int(ins.Rs1), false}, {int(ins.Rd), false}}
	case isa.OpFst:
		uses = []use{{int(ins.Rs1), false}, {int(ins.Rd), true}}
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		uses = []use{{int(ins.Rs1), false}, {int(ins.Rs2), false}}
	case isa.OpJr:
		uses = []use{{int(ins.Rs1), false}}
	case isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv, isa.OpFeq, isa.OpFlt, isa.OpFle:
		uses = []use{{int(ins.Rs1), true}, {int(ins.Rs2), true}}
	case isa.OpFneg, isa.OpFabs, isa.OpFsqrt, isa.OpFsin, isa.OpFcos, isa.OpFatan,
		isa.OpFexp, isa.OpFlog, isa.OpFmov, isa.OpFcvtFI:
		uses = []use{{int(ins.Rs1), true}}
	case isa.OpFcvtIF:
		uses = []use{{int(ins.Rs1), false}}
	}
	for _, u := range uses {
		if u.reg == r && u.float == float {
			return true
		}
	}
	return false
}
