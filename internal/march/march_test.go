package march

import (
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/cache"
	"cinderella/internal/cfg"
	"cinderella/internal/isa"
)

func blockOf(t *testing.T, src, fn string, idx int) (*cfg.FuncCFG, *cfg.Block) {
	t.Helper()
	exe, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	fc := p.Funcs[fn]
	return fc, fc.Blocks[idx]
}

func TestStraightBlockCosts(t *testing.T) {
	_, b := blockOf(t, `
main:
        addi r1, r0, 1   ; 1+1
        add  r2, r1, r1  ; 1+1
        halt             ; 1+1
`, "main", 0)
	c := CostOf(b, DefaultOptions())
	// Best: 3 instrs * (fetch 1 + exec 1) = 6.
	if c.Best != 6 {
		t.Fatalf("Best = %d, want 6", c.Best)
	}
	// Worst: + miss penalty 8 per fetch, + cross-block stall on first
	// instruction? addi reads r0 only, so no stall; add reads r1 written
	// by addi but addi is not a load, so no interlock either.
	if c.Worst != 6+3*8 {
		t.Fatalf("Worst = %d, want %d", c.Worst, 6+3*8)
	}
	if c.WorstSteady != 6 {
		t.Fatalf("WorstSteady = %d, want 6", c.WorstSteady)
	}
}

func TestLoadUseStallCounted(t *testing.T) {
	_, b := blockOf(t, `
main:
        lw  r1, 0(r0)    ; load
        add r2, r1, r1   ; dependent: +1 stall in best and worst
        halt
`, "main", 0)
	c := CostOf(b, DefaultOptions())
	// Best: lw(1+3) + add(1+1)+stall(1) + halt(1+1) = 9.
	if c.Best != 9 {
		t.Fatalf("Best = %d, want 9", c.Best)
	}
	// Worst adds 8 per fetch; no cross-block stall on the first
	// instruction (lw's base is r0, which never interlocks).
	if c.Worst != 9+24 {
		t.Fatalf("Worst = %d, want %d", c.Worst, 9+24)
	}
}

func TestCrossBlockStallChargedToWorstOnly(t *testing.T) {
	_, b := blockOf(t, `
main:
        add r2, r1, r1   ; reads r1: a predecessor load could interlock
        halt
`, "main", 0)
	c := CostOf(b, DefaultOptions())
	if c.Best != 4 { // 2*(1+1), no stall in best
		t.Fatalf("Best = %d", c.Best)
	}
	if c.Worst != 4+16+1 { // misses + cross-block stall
		t.Fatalf("Worst = %d", c.Worst)
	}
}

func TestBranchPenalties(t *testing.T) {
	fc, b := blockOf(t, `
main:
        beq r1, r2, .L
        nop
.L:     halt
`, "main", 0)
	_ = fc
	c := CostOf(b, DefaultOptions())
	// Block 0 is just the beq: best = fetch+exec = 2 (+1 worst-only
	// cross-block stall since beq reads r1/r2), worst adds miss 8 and
	// taken penalty 2.
	if c.Best != 2 {
		t.Fatalf("Best = %d", c.Best)
	}
	if c.Worst != 2+8+1+2 {
		t.Fatalf("Worst = %d", c.Worst)
	}
}

func TestJumpPenaltyInBothBounds(t *testing.T) {
	_, b := blockOf(t, `
main:
.Lloop: jmp .Lloop
`, "main", 0)
	c := CostOf(b, DefaultOptions())
	if c.Best != 1+1+2 { // fetch + exec + refill
		t.Fatalf("Best = %d", c.Best)
	}
	if c.Worst != 1+8+1+2 {
		t.Fatalf("Worst = %d", c.Worst)
	}
}

func TestPipelineAblation(t *testing.T) {
	_, b := blockOf(t, `
main:
        addi r1, r0, 1
        addi r2, r0, 2
        addi r3, r0, 3
        halt
`, "main", 0)
	exact := CostOf(b, DefaultOptions())
	crude := CostOf(b, Options{Cache: cache.DefaultConfig(), ModelPipeline: false})
	if crude.Worst <= exact.Worst {
		t.Fatalf("crude model %d not more pessimistic than exact %d", crude.Worst, exact.Worst)
	}
	if crude.Best != exact.Best {
		t.Fatalf("ablation changed the best case: %d vs %d", crude.Best, exact.Best)
	}
	// Crude charges one stall per instruction; the exact model charges
	// none here (the first instruction only reads r0, no interlocks).
	if crude.Worst != exact.Worst+int64(len(b.Instrs)) {
		t.Fatalf("crude = %d, exact = %d", crude.Worst, exact.Worst)
	}
}

func TestCostsOfCoversAllBlocks(t *testing.T) {
	fc, _ := blockOf(t, `
main:
        beq r1, r2, .L
        nop
.L:     halt
`, "main", 0)
	costs := CostsOf(fc, DefaultOptions())
	if len(costs) != len(fc.Blocks) {
		t.Fatalf("%d costs for %d blocks", len(costs), len(fc.Blocks))
	}
	for i, c := range costs {
		if c.Best <= 0 || c.Worst < c.Best || c.WorstSteady < c.Best || c.Worst < c.WorstSteady {
			t.Fatalf("block %d: bad bracket %+v", i, c)
		}
	}
}

func TestLoopCacheResident(t *testing.T) {
	// Tiny loop: trivially resident in a 512-byte cache.
	fc, _ := blockOf(t, `
main:
        addi r1, r0, 10
.Lloop: addi r1, r1, -1
        bne r1, r0, .Lloop
        halt
`, "main", 0)
	if len(fc.Loops) != 1 {
		t.Fatalf("loops = %d", len(fc.Loops))
	}
	if !LoopCacheResident(fc, &fc.Loops[0], cache.DefaultConfig()) {
		t.Fatal("tiny loop not resident")
	}
	// With a 2-line (32-byte) cache the loop spanning >32 bytes conflicts.
	small := cache.Config{SizeBytes: 8, LineBytes: 4, MissPenalty: 8}
	fc2, _ := blockOf(t, `
main:
        addi r1, r0, 10
.Lloop: addi r1, r1, -1
        nop
        nop
        nop
        nop
        nop
        bne r1, r0, .Lloop
        halt
`, "main", 0)
	if LoopCacheResident(fc2, &fc2.Loops[0], small) {
		t.Fatal("oversized loop reported resident")
	}
}

func TestLoopWithCallNotResident(t *testing.T) {
	fc, _ := blockOf(t, `
main:
        addi r1, r0, 10
.Lloop: call helper
        addi r1, r1, -1
        bne r1, r0, .Lloop
        halt
helper:
        ret
`, "main", 0)
	if len(fc.Loops) != 1 {
		t.Fatalf("loops = %d", len(fc.Loops))
	}
	if LoopCacheResident(fc, &fc.Loops[0], cache.DefaultConfig()) {
		t.Fatal("loop with call reported resident")
	}
}

func TestReadsRegAgreesWithKeyCases(t *testing.T) {
	cases := []struct {
		ins   isa.Instruction
		reg   int
		float bool
		want  bool
	}{
		{isa.Instruction{Op: isa.OpSw, Rd: 7, Rs1: 2}, 7, false, true},
		{isa.Instruction{Op: isa.OpFadd, Rs1: 4, Rs2: 5}, 4, true, true},
		{isa.Instruction{Op: isa.OpFadd, Rs1: 4, Rs2: 5}, 4, false, false},
		{isa.Instruction{Op: isa.OpAdd, Rs1: 0, Rs2: 0}, 0, false, false},
		{isa.Instruction{Op: isa.OpJr, Rs1: 14}, 14, false, true},
		{isa.Instruction{Op: isa.OpLui, Rd: 3}, 3, false, false},
	}
	for _, c := range cases {
		if got := readsReg(c.ins, c.reg, c.float); got != c.want {
			t.Errorf("readsReg(%v, %d, %v) = %v", c.ins, c.reg, c.float, got)
		}
	}
	if readsAnyReg(isa.Instruction{Op: isa.OpNop}) {
		t.Error("nop reads a register")
	}
	if !readsAnyReg(isa.Instruction{Op: isa.OpBeq, Rs1: 1, Rs2: 2}) {
		t.Error("beq reads no register")
	}
}
