package ipet

import (
	"fmt"
	"sort"
	"strings"
)

// AnnotatedListing renders the variable numbering of every reachable
// function — cinderella's annotated-source view (Section V), adapted to the
// assembly level: for each function it lists the basic blocks with their
// x-variables, address ranges and cost brackets, the edges with their
// d-variables, the call sites with their f-variables, and the loops
// awaiting bound annotations.
func (a *Analyzer) AnnotatedListing() string {
	var b strings.Builder
	names := make([]string, 0, len(a.ctxByFunc))
	for name := range a.ctxByFunc {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fc := a.Prog.Funcs[name]
		costs := a.costs[name]
		fmt.Fprintf(&b, "func %s  (%d instance", name, len(a.ctxByFunc[name]))
		if len(a.ctxByFunc[name]) != 1 {
			b.WriteString("s")
		}
		b.WriteString(")\n")
		for _, blk := range fc.Blocks {
			fmt.Fprintf(&b, "  x%-3d [%#06x,%#06x)  %2d instrs  cost [%d,%d]",
				blk.Index+1, blk.Start, blk.End, blk.NumInstrs(), costs[blk.Index].Best, costs[blk.Index].Worst)
			if blk.FirstLine > 0 {
				fmt.Fprintf(&b, "  asm lines %d-%d", blk.FirstLine, blk.LastLine)
			}
			b.WriteString("\n")
		}
		for _, e := range fc.Edges {
			fmt.Fprintf(&b, "  d%-3d B%d -> B%d (%s)", e.ID+1, e.From+1, e.To+1, e.Kind)
			if e.Callee != "" {
				fmt.Fprintf(&b, " -> %s", e.Callee)
			}
			b.WriteString("\n")
		}
		for i, eid := range fc.Calls {
			fmt.Fprintf(&b, "  f%-3d = d%d, calls %s\n", i+1, eid+1, fc.Edges[eid].Callee)
		}
		for i, l := range fc.Loops {
			fmt.Fprintf(&b, "  loop %d: header x%d, %d blocks — annotate with \"loop %d: <lo> .. <hi>\"\n",
				i+1, l.Header+1, len(l.Blocks), i+1)
		}
		b.WriteString("\n")
	}
	return b.String()
}
