// Package ipet implements the paper's contribution: implicit path
// enumeration. Program path analysis is cast as integer linear programs
// over basic-block execution counts — maximize (or minimize) sum(c_i * x_i)
// subject to structural constraints extracted from the CFG and
// user-provided functionality constraint sets — so that the extreme-case
// paths are never enumerated explicitly (Section III).
//
// Functions are analyzed context-sensitively: each call site instantiates a
// fresh copy of the callee's count variables, which is exactly the paper's
// device for eq. (18): "for purpose of analysis, a separate set of x_i
// variables is used for this instance of the call". Aggregate variables
// (the plain x8 of eq. (17)) are sums over all instances.
package ipet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/march"
	"cinderella/internal/prepcache"
)

// Options tunes the analysis.
type Options struct {
	// March configures the block cost model.
	March march.Options
	// SplitFirstIteration enables the Section IV refinement: the first
	// iteration of a cache-resident loop pays miss costs, later iterations
	// pay steady-state costs.
	SplitFirstIteration bool
	// PruneNullSets drops trivially-infeasible conjunctive sets before
	// invoking the ILP solver (Section III.D; dhry drops 8 sets to 3).
	PruneNullSets bool
	// MaxSets bounds the disjunctive cross product.
	MaxSets int
	// MaxContexts bounds context expansion.
	MaxContexts int
	// Artifacts selects the content-addressed prepare-artifact cache
	// Prepare fetches per-function material from (nil selects the
	// process-wide prepcache.Default()). Servers that persist artifacts to
	// disk pass their own cache so restart and fault-injection tests can
	// run isolated stores side by side.
	Artifacts *prepcache.Cache
	// Workers bounds the number of concurrent ILP solves in Estimate: the
	// sets × {max,min} jobs are dispatched to a pool of this size. 0
	// selects runtime.GOMAXPROCS(0); 1 forces the fully sequential path.
	// The result is deterministic — identical to Workers == 1 — at every
	// setting, because jobs are reduced in set order after completion.
	Workers int
	// DedupSets canonicalizes each surviving conjunctive set (sorted,
	// coefficient-normalized rows over the lowered ILP variables) and
	// solves each distinct set once, fanning the result back out to its
	// duplicates. Sets differing only in call-context rows lower to
	// different variables and are never merged.
	DedupSets bool
	// WarmStart solves the shared structural system once per objective
	// sense and re-solves each constraint set by dual simplex from that
	// base optimum, with only the set's delta rows attached. Fractional
	// roots and pathological pivots fall back to the cold solver.
	WarmStart bool
	// IncumbentPrune shares the best bound found so far across the solve
	// pool and abandons any set whose LP relaxation proves it strictly
	// worse than the incumbent (such sets report as incumbent-skipped in
	// Stats). The bound, extreme-case counts, and winning set index are
	// unaffected: a pruned set can never win or tie the winner.
	IncumbentPrune bool
	// Deadline bounds the wall clock of one Estimate call. When it expires
	// no further constraint-set solves start, in-flight solves are
	// abandoned, and the estimate degrades to the sound envelope: the base
	// LP relaxation bound (which dominates every set's optimum) replaces
	// the unsolved sets, and the report carries Exact=false. Zero means no
	// deadline. Cancellation or expiry of the caller's own context remains
	// an error — only the analyzer's internal deadline degrades.
	Deadline time.Duration
	// Budget bounds the total simplex pivots one Estimate may spend,
	// including the plan's base solves. Once spent, remaining solve jobs
	// are not launched and report through the sound envelope, exactly as
	// under Deadline but deterministically. Zero means unlimited.
	Budget int
	// Certify backs every reported bound with an exact math/big.Rat check:
	// each per-set float64 solve must produce an optimal-basis certificate
	// that verifies in exact rational arithmetic (feasibility of the basic
	// solution against the original rows, nonpositive reduced costs, and
	// integrality); claims without a verifiable certificate — rejected
	// certificates, infeasibility claims, solves with suspect
	// (ill-conditioned) pivots — are re-solved from scratch by the exact
	// rational simplex of internal/ilp/certify. The reported bound is
	// therefore exactly right even if the float64 kernels misbehave; the
	// price is the exact fallback's cost on every claim the certificates
	// cannot vouch for. Certify disables incumbent pruning (a pruned set's
	// domination claim cannot be certified) and warm-base presolve (the
	// certificate checker re-derives the warm tableau layout, which presolve
	// would obscure); bounds and counts are unchanged by either.
	Certify bool
	// WidenSets replaces the hard MaxSets failure with sound widening:
	// when the disjunctive cross product would exceed MaxSets, the
	// overflowing formula is collapsed to the relations shared by all its
	// disjuncts (constraint.Widen). Dropping the non-shared rows only
	// enlarges the feasible region, so the bound stays safe; reports whose
	// winning set was widened carry Exact=false.
	WidenSets bool
}

// DefaultOptions returns the standard analysis configuration.
func DefaultOptions() Options {
	return Options{
		March:          march.DefaultOptions(),
		PruneNullSets:  true,
		MaxSets:        4096,
		MaxContexts:    10000,
		DedupSets:      true,
		WarmStart:      true,
		IncumbentPrune: true,
	}
}

// Context is one instantiation of a function's count variables: the chain
// of call sites from the analysis root.
type Context struct {
	ID   int
	Func string
	// Path is the chain of call edges from the root: Path[i] identifies a
	// call edge (by function name and edge ID) whose callee is the next
	// element's function. Empty for the root context.
	Path []CallRef
}

// CallRef names one call edge.
type CallRef struct {
	Caller string
	EdgeID int
}

func (c *Context) String() string {
	s := c.Func
	if len(c.Path) > 0 {
		s += " via"
		for _, r := range c.Path {
			s += fmt.Sprintf(" %s:d%d", r.Caller, r.EdgeID+1)
		}
	}
	return s
}

// Analyzer binds one set of functionality annotations to a session's
// shared analysis model. The model fields (Prog, Root, Opts, contexts,
// variables, costs) are promoted from the embedded Session; the analyzer
// itself owns only the annotations and the memoized solver plan derived
// from them.
type Analyzer struct {
	*Session

	annots *constraint.File

	// anytime, when non-nil, overrides the session's Deadline and Budget
	// for this analyzer's estimates; see SetAnytime.
	anytime *anytimeOverride

	// planMu guards plan, the memoized solver setup (expanded sets, packed
	// prefixes, warm-start bases) shared by repeated Estimate calls.
	// Apply invalidates it; see solverSetup in estimate.go.
	planMu sync.Mutex
	plan   *solverPlan
}

// anytimeOverride carries per-analyzer anytime budgets.
type anytimeOverride struct {
	deadline time.Duration
	budget   int
}

// SetAnytime overrides the session-wide Options.Deadline and
// Options.Budget for this analyzer only. A long-lived service maps each
// request's SLO onto the anytime machinery this way: the shared session —
// and with it every prepared tableau and cache — is built once with the
// full options, while each request-scoped analyzer degrades on its own
// clock. Zero values mean "no deadline" / "no pivot budget", exactly as in
// Options; the override replaces both fields wholesale.
//
// Call it before the analyzer's first Estimate (the solver plan captures
// budget-dependent setup decisions when it is built).
func (a *Analyzer) SetAnytime(deadline time.Duration, budget int) {
	a.anytime = &anytimeOverride{deadline: deadline, budget: budget}
}

// effAnytime resolves the deadline and pivot budget that govern this
// analyzer's estimates: the per-analyzer override when set, otherwise the
// session options.
func (a *Analyzer) effAnytime() (time.Duration, int) {
	if a.anytime != nil {
		return a.anytime.deadline, a.anytime.budget
	}
	return a.Opts.Deadline, a.Opts.Budget
}

// New builds a standalone analyzer for the given root function. It is the
// one-shot path: the session it wraps is private and does not persist
// solver results across Estimate calls. Use Prepare to share one session
// across many annotation scenarios.
func New(prog *cfg.Program, root string, opts Options) (*Analyzer, error) {
	s, err := newSession(prog, root, opts)
	if err != nil {
		return nil, err
	}
	return &Analyzer{Session: s}, nil
}

func (a *Session) expandContexts(fn string, path []CallRef) error {
	if len(a.contexts) >= a.Opts.MaxContexts {
		return fmt.Errorf("ipet: context expansion exceeds %d", a.Opts.MaxContexts)
	}
	ctx := &Context{ID: len(a.contexts), Func: fn, Path: append([]CallRef{}, path...)}
	a.contexts = append(a.contexts, ctx)
	a.ctxByFunc[fn] = append(a.ctxByFunc[fn], ctx)
	fc := a.Prog.Funcs[fn]
	for _, eid := range fc.Calls {
		callee := fc.Edges[eid].Callee
		child := len(a.contexts)
		if err := a.expandContexts(callee, append(path, CallRef{Caller: fn, EdgeID: eid})); err != nil {
			return err
		}
		a.ctxChild[[2]int{ctx.ID, eid}] = a.contexts[child]
	}
	return nil
}

// Contexts returns all contexts, root first.
func (a *Session) Contexts() []*Context { return a.contexts }

// NumVars returns the number of ILP variables in the structural model.
func (a *Session) NumVars() int { return a.nVars }

// blockVar returns the ILP variable of block b in context ctx: contexts lay
// their block variables out first, then their edge variables, contiguously
// from ctxOff (first-iteration split variables are appended past nVars by
// the objective builder).
func (a *Session) blockVar(ctx, b int) int { return a.ctxOff[ctx] + b }

// edgeVar returns the ILP variable of edge e in context ctx.
func (a *Session) edgeVar(ctx, e int) int { return a.ctxOff[ctx] + a.ctxNB[ctx] + e }

// Apply registers the functionality annotations (loop bounds and path
// facts). The whole file is validated up front — sections naming unknown
// functions, loop bounds out of the detected range or malformed, and
// formula variables that do not resolve against the CFG are all rejected
// with an *AnnotationError carrying the file and line — so a malformed
// annotation can never surface later as a panic or a silent skip inside
// Estimate.
func (a *Analyzer) Apply(file *constraint.File) error {
	for _, sec := range file.Sections {
		if _, ok := a.ctxByFunc[sec.Func]; !ok {
			if _, exists := a.Prog.Funcs[sec.Func]; !exists {
				return &AnnotationError{File: sec.File, Line: sec.Line,
					Msg: fmt.Sprintf("annotations name unknown function %q", sec.Func)}
			}
			// A section for an unreached function is legal but inert.
			continue
		}
		fc := a.Prog.Funcs[sec.Func]
		for _, lb := range sec.LoopBounds {
			// Loop < 1 can only come from a programmatically built file (the
			// parser rejects it), but unchecked it would index fc.Loops[-1]
			// when the bound rows are materialized.
			if lb.Loop < 1 || lb.Loop > len(fc.Loops) {
				return &AnnotationError{File: lb.File, Line: lb.Line,
					Msg: fmt.Sprintf("%s has %d loops (1-based), annotation names loop %d", sec.Func, len(fc.Loops), lb.Loop)}
			}
			if lb.Symbolic() {
				// A symbolic end has no value to range-check yet; that
				// happens when the symbol is bound (constraint.File.Bind)
				// or against the parameter domain in Parametrize. A
				// concrete lower end must still be nonnegative.
				if lb.LoSym == "" && lb.Lo < 0 {
					return &AnnotationError{File: lb.File, Line: lb.Line,
						Msg: fmt.Sprintf("bad bound %d .. %s for %s loop %d", lb.Lo, lb.HiSym, sec.Func, lb.Loop)}
				}
			} else if lb.Lo < 0 || lb.Hi < lb.Lo {
				return &AnnotationError{File: lb.File, Line: lb.Line,
					Msg: fmt.Sprintf("bad bound %d .. %d for %s loop %d", lb.Lo, lb.Hi, sec.Func, lb.Loop)}
			}
		}
		for _, fm := range sec.Formulas {
			if err := a.checkFormula(fm); err != nil {
				return err
			}
		}
	}
	// Deep-copy: a caller mutating its annotation objects after Apply (to
	// build the next scenario, say) must not corrupt this analyzer's —
	// or, through a shared session's caches, another analyzer's — view.
	a.annots = file.Clone()
	// New annotations change the constraint sets and loop-bound rows, so
	// any memoized solver setup is stale.
	a.planMu.Lock()
	a.plan = nil
	a.planMu.Unlock()
	return nil
}

// MissingLoopBounds lists loops of reachable functions that have no bound
// annotation — "the minimum user information required to perform timing
// analysis is the loop bound information".
func (a *Analyzer) MissingLoopBounds() []string {
	var missing []string
	names := make([]string, 0, len(a.ctxByFunc))
	for name := range a.ctxByFunc {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fc := a.Prog.Funcs[name]
		bounded := map[int]bool{}
		if a.annots != nil {
			if sec, ok := a.annots.Section(name); ok {
				for _, lb := range sec.LoopBounds {
					bounded[lb.Loop] = true
				}
			}
		}
		for i := range fc.Loops {
			if !bounded[i+1] {
				missing = append(missing, fmt.Sprintf("%s loop %d (header block x%d)", name, i+1, fc.Loops[i].Header+1))
			}
		}
	}
	return missing
}
