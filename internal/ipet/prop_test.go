package ipet

import (
	"math/rand"
	"testing"

	"cinderella/internal/cc"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/eval"
	"cinderella/internal/sim"
)

// TestEnclosureFuzz is the Fig. 1 invariant, fuzz-tested end to end: for a
// compiled program with data-dependent control flow, the estimated bound
// [BCET, WCET] encloses the cycles of every concrete run, and the
// Experiment 1 calculated bound likewise falls inside the estimate.
func TestEnclosureFuzz(t *testing.T) {
	src := `
const N = 16;
int input[N];
int scratch[N];
int main() { return 0; }
int helper(int v) {
    if (v % 2 == 0) return v * 3;
    return v + 7;
}
int work() {
    int i, j, acc;
    acc = 0;
    for (i = 0; i < N; i++) {
        if (input[i] < 0) {
            scratch[i] = helper(input[i]);
        } else {
            for (j = 0; j < 4; j++) {
                acc += input[i] >> j;
            }
            scratch[i] = acc;
        }
        if (acc > 100000) break;
    }
    for (i = 0; i < N; i++) acc += scratch[i];
    return acc;
}`
	exe, _, err := cc.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	an, err := New(prog, "work", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Count the loops the compiler produced and bound them generously.
	fc := prog.Funcs["work"]
	annots := "func work {\n"
	for i := range fc.Loops {
		annots += "  loop " + itoa(i+1) + ": 0 .. 16\n"
	}
	annots += "}\n"
	file, err := constraint.Parse(annots)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Apply(file); err != nil {
		t.Fatal(err)
	}
	est, err := an.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.BCET.Cycles <= 0 || est.WCET.Cycles <= est.BCET.Cycles {
		t.Fatalf("degenerate estimate: [%d, %d]", est.BCET.Cycles, est.WCET.Cycles)
	}

	inputAddr := exe.Symbols["g_input"]
	costs := blockCostMap(an, prog)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		vals := make([]int32, 16)
		for i := range vals {
			vals[i] = int32(rng.Intn(2001) - 1000)
		}
		setup := func(m *sim.Machine) error {
			for i, v := range vals {
				if err := m.WriteWord(inputAddr+uint32(4*i), v); err != nil {
					return err
				}
			}
			return nil
		}
		// Cold measured run must fall inside the estimate.
		cycles, err := eval.MeasuredWorst(exe, "work", setup, sim.Config{})
		if err != nil {
			t.Fatalf("trial %d: %v (input %v)", trial, err, vals)
		}
		if cycles < est.BCET.Cycles || cycles > est.WCET.Cycles {
			t.Fatalf("trial %d: measured %d outside estimate [%d, %d] (input %v)",
				trial, cycles, est.BCET.Cycles, est.WCET.Cycles, vals)
		}
		// Warm run too.
		warm, err := eval.MeasuredBest(exe, "work", setup, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if warm < est.BCET.Cycles || warm > est.WCET.Cycles {
			t.Fatalf("trial %d: warm %d outside estimate [%d, %d]",
				trial, warm, est.BCET.Cycles, est.WCET.Cycles)
		}
		// Calculated bound (counted run x cost bracket) is enclosed too.
		counts, err := eval.CountRun(exe, prog, "work", setup, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		hi, err := eval.Calculated(counts, costs, true)
		if err != nil {
			t.Fatal(err)
		}
		lo, err := eval.Calculated(counts, costs, false)
		if err != nil {
			t.Fatal(err)
		}
		if hi > est.WCET.Cycles {
			t.Fatalf("trial %d: calculated worst %d exceeds WCET %d", trial, hi, est.WCET.Cycles)
		}
		if lo < est.BCET.Cycles {
			t.Fatalf("trial %d: calculated best %d below BCET %d", trial, lo, est.BCET.Cycles)
		}
		// Calculated-lo uses all-hit costs, calculated-hi all-miss costs:
		// a concrete run with the same input lies between them.
		if lo > cycles {
			t.Fatalf("trial %d: calculated best %d above measured %d", trial, lo, cycles)
		}
		if hi < cycles {
			t.Fatalf("trial %d: calculated worst %d below measured %d", trial, hi, cycles)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestSplitFirstIteration verifies the Section IV refinement: treating the
// first loop iteration separately tightens the WCET of a cache-resident
// loop while still enclosing the measured cold run.
func TestSplitFirstIteration(t *testing.T) {
	src := `
int sink;
int main() { return 0; }
int spin() {
    int i, s;
    s = 0;
    for (i = 0; i < 100; i++) {
        s += i * 3 + (i & 7);
    }
    sink = s;
    return s;
}`
	exe, _, err := cc.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	annots := "func spin { loop 1: 100 .. 100 }\n"
	file, err := constraint.Parse(annots)
	if err != nil {
		t.Fatal(err)
	}

	run := func(split bool) int64 {
		opts := DefaultOptions()
		opts.SplitFirstIteration = split
		an, err := New(prog, "spin", opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := an.Apply(file); err != nil {
			t.Fatal(err)
		}
		est, err := an.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		return est.WCET.Cycles
	}

	noSplit := run(false)
	withSplit := run(true)
	if withSplit >= noSplit {
		t.Fatalf("split did not tighten: %d vs %d", withSplit, noSplit)
	}
	measured, err := eval.MeasuredWorst(exe, "spin", nil, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if measured > withSplit {
		t.Fatalf("split WCET %d below measured %d (unsound)", withSplit, measured)
	}
	// The refinement removes most of the all-miss pessimism: the split
	// bound should be much closer to the measurement.
	gapSplit := float64(withSplit-measured) / float64(measured)
	gapNoSplit := float64(noSplit-measured) / float64(measured)
	if gapSplit > gapNoSplit/2 {
		t.Fatalf("split gap %.2f not much tighter than %.2f", gapSplit, gapNoSplit)
	}
}

// TestBCETWCETOrdering: for a selection of programs, BCET <= WCET always
// holds and both are positive.
func TestBCETWCETOrdering(t *testing.T) {
	srcs := []string{
		`int main() { return 3; }`,
		`int main() { int i, s; s = 0; for (i = 0; i < 5; i++) s += i; return s; }`,
		`int f(int x) { return x * 2; } int main() { return f(4) + f(5); }`,
	}
	for i, src := range srcs {
		exe, _, err := cc.Build(src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		prog, err := cfg.Build(exe)
		if err != nil {
			t.Fatal(err)
		}
		an, err := New(prog, "main", DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		var annots string
		if len(prog.Funcs["main"].Loops) > 0 {
			annots = "func main { loop 1: 5 .. 5 }\n"
		}
		if annots != "" {
			file, err := constraint.Parse(annots)
			if err != nil {
				t.Fatal(err)
			}
			if err := an.Apply(file); err != nil {
				t.Fatal(err)
			}
		}
		est, err := an.Estimate()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if est.BCET.Cycles <= 0 || est.BCET.Cycles > est.WCET.Cycles {
			t.Fatalf("case %d: bad bound [%d, %d]", i, est.BCET.Cycles, est.WCET.Cycles)
		}
	}
}

// TestAnnotatedListing smoke-checks the Section V annotated view.
func TestAnnotatedListing(t *testing.T) {
	an, _, _ := analyzerFor(t, checkDataASM, "check_data")
	listing := an.AnnotatedListing()
	for _, want := range []string{"func check_data", "x1", "d1", "loop 1: header x2", "cost ["} {
		if !containsStr(listing, want) {
			t.Errorf("listing missing %q:\n%s", want, listing)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
