package ipet

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/ilp"
)

// buildProg assembles a test program straight to its CFG.
func buildProg(t *testing.T, src string) *cfg.Program {
	t.Helper()
	exe, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// uncertifiedView strips the certificate-layer fields from a report so a
// certified run can be compared field-for-field against an uncertified one:
// the promise is that Certify changes only those fields, never the bounds,
// counts, or winning sets.
func uncertifiedView(r report) report {
	r.WCET.Certified, r.WCET.RecheckedSets = false, 0
	r.BCET.Certified, r.BCET.RecheckedSets = false, 0
	return r
}

// TestCertifiedBitIdentical: enabling Certify must not move any bound,
// count, or winning set at any worker count — the exact layer only checks
// (and, on a healthy solver, only confirms). On the 32-set stress workload
// every claim ends root-integral on the warm path with a certificate, so a
// healthy solver also reports zero certificate failures.
func TestCertifiedBitIdentical(t *testing.T) {
	src, annots := manySetProgram(5)
	plain := estimateWithWorkers(t, src, annots, 1)
	for _, workers := range []int{1, 4, 8} {
		cert := estimateOpts(t, src, annots, func(o *Options) {
			o.Workers = workers
			o.Certify = true
		})
		if got, want := uncertifiedView(reportOf(cert)), reportOf(plain); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: certified run diverges from uncertified:\ncert:  %+v\nplain: %+v",
				workers, got, want)
		}
		if !cert.WCET.Certified || !cert.BCET.Certified {
			t.Errorf("workers=%d: bounds not certified: WCET=%v BCET=%v",
				workers, cert.WCET.Certified, cert.BCET.Certified)
		}
		if cert.Stats.CertFailures != 0 {
			t.Errorf("workers=%d: healthy solver reported %d certificate failures",
				workers, cert.Stats.CertFailures)
		}
	}
	if plain.WCET.Certified || plain.BCET.Certified {
		t.Errorf("uncertified run claims certification: %+v", reportOf(plain))
	}
}

// TestCertifyCheckData repeats the bit-identity check on the paper's
// check_data program: the certified bounds, counts, and winning sets must
// match the uncertified run exactly, with every claim certificate-verified.
func TestCertifyCheckData(t *testing.T) {
	prog := checkDataProgram(t)
	plain := oneShot(t, prog, "check_data", checkDataAnnots, DefaultOptions())
	opts := DefaultOptions()
	opts.Certify = true
	cert := oneShot(t, prog, "check_data", checkDataAnnots, opts)
	if got, want := uncertifiedView(reportOf(cert)), reportOf(plain); !reflect.DeepEqual(got, want) {
		t.Errorf("certified check_data diverges from uncertified:\ncert:  %+v\nplain: %+v", got, want)
	}
	if !cert.WCET.Certified || !cert.BCET.Certified {
		t.Errorf("check_data bounds not certified: %+v / %+v", cert.WCET, cert.BCET)
	}
	if cert.Stats.CertFailures != 0 {
		t.Errorf("healthy solver reported %d certificate failures", cert.Stats.CertFailures)
	}
}

// TestCertifyInfeasibleClaims: a structurally infeasible conjunctive set
// (x2 = 1 & x3 = 1 contradicts the diamond's flow equation x2 + x3 = 1, a
// two-variable fact the trivial-null pruner cannot see) produces an
// infeasibility claim, which carries no certificate and must be re-proved
// by the exact solver — RecheckedSets is nonzero while the bounds match the
// uncertified run.
func TestCertifyInfeasibleClaims(t *testing.T) {
	src, _ := manySetProgram(2)
	annots := `func main {
    (x2 = 1 & x3 = 1) | (x2 = 0 & x3 = 1)
    (x5 = 1 & x6 = 0) | (x5 = 0 & x6 = 1)
}
`
	plain := estimateWithWorkers(t, src, annots, 1)
	cert := estimateOpts(t, src, annots, func(o *Options) {
		o.Workers = 1
		o.Certify = true
	})
	if got, want := uncertifiedView(reportOf(cert)), reportOf(plain); !reflect.DeepEqual(got, want) {
		t.Errorf("certified run diverges from uncertified:\ncert:  %+v\nplain: %+v", got, want)
	}
	if !cert.WCET.Certified || !cert.BCET.Certified {
		t.Errorf("bounds not certified: %+v / %+v", cert.WCET, cert.BCET)
	}
	if cert.Stats.ExactResolves == 0 {
		t.Errorf("infeasibility claims were not exact-resolved: %+v", cert.Stats)
	}
	if cert.WCET.RecheckedSets == 0 || cert.BCET.RecheckedSets == 0 {
		t.Errorf("expected rechecked sets in both directions: %+v / %+v", cert.WCET, cert.BCET)
	}
}

// TestCertifyFaultInjection corrupts each instrumented float64 site of the
// production solvers in turn and requires the certificate layer to catch
// the damage: the certified bounds must come back bit-identical to the
// unfaulted oracle, recovered through exact rational re-solves. The
// objective fault is the deterministic certificate-rejection case: the
// solver optimizes a perturbed objective, lands on the wrong vertex, and
// the (honestly reported) basis cannot prove the true objective optimal.
//
// The injector is process-global, so no subtest runs parallel, and
// ilp.SetSelfCheck must stay off (the dense differential oracle is
// deliberately unfaulted and would panic by design).
func TestCertifyFaultInjection(t *testing.T) {
	src, _ := manySetProgram(3)
	// Pin only the first diamond: the remaining two are chosen by the
	// objective, so corrupting the objective genuinely moves the optimum
	// (fully pinned sets are single points and mask objective faults).
	annots := `func main {
    (x2 = 1 & x3 = 0) | (x2 = 0 & x3 = 1)
}
`
	certOpts := func(o *Options) {
		o.Workers = 1
		o.Certify = true
	}
	oracle := estimateOpts(t, src, annots, certOpts)
	if !oracle.WCET.Certified || !oracle.BCET.Certified {
		t.Fatalf("oracle run not certified: %+v / %+v", oracle.WCET, oracle.BCET)
	}

	cases := []struct {
		name  string
		fault func(ilp.FaultSite, float64) float64
		// wantCertFail marks faults that deterministically produce rejected
		// certificates (not merely claims that skip certification).
		wantCertFail bool
	}{
		{
			name: "flipped pivot sign",
			fault: func(s ilp.FaultSite, v float64) float64 {
				if s == ilp.FaultPivot {
					return -v
				}
				return v
			},
		},
		{
			name: "truncated objective coefficient",
			fault: func(s ilp.FaultSite, v float64) float64 {
				if s == ilp.FaultObjective {
					return math.Trunc(v / 16)
				}
				return v
			},
			wantCertFail: true,
		},
		{
			name: "stale warm-start basis",
			fault: func(s ilp.FaultSite, v float64) float64 {
				if s == ilp.FaultWarmBase {
					return v + 1
				}
				return v
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ilp.SetFaultInjector(tc.fault)
			defer ilp.SetFaultInjector(nil)
			est := estimateOpts(t, src, annots, certOpts)
			if est.WCET.Cycles != oracle.WCET.Cycles || est.BCET.Cycles != oracle.BCET.Cycles {
				t.Errorf("faulted bounds [%d, %d] diverge from oracle [%d, %d]",
					est.BCET.Cycles, est.WCET.Cycles, oracle.BCET.Cycles, oracle.WCET.Cycles)
			}
			if !est.WCET.Certified || !est.BCET.Certified {
				t.Errorf("faulted run not certified: WCET=%v BCET=%v",
					est.WCET.Certified, est.BCET.Certified)
			}
			if est.Stats.ExactResolves == 0 {
				t.Errorf("fault caused no exact resolves; the corruption went unnoticed: %+v", est.Stats)
			}
			if tc.wantCertFail && est.Stats.CertFailures == 0 {
				t.Errorf("expected rejected certificates, got stats %+v", est.Stats)
			}
			t.Logf("recovered: %d exact resolves, %d certificate failures, %d suspect pivots",
				est.Stats.ExactResolves, est.Stats.CertFailures, est.Stats.SuspectPivots)
		})
	}
}

// TestCertifySessionCache: a certifying estimate must never trust an
// uncertified cached outcome, and its own certified outcomes must satisfy
// later certifying estimates entirely from cache.
func TestCertifySessionCache(t *testing.T) {
	prog := checkDataProgram(t)
	opts := DefaultOptions()
	opts.Workers = 1
	sess, err := Prepare(prog, "check_data", opts)
	if err != nil {
		t.Fatal(err)
	}
	annots := parseAnnots(t, checkDataAnnots)

	// Uncertified estimate populates the cache with uncertified outcomes.
	plain, err := sess.Estimate(annots)
	if err != nil {
		t.Fatal(err)
	}
	certOf := func() *Estimate {
		an, err := sess.Analyzer(annots)
		if err != nil {
			t.Fatal(err)
		}
		an.Opts.Certify = true
		est, err := an.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	// The certifying run must bypass every uncertified hit and re-solve.
	cert1 := certOf()
	if cert1.Stats.CacheHits != 0 {
		t.Errorf("certifying run accepted %d uncertified cache hits", cert1.Stats.CacheHits)
	}
	if !cert1.WCET.Certified || !cert1.BCET.Certified {
		t.Fatalf("session certify run not certified: %+v / %+v", cert1.WCET, cert1.BCET)
	}
	if cert1.WCET.Cycles != plain.WCET.Cycles || cert1.BCET.Cycles != plain.BCET.Cycles {
		t.Errorf("certified bounds [%d, %d] diverge from uncertified [%d, %d]",
			cert1.BCET.Cycles, cert1.WCET.Cycles, plain.BCET.Cycles, plain.WCET.Cycles)
	}

	// Its certified outcomes now satisfy a second certifying run from cache.
	cert2 := certOf()
	if cert2.Stats.CacheHits == 0 {
		t.Errorf("second certifying run hit no cached outcomes: %+v", cert2.Stats)
	}
	if cert2.WCET.Cycles != cert1.WCET.Cycles || cert2.BCET.Cycles != cert1.BCET.Cycles ||
		!cert2.WCET.Certified || !cert2.BCET.Certified {
		t.Errorf("cached certify run diverges: %+v vs %+v", cert2.WCET, cert1.WCET)
	}

	// And an uncertified run accepts certified hits too.
	plain2, err := sess.Estimate(annots)
	if err != nil {
		t.Fatal(err)
	}
	if plain2.Stats.CacheHits == 0 {
		t.Errorf("uncertified run rejected certified cache hits: %+v", plain2.Stats)
	}
	if plain2.WCET.Cycles != plain.WCET.Cycles || plain2.BCET.Cycles != plain.BCET.Cycles {
		t.Errorf("bounds moved across cache round trips: %+v vs %+v", plain2.WCET, plain.WCET)
	}
}

// TestInfeasibleTypedError: both total-infeasibility shapes — every set
// null before solving, and every set infeasible at the solver — surface as
// *InfeasibleError so callers can distinguish an annotation contradiction
// from an analysis failure.
func TestInfeasibleTypedError(t *testing.T) {
	src, _ := manySetProgram(2)
	prog := buildProg(t, src)
	run := func(annots string, mutate func(*Options)) error {
		t.Helper()
		opts := DefaultOptions()
		if mutate != nil {
			mutate(&opts)
		}
		an, err := New(prog, "main", opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := an.Apply(parseAnnots(t, annots)); err != nil {
			t.Fatal(err)
		}
		est, err := an.Estimate()
		if err == nil {
			t.Fatalf("estimate succeeded (%+v), want infeasibility", est)
		}
		return err
	}

	// x2 pinned to both 0 and 1: every set is trivially null and pruned
	// before any solve.
	nullErr := run("func main {\n    x2 = 1\n    x2 = 0\n}\n", nil)
	var ie *InfeasibleError
	if !errors.As(nullErr, &ie) {
		t.Fatalf("all-null error is %T (%v), want *InfeasibleError", nullErr, nullErr)
	}
	if !ie.AllNull || ie.Sets == 0 {
		t.Errorf("all-null error fields: %+v", ie)
	}

	// The same contradiction with pruning disabled reaches the solver and
	// comes back as solver-proven infeasibility.
	solvErr := run("func main {\n    x2 = 1\n    x2 = 0\n}\n", func(o *Options) { o.PruneNullSets = false })
	ie = nil
	if !errors.As(solvErr, &ie) {
		t.Fatalf("solver-infeasible error is %T (%v), want *InfeasibleError", solvErr, solvErr)
	}
	if ie.AllNull {
		t.Errorf("solver-proven infeasibility flagged AllNull: %+v", ie)
	}
}

// TestAnnotationErrorPositions: malformed annotations must fail at Apply
// with an *AnnotationError carrying the file name and line that
// constraint.ParseNamed stamped, never panic or slip through to Estimate.
func TestAnnotationErrorPositions(t *testing.T) {
	src, _ := manySetProgram(2)
	prog := buildProg(t, src)

	apply := func(annots string) error {
		t.Helper()
		an, err := New(prog, "main", DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		f, err := constraint.ParseNamed("bad.ann", annots)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		// Route through Merge: the CLI always merges annotation files, and
		// Merge must preserve the stamped positions (File regression).
		return an.Apply(constraint.Merge(f))
	}

	cases := []struct {
		name, annots, wantSub string
		wantLine              int
	}{
		{
			name:     "unknown function",
			annots:   "func nosuch {\n    x1 = 1\n}\n",
			wantSub:  `unknown function "nosuch"`,
			wantLine: 1,
		},
		{
			name:     "loop out of range",
			annots:   "func main {\n    loop 7: 1 .. 3\n}\n",
			wantSub:  "loop 7",
			wantLine: 2,
		},
		{
			name:     "unresolvable variable",
			annots:   "func main {\n    x1 = 1\n    x99 = 1\n}\n",
			wantSub:  "x99",
			wantLine: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := apply(tc.annots)
			if err == nil {
				t.Fatal("Apply accepted the malformed annotation")
			}
			var ae *AnnotationError
			if !errors.As(err, &ae) {
				t.Fatalf("error is %T (%v), want *AnnotationError", err, err)
			}
			if ae.File != "bad.ann" || ae.Line != tc.wantLine {
				t.Errorf("position %s:%d, want bad.ann:%d (error: %v)", ae.File, ae.Line, tc.wantLine, err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err.Error(), tc.wantSub)
			}
		})
	}

	// The parser rejects loop 0, but a programmatically built file can still
	// carry it; unguarded it would index fc.Loops[-1] deep inside Estimate.
	an, err := New(prog, "main", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bad := &constraint.File{Sections: []constraint.Section{{
		Func:       "main",
		LoopBounds: []constraint.LoopBound{{Loop: 0, Lo: 1, Hi: 3}},
	}}}
	err = an.Apply(bad)
	var ae *AnnotationError
	if !errors.As(err, &ae) {
		t.Fatalf("loop 0 error is %T (%v), want *AnnotationError", err, err)
	}
}
