package ipet

import (
	"strings"
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/eval"
	"cinderella/internal/march"
	"cinderella/internal/sim"
)

func analyzerFor(t *testing.T, src, root string) (*Analyzer, *asm.Executable, *cfg.Program) {
	t.Helper()
	exe, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	an, err := New(prog, root, DefaultOptions())
	if err != nil {
		t.Fatalf("ipet.New: %v", err)
	}
	return an, exe, prog
}

func annotate(t *testing.T, an *Analyzer, annots string) {
	t.Helper()
	f, err := constraint.Parse(annots)
	if err != nil {
		t.Fatalf("annotations: %v", err)
	}
	if err := an.Apply(f); err != nil {
		t.Fatalf("apply: %v", err)
	}
}

func estimate(t *testing.T, an *Analyzer) *Estimate {
	t.Helper()
	est, err := an.Estimate()
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	return est
}

// TestFig2IfThenElse reproduces the structural-constraint example of Fig. 2:
// a diamond whose arms are mutually exclusive per execution.
func TestFig2IfThenElse(t *testing.T) {
	an, _, _ := analyzerFor(t, `
main:
        beq r1, r0, .Lelse   ; B1: if (p)
        addi r2, r0, 1       ; B2: q = 1
        jmp .Ljoin
.Lelse:
        addi r2, r0, 2       ; B3: q = 2
.Ljoin:
        add r3, r2, r0       ; B4: r = q
        halt
`, "main")
	est := estimate(t, an)
	counts := est.WCET.Counts["main"]
	if counts[0] != 1 || counts[3] != 1 {
		t.Fatalf("x1/x4 = %v, want 1", counts)
	}
	if counts[1]+counts[2] != 1 {
		t.Fatalf("x2+x3 = %d, want 1 (counts %v)", counts[1]+counts[2], counts)
	}
	// The worst case takes the then arm (it carries the jmp penalty).
	if counts[1] != 1 {
		t.Fatalf("worst case should take the jmp arm: %v", counts)
	}
	// Best case takes the cheaper else arm.
	bcounts := est.BCET.Counts["main"]
	if bcounts[1] != 0 || bcounts[2] != 1 {
		t.Fatalf("best-case counts: %v", bcounts)
	}
	if est.NumSets != 1 || est.SolvedSets != 1 {
		t.Fatalf("sets: %+v", est)
	}
	if !est.AllRootIntegral {
		t.Fatal("pure structural problem should solve at the root LP")
	}
}

// TestFig3WhileLoop reproduces Fig. 3: a while loop whose bound comes from
// a user annotation; the ILP scales the body count accordingly.
func TestFig3WhileLoop(t *testing.T) {
	src := `
main:
        add r2, r1, r0       ; B1: q = p
.Lhead: slti r3, r2, 10     ; B2: while (q < 10)
        beq r3, r0, .Lexit
        addi r2, r2, 1       ; B3: q++
        jmp .Lhead
.Lexit: add r4, r2, r0       ; B4: r = q
        halt
`
	an, _, _ := analyzerFor(t, src, "main")
	annotate(t, an, "func main { loop 1: 0 .. 10 }\n")
	est := estimate(t, an)
	counts := est.WCET.Counts["main"]
	// Worst case: body (B3) runs 10 times, header 11 times.
	if counts[2] != 10 {
		t.Fatalf("body count = %d, want 10 (counts %v)", counts[2], counts)
	}
	if counts[1] != 11 {
		t.Fatalf("header count = %d, want 11", counts[1])
	}
	// Best case: zero iterations.
	if est.BCET.Counts["main"][2] != 0 {
		t.Fatalf("best-case body count = %d", est.BCET.Counts["main"][2])
	}

	// Without the annotation the ILP is unbounded and the error must name
	// the loop.
	an2, _, _ := analyzerFor(t, src, "main")
	_, err := an2.Estimate()
	if err == nil || !strings.Contains(err.Error(), "loop") {
		t.Fatalf("err = %v", err)
	}
	if missing := an2.MissingLoopBounds(); len(missing) != 1 {
		t.Fatalf("missing = %v", missing)
	}
}

// TestFig4FunctionCalls reproduces Fig. 4: two calls to store() produce two
// f-edges; the callee's counts follow d2 = f1 + f2 (eq. 12) — here realized
// as one callee instance per call site summing to the aggregate.
func TestFig4FunctionCalls(t *testing.T) {
	an, _, _ := analyzerFor(t, `
main:
        addi r2, r0, 10      ; B1: i = 10; store(i)
        call store
        shli r2, r2, 1       ; B2: n = 2*i; store(n)
        call store
        halt
store:
        add r3, r2, r0
        ret
`, "main")
	if len(an.Contexts()) != 3 { // main, store@f1, store@f2
		t.Fatalf("contexts = %d: %v", len(an.Contexts()), an.Contexts())
	}
	est := estimate(t, an)
	if got := est.WCET.Counts["store"][0]; got != 2 {
		t.Fatalf("store executes %d times, want 2", got)
	}
	if got := est.BCET.Counts["store"][0]; got != 2 {
		t.Fatalf("store best-case executes %d times, want 2", got)
	}
}

// checkDataASM is the check_data routine of Fig. 5 written at the assembly
// level with the paper's block structure. Block numbering (1-based):
//
//	x1 init, x2 while header, x3 data[i]<0 test, x4 then arm
//	(wrongone=i; morecheck=0; extra work), x5 ++i test, x6 morecheck=0,
//	x7 wrongone>=0 test, x8 return 1, x9 return 0.
const checkDataASM = `
check_data:
        la   r10, data
        addi r2, r0, 1        ; morecheck = 1
        addi r3, r0, 0        ; i = 0
        addi r4, r0, -1       ; wrongone = -1
.Lwhile:
        beq  r2, r0, .Ldone   ; x2: while (morecheck)
        shli r5, r3, 2        ; x3: if (data[i] < 0)
        add  r5, r10, r5
        lw   r6, 0(r5)
        bge  r6, r0, .Lelse
        add  r4, r3, r0       ; x4: wrongone = i; morecheck = 0
        addi r2, r0, 0
        mul  r9, r3, r3
        mul  r9, r9, r9
        jmp  .Lwhile
.Lelse:
        addi r3, r3, 1        ; x5: if (++i >= DATASIZE)
        slti r5, r3, 10
        bne  r5, r0, .Lwhile
        addi r2, r0, 0        ; x6: morecheck = 0
        jmp  .Lwhile
.Ldone:
        bge  r4, r0, .Lret0   ; x7: if (wrongone >= 0)
        addi r1, r0, 1        ; x8: return 1
        ret
.Lret0:
        addi r1, r0, 0        ; x9: return 0
        ret
        .data
data:   .space 40
`

// checkDataAnnots carries the paper's constraints (14)-(17) transcribed to
// this block numbering: the loop bound 1..10, the mutual exclusion of the
// two loop arms (eq. 16), and "line 6 and line 13 always execute together"
// (eq. 17): here x4 = x9.
const checkDataAnnots = `
func check_data {
    loop 1: 1 .. 10
    (x4 = 0 & x6 = 1) | (x4 = 1 & x6 = 0)
    x4 = x9
}
`

// checkDataAnnotsTight adds one more path fact, following the paper's
// "after that, the user can provide additional information so as to
// tighten the estimated bound": the morecheck=0 arm (x6) executes only
// after the ++i test has run DATASIZE times. Crossed with eq. (16) this
// generates four sets of which two are trivially null and pruned.
const checkDataAnnotsTight = `
func check_data {
    loop 1: 1 .. 10
    (x4 = 0 & x6 = 1) | (x4 = 1 & x6 = 0)
    x4 = x9
    (x6 = 0 & x5 <= 10) | (x6 = 1 & x5 = 10)
}
`

// TestFig5CheckData reproduces the running example: two functionality
// constraint sets, solved exactly, with zero path pessimism against the
// calculated bound (Table II row 1).
func TestFig5CheckData(t *testing.T) {
	an, exe, prog := analyzerFor(t, checkDataASM, "check_data")
	fc := prog.Funcs["check_data"]
	if len(fc.Blocks) != 9 {
		t.Fatalf("blocks = %d, want the paper's 9:\n%s", len(fc.Blocks), fc)
	}
	annotate(t, an, checkDataAnnots)
	est := estimate(t, an)
	if est.NumSets != 2 {
		t.Fatalf("sets = %d, want 2 (Table I row check_data)", est.NumSets)
	}
	if est.PrunedSets != 0 || est.SolvedSets != 2 {
		t.Fatalf("pruned/solved = %d/%d", est.PrunedSets, est.SolvedSets)
	}
	if !est.AllRootIntegral {
		t.Fatal("check_data ILPs should solve at the root LP")
	}
	_ = exe
}

// TestFig5CheckDataCalculated runs the full Experiment 1 comparison with
// the tightened annotation set: zero path pessimism in both directions.
func TestFig5CheckDataCalculated(t *testing.T) {
	an, exe, prog := analyzerFor(t, checkDataASM, "check_data")
	annotate(t, an, checkDataAnnotsTight)
	est := estimate(t, an)
	if est.NumSets != 4 || est.PrunedSets != 2 || est.SolvedSets != 2 {
		t.Fatalf("sets generated/pruned/solved = %d/%d/%d, want 4/2/2",
			est.NumSets, est.PrunedSets, est.SolvedSets)
	}

	dataAddr := exe.Symbols["data"]
	set := func(vals [10]int32) eval.Setup {
		return func(m *sim.Machine) error {
			for i, v := range vals {
				if err := m.WriteWord(dataAddr+uint32(4*i), v); err != nil {
					return err
				}
			}
			return nil
		}
	}
	var worstData, bestData [10]int32
	for i := range worstData {
		worstData[i] = 1
	}
	worstData[9] = -1 // 10 iterations, exit through the expensive arm
	bestData[0] = -1  // 1 iteration

	calc, err := eval.CalculatedBound(exe, prog, "check_data",
		blockCostMap(an, prog), set(worstData), set(bestData), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// The all-positive data set exits through the x6 arm; it may or may
	// not beat the then-arm exit, so take the max of both candidates, as
	// the paper's "careful study of the program" does.
	var cleanData [10]int32
	for i := range cleanData {
		cleanData[i] = 1
	}
	counts2, err := eval.CountRun(exe, prog, "check_data", set(cleanData), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	alt, err := eval.Calculated(counts2, blockCostMap(an, prog), true)
	if err != nil {
		t.Fatal(err)
	}
	if alt > calc.Hi {
		calc.Hi = alt
	}

	estBound := eval.Bound{Lo: est.BCET.Cycles, Hi: est.WCET.Cycles}
	if !estBound.Encloses(calc) {
		t.Fatalf("estimated %v does not enclose calculated %v", estBound, calc)
	}
	// Zero path pessimism: with the full constraints the analysis is exact.
	if estBound.Hi != calc.Hi {
		t.Fatalf("WCET pessimism: estimated %d vs calculated %d", estBound.Hi, calc.Hi)
	}
	if estBound.Lo != calc.Lo {
		t.Fatalf("BCET pessimism: estimated %d vs calculated %d", estBound.Lo, calc.Lo)
	}
}

// TestFig5ConstraintsTighten: dropping eq. (16)/(17) loosens the bound, as
// the paper's "additional information ... to tighten the estimated bound"
// narrative describes.
func TestFig5ConstraintsTighten(t *testing.T) {
	anLoose, _, _ := analyzerFor(t, checkDataASM, "check_data")
	annotate(t, anLoose, "func check_data { loop 1: 1 .. 10 }\n")
	loose := estimate(t, anLoose)

	anTight, _, _ := analyzerFor(t, checkDataASM, "check_data")
	annotate(t, anTight, checkDataAnnots)
	tight := estimate(t, anTight)

	if tight.WCET.Cycles >= loose.WCET.Cycles {
		t.Fatalf("constraints did not tighten: tight %d vs loose %d",
			tight.WCET.Cycles, loose.WCET.Cycles)
	}
	// The loose solution takes the expensive then-arm every iteration.
	if loose.WCET.Counts["check_data"][3] != 10 {
		t.Fatalf("loose x4 = %d, want 10", loose.WCET.Counts["check_data"][3])
	}
	// The tight solution takes it at most once.
	if tight.WCET.Counts["check_data"][3] > 1 {
		t.Fatalf("tight x4 = %d, want <= 1", tight.WCET.Counts["check_data"][3])
	}
}

// TestFig6CallerContext reproduces eq. (18): clear_data executes only when
// check_data (called at f1) returns 0 — expressed with a context-qualified
// variable.
func TestFig6CallerContext(t *testing.T) {
	src := checkDataASM + `
        .text
task:
        call check_data       ; B1: status = check_data()  [f1]
        bne  r1, r0, .Lskip   ; B2: if (!status)
        call clear_data       ; B3: clear_data()           [f2]
.Lskip:
        halt                  ; B4
clear_data:
        la   r10, data
        addi r3, r0, 0
.Lclr:  shli r5, r3, 2
        add  r5, r10, r5
        sw   r0, 0(r5)
        addi r3, r3, 1
        slti r5, r3, 10
        bne  r5, r0, .Lclr
        ret
`
	an, _, _ := analyzerFor(t, src, "task")
	// check_data's x9 (return 0) happens iff wrongone >= 0; clear_data
	// (task x3) executes exactly when that instance returned 0.
	annotate(t, an, checkDataAnnots+`
func task {
    x3 = check_data.x9 @ f1
}
func clear_data {
    loop 1: 10 .. 10
}
`)
	est := estimate(t, an)
	// In the worst case clear_data runs, so check_data's return-0 block
	// must be taken in the f1 instance.
	if est.WCET.Counts["task"][2] != 1 {
		t.Fatalf("task x3 = %d (counts %v)", est.WCET.Counts["task"][2], est.WCET.Counts["task"])
	}
	if est.WCET.Counts["check_data"][8] != 1 {
		t.Fatalf("check_data x9 = %d", est.WCET.Counts["check_data"][8])
	}
	// Best case: check_data returns 1 and clear_data never runs.
	if est.BCET.Counts["clear_data"][0] != 0 {
		t.Fatalf("best-case clear_data ran: %v", est.BCET.Counts["clear_data"])
	}
}

// blockCostMap adapts analyzer costs for the eval package.
func blockCostMap(an *Analyzer, prog *cfg.Program) map[string][]march.BlockCost {
	out := map[string][]march.BlockCost{}
	for name := range prog.Funcs {
		out[name] = an.BlockCosts(name)
	}
	return out
}
