package ipet

import (
	"strings"
	"testing"
)

func TestDumpILP(t *testing.T) {
	an, _, _ := analyzerFor(t, checkDataASM, "check_data")
	annotate(t, an, checkDataAnnots)
	var b strings.Builder
	if err := an.DumpILP(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"variables: 23",
		"ctx 0: check_data",
		"worst-case objective",
		"x1 = sum(in)",
		"d1 = 1",
		"loop 1 upper 10",
		"functionality constraint sets: 2 generated, 0 pruned as null",
		"set 1:",
		"set 2:",
		"check_data.x4 - check_data.x9 = 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpILPNoAnnotations(t *testing.T) {
	an, _, _ := analyzerFor(t, `
main:
        beq r1, r0, .L
        nop
.L:     halt
`, "main")
	var b strings.Builder
	if err := an.DumpILP(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(empty: structural and loop constraints only)") {
		t.Errorf("dump missing empty-set marker:\n%s", b.String())
	}
}
