package ipet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cinderella/internal/autobound"
	"cinderella/internal/cc"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/progfuzz"
)

// FuzzEstimateSound is the soundness metamorphic property of the anytime
// layer: for any program and any resource budget, the degraded estimate
// must bracket the unrestricted one — WCET from above, BCET from below —
// and a report claiming Exact must equal it. Programs come from progfuzz
// via the real compiler; disjunctions are integer tautologies
// (x = 0) | (x >= 1) over f's blocks, which leave the exact bound
// untouched while multiplying the constraint sets the budget has to cut.
func FuzzEstimateSound(f *testing.F) {
	f.Add(int64(1), uint16(1), uint16(1), uint16(3))
	f.Add(int64(7), uint16(40), uint16(2), uint16(2))
	f.Add(int64(23), uint16(0), uint16(4), uint16(1))
	f.Add(int64(1000), uint16(500), uint16(8), uint16(0))
	f.Add(int64(4242), uint16(3), uint16(1), uint16(3))
	f.Fuzz(func(t *testing.T, seed int64, budget, maxSets, nDisj uint16) {
		src := progfuzz.Generate(seed)
		exe, _, err := cc.Build(src)
		if err != nil {
			t.Skip() // not a generatable program under this mutated seed
		}
		prog, err := cfg.Build(exe)
		if err != nil {
			t.Skip()
		}
		res := autobound.Derive(prog)
		totalLoops := 0
		for _, fc := range prog.Funcs {
			totalLoops += len(fc.Loops)
		}
		if len(res.Bounds) != totalLoops {
			t.Skip() // a loop the derivation cannot bound: exact run impossible
		}

		// Tautological disjunctions over f's blocks: true of every integer
		// execution, so the exact bound is unchanged while the cross
		// product doubles per formula.
		fc := prog.Funcs["f"]
		var ab strings.Builder
		ab.WriteString("func f {\n")
		for i := 0; i < int(nDisj%4); i++ {
			blk := 1 + (int(budget)+i*3)%len(fc.Blocks)
			fmt.Fprintf(&ab, "    (x%d = 0) | (x%d >= 1)\n", blk, blk)
		}
		ab.WriteString("}\n")
		taut, err := constraint.Parse(ab.String())
		if err != nil {
			t.Fatalf("tautology annotations: %v\n%s", err, ab.String())
		}
		annots := constraint.Merge(res.File(), taut)

		estimate := func(mutate func(*Options)) *Estimate {
			opts := DefaultOptions()
			opts.Workers = 1
			if mutate != nil {
				mutate(&opts)
			}
			an, err := New(prog, "f", opts)
			if err != nil {
				t.Fatalf("seed %d: New: %v", seed, err)
			}
			if err := an.Apply(annots); err != nil {
				t.Fatalf("seed %d: Apply: %v", seed, err)
			}
			est, err := an.Estimate()
			if err != nil {
				t.Fatalf("seed %d: estimate: %v\n%s", seed, err, src)
			}
			return est
		}

		exact := estimate(nil)
		if !exact.WCET.Exact || !exact.BCET.Exact {
			t.Fatalf("seed %d: unrestricted run not exact: WCET %+v BCET %+v",
				seed, exact.WCET, exact.BCET)
		}
		cases := []struct {
			label  string
			mutate func(*Options)
		}{
			{"budget", func(o *Options) { o.Budget = 1 + int(budget%512) }},
			{"widen", func(o *Options) {
				o.MaxSets = 1 + int(maxSets%8)
				o.WidenSets = true
			}},
			{"budget+widen", func(o *Options) {
				o.Budget = 1 + int(budget%64)
				o.MaxSets = 1 + int(maxSets%4)
				o.WidenSets = true
			}},
			{"deadline", func(o *Options) {
				o.Deadline = time.Duration(1+budget%5) * time.Microsecond
			}},
			{"certify", func(o *Options) { o.Certify = true }},
		}
		for _, tc := range cases {
			got := estimate(tc.mutate)
			checkBrackets(t, fmt.Sprintf("seed %d %s", seed, tc.label), exact, got)
			if tc.label == "certify" {
				// An unrestricted certified run must reproduce the exact
				// bound precisely (not merely bracket it), with every claim
				// backed and zero failures on a healthy solver.
				if got.WCET.Cycles != exact.WCET.Cycles || got.BCET.Cycles != exact.BCET.Cycles {
					t.Errorf("seed %d certify: bounds [%d, %d] != exact [%d, %d]",
						seed, got.BCET.Cycles, got.WCET.Cycles, exact.BCET.Cycles, exact.WCET.Cycles)
				}
				if !got.WCET.Certified || !got.BCET.Certified {
					t.Errorf("seed %d certify: uncertified bounds: %+v / %+v", seed, got.WCET, got.BCET)
				}
				if got.Stats.CertFailures != 0 {
					t.Errorf("seed %d certify: %d certificate failures on a healthy solver",
						seed, got.Stats.CertFailures)
				}
			}
		}
	})
}
