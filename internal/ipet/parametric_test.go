package ipet

import (
	"errors"
	"strings"
	"testing"

	"cinderella/internal/constraint"
)

// concreteAt runs the fully concrete path for one parameter point: bind the
// symbols, fresh one-shot analyzer, Estimate. It is the oracle every
// formula answer must bit-match.
func concreteAt(t *testing.T, annots string, params map[string]int64, opts Options) (*Estimate, error) {
	t.Helper()
	prog := checkDataProgram(t)
	bound, err := parseAnnots(t, annots).Bind(params)
	if err != nil {
		return nil, err
	}
	an, err := New(prog, "check_data", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Apply(bound); err != nil {
		return nil, err
	}
	return an.Estimate()
}

// TestParametrizeLoopBound: a symbolic loop upper bound swept over its
// domain — every point the formula covers must bit-match the concrete
// solver in both directions, with no fallbacks.
func TestParametrizeLoopBound(t *testing.T) {
	const annots = `
func check_data {
    loop 1: 1 .. n1
    (x4 = 0 & x6 = 1) | (x4 = 1 & x6 = 0)
    x4 = x9
}
`
	prog := checkDataProgram(t)
	opts := DefaultOptions()
	sess, err := Prepare(prog, "check_data", opts)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Parametrize(parseAnnots(t, annots), []ParamSpec{{Name: "n1", Lo: 1, Hi: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if pb.Pieces() == 0 {
		t.Fatal("no pieces enumerated")
	}
	for n := int64(1); n <= 16; n++ {
		w, _, wok := pb.Eval([]int64{n})
		b, _, bok := pb.EvalBCET([]int64{n})
		want, err := concreteAt(t, annots, map[string]int64{"n1": n}, opts)
		if err != nil {
			t.Fatalf("n1=%d: concrete oracle: %v", n, err)
		}
		if !wok || !bok {
			t.Fatalf("n1=%d: formula does not cover the point (pieces: %d)", n, pb.Pieces())
		}
		if w != want.WCET.Cycles || b != want.BCET.Cycles {
			t.Fatalf("n1=%d: formula [%d, %d], concrete [%d, %d]", n, b, w, want.BCET.Cycles, want.WCET.Cycles)
		}
	}
	st := pb.Stats()
	if st.ParamFallbacks != 0 {
		t.Fatalf("expected no fallbacks on a fully covered sweep, got %d", st.ParamFallbacks)
	}
	if st.FormulaEvals != 32 {
		t.Fatalf("FormulaEvals = %d, want 32", st.FormulaEvals)
	}
	if st.ParamRegions != pb.Pieces() {
		t.Fatalf("ParamRegions = %d, Pieces = %d", st.ParamRegions, pb.Pieces())
	}
	if !strings.Contains(pb.Describe(), "WCET(n1)") {
		t.Fatalf("Describe missing WCET header:\n%s", pb.Describe())
	}
}

// TestParametrizeFormulaSymbol: a parameter inside a functionality formula
// (annotation constant), including values that make the scenario
// infeasible — the formula must agree with the concrete path on both the
// bound and the infeasibility, via the typed error.
func TestParametrizeFormulaSymbol(t *testing.T) {
	const annots = `
func check_data {
    loop 1: 1 .. 10
    (x4 = 0 & x6 = 1) | (x4 = 1 & x6 = 0)
    x4 = x9
    x2 = n1
}
`
	prog := checkDataProgram(t)
	opts := DefaultOptions()
	sess, err := Prepare(prog, "check_data", opts)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Parametrize(parseAnnots(t, annots), []ParamSpec{{Name: "n1", Lo: 0, Hi: 14}})
	if err != nil {
		t.Fatal(err)
	}
	feasiblePoints := 0
	for n := int64(0); n <= 14; n++ {
		got, gotErr := pb.EstimateAt([]int64{n})
		want, wantErr := concreteAt(t, annots, map[string]int64{"n1": n}, opts)
		var gotInf, wantInf *InfeasibleError
		switch {
		case errors.As(gotErr, &gotInf) && errors.As(wantErr, &wantInf):
			continue
		case gotErr != nil || wantErr != nil:
			t.Fatalf("n1=%d: formula err %v, concrete err %v", n, gotErr, wantErr)
		}
		feasiblePoints++
		if got.WCET.Cycles != want.WCET.Cycles || got.BCET.Cycles != want.BCET.Cycles {
			t.Fatalf("n1=%d: formula [%d, %d], concrete [%d, %d]",
				n, got.BCET.Cycles, got.WCET.Cycles, want.BCET.Cycles, want.WCET.Cycles)
		}
	}
	if feasiblePoints == 0 {
		t.Fatal("every swept point was infeasible; the test exercised nothing")
	}
}

// TestParametrizeCertified: under Options.Certify every retained feasible
// piece is re-verified through the exact certificate checker, and the
// synthesized reports carry Certified.
func TestParametrizeCertified(t *testing.T) {
	const annots = `
func check_data {
    loop 1: 1 .. n1
    (x4 = 0 & x6 = 1) | (x4 = 1 & x6 = 0)
    x4 = x9
}
`
	prog := checkDataProgram(t)
	opts := DefaultOptions()
	opts.Certify = true
	sess, err := Prepare(prog, "check_data", opts)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Parametrize(parseAnnots(t, annots), []ParamSpec{{Name: "n1", Lo: 2, Hi: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if !pb.Certified() {
		t.Fatal("Certified() false under Options.Certify")
	}
	est, err := pb.EstimateAt([]int64{5})
	if err != nil {
		t.Fatal(err)
	}
	if !est.WCET.Certified || !est.BCET.Certified {
		t.Fatalf("formula report not certified: %+v %+v", est.WCET, est.BCET)
	}
	want, err := concreteAt(t, annots, map[string]int64{"n1": 5}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if est.WCET.Cycles != want.WCET.Cycles || est.BCET.Cycles != want.BCET.Cycles {
		t.Fatalf("certified formula [%d, %d], concrete [%d, %d]",
			est.BCET.Cycles, est.WCET.Cycles, want.BCET.Cycles, want.WCET.Cycles)
	}
}

// TestParametrizeFallback: a query outside the declared domain box is
// answered by the concrete fallback and counted as such.
func TestParametrizeFallback(t *testing.T) {
	const annots = `
func check_data {
    loop 1: 1 .. n1
    (x4 = 0 & x6 = 1) | (x4 = 1 & x6 = 0)
    x4 = x9
}
`
	prog := checkDataProgram(t)
	opts := DefaultOptions()
	sess, err := Prepare(prog, "check_data", opts)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Parametrize(parseAnnots(t, annots), []ParamSpec{{Name: "n1", Lo: 1, Hi: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pb.Eval([]int64{20}); ok {
		t.Fatal("Eval claimed coverage outside the domain box")
	}
	est, err := pb.EstimateAt([]int64{20})
	if err != nil {
		t.Fatal(err)
	}
	want, err := concreteAt(t, annots, map[string]int64{"n1": 20}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if est.WCET.Cycles != want.WCET.Cycles || est.BCET.Cycles != want.BCET.Cycles {
		t.Fatalf("fallback [%d, %d], concrete [%d, %d]",
			est.BCET.Cycles, est.WCET.Cycles, want.BCET.Cycles, want.WCET.Cycles)
	}
	if st := pb.Stats(); st.ParamFallbacks != 1 || est.Stats.ParamFallbacks != 1 {
		t.Fatalf("fallback not counted: bound stats %+v, report stats %+v", st, est.Stats)
	}
}

// TestUnboundSymbolError: symbolic annotations reaching a concrete Estimate
// fail with the typed, positioned error instead of a silent zero.
func TestUnboundSymbolError(t *testing.T) {
	prog := checkDataProgram(t)
	an, err := New(prog, "check_data", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := parseAnnotsNamed(t, "param.ann", `
func check_data {
    loop 1: 1 .. n1
    (x4 = 0 & x6 = 1) | (x4 = 1 & x6 = 0)
    x4 = x9
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Apply(f); err != nil {
		t.Fatalf("Apply must accept symbolic bounds: %v", err)
	}
	_, err = an.Estimate()
	var ue *UnboundSymbolError
	if !errors.As(err, &ue) {
		t.Fatalf("Estimate error = %v, want *UnboundSymbolError", err)
	}
	if len(ue.Symbols) != 1 || ue.Symbols[0] != "n1" {
		t.Fatalf("Symbols = %v, want [n1]", ue.Symbols)
	}
	if ue.File != "param.ann" || ue.Line == 0 {
		t.Fatalf("error not positioned: %+v", ue)
	}
	if !strings.Contains(err.Error(), "param.ann") || !strings.Contains(err.Error(), "n1") {
		t.Fatalf("error message lacks position or symbol: %v", err)
	}
}

// TestParametrizeValidation pins the spec-validation failures.
func TestParametrizeValidation(t *testing.T) {
	const annots = `
func check_data {
    loop 1: 1 .. n1
    (x4 = 0 & x6 = 1) | (x4 = 1 & x6 = 0)
    x4 = x9
}
`
	prog := checkDataProgram(t)
	sess, err := Prepare(prog, "check_data", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	file := parseAnnots(t, annots)
	cases := []struct {
		name  string
		specs []ParamSpec
		want  string
	}{
		{"missing", []ParamSpec{{Name: "n2", Lo: 1, Hi: 4}}, "no domain was declared"},
		{"unused", []ParamSpec{{Name: "n1", Lo: 1, Hi: 4}, {Name: "n2", Lo: 1, Hi: 4}}, "does not occur"},
		{"empty-domain", []ParamSpec{{Name: "n1", Lo: 5, Hi: 2}}, "empty domain"},
		{"invalid-bound", []ParamSpec{{Name: "n1", Lo: 0, Hi: 4}}, "lower bound 1 above upper bound 0"},
		{"none", nil, "at least one parameter"},
	}
	for _, tc := range cases {
		_, err := sess.Parametrize(file, tc.specs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestParamEvalNoAllocs: the Eval hot path must not allocate.
func TestParamEvalNoAllocs(t *testing.T) {
	const annots = `
func check_data {
    loop 1: 1 .. n1
    (x4 = 0 & x6 = 1) | (x4 = 1 & x6 = 0)
    x4 = x9
}
`
	prog := checkDataProgram(t)
	sess, err := Prepare(prog, "check_data", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Parametrize(parseAnnots(t, annots), []ParamSpec{{Name: "n1", Lo: 1, Hi: 16}})
	if err != nil {
		t.Fatal(err)
	}
	params := []int64{7}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, ok := pb.Eval(params); !ok {
			t.Fatal("Eval lost coverage")
		}
		if _, _, ok := pb.EvalBCET(params); !ok {
			t.Fatal("EvalBCET lost coverage")
		}
	})
	if allocs != 0 {
		t.Fatalf("Eval allocates %.1f objects per call, want 0", allocs)
	}
}

// parseAnnotsNamed parses with a file name so positions are stamped.
func parseAnnotsNamed(t *testing.T, name, src string) (*constraint.File, error) {
	t.Helper()
	return constraint.ParseNamed(name, src)
}
