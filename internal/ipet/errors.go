package ipet

import (
	"fmt"
	"strings"
)

// InfeasibleError reports that the functionality annotations contradict the
// structural constraints: every conjunctive constraint set is infeasible
// against the flow equations, or (AllNull) every set was already pruned as
// trivially null before any solve ran. It distinguishes an annotation
// contradiction — something the user can fix by revising their facts — from
// a solver failure. Retrieve it with errors.As.
type InfeasibleError struct {
	// Sets is the number of constraint sets after DNF expansion.
	Sets int
	// AllNull reports that every set was pruned as trivially null (by the
	// single-variable interval check) before the solver ran.
	AllNull bool
}

func (e *InfeasibleError) Error() string {
	if e.AllNull {
		return fmt.Sprintf("ipet: all %d functionality constraint sets are null", e.Sets)
	}
	return "ipet: every functionality constraint set is infeasible against the structural constraints"
}

// UnboundSymbolError reports that annotations carrying parameter symbols
// (a symbolic loop bound like "loop 1: 1 .. n1", or a formula constant like
// "x3 <= 5 n1") reached a concrete Estimate. Symbols have no concrete value
// there: bind them first (constraint.File.Bind) or analyze them
// parametrically (Session.Parametrize). Retrieve it with errors.As.
type UnboundSymbolError struct {
	// Symbols lists the unbound parameter names, sorted.
	Symbols []string
	// File and Line locate the first annotation that uses one, when known.
	File string
	Line int
}

func (e *UnboundSymbolError) Error() string {
	pos := e.File
	if pos == "" {
		pos = "annotations"
	}
	if e.Line > 0 {
		pos = fmt.Sprintf("%s:%d", pos, e.Line)
	}
	return fmt.Sprintf("ipet: %s: unbound parameter symbols %s — bind them with constraint.File.Bind or analyze with Session.Parametrize",
		pos, strings.Join(e.Symbols, ", "))
}

// AnnotationError is a structured annotation diagnostic: what is wrong and
// where (file and line of the offending annotation, when known). Apply and
// Estimate wrap every annotation-content failure in one of these so callers
// can point the user at the exact source position.
type AnnotationError struct {
	// File is the annotation file name as given to constraint.ParseNamed;
	// empty when the file was parsed without a name or built in memory.
	File string
	// Line is the 1-based source line of the offending annotation; 0 when
	// the annotation was built programmatically.
	Line int
	// Msg describes the problem.
	Msg string
}

func (e *AnnotationError) Error() string {
	pos := e.File
	if pos == "" {
		pos = "annotations"
	}
	if e.Line > 0 {
		pos = fmt.Sprintf("%s:%d", pos, e.Line)
	}
	return fmt.Sprintf("ipet: %s: %s", pos, e.Msg)
}
