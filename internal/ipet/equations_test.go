package ipet

import (
	"testing"

	"cinderella/internal/constraint"
	"cinderella/internal/ilp"
)

// These tests assert the *literal* structural equations of the paper,
// coefficient by coefficient, not just their solutions.

// eqSet normalizes a constraint system into comparable strings of the form
// rendered by ilp.Problem, keyed per equation.
func hasEquation(t *testing.T, cons []ilp.Constraint, coeffs map[int]float64, rel ilp.Relation, rhs float64) bool {
	t.Helper()
	for _, c := range cons {
		if c.Rel != rel || c.RHS != rhs || len(c.Coeffs) != len(coeffs) {
			continue
		}
		match := true
		for v, want := range coeffs {
			if c.Coeffs[v] != want {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// TestFig2Equations checks eqs. (2)-(5): for the if-then-else CFG,
// x1 = d1 = d2 + d3, x2 = d2 = d4, x3 = d3 = d5, x4 = d4 + d5 = d6.
func TestFig2Equations(t *testing.T) {
	an, _, _ := analyzerFor(t, `
main:
        beq r1, r0, .Lelse
        addi r2, r0, 1
        jmp .Ljoin
.Lelse: addi r2, r0, 2
.Ljoin: add r3, r2, r0
        halt
`, "main")
	cons := an.StructuralConstraints()

	// Variable indices: blocks 0..3 then edges 4..9 (entry d1, then the
	// CFG edges in discovery order: taken d3', fall d2', jmp, fall, exit).
	x := func(i int) int { return an.blockVar(0, i) }
	d := func(i int) int { return an.edgeVar(0, i) }

	// x1 = d1 (the entry edge) — eq (2) left half.
	if !hasEquation(t, cons, map[int]float64{x(0): 1, d(0): -1}, ilp.EQ, 0) {
		t.Error("missing x1 = d1")
	}
	// x1 = d_taken + d_fall — eq (2) right half (paper's d2 + d3).
	if !hasEquation(t, cons, map[int]float64{x(0): 1, d(1): -1, d(2): -1}, ilp.EQ, 0) {
		t.Error("missing x1 = d2 + d3")
	}
	// x4 = d4 + d5 (join in-flow), x4 = d6 (exit) — eq (5).
	fc := an.Prog.Funcs["main"]
	join := fc.Blocks[3]
	inCoeffs := map[int]float64{x(3): 1}
	for _, e := range join.In {
		inCoeffs[d(e)] = -1
	}
	if len(join.In) != 2 || !hasEquation(t, cons, inCoeffs, ilp.EQ, 0) {
		t.Error("missing x4 = d4 + d5")
	}
	outCoeffs := map[int]float64{x(3): 1}
	for _, e := range join.Out {
		outCoeffs[d(e)] = -1
	}
	if len(join.Out) != 1 || !hasEquation(t, cons, outCoeffs, ilp.EQ, 0) {
		t.Error("missing x4 = d6")
	}
	// d1 = 1 — eq (13).
	if !hasEquation(t, cons, map[int]float64{d(0): 1}, ilp.EQ, 1) {
		t.Error("missing d1 = 1")
	}
	// Exactly 2 equations per block plus the entry equation.
	if len(cons) != 2*len(fc.Blocks)+1 {
		t.Errorf("constraint count = %d, want %d", len(cons), 2*len(fc.Blocks)+1)
	}
}

// TestFig3Equations checks eq. (7): the loop header's count equals both
// d2 + d4 (entry + back edge) and d3 + d5 (body + exit).
func TestFig3Equations(t *testing.T) {
	an, _, _ := analyzerFor(t, `
main:
        add r2, r1, r0
.Lhead: slti r3, r2, 10
        beq r3, r0, .Lexit
        addi r2, r2, 1
        jmp .Lhead
.Lexit: add r4, r2, r0
        halt
`, "main")
	cons := an.StructuralConstraints()
	fc := an.Prog.Funcs["main"]
	header := fc.Blocks[1]
	if len(header.In) != 2 || len(header.Out) != 2 {
		t.Fatalf("header degree: in %d out %d", len(header.In), len(header.Out))
	}
	x2 := an.blockVar(0, 1)
	in := map[int]float64{x2: 1}
	for _, e := range header.In {
		in[an.edgeVar(0, e)] = -1
	}
	out := map[int]float64{x2: 1}
	for _, e := range header.Out {
		out[an.edgeVar(0, e)] = -1
	}
	if !hasEquation(t, cons, in, ilp.EQ, 0) {
		t.Error("missing x2 = d2 + d4")
	}
	if !hasEquation(t, cons, out, ilp.EQ, 0) {
		t.Error("missing x2 = d3 + d5")
	}
}

// TestFig4Equations checks eqs. (10)-(12): x1 = d1 = f1, x2 = f1 = f2, and
// the callee's entry flow d2 = f1 + f2 (realized as one instance per call
// site whose entries sum to the f-variables).
func TestFig4Equations(t *testing.T) {
	an, _, _ := analyzerFor(t, `
main:
        addi r2, r0, 10
        call store
        shli r2, r2, 1
        call store
        halt
store:
        add r3, r2, r0
        ret
`, "main")
	cons := an.StructuralConstraints()
	fc := an.Prog.Funcs["main"]
	f1 := an.edgeVar(0, fc.Calls[0])
	f2 := an.edgeVar(0, fc.Calls[1])
	x1 := an.blockVar(0, 0)
	x2 := an.blockVar(0, 1)

	// x1 = f1 (out-flow of the first call block).
	if !hasEquation(t, cons, map[int]float64{x1: 1, f1: -1}, ilp.EQ, 0) {
		t.Error("missing x1 = f1")
	}
	// x2 = f1 (in) and x2 = f2 (out) — eq (11).
	if !hasEquation(t, cons, map[int]float64{x2: 1, f1: -1}, ilp.EQ, 0) {
		t.Error("missing x2 = f1")
	}
	if !hasEquation(t, cons, map[int]float64{x2: 1, f2: -1}, ilp.EQ, 0) {
		t.Error("missing x2 = f2")
	}
	// Eq (12): each store instance's entry equals its call site, so the
	// aggregate entry flow is f1 + f2.
	storeFC := an.Prog.Funcs["store"]
	var links int
	for _, ctx := range an.Contexts() {
		if ctx.Func != "store" {
			continue
		}
		fv := f1
		if ctx.Path[len(ctx.Path)-1].EdgeID == fc.Calls[1] {
			fv = f2
		}
		entry := an.edgeVar(ctx.ID, storeFC.EntryEdge)
		if !hasEquation(t, cons, map[int]float64{entry: 1, fv: -1}, ilp.EQ, 0) {
			t.Errorf("missing d_entry(%s) = f", ctx)
		}
		links++
	}
	if links != 2 {
		t.Fatalf("store instances = %d", links)
	}
}

// TestApplyErrors covers the diagnostic paths of annotation application.
func TestApplyErrors(t *testing.T) {
	an, _, _ := analyzerFor(t, checkDataASM, "check_data")
	cases := []struct {
		annots string
		sub    string
	}{
		{"func nosuch { x1 = 1 }", "unknown function"},
		{"func check_data { loop 9: 1 .. 2 }", "annotation names loop 9"},
	}
	for _, c := range cases {
		f, err := constraint.Parse(c.annots)
		if err != nil {
			t.Fatal(err)
		}
		if err := an.Apply(f); err == nil || !containsStr(err.Error(), c.sub) {
			t.Errorf("Apply(%q) err = %v, want %q", c.annots, err, c.sub)
		}
	}
}

// TestResolveErrors covers bad variable references in formulas.
func TestResolveErrors(t *testing.T) {
	srcWithCall := checkDataASM + `
        .text
task:
        call check_data
        halt
`
	cases := []struct {
		annots string
		sub    string
	}{
		{"func check_data { x99 = 1 \n loop 1: 1 .. 10 }", "names x99"},
		{"func check_data { d99 = 1 \n loop 1: 1 .. 10 }", "names d99"},
		{"func check_data { f1 = 1 \n loop 1: 1 .. 10 }", "call sites"},
		{"func task { x1 = check_data.x1 @ f9 }\nfunc check_data { loop 1: 1 .. 10 }", "names f9"},
		{"func task { x1 = task.x1 @ f1 }\nfunc check_data { loop 1: 1 .. 10 }", "calls check_data"},
	}
	for _, c := range cases {
		an, _, _ := analyzerFor(t, srcWithCall, "task")
		f, err := constraint.Parse(c.annots)
		if err != nil {
			t.Fatal(err)
		}
		if err := an.Apply(f); err != nil {
			if !containsStr(err.Error(), c.sub) {
				t.Errorf("Apply(%q) = %v, want %q", c.annots, err, c.sub)
			}
			continue
		}
		_, err = an.Estimate()
		if err == nil || !containsStr(err.Error(), c.sub) {
			t.Errorf("Estimate after %q = %v, want %q", c.annots, err, c.sub)
		}
	}
}

// TestStructuralNetworkOnFigures: the Section III.D theorem applies to all
// the figure examples.
func TestStructuralNetworkOnFigures(t *testing.T) {
	srcs := []string{
		"main:\n beq r1, r0, .L\n nop\n.L: halt\n",
		checkDataASM,
	}
	for i, src := range srcs {
		an, _, _ := analyzerFor(t, src, firstFunc(src))
		if !an.StructuralNetworkMatrix() {
			t.Errorf("case %d: structural system not a network matrix", i)
		}
	}
}

func firstFunc(src string) string {
	if containsStr(src, "check_data:") {
		return "check_data"
	}
	return "main"
}
