package ipet

import (
	"fmt"
	"io"

	"cinderella/internal/ilp"
)

// DumpILP writes the exact integer linear programs the analysis solves, in
// the readable form the paper uses in Section III.D when it shows the two
// check_data constraint sets side by side: the worst-case objective, the
// structural constraints, the loop-bound constraints, and each surviving
// functionality constraint set.
func (a *Analyzer) DumpILP(w io.Writer) error {
	sets, widened, total, pruned, err := a.buildSets()
	if err != nil {
		return err
	}
	obj, err := a.worstObjective()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "variables: %d (block and edge counts across %d contexts)\n",
		a.nVars, len(a.contexts))
	for _, ctx := range a.contexts {
		fc := a.Prog.Funcs[ctx.Func]
		fmt.Fprintf(w, "  ctx %d: %s  (x1..x%d, d1..d%d)\n",
			ctx.ID, ctx, len(fc.Blocks), len(fc.Edges))
	}

	base := &ilp.Problem{
		Sense:     ilp.Maximize,
		NumVars:   obj.nVars,
		Objective: obj.coeffs,
	}
	base.Constraints = append(base.Constraints, a.StructuralConstraints()...)
	base.Constraints = append(base.Constraints, a.LoopBoundConstraints()...)
	base.Constraints = append(base.Constraints, obj.extra...)

	fmt.Fprintf(w, "\nworst-case objective and shared constraints:\n%s", base)
	fmt.Fprintf(w, "\nfunctionality constraint sets: %d generated, %d pruned as null\n",
		total, pruned)
	for i, set := range sets {
		mark := ""
		if widened[i] {
			mark = " (widened: sound over-approximation of an overflowing disjunction)"
		}
		fmt.Fprintf(w, "\nset %d:%s\n", i+1, mark)
		if len(set) == 0 {
			fmt.Fprintf(w, "  (empty: structural and loop constraints only)\n")
			continue
		}
		for _, c := range set {
			line := c.Name
			if line == "" {
				p := &ilp.Problem{NumVars: a.nVars, Constraints: []ilp.Constraint{c}}
				line = p.String()
			}
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	return nil
}
