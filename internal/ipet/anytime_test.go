package ipet

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"cinderella/internal/asm"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
)

// analyzerWith assembles src, applies annots, and returns the analyzer so
// tests can drive EstimateContext directly.
func analyzerWith(t *testing.T, src, annots string, mutate func(*Options)) *Analyzer {
	t.Helper()
	exe, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	opts := DefaultOptions()
	if mutate != nil {
		mutate(&opts)
	}
	an, err := New(prog, "main", opts)
	if err != nil {
		t.Fatalf("ipet.New: %v", err)
	}
	if annots != "" {
		f, err := constraint.Parse(annots)
		if err != nil {
			t.Fatalf("annotations: %v", err)
		}
		if err := an.Apply(f); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	return an
}

// checkBrackets asserts the anytime soundness property: a degraded
// estimate must enclose the exact one (WCET from above, BCET from below),
// and Exact must imply equality.
func checkBrackets(t *testing.T, label string, exact, got *Estimate) {
	t.Helper()
	if got.WCET.Cycles < exact.WCET.Cycles {
		t.Errorf("%s: WCET %d below exact %d — unsound", label, got.WCET.Cycles, exact.WCET.Cycles)
	}
	if got.BCET.Cycles > exact.BCET.Cycles {
		t.Errorf("%s: BCET %d above exact %d — unsound", label, got.BCET.Cycles, exact.BCET.Cycles)
	}
	if got.WCET.Exact && got.WCET.Cycles != exact.WCET.Cycles {
		t.Errorf("%s: WCET claims exact but %d != %d", label, got.WCET.Cycles, exact.WCET.Cycles)
	}
	if got.BCET.Exact && got.BCET.Cycles != exact.BCET.Cycles {
		t.Errorf("%s: BCET claims exact but %d != %d", label, got.BCET.Cycles, exact.BCET.Cycles)
	}
	for _, rep := range []struct {
		name string
		r    BoundReport
	}{{"WCET", got.WCET}, {"BCET", got.BCET}} {
		if rep.r.Exact && rep.r.Slack != 0 {
			t.Errorf("%s: %s exact with slack %d", label, rep.name, rep.r.Slack)
		}
		if rep.r.Slack < -1 {
			t.Errorf("%s: %s slack %d below the unknown sentinel", label, rep.name, rep.r.Slack)
		}
	}
	// Slack is a claim about the true bound's distance from the reported
	// one; verify it against the exact oracle when known.
	if s := got.WCET.Slack; s >= 0 && exact.WCET.Cycles < got.WCET.Cycles-s {
		t.Errorf("%s: WCET slack %d does not cover exact %d (reported %d)",
			label, s, exact.WCET.Cycles, got.WCET.Cycles)
	}
	if s := got.BCET.Slack; s >= 0 && exact.BCET.Cycles > got.BCET.Cycles+s {
		t.Errorf("%s: BCET slack %d does not cover exact %d (reported %d)",
			label, s, exact.BCET.Cycles, got.BCET.Cycles)
	}
}

// TestAnytimeDegradationOn64SetChain is the acceptance gate: on the 64-set
// path-explosion chain, forcing degradation via pivot budget, wall-clock
// deadline, or set widening must return Exact=false bounds that enclose
// the unrestricted run's exact bounds, never an error.
func TestAnytimeDegradationOn64SetChain(t *testing.T) {
	src, annots := manySetProgram(6)
	exact := estimateOpts(t, src, annots, func(o *Options) { o.Workers = 1 })
	if exact.NumSets != 64 {
		t.Fatalf("workload has %d sets, want 64", exact.NumSets)
	}
	if !exact.WCET.Exact || !exact.BCET.Exact {
		t.Fatalf("unbudgeted run not exact: WCET %+v BCET %+v", exact.WCET, exact.BCET)
	}
	cases := []struct {
		label  string
		mutate func(*Options)
	}{
		{"budget=1", func(o *Options) { o.Budget = 1 }},
		{"budget=1/workers=8", func(o *Options) { o.Budget = 1; o.Workers = 8 }},
		{"deadline=1ns", func(o *Options) { o.Deadline = time.Nanosecond }},
		{"deadline=1ns/workers=8", func(o *Options) { o.Deadline = time.Nanosecond; o.Workers = 8 }},
		{"maxsets=8+widen", func(o *Options) { o.MaxSets = 8; o.WidenSets = true }},
	}
	for _, tc := range cases {
		got := estimateOpts(t, src, annots, tc.mutate)
		checkBrackets(t, tc.label, exact, got)
		if got.WCET.Exact && got.BCET.Exact && got.Stats.SetsUnsolved == 0 && got.Stats.SetsWidened == 0 {
			t.Errorf("%s: nothing degraded — the workload no longer exercises the anytime path", tc.label)
		}
		if tc.label == "budget=1" {
			if got.WCET.Exact || got.BCET.Exact {
				t.Errorf("budget=1: degraded bound claims Exact: WCET %+v BCET %+v", got.WCET, got.BCET)
			}
			if got.WCET.SetIndex != -1 || got.WCET.Counts != nil {
				t.Errorf("budget=1: envelope report names a witness set: %+v", got.WCET)
			}
			if got.Stats.SetsUnsolved == 0 {
				t.Errorf("budget=1: SetsUnsolved = 0, want all jobs gated")
			}
		}
	}
}

// TestBudgetDeterministicDegradation mirrors TestMechanismTogglesIdentical
// under full pivot-budget degradation: the budget is spent by the plan's
// own base solves, so every per-set job is gated before launch and the
// report is the pure relaxation envelope — bit-identical at every worker
// count and mechanism combination.
func TestBudgetDeterministicDegradation(t *testing.T) {
	src, annots := manySetProgram(6)
	run := func(mutate func(*Options)) *Estimate {
		return estimateOpts(t, src, annots, func(o *Options) {
			o.Budget = 1
			mutate(o)
		})
	}
	baseline := run(func(o *Options) { o.Workers = 1 })
	if baseline.Stats.SetsUnsolved == 0 {
		t.Fatalf("budget 1 did not gate the solve jobs: %+v", baseline.Stats)
	}
	if baseline.WCET.Exact || baseline.WCET.SetIndex != -1 || baseline.WCET.Slack != -1 {
		t.Fatalf("fully degraded WCET should be the anonymous envelope: %+v", baseline.WCET)
	}
	want := reportOf(baseline)
	for mask := 0; mask < 8; mask++ {
		dedup, warm, prune := mask&1 != 0, mask&2 != 0, mask&4 != 0
		for _, workers := range []int{1, 3, 8} {
			est := run(func(o *Options) {
				o.Workers = workers
				o.DedupSets, o.WarmStart, o.IncumbentPrune = dedup, warm, prune
			})
			if got := reportOf(est); !reflect.DeepEqual(want, got) {
				t.Errorf("dedup=%v warm=%v prune=%v workers=%d diverges:\nwant: %+v\ngot:  %+v",
					dedup, warm, prune, workers, want, got)
			}
			if est.Stats.SetsUnsolved == 0 {
				t.Errorf("dedup=%v warm=%v prune=%v workers=%d: no jobs gated — budget no longer covered by setup pivots",
					dedup, warm, prune, workers)
			}
		}
	}
}

// TestEnvelopeIsBaseRelaxation pins the envelope's definition: under full
// degradation the reported WCET/BCET are the base LP relaxation optima
// rounded inward to integers.
func TestEnvelopeIsBaseRelaxation(t *testing.T) {
	src, annots := manySetProgram(4)
	an := analyzerWith(t, src, annots, func(o *Options) { o.Budget = 1; o.Workers = 1 })
	plan, _, err := an.solverSetup()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range plan.dirs {
		if !d.relaxOK {
			t.Fatalf("budgeted plan has no relaxation envelope")
		}
	}
	est, err := an.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	wantW := int64(math.Floor(plan.dirs[0].relax + 1e-6))
	wantB := int64(math.Ceil(plan.dirs[1].relax - 1e-6))
	if est.WCET.Cycles != wantW || est.BCET.Cycles != wantB {
		t.Errorf("envelope [%d, %d], want [floor %g, ceil %g] = [%d, %d]",
			est.BCET.Cycles, est.WCET.Cycles, plan.dirs[1].relax, plan.dirs[0].relax, wantB, wantW)
	}
}

// TestDeadlineVsUserCancellation is the regression test for the
// cancellation/budget distinction: the analyzer's own deadline degrades
// to the sound envelope, while the caller's context — cancelled or
// expired — remains an error, with or without an analyzer deadline.
func TestDeadlineVsUserCancellation(t *testing.T) {
	src, annots := manySetProgram(5)
	for _, workers := range []int{1, 4} {
		// Analyzer deadline: sound degraded bound, no error.
		an := analyzerWith(t, src, annots, func(o *Options) {
			o.Workers = workers
			o.Deadline = time.Nanosecond
		})
		est, err := an.EstimateContext(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: deadline expiry errored: %v", workers, err)
		}
		if est.WCET.Exact || est.BCET.Exact {
			t.Errorf("workers=%d: 1ns deadline produced an exact bound: %+v", workers, est.WCET)
		}
		if !est.Stats.DeadlineHit {
			t.Errorf("workers=%d: Stats.DeadlineHit not set", workers)
		}

		// User cancellation: error, even though a deadline is configured.
		an = analyzerWith(t, src, annots, func(o *Options) {
			o.Workers = workers
			o.Deadline = time.Minute
		})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := an.EstimateContext(ctx); err == nil {
			t.Fatalf("workers=%d: cancelled context succeeded despite deadline option", workers)
		}

		// User deadline on the caller's context: also an error — only the
		// analyzer's internal deadline opts into degradation.
		an = analyzerWith(t, src, annots, func(o *Options) { o.Workers = workers })
		expiredCtx, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel2()
		if _, err := an.EstimateContext(expiredCtx); err == nil {
			t.Fatalf("workers=%d: expired caller context succeeded", workers)
		}
	}
}

// TestWidenSetsOverflow: past MaxSets the exact expansion refuses, while
// WidenSets degrades to at most MaxSets widened sets whose bound encloses
// the exact one.
func TestWidenSetsOverflow(t *testing.T) {
	src, annots := manySetProgram(4)
	exact := estimateOpts(t, src, annots, func(o *Options) { o.Workers = 1 })

	an := analyzerWith(t, src, annots, func(o *Options) { o.MaxSets = 4; o.Workers = 1 })
	if _, err := an.Estimate(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("MaxSets=4 without widening: err = %v, want DNF overflow", err)
	}

	wide := estimateOpts(t, src, annots, func(o *Options) {
		o.MaxSets = 4
		o.WidenSets = true
		o.Workers = 1
	})
	if wide.NumSets > 4 {
		t.Fatalf("widened expansion kept %d sets, cap 4", wide.NumSets)
	}
	if wide.Stats.SetsWidened == 0 {
		t.Fatalf("no sets flagged widened: %+v", wide.Stats)
	}
	checkBrackets(t, "maxsets=4+widen", exact, wide)
	if wide.WCET.Exact || wide.BCET.Exact {
		t.Errorf("widened-winner bound claims Exact: WCET %+v BCET %+v", wide.WCET, wide.BCET)
	}
	// The widened report still names its winning (widened) set and carries
	// counts from a real solve of it.
	if wide.WCET.SetIndex < 0 || wide.WCET.Counts == nil {
		t.Errorf("widened WCET lost its witness: %+v", wide.WCET)
	}
}

// TestCrashedSetDegradesNotDrops: a panicking per-set solve must be
// absorbed into the relaxation envelope — never silently dropped, never a
// process crash — and must surface as an error only when no envelope
// exists to absorb it.
func TestCrashedSetDegradesNotDrops(t *testing.T) {
	src, annots := manySetProgram(3)
	exact := estimateOpts(t, src, annots, func(o *Options) { o.Workers = 1 })

	testCrashJob.Store(1) // job 0: first distinct set, WCET direction
	defer testCrashJob.Store(0)
	for _, workers := range []int{1, 4} {
		got := estimateOpts(t, src, annots, func(o *Options) { o.Workers = workers })
		checkBrackets(t, "crashed-job", exact, got)
		if got.WCET.Exact {
			t.Errorf("workers=%d: WCET with a crashed set claims Exact", workers)
		}
		if !got.BCET.Exact {
			t.Errorf("workers=%d: BCET direction unaffected by the crash, want Exact: %+v", workers, got.BCET)
		}
		if got.Stats.SetsWidened == 0 || got.Stats.SetsUnsolved == 0 {
			t.Errorf("workers=%d: crash not accounted: %+v", workers, got.Stats)
		}
	}

	// Without a warm base or budget there is no envelope; the crash must
	// surface with its message instead of a silent drop.
	an := analyzerWith(t, src, annots, func(o *Options) {
		o.Workers = 1
		o.WarmStart = false
	})
	_, err := an.Estimate()
	if err == nil || !strings.Contains(err.Error(), "crashed") {
		t.Fatalf("crash with no envelope: err = %v, want crash diagnostic", err)
	}
	if !strings.Contains(err.Error(), "test-injected") {
		t.Fatalf("crash diagnostic lost the panic message: %v", err)
	}
}

// TestUnbudgetedReportsUnchanged pins the compatibility guarantee: with no
// deadline, budget, or widening, the full Estimate — including work
// counters — is identical to one produced with the new fields ignored,
// and every report is Exact with zero slack.
func TestUnbudgetedReportsUnchanged(t *testing.T) {
	src, annots := manySetProgram(5)
	est := estimateOpts(t, src, annots, func(o *Options) { o.Workers = 1 })
	if !est.WCET.Exact || !est.BCET.Exact || est.WCET.Slack != 0 || est.BCET.Slack != 0 {
		t.Errorf("default run not exact: WCET %+v BCET %+v", est.WCET, est.BCET)
	}
	if est.Stats.SetsWidened != 0 || est.Stats.SetsUnsolved != 0 || est.Stats.DeadlineHit {
		t.Errorf("default run reports degradation: %+v", est.Stats)
	}
}
