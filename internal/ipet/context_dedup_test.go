package ipet

import (
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/ilp"
)

// callContextProgram: main branches to one of two call sites of store, so
// store gets two contexts (the paper's x8.f1 / x8.f2 device of eq. 18).
// The then-arm around f1 carries extra multiply work, making the two
// disjuncts below genuinely different in cost.
const callContextProgram = `
main:
        beq  r1, r0, .La
        call store
        mul  r2, r2, r2
        mul  r2, r2, r2
        jmp  .Lend
.La:    call store
.Lend:  halt
store:
        add  r3, r2, r0
        ret
`

func contextAnalyzer(t *testing.T, annots string, mutate func(*Options)) *Analyzer {
	t.Helper()
	exe, err := asm.Assemble(callContextProgram)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	if mutate != nil {
		mutate(&opts)
	}
	an, err := New(prog, "main", opts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := constraint.Parse(annots)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Apply(f); err != nil {
		t.Fatal(err)
	}
	return an
}

// TestContextSetsNotDeduped: two DNF sets that differ only in which call
// context they pin (store.x1 @ f1 = 1 versus store.x1 @ f2 = 1) lower to
// different variable columns and must never be merged by canonical dedup —
// their extreme-case solves genuinely differ.
func TestContextSetsNotDeduped(t *testing.T) {
	annots := `func main {
    (store.x1 @ f1 = 1 & store.x1 @ f2 = 0) | (store.x1 @ f1 = 0 & store.x1 @ f2 = 1)
}
`
	an := contextAnalyzer(t, annots, nil)
	est, err := an.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.NumSets != 2 || est.PrunedSets != 0 || est.SolvedSets != 2 {
		t.Fatalf("sets = %d pruned = %d solved = %d, want 2/0/2",
			est.NumSets, est.PrunedSets, est.SolvedSets)
	}
	if est.Stats.Deduped != 0 {
		t.Fatalf("context-distinct sets were deduped: %+v", est.Stats)
	}
	// The mul-heavy f1 arm must win the worst case, the bare f2 arm the
	// best case — distinct winning sets prove the sets were solved apart.
	if est.WCET.SetIndex == est.BCET.SetIndex {
		t.Fatalf("WCET and BCET report the same set %d; contexts collapsed", est.WCET.SetIndex)
	}
	if est.WCET.Cycles <= est.BCET.Cycles {
		t.Fatalf("bounds not separated: WCET %d, BCET %d", est.WCET.Cycles, est.BCET.Cycles)
	}

	// And the incremental machinery must agree with the exhaustive path.
	cold := contextAnalyzer(t, annots, func(o *Options) {
		o.DedupSets, o.WarmStart, o.IncumbentPrune = false, false, false
		o.Workers = 1
	})
	cest, err := cold.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if cest.WCET.Cycles != est.WCET.Cycles || cest.BCET.Cycles != est.BCET.Cycles ||
		cest.WCET.SetIndex != est.WCET.SetIndex || cest.BCET.SetIndex != est.BCET.SetIndex {
		t.Fatalf("incremental diverges from exhaustive:\ncold: %+v %+v\nfast: %+v %+v",
			cest.WCET, cest.BCET, est.WCET, est.BCET)
	}
}

// TestContextNullPruning: a disjunct contradictory within ONE context
// (f1 = 0 and f1 = 1) is trivially null, but a disjunct assigning different
// values to DIFFERENT contexts is satisfiable and must survive pruning.
func TestContextNullPruning(t *testing.T) {
	annots := `func main {
    (store.x1 @ f1 = 0 & store.x1 @ f1 = 1) | (store.x1 @ f1 = 0 & store.x1 @ f2 = 1)
}
`
	an := contextAnalyzer(t, annots, nil)
	est, err := an.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.NumSets != 2 || est.PrunedSets != 1 || est.SolvedSets != 1 {
		t.Fatalf("sets = %d pruned = %d solved = %d, want 2/1/1",
			est.NumSets, est.PrunedSets, est.SolvedSets)
	}
}

// TestCanonicalSetKey pins the key's invariances at the lowered-ILP level:
// row order and homogeneous-equality sign are normalized away; distinct
// variable columns (the lowered form of distinct call contexts) are not.
func TestCanonicalSetKey(t *testing.T) {
	row := func(coeffs map[int]float64, rel ilp.Relation, rhs float64) ilp.Constraint {
		return ilp.Constraint{Coeffs: coeffs, Rel: rel, RHS: rhs}
	}
	a := []ilp.Constraint{
		row(map[int]float64{0: 1}, ilp.EQ, 1),
		row(map[int]float64{1: 1}, ilp.EQ, 0),
	}
	b := []ilp.Constraint{ // same rows, reversed order
		row(map[int]float64{1: 1}, ilp.EQ, 0),
		row(map[int]float64{0: 1}, ilp.EQ, 1),
	}
	c := []ilp.Constraint{ // same shape, different column
		row(map[int]float64{2: 1}, ilp.EQ, 1),
		row(map[int]float64{1: 1}, ilp.EQ, 0),
	}
	if canonicalSetKey(a) != canonicalSetKey(b) {
		t.Fatal("row order changed the canonical key")
	}
	if canonicalSetKey(a) == canonicalSetKey(c) {
		t.Fatal("distinct variable columns produced the same key")
	}
	// x0 - x1 = 0 and -x0 + x1 = 0 describe the same hyperplane.
	d := []ilp.Constraint{row(map[int]float64{0: 1, 1: -1}, ilp.EQ, 0)}
	e := []ilp.Constraint{row(map[int]float64{0: -1, 1: 1}, ilp.EQ, 0)}
	if canonicalSetKey(d) != canonicalSetKey(e) {
		t.Fatal("homogeneous equality sign changed the canonical key")
	}
	// Row fusion ambiguity: two one-row sets concatenated differently must
	// not collide with a differently split pair.
	f := []ilp.Constraint{row(map[int]float64{0: 1}, ilp.LE, 5)}
	g := []ilp.Constraint{
		row(map[int]float64{0: 1}, ilp.LE, 5),
		row(map[int]float64{0: 1}, ilp.LE, 5),
	}
	if canonicalSetKey(f) == canonicalSetKey(g) {
		t.Fatal("duplicate row count ignored by the canonical key")
	}
}
