package ipet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"cinderella/internal/constraint"
	"cinderella/internal/ilp"
	"cinderella/internal/march"
)

// BoundReport is one extreme-case estimate: the cycle bound, the block
// counts that achieve it (aggregated over contexts, per function), and the
// functionality constraint set that produced it.
type BoundReport struct {
	Cycles int64
	// Counts maps function name to per-block execution counts x_i at the
	// optimum, summed over call contexts.
	Counts map[string][]int64
	// SetIndex identifies the winning functionality constraint set.
	SetIndex int
}

// Estimate is the full result of a timing analysis: the estimated bound
// [BCET, WCET] of Fig. 1 plus the solver statistics the paper reports.
type Estimate struct {
	WCET BoundReport
	BCET BoundReport
	// NumSets is the number of functionality constraint sets after DNF
	// expansion (the "Sets" column of Table I).
	NumSets int
	// PrunedSets counts trivially-null sets dropped before solving (dhry:
	// 8 generated, 5 pruned, 3 solved).
	PrunedSets int
	// SolvedSets is NumSets - PrunedSets.
	SolvedSets int
	// LPSolves and Branches accumulate ILP work across all solves.
	LPSolves int
	Branches int
	// AllRootIntegral reports whether every ILP solved at the first LP
	// relaxation — the paper's Section VI observation.
	AllRootIntegral bool
}

// buildSets expands the functionality annotations into conjunctive ILP
// constraint sets, pruning trivially-null sets when enabled.
func (a *Analyzer) buildSets() (sets [][]ilp.Constraint, total, pruned int, err error) {
	var formulas []constraint.Formula
	if a.annots != nil {
		for _, sec := range a.annots.Sections {
			if _, reachable := a.ctxByFunc[sec.Func]; !reachable {
				continue
			}
			formulas = append(formulas, sec.Formulas...)
		}
	}
	conjSets, err := constraint.CrossProduct(formulas, a.Opts.MaxSets)
	if err != nil {
		return nil, 0, 0, err
	}
	total = len(conjSets)
	for _, cs := range conjSets {
		ilpSet := make([]ilp.Constraint, 0, len(cs))
		for _, r := range cs {
			c, err := a.relToILP(r)
			if err != nil {
				return nil, 0, 0, err
			}
			ilpSet = append(ilpSet, c)
		}
		if a.Opts.PruneNullSets && triviallyNull(ilpSet) {
			pruned++
			continue
		}
		sets = append(sets, ilpSet)
	}
	return sets, total, pruned, nil
}

// triviallyNull detects contradictions among single-variable constraints by
// interval intersection — the paper's example being "x_i >= 1 intersected
// with x_i = 0".
func triviallyNull(set []ilp.Constraint) bool {
	type iv struct{ lo, hi float64 }
	bounds := map[int]*iv{}
	get := func(v int) *iv {
		b, ok := bounds[v]
		if !ok {
			b = &iv{lo: 0, hi: math.Inf(1)} // variables are nonnegative
			bounds[v] = b
		}
		return b
	}
	for _, c := range set {
		if len(c.Coeffs) != 1 {
			continue
		}
		var v int
		var coef float64
		for vv, cc := range c.Coeffs {
			v, coef = vv, cc
		}
		if coef == 0 {
			continue
		}
		val := c.RHS / coef
		rel := c.Rel
		if coef < 0 {
			switch rel {
			case ilp.LE:
				rel = ilp.GE
			case ilp.GE:
				rel = ilp.LE
			}
		}
		b := get(v)
		switch rel {
		case ilp.EQ:
			b.lo = math.Max(b.lo, val)
			b.hi = math.Min(b.hi, val)
		case ilp.LE:
			b.hi = math.Min(b.hi, val)
		case ilp.GE:
			b.lo = math.Max(b.lo, val)
		}
		if b.lo > b.hi+1e-9 {
			return true
		}
	}
	return false
}

// firstIterSplit adds the Section IV refinement to a worst-case objective:
// blocks of cache-resident loops get a first-iteration variable xf with
// xf <= x and xf <= (loop entries); the objective charges full miss costs
// only to xf and steady-state costs to the rest.
type objective struct {
	coeffs map[int]float64
	extra  []ilp.Constraint
	nVars  int
}

func (a *Analyzer) worstObjective() objective {
	obj := objective{coeffs: map[int]float64{}, nVars: a.nVars}
	for _, ctx := range a.contexts {
		fc := a.Prog.Funcs[ctx.Func]
		costs := a.costs[ctx.Func]

		// innermost[b] is the smallest cache-resident loop containing b.
		var innermost map[int]int
		if a.Opts.SplitFirstIteration {
			innermost = map[int]int{}
			for li := range fc.Loops {
				if !march.LoopCacheResident(fc, &fc.Loops[li], a.Opts.March.Cache) {
					continue
				}
				for _, b := range fc.Loops[li].Blocks {
					cur, ok := innermost[b]
					if !ok || len(fc.Loops[li].Blocks) < len(fc.Loops[cur].Blocks) {
						innermost[b] = li
					}
				}
			}
		}

		for b := range fc.Blocks {
			x := a.blockVar(ctx.ID, b)
			li, split := -1, false
			if innermost != nil {
				li, split = innermost[b]
			}
			if !split {
				obj.coeffs[x] += float64(costs[b].Worst)
				continue
			}
			loop := fc.Loops[li]
			xf := obj.nVars
			obj.nVars++
			// Steady cost on every execution, the miss surcharge only on
			// first-iteration executions.
			obj.coeffs[x] += float64(costs[b].WorstSteady)
			obj.coeffs[xf] += float64(costs[b].Worst - costs[b].WorstSteady)
			// xf <= x
			obj.extra = append(obj.extra, ilp.Constraint{
				Coeffs: map[int]float64{xf: 1, x: -1},
				Rel:    ilp.LE,
				Name:   fmt.Sprintf("%s: first-iter x%d", ctx, b+1),
			})
			// xf <= sum of loop entry edges
			entry := ilp.Constraint{
				Coeffs: map[int]float64{xf: 1},
				Rel:    ilp.LE,
				Name:   fmt.Sprintf("%s: first-iter x%d <= loop entries", ctx, b+1),
			}
			for _, e := range loop.EntryEdges {
				entry.Coeffs[a.edgeVar(ctx.ID, e)] -= 1
			}
			obj.extra = append(obj.extra, entry)
		}
	}
	return obj
}

func (a *Analyzer) bestObjective() objective {
	obj := objective{coeffs: map[int]float64{}, nVars: a.nVars}
	for _, ctx := range a.contexts {
		costs := a.costs[ctx.Func]
		fc := a.Prog.Funcs[ctx.Func]
		for b := range fc.Blocks {
			obj.coeffs[a.blockVar(ctx.ID, b)] += float64(costs[b].Best)
		}
	}
	return obj
}

// solveResult carries one (direction, set) ILP outcome to the reducer.
type solveResult struct {
	err    error
	status ilp.Status
	cycles int64
	values []float64
	stats  ilp.Stats
}

// solveSet solves one functionality constraint set in one direction. The
// shared base rows (structural + loop bounds + objective extras) arrive
// pre-lowered in prefix, so each job only contributes its set-specific
// tail.
func (a *Analyzer) solveSet(ctx context.Context, sense ilp.Sense, obj *objective, prefix []ilp.PackedRow, set []ilp.Constraint) solveResult {
	p := &ilp.Problem{
		Sense:       sense,
		NumVars:     obj.nVars,
		Integer:     true,
		Objective:   obj.coeffs,
		Prefix:      prefix,
		Constraints: set,
	}
	sol, err := ilp.SolveCtx(ctx, p)
	if err != nil {
		return solveResult{err: err}
	}
	return solveResult{
		status: sol.Status,
		cycles: int64(math.Round(sol.Objective)),
		values: sol.Values,
		stats:  sol.Stats,
	}
}

// reduceDir folds one direction's per-set results in set order — the same
// tie-break as the sequential loop (a later set wins only when strictly
// better), so the outcome is independent of job completion order.
func (a *Analyzer) reduceDir(est *Estimate, sense ilp.Sense, results []solveResult) (*BoundReport, error) {
	var best *BoundReport
	var bestValues []float64
	feasible := false
	for si := range results {
		r := &results[si]
		est.LPSolves += r.stats.LPSolves
		est.Branches += r.stats.Branches
		switch r.status {
		case ilp.Unbounded:
			msg := "ipet: ILP unbounded — a loop lacks a bound"
			if missing := a.MissingLoopBounds(); len(missing) > 0 {
				msg += ": " + strings.Join(missing, "; ")
			}
			return nil, fmt.Errorf("%s", msg)
		case ilp.Infeasible:
			continue
		}
		feasible = true
		if !r.stats.RootIntegral {
			est.AllRootIntegral = false
		}
		if best == nil ||
			(sense == ilp.Maximize && r.cycles > best.Cycles) ||
			(sense == ilp.Minimize && r.cycles < best.Cycles) {
			best = &BoundReport{Cycles: r.cycles, SetIndex: si}
			bestValues = r.values
		}
	}
	if !feasible {
		return nil, fmt.Errorf("ipet: every functionality constraint set is infeasible against the structural constraints")
	}
	best.Counts = a.aggregateCounts(bestValues)
	return best, nil
}

// Estimate runs the full analysis: expand functionality constraint sets,
// solve one ILP per set and direction, and take the extremes.
func (a *Analyzer) Estimate() (*Estimate, error) {
	return a.EstimateContext(context.Background())
}

// EstimateContext is Estimate with cancellation. The sets × {max,min} ILP
// jobs are dispatched to a bounded worker pool of Opts.Workers goroutines
// (0 selects GOMAXPROCS, 1 runs the plain sequential loop); results are
// reduced in deterministic set order regardless of completion order, so
// every worker count produces the identical Estimate. The first error
// cancels all in-flight jobs.
func (a *Analyzer) EstimateContext(ctx context.Context) (*Estimate, error) {
	sets, total, pruned, err := a.buildSets()
	if err != nil {
		return nil, err
	}
	est := &Estimate{NumSets: total, PrunedSets: pruned, SolvedSets: len(sets), AllRootIntegral: true}
	if len(sets) == 0 {
		return nil, fmt.Errorf("ipet: all %d functionality constraint sets are null", total)
	}

	structural := a.StructuralConstraints()
	loops := a.LoopBoundConstraints()
	base := append(append([]ilp.Constraint{}, structural...), loops...)

	// Each direction shares base plus its objective's extra rows across
	// all sets; lower that prefix to the solver's normalized sparse row
	// form once instead of once per set ILP.
	dirs := []struct {
		sense ilp.Sense
		obj   objective
	}{
		{ilp.Maximize, a.worstObjective()},
		{ilp.Minimize, a.bestObjective()},
	}
	prefixes := make([][]ilp.PackedRow, len(dirs))
	for d := range dirs {
		rows := base
		if extra := dirs[d].obj.extra; len(extra) > 0 {
			rows = append(append(make([]ilp.Constraint, 0, len(base)+len(extra)), base...), extra...)
		}
		prefixes[d] = ilp.Pack(rows)
	}

	numJobs := len(dirs) * len(sets)
	results := make([]solveResult, numJobs)
	workers := a.Opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numJobs {
		workers = numJobs
	}
	if workers <= 1 {
		// Sequential path: identical to the pre-pool analyzer, stopping at
		// the first error.
		for j := 0; j < numJobs; j++ {
			d, si := j/len(sets), j%len(sets)
			results[j] = a.solveSet(ctx, dirs[d].sense, &dirs[d].obj, prefixes[d], sets[si])
			if results[j].err != nil {
				break
			}
		}
	} else {
		jctx, cancel := context.WithCancel(ctx)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1) - 1)
					if j >= numJobs || jctx.Err() != nil {
						return
					}
					d, si := j/len(sets), j%len(sets)
					r := a.solveSet(jctx, dirs[d].sense, &dirs[d].obj, prefixes[d], sets[si])
					results[j] = r
					if r.err != nil {
						cancel()
						return
					}
				}
			}()
		}
		wg.Wait()
		cancel()
	}

	// Propagate the first real failure in job order; jobs abandoned by the
	// resulting cancellation report context.Canceled and are skipped.
	for j := range results {
		if err := results[j].err; err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	worst, err := a.reduceDir(est, dirs[0].sense, results[:len(sets)])
	if err != nil {
		return nil, err
	}
	bcet, err := a.reduceDir(est, dirs[1].sense, results[len(sets):])
	if err != nil {
		return nil, err
	}
	est.WCET = *worst
	est.BCET = *bcet
	if est.BCET.Cycles > est.WCET.Cycles {
		return nil, fmt.Errorf("ipet: internal error: BCET %d exceeds WCET %d", est.BCET.Cycles, est.WCET.Cycles)
	}
	return est, nil
}

// aggregateCounts sums per-context block counts into per-function counts.
func (a *Analyzer) aggregateCounts(values []float64) map[string][]int64 {
	out := map[string][]int64{}
	for _, ctx := range a.contexts {
		fc := a.Prog.Funcs[ctx.Func]
		counts, ok := out[ctx.Func]
		if !ok {
			counts = make([]int64, len(fc.Blocks))
			out[ctx.Func] = counts
		}
		for b := range fc.Blocks {
			counts[b] += int64(math.Round(values[a.blockVar(ctx.ID, b)]))
		}
	}
	return out
}

// BlockCosts exposes the cost bracket used for a function's blocks.
func (a *Analyzer) BlockCosts(fn string) []march.BlockCost {
	return a.costs[fn]
}

// StructuralNetworkMatrix reports whether the intraprocedural structural
// constraints (the flow equations of Section III.B, per function instance)
// form a recognizable network (totally unimodular) matrix — the Section
// III.D explanation for why "the branch-and-bound ILP solver finds that the
// solution of the very first linear program call ... is integer valued".
//
// The interprocedural splice rows (d_entry(callee) = f_site, eq. 12) give
// call-edge columns a third entry and fall outside the two-nonzero
// sufficient test; integrality across the splice is the paper's empirical
// observation, which Stats.RootIntegral tracks on every solve.
func (a *Analyzer) StructuralNetworkMatrix() bool {
	var rows []ilp.Constraint
	for _, ctx := range a.contexts {
		fc := a.Prog.Funcs[ctx.Func]
		for _, b := range fc.Blocks {
			inC := ilp.Constraint{Coeffs: map[int]float64{a.blockVar(ctx.ID, b.Index): 1}, Rel: ilp.EQ}
			for _, e := range b.In {
				inC.Coeffs[a.edgeVar(ctx.ID, e)] -= 1
			}
			outC := ilp.Constraint{Coeffs: map[int]float64{a.blockVar(ctx.ID, b.Index): 1}, Rel: ilp.EQ}
			for _, e := range b.Out {
				outC.Coeffs[a.edgeVar(ctx.ID, e)] -= 1
			}
			rows = append(rows, inC, outC)
		}
	}
	rootFC := a.Prog.Funcs[a.Root]
	rows = append(rows, ilp.Constraint{
		Coeffs: map[int]float64{a.edgeVar(0, rootFC.EntryEdge): 1}, Rel: ilp.EQ, RHS: 1,
	})
	p := &ilp.Problem{NumVars: a.nVars, Constraints: rows}
	return ilp.IsNetworkMatrix(p)
}
