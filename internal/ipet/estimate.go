package ipet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/big"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cinderella/internal/constraint"
	"cinderella/internal/ilp"
	"cinderella/internal/ilp/certify"
	"cinderella/internal/march"
)

// BoundReport is one extreme-case estimate: the cycle bound, the block
// counts that achieve it (aggregated over contexts, per function), and the
// functionality constraint set that produced it.
type BoundReport struct {
	Cycles int64
	// Counts maps function name to per-block execution counts x_i at the
	// optimum, summed over call contexts. Nil when the bound is a pure
	// relaxation envelope (no solved set achieved it).
	Counts map[string][]int64
	// SetIndex identifies the winning functionality constraint set; -1
	// when the bound is the relaxation envelope over unsolved sets.
	SetIndex int
	// Exact reports that Cycles is the true ILP extreme: every constraint
	// set was solved un-widened and none was abandoned to a deadline,
	// budget, or crash. A non-exact bound is still sound — WCET from
	// above, BCET from below — just possibly loose.
	Exact bool
	// Slack bounds the looseness of a non-exact bound when an exactly
	// solved set is available as a witness: the true extreme lies within
	// Slack cycles of Cycles (on the inside). Zero when Exact; -1 when no
	// exact witness exists and the looseness is unknown.
	Slack int64
	// Certified reports that, under Options.Certify, every per-set claim
	// this bound reduces over was backed by an exact rational check: a
	// verified optimal-basis certificate or an exact re-solve. Always false
	// without Certify, and false for envelope reports (an unsolved set has
	// no claim to certify).
	Certified bool
	// RecheckedSets counts the distinct per-set claims of this direction
	// that the certificate layer could not vouch for and re-solved exactly
	// (rejected or missing certificates, infeasibility claims, suspect
	// solves). Zero without Options.Certify.
	RecheckedSets int
}

// Stats breaks down the work of one Estimate across the incremental
// cross-product machinery (set dedup, warm-started dual simplex, incumbent
// pruning). Set counters are per expansion; job counters are per
// (direction, distinct set) solve. Work counters (WarmSolves, ColdSolves,
// Pivots) and the incumbent counters depend on solve timing when Workers >
// 1 and IncumbentPrune is on; everything the analysis reports — bounds,
// counts, winning sets — does not.
type Stats struct {
	// SetsTotal is the number of conjunctive sets after DNF expansion.
	SetsTotal int
	// PrunedNull counts trivially-null sets dropped before any solve.
	PrunedNull int
	// Deduped counts surviving sets answered by a canonically identical
	// earlier set instead of their own solve.
	Deduped int
	// IncumbentSkipped counts solve jobs abandoned once the LP relaxation
	// proved the set strictly worse than the shared incumbent.
	IncumbentSkipped int
	// Solved counts solve jobs carried to completion (optimal or
	// infeasible).
	Solved int
	// WarmSolves counts jobs concluded by the warm dual-simplex path;
	// ColdSolves counts full two-phase solves (base solves, fallbacks,
	// disabled warm start, and the winner's canonicalizing re-solve).
	WarmSolves int
	ColdSolves int
	// Pivots counts simplex pivots across every solve of the estimate —
	// the primary cost metric the warm start attacks.
	Pivots int
	// NetworkSolves counts cold LP solves answered by the solver's
	// min-cost-flow fast path (annotation-light sets whose rows are
	// network-expressible — the paper's polynomial-time route).
	NetworkSolves int
	// RevisedPivots counts the subset of Pivots performed by the revised
	// (factored-basis) simplex kernel; Refactorizations counts that
	// kernel's basis refactorizations.
	RevisedPivots    int
	Refactorizations int
	// CacheHits counts per-set solve jobs answered by a prepared session's
	// persistent cross-estimate cache with no simplex work at all. Always
	// zero for analyzers made by New; see Prepare. Cache-answered jobs are
	// not counted in Solved, WarmSolves, or ColdSolves.
	CacheHits int
	// BuildTime covers set expansion, canonicalization, prefix packing and
	// base solves; SolveTime covers the per-set solve fan-out and reduce.
	BuildTime time.Duration
	SolveTime time.Duration
	// SetsWidened counts sets whose constraints were soundly relaxed: sets
	// produced by Options.WidenSets collapsing an overflowing disjunction,
	// plus solve jobs that crashed and were absorbed into the relaxation
	// envelope rather than silently dropped.
	SetsWidened int
	// SetsUnsolved counts per-set solve jobs never carried to completion
	// because the deadline or pivot budget expired (or the job crashed);
	// their contribution to the bound is the relaxation envelope.
	SetsUnsolved int
	// DeadlineHit reports that Options.Deadline expired during the solve.
	DeadlineHit bool
	// SuspectPivots counts float64 simplex pivots whose pivot element fell
	// outside the well-conditioned magnitude window — the ill-conditioning
	// signal that, under Options.Certify, routes a claim to the exact
	// fallback.
	SuspectPivots int
	// CertFailures counts per-set claims whose certificate was rejected by
	// the exact checker (or whose certified value contradicted the claim);
	// each was re-solved exactly. Zero without Options.Certify — and zero on
	// a healthy solver.
	CertFailures int
	// ExactResolves counts exact rational re-solves performed under
	// Options.Certify: one per claim without a verifiable certificate.
	ExactResolves int
	// FormulaEvals counts queries of this report answered by a parametric
	// piecewise-linear formula with no simplex work (ParamBound.EstimateAt);
	// ParamRegions is the formula's total piece count; ParamFallbacks counts
	// queries the formula could not cover that fell back to a concrete
	// warm-started solve. All zero for plain Estimate calls.
	FormulaEvals   int
	ParamRegions   int
	ParamFallbacks int
	// ArtifactHits and ArtifactMisses count per-function prepare artifacts
	// (CFG skeletons, block-cost tables, packed structural row templates)
	// served from, respectively built into, the process-wide
	// content-addressed cache (internal/prepcache) when the session was
	// prepared. They are recorded once into the session ledger at Prepare
	// time and are zero in per-Estimate stats.
	ArtifactHits   int
	ArtifactMisses int
}

// Estimate is the full result of a timing analysis: the estimated bound
// [BCET, WCET] of Fig. 1 plus the solver statistics the paper reports.
type Estimate struct {
	WCET BoundReport
	BCET BoundReport
	// NumSets is the number of functionality constraint sets after DNF
	// expansion (the "Sets" column of Table I).
	NumSets int
	// PrunedSets counts trivially-null sets dropped before solving (dhry:
	// 8 generated, 5 pruned, 3 solved).
	PrunedSets int
	// SolvedSets is NumSets - PrunedSets.
	SolvedSets int
	// LPSolves and Branches accumulate ILP work across all solves.
	LPSolves int
	Branches int
	// AllRootIntegral reports whether every ILP solved at the first LP
	// relaxation — the paper's Section VI observation.
	AllRootIntegral bool
	// Stats details the incremental-solving work (dedup, warm start,
	// incumbent pruning) behind this estimate.
	Stats Stats
}

// buildSets expands the functionality annotations into conjunctive ILP
// constraint sets, pruning trivially-null sets when enabled. With
// Opts.WidenSets, formulas whose expansion would overflow Opts.MaxSets
// are soundly widened instead of failing; widened[i] flags the surviving
// sets touched by widening. Pruning a widened set is sound: its feasible
// region contains every region it replaced, so widened-null implies
// all-null.
func (a *Analyzer) buildSets() (sets [][]ilp.Constraint, widened []bool, total, pruned int, err error) {
	var formulas []constraint.Formula
	if a.annots != nil {
		for _, sec := range a.annots.Sections {
			if _, reachable := a.ctxByFunc[sec.Func]; !reachable {
				continue
			}
			formulas = append(formulas, sec.Formulas...)
		}
	}
	var conjSets []constraint.ConjunctiveSet
	var wide []bool
	if a.Opts.WidenSets {
		conjSets, wide, err = constraint.CrossProductWiden(formulas, a.Opts.MaxSets)
	} else {
		conjSets, err = constraint.CrossProduct(formulas, a.Opts.MaxSets)
		wide = make([]bool, len(conjSets))
	}
	if err != nil {
		return nil, nil, 0, 0, err
	}
	total = len(conjSets)
	for i, cs := range conjSets {
		ilpSet := make([]ilp.Constraint, 0, len(cs))
		for _, r := range cs {
			c, err := a.relToILP(r)
			if err != nil {
				return nil, nil, 0, 0, err
			}
			ilpSet = append(ilpSet, c)
		}
		if a.Opts.PruneNullSets && triviallyNull(ilpSet) {
			pruned++
			continue
		}
		sets = append(sets, ilpSet)
		widened = append(widened, wide[i])
	}
	return sets, widened, total, pruned, nil
}

// triviallyNull detects contradictions among single-variable constraints by
// interval intersection — the paper's example being "x_i >= 1 intersected
// with x_i = 0".
func triviallyNull(set []ilp.Constraint) bool {
	type iv struct{ lo, hi float64 }
	bounds := map[int]*iv{}
	get := func(v int) *iv {
		b, ok := bounds[v]
		if !ok {
			b = &iv{lo: 0, hi: math.Inf(1)} // variables are nonnegative
			bounds[v] = b
		}
		return b
	}
	for _, c := range set {
		if len(c.Coeffs) != 1 {
			continue
		}
		var v int
		var coef float64
		for vv, cc := range c.Coeffs {
			v, coef = vv, cc
		}
		if coef == 0 {
			continue
		}
		val := c.RHS / coef
		rel := c.Rel
		if coef < 0 {
			switch rel {
			case ilp.LE:
				rel = ilp.GE
			case ilp.GE:
				rel = ilp.LE
			}
		}
		b := get(v)
		switch rel {
		case ilp.EQ:
			b.lo = math.Max(b.lo, val)
			b.hi = math.Min(b.hi, val)
		case ilp.LE:
			b.hi = math.Min(b.hi, val)
		case ilp.GE:
			b.lo = math.Max(b.lo, val)
		}
		if b.lo > b.hi+1e-9 {
			return true
		}
	}
	return false
}

// canonicalSetKey serializes a conjunctive set to a canonical binary form
// over the lowered ILP rows: coefficients sign- and order-normalized (via
// ilp.Pack, plus a sign convention for homogeneous equalities), rows
// sorted, names excluded. Two sets with equal keys describe the identical
// feasible region, so one solve answers both. Context-qualified facts
// (x12 = x8 @ f1) lower to context-specific variable columns and therefore
// never collide with their aggregate counterparts.
func canonicalSetKey(set []ilp.Constraint) string {
	rows := ilp.Pack(set)
	encoded := make([]string, len(rows))
	for ri, r := range rows {
		// A homogeneous equality (rhs 0) is sign-ambiguous after Pack's
		// rhs >= 0 normalization; orient it by its first coefficient.
		flip := r.Rel == ilp.EQ && r.RHS == 0 && len(r.Vals) > 0 && r.Vals[0] < 0
		b := make([]byte, 0, 9+12*len(r.Cols))
		b = append(b, byte(r.Rel))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.RHS))
		for k, col := range r.Cols {
			v := r.Vals[k]
			if flip {
				v = -v
			}
			b = binary.LittleEndian.AppendUint32(b, uint32(col))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		encoded[ri] = string(b)
	}
	sort.Strings(encoded)
	var sb strings.Builder
	for _, e := range encoded {
		var lb [4]byte
		binary.LittleEndian.PutUint32(lb[:], uint32(len(e)))
		sb.Write(lb[:])
		sb.WriteString(e)
	}
	return sb.String()
}

// firstIterSplit adds the Section IV refinement to a worst-case objective:
// blocks of cache-resident loops get a first-iteration variable xf with
// xf <= x and xf <= (loop entries); the objective charges full miss costs
// only to xf and steady-state costs to the rest.
type objective struct {
	coeffs map[int]float64
	extra  []ilp.Constraint
	nVars  int
}

// addCost accumulates an integer cycle cost into an objective coefficient,
// guarding the exactly-representable integer range of float64: beyond
// ±2^53 (ilp.MaxExactCoeff) the float sum could silently round away cycles
// and corrupt the bound, so the analysis errors out instead of wrapping.
// Within the guard every partial sum is an exact integer.
func addCost(coeffs map[int]float64, x int, c int64) error {
	v := coeffs[x] + float64(c)
	if math.Abs(v) > float64(ilp.MaxExactCoeff) {
		return fmt.Errorf("ipet: objective coefficient of variable %d overflows the exact float64 integer range (|%.6g| > 2^53); block costs are too large to analyze soundly", x, v)
	}
	coeffs[x] = v
	return nil
}

func (a *Session) worstObjective() (objective, error) {
	obj := objective{coeffs: make(map[int]float64, a.numBlockVars()), nVars: a.nVars}
	for _, ctx := range a.contexts {
		fc := a.Prog.Funcs[ctx.Func]
		costs := a.costs[ctx.Func]

		// innermost[b] is the smallest cache-resident loop containing b.
		var innermost map[int]int
		if a.Opts.SplitFirstIteration {
			innermost = map[int]int{}
			for li := range fc.Loops {
				if !march.LoopCacheResident(fc, &fc.Loops[li], a.Opts.March.Cache) {
					continue
				}
				for _, b := range fc.Loops[li].Blocks {
					cur, ok := innermost[b]
					if !ok || len(fc.Loops[li].Blocks) < len(fc.Loops[cur].Blocks) {
						innermost[b] = li
					}
				}
			}
		}

		for b := range fc.Blocks {
			x := a.blockVar(ctx.ID, b)
			li, split := -1, false
			if innermost != nil {
				li, split = innermost[b]
			}
			if !split {
				if err := addCost(obj.coeffs, x, costs[b].Worst); err != nil {
					return obj, err
				}
				continue
			}
			loop := fc.Loops[li]
			xf := obj.nVars
			obj.nVars++
			// Steady cost on every execution, the miss surcharge only on
			// first-iteration executions.
			if err := addCost(obj.coeffs, x, costs[b].WorstSteady); err != nil {
				return obj, err
			}
			if err := addCost(obj.coeffs, xf, costs[b].Worst-costs[b].WorstSteady); err != nil {
				return obj, err
			}
			// xf <= x
			obj.extra = append(obj.extra, ilp.Constraint{
				Coeffs: map[int]float64{xf: 1, x: -1},
				Rel:    ilp.LE,
				Name:   fmt.Sprintf("%s: first-iter x%d", ctx, b+1),
			})
			// xf <= sum of loop entry edges
			entry := ilp.Constraint{
				Coeffs: map[int]float64{xf: 1},
				Rel:    ilp.LE,
				Name:   fmt.Sprintf("%s: first-iter x%d <= loop entries", ctx, b+1),
			}
			for _, e := range loop.EntryEdges {
				entry.Coeffs[a.edgeVar(ctx.ID, e)] -= 1
			}
			obj.extra = append(obj.extra, entry)
		}
	}
	return obj, nil
}

func (a *Session) bestObjective() (objective, error) {
	obj := objective{coeffs: make(map[int]float64, a.numBlockVars()), nVars: a.nVars}
	for _, ctx := range a.contexts {
		costs := a.costs[ctx.Func]
		fc := a.Prog.Funcs[ctx.Func]
		for b := range fc.Blocks {
			if err := addCost(obj.coeffs, a.blockVar(ctx.ID, b), costs[b].Best); err != nil {
				return obj, err
			}
		}
	}
	return obj, nil
}

// direction bundles everything one objective sense shares across its
// per-set solves: the objective, the pre-lowered shared rows, and (when
// enabled and available) the warm-start base tableau.
type direction struct {
	sense  ilp.Sense
	obj    objective
	prefix []ilp.PackedRow
	warm   *ilp.WarmStart
	// relax is the base LP relaxation's optimum (structural + loop +
	// objective rows, no set rows). Adding rows only shrinks the feasible
	// region, so relax dominates every per-set optimum: it is the sound
	// envelope reported for sets the analysis never finished. Taken from
	// the warm base when available, otherwise solved once in solverSetup
	// when a budgeted run may need it.
	relax   float64
	relaxOK bool
}

// solverPlan is the memoized per-analyzer solver setup: the expanded
// constraint sets with their canonical-dedup structure and the two solve
// directions. Apply invalidates it (annotations change the sets); repeated
// Estimate calls on unchanged annotations reuse it, including the warm
// base tableaus.
type solverPlan struct {
	sets          [][]ilp.Constraint
	total, pruned int
	// widened[i] marks set i as a sound widening of several original sets
	// (Options.WidenSets); nWidened counts them.
	widened  []bool
	nWidened int
	// repOf[i] is the index of the earliest set canonically identical to
	// set i (i itself when distinct); distinct lists the representatives
	// in set order.
	repOf    []int
	distinct []int
	deduped  int
	// keys[i] is the canonical key of set i, computed when dedup or a
	// persistent session needs it (nil otherwise); loopKey identifies the
	// loop-bound rows this plan appended to the shared structural prefix
	// (persistent sessions only).
	keys    []string
	loopKey string
	dirs    []direction
	// Work performed building the plan (warm base solves), charged to the
	// Estimate call that triggered the build.
	setupLP, setupPivots, setupCold    int
	setupNet, setupRev, setupRefactors int
}

// solverSetup returns the memoized solver plan, building it on first use.
// fresh reports whether this call performed the build (and so should count
// the setup work in its statistics).
func (a *Analyzer) solverSetup() (plan *solverPlan, fresh bool, err error) {
	a.planMu.Lock()
	defer a.planMu.Unlock()
	if a.plan != nil {
		return a.plan, false, nil
	}
	// A concrete solve has no value for parameter symbols; refuse with a
	// typed, positioned error instead of silently treating "n1" as zero.
	if err := checkNoSymbols(a.annots); err != nil {
		return nil, false, err
	}
	sets, widened, total, pruned, err := a.buildSets()
	if err != nil {
		return nil, false, err
	}
	plan = &solverPlan{sets: sets, total: total, pruned: pruned, widened: widened}
	for _, w := range widened {
		if w {
			plan.nWidened++
		}
	}
	plan.repOf = make([]int, len(sets))
	plan.distinct = make([]int, 0, len(sets))
	if a.Opts.DedupSets || a.persist {
		plan.keys = make([]string, len(sets))
		for i := range sets {
			plan.keys[i] = canonicalSetKey(sets[i])
		}
	}
	if a.Opts.DedupSets {
		byKey := make(map[string]int, len(sets))
		for i := range sets {
			if rep, hit := byKey[plan.keys[i]]; hit {
				plan.repOf[i] = rep
				plan.deduped++
			} else {
				byKey[plan.keys[i]] = i
				plan.repOf[i] = i
				plan.distinct = append(plan.distinct, i)
			}
		}
	} else {
		for i := range sets {
			plan.repOf[i] = i
			plan.distinct = append(plan.distinct, i)
		}
	}

	// The structural rows and each direction's objective extras were
	// lowered once when the session was built; only the loop-bound rows
	// depend on the annotations. The concatenation order (structural, loop
	// bounds, extras) matches what a single Pack of the full row list
	// produced before the session split, so solves see identical tableaux.
	loops := ilp.Pack(a.LoopBoundConstraints())
	if a.persist {
		plan.loopKey = packedRowsKey(loops)
	}
	for di := range a.dirBases {
		db := &a.dirBases[di]
		prefix := make([]ilp.PackedRow, 0, len(a.packedStructural)+len(loops)+len(db.packedExtra))
		prefix = append(prefix, a.packedStructural...)
		prefix = append(prefix, loops...)
		prefix = append(prefix, db.packedExtra...)
		d := direction{sense: db.sense, obj: db.obj, prefix: prefix}
		if a.Opts.WarmStart {
			newBase := func() *warmBaseEntry {
				// Certify needs the un-presolved base: the exact checker
				// re-derives the warm tableau layout from the problem, which
				// presolve row-elimination would obscure. The base optimum
				// (and so every bound) is identical either way.
				w := ilp.NewWarmStartOpts(&ilp.Problem{
					Sense:     db.sense,
					NumVars:   db.obj.nVars,
					Objective: db.obj.coeffs,
					Prefix:    prefix,
				}, ilp.WarmOptions{DisablePresolve: a.Opts.Certify})
				return &warmBaseEntry{warm: w, pivots: w.BasePivots()}
			}
			var entry *warmBaseEntry
			var hit bool
			if a.persist {
				// Warm bases persist across Estimate calls keyed by the
				// loop rows; only the call that builds one is charged.
				entry, hit = a.baseCache.GetOrCompute(baseKey(di, plan.loopKey), newBase)
			} else {
				entry = newBase()
			}
			d.warm = entry.warm
			if !hit {
				plan.setupLP++
				plan.setupCold++
				plan.setupPivots += entry.pivots
			}
		}
		effDeadline, effBudget := a.effAnytime()
		if d.warm != nil && d.warm.Ready() {
			// The warm base already holds the relaxation envelope.
			d.relax, d.relaxOK = d.warm.BaseObjective()
		} else if effDeadline > 0 || effBudget > 0 {
			// A budgeted run may need the envelope for sets it abandons;
			// solve the base LP once here. Unbudgeted runs skip this so
			// their statistics stay identical to the exhaustive path.
			sol, err := ilp.Solve(&ilp.Problem{
				Sense:     db.sense,
				NumVars:   db.obj.nVars,
				Objective: db.obj.coeffs,
				Prefix:    d.prefix,
			})
			if err == nil {
				plan.setupLP += sol.Stats.LPSolves
				plan.setupCold++
				plan.setupPivots += sol.Stats.Pivots
				plan.setupNet += sol.Stats.NetworkSolves
				plan.setupRev += sol.Stats.RevisedPivots
				plan.setupRefactors += sol.Stats.Refactorizations
				if sol.Status == ilp.Optimal {
					d.relax, d.relaxOK = sol.Objective, true
				}
			}
		}
		plan.dirs = append(plan.dirs, d)
	}
	a.plan = plan
	return plan, true, nil
}

// solveResult carries one (direction, set) ILP outcome to the reducer.
type solveResult struct {
	err    error
	status ilp.Status
	cycles int64
	values []float64
	stats  ilp.Stats
	// warm marks a result concluded on the warm dual-simplex path (its
	// values may sit on an alternate optimal vertex); cold marks that a
	// full two-phase solve ran; dup marks a result copied from the set's
	// canonical representative. The winner's counts are re-derived from a
	// plain cold solve whenever warm or dup is set, keeping the reported
	// BoundReport bit-identical to the exhaustive path.
	warm bool
	cold bool
	dup  bool
	// cacheHit marks a result answered by a persistent session's per-set
	// outcome cache. It always rides with dup: cached outcomes carry no
	// value vector, so a cache-hit winner re-derives counts exactly like a
	// duplicate's.
	cacheHit bool
	// done marks that the job actually ran (a worker wrote this result);
	// a zero-value slot left by an early pool shutdown must not read as an
	// optimal zero-cycle solve.
	done bool
	// unsolved marks a job abandoned to the deadline/pivot budget (or a
	// crash): its set contributes the direction's relaxation envelope.
	unsolved bool
	// crashed carries a recovered per-set solver panic; the set degrades
	// to the envelope instead of being dropped, and crashMsg surfaces in
	// the error when no envelope is available.
	crashed  bool
	crashMsg string
	// certified marks a claim backed by an exact rational check (verified
	// certificate or exact re-solve); certFailures and exactResolves count
	// the certificate layer's work on this claim. All zero without
	// Options.Certify.
	certified     bool
	certFailures  int
	exactResolves int
}

// testCrashJob, when set to j+1, makes solve job j panic — the test hook
// for the worker panic-recovery path. Zero disables it.
var testCrashJob atomic.Int32

// solveSet solves one functionality constraint set in one direction. The
// shared base rows (structural + loop bounds + objective extras) arrive
// pre-lowered in d.prefix, so each job only contributes its set-specific
// tail. With useCutoff, cutoff is the direction's incumbent bound in
// cycles: the solve may conclude Dominated as soon as the set is provably
// unable to match it (strictly — ties are never abandoned, preserving the
// first-set-wins reduce order).
func (a *Analyzer) solveSet(ctx context.Context, d *direction, set []ilp.Constraint, cutoff int64, useCutoff bool) solveResult {
	// A cancelled estimate must not burn a simplex run per queued set.
	if err := ctx.Err(); err != nil {
		return solveResult{err: err}
	}
	var r solveResult
	certOn := a.Opts.Certify
	// Integer cycle counts make the half-open margin exact: a set is
	// abandoned only when its optimum provably differs from the incumbent
	// by at least one cycle in the losing direction.
	cut := float64(cutoff)
	if d.sense == ilp.Maximize {
		cut -= 0.5
	} else {
		cut += 0.5
	}

	// The full problem, shared by the cold path and the certificate layer
	// (the warm path never materializes it on its own).
	var p *ilp.Problem
	problem := func() *ilp.Problem {
		if p == nil {
			p = &ilp.Problem{
				Sense:       d.sense,
				NumVars:     d.obj.nVars,
				Integer:     true,
				Objective:   d.obj.coeffs,
				Prefix:      d.prefix,
				Constraints: set,
			}
		}
		return p
	}

	if d.warm != nil && d.warm.Ready() {
		// NoX: a warm winner's counts are always re-derived by finishDir's
		// canonical cold re-solve, so no per-set solve needs the assignment
		// materialized — integrality arrives precomputed in ws.XIntegral.
		ws := d.warm.SolveSetOpts(set, ilp.SetSolveOptions{
			Cutoff: cut, UseCutoff: useCutoff, WantCert: certOn, NoX: true})
		r.stats.Pivots += ws.Pivots
		r.stats.SuspectPivots += ws.Suspect
		if ws.OK {
			r.stats.LPSolves++
			switch ws.Status {
			case ilp.Infeasible, ilp.Dominated:
				r.warm = true
				r.status = ws.Status
				if certOn {
					if err := a.certifyOutcome(ctx, &r, problem(), nil); err != nil {
						return solveResult{err: err}
					}
				}
				return r
			case ilp.Optimal:
				if ws.XIntegral {
					r.warm = true
					r.status = ws.Status
					r.stats.RootIntegral = true
					r.cycles = int64(math.Round(ws.Objective))
					if certOn {
						if err := a.certifyOutcome(ctx, &r, problem(), ws.Cert); err != nil {
							return solveResult{err: err}
						}
					}
					return r
				}
				// Fractional warm root: branch and bound needs the cold
				// path. Rare in this domain (network-matrix structure).
			}
		}
	}

	sol, err := ilp.SolveCtxOpts(ctx, problem(), ilp.SolveOptions{Cutoff: cut, UseCutoff: useCutoff, WantCert: certOn})
	if err != nil {
		return solveResult{err: err}
	}
	r.cold = true
	r.status = sol.Status
	r.cycles = int64(math.Round(sol.Objective))
	r.values = sol.Values
	r.stats.LPSolves += sol.Stats.LPSolves
	r.stats.Branches += sol.Stats.Branches
	r.stats.Pivots += sol.Stats.Pivots
	r.stats.SuspectPivots += sol.Stats.SuspectPivots
	r.stats.NetworkSolves += sol.Stats.NetworkSolves
	r.stats.RevisedPivots += sol.Stats.RevisedPivots
	r.stats.Refactorizations += sol.Stats.Refactorizations
	r.stats.RootIntegral = sol.Stats.RootIntegral
	if certOn {
		if err := a.certifyOutcome(ctx, &r, problem(), sol.Cert); err != nil {
			return solveResult{err: err}
		}
	}
	return r
}

// certifyOutcome backs one per-set claim with an exact rational check, per
// Options.Certify. An Optimal claim from a clean solve (no suspect pivots)
// carrying a certificate is verified exactly: if the certificate proves the
// claimed cycle count, the claim stands as-is. Everything else — a rejected
// certificate, a certified value contradicting the claim, a missing
// certificate (branch-and-bound answers, infeasibility and domination
// claims), or any suspect solve — is re-solved from scratch by the exact
// rational simplex, and the float claim is replaced wholesale by the exact
// outcome. Either way the resulting claim is exactly right.
func (a *Analyzer) certifyOutcome(ctx context.Context, r *solveResult, p *ilp.Problem, cert *ilp.Certificate) error {
	if r.status == ilp.Optimal && cert != nil && r.stats.SuspectPivots == 0 {
		if res, err := certify.Verify(p, cert); err == nil {
			if ex, ok := ratInt64(res.Objective); ok && ex == r.cycles {
				r.certified = true
				return nil
			}
			// The basis proves a different optimum than the solver claimed:
			// the claim itself is wrong even though a valid certificate
			// exists. Treat it as a certification failure.
		}
		r.certFailures++
	}
	r.exactResolves++
	exr, err := certify.SolveExact(ctx, p)
	if err != nil {
		return err
	}
	r.stats.LPSolves += exr.LPSolves
	r.status = exr.Status
	r.certified = true
	if exr.Status == ilp.Optimal {
		ex, ok := ratInt64(exr.Objective)
		if !ok {
			return fmt.Errorf("ipet: exact optimum %s is not an integer cycle count", exr.Objective.RatString())
		}
		r.cycles = ex
		r.values = ratFloats(exr.X)
		r.stats.RootIntegral = exr.RootIntegral
	}
	return nil
}

// ratInt64 converts an exact rational to an int64; ok is false when v is
// not an integer or does not fit.
func ratInt64(v *big.Rat) (int64, bool) {
	if !v.IsInt() || !v.Num().IsInt64() {
		return 0, false
	}
	return v.Num().Int64(), true
}

// ratFloats converts exact values to float64; in this domain they are
// integral and far below 2^53, so the conversion is exact.
func ratFloats(x []*big.Rat) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i], _ = v.Float64()
	}
	return out
}

// reduceDir folds one direction's per-set results in set order — the same
// tie-break as the sequential loop (a later set wins only when strictly
// better), so the outcome is independent of job completion order. Dominated
// results are skipped: they are provably strictly worse than the incumbent
// that pruned them, so they can neither win nor tie.
//
// Unsolved results (deadline, budget, crash) degrade the direction to its
// relaxation envelope: the base LP optimum dominates every per-set
// optimum, so reporting it for the unsolved sets — and therefore for the
// whole direction, since it also dominates every solved incumbent — is
// sound and independent of which jobs happened to finish. A degraded or
// widened-winner report carries Exact=false; Slack is measured against
// the best exactly solved, un-widened set when one exists.
func (a *Analyzer) reduceDir(est *Estimate, d *direction, plan *solverPlan, results []solveResult) (*BoundReport, *solveResult, error) {
	sense := d.sense
	var best *BoundReport
	var bestRes *solveResult
	feasible, degraded := false, false
	crashMsg := ""
	unsolved := 0
	haveExact := false
	var exactInc int64
	for si := range results {
		r := &results[si]
		if r.unsolved {
			degraded = true
			unsolved++
			if r.crashed && crashMsg == "" {
				crashMsg = r.crashMsg
			}
			continue
		}
		switch r.status {
		case ilp.Unbounded:
			msg := "ipet: ILP unbounded — a loop lacks a bound"
			if missing := a.MissingLoopBounds(); len(missing) > 0 {
				msg += ": " + strings.Join(missing, "; ")
			}
			return nil, nil, fmt.Errorf("%s", msg)
		case ilp.Infeasible:
			continue
		case ilp.Dominated:
			// An incumbent exists only once some set solved to optimality,
			// so skipping dominated sets never hides the last feasible one.
			continue
		}
		feasible = true
		if !r.stats.RootIntegral {
			est.AllRootIntegral = false
		}
		if best == nil ||
			(sense == ilp.Maximize && r.cycles > best.Cycles) ||
			(sense == ilp.Minimize && r.cycles < best.Cycles) {
			best = &BoundReport{Cycles: r.cycles, SetIndex: si}
			bestRes = r
		}
		if !plan.widened[si] && r.status == ilp.Optimal {
			if !haveExact ||
				(sense == ilp.Maximize && r.cycles > exactInc) ||
				(sense == ilp.Minimize && r.cycles < exactInc) {
				exactInc, haveExact = r.cycles, true
			}
		}
	}
	if degraded {
		if !d.relaxOK {
			if crashMsg != "" {
				return nil, nil, fmt.Errorf("ipet: a constraint-set solve crashed (%s) and no relaxation envelope is available to absorb it", crashMsg)
			}
			return nil, nil, fmt.Errorf("ipet: budget expired with %d sets unsolved and no relaxation envelope available", unsolved)
		}
		// The tightest sound integer envelope: the per-set integer optima
		// lie at or inside the base LP optimum.
		var cycles int64
		if sense == ilp.Maximize {
			cycles = int64(math.Floor(d.relax + 1e-6))
		} else {
			cycles = int64(math.Ceil(d.relax - 1e-6))
		}
		if best != nil &&
			((sense == ilp.Maximize && best.Cycles > cycles) ||
				(sense == ilp.Minimize && best.Cycles < cycles)) {
			// Numerically the envelope dominates every incumbent; keep the
			// guard so a rounding edge can never shrink the bound.
			cycles = best.Cycles
		}
		rep := &BoundReport{Cycles: cycles, SetIndex: -1, Slack: -1}
		if haveExact {
			if sense == ilp.Maximize {
				rep.Slack = cycles - exactInc
			} else {
				rep.Slack = exactInc - cycles
			}
		}
		return rep, nil, nil
	}
	if !feasible {
		return nil, nil, &InfeasibleError{Sets: plan.total}
	}
	best.Exact = !plan.widened[best.SetIndex]
	switch {
	case best.Exact:
		best.Slack = 0
	case haveExact:
		// A widened winner dominates the sets it replaced; the true
		// extreme lies between the best exact witness and the widened
		// bound.
		if sense == ilp.Maximize {
			best.Slack = best.Cycles - exactInc
		} else {
			best.Slack = exactInc - best.Cycles
		}
	default:
		best.Slack = -1
	}
	return best, bestRes, nil
}

// finishDir fills the winning BoundReport's counts. When the winner was
// answered by the warm path, copied from a canonical duplicate, or served
// from a session's outcome cache, its values may come from an alternate
// optimal vertex or a differently ordered row list (or not exist at all);
// one plain cold re-solve of the winning set re-derives the exact counts
// the exhaustive path reports. Prepared sessions retain that canonical
// count vector, keyed order-sensitively by the winning set's own rows, so
// a repeat scenario skips the re-solve and still reports identical counts.
func (a *Analyzer) finishDir(ctx context.Context, est *Estimate, di int, plan *solverPlan, best *BoundReport, win *solveResult) error {
	if !win.warm && !win.dup {
		best.Counts = a.aggregateCounts(win.values)
		return nil
	}
	d := &plan.dirs[di]
	var key string
	if a.persist {
		key = finishKey(di, plan.loopKey, plan.sets[best.SetIndex])
		if vals, ok := a.finishCache.Get(key); ok {
			best.Counts = a.aggregateCounts(vals)
			return nil
		}
	}
	p := &ilp.Problem{
		Sense:       d.sense,
		NumVars:     d.obj.nVars,
		Integer:     true,
		Objective:   d.obj.coeffs,
		Prefix:      d.prefix,
		Constraints: plan.sets[best.SetIndex],
	}
	sol, err := ilp.SolveCtxOpts(ctx, p, ilp.SolveOptions{WantCert: a.Opts.Certify})
	if err != nil {
		return err
	}
	est.LPSolves += sol.Stats.LPSolves
	est.Branches += sol.Stats.Branches
	est.Stats.Pivots += sol.Stats.Pivots
	est.Stats.SuspectPivots += sol.Stats.SuspectPivots
	est.Stats.NetworkSolves += sol.Stats.NetworkSolves
	est.Stats.RevisedPivots += sol.Stats.RevisedPivots
	est.Stats.Refactorizations += sol.Stats.Refactorizations
	est.Stats.ColdSolves++
	vals := sol.Values
	ok := sol.Status == ilp.Optimal && int64(math.Round(sol.Objective)) == best.Cycles
	if a.Opts.Certify {
		// The canonical count re-solve is a fresh float64 claim and is backed
		// like any other: a clean, verified certificate proving the winner's
		// cycle count lets the float counts stand; anything else — including
		// a re-solve that contradicts the (already certified) winning bound —
		// falls back to the exact solver, whose optimum must agree.
		certOK := false
		if ok && sol.Cert != nil && sol.Stats.SuspectPivots == 0 {
			if res, verr := certify.Verify(p, sol.Cert); verr == nil {
				if ex, exOK := ratInt64(res.Objective); exOK && ex == best.Cycles {
					certOK = true
				}
			}
			if !certOK {
				est.Stats.CertFailures++
			}
		}
		if !certOK {
			est.Stats.ExactResolves++
			exr, err := certify.SolveExact(ctx, p)
			if err != nil {
				return err
			}
			est.LPSolves += exr.LPSolves
			var ex int64
			exOK := false
			if exr.Status == ilp.Optimal {
				ex, exOK = ratInt64(exr.Objective)
			}
			if !exOK || ex != best.Cycles {
				return fmt.Errorf("ipet: internal error: exact canonical re-solve of set %d returned %v, want %d cycles",
					best.SetIndex+1, exr.Status, best.Cycles)
			}
			vals = ratFloats(exr.X)
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("ipet: internal error: canonical re-solve of set %d returned %v %g, want %d cycles",
			best.SetIndex+1, sol.Status, sol.Objective, best.Cycles)
	}
	if a.persist {
		a.finishCache.Put(key, vals)
	}
	best.Counts = a.aggregateCounts(vals)
	return nil
}

// incumbent tracking: one atomic best bound per direction, initialized to
// a sentinel meaning "none yet".
func incumbentInit(sense ilp.Sense) int64 {
	if sense == ilp.Maximize {
		return math.MinInt64
	}
	return math.MaxInt64
}

func incumbentLoad(inc *atomic.Int64, sense ilp.Sense) (int64, bool) {
	v := inc.Load()
	return v, v != incumbentInit(sense)
}

func incumbentOffer(inc *atomic.Int64, sense ilp.Sense, cycles int64) {
	for {
		cur := inc.Load()
		if (sense == ilp.Maximize && cycles <= cur) ||
			(sense == ilp.Minimize && cycles >= cur) {
			return
		}
		if inc.CompareAndSwap(cur, cycles) {
			return
		}
	}
}

// Estimate runs the full analysis: expand functionality constraint sets,
// solve one ILP per set and direction, and take the extremes.
func (a *Analyzer) Estimate() (*Estimate, error) {
	return a.EstimateContext(context.Background())
}

// EstimateContext is Estimate with cancellation. Distinct sets × {max,min}
// ILP jobs are dispatched to a bounded worker pool of Opts.Workers
// goroutines (0 selects GOMAXPROCS, 1 runs the plain sequential loop);
// results are reduced in deterministic set order regardless of completion
// order, so every worker count produces the identical bound report. The
// first error cancels all in-flight jobs.
func (a *Analyzer) EstimateContext(ctx context.Context) (*Estimate, error) {
	tBuild := time.Now()
	plan, fresh, err := a.solverSetup()
	if err != nil {
		return nil, err
	}
	est := &Estimate{
		NumSets:         plan.total,
		PrunedSets:      plan.pruned,
		SolvedSets:      len(plan.sets),
		AllRootIntegral: true,
	}
	est.Stats.SetsTotal = plan.total
	est.Stats.PrunedNull = plan.pruned
	est.Stats.Deduped = plan.deduped
	est.Stats.SetsWidened = plan.nWidened
	if fresh {
		est.LPSolves += plan.setupLP
		est.Stats.ColdSolves += plan.setupCold
		est.Stats.Pivots += plan.setupPivots
		est.Stats.NetworkSolves += plan.setupNet
		est.Stats.RevisedPivots += plan.setupRev
		est.Stats.Refactorizations += plan.setupRefactors
	}
	if len(plan.sets) == 0 {
		return nil, &InfeasibleError{Sets: plan.total, AllNull: true}
	}
	est.Stats.BuildTime = time.Since(tBuild)

	tSolve := time.Now()
	dirs := plan.dirs
	nd := len(plan.distinct)
	numJobs := len(dirs) * nd
	results := make([]solveResult, numJobs)
	incumbents := make([]atomic.Int64, len(dirs))
	for d := range dirs {
		incumbents[d].Store(incumbentInit(dirs[d].sense))
	}
	// Anytime budgets. The pivot budget is a shared monotone counter
	// seeded with the plan's setup pivots, checked before each job
	// launches; the wall-clock deadline additionally cancels in-flight
	// solves through an internal derived context, which keeps the caller's
	// own ctx distinguishable: caller cancellation is an error, analyzer
	// deadline expiry degrades to the envelope.
	effDeadline, effBudget := a.effAnytime()
	budget := int64(effBudget)
	var spent atomic.Int64
	spent.Store(int64(plan.setupPivots))
	var hitDeadline atomic.Bool
	var deadlineAt time.Time
	jobCtx := ctx
	if effDeadline > 0 {
		deadlineAt = tBuild.Add(effDeadline)
		var cancelDeadline context.CancelFunc
		jobCtx, cancelDeadline = context.WithDeadline(ctx, deadlineAt)
		defer cancelDeadline()
	}
	expired := func() bool {
		if budget > 0 && spent.Load() >= budget {
			return true
		}
		if !deadlineAt.IsZero() && !time.Now().Before(deadlineAt) {
			hitDeadline.Store(true)
			return true
		}
		return false
	}

	runJob := func(jctx context.Context, j int) (r solveResult) {
		// A panicking set solve must degrade the set, not kill the
		// estimate: the recovered set joins the relaxation envelope like a
		// budget-expired one, and the panic text is preserved for the case
		// where no envelope exists to absorb it.
		defer func() {
			if p := recover(); p != nil {
				r = solveResult{done: true, unsolved: true, crashed: true,
					crashMsg: fmt.Sprint(p)}
			}
		}()
		if expired() {
			return solveResult{done: true, unsolved: true}
		}
		if tc := testCrashJob.Load(); tc != 0 && int(tc-1) == j {
			panic(fmt.Sprintf("ipet: test-injected crash in job %d", j))
		}
		d, k := j/nd, j%nd
		dir := &dirs[d]
		si := plan.distinct[k]
		var key string
		if a.persist {
			// A prior Estimate on this session may have solved this exact
			// (direction, loop rows, set region) already; its outcome is
			// cutoff-independent and transfers without any simplex work.
			// A certifying run only accepts hits that were certified when
			// produced; an uncertified cached claim falls through to a fresh
			// (certified) solve.
			key = solveKey(d, plan.loopKey, plan.keys[si])
			if v, ok := a.solveCache.Get(key); ok && (!a.Opts.Certify || v.certified) {
				r = solveResult{done: true, dup: true, cacheHit: true, status: v.status, cycles: v.cycles, certified: v.certified}
				r.stats.RootIntegral = v.rootIntegral
				if v.status == ilp.Optimal {
					incumbentOffer(&incumbents[d], dir.sense, v.cycles)
				}
				return r
			}
		}
		var cutoff int64
		useCutoff := false
		// Certify disables incumbent pruning: a Dominated claim carries no
		// certificate and cannot be checked, and exact-resolving every pruned
		// set would cost more than the pruning saves. Bounds are unaffected.
		if a.Opts.IncumbentPrune && !a.Opts.Certify {
			cutoff, useCutoff = incumbentLoad(&incumbents[d], dir.sense)
		}
		r = a.solveSet(jctx, dir, plan.sets[si], cutoff, useCutoff)
		r.done = true
		spent.Add(int64(r.stats.Pivots))
		if r.err == nil && r.status == ilp.Optimal {
			incumbentOffer(&incumbents[d], dir.sense, r.cycles)
		}
		// Only conclusive, cutoff-independent outcomes persist: an optimal
		// cycle count or proven infeasibility. Dominated depends on the
		// incumbent of this run; abandoned jobs prove nothing.
		// A suspect uncertified outcome is additionally barred from the cache:
		// its ill-conditioning signal would be invisible to a later certifying
		// run that trusted the cached value.
		if a.persist && r.err == nil && !r.unsolved &&
			(r.status == ilp.Optimal || r.status == ilp.Infeasible) &&
			(r.stats.SuspectPivots == 0 || r.certified) {
			a.solveCache.Put(key, cachedSolve{
				status:       r.status,
				cycles:       r.cycles,
				rootIntegral: r.stats.RootIntegral,
				certified:    r.certified,
			})
		}
		return r
	}

	workers := a.Opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numJobs {
		workers = numJobs
	}
	if workers <= 1 {
		// Sequential path: identical to the pre-pool analyzer, stopping at
		// the first error.
		for j := 0; j < numJobs; j++ {
			results[j] = runJob(jobCtx, j)
			if results[j].err != nil {
				break
			}
		}
	} else {
		jctx, cancel := context.WithCancel(jobCtx)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1) - 1)
					if j >= numJobs || jctx.Err() != nil {
						return
					}
					r := runJob(jctx, j)
					results[j] = r
					if r.err != nil {
						cancel()
						return
					}
				}
			}()
		}
		wg.Wait()
		cancel()
	}

	// Propagate the first real failure in job order. Jobs the analyzer's
	// own deadline interrupted — directly (DeadlineExceeded) or through
	// the pool shutdown it triggered (Canceled) — degrade to unsolved;
	// jobs abandoned by a sibling's real-error cancellation still report
	// context.Canceled and are skipped so the real error surfaces. The
	// caller's own context expiring or being cancelled stays an error,
	// checked last so it wins over any degraded reading.
	for j := range results {
		r := &results[j]
		if !r.done {
			// Never dispatched: the pool shut down (deadline, or a sibling
			// error that is reported below) before this job started.
			r.unsolved = true
			continue
		}
		err := r.err
		if err == nil {
			continue
		}
		if effDeadline > 0 && ctx.Err() == nil &&
			(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			r.err = nil
			r.unsolved = true
			hitDeadline.Store(true)
			continue
		}
		if errors.Is(err, context.Canceled) {
			continue
		}
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A deadline that expired before the pool dispatched anything leaves
	// no per-job trace; the derived context still records it.
	if effDeadline > 0 && errors.Is(jobCtx.Err(), context.DeadlineExceeded) {
		hitDeadline.Store(true)
	}
	est.Stats.DeadlineHit = hitDeadline.Load()

	// Work statistics accumulate once per distinct job, in job order, so
	// duplicate fan-out below cannot double-count a representative.
	for j := range results {
		r := &results[j]
		if r.unsolved {
			est.Stats.SetsUnsolved++
			if r.crashed {
				est.Stats.SetsWidened++
			}
			continue
		}
		if r.cacheHit {
			est.Stats.CacheHits++
			continue
		}
		est.LPSolves += r.stats.LPSolves
		est.Branches += r.stats.Branches
		est.Stats.Pivots += r.stats.Pivots
		est.Stats.SuspectPivots += r.stats.SuspectPivots
		est.Stats.NetworkSolves += r.stats.NetworkSolves
		est.Stats.RevisedPivots += r.stats.RevisedPivots
		est.Stats.Refactorizations += r.stats.Refactorizations
		est.Stats.CertFailures += r.certFailures
		est.Stats.ExactResolves += r.exactResolves
		if r.warm {
			est.Stats.WarmSolves++
		}
		if r.cold {
			est.Stats.ColdSolves++
		}
		switch r.status {
		case ilp.Dominated:
			est.Stats.IncumbentSkipped++
		case ilp.Optimal, ilp.Infeasible:
			est.Stats.Solved++
		}
	}

	// Fan distinct results back out to the full per-set arrays the reduce
	// walks, marking copies so a duplicate winner gets canonical counts.
	nSets := len(plan.sets)
	full := make([]solveResult, len(dirs)*nSets)
	for d := range dirs {
		for k, si := range plan.distinct {
			full[d*nSets+si] = results[d*nd+k]
		}
		for i := 0; i < nSets; i++ {
			if rep := plan.repOf[i]; rep != i {
				cp := full[d*nSets+rep]
				cp.dup = true
				full[d*nSets+i] = cp
			}
		}
	}

	worst, worstRes, err := a.reduceDir(est, &dirs[0], plan, full[:nSets])
	if err != nil {
		return nil, err
	}
	bcet, bcetRes, err := a.reduceDir(est, &dirs[1], plan, full[nSets:])
	if err != nil {
		return nil, err
	}
	if a.Opts.Certify {
		// A direction's bound is Certified when every distinct claim it
		// reduced over was backed by the exact layer; envelope reports
		// (SetIndex < 0) reduce over unsolved sets and never qualify.
		for d, rep := range []*BoundReport{worst, bcet} {
			allCert := rep.SetIndex >= 0
			rechecked := 0
			for k := 0; k < nd; k++ {
				r := &results[d*nd+k]
				if r.exactResolves > 0 {
					rechecked++
				}
				if !r.done || r.unsolved || !r.certified {
					allCert = false
				}
			}
			rep.Certified = allCert
			rep.RecheckedSets = rechecked
		}
	}
	if worstRes != nil {
		if err := a.finishDir(ctx, est, 0, plan, worst, worstRes); err != nil {
			return nil, err
		}
	}
	if bcetRes != nil {
		if err := a.finishDir(ctx, est, 1, plan, bcet, bcetRes); err != nil {
			return nil, err
		}
	}
	est.Stats.SolveTime = time.Since(tSolve)
	est.WCET = *worst
	est.BCET = *bcet
	if est.BCET.Cycles > est.WCET.Cycles {
		return nil, fmt.Errorf("ipet: internal error: BCET %d exceeds WCET %d", est.BCET.Cycles, est.WCET.Cycles)
	}
	a.noteEstimate(est)
	return est, nil
}

// aggregateCounts sums per-context block counts into per-function counts.
func (a *Session) aggregateCounts(values []float64) map[string][]int64 {
	out := map[string][]int64{}
	for _, ctx := range a.contexts {
		fc := a.Prog.Funcs[ctx.Func]
		counts, ok := out[ctx.Func]
		if !ok {
			counts = make([]int64, len(fc.Blocks))
			out[ctx.Func] = counts
		}
		for b := range fc.Blocks {
			counts[b] += int64(math.Round(values[a.blockVar(ctx.ID, b)]))
		}
	}
	return out
}

// BlockCosts exposes the cost bracket used for a function's blocks. The
// session holds tables only for functions reachable from the root (the only
// ones the objectives charge); tables for other functions are computed on
// demand.
func (a *Session) BlockCosts(fn string) []march.BlockCost {
	if c, ok := a.costs[fn]; ok {
		return c
	}
	if fc, ok := a.Prog.Funcs[fn]; ok {
		return march.CostsOf(fc, a.Opts.March)
	}
	return nil
}

// StructuralNetworkMatrix reports whether the intraprocedural structural
// constraints (the flow equations of Section III.B, per function instance)
// form a recognizable network (totally unimodular) matrix — the Section
// III.D explanation for why "the branch-and-bound ILP solver finds that the
// solution of the very first linear program call ... is integer valued".
//
// The interprocedural splice rows (d_entry(callee) = f_site, eq. 12) give
// call-edge columns a third entry and fall outside the two-nonzero
// sufficient test; integrality across the splice is the paper's empirical
// observation, which Stats.RootIntegral tracks on every solve.
func (a *Session) StructuralNetworkMatrix() bool {
	var rows []ilp.Constraint
	for _, ctx := range a.contexts {
		fc := a.Prog.Funcs[ctx.Func]
		for _, b := range fc.Blocks {
			inC := ilp.Constraint{Coeffs: map[int]float64{a.blockVar(ctx.ID, b.Index): 1}, Rel: ilp.EQ}
			for _, e := range b.In {
				inC.Coeffs[a.edgeVar(ctx.ID, e)] -= 1
			}
			outC := ilp.Constraint{Coeffs: map[int]float64{a.blockVar(ctx.ID, b.Index): 1}, Rel: ilp.EQ}
			for _, e := range b.Out {
				outC.Coeffs[a.edgeVar(ctx.ID, e)] -= 1
			}
			rows = append(rows, inC, outC)
		}
	}
	rootFC := a.Prog.Funcs[a.Root]
	rows = append(rows, ilp.Constraint{
		Coeffs: map[int]float64{a.edgeVar(0, rootFC.EntryEdge): 1}, Rel: ilp.EQ, RHS: 1,
	})
	p := &ilp.Problem{NumVars: a.nVars, Constraints: rows}
	return ilp.IsNetworkMatrix(p)
}
