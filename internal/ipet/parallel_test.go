package ipet

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
)

// manySetProgram builds a chain of n if-then-else diamonds plus the
// annotation that pins each diamond to exactly one arm via a disjunction,
// so the DNF cross product yields 2^n functionality constraint sets — the
// stress workload for the parallel solve scheduler. Diamond i occupies
// blocks x(3i+1) (condition), x(3i+2) (then), x(3i+3) (else).
func manySetProgram(n int) (src, annots string) {
	var sb, ab strings.Builder
	sb.WriteString("main:\n")
	ab.WriteString("func main {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "        beq r1, r0, .La%d\n", i)
		fmt.Fprintf(&sb, "        mul r2, r2, r2\n")
		fmt.Fprintf(&sb, "        jmp .Lb%d\n", i)
		fmt.Fprintf(&sb, ".La%d:  addi r2, r2, 1\n", i)
		fmt.Fprintf(&sb, ".Lb%d:  addi r3, r3, 1\n", i)
		fmt.Fprintf(&ab, "    (x%d = 1 & x%d = 0) | (x%d = 0 & x%d = 1)\n",
			3*i+2, 3*i+3, 3*i+2, 3*i+3)
	}
	sb.WriteString("        halt\n")
	ab.WriteString("}\n")
	return sb.String(), ab.String()
}

func estimateWithWorkers(t *testing.T, src, annots string, workers int) *Estimate {
	t.Helper()
	exe, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	opts := DefaultOptions()
	opts.Workers = workers
	an, err := New(prog, "main", opts)
	if err != nil {
		t.Fatalf("ipet.New: %v", err)
	}
	if annots != "" {
		f, err := constraint.Parse(annots)
		if err != nil {
			t.Fatalf("annotations: %v", err)
		}
		if err := an.Apply(f); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	est, err := an.Estimate()
	if err != nil {
		t.Fatalf("estimate (workers=%d): %v", workers, err)
	}
	return est
}

// TestParallelEstimateDeterminism runs the 32-set stress workload at
// several worker counts and requires every field of the Estimate — cycles,
// winning set index, block counts, set statistics — to match the
// sequential result exactly. Run under -race in CI this doubles as the
// regression gate for the worker pool.
func TestParallelEstimateDeterminism(t *testing.T) {
	src, annots := manySetProgram(5)
	seq := estimateWithWorkers(t, src, annots, 1)
	if seq.NumSets != 32 {
		t.Fatalf("stress workload has %d sets, want 32", seq.NumSets)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		par := estimateWithWorkers(t, src, annots, workers)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d diverges from sequential:\nseq: %+v\npar: %+v", workers, seq, par)
		}
	}
}

// TestParallelBenchmarksIdentical repeats the determinism check on the
// paper's own multi-set workload shapes (dhry-style pruned disjunctions):
// a smaller diamond chain where some disjuncts are trivially null and get
// pruned, exercising the pruned-set bookkeeping under the pool.
func TestParallelBenchmarksIdentical(t *testing.T) {
	src, _ := manySetProgram(3)
	// First diamond pinned both ways (one disjunct null: x2 can't be 1 and
	// 0 at once after intersecting with the second formula's x2 = 1).
	annots := `func main {
    (x2 = 1 & x3 = 0) | (x2 = 0 & x3 = 1)
    x2 = 1
    (x5 = 1 & x6 = 0) | (x5 = 0 & x6 = 1)
    (x8 = 1 & x9 = 0) | (x8 = 0 & x9 = 1)
}
`
	seq := estimateWithWorkers(t, src, annots, 1)
	if seq.PrunedSets == 0 {
		t.Fatalf("expected pruned sets in the workload, got %+v", seq)
	}
	for _, workers := range []int{4, 8} {
		par := estimateWithWorkers(t, src, annots, workers)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d diverges:\nseq: %+v\npar: %+v", workers, seq, par)
		}
	}
}

// TestParallelUnboundedDiagnostic: the missing-loop-bound diagnostic must
// survive the parallel path with cancellation of sibling jobs.
func TestParallelUnboundedDiagnostic(t *testing.T) {
	src := `
main:
        add r2, r1, r0
.Lhead: slti r3, r2, 10
        beq r3, r0, .Lexit
        addi r2, r2, 1
        jmp .Lhead
.Lexit: halt
`
	// A disjunction so both directions have several jobs in flight.
	annots := `func main {
    (x1 = 1) | (x1 = 1 & x4 = 1)
}
`
	exe, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Workers = workers
		an, err := New(prog, "main", opts)
		if err != nil {
			t.Fatal(err)
		}
		f, err := constraint.Parse(annots)
		if err != nil {
			t.Fatal(err)
		}
		if err := an.Apply(f); err != nil {
			t.Fatal(err)
		}
		_, err = an.Estimate()
		if err == nil || !strings.Contains(err.Error(), "loop lacks a bound") {
			t.Fatalf("workers=%d: error = %v, want unbounded-loop diagnostic", workers, err)
		}
		if !strings.Contains(err.Error(), "main loop 1") {
			t.Fatalf("workers=%d: diagnostic misses the loop name: %v", workers, err)
		}
	}
}

// TestEstimateContextCancelled: an already-cancelled context aborts the
// solve instead of returning a bound.
func TestEstimateContextCancelled(t *testing.T) {
	src, annots := manySetProgram(4)
	exe, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Workers = workers
		an, err := New(prog, "main", opts)
		if err != nil {
			t.Fatal(err)
		}
		f, err := constraint.Parse(annots)
		if err != nil {
			t.Fatal(err)
		}
		if err := an.Apply(f); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := an.EstimateContext(ctx); err == nil {
			t.Fatalf("workers=%d: cancelled estimate succeeded", workers)
		}
	}
}
