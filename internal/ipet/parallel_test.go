package ipet

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
)

// manySetProgram builds a chain of n if-then-else diamonds plus the
// annotation that pins each diamond to exactly one arm via a disjunction,
// so the DNF cross product yields 2^n functionality constraint sets — the
// stress workload for the parallel solve scheduler, and the same shape as
// examples/pathexplosion. Diamond i occupies blocks x(3i+1) (condition),
// x(3i+2) (then), x(3i+3) (else).
func manySetProgram(n int) (src, annots string) {
	var sb, ab strings.Builder
	sb.WriteString("main:\n")
	ab.WriteString("func main {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "        beq r1, r0, .La%d\n", i)
		fmt.Fprintf(&sb, "        mul r2, r2, r2\n")
		fmt.Fprintf(&sb, "        jmp .Lb%d\n", i)
		fmt.Fprintf(&sb, ".La%d:  addi r2, r2, 1\n", i)
		fmt.Fprintf(&sb, ".Lb%d:  addi r3, r3, 1\n", i)
		fmt.Fprintf(&ab, "    (x%d = 1 & x%d = 0) | (x%d = 0 & x%d = 1)\n",
			3*i+2, 3*i+3, 3*i+2, 3*i+3)
	}
	sb.WriteString("        halt\n")
	ab.WriteString("}\n")
	return sb.String(), ab.String()
}

// estimateOpts assembles, analyzes and estimates src with the given option
// mutation applied on top of the defaults.
func estimateOpts(t *testing.T, src, annots string, mutate func(*Options)) *Estimate {
	t.Helper()
	exe, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	opts := DefaultOptions()
	if mutate != nil {
		mutate(&opts)
	}
	an, err := New(prog, "main", opts)
	if err != nil {
		t.Fatalf("ipet.New: %v", err)
	}
	if annots != "" {
		f, err := constraint.Parse(annots)
		if err != nil {
			t.Fatalf("annotations: %v", err)
		}
		if err := an.Apply(f); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	est, err := an.Estimate()
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	return est
}

func estimateWithWorkers(t *testing.T, src, annots string, workers int) *Estimate {
	t.Helper()
	return estimateOpts(t, src, annots, func(o *Options) { o.Workers = workers })
}

// report projects an Estimate onto everything the analysis promises to hold
// invariant across worker counts and solver mechanisms: the two bound
// reports (cycles, counts, winning set) and the set bookkeeping. Work
// counters (pivots, warm/cold splits, incumbent skips) legitimately vary
// with the mechanism mix and — under parallel incumbent pruning — with job
// timing, so they are deliberately excluded here and compared separately
// where they are deterministic.
type report struct {
	WCET, BCET                      BoundReport
	NumSets, PrunedSets, SolvedSets int
}

func reportOf(est *Estimate) report {
	return report{
		WCET:       est.WCET,
		BCET:       est.BCET,
		NumSets:    est.NumSets,
		PrunedSets: est.PrunedSets,
		SolvedSets: est.SolvedSets,
	}
}

// stripTimes returns a copy with the wall-clock fields zeroed so the rest
// of the Estimate can be compared with reflect.DeepEqual.
func stripTimes(est *Estimate) Estimate {
	cp := *est
	cp.Stats.BuildTime = 0
	cp.Stats.SolveTime = 0
	return cp
}

// TestParallelEstimateDeterminism runs the 32-set stress workload at
// several worker counts and requires the bound reports and set statistics
// to match the sequential result exactly. With incumbent pruning disabled,
// every distinct job runs to completion whatever the schedule, so the full
// Estimate — including pivot and solve counters — must be identical too.
// Run under -race in CI this doubles as the regression gate for the worker
// pool.
func TestParallelEstimateDeterminism(t *testing.T) {
	src, annots := manySetProgram(5)
	seq := estimateWithWorkers(t, src, annots, 1)
	if seq.NumSets != 32 {
		t.Fatalf("stress workload has %d sets, want 32", seq.NumSets)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		par := estimateWithWorkers(t, src, annots, workers)
		if !reflect.DeepEqual(reportOf(seq), reportOf(par)) {
			t.Errorf("workers=%d diverges from sequential:\nseq: %+v\npar: %+v",
				workers, reportOf(seq), reportOf(par))
		}
	}
	noPrune := func(w int) *Estimate {
		return estimateOpts(t, src, annots, func(o *Options) {
			o.Workers = w
			o.IncumbentPrune = false
		})
	}
	seqFull := stripTimes(noPrune(1))
	for _, workers := range []int{4, 8} {
		parFull := stripTimes(noPrune(workers))
		if !reflect.DeepEqual(seqFull, parFull) {
			t.Errorf("workers=%d (no pruning) diverges in full stats:\nseq: %+v\npar: %+v",
				workers, seqFull, parFull)
		}
	}
}

// TestParallelBenchmarksIdentical repeats the determinism check on a
// workload where some disjuncts are trivially null and get pruned,
// exercising the pruned-set bookkeeping under the pool.
func TestParallelBenchmarksIdentical(t *testing.T) {
	src, _ := manySetProgram(3)
	// First diamond pinned both ways (one disjunct null: x2 can't be 1 and
	// 0 at once after intersecting with the second formula's x2 = 1).
	annots := `func main {
    (x2 = 1 & x3 = 0) | (x2 = 0 & x3 = 1)
    x2 = 1
    (x5 = 1 & x6 = 0) | (x5 = 0 & x6 = 1)
    (x8 = 1 & x9 = 0) | (x8 = 0 & x9 = 1)
}
`
	seq := estimateWithWorkers(t, src, annots, 1)
	if seq.PrunedSets == 0 {
		t.Fatalf("expected pruned sets in the workload, got %+v", seq)
	}
	for _, workers := range []int{4, 8} {
		par := estimateWithWorkers(t, src, annots, workers)
		if !reflect.DeepEqual(reportOf(seq), reportOf(par)) {
			t.Errorf("workers=%d diverges:\nseq: %+v\npar: %+v",
				workers, reportOf(seq), reportOf(par))
		}
	}
}

// TestMechanismTogglesIdentical is the correctness gate for the incremental
// machinery on the 64-set path-explosion workload: every combination of
// {set dedup, warm start, incumbent pruning}, at every worker count, must
// produce a bound report bit-identical to the exhaustive cold sequential
// solve (all mechanisms off, one worker).
func TestMechanismTogglesIdentical(t *testing.T) {
	src, annots := manySetProgram(6)
	baseline := estimateOpts(t, src, annots, func(o *Options) {
		o.Workers = 1
		o.DedupSets, o.WarmStart, o.IncumbentPrune = false, false, false
	})
	if baseline.NumSets != 64 {
		t.Fatalf("workload has %d sets, want 64", baseline.NumSets)
	}
	want := reportOf(baseline)
	for mask := 0; mask < 8; mask++ {
		dedup, warm, prune := mask&1 != 0, mask&2 != 0, mask&4 != 0
		for _, workers := range []int{1, 3, 8} {
			est := estimateOpts(t, src, annots, func(o *Options) {
				o.Workers = workers
				o.DedupSets, o.WarmStart, o.IncumbentPrune = dedup, warm, prune
			})
			if got := reportOf(est); !reflect.DeepEqual(want, got) {
				t.Errorf("dedup=%v warm=%v prune=%v workers=%d diverges:\nwant: %+v\ngot:  %+v",
					dedup, warm, prune, workers, want, got)
			}
		}
	}
}

// TestPivotReduction is the performance gate of the incremental machinery:
// on the 64-set workload, warm starts plus incumbent pruning must cut total
// simplex pivots at least in half relative to the exhaustive cold path
// (the PR-1 solver). Run sequentially so both counters are deterministic.
func TestPivotReduction(t *testing.T) {
	src, annots := manySetProgram(6)
	cold := estimateOpts(t, src, annots, func(o *Options) {
		o.Workers = 1
		o.DedupSets, o.WarmStart, o.IncumbentPrune = false, false, false
	})
	fast := estimateOpts(t, src, annots, func(o *Options) { o.Workers = 1 })
	if !reflect.DeepEqual(reportOf(cold), reportOf(fast)) {
		t.Fatalf("bounds diverge:\ncold: %+v\nfast: %+v", reportOf(cold), reportOf(fast))
	}
	if fast.Stats.Pivots*2 > cold.Stats.Pivots {
		t.Errorf("pivots: cold %d, all mechanisms %d — want at least a 2x reduction",
			cold.Stats.Pivots, fast.Stats.Pivots)
	}
	t.Logf("pivots: cold %d, incremental %d (%.1fx)",
		cold.Stats.Pivots, fast.Stats.Pivots,
		float64(cold.Stats.Pivots)/float64(fast.Stats.Pivots))
}

// TestSolveSetCancelled: solveSet must notice a dead context before paying
// for a simplex run, so a cancelled estimate drains its queued jobs without
// burning a solve each.
func TestSolveSetCancelled(t *testing.T) {
	src, annots := manySetProgram(2)
	exe, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	an, err := New(prog, "main", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := constraint.Parse(annots)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Apply(f); err != nil {
		t.Fatal(err)
	}
	plan, _, err := an.solverSetup()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := an.solveSet(ctx, &plan.dirs[0], plan.sets[0], 0, false)
	if r.err == nil {
		t.Fatal("solveSet on a cancelled context returned no error")
	}
	if r.stats.Pivots != 0 || r.stats.LPSolves != 0 || r.warm || r.cold {
		t.Fatalf("solveSet did work despite cancellation: %+v", r)
	}
}

// TestParallelUnboundedDiagnostic: the missing-loop-bound diagnostic must
// survive the parallel path with cancellation of sibling jobs.
func TestParallelUnboundedDiagnostic(t *testing.T) {
	src := `
main:
        add r2, r1, r0
.Lhead: slti r3, r2, 10
        beq r3, r0, .Lexit
        addi r2, r2, 1
        jmp .Lhead
.Lexit: halt
`
	// A disjunction so both directions have several jobs in flight.
	annots := `func main {
    (x1 = 1) | (x1 = 1 & x4 = 1)
}
`
	exe, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Workers = workers
		an, err := New(prog, "main", opts)
		if err != nil {
			t.Fatal(err)
		}
		f, err := constraint.Parse(annots)
		if err != nil {
			t.Fatal(err)
		}
		if err := an.Apply(f); err != nil {
			t.Fatal(err)
		}
		_, err = an.Estimate()
		if err == nil || !strings.Contains(err.Error(), "loop lacks a bound") {
			t.Fatalf("workers=%d: error = %v, want unbounded-loop diagnostic", workers, err)
		}
		if !strings.Contains(err.Error(), "main loop 1") {
			t.Fatalf("workers=%d: diagnostic misses the loop name: %v", workers, err)
		}
	}
}

// TestEstimateContextCancelled: an already-cancelled context aborts the
// solve instead of returning a bound.
func TestEstimateContextCancelled(t *testing.T) {
	src, annots := manySetProgram(4)
	exe, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Workers = workers
		an, err := New(prog, "main", opts)
		if err != nil {
			t.Fatal(err)
		}
		f, err := constraint.Parse(annots)
		if err != nil {
			t.Fatal(err)
		}
		if err := an.Apply(f); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := an.EstimateContext(ctx); err == nil {
			t.Fatalf("workers=%d: cancelled estimate succeeded", workers)
		}
	}
}
