package ipet

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
)

// sessionScenarios are annotation variants of the check_data program the
// session tests replay: the paper's constraints, a tightened loop bound
// (new warm base), and a perturbed disjunct (partial set-cache overlap).
var sessionScenarios = []string{
	checkDataAnnots,
	`
func check_data {
    loop 1: 1 .. 8
    (x4 = 0 & x6 = 1) | (x4 = 1 & x6 = 0)
    x4 = x9
}
`,
	`
func check_data {
    loop 1: 1 .. 10
    (x4 = 0 & x6 = 1) | (x4 = 1 & x6 = 0 & x2 >= 1)
    x4 = x9
}
`,
}

func checkDataProgram(t *testing.T) *cfg.Program {
	t.Helper()
	exe, err := asm.Assemble(checkDataASM)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func parseAnnots(t *testing.T, src string) *constraint.File {
	t.Helper()
	f, err := constraint.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// oneShot runs the scenario through a fresh standalone Analyzer — the
// reference the session path must reproduce bit-identically.
func oneShot(t *testing.T, prog *cfg.Program, root, annots string, opts Options) *Estimate {
	t.Helper()
	an, err := New(prog, root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Apply(parseAnnots(t, annots)); err != nil {
		t.Fatal(err)
	}
	est, err := an.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func reportsEqual(a, b *Estimate) bool {
	return reflect.DeepEqual(a.WCET, b.WCET) && reflect.DeepEqual(a.BCET, b.BCET)
}

// TestSessionMatchesOneShot: every scenario solved off one shared session —
// cold and from a fully warmed cache, at several worker counts — must
// report BoundReports bit-identical to a fresh one-shot Analyzer.
func TestSessionMatchesOneShot(t *testing.T) {
	prog := checkDataProgram(t)
	for _, workers := range []int{1, 3} {
		opts := DefaultOptions()
		opts.Workers = workers
		sess, err := Prepare(prog, "check_data", opts)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			for si, annots := range sessionScenarios {
				got, err := sess.Estimate(parseAnnots(t, annots))
				if err != nil {
					t.Fatalf("workers=%d pass=%d scenario %d: %v", workers, pass, si, err)
				}
				want := oneShot(t, prog, "check_data", annots, opts)
				if !reportsEqual(got, want) {
					t.Fatalf("workers=%d pass=%d scenario %d diverges from one-shot:\nsession: %+v %+v\noneshot: %+v %+v",
						workers, pass, si, got.WCET, got.BCET, want.WCET, want.BCET)
				}
			}
		}
	}
}

// TestSessionCacheReuse: repeating a scenario on a prepared session must
// answer every distinct set from the cache with zero simplex work, and a
// perturbed scenario must still hit on the sets it shares.
func TestSessionCacheReuse(t *testing.T) {
	prog := checkDataProgram(t)
	opts := DefaultOptions()
	opts.Workers = 1
	opts.IncumbentPrune = false // every distinct set solves to a cacheable outcome
	sess, err := Prepare(prog, "check_data", opts)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Estimate(parseAnnots(t, sessionScenarios[0]))
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CacheHits != 0 {
		t.Fatalf("cold run reports %d cache hits", first.Stats.CacheHits)
	}
	if first.Stats.Pivots == 0 {
		t.Fatal("cold run reports zero pivots")
	}
	second, err := sess.Estimate(parseAnnots(t, sessionScenarios[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(first, second) {
		t.Fatalf("cached repeat diverges:\nfirst: %+v %+v\nsecond: %+v %+v",
			first.WCET, first.BCET, second.WCET, second.BCET)
	}
	if want := first.Stats.Solved; second.Stats.CacheHits != want {
		t.Fatalf("repeat cache hits = %d, want %d (every solved job)", second.Stats.CacheHits, want)
	}
	if second.Stats.Pivots != 0 {
		t.Fatalf("repeat spent %d pivots; warm base, outcomes, and counts should all be cached", second.Stats.Pivots)
	}

	// The perturbed scenario rewrites one disjunct: the set built from the
	// untouched disjunct is canonically unchanged and must hit.
	third, err := sess.Estimate(parseAnnots(t, sessionScenarios[2]))
	if err != nil {
		t.Fatal(err)
	}
	if third.Stats.CacheHits == 0 {
		t.Fatal("perturbed scenario shares a set with the first but hit nothing")
	}
	if third.Stats.Solved == 0 {
		t.Fatal("perturbed scenario solved nothing new") // its changed set must miss
	}
	bases, solves, finishes := sess.CacheStats()
	if bases == 0 || solves == 0 || finishes == 0 {
		t.Fatalf("cache stats %d/%d/%d, want all nonzero", bases, solves, finishes)
	}
}

// TestSessionConcurrentEstimates drives one session from many goroutines
// (the -race CI job exercises the cache locking) and checks every result
// against single-threaded references.
func TestSessionConcurrentEstimates(t *testing.T) {
	prog := checkDataProgram(t)
	opts := DefaultOptions()
	opts.Workers = 2
	want := make([]*Estimate, len(sessionScenarios))
	for i, annots := range sessionScenarios {
		want[i] = oneShot(t, prog, "check_data", annots, opts)
	}
	sess, err := Prepare(prog, "check_data", opts)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	errs := make(chan error, goroutines*len(sessionScenarios))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range sessionScenarios {
				// Stagger scenario order across goroutines so cache fills
				// race with reads.
				si := (i + g) % len(sessionScenarios)
				got, err := sess.Estimate(parseAnnots(t, sessionScenarios[si]))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d scenario %d: %w", g, si, err)
					return
				}
				if !reportsEqual(got, want[si]) {
					errs <- fmt.Errorf("goroutine %d scenario %d diverges: %+v vs %+v", g, si, got.WCET, want[si].WCET)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSessionContextQualifiedCache: two scenarios differing only in which
// call context they pin lower to different variable columns; the session
// cache must keep their outcomes apart and reproduce each one-shot.
func TestSessionContextQualifiedCache(t *testing.T) {
	exe, err := asm.Assemble(callContextProgram)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	scenA := "func main {\n    store.x1 @ f1 = 1\n    store.x1 @ f2 = 0\n}\n"
	scenB := "func main {\n    store.x1 @ f1 = 0\n    store.x1 @ f2 = 1\n}\n"
	opts := DefaultOptions()
	opts.Workers = 1
	sess, err := Prepare(prog, "main", opts)
	if err != nil {
		t.Fatal(err)
	}
	estA, err := sess.Estimate(parseAnnots(t, scenA))
	if err != nil {
		t.Fatal(err)
	}
	estB, err := sess.Estimate(parseAnnots(t, scenB))
	if err != nil {
		t.Fatal(err)
	}
	// The f1 route runs the mul-heavy arm; pinning f2 instead must change
	// the bound. A cache that merged the context-qualified rows would
	// return estA's cycles here.
	if estA.WCET.Cycles == estB.WCET.Cycles {
		t.Fatalf("context-qualified scenarios report the same WCET %d; cache collided", estA.WCET.Cycles)
	}
	if estB.Stats.CacheHits != 0 {
		t.Fatalf("scenario B hit %d cached outcomes of scenario A", estB.Stats.CacheHits)
	}
	for name, pair := range map[string][2]*Estimate{
		"A": {estA, oneShot(t, prog, "main", scenA, opts)},
		"B": {estB, oneShot(t, prog, "main", scenB, opts)},
	} {
		if !reportsEqual(pair[0], pair[1]) {
			t.Fatalf("scenario %s diverges from one-shot: %+v vs %+v", name, pair[0].WCET, pair[1].WCET)
		}
	}
	// Replays hit and stay identical.
	estA2, err := sess.Estimate(parseAnnots(t, scenA))
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(estA, estA2) || estA2.Stats.CacheHits == 0 {
		t.Fatalf("replay of scenario A: hits=%d, reports equal=%v", estA2.Stats.CacheHits, reportsEqual(estA, estA2))
	}
}

// TestApplyDefensiveCopy: mutating the annotation objects after Apply must
// not leak into the analysis — Apply deep-copies what it is given.
func TestApplyDefensiveCopy(t *testing.T) {
	prog := checkDataProgram(t)
	want := oneShot(t, prog, "check_data", checkDataAnnots, DefaultOptions())

	an, err := New(prog, "check_data", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	file := parseAnnots(t, checkDataAnnots)
	if err := an.Apply(file); err != nil {
		t.Fatal(err)
	}
	// Corrupt every layer of the applied file: loop bounds, a formula's
	// relation terms, and the section list itself.
	sec := &file.Sections[0]
	sec.LoopBounds[0].Hi = 1
	var corrupt func(f constraint.Formula)
	corrupt = func(f constraint.Formula) {
		switch n := f.(type) {
		case *constraint.Atom:
			n.Rel.RHS = 999
			for v := range n.Rel.Terms {
				n.Rel.Terms[v] = -7
			}
		case *constraint.And:
			for _, p := range n.Parts {
				corrupt(p)
			}
		case *constraint.Or:
			for _, p := range n.Parts {
				corrupt(p)
			}
		}
	}
	for _, f := range sec.Formulas {
		corrupt(f)
	}
	file.Sections = nil

	got, err := an.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(got, want) {
		t.Fatalf("post-Apply mutation leaked into the analysis:\ngot: %+v %+v\nwant: %+v %+v",
			got.WCET, got.BCET, want.WCET, want.BCET)
	}
}
