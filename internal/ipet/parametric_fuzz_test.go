package ipet

import (
	"errors"
	"testing"

	"cinderella/internal/autobound"
	"cinderella/internal/cc"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/progfuzz"
)

// FuzzParametricAgrees is the parametric layer's agreement property: for
// any generatable program, any choice of loop bound made symbolic, and any
// parameter point in the declared domain, the piecewise-linear formula must
// bit-match a fresh concrete Estimate — on the cycle bounds where it
// covers the point (Eval), and through its concrete fallback everywhere
// (EstimateAt). A formula that cannot be built (nested parametric loops,
// unpinned entry counts) is allowed to refuse; it is never allowed to
// answer wrong.
func FuzzParametricAgrees(f *testing.F) {
	f.Add(int64(1), uint16(0), uint16(3))
	f.Add(int64(7), uint16(1), uint16(2))
	f.Add(int64(23), uint16(2), uint16(5))
	f.Add(int64(1000), uint16(3), uint16(1))
	f.Add(int64(4242), uint16(5), uint16(4))
	f.Fuzz(func(t *testing.T, seed int64, pick, span uint16) {
		src := progfuzz.Generate(seed)
		exe, _, err := cc.Build(src)
		if err != nil {
			t.Skip()
		}
		prog, err := cfg.Build(exe)
		if err != nil {
			t.Skip()
		}
		res := autobound.Derive(prog)
		totalLoops := 0
		for _, fc := range prog.Funcs {
			totalLoops += len(fc.Loops)
		}
		if totalLoops == 0 || len(res.Bounds) != totalLoops {
			t.Skip() // nothing to parametrize, or an underivable loop
		}
		file := res.File()

		// Make the pick-th derived upper bound symbolic over a small domain
		// starting at its derived value (so every point stays a valid
		// bound: domain lo >= the concrete lower end).
		var bounds []*constraint.LoopBound
		for si := range file.Sections {
			for bi := range file.Sections[si].LoopBounds {
				bounds = append(bounds, &file.Sections[si].LoopBounds[bi])
			}
		}
		if len(bounds) == 0 {
			t.Skip()
		}
		lb := bounds[int(pick)%len(bounds)]
		domLo := lb.Hi
		domHi := domLo + int64(1+span%6)
		lb.HiSym, lb.Hi = "n1", 0

		opts := DefaultOptions()
		opts.Workers = 1
		sess, err := Prepare(prog, "f", opts)
		if err != nil {
			t.Skip()
		}
		pb, err := sess.Parametrize(file, []ParamSpec{{Name: "n1", Lo: domLo, Hi: domHi}})
		if err != nil {
			// Refusing is legal (e.g. the symbolic loop's entry count is not
			// pinned); answering wrong is what the loop below hunts.
			t.Skip()
		}

		for theta := domLo; theta <= domHi; theta++ {
			params := []int64{theta}
			bound, err := file.Bind(map[string]int64{"n1": theta})
			if err != nil {
				t.Fatalf("seed %d: Bind(%d): %v", seed, theta, err)
			}
			an, err := New(prog, "f", opts)
			if err != nil {
				t.Fatalf("seed %d: New: %v", seed, err)
			}
			if err := an.Apply(bound); err != nil {
				t.Fatalf("seed %d: Apply(%d): %v", seed, theta, err)
			}
			want, wantErr := an.Estimate()

			w, _, wok := pb.Eval(params)
			b, _, bok := pb.EvalBCET(params)
			if wantErr != nil {
				var inf *InfeasibleError
				if !errors.As(wantErr, &inf) {
					t.Fatalf("seed %d n1=%d: concrete estimate: %v", seed, theta, wantErr)
				}
				if wok || bok {
					t.Fatalf("seed %d n1=%d: formula answered [%d, %d] but the scenario is infeasible",
						seed, theta, b, w)
				}
			} else {
				if wok && w != want.WCET.Cycles {
					t.Fatalf("seed %d n1=%d: formula WCET %d, concrete %d\n%s",
						seed, theta, w, want.WCET.Cycles, src)
				}
				if bok && b != want.BCET.Cycles {
					t.Fatalf("seed %d n1=%d: formula BCET %d, concrete %d\n%s",
						seed, theta, b, want.BCET.Cycles, src)
				}
			}

			est, estErr := pb.EstimateAt(params)
			switch {
			case wantErr != nil:
				var inf, gotInf *InfeasibleError
				if !errors.As(wantErr, &inf) || !errors.As(estErr, &gotInf) {
					t.Fatalf("seed %d n1=%d: EstimateAt err %v, concrete err %v", seed, theta, estErr, wantErr)
				}
			case estErr != nil:
				t.Fatalf("seed %d n1=%d: EstimateAt: %v", seed, theta, estErr)
			case est.WCET.Cycles != want.WCET.Cycles || est.BCET.Cycles != want.BCET.Cycles:
				t.Fatalf("seed %d n1=%d: EstimateAt [%d, %d], concrete [%d, %d]\n%s",
					seed, theta, est.BCET.Cycles, est.WCET.Cycles,
					want.BCET.Cycles, want.WCET.Cycles, src)
			}
		}
	})
}
