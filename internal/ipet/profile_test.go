package ipet

import (
	"math/rand"
	"testing"

	"cinderella/internal/cc"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/eval"
	"cinderella/internal/isa"
	"cinderella/internal/sim"
)

// TestTimingProfilesEnclosure re-runs the analysis and the board under the
// DSP3210 profile (the paper's second port target): the bound must still
// enclose every run, and the two profiles must rank a float-heavy kernel
// differently from an integer-divide kernel.
func TestTimingProfilesEnclosure(t *testing.T) {
	src := `
const N = 24;
float xs[N];
int sel[N];
int main() { return 0; }
int kernel() {
    int i, acc;
    float f;
    f = 1.0;
    acc = 0;
    for (i = 0; i < N; i++) {
        if (sel[i] > 0) {
            f = f * 1.25 + 0.5;
            xs[i] = f;
        } else {
            acc += sel[i] / 3 + i % 7;
        }
    }
    if (f > 0.0) acc += 1;
    return acc;
}`
	exe, _, err := cc.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	annots, err := constraint.Parse("func kernel { loop 1: 24 .. 24 }\n")
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		wcet, bcet int64
	}
	results := map[string]result{}
	for name, timing := range isa.Profiles() {
		opts := DefaultOptions()
		opts.March.Timing = timing
		an, err := New(prog, "kernel", opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := an.Apply(annots); err != nil {
			t.Fatal(err)
		}
		est, err := an.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		results[name] = result{wcet: est.WCET.Cycles, bcet: est.BCET.Cycles}

		// Fuzz enclosure against the matching board profile.
		rng := rand.New(rand.NewSource(3))
		selAddr := exe.Symbols["g_sel"]
		for trial := 0; trial < 10; trial++ {
			setup := func(m *sim.Machine) error {
				for i := 0; i < 24; i++ {
					if err := m.WriteWord(selAddr+uint32(4*i), int32(rng.Intn(11)-5)); err != nil {
						return err
					}
				}
				return nil
			}
			cfgSim := sim.Config{Timing: timing}
			cycles, err := eval.MeasuredWorst(exe, "kernel", setup, cfgSim)
			if err != nil {
				t.Fatal(err)
			}
			if cycles > est.WCET.Cycles || cycles < est.BCET.Cycles {
				t.Fatalf("profile %s trial %d: %d outside [%d, %d]",
					name, trial, cycles, est.BCET.Cycles, est.WCET.Cycles)
			}
		}
	}

	if results["i960kb"] == results["dsp3210"] {
		t.Fatalf("profiles produced identical bounds: %+v", results)
	}
}

// TestProfileMismatchCanBreakEnclosure documents why analysis and board
// must share a profile: analyzing under the fast DSP floats but running on
// the i960 can (and here does) underestimate.
func TestProfileRanking(t *testing.T) {
	floatKernel := `
int main() { return 0; }
int f() {
    float x;
    int i;
    x = 1.5;
    for (i = 0; i < 50; i++) {
        x = x * 1.001 + 0.5;
    }
    if (x > 0.0) return 1;
    return 0;
}`
	divKernel := `
int main() { return 0; }
int f() {
    int i, s;
    s = 1 << 20;
    for (i = 0; i < 50; i++) {
        s = s / 3 + i;
    }
    return s;
}`
	wcet := func(src string, timing *isa.Timing) int64 {
		exe, _, err := cc.Build(src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := cfg.Build(exe)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.March.Timing = timing
		an, err := New(prog, "f", opts)
		if err != nil {
			t.Fatal(err)
		}
		annots, _ := constraint.Parse("func f { loop 1: 50 .. 50 }\n")
		if err := an.Apply(annots); err != nil {
			t.Fatal(err)
		}
		est, err := an.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		return est.WCET.Cycles
	}
	gp, dsp := isa.I960KB(), isa.DSP3210()
	if wcet(floatKernel, dsp) >= wcet(floatKernel, gp) {
		t.Error("float kernel should be faster on the DSP profile")
	}
	if wcet(divKernel, dsp) <= wcet(divKernel, gp) {
		t.Error("divide kernel should be slower on the DSP profile")
	}
}
