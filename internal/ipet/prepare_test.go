package ipet

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/ilp"
	"cinderella/internal/prepcache"
)

// prepSrc is a program exercising every structural row shape: a loop, a
// diamond, two call sites of the same callee (two contexts), and a helper
// unreachable from main.
const prepSrc = `
main:
        addi r1, r0, 8
.Lloop:
        beq r1, r0, .Ldone   ; loop header
        call work
        call work
        addi r1, r1, -1
        jmp .Lloop
.Ldone:
        halt

work:
        beq r1, r0, .Lw1
        addi r2, r0, 1
        jmp .Lw2
.Lw1:
        addi r2, r0, 2
.Lw2:
        ret

orphan:
        addi r3, r0, 7
        ret
`

func prepareFor(t *testing.T, src, root string, opts Options) *Session {
	t.Helper()
	exe, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	prog, err := prepcache.Default().BuildProgram(exe)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	sess, err := Prepare(prog, root, opts)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return sess
}

// TestPackedStructuralMatchesDirectPack asserts the template-relocation
// assembly of the packed structural system is bit-identical to lowering
// StructuralConstraints through ilp.Pack — cold and artifact-warm, serial
// and parallel.
func TestPackedStructuralMatchesDirectPack(t *testing.T) {
	prepcache.Default().Reset()
	for _, workers := range []int{1, 4} {
		for pass := 0; pass < 2; pass++ { // pass 0 cold, pass 1 warm
			opts := DefaultOptions()
			opts.Workers = workers
			sess := prepareFor(t, prepSrc, "main", opts)
			want := ilp.Pack(sess.StructuralConstraints())
			got := sess.packedStructural
			if len(got) != len(want) {
				t.Fatalf("workers=%d pass=%d: %d assembled rows, want %d", workers, pass, len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i].Cols, want[i].Cols) ||
					!reflect.DeepEqual(got[i].Vals, want[i].Vals) ||
					got[i].Rel != want[i].Rel || got[i].RHS != want[i].RHS {
					t.Fatalf("workers=%d pass=%d: row %d differs:\n got %+v\nwant %+v",
						workers, pass, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPrepareArtifactCounters checks the hit/miss ledger: a cold Prepare is
// all misses, re-preparing the identical program is all hits, and the
// counters surface through Totals().
func TestPrepareArtifactCounters(t *testing.T) {
	prepcache.Default().Reset()
	opts := DefaultOptions()
	opts.Workers = 1

	cold := prepareFor(t, prepSrc, "main", opts)
	ch, cm := cold.ArtifactStats()
	if ch != 0 || cm == 0 {
		t.Fatalf("cold prepare: hits=%d misses=%d, want 0 hits and >0 misses", ch, cm)
	}
	// Two artifacts (cost table + row template) per reachable cacheable
	// function: main and work, not orphan.
	if cm != 4 {
		t.Fatalf("cold prepare: %d misses, want 4 (2 artifacts x 2 reachable functions)", cm)
	}

	warm := prepareFor(t, prepSrc, "main", opts)
	wh, wm := warm.ArtifactStats()
	if wm != 0 || wh != cm {
		t.Fatalf("warm prepare: hits=%d misses=%d, want %d hits and 0 misses", wh, wm, cm)
	}
	tot := warm.Totals()
	if tot.Stats.ArtifactHits != int(wh) || tot.Stats.ArtifactMisses != 0 {
		t.Fatalf("ledger: artifact hits=%d misses=%d, want %d/0",
			tot.Stats.ArtifactHits, tot.Stats.ArtifactMisses, wh)
	}
}

// TestUnreachableFunctionCosts pins the satellite fix: the session computes
// cost tables only for functions reachable from the root, while BlockCosts
// stays total by computing unreachable tables on demand.
func TestUnreachableFunctionCosts(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 1
	sess := prepareFor(t, prepSrc, "main", opts)
	if _, ok := sess.costs["orphan"]; ok {
		t.Fatal("session holds a cost table for unreachable function orphan")
	}
	for _, fn := range []string{"main", "work"} {
		if _, ok := sess.costs[fn]; !ok {
			t.Fatalf("session lacks a cost table for reachable function %s", fn)
		}
	}
	costs := sess.BlockCosts("orphan")
	if len(costs) == 0 {
		t.Fatal("BlockCosts(orphan) is empty; want an on-demand table")
	}
	if costs[0].Best <= 0 || costs[0].Worst < costs[0].Best {
		t.Fatalf("BlockCosts(orphan) bracket broken: %+v", costs[0])
	}
}

// TestConcurrentPrepareSharedArtifactCache is the -race stress of the
// process-wide artifact cache: many goroutines concurrently prepare both
// the same program and distinct programs (distinct bodies, so insertions
// and lookups interleave), and every resulting session must report bounds
// identical to its serial reference.
func TestConcurrentPrepareSharedArtifactCache(t *testing.T) {
	prepcache.Default().Reset()

	// Distinct program variants: the loop count constant differs, so the
	// main bodies hash differently while work is shared across variants.
	variant := func(n int) string {
		return fmt.Sprintf(`
main:
        addi r1, r0, %d
.Lloop:
        beq r1, r0, .Ldone
        call work
        addi r1, r1, -1
        jmp .Lloop
.Ldone:
        halt

work:
        addi r2, r0, 1
        ret
`, n)
	}
	annots := func(n int) string { return fmt.Sprintf("func main { loop 1: %d .. %d }\n", n, n) }

	type ref struct{ wcet, bcet int64 }
	refs := map[int]ref{}
	for n := 1; n <= 4; n++ {
		opts := DefaultOptions()
		opts.Workers = 1
		sess := prepareFor(t, variant(n), "main", opts)
		file, err := constraint.Parse(annots(n))
		if err != nil {
			t.Fatal(err)
		}
		est, err := sess.Estimate(file)
		if err != nil {
			t.Fatal(err)
		}
		refs[n] = ref{est.WCET.Cycles, est.BCET.Cycles}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := g%4 + 1
			exe, err := asm.Assemble(variant(n))
			if err != nil {
				errs <- err
				return
			}
			prog, err := prepcache.Default().BuildProgram(exe)
			if err != nil {
				errs <- err
				return
			}
			opts := DefaultOptions()
			opts.Workers = 1 + g%3
			sess, err := Prepare(prog, "main", opts)
			if err != nil {
				errs <- err
				return
			}
			file, err := constraint.Parse(annots(n))
			if err != nil {
				errs <- err
				return
			}
			est, err := sess.Estimate(file)
			if err != nil {
				errs <- err
				return
			}
			if est.WCET.Cycles != refs[n].wcet || est.BCET.Cycles != refs[n].bcet {
				errs <- fmt.Errorf("variant %d: concurrent prepare bound [%d,%d], want [%d,%d]",
					n, est.BCET.Cycles, est.WCET.Cycles, refs[n].bcet, refs[n].wcet)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCachedCFGIdenticalToDirect asserts a cache-instantiated program is
// deep-equal to one built directly by cfg.Build — blocks, addresses,
// decoded instructions, lines, edges, loops, dominators.
func TestCachedCFGIdenticalToDirect(t *testing.T) {
	exe, err := asm.Assemble(prepSrc)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	c := prepcache.New()
	if _, err := c.BuildProgram(exe); err != nil { // populate
		t.Fatal(err)
	}
	cached, err := c.BuildProgram(exe) // instantiate from prototypes
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot(); got.Hits == 0 {
		t.Fatal("second BuildProgram had no cache hits")
	}
	if !reflect.DeepEqual(cached.Order, direct.Order) {
		t.Fatalf("function order differs: %v vs %v", cached.Order, direct.Order)
	}
	for _, name := range direct.Order {
		if !reflect.DeepEqual(cached.Funcs[name], direct.Funcs[name]) {
			t.Fatalf("function %s differs:\ncached: %+v\ndirect: %+v",
				name, cached.Funcs[name], direct.Funcs[name])
		}
	}
}
