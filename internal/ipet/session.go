package ipet

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"sync"

	"cinderella/internal/cache"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/ilp"
	"cinderella/internal/march"
)

// Session owns everything about an analysis that does not depend on the
// functionality annotations: the disassembled program with its CFGs, the
// context expansion and ILP variable layout, the structural flow
// constraints, the block cost model, and the per-direction objectives with
// their rows lowered to the solver's sparse form. The interactive workflow
// of Section V — supply annotations, read the bound, refine, repeat —
// builds this once with Prepare and then runs any number of annotation
// variants through Estimate, instead of paying the whole front end per
// query.
//
// A prepared session additionally retains solver results across Estimate
// calls: warm-start base tableaux keyed by the loop-bound rows, the
// outcome (optimal cycles or infeasibility) of every distinct conjunctive
// set it has solved, and the winners' canonical count vectors. Scenarios
// that share loop bounds and some constraint sets — the common case when
// the user tweaks one formula among many — skip the shared solves
// entirely. Reports remain bit-identical to a fresh one-shot Analyzer at
// every worker count: cached outcomes are cutoff-independent values, and
// winning counts are always the result of the same canonical cold solve
// the one-shot path runs.
//
// A Session is immutable after Prepare apart from its internal caches,
// which are mutex-guarded: concurrent Estimate calls are safe.
type Session struct {
	Prog *cfg.Program
	Root string
	Opts Options

	contexts []*Context
	// ctxByFunc indexes contexts per function name.
	ctxByFunc map[string][]*Context
	// ctxChild maps (parent ctx, call edge) to the callee context.
	ctxChild map[[2]int]*Context

	vars  map[varKey]int
	nVars int

	// costs caches block cost brackets per function.
	costs map[string][]march.BlockCost

	// Prepared solver front end: the structural rows lowered to packed form
	// once, and one dirBase per objective sense. Per-annotation prefixes are
	// assembled by concatenation (structural + loop rows + objective
	// extras), preserving the exact row order of the un-prepared path.
	packedStructural []ilp.PackedRow
	dirBases         []dirBase

	// persist marks a session built by Prepare: the caches below carry
	// solver state across Estimate calls. Analyzers made by New leave it
	// off so their per-call statistics stay those of a standalone run.
	persist     bool
	baseCache   *cache.Keyed[string, *warmBaseEntry]
	solveCache  *cache.Keyed[string, cachedSolve]
	finishCache *cache.Keyed[string, []float64]

	// totalsMu guards totals, the cumulative work ledger across every
	// estimate this session has served. A long-lived service polls Totals
	// while estimates are in flight, so the ledger is only ever touched
	// under the mutex: per-call Stats are accumulated wholesale after the
	// estimate completes, and Totals copies the ledger out under the same
	// lock — a reader can never observe a half-written counter.
	totalsMu sync.Mutex
	totals   SessionTotals
}

// SessionTotals is the cumulative, snapshot-consistent work ledger of one
// session: every counter of every completed Estimate (and every
// formula-answered parametric query) summed since Prepare. It exists for
// concurrent observers — a server's stats endpoint, a monitoring loop —
// which must never race the estimates they observe; see Session.Totals.
type SessionTotals struct {
	// Estimates counts completed Estimate calls (including parametric
	// fallback solves); FormulaAnswers counts parametric queries answered
	// purely by a piecewise-linear formula, which run no solver and are
	// not included in Estimates.
	Estimates      int64
	FormulaAnswers int64
	// Degraded counts estimates whose WCET or BCET was not exact (sound
	// envelope reports under a deadline, budget, or widening);
	// DeadlineHits counts estimates whose internal deadline expired.
	Degraded     int64
	DeadlineHits int64
	// Stats sums the per-call counters field by field. The duration
	// fields accumulate total build/solve time; DeadlineHit is true when
	// any estimate hit its deadline.
	Stats Stats
}

// accumulate folds one completed estimate into the ledger. Callers hold
// totalsMu.
func (t *SessionTotals) accumulate(est *Estimate) {
	t.Estimates++
	if !est.WCET.Exact || !est.BCET.Exact {
		t.Degraded++
	}
	if est.Stats.DeadlineHit {
		t.DeadlineHits++
	}
	s, d := &t.Stats, &est.Stats
	s.SetsTotal += d.SetsTotal
	s.PrunedNull += d.PrunedNull
	s.Deduped += d.Deduped
	s.IncumbentSkipped += d.IncumbentSkipped
	s.Solved += d.Solved
	s.WarmSolves += d.WarmSolves
	s.ColdSolves += d.ColdSolves
	s.Pivots += d.Pivots
	s.NetworkSolves += d.NetworkSolves
	s.RevisedPivots += d.RevisedPivots
	s.Refactorizations += d.Refactorizations
	s.CacheHits += d.CacheHits
	s.BuildTime += d.BuildTime
	s.SolveTime += d.SolveTime
	s.SetsWidened += d.SetsWidened
	s.SetsUnsolved += d.SetsUnsolved
	s.DeadlineHit = s.DeadlineHit || d.DeadlineHit
	s.SuspectPivots += d.SuspectPivots
	s.CertFailures += d.CertFailures
	s.ExactResolves += d.ExactResolves
	s.FormulaEvals += d.FormulaEvals
	s.ParamRegions += d.ParamRegions
	s.ParamFallbacks += d.ParamFallbacks
}

// noteEstimate records one completed estimate in the session ledger.
func (s *Session) noteEstimate(est *Estimate) {
	s.totalsMu.Lock()
	s.totals.accumulate(est)
	s.totalsMu.Unlock()
}

// noteFormulaAnswer records one parametric query answered without a solve.
func (s *Session) noteFormulaAnswer() {
	s.totalsMu.Lock()
	s.totals.FormulaAnswers++
	s.totals.Stats.FormulaEvals++
	s.totalsMu.Unlock()
}

// Totals returns a consistent snapshot of the session's cumulative work
// ledger. It is safe to call concurrently with estimates: completed calls
// are accumulated atomically under the ledger lock, so the snapshot never
// exposes a torn counter or a partially accounted estimate.
func (s *Session) Totals() SessionTotals {
	s.totalsMu.Lock()
	defer s.totalsMu.Unlock()
	return s.totals
}

// dirBase is the annotation-independent half of a solve direction.
type dirBase struct {
	sense       ilp.Sense
	obj         objective
	packedExtra []ilp.PackedRow // the objective's extra rows, lowered once
}

// warmBaseEntry caches one warm-start base tableau with the pivot work its
// one-time solve cost, so only the Estimate that built it is charged.
type warmBaseEntry struct {
	warm   *ilp.WarmStart
	pivots int
}

// cachedSolve is the cutoff-independent outcome of one (direction, loop
// rows, conjunctive set) solve: optimal cycles or infeasibility. Dominated
// and abandoned results are never cached — they depend on the incumbent
// and budget of the run that produced them.
type cachedSolve struct {
	status       ilp.Status
	cycles       int64
	rootIntegral bool
	// certified marks an outcome that was backed by an exact rational check
	// when it was produced. A certifying run only accepts certified hits
	// (an uncertified cached value would smuggle an unchecked claim into a
	// certified report); uncertified runs accept both.
	certified bool
}

// Prepare builds a reusable session for the given root function. The
// returned session retains warm bases, per-set outcomes, and winner counts
// across Estimate calls; see Session.
func Prepare(prog *cfg.Program, root string, opts Options) (*Session, error) {
	s, err := newSession(prog, root, opts)
	if err != nil {
		return nil, err
	}
	s.persist = true
	return s, nil
}

func newSession(prog *cfg.Program, root string, opts Options) (*Session, error) {
	if opts.MaxSets == 0 {
		opts.MaxSets = DefaultOptions().MaxSets
	}
	if opts.MaxContexts == 0 {
		opts.MaxContexts = DefaultOptions().MaxContexts
	}
	if opts.March.Cache.SizeBytes == 0 {
		opts.March = march.DefaultOptions()
	}
	if _, err := prog.Reachable(root); err != nil {
		return nil, err
	}
	s := &Session{
		Prog:      prog,
		Root:      root,
		Opts:      opts,
		ctxByFunc: map[string][]*Context{},
		ctxChild:  map[[2]int]*Context{},
		vars:      map[varKey]int{},
		costs:     map[string][]march.BlockCost{},
	}
	if err := s.expandContexts(root, nil); err != nil {
		return nil, err
	}
	// Allocate block and edge variables for every context.
	for _, c := range s.contexts {
		fc := prog.Funcs[c.Func]
		for b := range fc.Blocks {
			s.vars[varKey{c.ID, vBlock, b}] = s.nVars
			s.nVars++
		}
		for e := range fc.Edges {
			s.vars[varKey{c.ID, vEdge, e}] = s.nVars
			s.nVars++
		}
	}
	for name := range prog.Funcs {
		s.costs[name] = march.CostsOf(prog.Funcs[name], opts.March)
	}

	s.packedStructural = ilp.Pack(s.StructuralConstraints())
	worst, err := s.worstObjective()
	if err != nil {
		return nil, err
	}
	best, err := s.bestObjective()
	if err != nil {
		return nil, err
	}
	for _, ds := range []struct {
		sense ilp.Sense
		obj   objective
	}{
		{ilp.Maximize, worst},
		{ilp.Minimize, best},
	} {
		db := dirBase{sense: ds.sense, obj: ds.obj}
		if len(ds.obj.extra) > 0 {
			db.packedExtra = ilp.Pack(ds.obj.extra)
		}
		s.dirBases = append(s.dirBases, db)
	}
	s.baseCache = cache.NewKeyed[string, *warmBaseEntry]()
	s.solveCache = cache.NewKeyed[string, cachedSolve]()
	s.finishCache = cache.NewKeyed[string, []float64]()
	return s, nil
}

// Analyzer binds one set of annotations to the session's shared model. Any
// number of analyzers may coexist; each owns only its annotations and
// memoized solver plan, everything else is the session's.
func (s *Session) Analyzer(file *constraint.File) (*Analyzer, error) {
	a := &Analyzer{Session: s}
	if file != nil {
		if err := a.Apply(file); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Estimate runs the full analysis for one annotation scenario against the
// session's shared state.
func (s *Session) Estimate(file *constraint.File) (*Estimate, error) {
	return s.EstimateContext(context.Background(), file)
}

// EstimateContext is Estimate with cancellation.
func (s *Session) EstimateContext(ctx context.Context, file *constraint.File) (*Estimate, error) {
	a, err := s.Analyzer(file)
	if err != nil {
		return nil, err
	}
	return a.EstimateContext(ctx)
}

// CacheStats reports the sizes of a prepared session's persistent caches:
// warm base tableaux, distinct per-set outcomes, and winner count vectors.
func (s *Session) CacheStats() (bases, solves, finishes int) {
	return s.baseCache.Len(), s.solveCache.Len(), s.finishCache.Len()
}

// MemoryFootprint estimates the resident bytes a prepared session pins: the
// structural model (variable layout, contexts, packed rows, cost tables)
// plus the persistent caches, dominated by the warm base tableaux (a dense
// m x (n+m) float64 tableau per distinct loop-bound key and direction). The
// figure is an accounting estimate, not an exact heap measurement — it is
// deliberately conservative and monotone in cache growth, which is what an
// eviction policy needs: relative order and growth are faithful even where
// absolute bytes are approximate. Safe for concurrent use.
func (s *Session) MemoryFootprint() int64 {
	const (
		bytesPerVar      = 56 // vars map entry: key struct + int + bucket overhead
		bytesPerPackedNZ = 12 // one int32 column + one float64 value
		bytesPerRow      = 56 // PackedRow header + slice headers
		bytesPerCtx      = 96
		bytesPerCost     = 24 // march.BlockCost
		bytesPerOutcome  = 160
		bytesPerFinishV  = 8
	)
	base := int64(s.nVars) * bytesPerVar
	base += int64(len(s.contexts)) * bytesPerCtx
	rows := len(s.packedStructural)
	nz := 0
	for i := range s.packedStructural {
		nz += len(s.packedStructural[i].Cols)
	}
	for i := range s.dirBases {
		for j := range s.dirBases[i].packedExtra {
			nz += len(s.dirBases[i].packedExtra[j].Cols)
		}
		rows += len(s.dirBases[i].packedExtra)
	}
	base += int64(rows)*bytesPerRow + int64(nz)*bytesPerPackedNZ
	for _, costs := range s.costs {
		base += int64(len(costs)) * bytesPerCost
	}
	// One warm base retains a dense simplex tableau over the base rows:
	// roughly m x (n + m + 2) float64 cells plus basis bookkeeping, with m
	// the prefix row count and n the variable count.
	m := int64(len(s.packedStructural)) + 16 // + loop-bound rows, estimated
	tableau := m * (int64(s.nVars) + m + 2) * 8
	bases, solves, finishes := s.CacheStats()
	base += int64(bases) * tableau
	base += int64(solves) * bytesPerOutcome
	base += int64(finishes) * (int64(s.nVars)*bytesPerFinishV + 64)
	return base
}

// packedRowsKey serializes lowered rows order-sensitively (names excluded).
// Unlike canonicalSetKey it distinguishes row order, which matters wherever
// the identity of the solve — not just the feasible region — is cached.
func packedRowsKey(rows []ilp.PackedRow) string {
	var sb strings.Builder
	for _, r := range rows {
		var b [13]byte
		b[0] = byte(r.Rel)
		binary.LittleEndian.PutUint64(b[1:9], math.Float64bits(r.RHS))
		binary.LittleEndian.PutUint32(b[9:13], uint32(len(r.Cols)))
		sb.Write(b[:])
		for k, col := range r.Cols {
			var e [12]byte
			binary.LittleEndian.PutUint32(e[:4], uint32(col))
			binary.LittleEndian.PutUint64(e[4:], math.Float64bits(r.Vals[k]))
			sb.Write(e[:])
		}
	}
	return sb.String()
}

// baseKey identifies a warm base: direction plus the exact loop-bound rows
// appended to the structural prefix.
func baseKey(di int, loopKey string) string {
	return fmt.Sprintf("%d|%s", di, loopKey)
}

// solveKey identifies a per-set outcome: direction, the loop rows of the
// base, and the set's canonical (order-insensitive) form. Two scenarios
// whose sets share this key describe the identical ILP feasible region, so
// the optimal cycle count and feasibility transfer.
func solveKey(di int, loopKey, setKey string) string {
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(loopKey)))
	return fmt.Sprintf("%d|%s%s%s", di, lb[:], loopKey, setKey)
}

// finishKey identifies a winner's canonical count vector. The winning
// counts come from a cold solve of the set's rows as written, so the key
// is order-sensitive: a scenario listing the same rows in another order
// re-derives its own counts, keeping reports bit-identical to the one-shot
// path.
func finishKey(di int, loopKey string, set []ilp.Constraint) string {
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(loopKey)))
	return fmt.Sprintf("%d|%s%s%s", di, lb[:], loopKey, packedRowsKey(ilp.Pack(set)))
}
