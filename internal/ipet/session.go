package ipet

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"cinderella/internal/cache"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/ilp"
	"cinderella/internal/march"
	"cinderella/internal/prepcache"
)

// Session owns everything about an analysis that does not depend on the
// functionality annotations: the disassembled program with its CFGs, the
// context expansion and ILP variable layout, the structural flow
// constraints, the block cost model, and the per-direction objectives with
// their rows lowered to the solver's sparse form. The interactive workflow
// of Section V — supply annotations, read the bound, refine, repeat —
// builds this once with Prepare and then runs any number of annotation
// variants through Estimate, instead of paying the whole front end per
// query.
//
// A prepared session additionally retains solver results across Estimate
// calls: warm-start base tableaux keyed by the loop-bound rows, the
// outcome (optimal cycles or infeasibility) of every distinct conjunctive
// set it has solved, and the winners' canonical count vectors. Scenarios
// that share loop bounds and some constraint sets — the common case when
// the user tweaks one formula among many — skip the shared solves
// entirely. Reports remain bit-identical to a fresh one-shot Analyzer at
// every worker count: cached outcomes are cutoff-independent values, and
// winning counts are always the result of the same canonical cold solve
// the one-shot path runs.
//
// A Session is immutable after Prepare apart from its internal caches,
// which are mutex-guarded: concurrent Estimate calls are safe.
type Session struct {
	Prog *cfg.Program
	Root string
	Opts Options

	contexts []*Context
	// ctxByFunc indexes contexts per function name.
	ctxByFunc map[string][]*Context
	// ctxChild maps (parent ctx, call edge) to the callee context.
	ctxChild map[[2]int]*Context

	// ctxOff and ctxNB encode the variable layout: context c's block
	// variables are ctxOff[c]..ctxOff[c]+ctxNB[c]-1 (block index order) and
	// its edge variables follow contiguously (edge ID order), exactly the
	// numbering the former per-variable map assigned. Offset arithmetic
	// replaces the map so variable resolution is allocation- and hash-free.
	ctxOff []int
	ctxNB  []int
	nVars  int

	// costs caches block cost brackets per reachable function (the only
	// functions the objectives charge). BlockCosts computes tables for
	// unreachable functions on demand.
	costs map[string][]march.BlockCost

	// artifactHits/artifactMisses count the content-addressed prepare
	// artifacts (CFG skeletons, cost tables, structural row templates)
	// served from, respectively built into, the process-wide prepcache
	// while this session was prepared.
	artifactHits   int64
	artifactMisses int64

	// Prepared solver front end: the structural rows lowered to packed form
	// once, and one dirBase per objective sense. Per-annotation prefixes are
	// assembled by concatenation (structural + loop rows + objective
	// extras), preserving the exact row order of the un-prepared path.
	packedStructural []ilp.PackedRow
	dirBases         []dirBase

	// persist marks a session built by Prepare: the caches below carry
	// solver state across Estimate calls. Analyzers made by New leave it
	// off so their per-call statistics stay those of a standalone run.
	persist     bool
	baseCache   *cache.Keyed[string, *warmBaseEntry]
	solveCache  *cache.Keyed[string, cachedSolve]
	finishCache *cache.Keyed[string, []float64]

	// totalsMu guards totals, the cumulative work ledger across every
	// estimate this session has served. A long-lived service polls Totals
	// while estimates are in flight, so the ledger is only ever touched
	// under the mutex: per-call Stats are accumulated wholesale after the
	// estimate completes, and Totals copies the ledger out under the same
	// lock — a reader can never observe a half-written counter.
	totalsMu sync.Mutex
	totals   SessionTotals
}

// SessionTotals is the cumulative, snapshot-consistent work ledger of one
// session: every counter of every completed Estimate (and every
// formula-answered parametric query) summed since Prepare. It exists for
// concurrent observers — a server's stats endpoint, a monitoring loop —
// which must never race the estimates they observe; see Session.Totals.
type SessionTotals struct {
	// Estimates counts completed Estimate calls (including parametric
	// fallback solves); FormulaAnswers counts parametric queries answered
	// purely by a piecewise-linear formula, which run no solver and are
	// not included in Estimates.
	Estimates      int64
	FormulaAnswers int64
	// Degraded counts estimates whose WCET or BCET was not exact (sound
	// envelope reports under a deadline, budget, or widening);
	// DeadlineHits counts estimates whose internal deadline expired.
	Degraded     int64
	DeadlineHits int64
	// Stats sums the per-call counters field by field. The duration
	// fields accumulate total build/solve time; DeadlineHit is true when
	// any estimate hit its deadline.
	Stats Stats
}

// accumulate folds one completed estimate into the ledger. Callers hold
// totalsMu.
func (t *SessionTotals) accumulate(est *Estimate) {
	t.Estimates++
	if !est.WCET.Exact || !est.BCET.Exact {
		t.Degraded++
	}
	if est.Stats.DeadlineHit {
		t.DeadlineHits++
	}
	s, d := &t.Stats, &est.Stats
	s.SetsTotal += d.SetsTotal
	s.PrunedNull += d.PrunedNull
	s.Deduped += d.Deduped
	s.IncumbentSkipped += d.IncumbentSkipped
	s.Solved += d.Solved
	s.WarmSolves += d.WarmSolves
	s.ColdSolves += d.ColdSolves
	s.Pivots += d.Pivots
	s.NetworkSolves += d.NetworkSolves
	s.RevisedPivots += d.RevisedPivots
	s.Refactorizations += d.Refactorizations
	s.CacheHits += d.CacheHits
	s.BuildTime += d.BuildTime
	s.SolveTime += d.SolveTime
	s.SetsWidened += d.SetsWidened
	s.SetsUnsolved += d.SetsUnsolved
	s.DeadlineHit = s.DeadlineHit || d.DeadlineHit
	s.SuspectPivots += d.SuspectPivots
	s.CertFailures += d.CertFailures
	s.ExactResolves += d.ExactResolves
	s.FormulaEvals += d.FormulaEvals
	s.ParamRegions += d.ParamRegions
	s.ParamFallbacks += d.ParamFallbacks
	s.ArtifactHits += d.ArtifactHits
	s.ArtifactMisses += d.ArtifactMisses
}

// noteEstimate records one completed estimate in the session ledger.
func (s *Session) noteEstimate(est *Estimate) {
	s.totalsMu.Lock()
	s.totals.accumulate(est)
	s.totalsMu.Unlock()
}

// noteFormulaAnswer records one parametric query answered without a solve.
func (s *Session) noteFormulaAnswer() {
	s.totalsMu.Lock()
	s.totals.FormulaAnswers++
	s.totals.Stats.FormulaEvals++
	s.totalsMu.Unlock()
}

// Totals returns a consistent snapshot of the session's cumulative work
// ledger. It is safe to call concurrently with estimates: completed calls
// are accumulated atomically under the ledger lock, so the snapshot never
// exposes a torn counter or a partially accounted estimate.
func (s *Session) Totals() SessionTotals {
	s.totalsMu.Lock()
	defer s.totalsMu.Unlock()
	return s.totals
}

// dirBase is the annotation-independent half of a solve direction.
type dirBase struct {
	sense       ilp.Sense
	obj         objective
	packedExtra []ilp.PackedRow // the objective's extra rows, lowered once
}

// warmBaseEntry caches one warm-start base tableau with the pivot work its
// one-time solve cost, so only the Estimate that built it is charged.
type warmBaseEntry struct {
	warm   *ilp.WarmStart
	pivots int
}

// cachedSolve is the cutoff-independent outcome of one (direction, loop
// rows, conjunctive set) solve: optimal cycles or infeasibility. Dominated
// and abandoned results are never cached — they depend on the incumbent
// and budget of the run that produced them.
type cachedSolve struct {
	status       ilp.Status
	cycles       int64
	rootIntegral bool
	// certified marks an outcome that was backed by an exact rational check
	// when it was produced. A certifying run only accepts certified hits
	// (an uncertified cached value would smuggle an unchecked claim into a
	// certified report); uncertified runs accept both.
	certified bool
}

// Prepare builds a reusable session for the given root function. The
// returned session retains warm bases, per-set outcomes, and winner counts
// across Estimate calls; see Session.
func Prepare(prog *cfg.Program, root string, opts Options) (*Session, error) {
	s, err := newSession(prog, root, opts)
	if err != nil {
		return nil, err
	}
	s.persist = true
	return s, nil
}

// funcArtifacts is the per-function prepare material newSession fetches —
// content-addressed when the body is keyable, computed directly otherwise.
type funcArtifacts struct {
	costs []march.BlockCost
	tmpl  *prepcache.RowTemplate
}

// linkVals and rootVals are the shared coefficient slices of the linkage
// and root rows of every assembled structural system: a linkage row's
// sorted columns are always [caller f-edge, callee entry edge] (the callee
// context is created after its caller, so its variables number higher),
// giving values [-1, +1]; the root row is a single +1. Read-only.
var (
	linkVals = []float64{-1, 1}
	rootVals = []float64{1}
)

func newSession(prog *cfg.Program, root string, opts Options) (*Session, error) {
	if opts.MaxSets == 0 {
		opts.MaxSets = DefaultOptions().MaxSets
	}
	if opts.MaxContexts == 0 {
		opts.MaxContexts = DefaultOptions().MaxContexts
	}
	if opts.March.Cache.SizeBytes == 0 {
		opts.March = march.DefaultOptions()
	}
	reachable, err := prog.Reachable(root)
	if err != nil {
		return nil, err
	}
	s := &Session{
		Prog:      prog,
		Root:      root,
		Opts:      opts,
		ctxByFunc: map[string][]*Context{},
		ctxChild:  map[[2]int]*Context{},
		costs:     make(map[string][]march.BlockCost, len(reachable)),
	}
	if err := s.expandContexts(root, nil); err != nil {
		return nil, err
	}

	// Variable layout: per context in creation order, block variables then
	// edge variables, contiguously.
	s.ctxOff = make([]int, len(s.contexts))
	s.ctxNB = make([]int, len(s.contexts))
	for i, c := range s.contexts {
		fc := prog.Funcs[c.Func]
		s.ctxOff[i] = s.nVars
		s.ctxNB[i] = len(fc.Blocks)
		s.nVars += len(fc.Blocks) + len(fc.Edges)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Per-function artifacts — cost tables and packed structural row
	// templates — fetched from the content-addressed cache (or computed on
	// a miss) in parallel across the reachable set. Unreachable functions
	// are skipped entirely: nothing in the model charges them a cost.
	arts := make([]funcArtifacts, len(reachable))
	pc := opts.Artifacts
	if pc == nil {
		pc = prepcache.Default()
	}
	fp := prepcache.MarchFingerprint(opts.March)
	var hits, misses atomic.Int64
	parallelFor(len(reachable), workers, func(i int) {
		name := reachable[i]
		fc := prog.Funcs[name]
		var key prepcache.Key
		ok := false
		if k, found := prog.BodyKeys[name]; found {
			// BuildProgram already content-addressed this body.
			key, ok = prepcache.Key(k), true
		} else if prog.BodyKeys == nil && prog.Exe != nil {
			// Program built directly by cfg.Build: key it here.
			if sym, found := prog.Exe.FunctionNamed(name); found {
				key, ok = prepcache.FuncKey(prog.Exe, sym)
			}
		}
		if !ok {
			arts[i] = funcArtifacts{
				costs: march.CostsOf(fc, opts.March),
				tmpl:  prepcache.BuildRowTemplate(fc),
			}
			return
		}
		var a funcArtifacts
		var hit bool
		a.costs, hit = pc.Costs(key, fp, fc, opts.March)
		if hit {
			hits.Add(1)
		} else {
			misses.Add(1)
		}
		a.tmpl, hit = pc.Rows(key, fc)
		if hit {
			hits.Add(1)
		} else {
			misses.Add(1)
		}
		arts[i] = a
	})
	tmplByFunc := make(map[string]*prepcache.RowTemplate, len(reachable))
	for i, name := range reachable {
		s.costs[name] = arts[i].costs
		tmplByFunc[name] = arts[i].tmpl
	}
	s.artifactHits = hits.Load()
	s.artifactMisses = misses.Load()

	// Assemble the packed structural system by relocating each context's
	// function template to its variable offset, then emitting that
	// context's call-linkage rows, then the root entry row — the exact row
	// and coefficient order of StructuralConstraints lowered through
	// ilp.Pack (relocation adds a uniform offset to already-sorted columns,
	// so the packed invariant is preserved bit for bit). The per-context
	// fills write disjoint slices and run on the worker pool.
	rowOff := make([]int, len(s.contexts)+1)
	nzOff := make([]int, len(s.contexts)+1)
	for i, c := range s.contexts {
		fc := prog.Funcs[c.Func]
		t := tmplByFunc[c.Func]
		rowOff[i+1] = rowOff[i] + len(t.Rows) + len(fc.Calls)
		nzOff[i+1] = nzOff[i] + t.NNZ + 2*len(fc.Calls)
	}
	totalRows, totalNNZ := rowOff[len(s.contexts)], nzOff[len(s.contexts)]
	rows := make([]ilp.PackedRow, totalRows+1)
	colArena := make([]int32, totalNNZ+1)
	parallelFor(len(s.contexts), workers, func(i int) {
		c := s.contexts[i]
		fc := prog.Funcs[c.Func]
		t := tmplByFunc[c.Func]
		nz := t.AppendRelocated(rows, rowOff[i], colArena, nzOff[i], int32(s.ctxOff[i]))
		at := rowOff[i] + len(t.Rows)
		for _, eid := range fc.Calls {
			child := s.ctxChild[[2]int{c.ID, eid}]
			childFC := prog.Funcs[child.Func]
			cols := colArena[nz : nz+2 : nz+2]
			cols[0] = int32(s.edgeVar(c.ID, eid))
			cols[1] = int32(s.edgeVar(child.ID, childFC.EntryEdge))
			nz += 2
			rows[at] = ilp.PackedRow{Cols: cols, Vals: linkVals, Rel: ilp.EQ}
			at++
		}
	})
	rootFC := prog.Funcs[root]
	rootCols := colArena[totalNNZ : totalNNZ+1 : totalNNZ+1]
	rootCols[0] = int32(s.edgeVar(0, rootFC.EntryEdge))
	rows[totalRows] = ilp.PackedRow{Cols: rootCols, Vals: rootVals, Rel: ilp.EQ, RHS: 1}
	s.packedStructural = rows

	// The two direction objectives are independent; overlap them when the
	// session allows concurrency.
	var worst, best objective
	var worstErr, bestErr error
	if workers > 1 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			worst, worstErr = s.worstObjective()
		}()
		best, bestErr = s.bestObjective()
		wg.Wait()
	} else {
		worst, worstErr = s.worstObjective()
		best, bestErr = s.bestObjective()
	}
	if worstErr != nil {
		return nil, worstErr
	}
	if bestErr != nil {
		return nil, bestErr
	}
	for _, ds := range []struct {
		sense ilp.Sense
		obj   objective
	}{
		{ilp.Maximize, worst},
		{ilp.Minimize, best},
	} {
		db := dirBase{sense: ds.sense, obj: ds.obj}
		if len(ds.obj.extra) > 0 {
			db.packedExtra = ilp.Pack(ds.obj.extra)
		}
		s.dirBases = append(s.dirBases, db)
	}
	s.baseCache = cache.NewKeyed[string, *warmBaseEntry]()
	s.solveCache = cache.NewKeyed[string, cachedSolve]()
	s.finishCache = cache.NewKeyed[string, []float64]()
	// Seed the ledger with the prepare-time artifact counters so a stats
	// observer sees them alongside the solve counters.
	s.totals.Stats.ArtifactHits = int(s.artifactHits)
	s.totals.Stats.ArtifactMisses = int(s.artifactMisses)
	return s, nil
}

// parallelFor runs body(i) for i in [0, n) on up to workers goroutines.
// Iterations must be independent; with workers <= 1 it degrades to a plain
// loop.
func parallelFor(n, workers int, body func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}

// numBlockVars is the count of block variables across all contexts — the
// exact size of a direction objective's coefficient map.
func (s *Session) numBlockVars() int {
	n := 0
	for _, nb := range s.ctxNB {
		n += nb
	}
	return n
}

// ArtifactStats reports the content-addressed prepare-artifact traffic of
// this session's Prepare: artifacts served from the process-wide cache vs
// built fresh. The split is what makes re-preparing an evicted or edited
// program cheap — a resubmission should be all hits.
func (s *Session) ArtifactStats() (hits, misses int64) {
	return s.artifactHits, s.artifactMisses
}

// Analyzer binds one set of annotations to the session's shared model. Any
// number of analyzers may coexist; each owns only its annotations and
// memoized solver plan, everything else is the session's.
func (s *Session) Analyzer(file *constraint.File) (*Analyzer, error) {
	a := &Analyzer{Session: s}
	if file != nil {
		if err := a.Apply(file); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Estimate runs the full analysis for one annotation scenario against the
// session's shared state.
func (s *Session) Estimate(file *constraint.File) (*Estimate, error) {
	return s.EstimateContext(context.Background(), file)
}

// EstimateContext is Estimate with cancellation.
func (s *Session) EstimateContext(ctx context.Context, file *constraint.File) (*Estimate, error) {
	a, err := s.Analyzer(file)
	if err != nil {
		return nil, err
	}
	return a.EstimateContext(ctx)
}

// CacheStats reports the sizes of a prepared session's persistent caches:
// warm base tableaux, distinct per-set outcomes, and winner count vectors.
func (s *Session) CacheStats() (bases, solves, finishes int) {
	return s.baseCache.Len(), s.solveCache.Len(), s.finishCache.Len()
}

// MemoryFootprint estimates the resident bytes a prepared session pins: the
// structural model (variable layout, contexts, packed rows, cost tables)
// plus the persistent caches, dominated by the warm base tableaux (a dense
// m x (n+m) float64 tableau per distinct loop-bound key and direction). The
// figure is an accounting estimate, not an exact heap measurement — it is
// deliberately conservative and monotone in cache growth, which is what an
// eviction policy needs: relative order and growth are faithful even where
// absolute bytes are approximate. Safe for concurrent use.
func (s *Session) MemoryFootprint() int64 {
	const (
		bytesPerVar      = 56 // layout share + per-variable solver bookkeeping
		bytesPerPackedNZ = 12 // one int32 column + one float64 value
		bytesPerRow      = 56 // PackedRow header + slice headers
		bytesPerCtx      = 96
		bytesPerCost     = 24 // march.BlockCost
		bytesPerOutcome  = 160
		bytesPerFinishV  = 8
	)
	base := int64(s.nVars) * bytesPerVar
	base += int64(len(s.contexts)) * bytesPerCtx
	rows := len(s.packedStructural)
	nz := 0
	for i := range s.packedStructural {
		nz += len(s.packedStructural[i].Cols)
	}
	for i := range s.dirBases {
		for j := range s.dirBases[i].packedExtra {
			nz += len(s.dirBases[i].packedExtra[j].Cols)
		}
		rows += len(s.dirBases[i].packedExtra)
	}
	base += int64(rows)*bytesPerRow + int64(nz)*bytesPerPackedNZ
	for _, costs := range s.costs {
		base += int64(len(costs)) * bytesPerCost
	}
	// One warm base retains a dense simplex tableau over the base rows:
	// roughly m x (n + m + 2) float64 cells plus basis bookkeeping, with m
	// the prefix row count and n the variable count.
	m := int64(len(s.packedStructural)) + 16 // + loop-bound rows, estimated
	tableau := m * (int64(s.nVars) + m + 2) * 8
	bases, solves, finishes := s.CacheStats()
	base += int64(bases) * tableau
	base += int64(solves) * bytesPerOutcome
	base += int64(finishes) * (int64(s.nVars)*bytesPerFinishV + 64)
	return base
}

// packedRowsKey serializes lowered rows order-sensitively (names excluded).
// Unlike canonicalSetKey it distinguishes row order, which matters wherever
// the identity of the solve — not just the feasible region — is cached.
func packedRowsKey(rows []ilp.PackedRow) string {
	var sb strings.Builder
	for _, r := range rows {
		var b [13]byte
		b[0] = byte(r.Rel)
		binary.LittleEndian.PutUint64(b[1:9], math.Float64bits(r.RHS))
		binary.LittleEndian.PutUint32(b[9:13], uint32(len(r.Cols)))
		sb.Write(b[:])
		for k, col := range r.Cols {
			var e [12]byte
			binary.LittleEndian.PutUint32(e[:4], uint32(col))
			binary.LittleEndian.PutUint64(e[4:], math.Float64bits(r.Vals[k]))
			sb.Write(e[:])
		}
	}
	return sb.String()
}

// baseKey identifies a warm base: direction plus the exact loop-bound rows
// appended to the structural prefix.
func baseKey(di int, loopKey string) string {
	return fmt.Sprintf("%d|%s", di, loopKey)
}

// solveKey identifies a per-set outcome: direction, the loop rows of the
// base, and the set's canonical (order-insensitive) form. Two scenarios
// whose sets share this key describe the identical ILP feasible region, so
// the optimal cycle count and feasibility transfer.
func solveKey(di int, loopKey, setKey string) string {
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(loopKey)))
	return fmt.Sprintf("%d|%s%s%s", di, lb[:], loopKey, setKey)
}

// finishKey identifies a winner's canonical count vector. The winning
// counts come from a cold solve of the set's rows as written, so the key
// is order-sensitive: a scenario listing the same rows in another order
// re-derives its own counts, keeping reports bit-identical to the one-shot
// path.
func finishKey(di int, loopKey string, set []ilp.Constraint) string {
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(loopKey)))
	return fmt.Sprintf("%d|%s%s%s", di, lb[:], loopKey, packedRowsKey(ilp.Pack(set)))
}
