package ipet

import (
	"fmt"

	"cinderella/internal/constraint"
	"cinderella/internal/ilp"
)

// StructuralConstraints derives the flow equations of Section III.B
// automatically from the CFGs: at each block the execution count equals
// both the sum of incoming and the sum of outgoing edge counts; the
// analysis root's entry edge is traversed exactly once (eq. 13); and each
// callee instance's entry edge equals its call-site f-variable (eq. 12,
// specialized per context).
func (a *Session) StructuralConstraints() []ilp.Constraint {
	return a.structural(true)
}

// FlowConstraints is the flow-conservation slice of StructuralConstraints:
// the per-context block/edge incidence rows plus the root entry row, without
// the eq. 12 call-linkage rows. This slice is a network matrix — the shape
// the solver's min-cost-flow kernel answers in polynomial time. The linkage
// rows are excluded because each one gives its call-edge column a third
// nonzero (the edge already appears in the caller's out-row and the return
// successor's in-row), which takes the full interprocedural system off
// strict node-arc incidence form.
func (a *Session) FlowConstraints() []ilp.Constraint {
	return a.structural(false)
}

func (a *Session) structural(withLinkage bool) []ilp.Constraint {
	var out []ilp.Constraint
	for _, ctx := range a.contexts {
		fc := a.Prog.Funcs[ctx.Func]
		for _, b := range fc.Blocks {
			inC := ilp.Constraint{
				Coeffs: map[int]float64{a.blockVar(ctx.ID, b.Index): 1},
				Rel:    ilp.EQ,
				Name:   fmt.Sprintf("%s: x%d = sum(in)", ctx, b.Index+1),
			}
			for _, e := range b.In {
				inC.Coeffs[a.edgeVar(ctx.ID, e)] -= 1
			}
			out = append(out, inC)

			outC := ilp.Constraint{
				Coeffs: map[int]float64{a.blockVar(ctx.ID, b.Index): 1},
				Rel:    ilp.EQ,
				Name:   fmt.Sprintf("%s: x%d = sum(out)", ctx, b.Index+1),
			}
			for _, e := range b.Out {
				outC.Coeffs[a.edgeVar(ctx.ID, e)] -= 1
			}
			out = append(out, outC)
		}
		// Link call edges to callee instances: d_entry(callee@site) = f_site.
		if !withLinkage {
			continue
		}
		for _, eid := range fc.Calls {
			child := a.ctxChild[[2]int{ctx.ID, eid}]
			childFC := a.Prog.Funcs[child.Func]
			out = append(out, ilp.Constraint{
				Coeffs: map[int]float64{
					a.edgeVar(child.ID, childFC.EntryEdge): 1,
					a.edgeVar(ctx.ID, eid):                 -1,
				},
				Rel:  ilp.EQ,
				Name: fmt.Sprintf("%s entry = %s:f-edge d%d", child, ctx, eid+1),
			})
		}
	}
	// The program is executed once: d1 = 1 for the root (eq. 13).
	rootFC := a.Prog.Funcs[a.Root]
	out = append(out, ilp.Constraint{
		Coeffs: map[int]float64{a.edgeVar(0, rootFC.EntryEdge): 1},
		Rel:    ilp.EQ,
		RHS:    1,
		Name:   fmt.Sprintf("%s: d%d = 1", a.Root, rootFC.EntryEdge+1),
	})
	return out
}

// LoopBoundConstraints materializes the loop annotations per context: a
// bound [lo, hi] states that the loop iterates (traverses a back edge)
// between lo and hi times per entry into the loop — the paper's
// "1 x1 <= x2 <= 10 x1" with the values the user supplies ("all the user
// has to provide are the values 1 and 10"), generalized to arbitrary
// entry- and back-edge sets:
//
//	lo * sum(entry edges) <= sum(back edges) <= hi * sum(entry edges)
func (a *Analyzer) LoopBoundConstraints() []ilp.Constraint {
	if a.annots == nil {
		return nil
	}
	var out []ilp.Constraint
	for _, ctx := range a.contexts {
		sec, ok := a.annots.Section(ctx.Func)
		if !ok {
			continue
		}
		fc := a.Prog.Funcs[ctx.Func]
		for _, lb := range sec.LoopBounds {
			loop := fc.Loops[lb.Loop-1]
			upper := ilp.Constraint{
				Coeffs: map[int]float64{},
				Rel:    ilp.LE,
				Name:   fmt.Sprintf("%s: loop %d upper %d", ctx, lb.Loop, lb.Hi),
			}
			lower := ilp.Constraint{
				Coeffs: map[int]float64{},
				Rel:    ilp.GE,
				Name:   fmt.Sprintf("%s: loop %d lower %d", ctx, lb.Loop, lb.Lo),
			}
			for _, e := range loop.BackEdges {
				upper.Coeffs[a.edgeVar(ctx.ID, e)] += 1
				lower.Coeffs[a.edgeVar(ctx.ID, e)] += 1
			}
			for _, e := range loop.EntryEdges {
				upper.Coeffs[a.edgeVar(ctx.ID, e)] -= float64(lb.Hi)
				lower.Coeffs[a.edgeVar(ctx.ID, e)] -= float64(lb.Lo)
			}
			out = append(out, upper, lower)
		}
	}
	return out
}

// resolveVar expands a symbolic constraint variable into ILP terms,
// multiplying each context instance by coef.
// resolveVar errors are bare messages (no "ipet:" prefix): the callers wrap
// them in an *AnnotationError carrying the relation's file and line.
func (a *Session) resolveVar(v constraint.Var, coef float64, into map[int]float64) error {
	ctxs := a.ctxByFunc[v.Func]
	if len(ctxs) == 0 {
		return fmt.Errorf("constraint names %q, which is not in the call tree of %s", v.Func, a.Root)
	}
	fc := a.Prog.Funcs[v.Func]

	// Filter to the requested call-site context, if any (eq. 18).
	if v.CallSite != 0 {
		callerFC, ok := a.Prog.Funcs[v.CallSiteFunc]
		if !ok {
			return fmt.Errorf("constraint names unknown caller %q", v.CallSiteFunc)
		}
		if v.CallSite > len(callerFC.Calls) {
			return fmt.Errorf("%s has %d call sites, constraint names f%d", v.CallSiteFunc, len(callerFC.Calls), v.CallSite)
		}
		edge := callerFC.Calls[v.CallSite-1]
		if callerFC.Edges[edge].Callee != v.Func {
			return fmt.Errorf("%s.f%d calls %s, not %s", v.CallSiteFunc, v.CallSite, callerFC.Edges[edge].Callee, v.Func)
		}
		var filtered []*Context
		for _, c := range ctxs {
			if len(c.Path) == 0 {
				continue
			}
			last := c.Path[len(c.Path)-1]
			if last.Caller == v.CallSiteFunc && last.EdgeID == edge {
				filtered = append(filtered, c)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("no instance of %s reached via %s.f%d", v.Func, v.CallSiteFunc, v.CallSite)
		}
		ctxs = filtered
	}

	switch v.Kind {
	case constraint.VarBlock:
		if v.Index > len(fc.Blocks) {
			return fmt.Errorf("%s has %d blocks, constraint names x%d", v.Func, len(fc.Blocks), v.Index)
		}
		for _, c := range ctxs {
			into[a.blockVar(c.ID, v.Index-1)] += coef
		}
	case constraint.VarEdge:
		if v.Index > len(fc.Edges) {
			return fmt.Errorf("%s has %d edges, constraint names d%d", v.Func, len(fc.Edges), v.Index)
		}
		for _, c := range ctxs {
			into[a.edgeVar(c.ID, v.Index-1)] += coef
		}
	case constraint.VarCall:
		if v.Index > len(fc.Calls) {
			return fmt.Errorf("%s has %d call sites, constraint names f%d", v.Func, len(fc.Calls), v.Index)
		}
		for _, c := range ctxs {
			into[a.edgeVar(c.ID, fc.Calls[v.Index-1])] += coef
		}
	}
	return nil
}

// relToILP converts a normalized constraint relation to an ILP constraint.
// Resolution failures come back as *AnnotationError at the relation's source
// position.
func (a *Session) relToILP(r constraint.Rel) (ilp.Constraint, error) {
	c := ilp.Constraint{Coeffs: map[int]float64{}, RHS: float64(r.RHS), Name: r.String()}
	switch r.Op {
	case constraint.OpEQ:
		c.Rel = ilp.EQ
	case constraint.OpLE:
		c.Rel = ilp.LE
	case constraint.OpGE:
		c.Rel = ilp.GE
	}
	for v, coef := range r.Terms {
		if err := a.resolveVar(v, float64(coef), c.Coeffs); err != nil {
			return c, &AnnotationError{File: r.File, Line: r.Line,
				Msg: fmt.Sprintf("%v (in %q)", err, r.String())}
		}
	}
	return c, nil
}

// checkFormula resolves every relation of a formula tree against the CFG
// without keeping the rows: Apply runs it so malformed formulas fail at
// annotation time with a positioned diagnostic instead of surfacing — or
// worse, being skipped — during set expansion.
func (a *Session) checkFormula(f constraint.Formula) error {
	switch n := f.(type) {
	case *constraint.Atom:
		_, err := a.relToILP(n.Rel)
		return err
	case *constraint.And:
		for _, p := range n.Parts {
			if err := a.checkFormula(p); err != nil {
				return err
			}
		}
	case *constraint.Or:
		for _, p := range n.Parts {
			if err := a.checkFormula(p); err != nil {
				return err
			}
		}
	}
	return nil
}
