package ipet

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"cinderella/internal/constraint"
	"cinderella/internal/ilp"
	"cinderella/internal/ilp/certify"
)

// This file implements the parametric layer over the session machinery:
// annotations may leave loop bounds and formula constants symbolic ("loop 1:
// 1 .. n1", "x3 <= 5 n1"), and Session.Parametrize enumerates the optimal
// bases of the resulting RHS-parametric ILPs (ilp.SolveParametric) into a
// piecewise-linear closed form WCET(n1, …)/BCET(n1, …). Evaluating the form
// at a concrete parameter point is a handful of integer multiply-adds —
// nanoseconds, no allocation — where a session-warm Estimate still pays a
// simplex solve per constraint set. Every piece is exact by construction
// (the ilp layer discards anything that fails its rational re-check, and
// Options.Certify additionally re-verifies each piece's basis through the
// certificate checker), and any query the pieces do not cover falls back to
// a concrete warm-started solve — the formula can be incomplete, never wrong.

// ParamSpec declares one parameter symbol and its integer domain. The
// domain bounds both the region enumeration (seeds are drawn from the box)
// and the validity checks (a symbol used as a loop bound must keep the
// bound well-formed everywhere in its domain).
type ParamSpec struct {
	Name   string
	Lo, Hi int64
}

// paramDomainCap bounds |Lo| and |Hi| of a parameter domain so that every
// affine evaluation (coefficients are capped the same way) stays far from
// int64 overflow.
const paramDomainCap = int64(1) << 31

// ParamStats is a snapshot of a ParamBound's query counters plus the
// one-time enumeration work that built it.
type ParamStats struct {
	// FormulaEvals counts queries answered by the formula alone;
	// ParamFallbacks counts queries outside every enumerated region that
	// were answered by a concrete warm-started solve instead.
	FormulaEvals   int64
	ParamFallbacks int64
	// ParamRegions is the total number of pieces across both directions.
	ParamRegions int
	// EnumSolves / EnumPivots measure the one-time parametric enumeration.
	EnumSolves int
	EnumPivots int
	// RejectedPieces counts enumeration solves whose piece failed an exact
	// re-check (or, under Certify, the certificate verification) and was
	// discarded; their parameter points answer through the fallback.
	RejectedPieces int
}

// paramDir holds one direction's pieces in a flat, allocation-free layout:
// setStart[si] .. setStart[si+1] index the pieces of constraint set si.
type paramDir struct {
	pieces   []ilp.ParamPiece
	setOf    []int
	setStart []int
}

// ParamBound is a piecewise-linear bound formula produced by
// Session.Parametrize. It is immutable after construction apart from its
// atomic query counters; concurrent Eval/Bound calls are safe.
type ParamBound struct {
	session *Session
	file    *constraint.File
	specs   []ParamSpec
	nsets   int
	// dirs[0] answers WCET (Maximize), dirs[1] BCET (Minimize).
	dirs [2]paramDir
	// certified marks that Options.Certify was on and every retained
	// feasible piece's basis was re-verified by the exact certificate
	// checker at its seed point.
	certified bool

	evals     atomic.Int64
	fallbacks atomic.Int64
	enumStats ParamStats
}

// Specs returns the parameter declarations, in evaluation order: Eval's
// params[k] is the value of Specs()[k].
func (pb *ParamBound) Specs() []ParamSpec { return pb.specs }

// Certified reports that every feasible piece was re-verified by the exact
// certificate checker (Options.Certify).
func (pb *ParamBound) Certified() bool { return pb.certified }

// Pieces returns the total piece count across both directions.
func (pb *ParamBound) Pieces() int { return len(pb.dirs[0].pieces) + len(pb.dirs[1].pieces) }

// Stats snapshots the query counters.
func (pb *ParamBound) Stats() ParamStats {
	st := pb.enumStats
	st.FormulaEvals = pb.evals.Load()
	st.ParamFallbacks = pb.fallbacks.Load()
	st.ParamRegions = pb.Pieces()
	return st
}

// inBox reports whether params lies inside the declared domain box. Outside
// it the piece regions may still cover the point, but the validity
// pre-checks (nonnegative loop bounds, lo <= hi) only hold over the box, so
// out-of-box queries always take the concrete path.
func (pb *ParamBound) inBox(params []int64) bool {
	if len(params) != len(pb.specs) {
		return false
	}
	for k := range pb.specs {
		if params[k] < pb.specs[k].Lo || params[k] > pb.specs[k].Hi {
			return false
		}
	}
	return true
}

// evalDir answers one direction from the pieces alone. ok reports that
// every constraint set was covered by a piece at params; feasible reports
// that at least one covered set was feasible (when false with ok true, the
// scenario is infeasible at params). The reduce mirrors reduceDir's
// first-set-wins order: a later set replaces the incumbent only when
// strictly better.
func (pb *ParamBound) evalDir(di int, params []int64) (cycles int64, piece int, feasible, ok bool) {
	d := &pb.dirs[di]
	for si := 0; si < pb.nsets; si++ {
		covered := false
		for i := d.setStart[si]; i < d.setStart[si+1]; i++ {
			pc := &d.pieces[i]
			if !pc.Covers(params) {
				continue
			}
			covered = true
			if pc.Feasible {
				v := pc.Value.At(params)
				if !feasible ||
					(di == 0 && v > cycles) ||
					(di == 1 && v < cycles) {
					cycles, piece, feasible = v, i, true
				}
			}
			// Exact pieces covering the same point agree on the optimum
			// (the LP value function is single-valued), so the first
			// covering piece decides the set.
			break
		}
		if !covered {
			return 0, 0, false, false
		}
	}
	return cycles, piece, feasible, true
}

// Eval answers a WCET query from the formula: the cycle bound and the index
// of the winning piece. ok is false when the formula does not cover params
// (out-of-domain, an uncovered region hole, or an infeasible scenario) —
// use Bound or EstimateAt for the version with the concrete fallback. The
// hot path performs no allocation.
func (pb *ParamBound) Eval(params []int64) (cycles int64, piece int, ok bool) {
	return pb.eval(0, params)
}

// EvalBCET is Eval for the best-case direction.
func (pb *ParamBound) EvalBCET(params []int64) (cycles int64, piece int, ok bool) {
	return pb.eval(1, params)
}

func (pb *ParamBound) eval(di int, params []int64) (int64, int, bool) {
	if !pb.inBox(params) {
		return 0, 0, false
	}
	v, pc, feasible, ok := pb.evalDir(di, params)
	if !ok || !feasible {
		return 0, 0, false
	}
	pb.evals.Add(1)
	return v, pc, true
}

// paramsMap binds the parameter vector to its symbol names.
func (pb *ParamBound) paramsMap(params []int64) map[string]int64 {
	m := make(map[string]int64, len(pb.specs))
	for k := range pb.specs {
		m[pb.specs[k].Name] = params[k]
	}
	return m
}

// EstimateAt answers one parameter point as a full Estimate. When the
// formula covers the point in both directions the report is synthesized
// without any simplex work (Stats.FormulaEvals = 1; Counts are nil — the
// formula stores values, not vertices); otherwise the annotations are bound
// concretely and solved through the session (Stats.ParamFallbacks = 1),
// which reuses the session's warm bases and outcome caches. Either way the
// cycle bounds are exactly those of a concrete Estimate at the point.
func (pb *ParamBound) EstimateAt(params []int64) (*Estimate, error) {
	return pb.EstimateAtContext(context.Background(), params)
}

// EstimateAtContext is EstimateAt with cancellation (of the fallback solve;
// the formula path never blocks).
func (pb *ParamBound) EstimateAtContext(ctx context.Context, params []int64) (*Estimate, error) {
	if pb.inBox(params) {
		w, wpc, wFeas, wOK := pb.evalDir(0, params)
		b, bpc, bFeas, bOK := pb.evalDir(1, params)
		// The directions share a feasible region, so wFeas != bFeas cannot
		// happen with exact pieces; if it somehow does, fall back instead of
		// guessing.
		if wOK && bOK && wFeas == bFeas {
			pb.evals.Add(1)
			pb.session.noteFormulaAnswer()
			if !wFeas {
				return nil, &InfeasibleError{Sets: pb.nsets}
			}
			est := &Estimate{
				WCET: BoundReport{Cycles: w, SetIndex: pb.dirs[0].setOf[wpc],
					Exact: true, Certified: pb.certified},
				BCET: BoundReport{Cycles: b, SetIndex: pb.dirs[1].setOf[bpc],
					Exact: true, Certified: pb.certified},
				NumSets:         pb.nsets,
				SolvedSets:      pb.nsets,
				AllRootIntegral: true,
			}
			est.Stats.SetsTotal = pb.nsets
			est.Stats.FormulaEvals = 1
			est.Stats.ParamRegions = pb.Pieces()
			return est, nil
		}
	}
	pb.fallbacks.Add(1)
	bound, err := pb.file.Bind(pb.paramsMap(params))
	if err != nil {
		return nil, err
	}
	est, err := pb.session.EstimateContext(ctx, bound)
	if est != nil {
		est.Stats.ParamFallbacks = 1
		est.Stats.ParamRegions = pb.Pieces()
	}
	return est, err
}

// Bound answers one parameter point: formula when covered, concrete
// warm-started solve when not — never a wrong number.
func (pb *ParamBound) Bound(params []int64) (wcet, bcet int64, err error) {
	est, err := pb.EstimateAtContext(context.Background(), params)
	if err != nil {
		return 0, 0, err
	}
	return est.WCET.Cycles, est.BCET.Cycles, nil
}

// Describe renders the formula in terms of the declared symbol names.
func (pb *ParamBound) Describe() string {
	var sb strings.Builder
	names := make([]string, len(pb.specs))
	for k, sp := range pb.specs {
		names[k] = sp.Name
	}
	arg := strings.Join(names, ", ")
	for di, label := range [2]string{"WCET", "BCET"} {
		d := &pb.dirs[di]
		fmt.Fprintf(&sb, "%s(%s): %d piece(s) over %d constraint set(s)\n", label, arg, len(d.pieces), pb.nsets)
		const maxShown = 16
		for i := range d.pieces {
			if i == maxShown {
				fmt.Fprintf(&sb, "  … %d more\n", len(d.pieces)-maxShown)
				break
			}
			pc := &d.pieces[i]
			if pc.Feasible {
				fmt.Fprintf(&sb, "  piece %d (set %d): %s", i, d.setOf[i]+1, pb.affine(pc.Value))
			} else {
				fmt.Fprintf(&sb, "  piece %d (set %d): infeasible", i, d.setOf[i]+1)
			}
			if len(pc.Region) > 0 {
				fmt.Fprintf(&sb, "  where %s", pb.region(pc.Region))
			}
			sb.WriteString("\n")
		}
	}
	return strings.TrimRight(sb.String(), "\n")
}

func (pb *ParamBound) affine(a ilp.ParamAffine) string {
	s := fmt.Sprintf("%d", a.C0)
	for k, c := range a.Coef {
		if c == 0 {
			continue
		}
		if c >= 0 {
			s += fmt.Sprintf(" + %d·%s", c, pb.specs[k].Name)
		} else {
			s += fmt.Sprintf(" - %d·%s", -c, pb.specs[k].Name)
		}
	}
	return s
}

func (pb *ParamBound) region(gs []ilp.ParamAffine) string {
	parts := make([]string, 0, len(gs))
	for _, g := range gs {
		parts = append(parts, pb.affine(g)+" ≥ 0")
	}
	const maxShown = 6
	if len(parts) > maxShown {
		parts = append(parts[:maxShown], fmt.Sprintf("… (%d more)", len(gs)-maxShown))
	}
	return strings.Join(parts, ", ")
}

// firstSymbolUse locates the first annotation that carries a parameter
// symbol, for error positioning.
func firstSymbolUse(file *constraint.File) (f string, line int) {
	for _, sec := range file.Sections {
		for _, lb := range sec.LoopBounds {
			if lb.Symbolic() {
				return lb.File, lb.Line
			}
		}
		for _, fm := range sec.Formulas {
			if f, line, ok := formulaSymbolUse(fm); ok {
				return f, line
			}
		}
	}
	return "", 0
}

func formulaSymbolUse(f constraint.Formula) (string, int, bool) {
	switch n := f.(type) {
	case *constraint.Atom:
		if len(n.Rel.Syms) > 0 {
			return n.Rel.File, n.Rel.Line, true
		}
	case *constraint.And:
		for _, p := range n.Parts {
			if f, l, ok := formulaSymbolUse(p); ok {
				return f, l, true
			}
		}
	case *constraint.Or:
		for _, p := range n.Parts {
			if f, l, ok := formulaSymbolUse(p); ok {
				return f, l, true
			}
		}
	}
	return "", 0, false
}

// checkNoSymbols guards the concrete solve path: annotations still carrying
// parameter symbols cannot be lowered to numbers.
func checkNoSymbols(file *constraint.File) error {
	if file == nil {
		return nil
	}
	syms := file.Symbols()
	if len(syms) == 0 {
		return nil
	}
	f, line := firstSymbolUse(file)
	return &UnboundSymbolError{Symbols: syms, File: f, Line: line}
}

// Parametrize analyzes one symbolic annotation scenario into a
// piecewise-linear bound formula. Every parameter symbol used by file must
// be declared in specs (and vice versa). The enumeration seeds parametric
// solves from the declared domain box, one optimal basis per piece; see
// ParamBound for the query-time contract.
func (s *Session) Parametrize(file *constraint.File, specs []ParamSpec) (*ParamBound, error) {
	return s.ParametrizeContext(context.Background(), file, specs)
}

// enumeration budgets, per (direction, constraint set).
const (
	maxPiecesPerSet = 64
	maxSolvesPerSet = 96
)

// ParametrizeContext is Parametrize with cancellation.
func (s *Session) ParametrizeContext(ctx context.Context, file *constraint.File, specs []ParamSpec) (*ParamBound, error) {
	if file == nil {
		return nil, fmt.Errorf("ipet: Parametrize requires an annotation file")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("ipet: Parametrize requires at least one parameter spec")
	}
	if s.Opts.WidenSets {
		return nil, fmt.Errorf("ipet: Parametrize does not support Options.WidenSets (a widened set would change with the parameters)")
	}
	symIdx := make(map[string]int, len(specs))
	for k, sp := range specs {
		if sp.Name == "" {
			return nil, fmt.Errorf("ipet: parameter %d has an empty name", k)
		}
		if _, dup := symIdx[sp.Name]; dup {
			return nil, fmt.Errorf("ipet: duplicate parameter %q", sp.Name)
		}
		if sp.Lo > sp.Hi {
			return nil, fmt.Errorf("ipet: parameter %q has an empty domain %d .. %d", sp.Name, sp.Lo, sp.Hi)
		}
		if sp.Lo < -paramDomainCap || sp.Hi > paramDomainCap {
			return nil, fmt.Errorf("ipet: parameter %q domain exceeds ±2^31", sp.Name)
		}
		symIdx[sp.Name] = k
	}
	used := file.Symbols()
	for _, name := range used {
		if _, ok := symIdx[name]; !ok {
			return nil, fmt.Errorf("ipet: annotations use parameter %q but no domain was declared for it", name)
		}
	}
	if len(used) != len(specs) {
		usedSet := make(map[string]bool, len(used))
		for _, n := range used {
			usedSet[n] = true
		}
		for _, sp := range specs {
			if !usedSet[sp.Name] {
				return nil, fmt.Errorf("ipet: parameter %q does not occur in the annotations", sp.Name)
			}
		}
	}

	// Apply validates the file (symbolic bounds included) and deep-copies it.
	a := &Analyzer{Session: s}
	if err := a.Apply(file); err != nil {
		return nil, err
	}
	if err := checkBoundDomains(a.annots, specs, symIdx); err != nil {
		return nil, err
	}

	K := len(specs)
	structural := s.StructuralConstraints()
	loopRows, loopCoefs, err := a.paramLoopRows(structural, specs, symIdx)
	if err != nil {
		return nil, err
	}
	setRows, setCoefs, total, err := a.paramSets(symIdx, K)
	if err != nil {
		return nil, err
	}
	if total == 0 {
		return nil, &InfeasibleError{Sets: 0, AllNull: true}
	}

	pb := &ParamBound{session: s, file: a.annots, specs: specs, nsets: total}
	for di := range s.dirBases {
		db := &s.dirBases[di]
		d := &pb.dirs[di]
		d.setStart = make([]int, 0, total+1)
		for si := 0; si < total; si++ {
			d.setStart = append(d.setStart, len(d.pieces))
			nShared := len(structural) + len(loopRows) + len(db.obj.extra)
			rows := make([]ilp.Constraint, 0, nShared+len(setRows[si]))
			coefs := make([][]int64, 0, nShared+len(setRows[si]))
			rows = append(rows, structural...)
			coefs = append(coefs, make([][]int64, len(structural))...)
			rows = append(rows, loopRows...)
			coefs = append(coefs, loopCoefs...)
			rows = append(rows, db.obj.extra...)
			coefs = append(coefs, make([][]int64, len(db.obj.extra))...)
			rows = append(rows, setRows[si]...)
			coefs = append(coefs, setCoefs[si]...)
			p := &ilp.Problem{
				Sense:       db.sense,
				NumVars:     db.obj.nVars,
				Objective:   db.obj.coeffs,
				Constraints: rows,
			}
			pieces, err := pb.enumerateSet(ctx, a, p, coefs)
			if err != nil {
				return nil, err
			}
			for range pieces {
				d.setOf = append(d.setOf, si)
			}
			d.pieces = append(d.pieces, pieces...)
		}
		d.setStart = append(d.setStart, len(d.pieces))
	}
	pb.certified = s.Opts.Certify
	pb.enumStats.ParamRegions = pb.Pieces()
	return pb, nil
}

// checkBoundDomains rejects a parameter domain that admits an invalid loop
// bound (negative lower end, or lower end above upper end) anywhere in the
// box: inside the box a query must always have a well-formed concrete
// binding, so formula answers and fallback answers agree on validity. The
// check is conservative over the box corners.
func checkBoundDomains(file *constraint.File, specs []ParamSpec, symIdx map[string]int) error {
	for _, sec := range file.Sections {
		for _, lb := range sec.LoopBounds {
			if !lb.Symbolic() {
				continue
			}
			loMin, loMax := lb.Lo, lb.Lo
			if lb.LoSym != "" {
				sp := specs[symIdx[lb.LoSym]]
				loMin, loMax = sp.Lo, sp.Hi
			}
			hiMin := lb.Hi
			if lb.HiSym != "" {
				hiMin = specs[symIdx[lb.HiSym]].Lo
			}
			if loMin < 0 {
				return &AnnotationError{File: lb.File, Line: lb.Line,
					Msg: fmt.Sprintf("parameter domain admits a negative lower bound for %s loop %d", sec.Func, lb.Loop)}
			}
			if loMax > hiMin {
				return &AnnotationError{File: lb.File, Line: lb.Line,
					Msg: fmt.Sprintf("parameter domain admits lower bound %d above upper bound %d for %s loop %d", loMax, hiMin, sec.Func, lb.Loop)}
			}
		}
	}
	return nil
}

// paramLoopRows lowers the loop-bound annotations with parameter symbols
// carried into RHS coefficient vectors (coefs[i] nil for a non-parametric
// row). A concrete bound keeps the concrete path's exact form
// Σback − bound·Σentry {≤,≥} 0 (the bound sits in the matrix). A symbolic
// end cannot: a parameter in the matrix would make the program bilinear. It
// is sound to move it to the RHS exactly when the loop's entry-edge sum is
// *pinned* — forced to a single constant v by the structural rows plus the
// concrete loop rows alone — because then Σback ≤ hi·Σentry ⟺ Σback ≤ hi·v
// on every feasible point, for every hi. Nested symbolic bounds (where the
// outer symbolic bound un-pins the inner entry count) fail the pin check
// and are rejected.
func (a *Analyzer) paramLoopRows(structural []ilp.Constraint, specs []ParamSpec, symIdx map[string]int) ([]ilp.Constraint, [][]int64, error) {
	if a.annots == nil {
		return nil, nil, nil
	}
	K := len(specs)
	// The pin system: structural rows plus every fully concrete loop row.
	pinRows := append([]ilp.Constraint{}, structural...)
	for _, ctx := range a.contexts {
		sec, ok := a.annots.Section(ctx.Func)
		if !ok {
			continue
		}
		fc := a.Prog.Funcs[ctx.Func]
		for _, lb := range sec.LoopBounds {
			loop := fc.Loops[lb.Loop-1]
			if lb.HiSym == "" {
				upper := ilp.Constraint{Coeffs: map[int]float64{}, Rel: ilp.LE}
				for _, e := range loop.BackEdges {
					upper.Coeffs[a.edgeVar(ctx.ID, e)] += 1
				}
				for _, e := range loop.EntryEdges {
					upper.Coeffs[a.edgeVar(ctx.ID, e)] -= float64(lb.Hi)
				}
				pinRows = append(pinRows, upper)
			}
			if lb.LoSym == "" {
				lower := ilp.Constraint{Coeffs: map[int]float64{}, Rel: ilp.GE}
				for _, e := range loop.BackEdges {
					lower.Coeffs[a.edgeVar(ctx.ID, e)] += 1
				}
				for _, e := range loop.EntryEdges {
					lower.Coeffs[a.edgeVar(ctx.ID, e)] -= float64(lb.Lo)
				}
				pinRows = append(pinRows, lower)
			}
		}
	}

	var rows []ilp.Constraint
	var coefs [][]int64
	for _, ctx := range a.contexts {
		sec, ok := a.annots.Section(ctx.Func)
		if !ok {
			continue
		}
		fc := a.Prog.Funcs[ctx.Func]
		for _, lb := range sec.LoopBounds {
			loop := fc.Loops[lb.Loop-1]
			var entryPin int64
			if lb.Symbolic() {
				v, err := a.pinEntrySum(ctx.ID, loop.EntryEdges, pinRows)
				if err != nil {
					return nil, nil, &AnnotationError{File: lb.File, Line: lb.Line,
						Msg: fmt.Sprintf("symbolic bound for %s loop %d (%s): %v", ctx, lb.Loop, symBoundString(lb), err)}
				}
				entryPin = v
			}
			upper := ilp.Constraint{
				Coeffs: map[int]float64{},
				Rel:    ilp.LE,
				Name:   fmt.Sprintf("%s: loop %d upper %s", ctx, lb.Loop, boundEndString(lb.Hi, lb.HiSym)),
			}
			lower := ilp.Constraint{
				Coeffs: map[int]float64{},
				Rel:    ilp.GE,
				Name:   fmt.Sprintf("%s: loop %d lower %s", ctx, lb.Loop, boundEndString(lb.Lo, lb.LoSym)),
			}
			for _, e := range loop.BackEdges {
				upper.Coeffs[a.edgeVar(ctx.ID, e)] += 1
				lower.Coeffs[a.edgeVar(ctx.ID, e)] += 1
			}
			var upperCoef, lowerCoef []int64
			if lb.HiSym == "" {
				for _, e := range loop.EntryEdges {
					upper.Coeffs[a.edgeVar(ctx.ID, e)] -= float64(lb.Hi)
				}
			} else if entryPin != 0 {
				// Σback ≤ θ_hi · v, carried as RHS 0 + v·θ_hi.
				upperCoef = make([]int64, K)
				upperCoef[symIdx[lb.HiSym]] = entryPin
			}
			if lb.LoSym == "" {
				for _, e := range loop.EntryEdges {
					lower.Coeffs[a.edgeVar(ctx.ID, e)] -= float64(lb.Lo)
				}
			} else if entryPin != 0 {
				lowerCoef = make([]int64, K)
				lowerCoef[symIdx[lb.LoSym]] = entryPin
			}
			rows = append(rows, upper, lower)
			coefs = append(coefs, upperCoef, lowerCoef)
		}
	}
	return rows, coefs, nil
}

func symBoundString(lb constraint.LoopBound) string {
	return boundEndString(lb.Lo, lb.LoSym) + " .. " + boundEndString(lb.Hi, lb.HiSym)
}

func boundEndString(v int64, sym string) string {
	if sym != "" {
		return sym
	}
	return fmt.Sprintf("%d", v)
}

// pinEntrySum proves that the sum of the given entry edges is a fixed
// constant on every feasible point of the pin system, and returns it. Both
// the minimum and maximum of the sum are solved as LPs; the claim holds in
// the full (superset) system a fortiori.
func (a *Analyzer) pinEntrySum(ctxID int, entryEdges []int, pinRows []ilp.Constraint) (int64, error) {
	if len(entryEdges) == 0 {
		return 0, nil
	}
	obj := map[int]float64{}
	for _, e := range entryEdges {
		obj[a.edgeVar(ctxID, e)] += 1
	}
	var vals [2]float64
	for i, sense := range [2]ilp.Sense{ilp.Minimize, ilp.Maximize} {
		sol, err := ilp.Solve(&ilp.Problem{
			Sense:       sense,
			NumVars:     a.nVars,
			Objective:   obj,
			Constraints: pinRows,
		})
		if err != nil {
			return 0, err
		}
		switch sol.Status {
		case ilp.Optimal:
			vals[i] = sol.Objective
		case ilp.Unbounded:
			return 0, fmt.Errorf("the loop's entry count is not fixed by the concrete constraints (nested parametric loops are not supported)")
		default:
			return 0, fmt.Errorf("the concrete constraints are already infeasible (%v)", sol.Status)
		}
	}
	if math.Abs(vals[1]-vals[0]) > 1e-6 {
		return 0, fmt.Errorf("the loop's entry count varies between %g and %g under the concrete constraints (nested parametric loops are not supported)", vals[0], vals[1])
	}
	v := math.Round(vals[0])
	if math.Abs(vals[0]-v) > 1e-6 || v < 0 || v > float64(paramDomainCap) {
		return 0, fmt.Errorf("the loop's entry count %g is not a small nonnegative integer", vals[0])
	}
	return int64(v), nil
}

// paramSets expands the functionality formulas into conjunctive ILP sets
// with each relation's symbol coefficients carried alongside. Unlike the
// concrete buildSets, nothing is pruned, widened, or deduped: null-ness and
// equality of sets are parameter-dependent here.
func (a *Analyzer) paramSets(symIdx map[string]int, K int) (sets [][]ilp.Constraint, coefs [][][]int64, total int, err error) {
	var formulas []constraint.Formula
	if a.annots != nil {
		for _, sec := range a.annots.Sections {
			if _, reachable := a.ctxByFunc[sec.Func]; !reachable {
				continue
			}
			formulas = append(formulas, sec.Formulas...)
		}
	}
	conjSets, err := constraint.CrossProduct(formulas, a.Opts.MaxSets)
	if err != nil {
		return nil, nil, 0, err
	}
	for _, cs := range conjSets {
		rows := make([]ilp.Constraint, 0, len(cs))
		rowCoefs := make([][]int64, 0, len(cs))
		for _, r := range cs {
			c, err := a.relToILP(r)
			if err != nil {
				return nil, nil, 0, err
			}
			var vec []int64
			if len(r.Syms) > 0 {
				vec = make([]int64, K)
				for name, coef := range r.Syms {
					vec[symIdx[name]] = coef
				}
			}
			rows = append(rows, c)
			rowCoefs = append(rowCoefs, vec)
		}
		sets = append(sets, rows)
		coefs = append(coefs, rowCoefs)
	}
	return sets, coefs, len(conjSets), nil
}

// enumerateSet enumerates the pieces of one (direction, constraint set)
// parametric program over the domain box. K == 1 walks the interval
// exactly: solve at the lowest uncovered point, jump past the piece's
// covered interval, repeat. K >= 2 seeds from a coarse sub-grid of the box.
// Budget exhaustion and rejected pieces leave coverage holes, which queries
// answer through the concrete fallback — completeness is best-effort,
// correctness is not.
func (pb *ParamBound) enumerateSet(ctx context.Context, a *Analyzer, p *ilp.Problem, coefs [][]int64) ([]ilp.ParamPiece, error) {
	var pieces []ilp.ParamPiece
	specs := pb.specs
	K := len(specs)
	st := &pb.enumStats
	solves := 0
	budgetLeft := func() bool {
		return len(pieces) < maxPiecesPerSet && solves < maxSolvesPerSet
	}
	covering := func(theta []int64) int {
		for i := range pieces {
			if pieces[i].Covers(theta) {
				return i
			}
		}
		return -1
	}
	try := func(theta []int64) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		pc, status, pivots, err := ilp.SolveParametric(p, K, coefs, theta)
		solves++
		st.EnumSolves++
		st.EnumPivots += pivots
		if err != nil {
			return false, err
		}
		if status == ilp.Unbounded {
			msg := "ipet: ILP unbounded — a loop lacks a bound"
			if missing := a.MissingLoopBounds(); len(missing) > 0 {
				msg += ": " + strings.Join(missing, "; ")
			}
			return false, fmt.Errorf("%s", msg)
		}
		if pc == nil || !pc.Exact || !pc.Covers(theta) {
			st.RejectedPieces++
			return false, nil
		}
		if pb.session.Opts.Certify && pc.Feasible && !verifyPieceAt(p, coefs, pc, theta) {
			st.RejectedPieces++
			return false, nil
		}
		pieces = append(pieces, *pc)
		return true, nil
	}

	if K == 1 {
		lo, hi := specs[0].Lo, specs[0].Hi
		theta := []int64{lo}
		for theta[0] <= hi && budgetLeft() {
			if i := covering(theta); i >= 0 {
				theta[0] = pieceIntervalEnd(&pieces[i], theta[0], hi) + 1
				continue
			}
			ok, err := try(theta)
			if err != nil {
				return nil, err
			}
			if !ok {
				theta[0]++ // a hole; move on
			}
		}
		return pieces, nil
	}

	axes := gridAxes(specs)
	idx := make([]int, K)
	theta := make([]int64, K)
	for {
		for k := range idx {
			theta[k] = axes[k][idx[k]]
		}
		if !budgetLeft() {
			break
		}
		if covering(theta) < 0 {
			if _, err := try(theta); err != nil {
				return nil, err
			}
		}
		k := K - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(axes[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return pieces, nil
}

// gridAxes picks seed values per axis: every integer for small domains,
// otherwise an even spread including both endpoints. The per-axis width
// shrinks with dimension to cap the total grid size.
func gridAxes(specs []ParamSpec) [][]int64 {
	K := len(specs)
	perAxis := 16
	if K >= 3 {
		perAxis = 8
	}
	if K >= 4 {
		perAxis = 4
	}
	axes := make([][]int64, K)
	for k, sp := range specs {
		n := sp.Hi - sp.Lo + 1
		if n <= int64(perAxis) {
			vals := make([]int64, 0, n)
			for v := sp.Lo; v <= sp.Hi; v++ {
				vals = append(vals, v)
			}
			axes[k] = vals
			continue
		}
		vals := make([]int64, 0, perAxis)
		for i := 0; i < perAxis; i++ {
			v := sp.Lo + (sp.Hi-sp.Lo)*int64(i)/int64(perAxis-1)
			if len(vals) == 0 || vals[len(vals)-1] != v {
				vals = append(vals, v)
			}
		}
		axes[k] = vals
	}
	return axes
}

// pieceIntervalEnd returns the largest θ ≤ hi still covered by the piece,
// for the 1-D interval walk; the piece is known to cover from.
func pieceIntervalEnd(pc *ilp.ParamPiece, from, hi int64) int64 {
	end := hi
	for _, g := range pc.Region {
		if len(g.Coef) != 1 || g.Coef[0] >= 0 {
			continue
		}
		// g.C0 + c·θ ≥ 0 with c < 0 ⟺ θ ≤ floor(C0 / -c).
		if u := floorDiv(g.C0, -g.Coef[0]); u < end {
			end = u
		}
	}
	if end < from {
		end = from
	}
	return end
}

// floorDiv is floor(a/b) for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// verifyPieceAt re-verifies a feasible piece's basis through the exact
// certificate checker at its seed point: the concretized problem plus the
// piece's basis must certify exactly the value the piece's affine form
// claims there. Dual feasibility (the optimality half of the certificate)
// is independent of θ for a fixed basis, and the piece's region equals the
// set of θ where the basis stays primal feasible, so a basis certified at
// the seed is optimal across the whole region.
func verifyPieceAt(p *ilp.Problem, coefs [][]int64, pc *ilp.ParamPiece, theta []int64) bool {
	conc := &ilp.Problem{
		Sense:       p.Sense,
		NumVars:     p.NumVars,
		Integer:     true,
		Objective:   p.Objective,
		Constraints: make([]ilp.Constraint, len(p.Constraints)),
	}
	for i, c := range p.Constraints {
		if coefs[i] != nil {
			for k, coef := range coefs[i] {
				c.RHS += float64(coef) * float64(theta[k])
			}
		}
		conc.Constraints[i] = c
	}
	res, err := certify.Verify(conc, &ilp.Certificate{Basis: pc.Basis})
	if err != nil {
		return false
	}
	v, ok := ratInt64(res.Objective)
	return ok && v == pc.Value.At(theta)
}
