package ipet

import (
	"sync"
	"testing"
	"time"
)

// TestSessionTotalsSnapshotDuringEstimates is the regression test for the
// concurrent-observer contract of Session.Totals: a server polls the
// cumulative stats ledger (and the cache/memory accessors) while estimates
// are in flight, so snapshots must be consistent under the race detector
// and the final ledger must account every completed estimate exactly once.
func TestSessionTotalsSnapshotDuringEstimates(t *testing.T) {
	prog := checkDataProgram(t)
	sess, err := Prepare(prog, "check_data", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 4
		rounds  = 6
	)
	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		// The observer loop: exactly what a stats endpoint does, as fast
		// as it can, while the estimates below run.
		defer pollWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tot := sess.Totals()
			if tot.Estimates < 0 || tot.Stats.Pivots < 0 {
				t.Errorf("torn snapshot: %+v", tot)
				return
			}
			if tot.Degraded > tot.Estimates {
				t.Errorf("snapshot counts %d degraded of %d estimates", tot.Degraded, tot.Estimates)
				return
			}
			sess.CacheStats()
			if sess.MemoryFootprint() <= 0 {
				t.Error("non-positive memory footprint")
				return
			}
		}
	}()

	var wg sync.WaitGroup
	perCall := make([][]*Estimate, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				est, err := sess.Estimate(parseAnnots(t, sessionScenarios[(w+r)%len(sessionScenarios)]))
				if err != nil {
					t.Error(err)
					return
				}
				perCall[w] = append(perCall[w], est)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pollWG.Wait()

	tot := sess.Totals()
	var wantEst, wantPivots, wantSolved, wantHits int64
	for _, ests := range perCall {
		for _, est := range ests {
			wantEst++
			wantPivots += int64(est.Stats.Pivots)
			wantSolved += int64(est.Stats.Solved)
			wantHits += int64(est.Stats.CacheHits)
		}
	}
	if tot.Estimates != wantEst {
		t.Errorf("Totals.Estimates = %d, want %d", tot.Estimates, wantEst)
	}
	if int64(tot.Stats.Pivots) != wantPivots {
		t.Errorf("Totals.Stats.Pivots = %d, want %d (sum of per-call stats)", tot.Stats.Pivots, wantPivots)
	}
	if int64(tot.Stats.Solved) != wantSolved {
		t.Errorf("Totals.Stats.Solved = %d, want %d", tot.Stats.Solved, wantSolved)
	}
	if int64(tot.Stats.CacheHits) != wantHits {
		t.Errorf("Totals.Stats.CacheHits = %d, want %d", tot.Stats.CacheHits, wantHits)
	}
	if tot.Degraded != 0 || tot.DeadlineHits != 0 {
		t.Errorf("unrestricted estimates recorded as degraded: %+v", tot)
	}
}

// TestSetAnytimeOverride: a per-analyzer SLO override must degrade that
// analyzer's estimate to a sound envelope bracketing the exact bound,
// while sibling analyzers of the same session — and the session options —
// stay untouched. This is the hook a session server maps request SLOs
// through.
func TestSetAnytimeOverride(t *testing.T) {
	prog := checkDataProgram(t)
	opts := DefaultOptions()
	opts.Workers = 1
	sess, err := Prepare(prog, "check_data", opts)
	if err != nil {
		t.Fatal(err)
	}

	exact, err := sess.Estimate(parseAnnots(t, sessionScenarios[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !exact.WCET.Exact || !exact.BCET.Exact {
		t.Fatalf("reference run not exact: %+v / %+v", exact.WCET, exact.BCET)
	}

	// Each case gets its own scenario: a scenario the session has already
	// solved would be answered from the outcome cache with zero pivots —
	// legitimately exact under any budget — and prove nothing.
	for _, tc := range []struct {
		name     string
		scenario int
		deadline time.Duration
		budget   int
	}{
		{"tiny-deadline", 1, time.Nanosecond, 0},
		{"tiny-budget", 2, 0, 1},
	} {
		an, err := sess.Analyzer(parseAnnots(t, sessionScenarios[tc.scenario]))
		if err != nil {
			t.Fatal(err)
		}
		an.SetAnytime(tc.deadline, tc.budget)
		got, err := an.Estimate()
		if err != nil {
			t.Fatalf("%s: degraded estimate errored instead of degrading: %v", tc.name, err)
		}
		if got.WCET.Exact && got.BCET.Exact {
			t.Fatalf("%s: estimate did not degrade (exact under a %v/%d budget)", tc.name, tc.deadline, tc.budget)
		}
		// Soundness: the envelope must bracket the unrestricted bound of
		// the same scenario.
		ref, err := sess.Estimate(parseAnnots(t, sessionScenarios[tc.scenario]))
		if err != nil {
			t.Fatal(err)
		}
		if got.WCET.Cycles < ref.WCET.Cycles {
			t.Errorf("%s: degraded WCET %d below exact %d — unsound", tc.name, got.WCET.Cycles, ref.WCET.Cycles)
		}
		if got.BCET.Cycles > ref.BCET.Cycles {
			t.Errorf("%s: degraded BCET %d above exact %d — unsound", tc.name, got.BCET.Cycles, ref.BCET.Cycles)
		}
	}

	// The override is analyzer-scoped: the session options are untouched
	// and a fresh analyzer still solves exactly.
	if sess.Opts.Deadline != 0 || sess.Opts.Budget != 0 {
		t.Errorf("session options mutated by SetAnytime: deadline %v budget %d", sess.Opts.Deadline, sess.Opts.Budget)
	}
	again, err := sess.Estimate(parseAnnots(t, sessionScenarios[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(exact, again) {
		t.Errorf("post-override estimate diverges from reference: [%d,%d] vs [%d,%d]",
			again.BCET.Cycles, again.WCET.Cycles, exact.BCET.Cycles, exact.WCET.Cycles)
	}

	tot := sess.Totals()
	if tot.Degraded < 2 {
		t.Errorf("Totals.Degraded = %d, want >= 2 (one per override case)", tot.Degraded)
	}
}

// TestTotalsCountFormulaAnswers: parametric queries answered purely by the
// piecewise-linear formula appear in the ledger as FormulaAnswers, not
// Estimates; fallback points count as estimates like any concrete solve.
func TestTotalsCountFormulaAnswers(t *testing.T) {
	const annots = `
func check_data {
    loop 1: 1 .. n1
    (x4 = 0 & x6 = 1) | (x4 = 1 & x6 = 0)
    x4 = x9
}
`
	prog := checkDataProgram(t)
	sess, err := Prepare(prog, "check_data", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Parametrize(parseAnnots(t, annots), []ParamSpec{{Name: "n1", Lo: 1, Hi: 8}})
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Totals()
	var formula, fallback int64
	for n := int64(1); n <= 8; n++ {
		est, err := pb.EstimateAt([]int64{n})
		if err != nil {
			t.Fatalf("n1=%d: %v", n, err)
		}
		if est.Stats.FormulaEvals > 0 {
			formula++
		} else {
			fallback++
		}
	}
	tot := sess.Totals()
	if formula == 0 {
		t.Fatal("no point was answered by the formula")
	}
	if got := tot.FormulaAnswers - before.FormulaAnswers; got != formula {
		t.Errorf("FormulaAnswers grew by %d, want %d", got, formula)
	}
	if got := tot.Estimates - before.Estimates; got != fallback {
		t.Errorf("Estimates grew by %d, want %d (fallback points only)", got, fallback)
	}
}
