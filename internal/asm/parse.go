package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// operand is one parsed instruction operand.
type operand struct {
	kind opKind
	reg  uint8 // register number for opReg/opFreg and base for opMem
	num  int64 // integer literal / memory offset
	fnum float64
	sym  string // symbol name for opSym / symbolic .word
	off  int64  // addend for sym+off
}

type opKind uint8

const (
	opReg opKind = iota
	opFreg
	opInt
	opFloat
	opSym // symbol, optionally with +/- addend
	opMem // off(reg)
)

// stmt is one parsed source statement (after label extraction).
type stmt struct {
	line  int
	label string // label defined on this line ("" when none)

	// Exactly one of the following describes the statement body; an empty
	// op with no directive is a label-only line.
	op   string    // instruction mnemonic (possibly pseudo)
	dir  string    // directive name without the dot
	args []operand // operands for instructions and directives
}

var intRegAliases = map[string]uint8{
	"zero": 0, "rv": 1, "fp": 13, "lr": 14, "sp": 15,
}

func parseReg(tok string) (uint8, bool, bool) {
	if n, ok := intRegAliases[tok]; ok {
		return n, false, true
	}
	if len(tok) >= 2 && (tok[0] == 'r' || tok[0] == 'f') {
		n, err := strconv.Atoi(tok[1:])
		if err == nil && n >= 0 && n < 16 {
			return uint8(n), tok[0] == 'f', true
		}
	}
	return 0, false, false
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// stripComment removes ';', '#' and '//' comments outside char literals.
func stripComment(s string) string {
	inChar := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inChar {
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
			continue
		}
		switch {
		case c == '\'':
			inChar = true
		case c == ';' || c == '#':
			return s[:i]
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

func parseInt(tok string) (int64, error) {
	if len(tok) >= 3 && tok[0] == '\'' && tok[len(tok)-1] == '\'' {
		body := tok[1 : len(tok)-1]
		if len(body) == 2 && body[0] == '\\' {
			switch body[1] {
			case 'n':
				return '\n', nil
			case 't':
				return '\t', nil
			case '0':
				return 0, nil
			case '\\':
				return '\\', nil
			case '\'':
				return '\'', nil
			}
			return 0, fmt.Errorf("bad escape %q", body)
		}
		if len(body) == 1 {
			return int64(body[0]), nil
		}
		return 0, fmt.Errorf("bad char literal %q", tok)
	}
	return strconv.ParseInt(tok, 0, 64)
}

// parseOperand parses one comma-separated operand token.
func parseOperand(tok string) (operand, error) {
	tok = strings.TrimSpace(tok)
	if tok == "" {
		return operand{}, fmt.Errorf("empty operand")
	}
	// Memory operand: off(reg) or (reg).
	if i := strings.IndexByte(tok, '('); i >= 0 && strings.HasSuffix(tok, ")") {
		base := strings.TrimSpace(tok[i+1 : len(tok)-1])
		reg, isF, ok := parseReg(base)
		if !ok || isF {
			return operand{}, fmt.Errorf("bad base register %q", base)
		}
		offTok := strings.TrimSpace(tok[:i])
		var off int64
		if offTok != "" {
			var err error
			off, err = parseInt(offTok)
			if err != nil {
				return operand{}, fmt.Errorf("bad memory offset %q", offTok)
			}
		}
		return operand{kind: opMem, reg: reg, num: off}, nil
	}
	if reg, isF, ok := parseReg(tok); ok {
		k := opReg
		if isF {
			k = opFreg
		}
		return operand{kind: k, reg: reg}, nil
	}
	if isIdentStart(tok[0]) {
		// Symbol, optionally sym+n / sym-n.
		name := tok
		var off int64
		for i := 1; i < len(tok); i++ {
			if tok[i] == '+' || tok[i] == '-' {
				name = tok[:i]
				v, err := parseInt(tok[i+1:])
				if err != nil {
					return operand{}, fmt.Errorf("bad symbol addend in %q", tok)
				}
				if tok[i] == '-' {
					v = -v
				}
				off = v
				break
			}
			if !isIdentChar(tok[i]) {
				return operand{}, fmt.Errorf("bad operand %q", tok)
			}
		}
		return operand{kind: opSym, sym: name, off: off}, nil
	}
	if n, err := parseInt(tok); err == nil {
		return operand{kind: opInt, num: n}, nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return operand{kind: opFloat, fnum: f}, nil
	}
	return operand{}, fmt.Errorf("bad operand %q", tok)
}

// splitOperands splits on commas that are outside char literals.
func splitOperands(s string) []string {
	var parts []string
	depth := 0
	start := 0
	inChar := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inChar {
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
			continue
		}
		switch c {
		case '\'':
			inChar = true
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// parseSource splits assembly source into statements.
func parseSource(src string) ([]stmt, error) {
	var out []stmt
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(stripComment(raw))
		n := lineNo + 1
		if line == "" {
			continue
		}
		s := stmt{line: n}
		// Label?
		if i := strings.IndexByte(line, ':'); i >= 0 {
			lab := strings.TrimSpace(line[:i])
			if lab != "" && isIdentStart(lab[0]) && strings.IndexFunc(lab, func(r rune) bool {
				return !isIdentChar(byte(r))
			}) < 0 {
				s.label = lab
				line = strings.TrimSpace(line[i+1:])
			}
		}
		if line == "" {
			out = append(out, s)
			continue
		}
		// Directive or mnemonic.
		fields := strings.SplitN(line, " ", 2)
		head := strings.TrimSpace(fields[0])
		rest := ""
		if len(fields) == 2 {
			rest = strings.TrimSpace(fields[1])
		}
		if strings.HasPrefix(head, ".") {
			s.dir = head[1:]
		} else {
			s.op = strings.ToLower(head)
		}
		if rest != "" {
			for _, tok := range splitOperands(rest) {
				op, err := parseOperand(tok)
				if err != nil {
					return nil, errf(n, "%v", err)
				}
				s.args = append(s.args, op)
			}
		}
		out = append(out, s)
	}
	return out, nil
}
