package asm

import (
	"fmt"
	"strings"

	"cinderella/internal/isa"
)

// Disassemble renders the text segment of an executable as readable
// assembly, annotating function entry points. It is a debugging aid for the
// compiler and the CFG builder.
func Disassemble(exe *Executable) string {
	var b strings.Builder
	funcAt := make(map[uint32]string, len(exe.Functions))
	for _, f := range exe.Functions {
		funcAt[f.Addr] = f.Name
	}
	for pc := uint32(0); pc < exe.TextBytes; pc += isa.WordBytes {
		if name, ok := funcAt[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		ins, err := exe.Instr(pc)
		if err != nil {
			fmt.Fprintf(&b, "  %06x: <bad: %v>\n", pc, err)
			continue
		}
		fmt.Fprintf(&b, "  %06x: %s\n", pc, formatWithTarget(pc, ins))
	}
	return b.String()
}

// formatWithTarget renders pc-relative branches with their absolute target
// so disassembly is readable.
func formatWithTarget(pc uint32, ins isa.Instruction) string {
	info := isa.InfoFor(ins.Op)
	if info.Branch {
		target := int64(pc) + isa.WordBytes + int64(ins.Imm)*isa.WordBytes
		return fmt.Sprintf("%s r%d, r%d, %#x", info.Name, ins.Rs1, ins.Rs2, target)
	}
	return ins.String()
}

// BranchTarget computes the absolute byte address a control-transfer
// instruction at pc goes to when taken. ok is false for JR (target is
// dynamic) and for non-control instructions.
func BranchTarget(pc uint32, ins isa.Instruction) (uint32, bool) {
	info := isa.InfoFor(ins.Op)
	switch {
	case info.Branch:
		return uint32(int64(pc) + isa.WordBytes + int64(ins.Imm)*isa.WordBytes), true
	case ins.Op == isa.OpJmp, ins.Op == isa.OpCall:
		return uint32(ins.Imm) * isa.WordBytes, true
	}
	return 0, false
}
