package asm

import (
	"strings"
	"testing"

	"cinderella/internal/isa"
)

func TestOperandFormErrors(t *testing.T) {
	cases := []struct {
		src string
		sub string
	}{
		{"main: lw r1, r2\n", "wants reg, off(reg)"},
		{"main: sw r1, 4\n", "wants reg, off(reg)"},
		{"main: fld f1, f2\n", "wants freg, off(reg)"},
		{"main: fst r1, 0(sp)\n", "wants freg, off(reg)"},
		{"main: lui r1, r2\n", "lui wants reg, imm"},
		{"main: addi r1, r2, r3\n", "wants reg, reg, imm"},
		{"main: beq r1, r2, 4(r3)\n", "label or offset"},
		{"main: jmp r1\n", "wants label or address"},
		{"main: jmp 6\n", "not word aligned"},
		{"main: jr 5\n", "jr wants one integer register"},
		{"main: ret r1\n", "ret takes no operands"},
		{"main: nop r1\n", "takes no operands"},
		{"main: li r1\n", "li wants 2 operands"},
		{"main: li r1, 9999999999999\n", "out of 32-bit range"},
		{"main: la r1, 5\n", "operand 2 has wrong form"},
		{"main: mov r1\n", "mov wants 2 operands"},
		{"main: beqz r1\n", "wants register, target"},
		{"main: ble r1, r2\n", "wants reg, reg, target"},
		{"main: fsqrt f1, f2, f3\n", "wants 2 operands"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want %q", c.src, c.sub)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("Assemble(%q) = %q, want containing %q", c.src, err, c.sub)
		}
	}
}

func TestCharEscapes(t *testing.T) {
	exe := mustAssemble(t, `
main:
        li r1, '\t'
        li r2, '\\'
        li r3, '\''
        li r4, '\0'
        halt
`)
	want := []int32{'\t', '\\', '\'', 0}
	for i, w := range want {
		ins, _ := exe.Instr(uint32(4 * i))
		if ins.Imm != w {
			t.Errorf("literal %d = %d, want %d", i, ins.Imm, w)
		}
	}
	if _, err := Assemble("main: li r1, '\\q'\n"); err == nil {
		t.Error("bad escape accepted")
	}
}

func TestNumericBranchTargets(t *testing.T) {
	exe := mustAssemble(t, "main:\n beq r1, r2, -1\n halt\n")
	ins, _ := exe.Instr(0)
	if ins.Op != isa.OpBeq || ins.Imm != -1 {
		t.Fatalf("numeric branch offset: %+v", ins)
	}
	exe = mustAssemble(t, "main:\n jmp 0\n")
	ins, _ = exe.Instr(0)
	if ins.Op != isa.OpJmp || ins.Imm != 0 {
		t.Fatalf("numeric jmp target: %+v", ins)
	}
}

func TestGlobalDirectiveAccepted(t *testing.T) {
	exe := mustAssemble(t, `
        .global main
        .globl helper
        .extern thing
main:   halt
helper: ret
`)
	if _, ok := exe.FunctionNamed("main"); !ok {
		t.Fatal("main missing")
	}
}

func TestAlignDirectiveErrors(t *testing.T) {
	if _, err := Assemble("main: halt\n.data\n.align 0\n"); err == nil {
		t.Error("zero align accepted")
	}
	if _, err := Assemble(".align 4\nmain: halt\n"); err == nil {
		t.Error(".align in text accepted")
	}
	if _, err := Assemble("main: halt\n.data\n.word x+\n"); err == nil {
		t.Error("bad symbol addend accepted")
	}
	if _, err := Assemble("main: halt\n.data\nb: .byte x\n"); err == nil {
		t.Error(".byte with symbol accepted")
	}
	if _, err := Assemble("main: halt\n.data\nd: .double x\n"); err == nil {
		t.Error(".double with symbol accepted")
	}
	if _, err := Assemble("main: halt\n.data\nw: .word 1.5\n"); err == nil {
		t.Error(".word with float accepted")
	}
}

func TestSymbolicWordUndefined(t *testing.T) {
	_, err := Assemble("main: halt\n.data\nt: .word ghost\n")
	if err == nil || !strings.Contains(err.Error(), `undefined symbol "ghost"`) {
		t.Fatalf("err = %v", err)
	}
}

func TestDoubleWithIntegerOperand(t *testing.T) {
	exe := mustAssemble(t, "main: halt\n.data\nd: .double 3\n")
	addr := exe.Symbols["d"]
	var bits uint64
	for i := uint32(0); i < 8; i++ {
		bits |= uint64(exe.Mem[addr+i]) << (8 * i)
	}
	if bits != 0x4008000000000000 { // float64(3.0)
		t.Fatalf("double bits %#x", bits)
	}
}

func TestMemOperandWithoutOffset(t *testing.T) {
	exe := mustAssemble(t, "main:\n lw r1, (sp)\n halt\n")
	ins, _ := exe.Instr(0)
	if ins.Op != isa.OpLw || ins.Imm != 0 || ins.Rs1 != isa.RegSP {
		t.Fatalf("bare (reg) operand: %+v", ins)
	}
}
