package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"cinderella/internal/isa"
)

// symUse describes how a symbolic immediate is folded into an instruction.
type symUse uint8

const (
	symNone   symUse = iota
	symBranch        // pc-relative word offset (format B)
	symAbs           // absolute word address (format J)
	symHi            // upper 16 bits of the symbol address (lui of la)
	symLo            // lower 16 bits of the symbol address (ori of la)
)

// template is one machine instruction awaiting symbol resolution.
type template struct {
	line         int
	op           isa.Opcode
	rd, rs1, rs2 uint8
	imm          int64
	sym          string
	symOff       int64
	use          symUse
}

// dataItem is one assembled data-segment entity at a data-relative offset.
type dataItem struct {
	line   int
	off    uint32
	bytes  []byte
	sym    string // when set, a 4-byte word resolved to sym's address+symOff
	symOff int64
}

type assembler struct {
	text     []template
	data     []dataItem
	dataSize uint32
	inData   bool
	textSyms map[string]uint32 // label -> word index
	dataSyms map[string]uint32 // label -> data-relative offset
	symLines map[string]int
}

// Assemble translates CR32 assembly source into an executable image.
func Assemble(src string) (*Executable, error) {
	stmts, err := parseSource(src)
	if err != nil {
		return nil, err
	}
	a := &assembler{
		textSyms: map[string]uint32{},
		dataSyms: map[string]uint32{},
		symLines: map[string]int{},
	}
	for _, s := range stmts {
		if err := a.stmt(s); err != nil {
			return nil, err
		}
	}
	return a.link()
}

func (a *assembler) defineLabel(name string, line int) error {
	if _, dup := a.textSyms[name]; dup {
		return errf(line, "label %q redefined (first at line %d)", name, a.symLines[name])
	}
	if _, dup := a.dataSyms[name]; dup {
		return errf(line, "label %q redefined (first at line %d)", name, a.symLines[name])
	}
	a.symLines[name] = line
	if a.inData {
		a.dataSyms[name] = a.dataSize
	} else {
		a.textSyms[name] = uint32(len(a.text))
	}
	return nil
}

func (a *assembler) stmt(s stmt) error {
	if s.label != "" {
		// Pre-align data labels so the label names the aligned payload.
		if a.inData && s.dir == "double" {
			a.alignData(8)
		} else if a.inData && s.dir == "word" {
			a.alignData(4)
		}
		if err := a.defineLabel(s.label, s.line); err != nil {
			return err
		}
	}
	switch {
	case s.dir != "":
		return a.directive(s)
	case s.op != "":
		if a.inData {
			return errf(s.line, "instruction %q in data segment", s.op)
		}
		return a.instr(s)
	}
	return nil
}

func (a *assembler) alignData(n uint32) {
	if rem := a.dataSize % n; rem != 0 {
		a.dataSize += n - rem
	}
}

func (a *assembler) directive(s stmt) error {
	switch s.dir {
	case "text":
		a.inData = false
	case "data":
		a.inData = true
	case "global", "globl", "extern":
		// Accepted for source compatibility; all symbols are global.
	case "align":
		if len(s.args) != 1 || s.args[0].kind != opInt || s.args[0].num <= 0 {
			return errf(s.line, ".align wants one positive integer")
		}
		if !a.inData {
			return errf(s.line, ".align only supported in data segment")
		}
		a.alignData(uint32(s.args[0].num))
	case "word":
		if !a.inData {
			return errf(s.line, ".word only supported in data segment")
		}
		a.alignData(4)
		for _, arg := range s.args {
			switch arg.kind {
			case opInt:
				b := make([]byte, 4)
				binary.LittleEndian.PutUint32(b, uint32(arg.num))
				a.data = append(a.data, dataItem{line: s.line, off: a.dataSize, bytes: b})
			case opSym:
				a.data = append(a.data, dataItem{line: s.line, off: a.dataSize, sym: arg.sym, symOff: arg.off})
			default:
				return errf(s.line, ".word wants integer or symbol operands")
			}
			a.dataSize += 4
		}
	case "byte":
		if !a.inData {
			return errf(s.line, ".byte only supported in data segment")
		}
		for _, arg := range s.args {
			if arg.kind != opInt {
				return errf(s.line, ".byte wants integer operands")
			}
			a.data = append(a.data, dataItem{line: s.line, off: a.dataSize, bytes: []byte{byte(arg.num)}})
			a.dataSize++
		}
	case "double":
		if !a.inData {
			return errf(s.line, ".double only supported in data segment")
		}
		a.alignData(8)
		for _, arg := range s.args {
			var f float64
			switch arg.kind {
			case opFloat:
				f = arg.fnum
			case opInt:
				f = float64(arg.num)
			default:
				return errf(s.line, ".double wants numeric operands")
			}
			b := make([]byte, 8)
			binary.LittleEndian.PutUint64(b, math.Float64bits(f))
			a.data = append(a.data, dataItem{line: s.line, off: a.dataSize, bytes: b})
			a.dataSize += 8
		}
	case "space":
		if !a.inData {
			return errf(s.line, ".space only supported in data segment")
		}
		if len(s.args) != 1 || s.args[0].kind != opInt || s.args[0].num < 0 {
			return errf(s.line, ".space wants one non-negative integer")
		}
		a.dataSize += uint32(s.args[0].num)
	default:
		return errf(s.line, "unknown directive .%s", s.dir)
	}
	return nil
}

// emit appends one machine instruction template.
func (a *assembler) emit(t template) { a.text = append(a.text, t) }

func wantArgs(s stmt, kinds ...opKind) error {
	if len(s.args) != len(kinds) {
		return errf(s.line, "%s wants %d operands, got %d", s.op, len(kinds), len(s.args))
	}
	for i, k := range kinds {
		got := s.args[i].kind
		if got == k {
			continue
		}
		// An integer literal is acceptable where a symbol target is allowed
		// and vice versa; callers disambiguate.
		return errf(s.line, "%s operand %d has wrong form", s.op, i+1)
	}
	return nil
}

func (a *assembler) instr(s stmt) error {
	// Pseudo-instructions first.
	switch s.op {
	case "li":
		if err := wantArgs(s, opReg, opInt); err != nil {
			return err
		}
		v := s.args[1].num
		if v < math.MinInt32 || v > math.MaxUint32 {
			return errf(s.line, "li immediate %d out of 32-bit range", v)
		}
		rd := s.args[0].reg
		if v >= -(1<<15) && v < 1<<15 {
			a.emit(template{line: s.line, op: isa.OpAddi, rd: rd, imm: v})
			return nil
		}
		bits := uint32(v)
		a.emit(template{line: s.line, op: isa.OpLui, rd: rd, imm: int64(int16(uint16(bits >> 16)))})
		a.emit(template{line: s.line, op: isa.OpOri, rd: rd, rs1: rd, imm: int64(int16(uint16(bits & 0xffff)))})
		return nil
	case "la":
		if err := wantArgs(s, opReg, opSym); err != nil {
			return err
		}
		rd := s.args[0].reg
		a.emit(template{line: s.line, op: isa.OpLui, rd: rd, sym: s.args[1].sym, symOff: s.args[1].off, use: symHi})
		a.emit(template{line: s.line, op: isa.OpOri, rd: rd, rs1: rd, sym: s.args[1].sym, symOff: s.args[1].off, use: symLo})
		return nil
	case "mov":
		if err := wantArgs(s, opReg, opReg); err != nil {
			return err
		}
		a.emit(template{line: s.line, op: isa.OpAdd, rd: s.args[0].reg, rs1: s.args[1].reg})
		return nil
	case "neg":
		if err := wantArgs(s, opReg, opReg); err != nil {
			return err
		}
		a.emit(template{line: s.line, op: isa.OpSub, rd: s.args[0].reg, rs2: s.args[1].reg})
		return nil
	case "ret":
		if len(s.args) != 0 {
			return errf(s.line, "ret takes no operands")
		}
		a.emit(template{line: s.line, op: isa.OpJr, rs1: isa.RegLR})
		return nil
	case "b":
		s.op = "jmp"
	case "beqz", "bnez":
		if len(s.args) != 2 || s.args[0].kind != opReg {
			return errf(s.line, "%s wants register, target", s.op)
		}
		op := isa.OpBeq
		if s.op == "bnez" {
			op = isa.OpBne
		}
		return a.branch(s, op, s.args[0].reg, 0, s.args[1])
	case "ble", "bgt":
		if len(s.args) != 3 || s.args[0].kind != opReg || s.args[1].kind != opReg {
			return errf(s.line, "%s wants reg, reg, target", s.op)
		}
		// ble a,b == bge b,a ; bgt a,b == blt b,a.
		op := isa.OpBge
		if s.op == "bgt" {
			op = isa.OpBlt
		}
		return a.branch(s, op, s.args[1].reg, s.args[0].reg, s.args[2])
	}

	op, ok := isa.OpcodeByName(s.op)
	if !ok {
		return errf(s.line, "unknown mnemonic %q", s.op)
	}
	info := isa.InfoFor(op)
	switch info.Format {
	case isa.FmtNone:
		if len(s.args) != 0 {
			return errf(s.line, "%s takes no operands", s.op)
		}
		a.emit(template{line: s.line, op: op})
		return nil
	case isa.FmtR:
		return a.instrR(s, op, info)
	case isa.FmtI:
		return a.instrI(s, op)
	case isa.FmtB:
		if len(s.args) != 3 || s.args[0].kind != opReg || s.args[1].kind != opReg {
			return errf(s.line, "%s wants reg, reg, target", s.op)
		}
		return a.branch(s, op, s.args[0].reg, s.args[1].reg, s.args[2])
	case isa.FmtJ:
		if len(s.args) != 1 {
			return errf(s.line, "%s wants one target operand", s.op)
		}
		switch s.args[0].kind {
		case opSym:
			a.emit(template{line: s.line, op: op, sym: s.args[0].sym, symOff: s.args[0].off, use: symAbs})
		case opInt:
			if s.args[0].num%isa.WordBytes != 0 {
				return errf(s.line, "%s target %d not word aligned", s.op, s.args[0].num)
			}
			a.emit(template{line: s.line, op: op, imm: s.args[0].num / isa.WordBytes})
		default:
			return errf(s.line, "%s wants label or address", s.op)
		}
		return nil
	}
	return errf(s.line, "unhandled format for %s", s.op)
}

// regKinds returns the operand register-file kinds expected for an R-format op.
func regKinds(op isa.Opcode) (dst, src opKind, unary bool) {
	switch op {
	case isa.OpFneg, isa.OpFabs, isa.OpFsqrt, isa.OpFsin, isa.OpFcos,
		isa.OpFatan, isa.OpFexp, isa.OpFlog, isa.OpFmov:
		return opFreg, opFreg, true
	case isa.OpFcvtIF:
		return opFreg, opReg, true
	case isa.OpFcvtFI:
		return opReg, opFreg, true
	case isa.OpFeq, isa.OpFlt, isa.OpFle:
		return opReg, opFreg, false
	case isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv:
		return opFreg, opFreg, false
	}
	return opReg, opReg, false
}

func (a *assembler) instrR(s stmt, op isa.Opcode, info isa.Info) error {
	if op == isa.OpJr {
		if len(s.args) != 1 || s.args[0].kind != opReg {
			return errf(s.line, "jr wants one integer register")
		}
		a.emit(template{line: s.line, op: op, rs1: s.args[0].reg})
		return nil
	}
	dstK, srcK, unary := regKinds(op)
	want := 3
	if unary {
		want = 2
	}
	if len(s.args) != want {
		return errf(s.line, "%s wants %d operands, got %d", s.op, want, len(s.args))
	}
	if s.args[0].kind != dstK {
		return errf(s.line, "%s destination must be %s register", s.op, regKindName(dstK))
	}
	for _, arg := range s.args[1:] {
		if arg.kind != srcK {
			return errf(s.line, "%s sources must be %s registers", s.op, regKindName(srcK))
		}
	}
	t := template{line: s.line, op: op, rd: s.args[0].reg, rs1: s.args[1].reg}
	if !unary {
		t.rs2 = s.args[2].reg
	}
	a.emit(t)
	return nil
}

func regKindName(k opKind) string {
	if k == opFreg {
		return "float"
	}
	return "integer"
}

func (a *assembler) instrI(s stmt, op isa.Opcode) error {
	switch op {
	case isa.OpLw, isa.OpLb, isa.OpLbu, isa.OpSw, isa.OpSb:
		if len(s.args) != 2 || s.args[0].kind != opReg || s.args[1].kind != opMem {
			return errf(s.line, "%s wants reg, off(reg)", s.op)
		}
		a.emit(template{line: s.line, op: op, rd: s.args[0].reg, rs1: s.args[1].reg, imm: s.args[1].num})
		return nil
	case isa.OpFld, isa.OpFst:
		if len(s.args) != 2 || s.args[0].kind != opFreg || s.args[1].kind != opMem {
			return errf(s.line, "%s wants freg, off(reg)", s.op)
		}
		a.emit(template{line: s.line, op: op, rd: s.args[0].reg, rs1: s.args[1].reg, imm: s.args[1].num})
		return nil
	case isa.OpLui:
		if len(s.args) != 2 || s.args[0].kind != opReg || s.args[1].kind != opInt {
			return errf(s.line, "lui wants reg, imm")
		}
		a.emit(template{line: s.line, op: op, rd: s.args[0].reg, imm: s.args[1].num})
		return nil
	}
	if len(s.args) != 3 || s.args[0].kind != opReg || s.args[1].kind != opReg || s.args[2].kind != opInt {
		return errf(s.line, "%s wants reg, reg, imm", s.op)
	}
	a.emit(template{line: s.line, op: op, rd: s.args[0].reg, rs1: s.args[1].reg, imm: s.args[2].num})
	return nil
}

func (a *assembler) branch(s stmt, op isa.Opcode, rs1, rs2 uint8, target operand) error {
	t := template{line: s.line, op: op, rs1: rs1, rs2: rs2}
	switch target.kind {
	case opSym:
		t.sym, t.symOff, t.use = target.sym, target.off, symBranch
	case opInt:
		t.imm = target.num
	default:
		return errf(s.line, "%s wants label or offset target", s.op)
	}
	a.emit(t)
	return nil
}

// link resolves symbols, encodes the text, lays out data and builds the
// executable image.
func (a *assembler) link() (*Executable, error) {
	textBytes := uint32(len(a.text)) * isa.WordBytes
	dataBase := textBytes
	if rem := dataBase % DataAlign; rem != 0 {
		dataBase += DataAlign - rem
	}

	symbols := make(map[string]uint32, len(a.textSyms)+len(a.dataSyms))
	for name, word := range a.textSyms {
		symbols[name] = word * isa.WordBytes
	}
	for name, off := range a.dataSyms {
		symbols[name] = dataBase + off
	}

	resolve := func(t template) (uint32, error) {
		addr, ok := symbols[t.sym]
		if !ok {
			return 0, errf(t.line, "undefined symbol %q", t.sym)
		}
		return uint32(int64(addr) + t.symOff), nil
	}

	exe := &Executable{
		Mem:       make([]byte, dataBase+a.dataSize),
		TextBytes: textBytes,
		Symbols:   symbols,
		Lines:     make(map[uint32]int, len(a.text)),
	}

	for i, t := range a.text {
		pc := uint32(i) * isa.WordBytes
		ins := isa.Instruction{Op: t.op, Rd: t.rd, Rs1: t.rs1, Rs2: t.rs2, Imm: int32(t.imm)}
		switch t.use {
		case symBranch:
			addr, err := resolve(t)
			if err != nil {
				return nil, err
			}
			delta := int64(addr) - int64(pc) - isa.WordBytes
			if delta%isa.WordBytes != 0 {
				return nil, errf(t.line, "misaligned branch target %q", t.sym)
			}
			ins.Imm = int32(delta / isa.WordBytes)
		case symAbs:
			addr, err := resolve(t)
			if err != nil {
				return nil, err
			}
			if addr%isa.WordBytes != 0 {
				return nil, errf(t.line, "misaligned jump target %q", t.sym)
			}
			ins.Imm = int32(addr / isa.WordBytes)
		case symHi:
			addr, err := resolve(t)
			if err != nil {
				return nil, err
			}
			ins.Imm = int32(int16(uint16(addr >> 16)))
		case symLo:
			addr, err := resolve(t)
			if err != nil {
				return nil, err
			}
			ins.Imm = int32(int16(uint16(addr & 0xffff)))
		}
		w, err := isa.Encode(ins)
		if err != nil {
			return nil, errf(t.line, "%v", err)
		}
		binary.LittleEndian.PutUint32(exe.Mem[pc:], w)
		exe.Lines[pc] = t.line
	}

	for _, d := range a.data {
		addr := dataBase + d.off
		if d.sym != "" {
			target, ok := symbols[d.sym]
			if !ok {
				return nil, errf(d.line, "undefined symbol %q in .word", d.sym)
			}
			binary.LittleEndian.PutUint32(exe.Mem[addr:], uint32(int64(target)+d.symOff))
			continue
		}
		copy(exe.Mem[addr:], d.bytes)
	}

	// Function symbols: text labels not beginning with '.'.
	for name, word := range a.textSyms {
		if name[0] == '.' {
			continue
		}
		exe.Functions = append(exe.Functions, Symbol{Name: name, Addr: word * isa.WordBytes, Func: true})
	}
	sort.Slice(exe.Functions, func(i, j int) bool { return exe.Functions[i].Addr < exe.Functions[j].Addr })
	for i := range exe.Functions {
		end := textBytes
		if i+1 < len(exe.Functions) {
			end = exe.Functions[i+1].Addr
		}
		exe.Functions[i].Size = end - exe.Functions[i].Addr
	}
	if len(exe.Functions) == 0 && textBytes > 0 {
		return nil, fmt.Errorf("asm: no function labels in text segment")
	}
	// Entry preference: a _start stub (emitted by the MC compiler), then
	// main, then the first text symbol.
	if start, ok := symbols["_start"]; ok {
		exe.Entry = start
	} else if main, ok := symbols["main"]; ok {
		exe.Entry = main
	} else if len(exe.Functions) > 0 {
		exe.Entry = exe.Functions[0].Addr
	}
	return exe, nil
}
