// Package asm implements an assembler, loader-image builder and
// disassembler for the CR32 instruction set (package isa).
//
// The assembler accepts a conventional two-segment syntax:
//
//	        .text
//	main:   addi sp, sp, -8
//	        sw   lr, 4(sp)
//	.Lloop: bne  r2, r0, .Ldone
//	        call store
//	        jmp  .Lloop
//	.Ldone: lw   lr, 4(sp)
//	        ret
//	        .data
//	arr:    .word 1, 2, 3
//	buf:    .space 64
//	pi:     .double 3.14159
//
// Labels beginning with '.' are local (not function entries); all other
// text labels name functions, which is how the CFG builder (package cfg)
// recovers function boundaries from the image, mirroring how cinderella
// reads symbol tables out of i960 executables.
package asm

import (
	"fmt"
	"sort"

	"cinderella/internal/isa"
)

// Segment layout constants. Text is loaded at address 0; data follows,
// aligned; the stack grows down from the top of memory.
const (
	TextBase       = 0
	DataAlign      = 8
	DefaultMemSize = 1 << 20
)

// Symbol is a named address in the image.
type Symbol struct {
	Name string
	Addr uint32
	// Func marks text symbols that name function entry points.
	Func bool
	// Size is the extent in bytes for function symbols (distance to the
	// next function or end of text).
	Size uint32
}

// Executable is a loadable memory image plus the symbol information the
// timing analyzer needs.
type Executable struct {
	// Mem is the initialized memory image covering text and data.
	Mem []byte
	// TextBytes is the size of the text segment; instructions occupy
	// [0, TextBytes) in 4-byte words.
	TextBytes uint32
	// Entry is the address of the entry function ("main" when defined,
	// else the first text symbol).
	Entry uint32
	// Symbols maps every label to its address.
	Symbols map[string]uint32
	// Functions lists text function symbols in address order.
	Functions []Symbol
	// Lines maps instruction addresses to assembly source line numbers.
	Lines map[uint32]int
}

// Instr decodes the instruction at addr.
func (e *Executable) Instr(addr uint32) (isa.Instruction, error) {
	if addr%isa.WordBytes != 0 || addr+isa.WordBytes > e.TextBytes {
		return isa.Instruction{}, fmt.Errorf("asm: address %#x outside text segment", addr)
	}
	return isa.Decode(e.word(addr))
}

func (e *Executable) word(addr uint32) uint32 {
	return uint32(e.Mem[addr]) | uint32(e.Mem[addr+1])<<8 |
		uint32(e.Mem[addr+2])<<16 | uint32(e.Mem[addr+3])<<24
}

// FunctionAt returns the function symbol containing addr, if any.
func (e *Executable) FunctionAt(addr uint32) (Symbol, bool) {
	i := sort.Search(len(e.Functions), func(i int) bool {
		return e.Functions[i].Addr > addr
	})
	if i == 0 {
		return Symbol{}, false
	}
	f := e.Functions[i-1]
	if addr >= f.Addr+f.Size {
		return Symbol{}, false
	}
	return f, true
}

// FunctionNamed returns the function symbol with the given name.
func (e *Executable) FunctionNamed(name string) (Symbol, bool) {
	for _, f := range e.Functions {
		if f.Name == name {
			return f, true
		}
	}
	return Symbol{}, false
}

// Error is an assembly diagnostic with a source line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
