package asm

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"cinderella/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Executable {
	t.Helper()
	exe, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return exe
}

func TestAssembleBasic(t *testing.T) {
	exe := mustAssemble(t, `
        .text
main:
        addi r1, r0, 5
        add  r2, r1, r1
        halt
`)
	if exe.TextBytes != 12 {
		t.Fatalf("TextBytes = %d, want 12", exe.TextBytes)
	}
	ins, err := exe.Instr(0)
	if err != nil || ins.Op != isa.OpAddi || ins.Rd != 1 || ins.Imm != 5 {
		t.Fatalf("instr 0 = %v, %v", ins, err)
	}
	if exe.Entry != 0 {
		t.Fatalf("Entry = %d, want 0", exe.Entry)
	}
	if len(exe.Functions) != 1 || exe.Functions[0].Name != "main" || exe.Functions[0].Size != 12 {
		t.Fatalf("Functions = %+v", exe.Functions)
	}
}

func TestRegisterAliases(t *testing.T) {
	exe := mustAssemble(t, "main: add rv, sp, fp\n jr lr\n")
	ins, _ := exe.Instr(0)
	if ins.Rd != isa.RegRV || ins.Rs1 != isa.RegSP || ins.Rs2 != isa.RegFP {
		t.Fatalf("alias registers wrong: %+v", ins)
	}
	ins, _ = exe.Instr(4)
	if ins.Op != isa.OpJr || ins.Rs1 != isa.RegLR {
		t.Fatalf("jr lr wrong: %+v", ins)
	}
}

func TestBranchResolution(t *testing.T) {
	exe := mustAssemble(t, `
main:
        beq r1, r2, .Ldone   ; offset +2
        nop
        nop
.Ldone:
        halt
`)
	ins, _ := exe.Instr(0)
	if ins.Op != isa.OpBeq || ins.Imm != 2 {
		t.Fatalf("forward branch: %+v", ins)
	}
	exe = mustAssemble(t, `
main:
.Ltop:  nop
        bne r1, r0, .Ltop    ; offset -2
        halt
`)
	ins, _ = exe.Instr(4)
	if ins.Op != isa.OpBne || ins.Imm != -2 {
		t.Fatalf("backward branch: %+v", ins)
	}
}

func TestCallAndJmpTargets(t *testing.T) {
	exe := mustAssemble(t, `
main:
        call f
        halt
f:
        ret
`)
	ins, _ := exe.Instr(0)
	if ins.Op != isa.OpCall || uint32(ins.Imm)*isa.WordBytes != exe.Symbols["f"] {
		t.Fatalf("call target: %+v, f at %#x", ins, exe.Symbols["f"])
	}
}

func TestLiExpansion(t *testing.T) {
	exe := mustAssemble(t, `
main:
        li r1, 7          ; 1 instruction
        li r2, 100000     ; 2 instructions
        li r3, -5         ; 1 instruction
        li r4, -100000    ; 2 instructions
        halt
`)
	if exe.TextBytes != 7*isa.WordBytes {
		t.Fatalf("TextBytes = %d, want %d", exe.TextBytes, 7*isa.WordBytes)
	}
	// Check the lui/ori pair reconstructs 100000.
	lui, _ := exe.Instr(4)
	ori, _ := exe.Instr(8)
	if lui.Op != isa.OpLui || ori.Op != isa.OpOri {
		t.Fatalf("li expansion: %v / %v", lui, ori)
	}
	got := uint32(uint16(lui.Imm))<<16 | uint32(uint16(ori.Imm))
	if got != 100000 {
		t.Fatalf("li 100000 reconstructs to %d", got)
	}
	// And -100000.
	lui, _ = exe.Instr(16)
	ori, _ = exe.Instr(20)
	got = uint32(uint16(lui.Imm))<<16 | uint32(uint16(ori.Imm))
	if int32(got) != -100000 {
		t.Fatalf("li -100000 reconstructs to %d", int32(got))
	}
}

func TestLaResolvesDataAddress(t *testing.T) {
	exe := mustAssemble(t, `
main:
        la r1, arr
        la r2, arr+8
        halt
        .data
arr:    .word 10, 20, 30
`)
	addr := exe.Symbols["arr"]
	lui, _ := exe.Instr(0)
	ori, _ := exe.Instr(4)
	got := uint32(uint16(lui.Imm))<<16 | uint32(uint16(ori.Imm))
	if got != addr {
		t.Fatalf("la arr = %#x, want %#x", got, addr)
	}
	lui, _ = exe.Instr(8)
	ori, _ = exe.Instr(12)
	got = uint32(uint16(lui.Imm))<<16 | uint32(uint16(ori.Imm))
	if got != addr+8 {
		t.Fatalf("la arr+8 = %#x, want %#x", got, addr+8)
	}
	if binary.LittleEndian.Uint32(exe.Mem[addr+4:]) != 20 {
		t.Fatalf("arr[1] = %d", binary.LittleEndian.Uint32(exe.Mem[addr+4:]))
	}
}

func TestDataDirectives(t *testing.T) {
	exe := mustAssemble(t, `
main:   halt
        .data
b:      .byte 1, 2, 255
w:      .word -1
d:      .double 2.5
s:      .space 16
end:    .byte 9
`)
	bAddr, wAddr, dAddr, sAddr, endAddr := exe.Symbols["b"], exe.Symbols["w"], exe.Symbols["d"], exe.Symbols["s"], exe.Symbols["end"]
	if exe.Mem[bAddr] != 1 || exe.Mem[bAddr+2] != 255 {
		t.Fatal("bytes wrong")
	}
	if wAddr%4 != 0 {
		t.Fatalf(".word not aligned: %#x", wAddr)
	}
	if int32(binary.LittleEndian.Uint32(exe.Mem[wAddr:])) != -1 {
		t.Fatal("word wrong")
	}
	if dAddr%8 != 0 {
		t.Fatalf(".double not aligned: %#x", dAddr)
	}
	if f := math.Float64frombits(binary.LittleEndian.Uint64(exe.Mem[dAddr:])); f != 2.5 {
		t.Fatalf("double = %v", f)
	}
	if endAddr != sAddr+16 {
		t.Fatalf(".space size wrong: %#x vs %#x", endAddr, sAddr+16)
	}
}

func TestWordWithSymbol(t *testing.T) {
	exe := mustAssemble(t, `
main:   halt
        .data
tbl:    .word target, target+4
target: .word 42
`)
	tbl, target := exe.Symbols["tbl"], exe.Symbols["target"]
	if binary.LittleEndian.Uint32(exe.Mem[tbl:]) != target {
		t.Fatal("symbolic .word wrong")
	}
	if binary.LittleEndian.Uint32(exe.Mem[tbl+4:]) != target+4 {
		t.Fatal("symbolic .word addend wrong")
	}
}

func TestPseudoExpansions(t *testing.T) {
	exe := mustAssemble(t, `
main:
        mov r1, r2
        neg r3, r4
        beqz r1, .L
        bnez r1, .L
        ble r1, r2, .L
        bgt r1, r2, .L
.L:     ret
`)
	checks := []struct {
		pc  uint32
		op  isa.Opcode
		rs1 uint8
		rs2 uint8
	}{
		{0, isa.OpAdd, 2, 0},
		{4, isa.OpSub, 0, 4},
		{8, isa.OpBeq, 1, 0},
		{12, isa.OpBne, 1, 0},
		{16, isa.OpBge, 2, 1}, // ble r1,r2 == bge r2,r1
		{20, isa.OpBlt, 2, 1}, // bgt r1,r2 == blt r2,r1
		{24, isa.OpJr, isa.RegLR, 0},
	}
	for _, c := range checks {
		ins, err := exe.Instr(c.pc)
		if err != nil {
			t.Fatalf("instr at %d: %v", c.pc, err)
		}
		if ins.Op != c.op || ins.Rs1 != c.rs1 || ins.Rs2 != c.rs2 {
			t.Errorf("pc %d: got %v, want op=%v rs1=%d rs2=%d", c.pc, ins, c.op, c.rs1, c.rs2)
		}
	}
}

func TestFloatInstructions(t *testing.T) {
	exe := mustAssemble(t, `
main:
        fld f1, 0(sp)
        fadd f2, f1, f1
        fsqrt f3, f2
        fcvtfi r1, f3
        fcvtif f4, r1
        feq r2, f1, f2
        fst f2, 8(sp)
        halt
`)
	ins, _ := exe.Instr(0)
	if ins.Op != isa.OpFld || ins.Rd != 1 || ins.Rs1 != isa.RegSP {
		t.Fatalf("fld: %+v", ins)
	}
	ins, _ = exe.Instr(8)
	if ins.Op != isa.OpFsqrt || ins.Rd != 3 || ins.Rs1 != 2 {
		t.Fatalf("fsqrt: %+v", ins)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src string
		sub string
	}{
		{"main: add r1, r2\n", "wants 3 operands"},
		{"main: bogus r1\n", "unknown mnemonic"},
		{"main: beq r1, r2, nowhere\n", "undefined symbol"},
		{"main: addi r1, r0, 99999\n", "out of 16-bit range"},
		{"main: nop\nmain: nop\n", "redefined"},
		{"main: fadd f1, r2, f3\n", "sources must be float"},
		{"main: add f1, r2, r3\n", "destination must be integer"},
		{".data\nx: .word 1\n.text\nmain: halt\n .data\n y: add r1,r1,r1\n", "in data segment"},
		{"main: halt\n.data\nx: .space -1\n", ".space wants one non-negative"},
		{"main: halt\n.bogusdir\n", "unknown directive"},
		{"main: lw r1, 4(f2)\n", "bad base register"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.sub)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("Assemble(%q) error %q, want containing %q", c.src, err, c.sub)
		}
	}
}

func TestNoMainUsesFirstFunction(t *testing.T) {
	exe := mustAssemble(t, "start: nop\n halt\nother: ret\n")
	if exe.Entry != 0 {
		t.Fatalf("Entry = %d", exe.Entry)
	}
	f, ok := exe.FunctionAt(4)
	if !ok || f.Name != "start" {
		t.Fatalf("FunctionAt(4) = %+v, %v", f, ok)
	}
	f, ok = exe.FunctionNamed("other")
	if !ok || f.Addr != 8 || f.Size != 4 {
		t.Fatalf("FunctionNamed(other) = %+v, %v", f, ok)
	}
	if _, ok := exe.FunctionNamed("nope"); ok {
		t.Fatal("found non-existent function")
	}
}

func TestCommentsAndCharLiterals(t *testing.T) {
	exe := mustAssemble(t, `
main:                       ; full line comment after label
        li r1, 'A'          # char literal
        li r2, '\n'         // newline escape
        halt
`)
	ins, _ := exe.Instr(0)
	if ins.Imm != 'A' {
		t.Fatalf("char literal = %d", ins.Imm)
	}
	ins, _ = exe.Instr(4)
	if ins.Imm != '\n' {
		t.Fatalf("escape literal = %d", ins.Imm)
	}
}

func TestDisassembleRoundTrips(t *testing.T) {
	src := `
main:
        addi sp, sp, -16
        sw   lr, 12(sp)
        li   r1, 3
.Lloop: addi r1, r1, -1
        bne  r1, r0, .Lloop
        call helper
        lw   lr, 12(sp)
        addi sp, sp, 16
        ret
helper:
        add r1, r0, r0
        ret
`
	exe := mustAssemble(t, src)
	dis := Disassemble(exe)
	for _, want := range []string{"main:", "helper:", "addi r15, r15, -16", "bne r1, r0, 0xc", "call", "jr r14"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestBranchTarget(t *testing.T) {
	ins := isa.Instruction{Op: isa.OpBeq, Imm: 3}
	if got, ok := BranchTarget(8, ins); !ok || got != 8+4+12 {
		t.Fatalf("BranchTarget beq = %d, %v", got, ok)
	}
	ins = isa.Instruction{Op: isa.OpJmp, Imm: 5}
	if got, ok := BranchTarget(100, ins); !ok || got != 20 {
		t.Fatalf("BranchTarget jmp = %d, %v", got, ok)
	}
	if _, ok := BranchTarget(0, isa.Instruction{Op: isa.OpJr}); ok {
		t.Fatal("jr should have no static target")
	}
	if _, ok := BranchTarget(0, isa.Instruction{Op: isa.OpAdd}); ok {
		t.Fatal("add should have no target")
	}
}

func TestInstrOutOfRange(t *testing.T) {
	exe := mustAssemble(t, "main: halt\n")
	if _, err := exe.Instr(4); err == nil {
		t.Fatal("Instr past text succeeded")
	}
	if _, err := exe.Instr(2); err == nil {
		t.Fatal("unaligned Instr succeeded")
	}
}
