// Command cfgdump is a maintenance tool for the benchmark annotations: it
// prints the annotated CFG listing of a registered Table I benchmark (the
// block/edge/call-site numbering the annotation language refers to),
// optionally the instructions of one function, and with -diff the weighted
// gap between the ILP's worst-case block counts and the counts observed on
// the worst-case data run — the view used to chase path pessimism down to
// zero.
//
//	go run ./internal/tools/cfgdump <bench> [function]
//	go run ./internal/tools/cfgdump -diff <bench>
package main

import (
	"fmt"
	"os"

	"cinderella/internal/bench"
	"cinderella/internal/cc"
	"cinderella/internal/cfg"
	"cinderella/internal/ipet"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cfgdump <bench> [function] | cfgdump -diff <bench>")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	if os.Args[1] == "-diff" {
		if len(os.Args) < 3 {
			usage()
		}
		diffCounts(os.Args[2])
		return
	}
	b, ok := bench.ByName(os.Args[1])
	if !ok {
		fmt.Fprintf(os.Stderr, "cfgdump: no benchmark %q\n", os.Args[1])
		os.Exit(1)
	}
	exe, _, err := cc.Build(b.Source)
	if err != nil {
		fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		fatal(err)
	}
	an, err := ipet.New(prog, b.Root, ipet.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	fmt.Println(an.AnnotatedListing())
	if len(os.Args) > 2 {
		fc, ok := prog.Funcs[os.Args[2]]
		if !ok {
			fmt.Fprintf(os.Stderr, "cfgdump: no function %q\n", os.Args[2])
			os.Exit(1)
		}
		for _, blk := range fc.Blocks {
			fmt.Printf("-- x%d:\n", blk.Index+1)
			for pc := blk.Start; pc < blk.End; pc += 4 {
				ins, _ := exe.Instr(pc)
				fmt.Printf("    %06x %s\n", pc, ins)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfgdump:", err)
	os.Exit(1)
}
