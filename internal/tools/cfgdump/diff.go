package main

import (
	"fmt"
	"sort"

	"cinderella/internal/bench"
	"cinderella/internal/eval"
	"cinderella/internal/ipet"
	"cinderella/internal/sim"
)

// diffCounts compares the ILP's worst-case block counts against the
// observed counts of the worst-case data run, weighted by worst cost.
func diffCounts(name string) {
	b, _ := bench.ByName(name)
	bt, err := b.Build(ipet.DefaultOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	var setup eval.Setup
	if b.WorstSetup != nil {
		setup = func(m *sim.Machine) error { return b.WorstSetup(m, bt.Exe) }
	}
	counts, err := eval.CountRun(bt.Exe, bt.CFG, b.Root, setup, sim.Config{})
	if err != nil {
		fmt.Println(err)
		return
	}
	costs := bt.Costs()
	type row struct {
		fn  string
		blk int
		est int64
		obs int64
		gap int64
	}
	var rows []row
	for fn, est := range bt.Est.WCET.Counts {
		for i := range est {
			gap := (est[i] - counts[fn][i]) * costs[fn][i].Worst
			if gap != 0 {
				rows = append(rows, row{fn, i + 1, est[i], counts[fn][i], gap})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].gap > rows[j].gap })
	total := int64(0)
	for _, r := range rows {
		total += r.gap
	}
	fmt.Printf("== %s: est WCET %d, total weighted gap %d\n", name, bt.Est.WCET.Cycles, total)
	for i, r := range rows {
		if i > 14 {
			break
		}
		fmt.Printf("  %s x%d: est %d obs %d  gap %d\n", r.fn, r.blk, r.est, r.obs, r.gap)
	}
}
