package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/bench"
	"cinderella/internal/cc"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/ipet"
	"cinderella/internal/isa"
)

// postJSON posts v to url and decodes the response into out, failing the
// test on any transport error or status mismatch.
func postJSON(t *testing.T, client *http.Client, url string, v, out any, wantStatus int) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d, want %d (%s)", url, resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
}

// rawEstimate decodes an estimate response keeping the bound reports as
// raw bytes, so bit-identity is asserted on the wire form.
type rawEstimate struct {
	WCET       json.RawMessage `json:"wcet"`
	BCET       json.RawMessage `json:"bcet"`
	NumSets    int             `json:"num_sets"`
	Exact      bool            `json:"exact"`
	Degraded   bool            `json:"degraded"`
	Admission  string          `json:"admission"`
	AnsweredBy string          `json:"answered_by"`
	Coalesced  bool            `json:"coalesced"`
	ColdStart  bool            `json:"cold_start"`
}

type e2eWorkload struct {
	name   string
	spec   ProgramSpec
	annots string
}

// e2eWorkloads are the replay scenarios: the two large paper benchmarks as
// MC source, the 64-set path-explosion chain as assembly, and dhry again
// under the exact-rational certification layer (a distinct resident
// session — Certify is part of the program hash).
func e2eWorkloads(t *testing.T) []e2eWorkload {
	t.Helper()
	var out []e2eWorkload
	for _, name := range []string{"dhry", "des"} {
		bm, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		out = append(out, e2eWorkload{
			name:   name,
			spec:   ProgramSpec{Source: bm.Source, Root: bm.Root},
			annots: bm.Annotations,
		})
	}
	asmText, annots := bench.ExplosionAsm(6)
	out = append(out, e2eWorkload{
		name:   "explosion64",
		spec:   ProgramSpec{Asm: asmText, Root: "main"},
		annots: annots,
	})
	dhry, _ := bench.ByName("dhry")
	out = append(out, e2eWorkload{
		name:   "dhry-certify",
		spec:   ProgramSpec{Source: dhry.Source, Root: dhry.Root, Certify: true},
		annots: dhry.Annotations,
	})
	return out
}

// oneShotEstimate replays the cinderella CLI single-run path: build the
// program, construct a fresh one-shot analyzer with the same options the
// server derives from the spec, apply the annotations, estimate.
func oneShotEstimate(t *testing.T, sp ProgramSpec, workers int, annots string) *ipet.Estimate {
	t.Helper()
	sp.normalize()
	var (
		exe *asm.Executable
		err error
	)
	if sp.Asm != "" {
		exe, err = asm.Assemble(sp.Asm)
	} else {
		build := cc.Build
		if sp.Optimize {
			build = cc.BuildOptimized
		}
		exe, _, err = build(sp.Source)
	}
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	opts := ipet.DefaultOptions()
	opts.March.Timing = isa.Profiles()[sp.Profile]
	opts.SplitFirstIteration = sp.Split
	opts.Certify = sp.Certify
	opts.Workers = workers
	an, err := ipet.New(prog, sp.Root, opts)
	if err != nil {
		t.Fatal(err)
	}
	file, err := constraint.ParseNamed("annotations", annots)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Apply(file); err != nil {
		t.Fatal(err)
	}
	est, err := an.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestE2EServerMatchesOneShot is the black-box replay gate: a server on
// loopback must answer every scenario with BoundReports byte-identical to
// a CLI one-shot run of the same program and annotations — cold (the
// request that prepares the session) and warm (answered from the resident
// session's caches), at every worker count.
func TestE2EServerMatchesOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the large benchmarks over HTTP")
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("j%d", workers), func(t *testing.T) {
			srv := New(Config{Shards: 1, Workers: workers})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			for _, w := range e2eWorkloads(t) {
				t.Run(w.name, func(t *testing.T) {
					var sub SubmitResponse
					postJSON(t, ts.Client(), ts.URL+"/v1/programs", w.spec, &sub, http.StatusOK)
					if sub.Cached {
						t.Fatalf("fresh program reported cached")
					}
					ref := oneShotEstimate(t, w.spec, workers, w.annots)
					wantW, _ := json.Marshal(ref.WCET)
					wantB, _ := json.Marshal(ref.BCET)
					for round := 0; round < 2; round++ {
						var got rawEstimate
						postJSON(t, ts.Client(), ts.URL+"/v1/estimate",
							EstimateRequest{Program: sub.Program, Annotations: w.annots},
							&got, http.StatusOK)
						if !bytes.Equal(got.WCET, wantW) {
							t.Errorf("round %d: WCET differs from one-shot:\n got %s\nwant %s", round, got.WCET, wantW)
						}
						if !bytes.Equal(got.BCET, wantB) {
							t.Errorf("round %d: BCET differs from one-shot:\n got %s\nwant %s", round, got.BCET, wantB)
						}
						if !got.Exact || got.Degraded {
							t.Errorf("round %d: unconstrained request not exact: %+v", round, got)
						}
						if got.Admission != "ok" || got.AnsweredBy != "solver" {
							t.Errorf("round %d: admission %q answered_by %q", round, got.Admission, got.AnsweredBy)
						}
						if got.NumSets != ref.NumSets {
							t.Errorf("round %d: num_sets %d, want %d", round, got.NumSets, ref.NumSets)
						}
					}
				})
			}
		})
	}
}

// TestE2EParametricSweepMatchesFormula replays a parametric sweep over
// HTTP: after POST /v1/parametrize, estimates naming covered points must
// be answered by the formula and be byte-identical to the library's
// ParamBound.EstimateAt — the same path the CLI's -param -sweep prints.
// An out-of-domain point takes the concrete solve and must match that
// path's report too.
func TestE2EParametricSweepMatchesFormula(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a parametric sweep over HTTP")
	}
	bm, ok := bench.ByName("check_data")
	if !ok {
		t.Fatal("unknown benchmark check_data")
	}
	symAnnots := strings.Replace(bm.Annotations, "loop 1: 1 .. 10", "loop 1: 1 .. n1", 1)
	if symAnnots == bm.Annotations {
		t.Fatal("check_data parametrization found no loop bound to replace")
	}
	spec := ProgramSpec{Source: bm.Source, Root: bm.Root}

	srv := New(Config{Shards: 1, Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var sub SubmitResponse
	postJSON(t, ts.Client(), ts.URL+"/v1/programs", spec, &sub, http.StatusOK)
	var pres ParametrizeResponse
	postJSON(t, ts.Client(), ts.URL+"/v1/parametrize", ParametrizeRequest{
		Program:     sub.Program,
		Annotations: symAnnots,
		Specs:       []ParamSpecJSON{{Name: "n1", Lo: 1, Hi: 10}},
	}, &pres, http.StatusOK)
	if pres.Pieces == 0 {
		t.Fatalf("parametrize produced no pieces: %+v", pres)
	}

	// Reference: the same formula built directly on a prepared session.
	exe, _, err := cc.Build(bm.Source)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	opts := ipet.DefaultOptions()
	opts.Workers = 1
	sess, err := ipet.Prepare(prog, bm.Root, opts)
	if err != nil {
		t.Fatal(err)
	}
	file, err := constraint.ParseNamed("annotations", symAnnots)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Parametrize(file, []ipet.ParamSpec{{Name: "n1", Lo: 1, Hi: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if pres.Formula != pb.Describe() {
		t.Errorf("served formula differs:\n got %s\nwant %s", pres.Formula, pb.Describe())
	}

	// Covered points 1..10, plus 12 outside the domain box (concrete
	// fallback on both sides).
	for n := int64(1); n <= 12; n++ {
		if n == 11 {
			continue
		}
		ref, err := pb.EstimateAt([]int64{n})
		if err != nil {
			t.Fatalf("n1=%d: %v", n, err)
		}
		wantW, _ := json.Marshal(ref.WCET)
		wantB, _ := json.Marshal(ref.BCET)
		var got rawEstimate
		postJSON(t, ts.Client(), ts.URL+"/v1/estimate", EstimateRequest{
			Program:     sub.Program,
			Annotations: symAnnots,
			Params:      map[string]int64{"n1": n},
		}, &got, http.StatusOK)
		if !bytes.Equal(got.WCET, wantW) {
			t.Errorf("n1=%d: WCET differs:\n got %s\nwant %s", n, got.WCET, wantW)
		}
		if !bytes.Equal(got.BCET, wantB) {
			t.Errorf("n1=%d: BCET differs:\n got %s\nwant %s", n, got.BCET, wantB)
		}
		if ref.Stats.FormulaEvals > 0 && got.AnsweredBy != "formula" {
			t.Errorf("n1=%d: answered_by %q, want formula", n, got.AnsweredBy)
		}
		if n > 10 && got.AnsweredBy == "formula" {
			t.Errorf("n1=%d: out-of-domain point claims a formula answer", n)
		}
	}
}
