package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cinderella/internal/bench"
	"cinderella/internal/serve/chaos"
)

// TestFlightGroupPanicSafe is the regression test for the coalescing
// deadlock: a panicking flight fn must deliver a *panicError to the
// runner and every waiter, clean its key out of the map, and leave the
// key usable for the next caller.
func TestFlightGroupPanicSafe(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var waiterErr error
	go func() {
		defer wg.Done()
		<-started
		_, waiterErr, _ = g.Do("k", func() (any, error) { return "second", nil })
	}()
	_, err, _ := g.Do("k", func() (any, error) {
		close(started)
		// Give the waiter a beat to attach to this flight.
		time.Sleep(20 * time.Millisecond)
		panic("boom")
	})
	var pe *panicError
	if !errors.As(err, &pe) {
		t.Fatalf("runner got %T (%v), want *panicError", err, err)
	}
	wg.Wait()
	// The waiter either coalesced onto the panicking flight (gets the
	// panicError) or arrived after cleanup and ran its own fn (gets nil).
	if waiterErr != nil && !errors.As(waiterErr, &pe) {
		t.Fatalf("waiter got %v, want *panicError or success", waiterErr)
	}
	// The key must be fresh: a new call runs its own fn.
	v, err, shared := g.Do("k", func() (any, error) { return 42, nil })
	if err != nil || shared || v.(int) != 42 {
		t.Fatalf("post-panic flight: v=%v err=%v shared=%v", v, err, shared)
	}
}

// rawPost sends a raw body and returns status plus the decoded error
// envelope (zero-valued for 2xx).
func rawPost(t *testing.T, ts *httptest.Server, path, body string) (int, ErrorResponse) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var e ErrorResponse
	if resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("POST %s: status %d with undecodable error body: %v", path, resp.StatusCode, err)
		}
	}
	return resp.StatusCode, e
}

// TestErrorCodeTaxonomy pins every failure class to its HTTP status and
// machine-readable code: the contract retrying clients branch on.
func TestErrorCodeTaxonomy(t *testing.T) {
	asmText, _ := bench.ExplosionAsm(3)
	srv := New(Config{Shards: 1, Workers: 1, MaxBodyBytes: 64 << 10})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	estimate := func(annots string) string {
		req := EstimateRequest{ProgramSpec: ProgramSpec{Asm: asmText, Root: "main"}, Annotations: annots}
		b, _ := json.Marshal(req)
		return string(b)
	}

	cases := []struct {
		name       string
		path, body string
		status     int
		code       string
	}{
		{"malformed json", "/v1/estimate", "{not json", http.StatusBadRequest, CodeBadBody},
		{"unknown field", "/v1/estimate", `{"bogus_field": 1}`, http.StatusBadRequest, CodeBadBody},
		{"oversized body", "/v1/estimate", `{"annotations": "` + strings.Repeat("x", 128<<10) + `"}`, http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"no program", "/v1/estimate", `{"annotations": ""}`, http.StatusBadRequest, CodeBadRequest},
		{"not resident", "/v1/estimate", `{"program": "deadbeef"}`, http.StatusNotFound, CodeNotResident},
		{"both source and asm", "/v1/estimate", `{"source": "a", "asm": "b"}`, http.StatusBadRequest, CodeBadRequest},
		{"annotation syntax", "/v1/estimate", estimate("func main { loop 1: }"), http.StatusBadRequest, CodeAnnotation},
		{"unknown block", "/v1/estimate", estimate("func main {\n    x999 = 1\n}\n"), http.StatusBadRequest, CodeAnnotation},
		{"infeasible", "/v1/estimate", estimate("func main {\n    x2 = 1\n    x2 = 0\n}\n"), http.StatusUnprocessableEntity, CodeInfeasible},
		{"unbound symbol", "/v1/estimate", estimate("func main {\n    x2 = n1\n}\n"), http.StatusBadRequest, CodeUnboundSymbol},
		{"submit no text", "/v1/programs", `{}`, http.StatusBadRequest, CodeBadRequest},
		{"parametrize no specs", "/v1/parametrize", `{"asm": ` + mustJSON(asmText) + `, "annotations": ""}`, http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, e := rawPost(t, ts, tc.path, tc.body)
			if status != tc.status || e.Code != tc.code {
				t.Errorf("got status %d code %q (%s), want %d %q", status, e.Code, e.Error, tc.status, tc.code)
			}
			if tc.code == CodeNotResident && !e.Resubmit {
				t.Errorf("not_resident must set resubmit")
			}
		})
	}
}

func mustJSON(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// TestChaosPanicIsolated injects a solver panic on every estimate: each
// request gets a typed 500, coalesced waiters are not deadlocked, and the
// process keeps serving every other endpoint.
func TestChaosPanicIsolated(t *testing.T) {
	asmText, annots := bench.ExplosionAsm(3)
	inj := chaos.New(chaos.Config{Seed: 7, SolvePanicEvery: 1})
	srv := New(Config{Shards: 1, Workers: 1, Chaos: inj})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(EstimateRequest{ProgramSpec: ProgramSpec{Asm: asmText, Root: "main"}, Annotations: annots})

	// Two concurrent identical requests coalesce onto one panicking
	// flight; both must come back as typed 500s, not hang.
	var wg sync.WaitGroup
	results := make([]struct {
		status int
		e      ErrorResponse
	}, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: transport error: %v", i, err)
				return
			}
			defer resp.Body.Close()
			results[i].status = resp.StatusCode
			json.NewDecoder(resp.Body).Decode(&results[i].e)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.status != http.StatusInternalServerError || r.e.Code != CodePanic {
			t.Errorf("request %d: status %d code %q, want 500 %q", i, r.status, r.e.Code, CodePanic)
		}
	}
	if got := inj.Fired(chaos.SolvePanic); got == 0 {
		t.Fatal("injector never fired")
	}

	// The process is alive: health, stats, and submit all still answer.
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panics: %v %v", hr, err)
	}
	hr.Body.Close()
	var st StatsResponse
	sr, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Panics == 0 {
		t.Errorf("stats.panics = 0 after injected panics")
	}
	if st.Health != "ok" {
		t.Errorf("health %q after panics (panics degrade requests, not the process)", st.Health)
	}
}

// TestWatchdogWedgedSolve wedges every solve in an uncancellable sleep:
// the watchdog must cancel it, answer with a sound envelope (Exact=false,
// admission "watchdog"), and flip health to degraded after the threshold.
func TestWatchdogWedgedSolve(t *testing.T) {
	asmText, annots := bench.ExplosionAsm(4)
	ref := oneShotEstimate(t, ProgramSpec{Asm: asmText, Root: "main"}, 1, annots)

	inj := chaos.New(chaos.Config{Seed: 3, SolveSlowEvery: 1, SlowSolve: 2 * time.Second})
	srv := New(Config{
		Shards: 1, Workers: 1,
		WatchdogCeiling:   50 * time.Millisecond,
		DegradedThreshold: 2,
		Chaos:             inj,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for round := 0; round < 2; round++ {
		var got EstimateResponse
		postJSON(t, ts.Client(), ts.URL+"/v1/estimate",
			EstimateRequest{ProgramSpec: ProgramSpec{Asm: asmText, Root: "main"}, Annotations: annots},
			&got, http.StatusOK)
		if got.Admission != "watchdog" {
			t.Fatalf("round %d: admission %q, want watchdog", round, got.Admission)
		}
		if got.Exact || !got.Degraded {
			t.Errorf("round %d: wedged answer claims exactness: %+v", round, got)
		}
		// Soundness: the envelope must bracket the exact bounds.
		if got.WCET.Cycles < ref.WCET.Cycles {
			t.Errorf("round %d: envelope WCET %d below exact %d — NON-SOUND", round, got.WCET.Cycles, ref.WCET.Cycles)
		}
		if got.BCET.Cycles > ref.BCET.Cycles {
			t.Errorf("round %d: envelope BCET %d above exact %d — NON-SOUND", round, got.BCET.Cycles, ref.BCET.Cycles)
		}
	}

	// Two consecutive wedges at threshold 2: degraded.
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after %d wedges: status %d, want 503", 2, hr.StatusCode)
	}
	var st StatsResponse
	sr, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Wedged != 2 || st.WedgeStreak != 2 || st.Health != "degraded" {
		t.Errorf("stats after wedges: wedged=%d streak=%d health=%q, want 2/2/degraded", st.Wedged, st.WedgeStreak, st.Health)
	}

	// A solve that finishes inside the ceiling resets the streak and
	// recovers health.
	srv.wedgeStreak.Store(0)
	hr2, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr2.Body.Close()
	if hr2.StatusCode != http.StatusOK {
		t.Errorf("healthz after streak reset: status %d, want 200", hr2.StatusCode)
	}
}

// TestWatchdogStreakResetBySuccess drives a wedge then a clean solve
// through the real path and checks the streak resets without manual help.
func TestWatchdogStreakResetBySuccess(t *testing.T) {
	asmText, annots := bench.ExplosionAsm(3)
	// Every 2nd solve wedges; the other completes normally.
	inj := chaos.New(chaos.Config{Seed: 1, SolveSlowEvery: 2, SlowSolve: 2 * time.Second})
	srv := New(Config{
		Shards: 1, Workers: 1,
		WatchdogCeiling:   50 * time.Millisecond,
		DegradedThreshold: 1,
		Chaos:             inj,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sawWedge, sawReset := false, false
	for round := 0; round < 4 && !(sawWedge && sawReset); round++ {
		var got EstimateResponse
		postJSON(t, ts.Client(), ts.URL+"/v1/estimate",
			EstimateRequest{ProgramSpec: ProgramSpec{Asm: asmText, Root: "main"}, Annotations: annots},
			&got, http.StatusOK)
		if got.Admission == "watchdog" {
			sawWedge = true
		} else if sawWedge {
			if srv.wedgeStreak.Load() != 0 {
				t.Fatalf("round %d: clean solve did not reset the wedge streak", round)
			}
			sawReset = true
		}
	}
	if !sawWedge || !sawReset {
		t.Fatalf("scenario incomplete: sawWedge=%v sawReset=%v (fired=%d)", sawWedge, sawReset, inj.Fired(chaos.SolveSlow))
	}
}
