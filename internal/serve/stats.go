package serve

import "sync/atomic"

// counters is the server-wide ledger. Every field is an atomic: request
// handlers bump them lock-free and the stats endpoint snapshots them while
// estimates run, so no counter is ever read torn or under a lock that a
// solve could be holding.
type counters struct {
	requests     atomic.Int64
	submits      atomic.Int64
	estimates    atomic.Int64
	parametrizes atomic.Int64
	coalesced    atomic.Int64
	degraded     atomic.Int64
	shed         atomic.Int64
	errors       atomic.Int64
	// panics counts requests answered by the fault barrier (recover
	// middleware or a flight's panicError) — each was a typed 500, not a
	// process death.
	panics atomic.Int64
	// wedged counts solves the watchdog cancelled past the hard ceiling.
	wedged atomic.Int64

	formulaAnswered  atomic.Int64
	fallbackAnswered atomic.Int64

	storeHits   atomic.Int64
	storeMisses atomic.Int64
	prepares    atomic.Int64
	resubmits   atomic.Int64
	evictions   atomic.Int64
}
