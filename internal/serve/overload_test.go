package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cinderella/internal/bench"
)

// TestServerOverloadSoundness drives the server far past its admission
// capacity — one solve slot, a one-deep queue, dozens of concurrent
// requests with sub-millisecond SLOs — and holds it to the paper-soundness
// contract under load: every response is HTTP 200, every degraded answer
// has Exact=false with an envelope that brackets the true bound (WCET
// from above, BCET from below), and no answer is ever tighter than the
// exact bound. Overload degrades precision, never soundness and never
// availability.
func TestServerOverloadSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("overload test")
	}
	srv := New(Config{Shards: 1, Workers: 1, MaxConcurrent: 1, MaxQueue: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	asmText, annots := bench.ExplosionAsm(6)
	spec := ProgramSpec{Asm: asmText, Root: "main"}
	ref := oneShotEstimate(t, spec, 1, annots)
	if !ref.WCET.Exact || !ref.BCET.Exact {
		t.Fatal("reference one-shot run not exact")
	}

	var sub SubmitResponse
	postJSON(t, ts.Client(), ts.URL+"/v1/programs", spec, &sub, http.StatusOK)

	// Saturate admission deterministically: occupy the single solve slot
	// and the one-deep queue directly, so the tiny-SLO burst below meets a
	// full admission path regardless of scheduler timing and must shed.
	srv.adm.slots <- struct{}{}
	srv.adm.queue <- struct{}{}

	const clients = 24
	results := make([]EstimateResponse, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct SLOs defeat coalescing: every request is its own
			// solver pass competing for the single slot.
			req := EstimateRequest{
				Program:     sub.Program,
				Annotations: annots,
				SLOMillis:   0.05 + float64(i)*0.001,
			}
			body, _ := json.Marshal(req)
			resp, err := ts.Client().Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				var e ErrorResponse
				json.NewDecoder(resp.Body).Decode(&e)
				t.Errorf("client %d: overload returned status %d (%s) — must degrade, not fail", i, resp.StatusCode, e.Error)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&results[i]); err != nil {
				t.Errorf("client %d: decode: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// Release the saturated admission path, then exercise the recovery
	// paths. An unconstrained (no-SLO) request must come back exact and
	// bit-equal to the reference — overload left no residue.
	<-srv.adm.queue
	<-srv.adm.slots

	var exactResp EstimateResponse
	postJSON(t, ts.Client(), ts.URL+"/v1/estimate",
		EstimateRequest{Program: sub.Program, Annotations: annots}, &exactResp, http.StatusOK)
	if !exactResp.Exact || exactResp.WCET.Cycles != ref.WCET.Cycles || exactResp.BCET.Cycles != ref.BCET.Cycles {
		t.Errorf("unconstrained solve after overload: exact=%v [%d,%d], want exact [%d,%d]",
			exactResp.Exact, exactResp.BCET.Cycles, exactResp.WCET.Cycles, ref.BCET.Cycles, ref.WCET.Cycles)
	}

	// A patient waiter (10 s SLO) that arrives while the slot is held
	// queues, gets the slot when it frees, and answers sound — with the
	// caches warm, exact.
	srv.adm.slots <- struct{}{}
	var queued EstimateResponse
	queuedDone := make(chan struct{})
	go func() {
		defer close(queuedDone)
		postJSON(t, ts.Client(), ts.URL+"/v1/estimate",
			EstimateRequest{Program: sub.Program, Annotations: annots, SLOMillis: 10000}, &queued, http.StatusOK)
	}()
	time.Sleep(100 * time.Millisecond)
	<-srv.adm.slots
	<-queuedDone
	if queued.WCET.Cycles < ref.WCET.Cycles || queued.BCET.Cycles > ref.BCET.Cycles {
		t.Errorf("queued solve unsound: [%d,%d] vs exact [%d,%d]",
			queued.BCET.Cycles, queued.WCET.Cycles, ref.BCET.Cycles, ref.WCET.Cycles)
	}

	var degraded, shed, exact int
	for i := range results {
		r := &results[i]
		if r.Admission == "" {
			continue // client already reported its failure
		}
		if r.Admission == "shed" {
			shed++
		}
		// Soundness holds for every answer, degraded or not.
		if r.WCET.Cycles < ref.WCET.Cycles {
			t.Errorf("client %d: WCET %d tighter than exact %d — unsound", i, r.WCET.Cycles, ref.WCET.Cycles)
		}
		if r.BCET.Cycles > ref.BCET.Cycles {
			t.Errorf("client %d: BCET %d tighter than exact %d — unsound", i, r.BCET.Cycles, ref.BCET.Cycles)
		}
		if r.Degraded {
			degraded++
			if r.WCET.Exact && r.BCET.Exact {
				t.Errorf("client %d: degraded response claims exact bounds", i)
			}
		} else {
			exact++
			if r.WCET.Cycles != ref.WCET.Cycles || r.BCET.Cycles != ref.BCET.Cycles {
				t.Errorf("client %d: exact response [%d,%d] differs from reference [%d,%d]",
					i, r.BCET.Cycles, r.WCET.Cycles, ref.BCET.Cycles, ref.WCET.Cycles)
			}
		}
	}
	// With the slot and queue saturated for the whole burst, every request
	// must shed; degradation is structurally guaranteed on the cold caches.
	if shed != clients {
		t.Errorf("%d of %d requests shed; a saturated admission path must shed all of them", shed, clients)
	}
	if degraded == 0 {
		t.Error("no request degraded under sub-millisecond SLOs")
	}
	t.Logf("overload: %d exact, %d degraded, %d shed of %d", exact, degraded, shed, clients)

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shed == 0 || st.Degraded == 0 {
		t.Errorf("stats did not record the overload: shed %d degraded %d", st.Shed, st.Degraded)
	}
}
