// Package loadgen is the load harness for cinderelld: it drives a live
// server over HTTP with a configurable mix of estimate workloads and
// measures what the paper's interactive workflow feels like as a service —
// throughput, latency percentiles split warm vs cold, eviction churn, and,
// crucially, soundness under load: every response is checked against the
// workload's exact reference bounds, and any answer tighter than exact is
// counted as non-sound. A healthy server reports NonSound == 0 under any
// load whatsoever.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cinderella/internal/serve"
	"cinderella/internal/serve/client"
)

// Workload is one request shape in the mix.
type Workload struct {
	Name        string
	Spec        serve.ProgramSpec
	Annotations string
	// Params, when set, makes the request a parametric point query.
	Params map[string]int64
	// SLOMillis is sent as the request SLO (0 = server default).
	SLOMillis float64
	// RefWCET/RefBCET are the exact bounds of this workload, used for the
	// soundness check. Both zero disables the check.
	RefWCET int64
	RefBCET int64
}

// Config shapes one load run.
type Config struct {
	// BaseURL is the server under test, e.g. http://127.0.0.1:8372.
	BaseURL string
	// Clients is the number of concurrent request loops (default 4).
	Clients int
	// Duration bounds the run (default 2s); MaxRequests additionally caps
	// total requests when nonzero.
	Duration    time.Duration
	MaxRequests int64
	// Workloads is the request mix, round-robined per client.
	Workloads []Workload
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

// Result is the ledger of one run.
type Result struct {
	Requests int64
	// Errors counts transport failures and untyped answers — the things a
	// healthy server never produces. TypedErrors counts non-2xx responses
	// that carried a machine-readable error envelope: under fault
	// injection those are the server failing *correctly*.
	Errors      int64
	TypedErrors int64
	// Retries is the client's transport-retry total across the run.
	Retries  int64
	NonSound int64
	Degraded   int64
	Shed       int64
	Coalesced  int64
	ColdStarts int64
	// Evictions is the store's eviction delta across the run (taken from
	// /v1/stats before and after).
	Evictions int64

	Duration  time.Duration
	ReqPerSec float64
	// P50/P99 are over all requests; WarmP50/ColdP50 split by whether the
	// response reported a cold start (session prepared by that request).
	P50     time.Duration
	P99     time.Duration
	WarmP50 time.Duration
	ColdP50 time.Duration
	// PrepareP50/PrepareP99 are over the prepare_us the server reported on
	// cold responses: the frontend+Prepare pipeline alone, with queueing and
	// solving excluded — the dedicated view of the cold path the artifact
	// cache attacks.
	PrepareP50 time.Duration
	PrepareP99 time.Duration
	// ArtifactHitRate is Δhits/(Δhits+Δmisses) of the server's process-wide
	// prepare-artifact cache across the run (0 when no artifact traffic).
	ArtifactHitRate float64
}

// String renders the run the way the smoke logs want it.
func (r Result) String() string {
	return fmt.Sprintf("%d req in %s (%.0f req/s), p50 %s p99 %s (warm p50 %s, cold p50 %s, prepare p50 %s p99 %s, artifact hit rate %.2f), %d degraded, %d shed, %d coalesced, %d cold, %d evictions, %d errors, %d typed errors, %d retries, %d NON-SOUND",
		r.Requests, r.Duration.Round(time.Millisecond), r.ReqPerSec,
		r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.WarmP50.Round(time.Microsecond), r.ColdP50.Round(time.Microsecond),
		r.PrepareP50.Round(time.Microsecond), r.PrepareP99.Round(time.Microsecond), r.ArtifactHitRate,
		r.Degraded, r.Shed, r.Coalesced, r.ColdStarts, r.Evictions, r.Errors, r.TypedErrors, r.Retries, r.NonSound)
}

// Run drives the server until the duration (and optional request cap) is
// spent and returns the merged ledger.
func Run(cfg Config) (Result, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if len(cfg.Workloads) == 0 {
		return Result{}, fmt.Errorf("loadgen: no workloads")
	}
	cl := client.New(client.Config{Base: cfg.BaseURL, HTTP: cfg.Client})

	statsBefore, err := cl.Stats(context.Background())
	if err != nil {
		return Result{}, err
	}

	var (
		res      Result
		reqCount atomic.Int64
		mu       sync.Mutex
		warmLat  []time.Duration
		coldLat  []time.Duration
		prepLat  []time.Duration
		wg       sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var myWarm, myCold, myPrep []time.Duration
			var errs, typedErrs, nonSound, degraded, shed, coalesced, cold int64
			for i := 0; time.Now().Before(deadline); i++ {
				if cfg.MaxRequests > 0 && reqCount.Add(1) > cfg.MaxRequests {
					reqCount.Add(-1)
					break
				} else if cfg.MaxRequests == 0 {
					reqCount.Add(1)
				}
				w := &cfg.Workloads[(c+i)%len(cfg.Workloads)]
				t0 := time.Now()
				resp, err := estimateOnce(cl, w)
				lat := time.Since(t0)
				if err != nil {
					// A typed envelope is the server failing correctly; an
					// untyped answer or transport failure is the real error.
					var ae *client.APIError
					if errors.As(err, &ae) && ae.Code != "" {
						typedErrs++
					} else {
						errs++
					}
					continue
				}
				if resp.ColdStart {
					cold++
					myCold = append(myCold, lat)
					if resp.PrepareMicros > 0 {
						myPrep = append(myPrep, time.Duration(resp.PrepareMicros)*time.Microsecond)
					}
				} else {
					myWarm = append(myWarm, lat)
				}
				if resp.Degraded {
					degraded++
				}
				if resp.Admission == "shed" {
					shed++
				}
				if resp.Coalesced {
					coalesced++
				}
				if w.RefWCET != 0 || w.RefBCET != 0 {
					// Soundness: WCET never below exact, BCET never above;
					// an exact claim must hit the reference dead on.
					if resp.WCET.Cycles < w.RefWCET || resp.BCET.Cycles > w.RefBCET {
						nonSound++
					} else if resp.Exact && (resp.WCET.Cycles != w.RefWCET || resp.BCET.Cycles != w.RefBCET) {
						nonSound++
					}
				}
			}
			mu.Lock()
			warmLat = append(warmLat, myWarm...)
			coldLat = append(coldLat, myCold...)
			prepLat = append(prepLat, myPrep...)
			res.Errors += errs
			res.TypedErrors += typedErrs
			res.NonSound += nonSound
			res.Degraded += degraded
			res.Shed += shed
			res.Coalesced += coalesced
			res.ColdStarts += cold
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	res.Requests = reqCount.Load()
	res.Retries = cl.Retries()

	statsAfter, err := cl.Stats(context.Background())
	if err != nil {
		return res, err
	}
	res.Evictions = statsAfter.Store.Evictions - statsBefore.Store.Evictions
	dHits := statsAfter.Artifacts.Hits - statsBefore.Artifacts.Hits
	dMisses := statsAfter.Artifacts.Misses - statsBefore.Artifacts.Misses
	if dHits+dMisses > 0 {
		res.ArtifactHitRate = float64(dHits) / float64(dHits+dMisses)
	}
	if res.Duration > 0 {
		res.ReqPerSec = float64(res.Requests) / res.Duration.Seconds()
	}
	all := append(append([]time.Duration(nil), warmLat...), coldLat...)
	res.P50 = percentile(all, 50)
	res.P99 = percentile(all, 99)
	res.WarmP50 = percentile(warmLat, 50)
	res.ColdP50 = percentile(coldLat, 50)
	res.PrepareP50 = percentile(prepLat, 50)
	res.PrepareP99 = percentile(prepLat, 99)
	return res, nil
}

// estimateOnce sends one estimate with the workload's inline program spec,
// so the request succeeds whether the session is resident or was evicted.
// The client retries transport failures transparently — idempotent
// re-submission is safe because programs are content-addressed.
func estimateOnce(cl *client.Client, w *Workload) (*serve.EstimateResponse, error) {
	return cl.Estimate(context.Background(), serve.EstimateRequest{
		ProgramSpec: w.Spec,
		Annotations: w.Annotations,
		Params:      w.Params,
		SLOMillis:   w.SLOMillis,
	})
}

// percentile returns the p-th percentile (nearest-rank) of lats.
func percentile(lats []time.Duration, p int) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}
