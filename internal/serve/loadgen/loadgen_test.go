package loadgen

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"cinderella/internal/asm"
	"cinderella/internal/bench"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/ipet"
	"cinderella/internal/serve"
)

// explosionWorkload builds one path-explosion workload with its exact
// reference bounds solved directly, so every load run can check soundness.
func explosionWorkload(t *testing.T, n int, slo float64) Workload {
	t.Helper()
	asmText, annots := bench.ExplosionAsm(n)
	exe, err := asm.Assemble(asmText)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	opts := ipet.DefaultOptions()
	opts.Workers = 1
	an, err := ipet.New(prog, "main", opts)
	if err != nil {
		t.Fatal(err)
	}
	file, err := constraint.Parse(annots)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Apply(file); err != nil {
		t.Fatal(err)
	}
	ref, err := an.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !ref.WCET.Exact || !ref.BCET.Exact {
		t.Fatalf("explosion%d reference not exact", n)
	}
	return Workload{
		Name:        "explosion" + strconv.Itoa(1<<n),
		Spec:        serve.ProgramSpec{Asm: asmText, Root: "main"},
		Annotations: annots,
		SLOMillis:   slo,
		RefWCET:     ref.WCET.Cycles,
		RefBCET:     ref.BCET.Cycles,
	}
}

// runScenario spins a server with the config, runs the load, and applies
// the universal gates: no transport errors, no non-sound response, ever.
func runScenario(t *testing.T, name string, sc serve.Config, lc Config) Result {
	t.Helper()
	srv := serve.New(sc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	lc.BaseURL = ts.URL
	lc.Client = ts.Client()
	res, err := Run(lc)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	t.Logf("%s: %s", name, res)
	if res.Requests == 0 {
		t.Errorf("%s: no requests completed", name)
	}
	if res.Errors != 0 {
		t.Errorf("%s: %d transport/untyped errors", name, res.Errors)
	}
	if res.TypedErrors != 0 {
		t.Errorf("%s: %d typed error responses under a fault-free run", name, res.TypedErrors)
	}
	if res.NonSound != 0 {
		t.Errorf("%s: %d NON-SOUND responses — a bound crossed the exact reference", name, res.NonSound)
	}
	return res
}

// TestLoadgenSmoke is the fast always-on check: a short mixed run against
// an uncapped server must complete without an error or a non-sound bound.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("drives load over HTTP")
	}
	runScenario(t, "smoke", serve.Config{Shards: 1, Workers: 1}, Config{
		Clients:  4,
		Duration: 800 * time.Millisecond,
		Workloads: []Workload{
			explosionWorkload(t, 4, 0),
			explosionWorkload(t, 5, 0),
		},
	})
}

// TestWriteServeBenchJSON measures the three server scenarios — warm
// steady state, LRU eviction churn, and overload with tiny SLOs — and
// merges their rows into BENCH_estimate.json next to the estimate rows.
// The artifact lands in $CINDERELLA_BENCH_JSON when set (refresh runs),
// otherwise in a temp dir.
func TestWriteServeBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("drives load over HTTP")
	}
	dur := 1500 * time.Millisecond

	var rows []bench.EstimatePerf

	// Warm steady state: one resident program, no caps; after the first
	// cold request every answer comes off the session caches.
	warm := runScenario(t, "serve/warm", serve.Config{Shards: 1, Workers: 1}, Config{
		Clients:   4,
		Duration:  dur,
		Workloads: []Workload{explosionWorkload(t, 6, 0)},
	})
	rows = append(rows, perfRow("serve/warm", warm))

	// Eviction churn: three programs through a 2-entry LRU; sessions are
	// constantly evicted and re-prepared.
	churn := runScenario(t, "serve/churn", serve.Config{Shards: 1, Workers: 1, MaxSessions: 2}, Config{
		Clients:  4,
		Duration: dur,
		Workloads: []Workload{
			explosionWorkload(t, 4, 0),
			explosionWorkload(t, 5, 0),
			explosionWorkload(t, 6, 0),
		},
	})
	rows = append(rows, perfRow("serve/churn", churn))
	if churn.Evictions == 0 {
		t.Error("serve/churn: three programs through a 2-entry LRU produced no evictions")
	}

	// Overload: one solve slot, sub-millisecond SLOs; answers degrade to
	// sound envelopes — NonSound stays zero by the universal gate above.
	over := runScenario(t, "serve/overload", serve.Config{Shards: 1, Workers: 1, MaxConcurrent: 1, MaxQueue: 1}, Config{
		Clients:   8,
		Duration:  dur,
		Workloads: []Workload{explosionWorkload(t, 6, 0.25)},
	})
	rows = append(rows, perfRow("serve/overload", over))
	if over.Degraded == 0 {
		t.Error("serve/overload: no request degraded under sub-millisecond SLOs")
	}

	path := os.Getenv("CINDERELLA_BENCH_JSON")
	if path == "" {
		path = filepath.Join(t.TempDir(), "BENCH_estimate.json")
	}
	if err := mergeRows(path, rows); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d serve rows to %s", len(rows), path)
}

// TestLoadgenGate is the CI server-job smoke: enabled by CINDERELLA_LOADGEN,
// it drives a mixed load for CINDERELLA_LOADGEN_SECONDS (default 60) and
// gates on p99 latency and zero non-sound responses.
func TestLoadgenGate(t *testing.T) {
	if os.Getenv("CINDERELLA_LOADGEN") == "" {
		t.Skip("set CINDERELLA_LOADGEN=1 to run the load smoke")
	}
	secs := 60
	if v := os.Getenv("CINDERELLA_LOADGEN_SECONDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("CINDERELLA_LOADGEN_SECONDS: %v", err)
		}
		secs = n
	}
	p99Limit := 500 * time.Millisecond
	if v := os.Getenv("CINDERELLA_LOADGEN_P99_MS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("CINDERELLA_LOADGEN_P99_MS: %v", err)
		}
		p99Limit = time.Duration(n) * time.Millisecond
	}
	res := runScenario(t, "gate", serve.Config{Shards: 1, Workers: 1, MaxSessions: 2}, Config{
		Clients:  4,
		Duration: time.Duration(secs) * time.Second,
		Workloads: []Workload{
			explosionWorkload(t, 4, 0),
			explosionWorkload(t, 5, 0),
			explosionWorkload(t, 6, 0),
		},
	})
	if res.P99 > p99Limit {
		t.Errorf("p99 %s exceeds the %s gate", res.P99, p99Limit)
	}
}

// perfRow converts a load result into a BENCH_estimate.json row.
func perfRow(name string, r Result) bench.EstimatePerf {
	return bench.EstimatePerf{
		Name:            name,
		Requests:        r.Requests,
		ReqPerSec:       r.ReqPerSec,
		P50Us:           r.P50.Microseconds(),
		P99Us:           r.P99.Microseconds(),
		WarmP50Us:       r.WarmP50.Microseconds(),
		ColdP50Us:       r.ColdP50.Microseconds(),
		PrepareP50Us:    r.PrepareP50.Microseconds(),
		PrepareP99Us:    r.PrepareP99.Microseconds(),
		ArtifactHitRate: r.ArtifactHitRate,
		Degraded:        r.Degraded,
		Shed:            r.Shed,
		Coalesced:       r.Coalesced,
		Evictions:       r.Evictions,
		NonSound:        r.NonSound,
		Exact:           r.Degraded == 0,
	}
}

// mergeRows rewrites path replacing rows by exact name and keeping
// everything else, so the estimate rows, the load rows, and rows written
// by other tests (serve/restart-warm) share one artifact without
// clobbering each other.
func mergeRows(path string, rows []bench.EstimatePerf) error {
	var existing []bench.EstimatePerf
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &existing); err != nil {
			return err
		}
	}
	fresh := make(map[string]bool, len(rows))
	for _, r := range rows {
		fresh[r.Name] = true
	}
	var merged []bench.EstimatePerf
	for _, r := range existing {
		if !fresh[r.Name] {
			merged = append(merged, r)
		}
	}
	merged = append(merged, rows...)
	return bench.WriteEstimatePerfFile(path, merged)
}
