// Package client is the retrying HTTP client for cinderelld. It wraps
// the wire API in typed calls, converts every non-2xx answer into an
// *APIError carrying the server's machine-readable code, and retries
// transport failures (connection refused, reset, EOF mid-response) with
// exponential backoff and jitter. Retrying is safe because the API is
// idempotent by construction: programs are content-addressed, estimates
// are pure functions of (program, annotations, params), and the server
// coalesces identical in-flight requests — re-submitting after a lost
// connection re-reads a cache at worst.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"cinderella/internal/serve"
)

// Config shapes a Client. The zero value of each field selects the
// documented default.
type Config struct {
	// Base is the server root, e.g. "http://127.0.0.1:8372".
	Base string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
	// MaxRetries is how many times a transport failure is retried beyond
	// the first attempt (default 3). HTTP-status errors are never retried:
	// they are answers.
	MaxRetries int
	// BaseBackoff is the first retry delay; each further retry doubles it,
	// plus up to 50% seeded jitter (default 50ms).
	BaseBackoff time.Duration
	// Seed seeds the jitter source, making retry schedules reproducible in
	// tests (0 = a fixed default seed).
	Seed int64
}

// Client is safe for concurrent use.
type Client struct {
	conf Config

	mu  sync.Mutex
	rng *rand.Rand

	// retries counts transport retries performed, for harness assertions.
	retries int64
}

// New builds a client; see Config for defaults.
func New(conf Config) *Client {
	if conf.HTTP == nil {
		conf.HTTP = http.DefaultClient
	}
	if conf.MaxRetries <= 0 {
		conf.MaxRetries = 3
	}
	if conf.BaseBackoff <= 0 {
		conf.BaseBackoff = 50 * time.Millisecond
	}
	seed := conf.Seed
	if seed == 0 {
		seed = 1
	}
	return &Client{conf: conf, rng: rand.New(rand.NewSource(seed))}
}

// APIError is a non-2xx answer: the server spoke, the request failed.
type APIError struct {
	Status   int
	Code     string
	Message  string
	Resubmit bool
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server status %d (%s): %s", e.Status, e.Code, e.Message)
}

// Retries reports how many transport retries the client has performed.
func (c *Client) Retries() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries
}

func (c *Client) backoff(attempt int) time.Duration {
	d := c.conf.BaseBackoff << attempt
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.retries++
	c.mu.Unlock()
	return d + jitter
}

// do sends one request body and decodes the answer, retrying transport
// failures. A response with a status — any status — ends the retry loop:
// non-2xx becomes an *APIError.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.conf.Base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.conf.HTTP.Do(req)
		if err == nil {
			return decodeResponse(resp, out)
		}
		lastErr = err
		if attempt >= c.conf.MaxRetries || ctx.Err() != nil {
			return fmt.Errorf("%s %s: %d attempts: %w", method, path, attempt+1, lastErr)
		}
		select {
		case <-time.After(c.backoff(attempt)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e serve.ErrorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err := json.Unmarshal(data, &e); err != nil || (e.Error == "" && e.Code == "") {
			// A non-JSON error body is a transport-ish failure mode, but the
			// server did answer: surface it typed with an empty code so the
			// harness can flag it.
			return &APIError{Status: resp.StatusCode, Message: string(data)}
		}
		return &APIError{Status: resp.StatusCode, Code: e.Code, Message: e.Error, Resubmit: e.Resubmit}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// PostJSON posts v to path and decodes the 2xx answer into out.
func (c *Client) PostJSON(ctx context.Context, path string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, body, out)
}

// GetJSON fetches path into out.
func (c *Client) GetJSON(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

// Submit registers a program and returns its content hash.
func (c *Client) Submit(ctx context.Context, spec serve.ProgramSpec) (*serve.SubmitResponse, error) {
	var out serve.SubmitResponse
	if err := c.PostJSON(ctx, "/v1/programs", spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Estimate runs one timing estimate.
func (c *Client) Estimate(ctx context.Context, req serve.EstimateRequest) (*serve.EstimateResponse, error) {
	var out serve.EstimateResponse
	if err := c.PostJSON(ctx, "/v1/estimate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Parametrize builds a piecewise-linear bound formula on the session.
func (c *Client) Parametrize(ctx context.Context, req serve.ParametrizeRequest) (*serve.ParametrizeResponse, error) {
	var out serve.ParametrizeResponse
	if err := c.PostJSON(ctx, "/v1/parametrize", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats(ctx context.Context) (*serve.StatsResponse, error) {
	var out serve.StatsResponse
	if err := c.GetJSON(ctx, "/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}
