package serve

import (
	"context"
	"runtime"
	"time"
)

// shedDeadline is the token solver deadline a shed request runs under:
// long enough to build the model and report the sound relaxation envelope,
// far too short to solve. Overload therefore degrades answers (Exact=false
// with honest Slack) instead of degrading availability — the anytime
// machinery guarantees the envelope brackets the true bound.
const shedDeadline = 250 * time.Microsecond

// minSolveDeadline floors the post-queue solver deadline so a request that
// spent almost its whole SLO queueing still gets a beat of solve time
// (and, failing that, the envelope) rather than a zero deadline, which
// would mean "unlimited".
const minSolveDeadline = 100 * time.Microsecond

// sloLessWait bounds queue time for requests with no SLO at all; past it
// the server is badly overloaded and shedding to the envelope beats
// waiting forever.
const sloLessWait = 30 * time.Second

// admission maps request SLOs onto solver deadlines under bounded
// concurrency. slots caps simultaneous solver passes; queue caps waiters.
// A request that cannot get a slot within about half its SLO — or finds
// the queue full — is shed: it still runs, but under shedDeadline, so the
// client always gets a sound answer.
type admission struct {
	slots chan struct{}
	queue chan struct{}
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.GOMAXPROCS(0)
	}
	if maxQueue <= 0 {
		maxQueue = 4 * maxConcurrent
	}
	return &admission{
		slots: make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, maxQueue),
	}
}

// admit acquires a solve slot within the request's SLO. It returns the
// solver deadline to run under (0 = unlimited), a release function (always
// non-nil, always to be called after the solve), and whether the request
// was shed. Shed requests hold no slot: their token deadline bounds the
// work they can do.
func (ad *admission) admit(ctx context.Context, slo time.Duration) (deadline time.Duration, release func(), shed bool) {
	noop := func() {}
	// Fast path: an idle slot means no queueing — the full SLO becomes
	// solve time.
	select {
	case ad.slots <- struct{}{}:
		return solveDeadline(slo, 0), func() { <-ad.slots }, false
	default:
	}

	// Queue full: shed immediately rather than stacking waiters.
	select {
	case ad.queue <- struct{}{}:
	default:
		return shedDeadline, noop, true
	}
	defer func() { <-ad.queue }()

	wait := slo / 2
	if slo <= 0 {
		wait = sloLessWait
	}
	start := time.Now()
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case ad.slots <- struct{}{}:
		return solveDeadline(slo, time.Since(start)), func() { <-ad.slots }, false
	case <-timer.C:
		return shedDeadline, noop, true
	case <-ctx.Done():
		return shedDeadline, noop, true
	}
}

// solveDeadline is the SLO minus time already spent queueing, floored so
// it never collapses to "unlimited" (0) or to nothing.
func solveDeadline(slo, waited time.Duration) time.Duration {
	if slo <= 0 {
		return 0
	}
	d := slo - waited
	if d < minSolveDeadline {
		d = minSolveDeadline
	}
	return d
}
