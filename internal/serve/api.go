// Package serve implements cinderelld, the analysis-as-a-service layer:
// a long-lived HTTP daemon that keeps prepared ipet.Sessions resident in a
// sharded LRU store keyed by program hash and answers timing-estimate
// queries against them. The paper's workflow — derive structural
// constraints once, then iterate annotation scenarios against the same ILP
// model — is exactly the shape of a server: the expensive front end
// (compile, CFG reconstruction, context expansion, row lowering, warm base
// tableaux) is paid once per program and amortized over every request.
//
// Overload never queues without bound and never fails soundness: admission
// control maps each request's SLO onto the session machinery's anytime
// budgets (ipet.Analyzer.SetAnytime), so a request the server cannot solve
// in time degrades to the sound relaxation envelope — Exact=false, honest
// Slack — instead of an error or an unbounded queue.
package serve

import "cinderella/internal/ipet"

// ProgramSpec identifies a program and the analysis options that shape its
// session. Every field participates in the program hash: two specs
// differing in any field are distinct resident sessions.
type ProgramSpec struct {
	// Source is MC source text; Asm is CR32 assembly. Exactly one must be
	// set when submitting (a bare hash reference leaves both empty).
	Source string `json:"source,omitempty"`
	Asm    string `json:"asm,omitempty"`
	// Root is the analyzed function; default "main".
	Root string `json:"root,omitempty"`
	// Optimize compiles Source with the peephole optimizer (cinderella -O).
	Optimize bool `json:"optimize,omitempty"`
	// Split enables first-iteration cache splitting (cinderella -split).
	Split bool `json:"split,omitempty"`
	// Profile is the processor timing profile name; default "i960kb".
	Profile string `json:"profile,omitempty"`
	// Certify backs every bound with the exact rational layer (cinderella
	// -certify). Certifying sessions keep presolve-free warm bases, so the
	// flag is part of the program identity rather than a per-request knob.
	Certify bool `json:"certify,omitempty"`
}

// SubmitResponse answers POST /v1/programs.
type SubmitResponse struct {
	// Program is the hash naming the resident session; pass it in
	// EstimateRequest.Program.
	Program string `json:"program"`
	Root    string `json:"root"`
	// Cached reports that the session was already resident.
	Cached bool `json:"cached"`
	// MemoryBytes is the session's accounted footprint.
	MemoryBytes int64 `json:"memory_bytes"`
}

// EstimateRequest asks for one timing estimate. The program is named by
// hash (after a submit) or inline via the embedded ProgramSpec; an inline
// spec doubles as the resubmission path when the hash was evicted.
type EstimateRequest struct {
	// Program is the hash of a submitted program. Optional when the
	// embedded spec carries the source.
	Program string `json:"program,omitempty"`
	ProgramSpec
	// Annotations is the functionality constraint file text.
	Annotations string `json:"annotations"`
	// Params gives values for annotation symbols (parametric analysis).
	// When a previously built formula covers the point the answer is a
	// formula evaluation; otherwise the symbols are bound and solved
	// concretely.
	Params map[string]int64 `json:"params,omitempty"`
	// SLOMillis is this request's latency objective in milliseconds. The
	// server spends at most about half of it queueing and maps the rest
	// onto the solver's anytime deadline; overload degrades the answer to
	// a sound envelope rather than blowing the SLO. Zero uses the server
	// default.
	SLOMillis float64 `json:"slo_ms,omitempty"`
	// Budget caps the request's simplex pivots (deterministic anytime
	// cutoff); zero means unlimited.
	Budget int `json:"budget,omitempty"`
	// WantStats includes the solver work breakdown in the response.
	WantStats bool `json:"want_stats,omitempty"`
}

// EstimateResponse carries one estimate. WCET/BCET are the exact structs
// the CLI path computes — a server answer is bit-identical to a
// cmd/cinderella one-shot run of the same program and annotations.
type EstimateResponse struct {
	Program string           `json:"program"`
	WCET    ipet.BoundReport `json:"wcet"`
	BCET    ipet.BoundReport `json:"bcet"`

	NumSets         int  `json:"num_sets"`
	PrunedSets      int  `json:"pruned_sets"`
	SolvedSets      int  `json:"solved_sets"`
	AllRootIntegral bool `json:"all_root_integral"`

	// Exact mirrors WCET.Exact && BCET.Exact; Degraded is its negation,
	// surfaced for load tooling.
	Exact    bool `json:"exact"`
	Degraded bool `json:"degraded"`
	// Admission reports how the request got its solve slot: "ok" (ran
	// within its SLO), "shed" (overload — the solver ran envelope-only
	// under a token deadline), or "watchdog" (the solve wedged past the
	// hard ceiling and was cancelled; the answer is a sound envelope).
	Admission string `json:"admission"`
	// AnsweredBy is "solver", "formula" (parametric piece, no simplex
	// work), or "infeasible".
	AnsweredBy string `json:"answered_by"`
	// Coalesced marks an answer shared with an identical in-flight
	// request.
	Coalesced bool `json:"coalesced"`
	// ColdStart marks that this request (re)prepared the session.
	ColdStart bool `json:"cold_start"`
	// PrepareMicros is the frontend+Prepare wall time this request paid;
	// present only on cold starts. Load tooling splits it out of the
	// blended latency to watch the cold path directly.
	PrepareMicros int64 `json:"prepare_us,omitempty"`

	ElapsedMicros int64       `json:"elapsed_us"`
	Stats         *ipet.Stats `json:"stats,omitempty"`
}

// ParamSpecJSON is one parameter domain declaration.
type ParamSpecJSON struct {
	Name string `json:"name"`
	Lo   int64  `json:"lo"`
	Hi   int64  `json:"hi"`
}

// ParametrizeRequest builds (and caches on the session) a piecewise-linear
// bound formula over the given parameter domains; later estimates naming a
// covered point are answered by formula evaluation.
type ParametrizeRequest struct {
	Program string `json:"program,omitempty"`
	ProgramSpec
	Annotations string          `json:"annotations"`
	Specs       []ParamSpecJSON `json:"specs"`
}

// ParametrizeResponse answers POST /v1/parametrize.
type ParametrizeResponse struct {
	Program   string `json:"program"`
	Formula   string `json:"formula"`
	Pieces    int    `json:"pieces"`
	Certified bool   `json:"certified"`
	// Cached reports that an identical formula was already resident.
	Cached    bool  `json:"cached"`
	ColdStart bool  `json:"cold_start"`
	ElapsedUs int64 `json:"elapsed_us"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is the machine-readable failure class (the Code* constants in
	// this package): bad_body, too_large, bad_request, not_resident,
	// annotation, infeasible, unbound_symbol, panic, watchdog_timeout.
	// Clients branch on Code; Error is for humans.
	Code string `json:"code"`
	// Resubmit hints that the named program is not resident (evicted or
	// never submitted) and the client should retry with inline source.
	Resubmit bool `json:"resubmit,omitempty"`
}

// StatsResponse answers GET /v1/stats: server counters, store occupancy,
// and per-session cumulative solver work. Snapshots are consistent per
// counter (each is read atomically) and safe to poll while estimates run.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Requests     int64 `json:"requests"`
	Submits      int64 `json:"submits"`
	Estimates    int64 `json:"estimates"`
	Parametrizes int64 `json:"parametrizes"`
	Coalesced    int64 `json:"coalesced"`
	Degraded     int64 `json:"degraded"`
	Shed         int64 `json:"shed"`
	Errors       int64 `json:"errors"`
	// Panics counts requests answered by the fault barrier (typed 500s);
	// Wedged counts solves the watchdog cancelled. WedgeStreak is the
	// current run of consecutive wedges; Health mirrors /healthz ("ok" or
	// "degraded").
	Panics      int64  `json:"panics"`
	Wedged      int64  `json:"wedged"`
	WedgeStreak int64  `json:"wedge_streak"`
	Health      string `json:"health"`

	FormulaAnswered  int64 `json:"formula_answered"`
	FallbackAnswered int64 `json:"fallback_answered"`

	Store StoreStatsJSON `json:"store"`
	// Artifacts describes the process-wide content-addressed prepare
	// artifact cache (internal/prepcache) shared by every session build.
	Artifacts ArtifactStatsJSON  `json:"artifacts"`
	Sessions  []SessionStatsJSON `json:"sessions"`
}

// ArtifactStatsJSON describes the process-wide prepare-artifact cache:
// per-function CFG skeletons, block-cost tables, and packed structural row
// templates keyed by content hash of the function body.
type ArtifactStatsJSON struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
	// Persist is the disk tier's ledger when a persistence directory is
	// attached (all zero otherwise).
	Persist PersistStatsJSON `json:"persist"`
}

// PersistStatsJSON mirrors prepcache.PersistStats: the persistent
// artifact store's restores, spills, detected-and-rebuilt corruptions,
// failed writes, and clean misses.
type PersistStatsJSON struct {
	Restored    int64 `json:"restored"`
	Spilled     int64 `json:"spilled"`
	Corrupt     int64 `json:"corrupt"`
	WriteErrors int64 `json:"write_errors"`
	Misses      int64 `json:"misses"`
}

// StoreStatsJSON describes the session store.
type StoreStatsJSON struct {
	Resident    int   `json:"resident"`
	MemoryBytes int64 `json:"memory_bytes"`
	MaxSessions int   `json:"max_sessions,omitempty"`
	MemBudget   int64 `json:"mem_budget,omitempty"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Prepares    int64 `json:"prepares"`
	Resubmits   int64 `json:"resubmits"`
	Evictions   int64 `json:"evictions"`
}

// SessionStatsJSON is one resident session's cumulative ledger.
type SessionStatsJSON struct {
	Program      string `json:"program"`
	Root         string `json:"root"`
	MemoryBytes  int64  `json:"memory_bytes"`
	Estimates    int64  `json:"estimates"`
	Formula      int64  `json:"formula_answers"`
	Degraded     int64  `json:"degraded"`
	DeadlineHits int64  `json:"deadline_hits"`
	Pivots       int    `json:"pivots"`
	CacheHits    int    `json:"cache_hits"`
	WarmBases    int    `json:"warm_bases"`
	SetOutcomes  int    `json:"set_outcomes"`
	CountVectors int    `json:"count_vectors"`
	// ArtifactHits/ArtifactMisses are the prepare artifacts this session's
	// build served from (vs inserted into) the process-wide cache — a
	// re-prepared (evicted and resubmitted) session should be all hits.
	ArtifactHits   int64 `json:"artifact_hits"`
	ArtifactMisses int64 `json:"artifact_misses"`
}
