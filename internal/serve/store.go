package serve

import (
	"container/list"
	"sync"

	"cinderella/internal/ipet"
)

// entry is one resident prepared session plus the per-program request
// machinery hung off it: an estimate-coalescing flight group and the cache
// of parametric bound formulas built against this session.
type entry struct {
	hash string
	spec ProgramSpec
	root string
	sess *ipet.Session

	// prepMicros is the wall time the frontend+Prepare pipeline took when
	// this entry was (last) built — the cold-start cost the artifact cache
	// attacks. Written once before the entry is published.
	prepMicros int64

	// mem is the session's accounted footprint as of the last touch; the
	// owning shard's mem sum includes exactly this value. Guarded by the
	// shard mutex.
	mem int64

	// estFlights coalesces identical concurrent estimate requests: one
	// solver pass answers all of them.
	estFlights flightGroup

	// pmu guards params, the formulas Parametrize built on this session,
	// keyed by hash of (annotations, specs).
	pmu    sync.Mutex
	params map[string]*paramEntry
}

type paramEntry struct {
	// key is formulaKey(annotations, specs): the formula answers only
	// points asked under the exact annotation text it was built from.
	key   string
	pb    *ipet.ParamBound
	specs []ipet.ParamSpec
}

// formula returns the cached parametric bound under key, if any.
func (e *entry) formula(key string) (*paramEntry, bool) {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	pe, ok := e.params[key]
	return pe, ok
}

// formulas snapshots the cached parametric bounds (for point coverage
// scans, which must not hold pmu across an Eval).
func (e *entry) formulas() []*paramEntry {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	out := make([]*paramEntry, 0, len(e.params))
	for _, pe := range e.params {
		out = append(out, pe)
	}
	return out
}

func (e *entry) putFormula(key string, pe *paramEntry) {
	e.pmu.Lock()
	if e.params == nil {
		e.params = make(map[string]*paramEntry)
	}
	e.params[key] = pe
	e.pmu.Unlock()
}

// store keeps prepared sessions resident in sharded LRU lists under a
// session-count cap and a memory budget. Each shard is independently
// locked, so a hot lookup never contends with an unrelated program's
// eviction; tests that need exact global LRU order run with one shard.
type store struct {
	shards      []*storeShard
	maxPerShard int   // 0 = uncapped
	memPerShard int64 // 0 = unbudgeted

	// prepFlights serializes preparation per program hash across all
	// shards: a burst of requests for a new program builds its session
	// exactly once.
	prepFlights flightGroup

	ctrs *counters
}

type storeShard struct {
	mu      sync.Mutex
	entries map[string]*list.Element // values are *entry, list front = most recent
	lru     *list.List
	mem     int64
}

func newStore(shards, maxSessions int, memBudget int64, ctrs *counters) *store {
	if shards < 1 {
		shards = 1
	}
	s := &store{ctrs: ctrs}
	if maxSessions > 0 {
		s.maxPerShard = (maxSessions + shards - 1) / shards
		if s.maxPerShard < 1 {
			s.maxPerShard = 1
		}
	}
	if memBudget > 0 {
		s.memPerShard = memBudget / int64(shards)
		if s.memPerShard < 1 {
			s.memPerShard = 1
		}
	}
	for i := 0; i < shards; i++ {
		s.shards = append(s.shards, &storeShard{
			entries: make(map[string]*list.Element),
			lru:     list.New(),
		})
	}
	return s
}

func (s *store) shardOf(hash string) *storeShard {
	// The hash is hex SHA-256: its leading bytes are uniform, so a simple
	// fold shards evenly.
	var h uint32
	for i := 0; i < len(hash) && i < 8; i++ {
		h = h*31 + uint32(hash[i])
	}
	return s.shards[h%uint32(len(s.shards))]
}

// lookup returns the resident entry for hash, refreshing its LRU position
// and accounted footprint. The footprint grows as the session's solver
// caches fill, so every touch re-reads it and the shard may evict colder
// entries to stay under budget.
func (s *store) lookup(hash string) (*entry, bool) {
	sh := s.shardOf(hash)
	sh.mu.Lock()
	el, ok := sh.entries[hash]
	if !ok {
		sh.mu.Unlock()
		s.ctrs.storeMisses.Add(1)
		return nil, false
	}
	ent := el.Value.(*entry)
	sh.lru.MoveToFront(el)
	fresh := ent.sess.MemoryFootprint()
	sh.mem += fresh - ent.mem
	ent.mem = fresh
	s.evictLocked(sh)
	sh.mu.Unlock()
	s.ctrs.storeHits.Add(1)
	return ent, true
}

// insert adds a freshly prepared entry (front of the LRU) and evicts from
// the cold end to fit the caps. The newest entry is never evicted, even
// when it alone exceeds the memory budget — the request that built it must
// be answerable.
func (s *store) insert(ent *entry) {
	sh := s.shardOf(ent.hash)
	sh.mu.Lock()
	if el, ok := sh.entries[ent.hash]; ok {
		// A concurrent insert won; keep the resident entry.
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		return
	}
	ent.mem = ent.sess.MemoryFootprint()
	sh.entries[ent.hash] = sh.lru.PushFront(ent)
	sh.mem += ent.mem
	s.evictLocked(sh)
	sh.mu.Unlock()
}

// evictLocked drops cold entries until the shard fits its caps. Callers
// hold sh.mu.
func (s *store) evictLocked(sh *storeShard) {
	for sh.lru.Len() > 1 {
		over := (s.maxPerShard > 0 && sh.lru.Len() > s.maxPerShard) ||
			(s.memPerShard > 0 && sh.mem > s.memPerShard)
		if !over {
			return
		}
		el := sh.lru.Back()
		ent := el.Value.(*entry)
		sh.lru.Remove(el)
		delete(sh.entries, ent.hash)
		sh.mem -= ent.mem
		s.ctrs.evictions.Add(1)
	}
}

// remove drops the entry for hash, if resident — the chaos harness's
// mid-flight eviction point. A request already holding the entry pointer
// is unaffected; the next lookup misses and re-prepares.
func (s *store) remove(hash string) bool {
	sh := s.shardOf(hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[hash]
	if !ok {
		return false
	}
	ent := el.Value.(*entry)
	sh.lru.Remove(el)
	delete(sh.entries, hash)
	sh.mem -= ent.mem
	s.ctrs.evictions.Add(1)
	return true
}

// snapshot reports store occupancy and the resident entries, coldest last
// within each shard.
func (s *store) snapshot() (resident int, mem int64, ents []*entry) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		resident += sh.lru.Len()
		mem += sh.mem
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			ents = append(ents, el.Value.(*entry))
		}
		sh.mu.Unlock()
	}
	return resident, mem, ents
}
