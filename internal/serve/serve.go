package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cinderella/internal/asm"
	"cinderella/internal/cc"
	"cinderella/internal/constraint"
	"cinderella/internal/ipet"
	"cinderella/internal/isa"
	"cinderella/internal/prepcache"
	"cinderella/internal/serve/chaos"
)

// Config sizes the server. The zero value of each field selects the
// documented default.
type Config struct {
	// Shards is the session-store shard count (default 8). One shard gives
	// exact global LRU order, which tests rely on.
	Shards int
	// MaxSessions caps resident prepared sessions across all shards
	// (0 = uncapped).
	MaxSessions int
	// MemoryBudget caps the summed accounted session footprint in bytes
	// (0 = unbudgeted). Budgets are per shard: MemoryBudget/Shards each.
	MemoryBudget int64
	// MaxConcurrent caps simultaneous solver passes (default GOMAXPROCS);
	// MaxQueue caps requests waiting for a solve slot (default 4x).
	MaxConcurrent int
	MaxQueue      int
	// DefaultSLO applies to requests that set no slo_ms (0 = none: such
	// requests solve without a deadline and queue up to a generous bound).
	DefaultSLO time.Duration
	// Workers is the per-estimate solver concurrency (ipet Options.Workers;
	// 0 = GOMAXPROCS). Bounds are bit-identical at every worker count.
	Workers int
	// MaxBodyBytes caps request bodies (default 4 MiB).
	MaxBodyBytes int64
	// Artifacts is the prepare-artifact cache sessions build against
	// (nil = the process-wide prepcache.Default()). Attach a persistence
	// directory to it (Cache.SetPersistDir) to make prepared artifacts
	// survive restarts; tests pass an isolated cache.
	Artifacts *prepcache.Cache
	// WatchdogCeiling is the hard per-request solve ceiling, set above any
	// SLO: a solve still running past it is cancelled, its admission slot
	// freed, and the request answered with the sound anytime envelope
	// (Exact=false). 0 disables the watchdog.
	WatchdogCeiling time.Duration
	// DegradedThreshold is how many consecutive watchdog firings flip
	// /healthz to 503 degraded (default 3; any successful solve resets the
	// streak).
	DegradedThreshold int
	// Chaos arms deterministic fault injection at the server's fault
	// points. nil (production) is inert. When the artifact cache has a
	// persistence directory, arming chaos also installs disk-fault hooks
	// on it.
	Chaos *chaos.Injector
}

// Server is the cinderelld analysis service: a sharded store of prepared
// sessions fronted by admission control and request coalescing.
type Server struct {
	conf      Config
	store     *store
	adm       *admission
	ctrs      counters
	artifacts *prepcache.Cache
	start     time.Time

	// wedgeStreak counts consecutive watchdog firings; any solve that
	// finishes inside the ceiling resets it. At DegradedThreshold the
	// health endpoint reports degraded.
	wedgeStreak atomic.Int64
}

// New builds a server from the config; see Config for defaults.
func New(conf Config) *Server {
	if conf.Shards <= 0 {
		conf.Shards = 8
	}
	if conf.MaxBodyBytes <= 0 {
		conf.MaxBodyBytes = 4 << 20
	}
	if conf.DegradedThreshold <= 0 {
		conf.DegradedThreshold = 3
	}
	s := &Server{
		conf:      conf,
		adm:       newAdmission(conf.MaxConcurrent, conf.MaxQueue),
		artifacts: conf.Artifacts,
		start:     time.Now(),
	}
	if s.artifacts == nil {
		s.artifacts = prepcache.Default()
	}
	s.store = newStore(conf.Shards, conf.MaxSessions, conf.MemoryBudget, &s.ctrs)
	if conf.Chaos != nil {
		// Route the artifact cache's disk I/O through the injector: failed
		// spills and bit-flipped reads, at the injector's deterministic
		// rates.
		inj := conf.Chaos
		s.artifacts.SetPersistHooks(prepcache.PersistHooks{
			BeforeWrite: func(kind string) error {
				if inj.Fire(chaos.DiskWrite) {
					return errors.New("chaos: injected disk write failure")
				}
				return nil
			},
			AfterRead: func(kind string, raw []byte) []byte {
				if inj.Fire(chaos.DiskCorrupt) && len(raw) > 0 {
					out := append([]byte(nil), raw...)
					out[len(out)/2] ^= 0x5a
					return out
				}
				return raw
			},
		})
	}
	return s
}

// Handler returns the HTTP API:
//
//	POST /v1/programs     submit a program, get its hash
//	POST /v1/estimate     one timing estimate (annotations or parameter point)
//	POST /v1/parametrize  build a piecewise-linear bound formula
//	GET  /v1/stats        server, store, and per-session counters
//	GET  /healthz         liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/programs", s.protect(s.handleSubmit))
	mux.HandleFunc("POST /v1/estimate", s.protect(s.handleEstimate))
	mux.HandleFunc("POST /v1/parametrize", s.protect(s.handleParametrize))
	mux.HandleFunc("GET /v1/stats", s.protect(s.handleStats))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// protect is the request fault barrier: a panic anywhere in a handler
// becomes a typed 500 envelope instead of killing the process. Panics
// inside a flight are already converted by runFlight; this catches
// everything outside one (decode, resolve plumbing, response encoding).
func (s *Server) protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.ctrs.panics.Add(1)
				s.writeErr(w, http.StatusInternalServerError, &ErrorResponse{
					Error: fmt.Sprintf("internal panic: %v", rec),
					Code:  CodePanic,
				})
			}
		}()
		h(w, r)
	}
}

// handleHealthz reports liveness: plain "ok" while healthy, a 503 JSON
// body once DegradedThreshold consecutive solves have hit the watchdog
// ceiling — the signal a load balancer drains on.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	streak := s.wedgeStreak.Load()
	if streak >= int64(s.conf.DegradedThreshold) {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":       "degraded",
			"wedge_streak": streak,
		})
		return
	}
	w.Write([]byte("ok\n"))
}

// normalize fills a spec's defaulted fields; the hash is computed over the
// normalized form so "root omitted" and "root main" are the same program.
func (sp *ProgramSpec) normalize() {
	if sp.Root == "" {
		sp.Root = "main"
	}
	if sp.Profile == "" {
		sp.Profile = "i960kb"
	}
}

// hashSpec names a normalized program spec: SHA-256 over every field that
// shapes the prepared session. Certify is deliberately part of the
// identity — certifying sessions keep presolve-free warm bases, so a
// certified and an uncertified analysis of the same text are distinct
// resident sessions rather than one session serving mixed cache entries.
func hashSpec(sp ProgramSpec) string {
	h := sha256.New()
	kind, text := "src", sp.Source
	if sp.Asm != "" {
		kind, text = "asm", sp.Asm
	}
	fmt.Fprintf(h, "%s|%s|%t|%t|%s|%t|", kind, sp.Root, sp.Optimize, sp.Split, sp.Profile, sp.Certify)
	h.Write([]byte(text))
	return hex.EncodeToString(h.Sum(nil))
}

// buildSession runs the one-shot front end for a spec: compile or
// assemble, reconstruct CFGs, prepare the session.
func (s *Server) buildSession(sp ProgramSpec) (*ipet.Session, error) {
	return buildSession(sp, s.conf.Workers, s.artifacts)
}

func buildSession(sp ProgramSpec, workers int, artifacts *prepcache.Cache) (*ipet.Session, error) {
	timing, ok := isa.Profiles()[sp.Profile]
	if !ok {
		return nil, fmt.Errorf("unknown timing profile %q", sp.Profile)
	}
	var (
		exe *asm.Executable
		err error
	)
	// The built image is itself a content-addressed artifact: identical
	// program text (under the same frontend mode) is served from memory or
	// the persistent tier, so eviction churn and daemon restarts skip the
	// compile/assemble frontend entirely.
	switch {
	case sp.Source != "" && sp.Asm != "":
		return nil, errors.New("give source or asm, not both")
	case sp.Source != "":
		mode, build := "cc", cc.Build
		if sp.Optimize {
			mode, build = "cc-opt", cc.BuildOptimized
		}
		exe, _, err = artifacts.Executable(mode, sp.Source, func() (*asm.Executable, error) {
			e, _, berr := build(sp.Source)
			return e, berr
		})
	case sp.Asm != "":
		exe, _, err = artifacts.Executable("asm", sp.Asm, func() (*asm.Executable, error) {
			return asm.Assemble(sp.Asm)
		})
	default:
		return nil, errors.New("no program text")
	}
	if err != nil {
		return nil, err
	}
	// Content-addressed CFG reconstruction: a resubmitted or edited program
	// reuses every function body the process has built before (eviction
	// churn and one-function edits rebuild only what changed), and — with a
	// persistence directory attached — every body any prior process built.
	prog, err := artifacts.BuildProgram(exe)
	if err != nil {
		return nil, err
	}
	opts := ipet.DefaultOptions()
	opts.SplitFirstIteration = sp.Split
	opts.March.Timing = timing
	opts.Certify = sp.Certify
	opts.Workers = workers
	opts.Artifacts = artifacts
	return ipet.Prepare(prog, sp.Root, opts)
}

// resolve turns a request's program reference — hash, inline text, or both
// — into a resident entry, preparing (or re-preparing, after eviction) at
// most once per hash however many requests race. coldStart reports that
// this request had to prepare. On failure it returns the HTTP status and
// error body to send.
func (s *Server) resolve(hash string, sp ProgramSpec) (ent *entry, coldStart bool, status int, eresp *ErrorResponse) {
	sp.normalize()
	hasText := sp.Source != "" || sp.Asm != ""
	if sp.Source != "" && sp.Asm != "" {
		return nil, false, http.StatusBadRequest, &ErrorResponse{Error: "give source or asm, not both"}
	}
	if hasText {
		hash = hashSpec(sp)
	} else if hash == "" {
		return nil, false, http.StatusBadRequest, &ErrorResponse{Error: "no program: give a program hash or inline source/asm"}
	}
	if ent, ok := s.store.lookup(hash); ok {
		return ent, false, 0, nil
	}
	if !hasText {
		return nil, false, http.StatusNotFound, &ErrorResponse{
			Error:    fmt.Sprintf("program %.12s… is not resident (never submitted, or evicted)", hash),
			Code:     CodeNotResident,
			Resubmit: true,
		}
	}
	v, err, _ := s.store.prepFlights.Do(hash, func() (any, error) {
		// Double-check under the flight: a request that lost the race to a
		// just-finished flight must not rebuild.
		if ent, ok := s.store.lookup(hash); ok {
			return ent, nil
		}
		prepStart := time.Now()
		sess, err := s.buildSession(sp)
		if err != nil {
			return nil, err
		}
		ent := &entry{hash: hash, spec: sp, root: sp.Root, sess: sess,
			prepMicros: time.Since(prepStart).Microseconds()}
		s.store.insert(ent)
		s.ctrs.prepares.Add(1)
		return ent, nil
	})
	if err != nil {
		status, eresp := errEnvelope(err)
		return nil, false, status, eresp
	}
	return v.(*entry), true, 0, nil
}

// Machine-readable error codes, one per failure class; every non-2xx body
// carries exactly one. Clients branch on Code, never on message text.
const (
	// CodeBadBody: the request body failed to decode (malformed JSON,
	// unknown fields).
	CodeBadBody = "bad_body"
	// CodeTooLarge: the request body exceeded MaxBodyBytes (413).
	CodeTooLarge = "too_large"
	// CodeBadRequest: a well-formed request the analysis rejected (unknown
	// profile, missing program text, assembler/compiler errors, missing
	// loop bounds).
	CodeBadRequest = "bad_request"
	// CodeNotResident: the named program hash is not in the store (404);
	// Resubmit is set — retry with inline source.
	CodeNotResident = "not_resident"
	// CodeAnnotation: the annotation file failed to parse or referenced
	// unknown blocks (ipet.AnnotationError).
	CodeAnnotation = "annotation"
	// CodeInfeasible: the annotations contradict the structural flow
	// system (ipet.InfeasibleError, 422).
	CodeInfeasible = "infeasible"
	// CodeUnboundSymbol: the annotations use symbols with no binding and
	// no parametrization (ipet.UnboundSymbolError).
	CodeUnboundSymbol = "unbound_symbol"
	// CodePanic: a panic was recovered serving the request (500). The
	// process survives; the request does not.
	CodePanic = "panic"
	// CodeWatchdog: the solve hit the watchdog ceiling and even the
	// envelope fallback failed (503). The bound was not computed.
	CodeWatchdog = "watchdog_timeout"
)

// errEnvelope maps an error crossing the handler boundary to its HTTP
// status and typed envelope: the one place the error taxonomy lives.
func errEnvelope(err error) (int, *ErrorResponse) {
	var (
		pe *panicError
		ie *ipet.InfeasibleError
		ae *ipet.AnnotationError
		ue *ipet.UnboundSymbolError
	)
	switch {
	case errors.As(err, &pe):
		return http.StatusInternalServerError, &ErrorResponse{Error: pe.Error(), Code: CodePanic}
	case errors.Is(err, errWedged), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, &ErrorResponse{Error: err.Error(), Code: CodeWatchdog}
	case errors.As(err, &ie):
		return http.StatusUnprocessableEntity, &ErrorResponse{Error: err.Error(), Code: CodeInfeasible}
	case errors.As(err, &ae):
		return http.StatusBadRequest, &ErrorResponse{Error: err.Error(), Code: CodeAnnotation}
	case errors.As(err, &ue):
		return http.StatusBadRequest, &ErrorResponse{Error: err.Error(), Code: CodeUnboundSymbol}
	}
	return http.StatusBadRequest, &ErrorResponse{Error: err.Error(), Code: CodeBadRequest}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, status int, eresp *ErrorResponse) {
	s.ctrs.errors.Add(1)
	if eresp.Code == "" {
		eresp.Code = CodeBadRequest
	}
	s.writeJSON(w, status, eresp)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	s.ctrs.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.conf.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeErr(w, http.StatusRequestEntityTooLarge, &ErrorResponse{
				Error: fmt.Sprintf("request body exceeds the %d-byte cap", mbe.Limit),
				Code:  CodeTooLarge,
			})
			return false
		}
		s.writeErr(w, http.StatusBadRequest, &ErrorResponse{Error: "bad request body: " + err.Error(), Code: CodeBadBody})
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp ProgramSpec
	if !s.decode(w, r, &sp) {
		return
	}
	s.ctrs.submits.Add(1)
	if sp.Source == "" && sp.Asm == "" {
		s.writeErr(w, http.StatusBadRequest, &ErrorResponse{Error: "no program text: give source or asm"})
		return
	}
	ent, cold, status, eresp := s.resolve("", sp)
	if eresp != nil {
		s.writeErr(w, status, eresp)
		return
	}
	s.writeJSON(w, http.StatusOK, SubmitResponse{
		Program:     ent.hash,
		Root:        ent.root,
		Cached:      !cold,
		MemoryBytes: ent.sess.MemoryFootprint(),
	})
}

// estOutcome is one solver pass's result, shared by every coalesced caller.
type estOutcome struct {
	est      *ipet.Estimate
	shed     bool
	wedged   bool
	answered string
}

// errWedged is returned when a solve hit the watchdog ceiling and the
// envelope fallback also failed: the server could not even produce a
// sound bracket.
var errWedged = errors.New("solve exceeded the watchdog ceiling")

// solveWithWatchdog runs the estimate under the configured hard ceiling.
// The solve runs in its own goroutine against a cancellable context; if
// the ceiling fires first the solve is cancelled, the admission slot is
// freed immediately (release is once-guarded, so the wedged goroutine's
// own deferred release becomes a no-op), and the caller is answered with
// a freshly computed anytime envelope — sound, Exact=false — from a
// token-deadline pass. A solve that never honors cancellation leaks its
// goroutine by design; the slot and the client do not wait for it.
func (s *Server) solveWithWatchdog(ctx context.Context, ent *entry, file *constraint.File, an *ipet.Analyzer, release func()) (*ipet.Estimate, bool, error) {
	var relOnce sync.Once
	rel := func() { relOnce.Do(release) }

	if s.conf.WatchdogCeiling <= 0 {
		defer rel()
		if s.conf.Chaos.Fire(chaos.SolveSlow) {
			time.Sleep(s.conf.Chaos.SlowSolveDuration())
		}
		est, err := an.EstimateContext(ctx)
		if err == nil {
			s.wedgeStreak.Store(0)
		}
		return est, false, err
	}

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type solveResult struct {
		est *ipet.Estimate
		err error
	}
	ch := make(chan solveResult, 1)
	go func() {
		defer rel()
		defer func() {
			if r := recover(); r != nil {
				ch <- solveResult{nil, &panicError{val: r}}
			}
		}()
		if s.conf.Chaos.Fire(chaos.SolveSlow) {
			// A wedge ignores cancellation — exactly the failure the
			// watchdog exists for.
			time.Sleep(s.conf.Chaos.SlowSolveDuration())
		}
		est, err := an.EstimateContext(sctx)
		ch <- solveResult{est, err}
	}()

	timer := time.NewTimer(s.conf.WatchdogCeiling)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err == nil {
			s.wedgeStreak.Store(0)
		}
		return res.est, false, res.err
	case <-timer.C:
	}

	// Wedged: cancel the solve, free its slot, and answer soundly anyway.
	cancel()
	rel()
	s.ctrs.wedged.Add(1)
	s.wedgeStreak.Add(1)
	env, err := s.envelopeAnswer(ent, file)
	if err != nil {
		return nil, true, fmt.Errorf("%w; envelope fallback failed: %v", errWedged, err)
	}
	return env, true, nil
}

// envelopeAnswer computes the sound anytime envelope for the request with
// a fresh analyzer under the token shed deadline: the same degraded-but-
// honest answer an overloaded admission produces, used when the watchdog
// killed the real solve. It deliberately ignores the (possibly already
// cancelled) request context — the pass is bounded by shedDeadline.
func (s *Server) envelopeAnswer(ent *entry, file *constraint.File) (*ipet.Estimate, error) {
	an, err := ent.sess.Analyzer(file)
	if err != nil {
		return nil, err
	}
	an.SetAnytime(shedDeadline, 0)
	return an.EstimateContext(context.Background())
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	startAt := time.Now()
	var req EstimateRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.ctrs.estimates.Add(1)
	ent, cold, status, eresp := s.resolve(req.Program, req.ProgramSpec)
	if eresp != nil {
		s.writeErr(w, status, eresp)
		return
	}
	if cold && req.Program != "" {
		s.ctrs.resubmits.Add(1)
	}
	// Chaos: evict the session out from under this request. The request
	// holds its entry pointer and must still answer; the next request for
	// the hash re-prepares (or restores from the artifact store).
	if s.conf.Chaos.Fire(chaos.Evict) {
		s.store.remove(ent.hash)
	}
	file, err := constraint.ParseNamed("annotations", req.Annotations)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, &ErrorResponse{Error: err.Error(), Code: CodeAnnotation})
		return
	}

	slo := time.Duration(req.SLOMillis * float64(time.Millisecond))
	if slo <= 0 {
		slo = s.conf.DefaultSLO
	}

	// Parametric route: a point covered by a formula this session already
	// built is answered without a solve slot — the formula evaluation is a
	// handful of affine comparisons.
	if len(req.Params) > 0 {
		if pe, point, ok := coveringFormula(ent, req.Annotations, req.Params); ok {
			est, err := pe.pb.EstimateAtContext(r.Context(), point)
			if err != nil {
				s.writeEstimateErr(w, err)
				return
			}
			answered := "formula"
			if est.Stats.ParamFallbacks > 0 {
				answered = "fallback"
				s.ctrs.fallbackAnswered.Add(1)
			} else {
				s.ctrs.formulaAnswered.Add(1)
			}
			s.writeEstimate(w, &req, ent, est, "ok", answered, false, cold, startAt)
			return
		}
		// No covering formula: bind the symbols and solve concretely.
		file, err = file.Bind(req.Params)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, &ErrorResponse{Error: err.Error(), Code: CodeAnnotation})
			return
		}
	}

	// Coalesce identical concurrent requests onto one solver pass. The key
	// covers everything that shapes the answer; WantStats is presentation
	// and deliberately excluded.
	key := coalesceKey(&req)
	v, err, shared := ent.estFlights.Do(key, func() (any, error) {
		deadline, release, shed := s.adm.admit(r.Context(), slo)
		an, err := ent.sess.Analyzer(file)
		if err != nil {
			release()
			return nil, err
		}
		if missing := an.MissingLoopBounds(); len(missing) > 0 {
			release()
			return nil, fmt.Errorf("loops without bound annotations: %s", strings.Join(missing, "; "))
		}
		if deadline > 0 || req.Budget > 0 {
			an.SetAnytime(deadline, req.Budget)
		}
		if s.conf.Chaos.Fire(chaos.SolvePanic) {
			release()
			panic("chaos: injected solver panic")
		}
		est, wedged, err := s.solveWithWatchdog(r.Context(), ent, file, an, release)
		if err != nil {
			return nil, err
		}
		if shed {
			s.ctrs.shed.Add(1)
		}
		if !est.WCET.Exact || !est.BCET.Exact {
			s.ctrs.degraded.Add(1)
		}
		return &estOutcome{est: est, shed: shed, wedged: wedged, answered: "solver"}, nil
	})
	if err != nil {
		s.writeEstimateErr(w, err)
		return
	}
	if shared {
		s.ctrs.coalesced.Add(1)
	}
	out := v.(*estOutcome)
	admission := "ok"
	if out.shed {
		admission = "shed"
	}
	if out.wedged {
		admission = "watchdog"
	}
	s.writeEstimate(w, &req, ent, out.est, admission, out.answered, shared, cold, startAt)
}

func (s *Server) writeEstimate(w http.ResponseWriter, req *EstimateRequest, ent *entry, est *ipet.Estimate, admission, answered string, coalesced, cold bool, startAt time.Time) {
	exact := est.WCET.Exact && est.BCET.Exact
	resp := EstimateResponse{
		Program:         ent.hash,
		WCET:            est.WCET,
		BCET:            est.BCET,
		NumSets:         est.NumSets,
		PrunedSets:      est.PrunedSets,
		SolvedSets:      est.SolvedSets,
		AllRootIntegral: est.AllRootIntegral,
		Exact:           exact,
		Degraded:        !exact,
		Admission:       admission,
		AnsweredBy:      answered,
		Coalesced:       coalesced,
		ColdStart:       cold,
		ElapsedMicros:   time.Since(startAt).Microseconds(),
	}
	if cold {
		resp.PrepareMicros = ent.prepMicros
	}
	if req.WantStats {
		st := est.Stats
		resp.Stats = &st
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// writeEstimateErr maps analysis errors through the central taxonomy:
// infeasible annotations are the client's contradiction (422), annotation
// and unbound-symbol errors are bad requests with their own codes, a
// recovered panic is a typed 500, a wedged solve with no envelope is a
// typed 503.
func (s *Server) writeEstimateErr(w http.ResponseWriter, err error) {
	status, eresp := errEnvelope(err)
	if eresp.Code == CodePanic {
		s.ctrs.panics.Add(1)
	}
	s.writeErr(w, status, eresp)
}

func (s *Server) handleParametrize(w http.ResponseWriter, r *http.Request) {
	startAt := time.Now()
	var req ParametrizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.ctrs.parametrizes.Add(1)
	ent, cold, status, eresp := s.resolve(req.Program, req.ProgramSpec)
	if eresp != nil {
		s.writeErr(w, status, eresp)
		return
	}
	if len(req.Specs) == 0 {
		s.writeErr(w, http.StatusBadRequest, &ErrorResponse{Error: "no parameter specs"})
		return
	}
	file, err := constraint.ParseNamed("annotations", req.Annotations)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, &ErrorResponse{Error: err.Error(), Code: CodeAnnotation})
		return
	}
	specs := make([]ipet.ParamSpec, len(req.Specs))
	for i, sp := range req.Specs {
		specs[i] = ipet.ParamSpec{Name: sp.Name, Lo: sp.Lo, Hi: sp.Hi}
	}
	key := formulaKey(req.Annotations, specs)
	if pe, ok := ent.formula(key); ok {
		s.writeParametrize(w, ent, pe.pb, true, cold, startAt)
		return
	}
	// One enumeration per identical concurrent request; reuse the entry's
	// flight group under a distinct key space.
	v, err, _ := ent.estFlights.Do("param|"+key, func() (any, error) {
		if pe, ok := ent.formula(key); ok {
			return pe.pb, nil
		}
		// The watchdog ceiling bounds region enumeration too: an
		// adversarial domain cannot pin the flight forever. Enumeration
		// honors cancellation, so a plain deadline context suffices here
		// (no envelope fallback exists for formulas — the caller gets the
		// typed watchdog error and can fall back to point estimates).
		pctx := r.Context()
		if ceiling := s.conf.WatchdogCeiling; ceiling > 0 {
			var cancel context.CancelFunc
			pctx, cancel = context.WithTimeout(pctx, ceiling)
			defer cancel()
		}
		pb, err := ent.sess.ParametrizeContext(pctx, file, specs)
		if err != nil {
			return nil, err
		}
		ent.putFormula(key, &paramEntry{key: key, pb: pb, specs: specs})
		return pb, nil
	})
	if err != nil {
		s.writeEstimateErr(w, err)
		return
	}
	s.writeParametrize(w, ent, v.(*ipet.ParamBound), false, cold, startAt)
}

func (s *Server) writeParametrize(w http.ResponseWriter, ent *entry, pb *ipet.ParamBound, cached, cold bool, startAt time.Time) {
	s.writeJSON(w, http.StatusOK, ParametrizeResponse{
		Program:   ent.hash,
		Formula:   pb.Describe(),
		Pieces:    pb.Pieces(),
		Certified: pb.Certified(),
		Cached:    cached,
		ColdStart: cold,
		ElapsedUs: time.Since(startAt).Microseconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.ctrs.requests.Add(1)
	resident, mem, ents := s.store.snapshot()
	resp := StatsResponse{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Requests:         s.ctrs.requests.Load(),
		Submits:          s.ctrs.submits.Load(),
		Estimates:        s.ctrs.estimates.Load(),
		Parametrizes:     s.ctrs.parametrizes.Load(),
		Coalesced:        s.ctrs.coalesced.Load(),
		Degraded:         s.ctrs.degraded.Load(),
		Shed:             s.ctrs.shed.Load(),
		Errors:           s.ctrs.errors.Load(),
		Panics:           s.ctrs.panics.Load(),
		Wedged:           s.ctrs.wedged.Load(),
		WedgeStreak:      s.wedgeStreak.Load(),
		FormulaAnswered:  s.ctrs.formulaAnswered.Load(),
		FallbackAnswered: s.ctrs.fallbackAnswered.Load(),
		Store: StoreStatsJSON{
			Resident:    resident,
			MemoryBytes: mem,
			MaxSessions: s.conf.MaxSessions,
			MemBudget:   s.conf.MemoryBudget,
			Hits:        s.ctrs.storeHits.Load(),
			Misses:      s.ctrs.storeMisses.Load(),
			Prepares:    s.ctrs.prepares.Load(),
			Resubmits:   s.ctrs.resubmits.Load(),
			Evictions:   s.ctrs.evictions.Load(),
		},
	}
	if s.wedgeStreak.Load() >= int64(s.conf.DegradedThreshold) {
		resp.Health = "degraded"
	} else {
		resp.Health = "ok"
	}
	art := s.artifacts.Snapshot()
	resp.Artifacts = ArtifactStatsJSON{
		Hits:    art.Hits,
		Misses:  art.Misses,
		Bytes:   art.Bytes,
		Entries: art.Entries,
		Persist: PersistStatsJSON{
			Restored:    art.Persist.Restored,
			Spilled:     art.Persist.Spilled,
			Corrupt:     art.Persist.Corrupt,
			WriteErrors: art.Persist.WriteErrors,
			Misses:      art.Persist.Misses,
		},
	}
	for _, ent := range ents {
		tot := ent.sess.Totals()
		bases, solves, finishes := ent.sess.CacheStats()
		ahits, amisses := ent.sess.ArtifactStats()
		resp.Sessions = append(resp.Sessions, SessionStatsJSON{
			Program:        ent.hash,
			Root:           ent.root,
			MemoryBytes:    ent.sess.MemoryFootprint(),
			Estimates:      tot.Estimates,
			Formula:        tot.FormulaAnswers,
			Degraded:       tot.Degraded,
			DeadlineHits:   tot.DeadlineHits,
			Pivots:         tot.Stats.Pivots,
			CacheHits:      tot.Stats.CacheHits,
			WarmBases:      bases,
			SetOutcomes:    solves,
			CountVectors:   finishes,
			ArtifactHits:   ahits,
			ArtifactMisses: amisses,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// coveringFormula finds a cached parametric bound whose declared domains
// exactly name the request's parameters and contain the point. The point
// vector comes back in the formula's spec order.
func coveringFormula(ent *entry, annots string, params map[string]int64) (*paramEntry, []int64, bool) {
	for _, pe := range ent.formulas() {
		if len(pe.specs) != len(params) {
			continue
		}
		// The formula is only valid for the annotation text it was built
		// from.
		if formulaKey(annots, pe.specs) != pe.key {
			continue
		}
		point := make([]int64, len(pe.specs))
		ok := true
		for k, sp := range pe.specs {
			v, have := params[sp.Name]
			if !have || v < sp.Lo || v > sp.Hi {
				ok = false
				break
			}
			point[k] = v
		}
		if ok {
			return pe, point, true
		}
	}
	return nil, nil, false
}

// formulaKey names a parametric formula by the annotation text and the
// ordered domain declarations.
func formulaKey(annots string, specs []ipet.ParamSpec) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|", len(annots))
	h.Write([]byte(annots))
	for _, sp := range specs {
		fmt.Fprintf(h, "|%s=%d..%d", sp.Name, sp.Lo, sp.Hi)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// coalesceKey names everything that shapes an estimate's answer:
// annotations, bound parameters, SLO, and budget.
func coalesceKey(req *EstimateRequest) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|", len(req.Annotations))
	h.Write([]byte(req.Annotations))
	names := make([]string, 0, len(req.Params))
	for name := range req.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "|%s=%d", name, req.Params[name])
	}
	fmt.Fprintf(h, "|slo=%g|budget=%d", req.SLOMillis, req.Budget)
	return hex.EncodeToString(h.Sum(nil))
}
