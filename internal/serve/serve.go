package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"cinderella/internal/asm"
	"cinderella/internal/cc"
	"cinderella/internal/constraint"
	"cinderella/internal/ipet"
	"cinderella/internal/isa"
	"cinderella/internal/prepcache"
)

// Config sizes the server. The zero value of each field selects the
// documented default.
type Config struct {
	// Shards is the session-store shard count (default 8). One shard gives
	// exact global LRU order, which tests rely on.
	Shards int
	// MaxSessions caps resident prepared sessions across all shards
	// (0 = uncapped).
	MaxSessions int
	// MemoryBudget caps the summed accounted session footprint in bytes
	// (0 = unbudgeted). Budgets are per shard: MemoryBudget/Shards each.
	MemoryBudget int64
	// MaxConcurrent caps simultaneous solver passes (default GOMAXPROCS);
	// MaxQueue caps requests waiting for a solve slot (default 4x).
	MaxConcurrent int
	MaxQueue      int
	// DefaultSLO applies to requests that set no slo_ms (0 = none: such
	// requests solve without a deadline and queue up to a generous bound).
	DefaultSLO time.Duration
	// Workers is the per-estimate solver concurrency (ipet Options.Workers;
	// 0 = GOMAXPROCS). Bounds are bit-identical at every worker count.
	Workers int
	// MaxBodyBytes caps request bodies (default 4 MiB).
	MaxBodyBytes int64
}

// Server is the cinderelld analysis service: a sharded store of prepared
// sessions fronted by admission control and request coalescing.
type Server struct {
	conf  Config
	store *store
	adm   *admission
	ctrs  counters
	start time.Time
}

// New builds a server from the config; see Config for defaults.
func New(conf Config) *Server {
	if conf.Shards <= 0 {
		conf.Shards = 8
	}
	if conf.MaxBodyBytes <= 0 {
		conf.MaxBodyBytes = 4 << 20
	}
	s := &Server{
		conf:  conf,
		adm:   newAdmission(conf.MaxConcurrent, conf.MaxQueue),
		start: time.Now(),
	}
	s.store = newStore(conf.Shards, conf.MaxSessions, conf.MemoryBudget, &s.ctrs)
	return s
}

// Handler returns the HTTP API:
//
//	POST /v1/programs     submit a program, get its hash
//	POST /v1/estimate     one timing estimate (annotations or parameter point)
//	POST /v1/parametrize  build a piecewise-linear bound formula
//	GET  /v1/stats        server, store, and per-session counters
//	GET  /healthz         liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/programs", s.handleSubmit)
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/parametrize", s.handleParametrize)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// normalize fills a spec's defaulted fields; the hash is computed over the
// normalized form so "root omitted" and "root main" are the same program.
func (sp *ProgramSpec) normalize() {
	if sp.Root == "" {
		sp.Root = "main"
	}
	if sp.Profile == "" {
		sp.Profile = "i960kb"
	}
}

// hashSpec names a normalized program spec: SHA-256 over every field that
// shapes the prepared session. Certify is deliberately part of the
// identity — certifying sessions keep presolve-free warm bases, so a
// certified and an uncertified analysis of the same text are distinct
// resident sessions rather than one session serving mixed cache entries.
func hashSpec(sp ProgramSpec) string {
	h := sha256.New()
	kind, text := "src", sp.Source
	if sp.Asm != "" {
		kind, text = "asm", sp.Asm
	}
	fmt.Fprintf(h, "%s|%s|%t|%t|%s|%t|", kind, sp.Root, sp.Optimize, sp.Split, sp.Profile, sp.Certify)
	h.Write([]byte(text))
	return hex.EncodeToString(h.Sum(nil))
}

// buildSession runs the one-shot front end for a spec: compile or
// assemble, reconstruct CFGs, prepare the session.
func buildSession(sp ProgramSpec, workers int) (*ipet.Session, error) {
	timing, ok := isa.Profiles()[sp.Profile]
	if !ok {
		return nil, fmt.Errorf("unknown timing profile %q", sp.Profile)
	}
	var (
		exe *asm.Executable
		err error
	)
	switch {
	case sp.Source != "" && sp.Asm != "":
		return nil, errors.New("give source or asm, not both")
	case sp.Source != "":
		build := cc.Build
		if sp.Optimize {
			build = cc.BuildOptimized
		}
		exe, _, err = build(sp.Source)
	case sp.Asm != "":
		exe, err = asm.Assemble(sp.Asm)
	default:
		return nil, errors.New("no program text")
	}
	if err != nil {
		return nil, err
	}
	// Content-addressed CFG reconstruction: a resubmitted or edited program
	// reuses every function body the process has built before (eviction
	// churn and one-function edits rebuild only what changed).
	prog, err := prepcache.Default().BuildProgram(exe)
	if err != nil {
		return nil, err
	}
	opts := ipet.DefaultOptions()
	opts.SplitFirstIteration = sp.Split
	opts.March.Timing = timing
	opts.Certify = sp.Certify
	opts.Workers = workers
	return ipet.Prepare(prog, sp.Root, opts)
}

// resolve turns a request's program reference — hash, inline text, or both
// — into a resident entry, preparing (or re-preparing, after eviction) at
// most once per hash however many requests race. coldStart reports that
// this request had to prepare. On failure it returns the HTTP status and
// error body to send.
func (s *Server) resolve(hash string, sp ProgramSpec) (ent *entry, coldStart bool, status int, eresp *ErrorResponse) {
	sp.normalize()
	hasText := sp.Source != "" || sp.Asm != ""
	if sp.Source != "" && sp.Asm != "" {
		return nil, false, http.StatusBadRequest, &ErrorResponse{Error: "give source or asm, not both"}
	}
	if hasText {
		hash = hashSpec(sp)
	} else if hash == "" {
		return nil, false, http.StatusBadRequest, &ErrorResponse{Error: "no program: give a program hash or inline source/asm"}
	}
	if ent, ok := s.store.lookup(hash); ok {
		return ent, false, 0, nil
	}
	if !hasText {
		return nil, false, http.StatusNotFound, &ErrorResponse{
			Error:    fmt.Sprintf("program %.12s… is not resident (never submitted, or evicted)", hash),
			Resubmit: true,
		}
	}
	v, err, _ := s.store.prepFlights.Do(hash, func() (any, error) {
		// Double-check under the flight: a request that lost the race to a
		// just-finished flight must not rebuild.
		if ent, ok := s.store.lookup(hash); ok {
			return ent, nil
		}
		prepStart := time.Now()
		sess, err := buildSession(sp, s.conf.Workers)
		if err != nil {
			return nil, err
		}
		ent := &entry{hash: hash, spec: sp, root: sp.Root, sess: sess,
			prepMicros: time.Since(prepStart).Microseconds()}
		s.store.insert(ent)
		s.ctrs.prepares.Add(1)
		return ent, nil
	})
	if err != nil {
		return nil, false, http.StatusBadRequest, &ErrorResponse{Error: err.Error()}
	}
	return v.(*entry), true, 0, nil
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, status int, eresp *ErrorResponse) {
	s.ctrs.errors.Add(1)
	s.writeJSON(w, status, eresp)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	s.ctrs.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.conf.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeErr(w, http.StatusBadRequest, &ErrorResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp ProgramSpec
	if !s.decode(w, r, &sp) {
		return
	}
	s.ctrs.submits.Add(1)
	if sp.Source == "" && sp.Asm == "" {
		s.writeErr(w, http.StatusBadRequest, &ErrorResponse{Error: "no program text: give source or asm"})
		return
	}
	ent, cold, status, eresp := s.resolve("", sp)
	if eresp != nil {
		s.writeErr(w, status, eresp)
		return
	}
	s.writeJSON(w, http.StatusOK, SubmitResponse{
		Program:     ent.hash,
		Root:        ent.root,
		Cached:      !cold,
		MemoryBytes: ent.sess.MemoryFootprint(),
	})
}

// estOutcome is one solver pass's result, shared by every coalesced caller.
type estOutcome struct {
	est      *ipet.Estimate
	shed     bool
	answered string
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	startAt := time.Now()
	var req EstimateRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.ctrs.estimates.Add(1)
	ent, cold, status, eresp := s.resolve(req.Program, req.ProgramSpec)
	if eresp != nil {
		s.writeErr(w, status, eresp)
		return
	}
	if cold && req.Program != "" {
		s.ctrs.resubmits.Add(1)
	}
	file, err := constraint.ParseNamed("annotations", req.Annotations)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, &ErrorResponse{Error: err.Error()})
		return
	}

	slo := time.Duration(req.SLOMillis * float64(time.Millisecond))
	if slo <= 0 {
		slo = s.conf.DefaultSLO
	}

	// Parametric route: a point covered by a formula this session already
	// built is answered without a solve slot — the formula evaluation is a
	// handful of affine comparisons.
	if len(req.Params) > 0 {
		if pe, point, ok := coveringFormula(ent, req.Annotations, req.Params); ok {
			est, err := pe.pb.EstimateAtContext(r.Context(), point)
			if err != nil {
				s.writeEstimateErr(w, err)
				return
			}
			answered := "formula"
			if est.Stats.ParamFallbacks > 0 {
				answered = "fallback"
				s.ctrs.fallbackAnswered.Add(1)
			} else {
				s.ctrs.formulaAnswered.Add(1)
			}
			s.writeEstimate(w, &req, ent, est, "ok", answered, false, cold, startAt)
			return
		}
		// No covering formula: bind the symbols and solve concretely.
		file, err = file.Bind(req.Params)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, &ErrorResponse{Error: err.Error()})
			return
		}
	}

	// Coalesce identical concurrent requests onto one solver pass. The key
	// covers everything that shapes the answer; WantStats is presentation
	// and deliberately excluded.
	key := coalesceKey(&req)
	v, err, shared := ent.estFlights.Do(key, func() (any, error) {
		deadline, release, shed := s.adm.admit(r.Context(), slo)
		defer release()
		an, err := ent.sess.Analyzer(file)
		if err != nil {
			return nil, err
		}
		if missing := an.MissingLoopBounds(); len(missing) > 0 {
			return nil, fmt.Errorf("loops without bound annotations: %s", strings.Join(missing, "; "))
		}
		if deadline > 0 || req.Budget > 0 {
			an.SetAnytime(deadline, req.Budget)
		}
		est, err := an.EstimateContext(r.Context())
		if err != nil {
			return nil, err
		}
		if shed {
			s.ctrs.shed.Add(1)
		}
		if !est.WCET.Exact || !est.BCET.Exact {
			s.ctrs.degraded.Add(1)
		}
		return &estOutcome{est: est, shed: shed, answered: "solver"}, nil
	})
	if err != nil {
		s.writeEstimateErr(w, err)
		return
	}
	if shared {
		s.ctrs.coalesced.Add(1)
	}
	out := v.(*estOutcome)
	admission := "ok"
	if out.shed {
		admission = "shed"
	}
	s.writeEstimate(w, &req, ent, out.est, admission, out.answered, shared, cold, startAt)
}

func (s *Server) writeEstimate(w http.ResponseWriter, req *EstimateRequest, ent *entry, est *ipet.Estimate, admission, answered string, coalesced, cold bool, startAt time.Time) {
	exact := est.WCET.Exact && est.BCET.Exact
	resp := EstimateResponse{
		Program:         ent.hash,
		WCET:            est.WCET,
		BCET:            est.BCET,
		NumSets:         est.NumSets,
		PrunedSets:      est.PrunedSets,
		SolvedSets:      est.SolvedSets,
		AllRootIntegral: est.AllRootIntegral,
		Exact:           exact,
		Degraded:        !exact,
		Admission:       admission,
		AnsweredBy:      answered,
		Coalesced:       coalesced,
		ColdStart:       cold,
		ElapsedMicros:   time.Since(startAt).Microseconds(),
	}
	if cold {
		resp.PrepareMicros = ent.prepMicros
	}
	if req.WantStats {
		st := est.Stats
		resp.Stats = &st
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// writeEstimateErr maps analysis errors: infeasible annotations are the
// client's contradiction (422); everything else at this stage is a bad
// request (unknown blocks, missing loop bounds, malformed symbols).
func (s *Server) writeEstimateErr(w http.ResponseWriter, err error) {
	var ie *ipet.InfeasibleError
	if errors.As(err, &ie) {
		s.writeErr(w, http.StatusUnprocessableEntity, &ErrorResponse{Error: err.Error()})
		return
	}
	s.writeErr(w, http.StatusBadRequest, &ErrorResponse{Error: err.Error()})
}

func (s *Server) handleParametrize(w http.ResponseWriter, r *http.Request) {
	startAt := time.Now()
	var req ParametrizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.ctrs.parametrizes.Add(1)
	ent, cold, status, eresp := s.resolve(req.Program, req.ProgramSpec)
	if eresp != nil {
		s.writeErr(w, status, eresp)
		return
	}
	if len(req.Specs) == 0 {
		s.writeErr(w, http.StatusBadRequest, &ErrorResponse{Error: "no parameter specs"})
		return
	}
	file, err := constraint.ParseNamed("annotations", req.Annotations)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, &ErrorResponse{Error: err.Error()})
		return
	}
	specs := make([]ipet.ParamSpec, len(req.Specs))
	for i, sp := range req.Specs {
		specs[i] = ipet.ParamSpec{Name: sp.Name, Lo: sp.Lo, Hi: sp.Hi}
	}
	key := formulaKey(req.Annotations, specs)
	if pe, ok := ent.formula(key); ok {
		s.writeParametrize(w, ent, pe.pb, true, cold, startAt)
		return
	}
	// One enumeration per identical concurrent request; reuse the entry's
	// flight group under a distinct key space.
	v, err, _ := ent.estFlights.Do("param|"+key, func() (any, error) {
		if pe, ok := ent.formula(key); ok {
			return pe.pb, nil
		}
		pb, err := ent.sess.ParametrizeContext(r.Context(), file, specs)
		if err != nil {
			return nil, err
		}
		ent.putFormula(key, &paramEntry{key: key, pb: pb, specs: specs})
		return pb, nil
	})
	if err != nil {
		s.writeEstimateErr(w, err)
		return
	}
	s.writeParametrize(w, ent, v.(*ipet.ParamBound), false, cold, startAt)
}

func (s *Server) writeParametrize(w http.ResponseWriter, ent *entry, pb *ipet.ParamBound, cached, cold bool, startAt time.Time) {
	s.writeJSON(w, http.StatusOK, ParametrizeResponse{
		Program:   ent.hash,
		Formula:   pb.Describe(),
		Pieces:    pb.Pieces(),
		Certified: pb.Certified(),
		Cached:    cached,
		ColdStart: cold,
		ElapsedUs: time.Since(startAt).Microseconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.ctrs.requests.Add(1)
	resident, mem, ents := s.store.snapshot()
	resp := StatsResponse{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Requests:         s.ctrs.requests.Load(),
		Submits:          s.ctrs.submits.Load(),
		Estimates:        s.ctrs.estimates.Load(),
		Parametrizes:     s.ctrs.parametrizes.Load(),
		Coalesced:        s.ctrs.coalesced.Load(),
		Degraded:         s.ctrs.degraded.Load(),
		Shed:             s.ctrs.shed.Load(),
		Errors:           s.ctrs.errors.Load(),
		FormulaAnswered:  s.ctrs.formulaAnswered.Load(),
		FallbackAnswered: s.ctrs.fallbackAnswered.Load(),
		Store: StoreStatsJSON{
			Resident:    resident,
			MemoryBytes: mem,
			MaxSessions: s.conf.MaxSessions,
			MemBudget:   s.conf.MemoryBudget,
			Hits:        s.ctrs.storeHits.Load(),
			Misses:      s.ctrs.storeMisses.Load(),
			Prepares:    s.ctrs.prepares.Load(),
			Resubmits:   s.ctrs.resubmits.Load(),
			Evictions:   s.ctrs.evictions.Load(),
		},
	}
	art := prepcache.Default().Snapshot()
	resp.Artifacts = ArtifactStatsJSON{
		Hits:    art.Hits,
		Misses:  art.Misses,
		Bytes:   art.Bytes,
		Entries: art.Entries,
	}
	for _, ent := range ents {
		tot := ent.sess.Totals()
		bases, solves, finishes := ent.sess.CacheStats()
		ahits, amisses := ent.sess.ArtifactStats()
		resp.Sessions = append(resp.Sessions, SessionStatsJSON{
			Program:        ent.hash,
			Root:           ent.root,
			MemoryBytes:    ent.sess.MemoryFootprint(),
			Estimates:      tot.Estimates,
			Formula:        tot.FormulaAnswers,
			Degraded:       tot.Degraded,
			DeadlineHits:   tot.DeadlineHits,
			Pivots:         tot.Stats.Pivots,
			CacheHits:      tot.Stats.CacheHits,
			WarmBases:      bases,
			SetOutcomes:    solves,
			CountVectors:   finishes,
			ArtifactHits:   ahits,
			ArtifactMisses: amisses,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// coveringFormula finds a cached parametric bound whose declared domains
// exactly name the request's parameters and contain the point. The point
// vector comes back in the formula's spec order.
func coveringFormula(ent *entry, annots string, params map[string]int64) (*paramEntry, []int64, bool) {
	for _, pe := range ent.formulas() {
		if len(pe.specs) != len(params) {
			continue
		}
		// The formula is only valid for the annotation text it was built
		// from.
		if formulaKey(annots, pe.specs) != pe.key {
			continue
		}
		point := make([]int64, len(pe.specs))
		ok := true
		for k, sp := range pe.specs {
			v, have := params[sp.Name]
			if !have || v < sp.Lo || v > sp.Hi {
				ok = false
				break
			}
			point[k] = v
		}
		if ok {
			return pe, point, true
		}
	}
	return nil, nil, false
}

// formulaKey names a parametric formula by the annotation text and the
// ordered domain declarations.
func formulaKey(annots string, specs []ipet.ParamSpec) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|", len(annots))
	h.Write([]byte(annots))
	for _, sp := range specs {
		fmt.Fprintf(h, "|%s=%d..%d", sp.Name, sp.Lo, sp.Hi)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// coalesceKey names everything that shapes an estimate's answer:
// annotations, bound parameters, SLO, and budget.
func coalesceKey(req *EstimateRequest) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|", len(req.Annotations))
	h.Write([]byte(req.Annotations))
	names := make([]string, 0, len(req.Params))
	for name := range req.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "|%s=%d", name, req.Params[name])
	}
	fmt.Fprintf(h, "|slo=%g|budget=%d", req.SLOMillis, req.Budget)
	return hex.EncodeToString(h.Sum(nil))
}
