package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"cinderella/internal/bench"
)

// TestServerStressLRUChurn hammers a deliberately tiny server — one shard,
// a two-entry LRU, three distinct programs — with concurrent mixed
// requests, so sessions are constantly evicted and re-prepared while other
// goroutines poll stats. Run under -race this is the data-race gate for
// the store, the flight groups, and the session ledgers; functionally it
// asserts the core cache-transparency contract: an evicted-then-resubmitted
// program answers with byte-identical bounds.
func TestServerStressLRUChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	srv := New(Config{Shards: 1, MaxSessions: 2, Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Three cheap, distinct path-explosion programs; the 2-entry LRU can
	// never hold all of them.
	type workload struct {
		spec   ProgramSpec
		annots string
		wantW  []byte
		wantB  []byte
	}
	var workloads []workload
	for _, n := range []int{3, 4, 5} {
		asmText, annots := bench.ExplosionAsm(n)
		spec := ProgramSpec{Asm: asmText, Root: "main"}
		ref := oneShotEstimate(t, spec, 1, annots)
		wantW, _ := json.Marshal(ref.WCET)
		wantB, _ := json.Marshal(ref.BCET)
		workloads = append(workloads, workload{spec, annots, wantW, wantB})
	}

	const (
		goroutines = 8
		iters      = 10
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				w := &workloads[(g+i)%len(workloads)]
				switch {
				case i%5 == 3:
					// Submit: may re-prepare after an eviction.
					var sub SubmitResponse
					postJSON(t, ts.Client(), ts.URL+"/v1/programs", w.spec, &sub, http.StatusOK)
				case i%5 == 4:
					resp, err := ts.Client().Get(ts.URL + "/v1/stats")
					if err != nil {
						t.Error(err)
						return
					}
					var st StatsResponse
					if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
						t.Errorf("stats decode: %v", err)
					}
					resp.Body.Close()
					if st.Store.Resident > 2 {
						t.Errorf("LRU holds %d sessions, cap 2", st.Store.Resident)
					}
				default:
					// Estimate with inline source: works whether the
					// session is resident or was just evicted.
					req := EstimateRequest{ProgramSpec: w.spec, Annotations: w.annots}
					var got rawEstimate
					postJSON(t, ts.Client(), ts.URL+"/v1/estimate", req, &got, http.StatusOK)
					if !bytes.Equal(got.WCET, w.wantW) || !bytes.Equal(got.BCET, w.wantB) {
						t.Errorf("goroutine %d iter %d: bounds differ after churn:\n got %s / %s\nwant %s / %s",
							g, i, got.WCET, got.BCET, w.wantW, w.wantB)
					}
					if !got.Exact {
						t.Errorf("goroutine %d iter %d: unconstrained estimate not exact", g, i)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Store.Evictions == 0 {
		t.Error("three programs through a 2-entry LRU produced no evictions")
	}
	if st.Store.Resident > 2 {
		t.Errorf("final residency %d exceeds the 2-session cap", st.Store.Resident)
	}
	if st.Errors != 0 {
		t.Errorf("server recorded %d errors during churn", st.Errors)
	}
	if got := fmt.Sprintf("%d", st.Store.Prepares); st.Store.Prepares < 3 {
		t.Errorf("expected at least one prepare per program, got %s", got)
	}
}
