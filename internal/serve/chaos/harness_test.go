// The chaos harness: drives a live server through loadgen with every
// fault point armed and asserts the crash-safety contract end to end —
// the process never dies, every answer is 200-or-typed-error, every bound
// brackets the exact oracle, and with faults disarmed the reports are
// bit-identical to a fault-free server's.
package chaos_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"
	"time"

	"cinderella/internal/asm"
	"cinderella/internal/bench"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/ipet"
	"cinderella/internal/prepcache"
	"cinderella/internal/serve"
	"cinderella/internal/serve/chaos"
	"cinderella/internal/serve/client"
	"cinderella/internal/serve/loadgen"
)

// oracleWorkload builds one explosion workload with its exact bounds
// solved directly (no server), so every chaos response can be checked
// against ground truth.
func oracleWorkload(t *testing.T, n int) loadgen.Workload {
	t.Helper()
	asmText, annots := bench.ExplosionAsm(n)
	exe, err := asm.Assemble(asmText)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	opts := ipet.DefaultOptions()
	opts.Workers = 1
	an, err := ipet.New(prog, "main", opts)
	if err != nil {
		t.Fatal(err)
	}
	file, err := constraint.Parse(annots)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Apply(file); err != nil {
		t.Fatal(err)
	}
	ref, err := an.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !ref.WCET.Exact || !ref.BCET.Exact {
		t.Fatalf("explosion%d oracle not exact", 1<<n)
	}
	return loadgen.Workload{
		Name:        "explosion" + strconv.Itoa(1<<n),
		Spec:        serve.ProgramSpec{Asm: asmText, Root: "main"},
		Annotations: annots,
		RefWCET:     ref.WCET.Cycles,
		RefBCET:     ref.BCET.Cycles,
	}
}

// estimateEach sends one estimate per workload through the retrying
// client and returns the responses, failing the test on any error.
func estimateEach(t *testing.T, ts *httptest.Server, workloads []loadgen.Workload) []*serve.EstimateResponse {
	t.Helper()
	cl := client.New(client.Config{Base: ts.URL, HTTP: ts.Client()})
	out := make([]*serve.EstimateResponse, len(workloads))
	for i, w := range workloads {
		resp, err := cl.Estimate(context.Background(), serve.EstimateRequest{
			ProgramSpec: w.Spec,
			Annotations: w.Annotations,
		})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		out[i] = resp
	}
	return out
}

// TestChaosHarness is the headline robustness gate.
func TestChaosHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("drives chaos load over HTTP")
	}
	workloads := []loadgen.Workload{
		oracleWorkload(t, 4),
		oracleWorkload(t, 5),
	}

	// Phase A — fault-free baseline: the reports every later phase is
	// measured against.
	baseCache := prepcache.New()
	if err := baseCache.SetPersistDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	baseSrv := httptest.NewServer(serve.New(serve.Config{
		Shards: 1, Workers: 1, Artifacts: baseCache,
	}).Handler())
	baseline := estimateEach(t, baseSrv, workloads)
	baseSrv.Close()
	for i, b := range baseline {
		if !b.Exact {
			t.Fatalf("baseline %s not exact", workloads[i].Name)
		}
	}

	// Phase B — every fault point armed, driven hard through loadgen.
	// SlowSolve sits far above the watchdog ceiling so every fired wedge
	// must be rescued by the watchdog, not by luck.
	inj := chaos.New(chaos.Config{
		Seed:             42,
		DiskWriteEvery:   2,
		DiskCorruptEvery: 2,
		SolvePanicEvery:  5,
		SolveSlowEvery:   7,
		EvictEvery:       3,
		SlowSolve:        2 * time.Second,
	})
	dir := t.TempDir()
	chaosCache := prepcache.New()
	if err := chaosCache.SetPersistDir(dir); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{
		Shards: 1, Workers: 1,
		Artifacts:         chaosCache,
		Chaos:             inj,
		WatchdogCeiling:   60 * time.Millisecond,
		DegradedThreshold: 1 << 30, // health flapping is not under test here
	})
	ts := httptest.NewServer(srv.Handler())
	res, err := loadgen.Run(loadgen.Config{
		BaseURL:   ts.URL,
		Client:    ts.Client(),
		Clients:   4,
		Duration:  1200 * time.Millisecond,
		Workloads: workloads,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	t.Logf("chaos run: %s", res)
	t.Logf("faults fired: %v", inj.Counts())
	// The contract: zero transport/untyped errors (the process never died,
	// never answered garbage), zero non-sound bounds, and the injected
	// panics surfaced as typed envelopes.
	if res.Errors != 0 {
		t.Errorf("%d transport/untyped errors under chaos — crash-safety broken", res.Errors)
	}
	if res.NonSound != 0 {
		t.Errorf("%d NON-SOUND responses under chaos", res.NonSound)
	}
	if res.TypedErrors == 0 {
		t.Errorf("no typed errors despite armed panic injection (panic fired %d times)", inj.Fired(chaos.SolvePanic))
	}
	for _, p := range []chaos.Point{chaos.DiskWrite, chaos.SolvePanic, chaos.SolveSlow, chaos.Evict} {
		if inj.Fired(p) == 0 {
			t.Errorf("fault point %s armed but never fired — the harness is not exercising it", p)
		}
	}
	ts.Close()

	// Phase B2 — restart against the chaos-written (and partially
	// fault-corrupted) artifact store with corruption injection on the
	// read path: every restore is checksum-verified, corrupt entries are
	// counted and rebuilt, answers stay exact and correct.
	restartCache := prepcache.New()
	if err := restartCache.SetPersistDir(dir); err != nil {
		t.Fatal(err)
	}
	srv2 := serve.New(serve.Config{
		Shards: 1, Workers: 1,
		Artifacts:         restartCache,
		Chaos:             inj,
		WatchdogCeiling:   60 * time.Millisecond,
		DegradedThreshold: 1 << 30,
	})
	ts2 := httptest.NewServer(srv2.Handler())
	cl2 := client.New(client.Config{Base: ts2.URL, HTTP: ts2.Client()})
	for i, w := range workloads {
		// Retry past injected panics/wedges: the point is that restores
		// under read-corruption still converge to the exact answer.
		var got *serve.EstimateResponse
		for attempt := 0; attempt < 20; attempt++ {
			resp, err := cl2.Estimate(context.Background(), serve.EstimateRequest{
				ProgramSpec: w.Spec,
				Annotations: w.Annotations,
			})
			if err == nil && resp.Exact {
				got = resp
				break
			}
		}
		if got == nil {
			t.Fatalf("%s: no exact answer after restart under chaos", w.Name)
		}
		if got.WCET.Cycles != baseline[i].WCET.Cycles || got.BCET.Cycles != baseline[i].BCET.Cycles {
			t.Errorf("%s: restart bounds [%d,%d] differ from baseline [%d,%d]",
				w.Name, got.BCET.Cycles, got.WCET.Cycles, baseline[i].BCET.Cycles, baseline[i].WCET.Cycles)
		}
	}
	ps := restartCache.PersistStats()
	if inj.Fired(chaos.DiskCorrupt) == 0 {
		t.Error("restart restored artifacts but the read-corruption point never fired — the harness is not exercising it")
	} else if ps.Corrupt == 0 {
		t.Errorf("read-path corruption fired %d times but PersistStats.Corrupt is 0 — corrupt entries were trusted",
			inj.Fired(chaos.DiskCorrupt))
	}
	ts2.Close()

	// Phase C — injector present but disarmed: responses are bit-identical
	// to the fault-free baseline. The chaos plumbing itself must be
	// invisible when off.
	offCache := prepcache.New()
	if err := offCache.SetPersistDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	off := chaos.New(chaos.Config{Seed: 42}) // nothing armed
	offSrv := httptest.NewServer(serve.New(serve.Config{
		Shards: 1, Workers: 1,
		Artifacts: offCache,
		Chaos:     off,
	}).Handler())
	defer offSrv.Close()
	quiet := estimateEach(t, offSrv, workloads)
	for i := range workloads {
		if !reflect.DeepEqual(quiet[i].WCET, baseline[i].WCET) || !reflect.DeepEqual(quiet[i].BCET, baseline[i].BCET) {
			t.Errorf("%s: disarmed-chaos report differs from fault-free baseline:\n  got  WCET %+v BCET %+v\n  want WCET %+v BCET %+v",
				workloads[i].Name, quiet[i].WCET, quiet[i].BCET, baseline[i].WCET, baseline[i].BCET)
		}
		if quiet[i].Exact != baseline[i].Exact {
			t.Errorf("%s: exactness flag differs with disarmed chaos", workloads[i].Name)
		}
	}
	if off.TotalFired() != 0 {
		t.Errorf("disarmed injector fired %d faults", off.TotalFired())
	}
}
