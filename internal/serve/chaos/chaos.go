// Package chaos is the deterministic fault injector behind cinderelld's
// crash-safety harness. An Injector is armed with a seed and a set of
// fault points, each firing on every Nth arrival with a seed-derived
// phase, so a given (seed, rate) configuration injects the same number of
// faults at the same points on every run — regardless of goroutine
// interleaving — and the harness can assert exact invariants instead of
// "probably saw some faults".
//
// The package is a leaf: serve imports it for Config wiring, the harness
// test drives it through loadgen. A nil *Injector is inert, so production
// paths pay one nil check per fault point.
package chaos

import (
	"sync/atomic"
	"time"
)

// Point names one fault-injection site inside the server.
type Point string

const (
	// DiskWrite fails a prepare-artifact spill (prepcache BeforeWrite):
	// persistence degrades, correctness must not.
	DiskWrite Point = "disk.write"
	// DiskCorrupt flips a byte in an artifact file as it is read back
	// (prepcache AfterRead): the checksum must reject it and the artifact
	// must be rebuilt from source.
	DiskCorrupt Point = "disk.corrupt"
	// SolvePanic panics inside the estimate flight: the request must get a
	// typed 500, the process must not die, and coalesced waiters must not
	// deadlock.
	SolvePanic Point = "solve.panic"
	// SolveSlow wedges the solve in an uncancellable sleep: the watchdog
	// must cancel it, free the admission slot, and answer with the sound
	// anytime envelope.
	SolveSlow Point = "solve.slow"
	// Evict removes the session entry from the store mid-request: the
	// in-flight request keeps its session pointer and must still answer;
	// the next request re-prepares.
	Evict Point = "evict"
)

// Points lists every fault point, in a stable order.
var Points = []Point{DiskWrite, DiskCorrupt, SolvePanic, SolveSlow, Evict}

// Config arms an Injector. Each *Every field fires its point on every Nth
// arrival (0 disables the point); Seed phases the firing pattern so two
// seeds fault different request indices but the same configuration always
// faults the same count.
type Config struct {
	Seed int64

	DiskWriteEvery   int
	DiskCorruptEvery int
	SolvePanicEvery  int
	SolveSlowEvery   int
	EvictEvery       int

	// SlowSolve is how long SolveSlow wedges (default 50ms). Set it above
	// the server's watchdog ceiling to guarantee the watchdog fires.
	SlowSolve time.Duration
}

type pointState struct {
	every  uint64
	offset uint64
	hits   atomic.Uint64
	fired  atomic.Int64
}

// Injector decides, per arrival at a fault point, whether the fault
// fires. Safe for concurrent use; a nil Injector never fires.
type Injector struct {
	points map[Point]*pointState
	slow   time.Duration
}

// New builds an Injector from the config.
func New(conf Config) *Injector {
	slow := conf.SlowSolve
	if slow <= 0 {
		slow = 50 * time.Millisecond
	}
	inj := &Injector{points: make(map[Point]*pointState), slow: slow}
	arm := func(p Point, every int) {
		if every <= 0 {
			return
		}
		inj.points[p] = &pointState{
			every:  uint64(every),
			offset: phase(conf.Seed, p, uint64(every)),
		}
	}
	arm(DiskWrite, conf.DiskWriteEvery)
	arm(DiskCorrupt, conf.DiskCorruptEvery)
	arm(SolvePanic, conf.SolvePanicEvery)
	arm(SolveSlow, conf.SolveSlowEvery)
	arm(Evict, conf.EvictEvery)
	return inj
}

// phase derives a stable per-point firing offset from the seed: an FNV-1a
// fold of the seed bytes and the point name, reduced mod every.
func phase(seed int64, p Point, every uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(seed>>(8*i)))) * 1099511628211
	}
	for i := 0; i < len(p); i++ {
		h = (h ^ uint64(p[i])) * 1099511628211
	}
	return h % every
}

// Fire reports whether this arrival at point p faults. The decision is a
// pure function of the point's arrival count, its rate, and the seed
// phase: arrival n fires iff n ≡ offset (mod every).
func (i *Injector) Fire(p Point) bool {
	if i == nil {
		return false
	}
	st := i.points[p]
	if st == nil {
		return false
	}
	n := st.hits.Add(1) - 1
	if n%st.every == st.offset {
		st.fired.Add(1)
		return true
	}
	return false
}

// SlowSolveDuration is how long a fired SolveSlow wedge sleeps.
func (i *Injector) SlowSolveDuration() time.Duration {
	if i == nil {
		return 0
	}
	return i.slow
}

// Fired returns how many times point p has faulted.
func (i *Injector) Fired(p Point) int64 {
	if i == nil {
		return 0
	}
	st := i.points[p]
	if st == nil {
		return 0
	}
	return st.fired.Load()
}

// Counts snapshots the fired tally of every armed point.
func (i *Injector) Counts() map[Point]int64 {
	out := make(map[Point]int64)
	if i == nil {
		return out
	}
	for p, st := range i.points {
		out[p] = st.fired.Load()
	}
	return out
}

// TotalFired sums fault firings across all points.
func (i *Injector) TotalFired() int64 {
	var n int64
	if i == nil {
		return 0
	}
	for _, st := range i.points {
		n += st.fired.Load()
	}
	return n
}
