package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cinderella/internal/bench"
)

// FuzzServeRequest throws arbitrary bytes at the three POST endpoints and
// asserts the crash-safety contract at the wire level: the server always
// answers, the answer is 200 or a typed error envelope, and the process
// never panics (a panic fails the fuzz run by killing the shared server).
func FuzzServeRequest(f *testing.F) {
	asmText, annots := bench.ExplosionAsm(3)
	valid, _ := json.Marshal(EstimateRequest{
		ProgramSpec: ProgramSpec{Asm: asmText, Root: "main"},
		Annotations: annots,
	})
	submit, _ := json.Marshal(ProgramSpec{Asm: asmText, Root: "main"})

	f.Add(byte(0), valid)
	f.Add(byte(1), submit)
	f.Add(byte(2), []byte(`{"asm": "func main\n    ret\n", "specs": [{"name": "n1", "lo": 1, "hi": 4}]}`))
	f.Add(byte(0), []byte("{not json"))
	f.Add(byte(0), []byte(`{"bogus": 1}`))
	f.Add(byte(0), []byte(`{"asm": "func main\n    jmp nowhere\n"}`))
	f.Add(byte(0), []byte(`{"asm": "\x00\xff garbage"}`))
	f.Add(byte(0), []byte(`{"source": "func main() { return 0 }"}`))
	f.Add(byte(0), []byte(`{"program": "deadbeef"}`))
	f.Add(byte(0), []byte(`{"asm": "func main\n    ret\n", "annotations": "func main { loop 99: 1 .. 2 }"}`))
	f.Add(byte(0), []byte(`{"asm": "func main\n    ret\n", "annotations": "func main { x1 = n7 }"}`))

	// One server shared across the whole fuzz run: the SLO and watchdog
	// bound the solve cost of any adversarial-but-valid program the fuzzer
	// invents, and a tight body cap bounds decode cost.
	srv := New(Config{
		Shards: 1, Workers: 1,
		MaxBodyBytes:    64 << 10,
		DefaultSLO:      100 * time.Millisecond,
		WatchdogCeiling: 2 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(ts.Close)
	paths := []string{"/v1/estimate", "/v1/programs", "/v1/parametrize"}

	f.Fuzz(func(t *testing.T, pathSel byte, body []byte) {
		path := paths[int(pathSel)%len(paths)]
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("server stopped answering (%s): %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return
		}
		var e ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Code == "" {
			t.Fatalf("%s: status %d without a typed error envelope (decode err %v, code %q)",
				path, resp.StatusCode, err, e.Code)
		}
	})
}
