// Restart gate: a daemon restarted over a persistent artifact store must
// (a) produce bit-identical bound reports, (b) re-prepare warm — at least
// 3x faster than the cold build — and (c) detect, count, and survive a
// deliberately corrupted on-disk entry. The measured cold/warm prepare
// costs land in BENCH_estimate.json as the serve/restart-warm row.
package serve_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cinderella/internal/bench"
	"cinderella/internal/prepcache"
	"cinderella/internal/serve"
	"cinderella/internal/serve/client"
)

// restartSample runs one fresh server process (fresh in-memory cache)
// against dir, sends one estimate, and returns the response plus the
// stats snapshot after it.
func restartSample(t *testing.T, dir string, req serve.EstimateRequest) (*serve.EstimateResponse, *serve.StatsResponse) {
	t.Helper()
	cache := prepcache.New()
	if err := cache.SetPersistDir(dir); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{Shards: 1, Workers: 1, Artifacts: cache})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(client.Config{Base: ts.URL, HTTP: ts.Client()})
	resp, err := cl.Estimate(context.Background(), req)
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	return resp, st
}

func TestRestartWarmGate(t *testing.T) {
	if testing.Short() {
		t.Skip("measures prepare wall time over HTTP")
	}
	bm, ok := bench.ByName("dhry")
	if !ok {
		t.Fatal("dhry benchmark not registered")
	}
	req := serve.EstimateRequest{
		ProgramSpec: serve.ProgramSpec{Source: bm.Source, Root: bm.Root},
		Annotations: bm.Annotations,
	}

	// Three cold processes (each its own empty store) and three warm
	// restarts over one populated store; gate on the best of each so a
	// scheduler hiccup in a single sample cannot flake the ratio.
	const samples = 3
	dir := t.TempDir()
	var cold, warm *serve.EstimateResponse
	minCold, minWarm := int64(0), int64(0)
	for i := 0; i < samples; i++ {
		d := t.TempDir()
		if i == 0 {
			d = dir // sample 0 populates the store the warm runs restore from
		}
		resp, _ := restartSample(t, d, req)
		if !resp.ColdStart || resp.PrepareMicros <= 0 {
			t.Fatalf("cold sample %d: cold_start=%v prepare_us=%d", i, resp.ColdStart, resp.PrepareMicros)
		}
		if cold == nil {
			cold = resp
		}
		if minCold == 0 || resp.PrepareMicros < minCold {
			minCold = resp.PrepareMicros
		}
	}
	for i := 0; i < samples; i++ {
		resp, st := restartSample(t, dir, req)
		if !resp.ColdStart || resp.PrepareMicros <= 0 {
			t.Fatalf("warm sample %d: cold_start=%v prepare_us=%d", i, resp.ColdStart, resp.PrepareMicros)
		}
		if st.Artifacts.Persist.Restored == 0 {
			t.Fatalf("warm sample %d restored nothing from disk (persist: %+v)", i, st.Artifacts.Persist)
		}
		if st.Artifacts.Persist.Corrupt != 0 {
			t.Fatalf("warm sample %d: %d corrupt entries in a clean store", i, st.Artifacts.Persist.Corrupt)
		}
		if warm == nil {
			warm = resp
		}
		if minWarm == 0 || resp.PrepareMicros < minWarm {
			minWarm = resp.PrepareMicros
		}
	}

	// (a) Bit-identical reports across restart.
	if !reflect.DeepEqual(warm.WCET, cold.WCET) || !reflect.DeepEqual(warm.BCET, cold.BCET) {
		t.Errorf("restart reports differ:\n  cold WCET %+v BCET %+v\n  warm WCET %+v BCET %+v",
			cold.WCET, cold.BCET, warm.WCET, warm.BCET)
	}
	if !warm.Exact || !cold.Exact {
		t.Errorf("restart gate expects exact answers (cold %v, warm %v)", cold.Exact, warm.Exact)
	}

	// (b) Warm prepare at least 3x faster than the cold build.
	t.Logf("prepare: cold min %dµs, warm min %dµs (%.1fx)", minCold, minWarm, float64(minCold)/float64(minWarm))
	if minWarm*3 > minCold {
		t.Errorf("warm prepare %dµs not ≥3x faster than cold %dµs", minWarm, minCold)
	}

	// (c) A deliberately corrupted entry is detected, counted in /v1/stats,
	// and the answer is still exact and identical.
	corruptOne(t, dir, prepcache.KindCFG)
	resp, st := restartSample(t, dir, req)
	if st.Artifacts.Persist.Corrupt == 0 {
		t.Errorf("corrupted entry not counted in stats (persist: %+v)", st.Artifacts.Persist)
	}
	if !resp.Exact || !reflect.DeepEqual(resp.WCET, cold.WCET) || !reflect.DeepEqual(resp.BCET, cold.BCET) {
		t.Errorf("post-corruption report differs from baseline: exact=%v WCET %+v BCET %+v",
			resp.Exact, resp.WCET, resp.BCET)
	}

	writeRestartRow(t, cold, minCold, minWarm)
}

// corruptOne flips a byte in the middle of one artifact file under
// dir/kind.
func corruptOne(t *testing.T, dir, kind string) {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, kind))
	if err != nil || len(ents) == 0 {
		t.Fatalf("no %s artifacts on disk: %v", kind, err)
	}
	path := filepath.Join(dir, kind, ents[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeRestartRow merges the serve/restart-warm row into the bench
// artifact ($CINDERELLA_BENCH_JSON on refresh runs, a temp file
// otherwise). ColdP50Us carries the cold-build prepare cost, WarmP50Us
// the restored-from-disk prepare cost — the pair the row exists to track.
func writeRestartRow(t *testing.T, cold *serve.EstimateResponse, minCold, minWarm int64) {
	t.Helper()
	row := bench.EstimatePerf{
		Name:      "serve/restart-warm",
		Requests:  7, // 3 cold + 3 warm + 1 post-corruption
		ColdP50Us: minCold,
		WarmP50Us: minWarm,
		Exact:     true,
		WCET:      cold.WCET.Cycles,
		BCET:      cold.BCET.Cycles,
	}
	path := os.Getenv("CINDERELLA_BENCH_JSON")
	if path == "" {
		path = filepath.Join(t.TempDir(), "BENCH_estimate.json")
	}
	var existing []bench.EstimatePerf
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &existing); err != nil {
			t.Fatal(err)
		}
	}
	merged := existing[:0]
	for _, r := range existing {
		if r.Name != row.Name {
			merged = append(merged, r)
		}
	}
	merged = append(merged, row)
	if err := bench.WriteEstimatePerfFile(path, merged); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote serve/restart-warm row to %s", path)
}
