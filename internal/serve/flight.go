package serve

import "sync"

// flightGroup coalesces duplicate concurrent work: all callers of Do with
// the same key while one call is in flight share that call's single
// result. It is the stdlib-only core of x/sync/singleflight, which the
// server uses twice — to prepare a session at most once per program hash,
// and to run at most one solver pass per identical in-flight estimate.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do runs fn once per key among concurrent callers and hands everyone the
// same result. shared reports whether this caller piggybacked on another's
// call rather than running fn itself.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	// Remove the key before releasing waiters so a caller arriving after
	// completion starts a fresh flight instead of reading a stale result.
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
