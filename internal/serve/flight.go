package serve

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// flightGroup coalesces duplicate concurrent work: all callers of Do with
// the same key while one call is in flight share that call's single
// result. It is the stdlib-only core of x/sync/singleflight, which the
// server uses twice — to prepare a session at most once per program hash,
// and to run at most one solver pass per identical in-flight estimate.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// panicError carries a panic recovered at the flight boundary to every
// coalesced caller as an ordinary error. Without this conversion a
// panicking fn would unwind past the key cleanup, leaving waiters blocked
// on done forever and the key wedged in the map — one bad request would
// poison its coalescing key for the life of the process.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("internal panic: %v", e.val)
}

// Do runs fn once per key among concurrent callers and hands everyone the
// same result. shared reports whether this caller piggybacked on another's
// call rather than running fn itself. A panic in fn is recovered and
// returned as a *panicError to the runner and all waiters alike.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = runFlight(fn)

	// Remove the key before releasing waiters so a caller arriving after
	// completion starts a fresh flight instead of reading a stale result.
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}

// runFlight executes fn with a recover barrier, converting a panic into a
// *panicError result.
func runFlight(fn func() (any, error)) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			val, err = nil, &panicError{val: r, stack: debug.Stack()}
		}
	}()
	return fn()
}
