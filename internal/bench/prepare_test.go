package bench

import (
	"reflect"
	"strings"
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/cc"
	"cinderella/internal/constraint"
	"cinderella/internal/ipet"
	"cinderella/internal/prepcache"
)

// prepareWorkload is one cold-path pipeline workload. The pipeline under
// measurement is what a cold cinderelld request pays after assembly:
// CFG construction through the artifact cache plus ipet.Prepare.
type prepareWorkload struct {
	name string
	exe  *asm.Executable
	root string
	file *constraint.File
}

func dhryPrepareWorkload(tb testing.TB) prepareWorkload {
	tb.Helper()
	bm, ok := ByName("dhry")
	if !ok {
		tb.Fatal("unknown benchmark dhry")
	}
	exe, _, err := cc.Build(bm.Source)
	if err != nil {
		tb.Fatal(err)
	}
	file, err := constraint.Parse(bm.Annotations)
	if err != nil {
		tb.Fatal(err)
	}
	return prepareWorkload{"dhry", exe, bm.Root, file}
}

func prepareWorkloads(tb testing.TB) []prepareWorkload {
	tb.Helper()
	asmText, annots := ExplosionAsm(6)
	exe, err := asm.Assemble(asmText)
	if err != nil {
		tb.Fatal(err)
	}
	file, err := constraint.Parse(annots)
	if err != nil {
		tb.Fatal(err)
	}
	return []prepareWorkload{
		dhryPrepareWorkload(tb),
		{"explosion64", exe, "main", file},
	}
}

// runPrepare is the pipeline under test: program construction through the
// process-wide artifact cache, then session preparation.
func runPrepare(tb testing.TB, exe *asm.Executable, root string, opts ipet.Options) *ipet.Session {
	tb.Helper()
	prog, err := prepcache.Default().BuildProgram(exe)
	if err != nil {
		tb.Fatal(err)
	}
	sess, err := ipet.Prepare(prog, root, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return sess
}

// BenchmarkPrepareCold measures the dhry pipeline against an empty artifact
// cache: every function's CFG, cost table, and row templates are built from
// scratch.
func BenchmarkPrepareCold(b *testing.B) {
	w := dhryPrepareWorkload(b)
	opts := ipet.DefaultOptions()
	opts.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prepcache.Default().Reset()
		runPrepare(b, w.exe, w.root, opts)
	}
}

// BenchmarkPrepareWarmed measures the same pipeline when every artifact is
// resident: the eviction-then-resubmission cost cinderelld pays under
// session churn.
func BenchmarkPrepareWarmed(b *testing.B) {
	w := dhryPrepareWorkload(b)
	opts := ipet.DefaultOptions()
	opts.Workers = 1
	prepcache.Default().Reset()
	runPrepare(b, w.exe, w.root, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPrepare(b, w.exe, w.root, opts)
	}
}

// prepareRows measures the cold and artifact-warm prepare pipeline on dhry
// and the explosion chain, producing the prepare-cold / prepare-incremental
// rows of BENCH_estimate.json.
func prepareRows(t *testing.T) []EstimatePerf {
	t.Helper()
	opts := ipet.DefaultOptions()
	opts.Workers = 1
	var rows []EstimatePerf
	for _, w := range prepareWorkloads(t) {
		var coldSess *ipet.Session
		coldRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				prepcache.Default().Reset()
				coldSess = runPrepare(b, w.exe, w.root, opts)
			}
		})
		var warmSess *ipet.Session
		warmRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				warmSess = runPrepare(b, w.exe, w.root, opts)
			}
		})
		ch, cm := coldSess.ArtifactStats()
		wh, wm := warmSess.ArtifactStats()
		if cm == 0 || ch != 0 {
			t.Errorf("%s: cold prepare saw %d hits, %d misses — the reset before it did not take", w.name, ch, cm)
		}
		if wm != 0 || wh != cm {
			t.Errorf("%s: warm prepare saw %d hits, %d misses — want %d hits, 0 misses", w.name, wh, wm, cm)
		}
		cold := EstimatePerf{
			Name:           w.name + "/prepare-cold",
			NsPerOp:        float64(coldRes.NsPerOp()),
			AllocsPerOp:    float64(coldRes.AllocsPerOp()),
			ArtifactHits:   ch,
			ArtifactMisses: cm,
		}
		warm := EstimatePerf{
			Name:           w.name + "/prepare-incremental",
			NsPerOp:        float64(warmRes.NsPerOp()),
			AllocsPerOp:    float64(warmRes.AllocsPerOp()),
			ArtifactHits:   wh,
			ArtifactMisses: wm,
		}
		rows = append(rows, cold, warm)
		t.Logf("%s: prepare cold %d ns/op (%d allocs) -> incremental %d ns/op (%d allocs)",
			w.name, coldRes.NsPerOp(), coldRes.AllocsPerOp(), warmRes.NsPerOp(), warmRes.AllocsPerOp())
	}
	return rows
}

// TestPrepareIncrementalGate is the CI bench-smoke gate on the cold path:
// an artifact-warm dhry prepare must be at least 3x cheaper than a cold
// one, and the BoundReports must be bit-identical across cold and
// incremental prepares at one and four workers — plain, certified, and
// parametric.
func TestPrepareIncrementalGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs timed benchmarks")
	}
	w := dhryPrepareWorkload(t)

	estimate := func(sess *ipet.Session) *ipet.Estimate {
		est, err := sess.Estimate(w.file)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	// Bit-identity, plain and certified: every (workers, cold|warm) variant
	// must reproduce its reference report exactly.
	for _, certify := range []bool{false, true} {
		opts := ipet.DefaultOptions()
		opts.Workers = 1
		opts.Certify = certify
		prepcache.Default().Reset()
		ref := estimate(runPrepare(t, w.exe, w.root, opts))
		if certify && (!ref.WCET.Certified || !ref.BCET.Certified) {
			t.Fatalf("certified reference is not certified: %+v / %+v", ref.WCET, ref.BCET)
		}
		for _, workers := range []int{1, 4} {
			for _, cold := range []bool{true, false} {
				if cold {
					prepcache.Default().Reset()
				}
				o := opts
				o.Workers = workers
				est := estimate(runPrepare(t, w.exe, w.root, o))
				if !reflect.DeepEqual(est.WCET, ref.WCET) || !reflect.DeepEqual(est.BCET, ref.BCET) {
					t.Errorf("certify=%v workers=%d cold=%v: report diverges from reference: [%d,%d] vs [%d,%d]",
						certify, workers, cold, est.BCET.Cycles, est.WCET.Cycles, ref.BCET.Cycles, ref.WCET.Cycles)
				}
			}
		}
	}

	// Parametric bit-identity: the piecewise-linear formulas built from a
	// cold and an artifact-warm session must answer identically across the
	// domain sample.
	pOpts := ipet.DefaultOptions()
	pOpts.Workers = 1
	pOpts.PruneNullSets = false
	pOpts.IncumbentPrune = false
	bm, _ := ByName("dhry")
	symText := strings.Replace(bm.Annotations, "loop 1: 30 .. 30", "loop 1: 30 .. n1", 1)
	symFile, err := constraint.Parse(symText)
	if err != nil {
		t.Fatal(err)
	}
	specs := []ipet.ParamSpec{{Name: "n1", Lo: 30, Hi: 285}}
	prepcache.Default().Reset()
	pbCold, err := runPrepare(t, w.exe, w.root, pOpts).Parametrize(symFile, specs)
	if err != nil {
		t.Fatal(err)
	}
	pbWarm, err := runPrepare(t, w.exe, w.root, pOpts).Parametrize(symFile, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []int64{30, 100, 285} {
		cw, _, cok := pbCold.Eval([]int64{theta})
		ww, _, wok := pbWarm.Eval([]int64{theta})
		cb, _, cbok := pbCold.EvalBCET([]int64{theta})
		wb, _, wbok := pbWarm.EvalBCET([]int64{theta})
		if !cok || !wok || !cbok || !wbok {
			t.Fatalf("n1=%d: formula eval failed (ok %v/%v/%v/%v)", theta, cok, wok, cbok, wbok)
		}
		if cw != ww || cb != wb {
			t.Errorf("n1=%d: warm formula [%d,%d] != cold [%d,%d]", theta, wb, ww, cb, cw)
		}
	}

	// The 3x speedup gate, measured on the serial pipeline.
	opts := ipet.DefaultOptions()
	opts.Workers = 1
	coldRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prepcache.Default().Reset()
			runPrepare(b, w.exe, w.root, opts)
		}
	})
	prepcache.Default().Reset()
	runPrepare(t, w.exe, w.root, opts)
	warmRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runPrepare(b, w.exe, w.root, opts)
		}
	})
	if warmRes.NsPerOp()*3 > coldRes.NsPerOp() {
		t.Errorf("warm prepare %d ns/op vs cold %d ns/op — want at least 3x", warmRes.NsPerOp(), coldRes.NsPerOp())
	}
	t.Logf("dhry prepare: cold %d ns/op -> warm %d ns/op (%.1fx)",
		coldRes.NsPerOp(), warmRes.NsPerOp(), float64(coldRes.NsPerOp())/float64(warmRes.NsPerOp()))
}

// TestPrepareEditChurnReusesArtifacts models the interactive edit loop: one
// constant inside one dhry function changes (size-preserving, so the rest
// of the image is byte-identical), and re-preparing must rebuild exactly
// that function's two artifacts while reusing every other function's —
// with a report bit-identical to a from-scratch build of the edited program.
func TestPrepareEditChurnReusesArtifacts(t *testing.T) {
	bm, ok := ByName("dhry")
	if !ok {
		t.Fatal("unknown benchmark dhry")
	}
	edited := strings.Replace(bm.Source, "rec1Int = 5;", "rec1Int = 4;", 1)
	if edited == bm.Source {
		t.Fatal("dhry edit found nothing to replace")
	}
	origExe, _, err := cc.Build(bm.Source)
	if err != nil {
		t.Fatal(err)
	}
	editExe, _, err := cc.Build(edited)
	if err != nil {
		t.Fatal(err)
	}
	file, err := constraint.Parse(bm.Annotations)
	if err != nil {
		t.Fatal(err)
	}
	opts := ipet.DefaultOptions()
	opts.Workers = 1

	prepcache.Default().Reset()
	runPrepare(t, origExe, bm.Root, opts) // populate the cache

	sessEdit := runPrepare(t, editExe, bm.Root, opts)
	hits, misses := sessEdit.ArtifactStats()
	if misses != 2 {
		t.Errorf("edited prepare rebuilt %d artifacts, want 2 (the edited function's cost table and row template)", misses)
	}
	reach, err := sessEdit.Prog.Reachable(bm.Root)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2 * (len(reach) - 1)); hits != want {
		t.Errorf("edited prepare reused %d artifacts, want %d (2 per unchanged reachable function)", hits, want)
	}
	warmEst, err := sessEdit.Estimate(file)
	if err != nil {
		t.Fatal(err)
	}

	prepcache.Default().Reset()
	sessCold := runPrepare(t, editExe, bm.Root, opts)
	if ch, _ := sessCold.ArtifactStats(); ch != 0 {
		t.Fatalf("cold rebuild saw %d artifact hits after a reset", ch)
	}
	coldEst, err := sessCold.Estimate(file)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmEst.WCET, coldEst.WCET) || !reflect.DeepEqual(warmEst.BCET, coldEst.BCET) {
		t.Errorf("incremental report diverges from cold build: [%d,%d] vs [%d,%d]",
			warmEst.BCET.Cycles, warmEst.WCET.Cycles, coldEst.BCET.Cycles, coldEst.WCET.Cycles)
	}
}
