package bench

import (
	"reflect"
	"testing"

	"cinderella/internal/ipet"
)

// benchReport is the projection of an Estimate that must be invariant under
// every solver mechanism and worker count: both bound reports (cycles,
// extreme-case counts, winning set index) and the set bookkeeping.
type benchReport struct {
	WCET, BCET                      ipet.BoundReport
	NumSets, PrunedSets, SolvedSets int
}

func benchReportOf(est *ipet.Estimate) benchReport {
	return benchReport{
		WCET:       est.WCET,
		BCET:       est.BCET,
		NumSets:    est.NumSets,
		PrunedSets: est.PrunedSets,
		SolvedSets: est.SolvedSets,
	}
}

// TestMechanismTogglesOnBenchmarks is the acceptance gate for the
// incremental cross-product machinery on the paper's own workloads: for
// dhry (8 sets, 5 null) and des, toggling set dedup, warm start and
// incumbent pruning in every combination — at one and at four workers —
// must reproduce the exhaustive cold sequential bound report bit for bit.
func TestMechanismTogglesOnBenchmarks(t *testing.T) {
	for _, name := range []string{"dhry", "des"} {
		name := name
		t.Run(name, func(t *testing.T) {
			bm, ok := ByName(name)
			if !ok {
				t.Fatalf("unknown benchmark %q", name)
			}
			coldOpts := ipet.DefaultOptions()
			coldOpts.Workers = 1
			coldOpts.DedupSets, coldOpts.WarmStart, coldOpts.IncumbentPrune = false, false, false
			cold, err := bm.Build(coldOpts)
			if err != nil {
				t.Fatal(err)
			}
			want := benchReportOf(cold.Est)
			masks := []int{1, 2, 4, 7}
			if !testing.Short() {
				masks = []int{0, 1, 2, 3, 4, 5, 6, 7}
			}
			for _, mask := range masks {
				dedup, warm, prune := mask&1 != 0, mask&2 != 0, mask&4 != 0
				for _, workers := range []int{1, 4} {
					opts := ipet.DefaultOptions()
					opts.Workers = workers
					opts.DedupSets, opts.WarmStart, opts.IncumbentPrune = dedup, warm, prune
					bt, err := bm.Build(opts)
					if err != nil {
						t.Fatalf("dedup=%v warm=%v prune=%v workers=%d: %v",
							dedup, warm, prune, workers, err)
					}
					if got := benchReportOf(bt.Est); !reflect.DeepEqual(want, got) {
						t.Errorf("dedup=%v warm=%v prune=%v workers=%d diverges:\nwant: %+v\ngot:  %+v",
							dedup, warm, prune, workers, want, got)
					}
				}
			}
		})
	}
}
