package bench

import (
	"testing"

	"cinderella/internal/ilp"
	"cinderella/internal/ipet"
)

// TestStructuralMatricesAreNetwork pins the paper's Section III.D claim on
// real Table I programs, and with it the solver router's decision surface:
//
//   - The flow-conservation rows of dhry and des (block = sum(in),
//     block = sum(out), root entry = 1) form a recognizable network
//     (node-arc incidence) matrix — the polynomial-time shape the
//     min-cost-flow kernel fires on.
//   - The eq. 12 call-linkage rows give every call-edge column a third
//     nonzero (the edge already sits in its caller's out-row and the
//     return successor's in-row), so the full interprocedural system of a
//     multi-procedure program is NOT strict network form and routes to the
//     revised simplex kernel instead.
//   - The k·x loop-bound rows those programs add are likewise off the
//     network form: a scaled coefficient can never be a ±1 incidence entry.
//
// A call-free, loop-free program (the explosion chain) keeps its entire
// structural system on the network path, which is where the committed
// BENCH_estimate.json network_solves counts come from.
func TestStructuralMatricesAreNetwork(t *testing.T) {
	for _, name := range []string{"dhry", "des"} {
		bm, ok := ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		bt, err := bm.Build(ipet.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		flow := bt.An.FlowConstraints()
		if len(flow) == 0 {
			t.Fatalf("%s: no flow-conservation constraints", name)
		}
		p := &ilp.Problem{NumVars: bt.An.NumVars(), Constraints: flow}
		if !ilp.IsNetworkMatrix(p) {
			t.Errorf("%s: flow-conservation matrix (%d rows) is not recognized as a network matrix", name, len(flow))
		}

		structural := bt.An.StructuralConstraints()
		if len(structural) <= len(flow) {
			t.Fatalf("%s: expected call-linkage rows beyond the %d conservation rows, got %d structural rows",
				name, len(flow), len(structural))
		}
		full := &ilp.Problem{NumVars: bt.An.NumVars(), Constraints: structural}
		if ilp.IsNetworkMatrix(full) {
			t.Errorf("%s: interprocedural system with call-linkage rows was accepted as network form", name)
		}

		loops := bt.An.LoopBoundConstraints()
		if len(loops) == 0 {
			t.Fatalf("%s: no loop-bound constraints", name)
		}
		scaled := false
		for _, c := range loops {
			for _, v := range c.Coeffs {
				if v != 0 && v != 1 && v != -1 {
					scaled = true
				}
			}
		}
		if !scaled {
			t.Fatalf("%s: expected at least one k-scaled loop-bound row", name)
		}
		bounded := &ilp.Problem{NumVars: bt.An.NumVars(),
			Constraints: append(append([]ilp.Constraint{}, flow...), loops...)}
		if ilp.IsNetworkMatrix(bounded) {
			t.Errorf("%s: k-scaled loop-bound rows were accepted as network form", name)
		}
	}

	// Call-free control: the whole structural system of the explosion chain
	// is an incidence matrix, so its sets ride the flow fast path.
	exAn, err := explosionWorkload(6, ipet.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	structural := exAn.StructuralConstraints()
	p := &ilp.Problem{NumVars: exAn.NumVars(), Constraints: structural}
	if !ilp.IsNetworkMatrix(p) {
		t.Errorf("explosion64: call-free structural matrix (%d rows) is not recognized as a network matrix", len(structural))
	}
}
