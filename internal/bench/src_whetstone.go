package bench

import (
	"fmt"
	"math"

	"cinderella/internal/asm"
	"cinderella/internal/sim"
)

func init() {
	register(&Benchmark{
		Name:       "whetstone",
		Desc:       "Whetstone benchmark",
		Root:       "whetstone",
		PaperLines: 245,
		PaperSets:  1,
		Source: `
/* whetstone: the classic synthetic floating-point benchmark (Curnow &
 * Wichmann), module structure preserved, scaled to LOOP = 10. Module
 * trip counts follow the original weights. */
const LOOP = 10;
const N2 = 12 * LOOP;
const N3 = 14 * LOOP;
const N4 = 345 * LOOP;
const N6 = 210 * LOOP;
const N7 = 32 * LOOP;
const N8 = 899 * LOOP;
const N9 = 616 * LOOP;
const N11 = 93 * LOOP;

float e1[4];
float t;
float t1;
float t2;
float x;
float y;
float z;
int j;
int k;
int l;

int main() { return whetstone(); }

void pa(float e[]) {
    int jj;
    for (jj = 0; jj < 6; jj++) {
        e[0] = (e[0] + e[1] + e[2] - e[3]) * t;
        e[1] = (e[0] + e[1] - e[2] + e[3]) * t;
        e[2] = (e[0] - e[1] + e[2] + e[3]) * t;
        e[3] = (-e[0] + e[1] + e[2] + e[3]) / t2;
    }
}

void p0() {
    e1[j] = e1[k];
    e1[k] = e1[l];
    e1[l] = e1[j];
}

void p3(float xx, float yy) {
    float xt, yt;
    xt = t * (xx + yy);
    yt = t * (xt + yy);
    z = (xt + yt) / t2;
}

int whetstone() {
    int i;
    float x1, x2, x3, x4;

    t = 0.499975;
    t1 = 0.50025;
    t2 = 2.0;

    /* Module 2: array elements. */
    e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
    for (i = 0; i < N2; i++) {
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
        e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t;
    }

    /* Module 3: array as parameter. */
    for (i = 0; i < N3; i++) {
        pa(e1);
    }

    /* Module 4: conditional jumps. */
    j = 1;
    for (i = 0; i < N4; i++) {
        if (j == 1) j = 2; else j = 3;
        if (j > 2) j = 0; else j = 1;
        if (j < 1) j = 1; else j = 0;
    }

    /* Module 6: integer arithmetic. */
    j = 1; k = 2; l = 3;
    for (i = 0; i < N6; i++) {
        j = j * (k - j) * (l - k);
        k = l * k - (l - j) * k;
        l = (l - k) * (k + j);
        e1[l - 2] = j + k + l;
        e1[k - 2] = j * k * l;
    }

    /* Module 7: trigonometric functions. */
    x = 0.5; y = 0.5;
    for (i = 0; i < N7; i++) {
        x = t * atan(t2 * sin(x) * cos(x) / (cos(x + y) + cos(x - y) - 1.0));
        y = t * atan(t2 * sin(y) * cos(y) / (cos(x + y) + cos(x - y) - 1.0));
    }

    /* Module 8: procedure calls. */
    x = 1.0; y = 1.0; z = 1.0;
    for (i = 0; i < N8; i++) {
        p3(x, y);
    }

    /* Module 9: array references via a procedure. */
    j = 1; k = 2; l = 3;
    e1[0] = 1.0; e1[1] = 2.0; e1[2] = 3.0;
    for (i = 0; i < N9; i++) {
        p0();
    }

    /* Module 11: standard functions. */
    x = 0.75;
    for (i = 0; i < N11; i++) {
        x = sqrt(exp(log(x) / t1));
    }

    if (x > 0.0 && x < 1.0) return 1;
    return 0;
}
`,
		Annotations: `
func whetstone {
    loop 1: 120 .. 120
    loop 2: 140 .. 140
    loop 3: 3450 .. 3450
    loop 4: 2100 .. 2100
    loop 5: 320 .. 320
    loop 6: 8990 .. 8990
    loop 7: 6160 .. 6160
    loop 8: 930 .. 930
}
func pa {
    loop 1: 6 .. 6
}
`,
		Check: func(m *sim.Machine, exe *asm.Executable, rv int32) error {
			if rv != 1 {
				return fmt.Errorf("whetstone: convergence flag %d, want 1", rv)
			}
			addr := exe.Symbols["g_x"]
			x, err := m.ReadFloat(addr)
			if err != nil {
				return err
			}
			// Module 11 converges toward x -> x^(1/t1) fixpoint below 1.
			if math.IsNaN(x) || x <= 0 || x >= 1 {
				return fmt.Errorf("whetstone: x = %v out of range", x)
			}
			return nil
		},
	})
}
