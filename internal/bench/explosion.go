package bench

import (
	"fmt"
	"strings"
)

// ExplosionAsm generates the n-diamond path-explosion workload as CR32
// assembly plus its annotation text: a chain of n if/else diamonds whose
// exclusive-arm annotations expand to 2^n functionality constraint sets.
// It is the stress analog of the paper's benchmarks — structurally
// trivial, combinatorially explosive — used by examples/pathexplosion, the
// estimate perf artifact ("explosion64" is n=6), and the server load
// harness.
func ExplosionAsm(n int) (asmText, annots string) {
	var sb, ab strings.Builder
	sb.WriteString("main:\n")
	ab.WriteString("func main {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "        beq r1, r0, .La%d\n", i)
		fmt.Fprintf(&sb, "        mul r2, r2, r2\n")
		fmt.Fprintf(&sb, "        jmp .Lb%d\n", i)
		fmt.Fprintf(&sb, ".La%d:  addi r2, r2, 1\n", i)
		fmt.Fprintf(&sb, ".Lb%d:  addi r3, r3, 1\n", i)
		fmt.Fprintf(&ab, "    (x%d = 1 & x%d = 0) | (x%d = 0 & x%d = 1)\n",
			3*i+2, 3*i+3, 3*i+2, 3*i+3)
	}
	sb.WriteString("        halt\n")
	ab.WriteString("}\n")
	return sb.String(), ab.String()
}
