// Benchmark artifact emission: BENCH_estimate.json records the estimate
// benchmark's timing and solver-work counters so regressions in the
// incremental cross-product machinery (set dedup, warm starts, incumbent
// pruning) show up as reviewable diffs, not just local benchmark noise.
package bench

import (
	"encoding/json"
	"io"
	"os"

	"cinderella/internal/ipet"
)

// EstimatePerf is one row of BENCH_estimate.json: a named estimate
// workload with its per-operation cost and the solver-work breakdown of a
// steady-state Estimate call.
type EstimatePerf struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	SetsTotal        int `json:"sets_total"`
	SetsSolved       int `json:"sets_solved"`
	Deduped          int `json:"sets_deduped"`
	IncumbentSkipped int `json:"sets_incumbent_skipped"`
	CacheHits        int `json:"cache_hits"`
	Pivots           int `json:"pivots"`
	WarmSolves       int `json:"warm_solves"`
	ColdSolves       int `json:"cold_solves"`

	// Solver-kernel counters: cold solves answered by the min-cost-flow
	// fast path, and the revised (factored-basis) kernel's pivots and
	// refactorizations.
	NetworkSolves    int `json:"network_solves"`
	RevisedPivots    int `json:"revised_pivots"`
	Refactorizations int `json:"refactorizations"`

	SetsWidened  int  `json:"sets_widened"`
	SetsUnsolved int  `json:"sets_unsolved"`
	DeadlineHit  bool `json:"deadline_hit"`
	Exact        bool `json:"exact"`

	// Certificate-layer counters (ipet.Options.Certify): whether both bounds
	// were backed by exact rational checks, and the work the layer performed.
	Certified     bool `json:"certified"`
	RecheckedSets int  `json:"rechecked_sets"`
	CertFailures  int  `json:"cert_failures"`
	ExactResolves int  `json:"exact_resolves"`
	SuspectPivots int  `json:"suspect_pivots"`

	// Parametric-layer counters (Session.Parametrize): queries answered by
	// the piecewise-linear formula, enumerated regions, and queries that fell
	// back to a concrete warm-started solve.
	FormulaEvals   int64 `json:"formula_evals"`
	ParamRegions   int   `json:"param_regions"`
	ParamFallbacks int64 `json:"param_fallbacks"`

	WCET int64 `json:"wcet_cycles"`
	BCET int64 `json:"bcet_cycles"`

	// Server load-harness counters (internal/serve/loadgen rows, named
	// "serve/..."): request throughput and latency percentiles against a
	// live cinderelld instance, plus the store and soundness ledger of the
	// run. Zero (and omitted) for plain estimate workloads.
	Requests  int64   `json:"requests,omitempty"`
	ReqPerSec float64 `json:"req_per_sec,omitempty"`
	P50Us     int64   `json:"p50_us,omitempty"`
	P99Us     int64   `json:"p99_us,omitempty"`
	WarmP50Us int64   `json:"warm_p50_us,omitempty"`
	ColdP50Us int64   `json:"cold_p50_us,omitempty"`
	// PrepareP50Us/PrepareP99Us split the frontend+Prepare pipeline cost
	// out of cold latencies; ArtifactHitRate is the prepare-artifact cache
	// hit fraction across the run (serve rows), and ArtifactHits/Misses
	// are the per-Prepare artifact counters (prepare rows).
	PrepareP50Us    int64   `json:"prepare_p50_us,omitempty"`
	PrepareP99Us    int64   `json:"prepare_p99_us,omitempty"`
	ArtifactHitRate float64 `json:"artifact_hit_rate,omitempty"`
	ArtifactHits    int64   `json:"artifact_hits,omitempty"`
	ArtifactMisses  int64   `json:"artifact_misses,omitempty"`
	Degraded        int64   `json:"degraded,omitempty"`
	Shed            int64   `json:"shed,omitempty"`
	Coalesced       int64   `json:"coalesced,omitempty"`
	Evictions       int64   `json:"evictions,omitempty"`
	NonSound        int64   `json:"non_sound,omitempty"`
}

// FillFromEstimate copies the solver-work counters and bounds of est.
func (p *EstimatePerf) FillFromEstimate(est *ipet.Estimate) {
	p.SetsTotal = est.Stats.SetsTotal
	p.SetsSolved = est.SolvedSets
	p.Deduped = est.Stats.Deduped
	p.IncumbentSkipped = est.Stats.IncumbentSkipped
	p.CacheHits = est.Stats.CacheHits
	p.Pivots = est.Stats.Pivots
	p.WarmSolves = est.Stats.WarmSolves
	p.ColdSolves = est.Stats.ColdSolves
	p.NetworkSolves = est.Stats.NetworkSolves
	p.RevisedPivots = est.Stats.RevisedPivots
	p.Refactorizations = est.Stats.Refactorizations
	p.SetsWidened = est.Stats.SetsWidened
	p.SetsUnsolved = est.Stats.SetsUnsolved
	p.DeadlineHit = est.Stats.DeadlineHit
	p.Exact = est.WCET.Exact && est.BCET.Exact
	p.Certified = est.WCET.Certified && est.BCET.Certified
	p.RecheckedSets = est.WCET.RecheckedSets + est.BCET.RecheckedSets
	p.CertFailures = est.Stats.CertFailures
	p.ExactResolves = est.Stats.ExactResolves
	p.SuspectPivots = est.Stats.SuspectPivots
	p.FormulaEvals = int64(est.Stats.FormulaEvals)
	p.ParamRegions = est.Stats.ParamRegions
	p.ParamFallbacks = int64(est.Stats.ParamFallbacks)
	p.WCET = est.WCET.Cycles
	p.BCET = est.BCET.Cycles
}

// WriteEstimatePerf writes the records as indented JSON.
func WriteEstimatePerf(w io.Writer, recs []EstimatePerf) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// WriteEstimatePerfFile writes the records to path.
func WriteEstimatePerfFile(path string, recs []EstimatePerf) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEstimatePerf(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
