package bench

import (
	"fmt"

	"cinderella/internal/asm"
	"cinderella/internal/sim"
)

// writeInts stores a slice of ints at a global symbol.
func writeInts(m *sim.Machine, exe *asm.Executable, sym string, vals []int32) error {
	addr, ok := exe.Symbols[sym]
	if !ok {
		return fmt.Errorf("bench: no symbol %q", sym)
	}
	for i, v := range vals {
		if err := m.WriteWord(addr+uint32(4*i), v); err != nil {
			return err
		}
	}
	return nil
}

// writeInt stores one int global.
func writeInt(m *sim.Machine, exe *asm.Executable, sym string, v int32) error {
	return writeInts(m, exe, sym, []int32{v})
}

// readInt loads one int global.
func readInt(m *sim.Machine, exe *asm.Executable, sym string) (int32, error) {
	addr, ok := exe.Symbols[sym]
	if !ok {
		return 0, fmt.Errorf("bench: no symbol %q", sym)
	}
	return m.ReadWord(addr)
}

func init() {
	register(&Benchmark{
		Name:       "check_data",
		Desc:       "Example from Park's thesis",
		Root:       "check_data",
		PaperLines: 17,
		PaperSets:  2,
		Source: `
/* check_data from Park's thesis, the paper's Fig. 5. */
const DATASIZE = 10;
int data[DATASIZE];

int main() { return check_data(); }

int check_data() {
    int i, morecheck, wrongone;
    morecheck = 1; i = 0; wrongone = -1;
    while (morecheck) {
        if (data[i] < 0) {
            wrongone = i; morecheck = 0;
        }
        else
            if (++i >= DATASIZE)
                morecheck = 0;
    }
    if (wrongone >= 0)
        return 0;
    else
        return 1;
}
`,
		// The loop iterates 1..10 times (eqs 14-15); the two loop arms are
		// mutually exclusive per execution (eq 16); the then-arm executes
		// exactly when "return 0" does (eq 17). Block numbers refer to the
		// compiled CFG (asserted by TestCheckDataBlockNumbering): the
		// paper's x3/x5/x8 are x4 (wrongone = i arm), x6 (morecheck = 0
		// arm) and x9 (return 0) here.
		Annotations: `
func check_data {
    loop 1: 1 .. 10
    (x4 = 0 & x6 = 1) | (x4 = 1 & x6 = 0)
    x4 = x9
}
`,
		WorstSetup: func(m *sim.Machine, exe *asm.Executable) error {
			// All clean: ten full iterations through the ++i arm plus the
			// morecheck=0 exit — the longest path in the compiled code.
			vals := make([]int32, 10)
			for i := range vals {
				vals[i] = 1
			}
			return writeInts(m, exe, "g_data", vals)
		},
		BestSetup: func(m *sim.Machine, exe *asm.Executable) error {
			vals := make([]int32, 10)
			vals[0] = -1 // single iteration, exit through the then-arm
			return writeInts(m, exe, "g_data", vals)
		},
		Check: func(m *sim.Machine, exe *asm.Executable, rv int32) error {
			if rv != 1 {
				return fmt.Errorf("check_data returned %d on clean data, want 1", rv)
			}
			return nil
		},
	})

	register(&Benchmark{
		Name:       "piksrt",
		Desc:       "Insertion Sort",
		Root:       "piksrt",
		PaperLines: 15,
		PaperSets:  1,
		Source: `
/* piksrt: straight insertion sort of N elements (Numerical Recipes). */
const N = 10;
int arr[N];

int main() { return piksrt(); }

int piksrt() {
    int i, j, a;
    for (j = 1; j < N; j++) {
        a = arr[j];
        i = j - 1;
        while (i >= 0 && arr[i] > a) {
            arr[i + 1] = arr[i];
            i = i - 1;
        }
        arr[i + 1] = a;
    }
    return arr[0];
}
`,
		// Outer loop: exactly N-1 = 9 iterations; inner while up to 9 per
		// entry. The remaining facts capture the triangular structure
		// exactly (block numbers per TestPiksrtBlockNumbering): the body
		// x8 runs at most 45 times in total, the second condition x5
		// (arr[i] > a) is evaluated at most 45 times and at least once per
		// outer iteration (i = j-1 >= 0 always holds on entry).
		Annotations: `
func piksrt {
    loop 1: 9 .. 9
    loop 2: 0 .. 9
    x8 <= 45
    x5 <= 45
    x5 >= 9
}
`,
		WorstSetup: func(m *sim.Machine, exe *asm.Executable) error {
			vals := make([]int32, 10)
			for i := range vals {
				vals[i] = int32(10 - i) // reverse sorted: maximal shifting
			}
			return writeInts(m, exe, "g_arr", vals)
		},
		BestSetup: func(m *sim.Machine, exe *asm.Executable) error {
			vals := make([]int32, 10)
			for i := range vals {
				vals[i] = int32(i) // already sorted: zero inner iterations
			}
			return writeInts(m, exe, "g_arr", vals)
		},
		Check: func(m *sim.Machine, exe *asm.Executable, rv int32) error {
			addr := exe.Symbols["g_arr"]
			prev := int32(-1 << 30)
			for i := 0; i < 10; i++ {
				v, err := m.ReadWord(addr + uint32(4*i))
				if err != nil {
					return err
				}
				if v < prev {
					return fmt.Errorf("piksrt: arr[%d]=%d < arr[%d]=%d", i, v, i-1, prev)
				}
				prev = v
			}
			return nil
		},
	})

	register(&Benchmark{
		Name:       "line",
		Desc:       "Line drawing routine in Gupta's thesis",
		Root:       "line",
		PaperLines: 165,
		PaperSets:  1,
		Source: `
/* line: Bresenham line rasterizer onto a GRID x GRID frame buffer,
 * fixed-step formulation (max(dx, dy) + 1 plotted points). */
const GRID = 64;
int frame[GRID][GRID];
int px0; int py0; int px1; int py1;

int main() { return line(); }

void plot(int x, int y) {
    int in;
    in = (x >= 0) & (x < GRID) & (y >= 0) & (y < GRID);
    if (in) frame[y][x] = 1;
}

int absi(int v) {
    if (v < 0) return -v;
    return v;
}

int line() {
    int x0, y0, x1, y1;
    int dx, dy, sx, sy, err, e2, n, k;
    x0 = px0; y0 = py0; x1 = px1; y1 = py1;
    dx = absi(x1 - x0);
    dy = -absi(y1 - y0);
    if (x0 < x1) sx = 1; else sx = -1;
    if (y0 < y1) sy = 1; else sy = -1;
    n = dx;
    if (-dy > n) n = -dy;
    n = n + 1;
    err = dx + dy;
    for (k = 0; k < n; k++) {
        plot(x0, y0);
        e2 = 2 * err;
        if (e2 >= dy) {
            err += dy;
            x0 += sx;
        }
        if (e2 <= dx) {
            err += dx;
            y0 += sy;
        }
    }
    return n;
}
`,
		// The loop visits at most GRID points along the major axis. All
		// endpoints stay on the grid, so plot's clip test always passes
		// (plot's store block x2 executes once per call).
		Annotations: `
func line {
    loop 1: 1 .. 64
    ; Bresenham invariant: every step advances at least one axis, so the
    ; two adjustment arms (x15, x17) together fire at least once per
    ; iteration (x18 is the loop latch).
    x15 + x17 >= x18
}
func plot {
    x2 = x1
}
`,
		WorstSetup: func(m *sim.Machine, exe *asm.Executable) error {
			// Near-diagonal: maximal steps with both adjustments firing.
			if err := writeInt(m, exe, "g_px0", 0); err != nil {
				return err
			}
			if err := writeInt(m, exe, "g_py0", 0); err != nil {
				return err
			}
			if err := writeInt(m, exe, "g_px1", 63); err != nil {
				return err
			}
			return writeInt(m, exe, "g_py1", 63)
		},
		BestSetup: func(m *sim.Machine, exe *asm.Executable) error {
			for _, s := range []string{"g_px0", "g_py0", "g_px1", "g_py1"} {
				if err := writeInt(m, exe, s, 1); err != nil {
					return err
				}
			}
			return nil
		},
		Check: func(m *sim.Machine, exe *asm.Executable, rv int32) error {
			if rv != 64 {
				return fmt.Errorf("line: diagonal took %d steps, want 64", rv)
			}
			return nil
		},
	})

	register(&Benchmark{
		Name:       "circle",
		Desc:       "Circle drawing routine in Gupta's thesis",
		Root:       "circle",
		PaperLines: 88,
		PaperSets:  1,
		Source: `
/* circle: midpoint circle rasterizer, radius from a global. */
const GRID = 128;
int frame[GRID][GRID];
int radius;

int main() { return circle(); }

void plot(int x, int y) {
    int in;
    in = (x >= 0) & (x < GRID) & (y >= 0) & (y < GRID);
    if (in) frame[y][x] = 1;
}

void plot8(int cx, int cy, int x, int y) {
    plot(cx + x, cy + y);
    plot(cx - x, cy + y);
    plot(cx + x, cy - y);
    plot(cx - x, cy - y);
    plot(cx + y, cy + x);
    plot(cx - y, cy + x);
    plot(cx + y, cy - x);
    plot(cx - y, cy - x);
}

int circle() {
    int x, y, d, cx, cy, n;
    cx = GRID / 2; cy = GRID / 2;
    x = 0; y = radius;
    d = 1 - radius;
    n = 0;
    while (x <= y) {
        plot8(cx, cy, x, y);
        n++;
        if (d < 0) {
            d = d + 2 * x + 3;
        } else {
            d = d + 2 * (x - y) + 5;
            y--;
        }
        x++;
    }
    return n;
}
`,
		// Octant iterations: ceil(r/sqrt(2)) + 1 <= 37 for r = 50, and y
		// decrements (the else arm x6) at most r - floor(r/sqrt(2)) + 1 <=
		// 16 times. The circle stays on the grid so plot's clip test
		// always passes.
		Annotations: `
func circle {
    loop 1: 1 .. 36
    x6 <= 16
}
func plot {
    x2 = x1
}
`,
		WorstSetup: func(m *sim.Machine, exe *asm.Executable) error {
			return writeInt(m, exe, "g_radius", 50)
		},
		BestSetup: func(m *sim.Machine, exe *asm.Executable) error {
			return writeInt(m, exe, "g_radius", 0)
		},
		Check: func(m *sim.Machine, exe *asm.Executable, rv int32) error {
			if rv < 36 || rv > 37 {
				return fmt.Errorf("circle: %d octant steps for r=50", rv)
			}
			return nil
		},
	})

	register(&Benchmark{
		Name:       "matgen",
		Desc:       "Matrix routine in Linpack benchmark",
		Root:       "matgen",
		PaperLines: 50,
		PaperSets:  1,
		Source: `
/* matgen: Linpack's pseudo-random matrix generator. */
const N = 20;
float a[N][N];
float bvec[N];

int main() { return matgen(); }

int matgen() {
    int init, i, j;
    float norma, v;
    init = 1325;
    norma = 0.0;
    for (j = 0; j < N; j++) {
        for (i = 0; i < N; i++) {
            init = 3125 * init % 65536;
            v = (init - 32768.0) / 16384.0;
            a[i][j] = v;
            norma = norma + v * v;
        }
    }
    for (i = 0; i < N; i++) {
        bvec[i] = 0.0;
    }
    for (j = 0; j < N; j++) {
        for (i = 0; i < N; i++) {
            bvec[i] = bvec[i] + a[i][j];
        }
    }
    return init;
}
`,
		Annotations: `
func matgen {
    loop 1: 20 .. 20
    loop 2: 20 .. 20
    loop 3: 20 .. 20
    loop 4: 20 .. 20
    loop 5: 20 .. 20
}
`,
		Check: func(m *sim.Machine, exe *asm.Executable, rv int32) error {
			// The Lehmer stream is deterministic; spot-check the final
			// state: 3125^400 * 1325 mod 65536.
			want := int32(1325)
			for i := 0; i < 400; i++ {
				want = 3125 * want % 65536
			}
			if rv != want {
				return fmt.Errorf("matgen final state %d, want %d", rv, want)
			}
			return nil
		},
	})
}
