package bench

import (
	"testing"

	"cinderella/internal/cc"
	"cinderella/internal/cfg"
	"cinderella/internal/eval"
	"cinderella/internal/ilp"
	"cinderella/internal/ipet"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("registry has %d benchmarks, want the 13 of Table I", len(all))
	}
	for i, want := range tableIOrder {
		if all[i].Name != want {
			t.Fatalf("position %d: %s, want %s", i, all[i].Name, want)
		}
	}
	if _, ok := ByName("check_data"); !ok {
		t.Fatal("ByName failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName found a ghost")
	}
}

// buildAll caches analysis results across tests (some are expensive).
var builtCache = map[string]*Built{}

func built(t *testing.T, name string) *Built {
	t.Helper()
	if bt, ok := builtCache[name]; ok {
		return bt
	}
	b, ok := ByName(name)
	if !ok {
		t.Fatalf("no benchmark %q", name)
	}
	bt, err := b.Build(ipet.DefaultOptions())
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	builtCache[name] = bt
	return bt
}

// TestFunctionalCorrectness runs every benchmark with its worst-case data
// and applies its ground-truth check (DES test vector, FFT impulse, sorted
// output, ...).
func TestFunctionalCorrectness(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			bt := built(t, b.Name)
			if err := bt.RunWorst(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEnclosure is Fig. 1 across the whole suite: estimated bound encloses
// the calculated bound (Experiment 1) and the measured bound (Experiment 2).
func TestEnclosure(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			bt := built(t, b.Name)
			est := bt.EstimatedBound()
			calc, err := bt.CalculatedBound()
			if err != nil {
				t.Fatalf("calculated: %v", err)
			}
			if !est.Encloses(calc) {
				t.Errorf("estimated %v does not enclose calculated %v", est, calc)
			}
			meas, err := bt.MeasuredBound()
			if err != nil {
				t.Fatalf("measured: %v", err)
			}
			if !est.Encloses(meas) {
				t.Errorf("estimated %v does not enclose measured %v", est, meas)
			}
			// The calculated bound uses extreme per-block costs, so it
			// also encloses the measurement.
			if !calc.Encloses(meas) {
				t.Errorf("calculated %v does not enclose measured %v", calc, meas)
			}
		})
	}
}

// TestPathAnalysisPessimism reproduces the shape of Table II: with the
// supplied functionality constraints, the path analysis is exact (0.00 at
// the paper's two-decimal precision) for most rows and very tight for the
// rest. Thresholds are per benchmark; 0 means cycle-exact.
func TestPathAnalysisPessimism(t *testing.T) {
	// Maximum tolerated WCET / BCET path pessimism per benchmark.
	limits := map[string][2]float64{
		"check_data":      {0, 0},
		"fft":             {0, 0},
		"piksrt":          {0, 0},
		"des":             {0.005, 0.005},
		"line":            {0.005, 0.07},
		"circle":          {0.005, 0.05},
		"jpeg_fdct_islow": {0, 0},
		"jpeg_idct_islow": {0.005, 0.01},
		"recon":           {0.005, 0.01},
		"fullsearch":      {0.005, 0.005},
		"whetstone":       {0.005, 0.005},
		// dhry trades a little exactness for reproducing the paper's
		// 8-sets/5-null narrative: the surviving alternative sets leave
		// the boolGlob arm unpinned on the BCET side.
		"dhry":   {0.02, 0.08},
		"matgen": {0, 0},
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			bt := built(t, b.Name)
			est := bt.EstimatedBound()
			calc, err := bt.CalculatedBound()
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := eval.Pessimism(est, calc)
			lim := limits[b.Name]
			if hi > lim[0] {
				t.Errorf("WCET path pessimism %.4f > %.3f (est %d vs calc %d)",
					hi, lim[0], est.Hi, calc.Hi)
			}
			if lo > lim[1] {
				t.Errorf("BCET path pessimism %.4f > %.3f (est %d vs calc %d)",
					lo, lim[1], est.Lo, calc.Lo)
			}
			if lo < 0 || hi < 0 {
				t.Errorf("negative pessimism [%.4f, %.4f]: bound does not enclose", lo, hi)
			}
		})
	}
}

// TestFullsearchBlockNumbering pins the dist1 structure the context
// constraints reference: two call-site instances and eight fixed loops.
func TestFullsearchBlockNumbering(t *testing.T) {
	bt := built(t, "fullsearch")
	fc := bt.CFG.Funcs["dist1"]
	if len(fc.Loops) != 8 {
		t.Fatalf("dist1 has %d loops, want 8", len(fc.Loops))
	}
	instances := 0
	for _, ctx := range bt.An.Contexts() {
		if ctx.Func == "dist1" {
			instances++
		}
	}
	if instances != 2 {
		t.Fatalf("dist1 has %d instances, want 2 (integer + half-pel call sites)", instances)
	}
	if len(bt.CFG.Funcs["fullsearch"].Calls) != 2 {
		t.Fatalf("fullsearch has %d call sites", len(bt.CFG.Funcs["fullsearch"].Calls))
	}
}

// TestHardwarePessimism reproduces the shape of Table III: the estimated
// bound encloses the measured bound but with substantial pessimism, because
// the worst case assumes every fetch misses the cache.
func TestHardwarePessimism(t *testing.T) {
	sawBigGap := false
	for _, b := range All() {
		bt := built(t, b.Name)
		est := bt.EstimatedBound()
		meas, err := bt.MeasuredBound()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		_, hi := eval.Pessimism(est, meas)
		if hi < 0 {
			t.Errorf("%s: estimated WCET below measurement", b.Name)
		}
		if hi > 0.15 {
			sawBigGap = true
		}
	}
	if !sawBigGap {
		t.Error("no benchmark shows the Table III hardware-model pessimism (> 15%)")
	}
}

// TestConstraintSetCounts reproduces the Sets column of Table I, including
// the dhry narrative: 8 sets generated, 5 detected null and eliminated.
func TestConstraintSetCounts(t *testing.T) {
	for _, b := range All() {
		bt := built(t, b.Name)
		wantSets := 1
		switch b.Name {
		case "check_data":
			wantSets = 2
		case "dhry":
			wantSets = 8
		}
		if bt.Est.NumSets != wantSets {
			t.Errorf("%s: %d constraint sets, want %d", b.Name, bt.Est.NumSets, wantSets)
		}
		if b.Name == "dhry" {
			if bt.Est.PrunedSets != 5 || bt.Est.SolvedSets != 3 {
				t.Errorf("dhry: pruned %d / solved %d, want 5 / 3",
					bt.Est.PrunedSets, bt.Est.SolvedSets)
			}
		}
	}
}

// TestFirstLPIntegral is experiment E-S1: every ILP in the suite solves at
// its first LP relaxation, the paper's Section VI observation — and the
// Section III.D explanation holds: the structural constraints alone form a
// network (totally unimodular) matrix on every benchmark.
func TestFirstLPIntegral(t *testing.T) {
	for _, b := range All() {
		bt := built(t, b.Name)
		if !bt.Est.AllRootIntegral {
			t.Errorf("%s: some ILP required branching (branches=%d)", b.Name, bt.Est.Branches)
		}
		if bt.Est.Branches != 0 {
			t.Errorf("%s: %d branch-and-bound nodes, want 0", b.Name, bt.Est.Branches)
		}
		if !bt.An.StructuralNetworkMatrix() {
			t.Errorf("%s: structural constraints not a network matrix", b.Name)
		}
	}
}

// TestDhryBlockNumbering pins the compiled block numbers the dhry
// annotations reference: x10/x11 the func2 arms, x18 the boolGlob arm
// calling proc2, x23 the func1 then-arm.
func TestDhryBlockNumbering(t *testing.T) {
	bt := built(t, "dhry")
	fc := bt.CFG.Funcs["dhry"]
	if len(fc.Loops) != 3 {
		t.Fatalf("dhry has %d loops, want 3", len(fc.Loops))
	}
	callTargets := map[int]string{}
	for _, id := range fc.Calls {
		e := fc.Edges[id]
		callTargets[e.From] = e.Callee
	}
	// x10 and x11 (indices 9 and 10) are the two successors of the block
	// that receives func2's return value.
	if callTargets[7] != "func2" {
		t.Errorf("block x8 calls %q, want func2", callTargets[7])
	}
	// x18 (index 17) must call proc2.
	if callTargets[17] != "proc2" {
		t.Errorf("block x18 calls %q, want proc2", callTargets[17])
	}
	// x21 (index 20) calls func1 ahead of the C-arm test.
	if callTargets[20] != "func1" {
		t.Errorf("block x21 calls %q, want func1", callTargets[20])
	}
}

// TestCheckDataBlockNumbering pins the block numbers referenced by the
// check_data annotations (the paper's x3/x5/x8 are compiled x4/x6/x9).
func TestCheckDataBlockNumbering(t *testing.T) {
	bt := built(t, "check_data")
	fc := bt.CFG.Funcs["check_data"]
	if len(fc.Blocks) != 11 {
		t.Fatalf("check_data has %d blocks", len(fc.Blocks))
	}
	if len(fc.Loops) != 1 || fc.Loops[0].Header != 1 {
		t.Fatalf("loop structure: %+v", fc.Loops)
	}
	l := fc.Loops[0]
	// x4 (then arm, index 3) and x6 (morecheck=0 arm, index 5) are inside
	// the loop; x9 (return 0, index 8) is outside.
	if !l.Contains(3) || !l.Contains(5) {
		t.Fatalf("annotation arms not in loop: %v", l.Blocks)
	}
	if l.Contains(8) {
		t.Fatal("return-0 block inside loop")
	}
}

// TestPiksrtBlockNumbering pins the inner-loop header block the x4 <= 54
// constraint bounds.
func TestPiksrtBlockNumbering(t *testing.T) {
	bt := built(t, "piksrt")
	fc := bt.CFG.Funcs["piksrt"]
	if len(fc.Loops) != 2 {
		t.Fatalf("piksrt has %d loops", len(fc.Loops))
	}
	inner := fc.Loops[1]
	if inner.Header != 3 { // x4
		t.Fatalf("inner loop header is x%d, want x4", inner.Header+1)
	}
}

// TestSourceLinesComparableToPaper checks our rewrites are in the same size
// class as the paper's Table I Lines column (within a factor of ~3 either
// way; dhry is deliberately compressed).
func TestSourceLinesComparableToPaper(t *testing.T) {
	for _, b := range All() {
		bt := built(t, b.Name)
		lines := bt.SourceLines
		if lines < b.PaperLines/4 || lines > b.PaperLines*4 {
			t.Errorf("%s: %d source lines vs paper's %d — out of the size class",
				b.Name, lines, b.PaperLines)
		}
	}
}

// TestCompilesDeterministically: building twice yields identical images.
func TestCompilesDeterministically(t *testing.T) {
	b, _ := ByName("fft")
	exe1, _, err := cc.Build(b.Source)
	if err != nil {
		t.Fatal(err)
	}
	exe2, _, err := cc.Build(b.Source)
	if err != nil {
		t.Fatal(err)
	}
	if string(exe1.Mem) != string(exe2.Mem) {
		t.Fatal("non-deterministic compilation")
	}
	if _, err := cfg.Build(exe1); err != nil {
		t.Fatal(err)
	}
}

// TestBenchProgramsSparseDenseDifferential rebuilds the whole suite with
// the solver's sparse/dense self-check armed: every simplex call made
// while estimating the 13 benchmarks is replayed through the dense oracle,
// and any divergence in status or objective panics. This extends the
// fixture-level differential of internal/ilp to the production workloads.
func TestBenchProgramsSparseDenseDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds the full suite twice per LP")
	}
	ilp.SetSelfCheck(true)
	defer ilp.SetSelfCheck(false)
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if _, err := b.Build(ipet.DefaultOptions()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// BenchmarkBuild times the full pipeline — compile, CFG, annotate,
// estimate — for the two ILP-heaviest benchmarks of the suite.
func BenchmarkBuild(b *testing.B) {
	for _, name := range []string{"dhry", "fullsearch"} {
		bm, ok := ByName(name)
		if !ok {
			b.Fatalf("unknown benchmark %q", name)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bm.Build(ipet.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
