package bench

import (
	"fmt"

	"cinderella/internal/asm"
	"cinderella/internal/sim"
)

func init() {
	register(&Benchmark{
		Name:       "recon",
		Desc:       "MPEG2 decoder reconstruction routine",
		Root:       "recon",
		PaperLines: 87,
		PaperSets:  1,
		Source: `
/* recon: MPEG-2 motion-compensated macroblock reconstruction. The
 * half-pel flags hx/hy select between plain copy and 2- or 4-tap
 * interpolation, the way recon_comp does in mpeg2decode. */
const MB = 16;
int refp[24][24];
int cur[MB][MB];
int hx;
int hy;

int main() { return recon(); }

int recon() {
    int i, j, mode;
    mode = hx * 2 + hy;
    if (mode == 3) {
        for (i = 0; i < MB; i++) {
            for (j = 0; j < MB; j++) {
                cur[i][j] = (refp[i][j] + refp[i][j + 1] +
                             refp[i + 1][j] + refp[i + 1][j + 1] + 2) / 4;
            }
        }
    } else if (mode == 2) {
        for (i = 0; i < MB; i++) {
            for (j = 0; j < MB; j++) {
                cur[i][j] = (refp[i][j] + refp[i][j + 1] + 1) / 2;
            }
        }
    } else if (mode == 1) {
        for (i = 0; i < MB; i++) {
            for (j = 0; j < MB; j++) {
                cur[i][j] = (refp[i][j] + refp[i + 1][j] + 1) / 2;
            }
        }
    } else {
        for (i = 0; i < MB; i++) {
            for (j = 0; j < MB; j++) {
                cur[i][j] = refp[i][j];
            }
        }
    }
    return cur[0][0];
}
`,
		Annotations: `
func recon {
    loop 1: 16 .. 16
    loop 2: 16 .. 16
    loop 3: 16 .. 16
    loop 4: 16 .. 16
    loop 5: 16 .. 16
    loop 6: 16 .. 16
    loop 7: 16 .. 16
    loop 8: 16 .. 16
}
`,
		WorstSetup: func(m *sim.Machine, exe *asm.Executable) error {
			// Half-pel in both dimensions: the 4-tap interpolation arm.
			if err := writeInt(m, exe, "g_hx", 1); err != nil {
				return err
			}
			if err := writeInt(m, exe, "g_hy", 1); err != nil {
				return err
			}
			return fillRef(m, exe)
		},
		BestSetup: func(m *sim.Machine, exe *asm.Executable) error {
			if err := writeInt(m, exe, "g_hx", 0); err != nil {
				return err
			}
			if err := writeInt(m, exe, "g_hy", 0); err != nil {
				return err
			}
			return fillRef(m, exe)
		},
		Check: func(m *sim.Machine, exe *asm.Executable, rv int32) error {
			// With a constant reference plane every mode reconstructs the
			// constant.
			if rv != 8 {
				return fmt.Errorf("recon: cur[0][0] = %d, want 8", rv)
			}
			return nil
		},
	})

	register(&Benchmark{
		Name:       "fullsearch",
		Desc:       "MPEG2 encoder frame search routine",
		Root:       "fullsearch",
		PaperLines: 204,
		PaperSets:  1,
		Source: `
/* fullsearch: exhaustive block-matching motion estimation over a
 * [0, 2W] x [0, 2W] integer window followed by a half-pel refinement of
 * the winner, SAD criterion, as in mpeg2encode. dist1 takes half-pel
 * coordinates and interpolates like the encoder's four variants. */
const B = 16;
const W = 4;
int org[B][B];
int refw[26][26];
int bestx;
int besty;
int offy[8] = {-1, -1, -1, 0, 0, 1, 1, 1};
int offx[8] = {-1, 0, 1, -1, 1, -1, 0, 1};

int main() { return fullsearch(); }

int dist1(int dy2, int dx2) {
    int y, x, hy, hx, i, j, d, sad;
    y = dy2 / 2;
    x = dx2 / 2;
    hy = dy2 & 1;
    hx = dx2 & 1;
    sad = 0;
    if (hy == 1 && hx == 1) {
        for (i = 0; i < B; i++) {
            for (j = 0; j < B; j++) {
                d = org[i][j] - (refw[i + y][j + x] + refw[i + y][j + x + 1] +
                                 refw[i + y + 1][j + x] + refw[i + y + 1][j + x + 1] + 2) / 4;
                sad += abs(d);
            }
        }
    } else if (hy == 1) {
        for (i = 0; i < B; i++) {
            for (j = 0; j < B; j++) {
                d = org[i][j] - (refw[i + y][j + x] + refw[i + y + 1][j + x] + 1) / 2;
                sad += abs(d);
            }
        }
    } else if (hx == 1) {
        for (i = 0; i < B; i++) {
            for (j = 0; j < B; j++) {
                d = org[i][j] - (refw[i + y][j + x] + refw[i + y][j + x + 1] + 1) / 2;
                sad += abs(d);
            }
        }
    } else {
        for (i = 0; i < B; i++) {
            for (j = 0; j < B; j++) {
                d = org[i][j] - refw[i + y][j + x];
                sad += abs(d);
            }
        }
    }
    return sad;
}

int fullsearch() {
    int dx, dy, sad, best, k, ry, rx, cy2, cx2;
    best = 1 << 30;
    for (dy = 0; dy <= 2 * W; dy++) {
        for (dx = 0; dx <= 2 * W; dx++) {
            sad = dist1(2 * dy, 2 * dx);
            if (sad < best) {
                best = sad;
                bestx = dx;
                besty = dy;
            }
        }
    }
    /* Half-pel refinement around the integer winner. */
    cy2 = 2 * besty;
    cx2 = 2 * bestx;
    ry = cy2;
    rx = cx2;
    for (k = 0; k < 8; k++) {
        sad = dist1(cy2 + offy[k], cx2 + offx[k]);
        if (sad < best) {
            best = sad;
            ry = cy2 + offy[k];
            rx = cx2 + offx[k];
        }
    }
    besty = ry;
    bestx = rx;
    return best;
}
`,
		// The integer search (call site f1) always takes dist1's integer
		// arm; the eight refinement probes (f2) split 4/2/2 over the
		// half-pel arms — the paper's eq. (18) caller-context constraints.
		// Block numbers per TestFullsearchBlockNumbering.
		Annotations: fullsearchAnnotations,
		WorstSetup: func(m *sim.Machine, exe *asm.Executable) error {
			// org = 0; refw decreasing in raster order so the SAD strictly
			// improves at every integer search position: all 81
			// best-updates fire, and the refinement improves further.
			if err := writeInts(m, exe, "g_org", make([]int32, 256)); err != nil {
				return err
			}
			return writeInts(m, exe, "g_refw", fullsearchField(-1))
		},
		BestSetup: func(m *sim.Machine, exe *asm.Executable) error {
			// refw increasing in raster order: only the first position
			// updates the best match and the refinement never improves.
			if err := writeInts(m, exe, "g_org", make([]int32, 256)); err != nil {
				return err
			}
			return writeInts(m, exe, "g_refw", fullsearchField(+1))
		},
		Check: func(m *sim.Machine, exe *asm.Executable, rv int32) error {
			wantBest, wantY, wantX := fullsearchReference(fullsearchField(-1))
			if rv != wantBest {
				return fmt.Errorf("fullsearch: best sad %d, want %d", rv, wantBest)
			}
			bx, err := readInt(m, exe, "g_bestx")
			if err != nil {
				return err
			}
			by, err := readInt(m, exe, "g_besty")
			if err != nil {
				return err
			}
			if bx != wantX || by != wantY {
				return fmt.Errorf("fullsearch: best position (%d, %d), want (%d, %d)", by, bx, wantY, wantX)
			}
			return nil
		},
	})
}

// fullsearchField builds the synthetic reference plane: values change
// monotonically along the raster scan with the given sign.
func fullsearchField(sign int32) []int32 {
	vals := make([]int32, 26*26)
	for y := 0; y < 26; y++ {
		for x := 0; x < 26; x++ {
			vals[y*26+x] = 600 + sign*int32(y*9+x)
		}
	}
	return vals
}

// fullsearchReference replicates the MC algorithm in Go (truncating
// division, same arm structure) to compute the expected result.
func fullsearchReference(refw []int32) (best, besty2, bestx2 int32) {
	ref := func(y, x int32) int32 { return refw[y*26+x] }
	dist1 := func(dy2, dx2 int32) int32 {
		y, x := dy2/2, dx2/2
		hy, hx := dy2&1, dx2&1
		sad := int32(0)
		for i := int32(0); i < 16; i++ {
			for j := int32(0); j < 16; j++ {
				var v int32
				switch {
				case hy == 1 && hx == 1:
					v = (ref(i+y, j+x) + ref(i+y, j+x+1) + ref(i+y+1, j+x) + ref(i+y+1, j+x+1) + 2) / 4
				case hy == 1:
					v = (ref(i+y, j+x) + ref(i+y+1, j+x) + 1) / 2
				case hx == 1:
					v = (ref(i+y, j+x) + ref(i+y, j+x+1) + 1) / 2
				default:
					v = ref(i+y, j+x)
				}
				d := -v // org is all zero
				if d < 0 {
					d = -d
				}
				sad += d
			}
		}
		return sad
	}
	best = 1 << 30
	var bx, by int32
	for dy := int32(0); dy <= 8; dy++ {
		for dx := int32(0); dx <= 8; dx++ {
			if sad := dist1(2*dy, 2*dx); sad < best {
				best, by, bx = sad, dy, dx
			}
		}
	}
	offy := []int32{-1, -1, -1, 0, 0, 1, 1, 1}
	offx := []int32{-1, 0, 1, -1, 1, -1, 0, 1}
	cy2, cx2 := 2*by, 2*bx
	ry, rx := cy2, cx2
	for k := 0; k < 8; k++ {
		if sad := dist1(cy2+offy[k], cx2+offx[k]); sad < best {
			best, ry, rx = sad, cy2+offy[k], cx2+offx[k]
		}
	}
	return best, ry, rx
}

// fullsearchAnnotations: block numbers of dist1's four mode arms are
// asserted by TestFullsearchBlockNumbering; E3/E2/E1 denote the loop-nest
// entries of the three interpolating arms (placeholders resolved below).
var fullsearchAnnotations = `
func fullsearch {
    loop 1: 9 .. 9
    loop 2: 9 .. 9
    loop 3: 8 .. 8
    ; eq. (18)-style caller-context facts: integer-search probes (f1)
    ; never interpolate; the 8 half-pel probes (f2) split 4/2/2 over the
    ; interpolating arms of dist1 (x5: 4-tap, x13: half-y, x21: half-x).
    dist1.x5 @ f1 = 0
    dist1.x13 @ f1 = 0
    dist1.x21 @ f1 = 0
    dist1.x5 @ f2 = 4
    dist1.x13 @ f2 = 2
    dist1.x21 @ f2 = 2
}
func dist1 {
    loop 1: 16 .. 16
    loop 2: 16 .. 16
    loop 3: 16 .. 16
    loop 4: 16 .. 16
    loop 5: 16 .. 16
    loop 6: 16 .. 16
    loop 7: 16 .. 16
    loop 8: 16 .. 16
}
`

// fillRef fills the reconstruction reference plane with a constant.
func fillRef(m *sim.Machine, exe *asm.Executable) error {
	vals := make([]int32, 24*24)
	for i := range vals {
		vals[i] = 8
	}
	return writeInts(m, exe, "g_refp", vals)
}
