package bench

import (
	"fmt"
	"math"

	"cinderella/internal/asm"
	"cinderella/internal/sim"
)

func init() {
	register(&Benchmark{
		Name:       "fft",
		Desc:       "Fast Fourier Transform",
		Root:       "fft",
		PaperLines: 56,
		PaperSets:  1,
		Source: `
/* fft: 32-point in-place radix-2 FFT, constant-geometry scheduling so
 * every loop has a fixed trip count (N/2 butterflies per stage). */
const N = 32;
const LOGN = 5;
float re[N];
float im[N];
float tre[N];
float tim[N];

int main() { return fft(); }

int fft() {
    int i, j, b, s, k, len, half, p;
    float ur, ui, wr, wi, xr, xi, yr, yi, ang;
    /* Bit-reversal permutation with a fixed LOGN-step reversal loop. */
    for (i = 0; i < N; i++) {
        j = 0;
        for (b = 0; b < LOGN; b++) {
            j = (j << 1) | ((i >> b) & 1);
        }
        tre[j] = re[i];
        tim[j] = im[i];
    }
    for (i = 0; i < N; i++) {
        re[i] = tre[i];
        im[i] = tim[i];
    }
    /* LOGN stages of N/2 butterflies each. */
    for (s = 1; s <= LOGN; s++) {
        len = 1 << s;
        half = len / 2;
        for (k = 0; k < N / 2; k++) {
            p = k / half;
            j = k % half;
            i = p * len + j;
            ang = -6.283185307179586 * j / len;
            wr = cos(ang);
            wi = sin(ang);
            xr = re[i];
            xi = im[i];
            yr = re[i + half] * wr - im[i + half] * wi;
            yi = re[i + half] * wi + im[i + half] * wr;
            re[i] = xr + yr;
            im[i] = xi + yi;
            re[i + half] = xr - yr;
            im[i + half] = xi - yi;
        }
    }
    return 0;
}
`,
		Annotations: `
func fft {
    loop 1: 32 .. 32   ; bit-reversal outer
    loop 2: 5 .. 5     ; reversal bits
    loop 3: 32 .. 32   ; copy back
    loop 4: 5 .. 5     ; stages
    loop 5: 16 .. 16   ; butterflies per stage
}
`,
		WorstSetup: func(m *sim.Machine, exe *asm.Executable) error {
			// Impulse input; the FFT's timing is data-independent, so the
			// same data serves both extremes.
			base := exe.Symbols["g_re"]
			for i := 0; i < 32; i++ {
				v := 0.0
				if i == 0 {
					v = 1.0
				}
				if err := m.WriteFloat(base+uint32(8*i), v); err != nil {
					return err
				}
			}
			return nil
		},
		Check: func(m *sim.Machine, exe *asm.Executable, rv int32) error {
			// FFT of an impulse is flat: re[k] = 1, im[k] = 0.
			reBase := exe.Symbols["g_re"]
			imBase := exe.Symbols["g_im"]
			for k := 0; k < 32; k++ {
				r, err := m.ReadFloat(reBase + uint32(8*k))
				if err != nil {
					return err
				}
				i, err := m.ReadFloat(imBase + uint32(8*k))
				if err != nil {
					return err
				}
				if math.Abs(r-1) > 1e-9 || math.Abs(i) > 1e-9 {
					return fmt.Errorf("fft: bin %d = (%g, %g), want (1, 0)", k, r, i)
				}
			}
			return nil
		},
	})

	register(&Benchmark{
		Name:       "jpeg_fdct_islow",
		Desc:       "JPEG forward discrete cosine transform",
		Root:       "jpeg_fdct_islow",
		PaperLines: 300,
		PaperSets:  1,
		Source: `
/* jpeg_fdct_islow: the accurate integer forward DCT of the Independent
 * JPEG Group's library (Loeffler-Ligtenberg-Moshovitz), operating in
 * place on an 8x8 block of samples. */
const CONST_BITS = 13;
const PASS1_BITS = 2;
const FIX_0_298631336 = 2446;
const FIX_0_390180644 = 3196;
const FIX_0_541196100 = 4433;
const FIX_0_765366865 = 6270;
const FIX_0_899976223 = 7373;
const FIX_1_175875602 = 9633;
const FIX_1_501321110 = 12299;
const FIX_1_847759065 = 15137;
const FIX_1_961570560 = 16069;
const FIX_2_053119869 = 16819;
const FIX_2_562915447 = 20995;
const FIX_3_072711026 = 25172;

int block[64];

int main() { return jpeg_fdct_islow(); }

int descale(int x, int n) {
    return (x + (1 << (n - 1))) >> n;
}

int jpeg_fdct_islow() {
    int tmp0, tmp1, tmp2, tmp3, tmp4, tmp5, tmp6, tmp7;
    int tmp10, tmp11, tmp12, tmp13;
    int z1, z2, z3, z4, z5;
    int ctr, base;

    /* Pass 1: process rows. */
    for (ctr = 0; ctr < 8; ctr++) {
        base = ctr * 8;
        tmp0 = block[base + 0] + block[base + 7];
        tmp7 = block[base + 0] - block[base + 7];
        tmp1 = block[base + 1] + block[base + 6];
        tmp6 = block[base + 1] - block[base + 6];
        tmp2 = block[base + 2] + block[base + 5];
        tmp5 = block[base + 2] - block[base + 5];
        tmp3 = block[base + 3] + block[base + 4];
        tmp4 = block[base + 3] - block[base + 4];

        tmp10 = tmp0 + tmp3;
        tmp13 = tmp0 - tmp3;
        tmp11 = tmp1 + tmp2;
        tmp12 = tmp1 - tmp2;

        block[base + 0] = (tmp10 + tmp11) << PASS1_BITS;
        block[base + 4] = (tmp10 - tmp11) << PASS1_BITS;

        z1 = (tmp12 + tmp13) * FIX_0_541196100;
        block[base + 2] = descale(z1 + tmp13 * FIX_0_765366865, CONST_BITS - PASS1_BITS);
        block[base + 6] = descale(z1 - tmp12 * FIX_1_847759065, CONST_BITS - PASS1_BITS);

        z1 = tmp4 + tmp7;
        z2 = tmp5 + tmp6;
        z3 = tmp4 + tmp6;
        z4 = tmp5 + tmp7;
        z5 = (z3 + z4) * FIX_1_175875602;

        tmp4 = tmp4 * FIX_0_298631336;
        tmp5 = tmp5 * FIX_2_053119869;
        tmp6 = tmp6 * FIX_3_072711026;
        tmp7 = tmp7 * FIX_1_501321110;
        z1 = -z1 * FIX_0_899976223;
        z2 = -z2 * FIX_2_562915447;
        z3 = -z3 * FIX_1_961570560;
        z4 = -z4 * FIX_0_390180644;

        z3 += z5;
        z4 += z5;

        block[base + 7] = descale(tmp4 + z1 + z3, CONST_BITS - PASS1_BITS);
        block[base + 5] = descale(tmp5 + z2 + z4, CONST_BITS - PASS1_BITS);
        block[base + 3] = descale(tmp6 + z2 + z3, CONST_BITS - PASS1_BITS);
        block[base + 1] = descale(tmp7 + z1 + z4, CONST_BITS - PASS1_BITS);
    }

    /* Pass 2: process columns. */
    for (ctr = 0; ctr < 8; ctr++) {
        tmp0 = block[ctr + 0] + block[ctr + 56];
        tmp7 = block[ctr + 0] - block[ctr + 56];
        tmp1 = block[ctr + 8] + block[ctr + 48];
        tmp6 = block[ctr + 8] - block[ctr + 48];
        tmp2 = block[ctr + 16] + block[ctr + 40];
        tmp5 = block[ctr + 16] - block[ctr + 40];
        tmp3 = block[ctr + 24] + block[ctr + 32];
        tmp4 = block[ctr + 24] - block[ctr + 32];

        tmp10 = tmp0 + tmp3;
        tmp13 = tmp0 - tmp3;
        tmp11 = tmp1 + tmp2;
        tmp12 = tmp1 - tmp2;

        block[ctr + 0] = descale(tmp10 + tmp11, PASS1_BITS);
        block[ctr + 32] = descale(tmp10 - tmp11, PASS1_BITS);

        z1 = (tmp12 + tmp13) * FIX_0_541196100;
        block[ctr + 16] = descale(z1 + tmp13 * FIX_0_765366865, CONST_BITS + PASS1_BITS);
        block[ctr + 48] = descale(z1 - tmp12 * FIX_1_847759065, CONST_BITS + PASS1_BITS);

        z1 = tmp4 + tmp7;
        z2 = tmp5 + tmp6;
        z3 = tmp4 + tmp6;
        z4 = tmp5 + tmp7;
        z5 = (z3 + z4) * FIX_1_175875602;

        tmp4 = tmp4 * FIX_0_298631336;
        tmp5 = tmp5 * FIX_2_053119869;
        tmp6 = tmp6 * FIX_3_072711026;
        tmp7 = tmp7 * FIX_1_501321110;
        z1 = -z1 * FIX_0_899976223;
        z2 = -z2 * FIX_2_562915447;
        z3 = -z3 * FIX_1_961570560;
        z4 = -z4 * FIX_0_390180644;

        z3 += z5;
        z4 += z5;

        block[ctr + 56] = descale(tmp4 + z1 + z3, CONST_BITS + PASS1_BITS);
        block[ctr + 40] = descale(tmp5 + z2 + z4, CONST_BITS + PASS1_BITS);
        block[ctr + 24] = descale(tmp6 + z2 + z3, CONST_BITS + PASS1_BITS);
        block[ctr + 8] = descale(tmp7 + z1 + z4, CONST_BITS + PASS1_BITS);
    }
    return block[0];
}
`,
		Annotations: `
func jpeg_fdct_islow {
    loop 1: 8 .. 8
    loop 2: 8 .. 8
}
`,
		WorstSetup: func(m *sim.Machine, exe *asm.Executable) error {
			// Constant block (timing is data-independent).
			vals := make([]int32, 64)
			for i := range vals {
				vals[i] = 4
			}
			return writeInts(m, exe, "g_block", vals)
		},
		Check: func(m *sim.Machine, exe *asm.Executable, rv int32) error {
			// A constant block c transforms to DC = 64c (the IJG forward
			// DCT is scaled up by 8 versus the true DCT's 8c), all AC 0.
			addr := exe.Symbols["g_block"]
			for i := 0; i < 64; i++ {
				v, err := m.ReadWord(addr + uint32(4*i))
				if err != nil {
					return err
				}
				want := int32(0)
				if i == 0 {
					want = 256
				}
				if v != want {
					return fmt.Errorf("fdct: coeff %d = %d, want %d", i, v, want)
				}
			}
			return nil
		},
	})

	register(&Benchmark{
		Name:       "jpeg_idct_islow",
		Desc:       "JPEG inverse discrete cosine transform",
		Root:       "jpeg_idct_islow",
		PaperLines: 300,
		PaperSets:  1,
		Source: `
/* jpeg_idct_islow: the accurate integer inverse DCT of the IJG library,
 * including the all-AC-zero column shortcut that makes its timing
 * data-dependent. Coefficients in coef[64], samples out in outb[64]. */
const CONST_BITS = 13;
const PASS1_BITS = 2;
const FIX_0_298631336 = 2446;
const FIX_0_390180644 = 3196;
const FIX_0_541196100 = 4433;
const FIX_0_765366865 = 6270;
const FIX_0_899976223 = 7373;
const FIX_1_175875602 = 9633;
const FIX_1_501321110 = 12299;
const FIX_1_847759065 = 15137;
const FIX_1_961570560 = 16069;
const FIX_2_053119869 = 16819;
const FIX_2_562915447 = 20995;
const FIX_3_072711026 = 25172;

int coef[64];
int wksp[64];
int outb[64];

int main() { return jpeg_idct_islow(); }

int descale(int x, int n) {
    return (x + (1 << (n - 1))) >> n;
}

int clamp8(int v) {
    if (v < -128) return -128;
    if (v > 127) return 127;
    return v;
}

int jpeg_idct_islow() {
    int tmp0, tmp1, tmp2, tmp3;
    int tmp10, tmp11, tmp12, tmp13;
    int z1, z2, z3, z4, z5;
    int ctr, dcval, base;

    /* Pass 1: process columns from coef, store into wksp. */
    for (ctr = 0; ctr < 8; ctr++) {
        if (coef[ctr + 8] == 0 && coef[ctr + 16] == 0 && coef[ctr + 24] == 0 &&
            coef[ctr + 32] == 0 && coef[ctr + 40] == 0 && coef[ctr + 48] == 0 &&
            coef[ctr + 56] == 0) {
            /* AC terms all zero: replicate the DC value. */
            dcval = coef[ctr] << PASS1_BITS;
            wksp[ctr + 0] = dcval;
            wksp[ctr + 8] = dcval;
            wksp[ctr + 16] = dcval;
            wksp[ctr + 24] = dcval;
            wksp[ctr + 32] = dcval;
            wksp[ctr + 40] = dcval;
            wksp[ctr + 48] = dcval;
            wksp[ctr + 56] = dcval;
            continue;
        }
        /* Even part. */
        z2 = coef[ctr + 16];
        z3 = coef[ctr + 48];
        z1 = (z2 + z3) * FIX_0_541196100;
        tmp2 = z1 + z3 * (-FIX_1_847759065);
        tmp3 = z1 + z2 * FIX_0_765366865;
        z2 = coef[ctr + 0];
        z3 = coef[ctr + 32];
        tmp0 = (z2 + z3) << CONST_BITS;
        tmp1 = (z2 - z3) << CONST_BITS;
        tmp10 = tmp0 + tmp3;
        tmp13 = tmp0 - tmp3;
        tmp11 = tmp1 + tmp2;
        tmp12 = tmp1 - tmp2;
        /* Odd part. */
        tmp0 = coef[ctr + 56];
        tmp1 = coef[ctr + 40];
        tmp2 = coef[ctr + 24];
        tmp3 = coef[ctr + 8];
        z1 = tmp0 + tmp3;
        z2 = tmp1 + tmp2;
        z3 = tmp0 + tmp2;
        z4 = tmp1 + tmp3;
        z5 = (z3 + z4) * FIX_1_175875602;
        tmp0 = tmp0 * FIX_0_298631336;
        tmp1 = tmp1 * FIX_2_053119869;
        tmp2 = tmp2 * FIX_3_072711026;
        tmp3 = tmp3 * FIX_1_501321110;
        z1 = -z1 * FIX_0_899976223;
        z2 = -z2 * FIX_2_562915447;
        z3 = -z3 * FIX_1_961570560;
        z4 = -z4 * FIX_0_390180644;
        z3 += z5;
        z4 += z5;
        tmp0 += z1 + z3;
        tmp1 += z2 + z4;
        tmp2 += z2 + z3;
        tmp3 += z1 + z4;
        wksp[ctr + 0] = descale(tmp10 + tmp3, CONST_BITS - PASS1_BITS);
        wksp[ctr + 56] = descale(tmp10 - tmp3, CONST_BITS - PASS1_BITS);
        wksp[ctr + 8] = descale(tmp11 + tmp2, CONST_BITS - PASS1_BITS);
        wksp[ctr + 48] = descale(tmp11 - tmp2, CONST_BITS - PASS1_BITS);
        wksp[ctr + 16] = descale(tmp12 + tmp1, CONST_BITS - PASS1_BITS);
        wksp[ctr + 40] = descale(tmp12 - tmp1, CONST_BITS - PASS1_BITS);
        wksp[ctr + 24] = descale(tmp13 + tmp0, CONST_BITS - PASS1_BITS);
        wksp[ctr + 32] = descale(tmp13 - tmp0, CONST_BITS - PASS1_BITS);
    }

    /* Pass 2: process rows from wksp into outb, with final clamping. */
    for (ctr = 0; ctr < 8; ctr++) {
        base = ctr * 8;
        /* Even part. */
        z2 = wksp[base + 2];
        z3 = wksp[base + 6];
        z1 = (z2 + z3) * FIX_0_541196100;
        tmp2 = z1 + z3 * (-FIX_1_847759065);
        tmp3 = z1 + z2 * FIX_0_765366865;
        tmp0 = (wksp[base + 0] + wksp[base + 4]) << CONST_BITS;
        tmp1 = (wksp[base + 0] - wksp[base + 4]) << CONST_BITS;
        tmp10 = tmp0 + tmp3;
        tmp13 = tmp0 - tmp3;
        tmp11 = tmp1 + tmp2;
        tmp12 = tmp1 - tmp2;
        /* Odd part. */
        tmp0 = wksp[base + 7];
        tmp1 = wksp[base + 5];
        tmp2 = wksp[base + 3];
        tmp3 = wksp[base + 1];
        z1 = tmp0 + tmp3;
        z2 = tmp1 + tmp2;
        z3 = tmp0 + tmp2;
        z4 = tmp1 + tmp3;
        z5 = (z3 + z4) * FIX_1_175875602;
        tmp0 = tmp0 * FIX_0_298631336;
        tmp1 = tmp1 * FIX_2_053119869;
        tmp2 = tmp2 * FIX_3_072711026;
        tmp3 = tmp3 * FIX_1_501321110;
        z1 = -z1 * FIX_0_899976223;
        z2 = -z2 * FIX_2_562915447;
        z3 = -z3 * FIX_1_961570560;
        z4 = -z4 * FIX_0_390180644;
        z3 += z5;
        z4 += z5;
        tmp0 += z1 + z3;
        tmp1 += z2 + z4;
        tmp2 += z2 + z3;
        tmp3 += z1 + z4;
        outb[base + 0] = clamp8(descale(tmp10 + tmp3, CONST_BITS + PASS1_BITS + 3));
        outb[base + 7] = clamp8(descale(tmp10 - tmp3, CONST_BITS + PASS1_BITS + 3));
        outb[base + 1] = clamp8(descale(tmp11 + tmp2, CONST_BITS + PASS1_BITS + 3));
        outb[base + 6] = clamp8(descale(tmp11 - tmp2, CONST_BITS + PASS1_BITS + 3));
        outb[base + 2] = clamp8(descale(tmp12 + tmp1, CONST_BITS + PASS1_BITS + 3));
        outb[base + 5] = clamp8(descale(tmp12 - tmp1, CONST_BITS + PASS1_BITS + 3));
        outb[base + 3] = clamp8(descale(tmp13 + tmp0, CONST_BITS + PASS1_BITS + 3));
        outb[base + 4] = clamp8(descale(tmp13 - tmp0, CONST_BITS + PASS1_BITS + 3));
    }
    return outb[0];
}
`,
		// The clamp never saturates for the evaluation data (JPEG-range
		// coefficients), so both saturation arms of clamp8 are dead: the
		// same kind of path fact the paper's IDL annotations express.
		Annotations: `
func jpeg_idct_islow {
    loop 1: 8 .. 8
    loop 2: 8 .. 8
    ; the DC-shortcut arm (x22) executes only when all seven AC tests
    ; were evaluated and true (x4..x19 are the test blocks)
    x22 <= x4
    x22 <= x7
    x22 <= x10
    x22 <= x13
    x22 <= x16
    x22 <= x19
}
func clamp8 {
    x2 = 0
    x4 = 0
}
`,
		WorstSetup: func(m *sim.Machine, exe *asm.Executable) error {
			// Only the last AC row is nonzero: every column walks the
			// entire all-zero test chain and still takes the full path —
			// the longest evaluation the code admits.
			vals := make([]int32, 64)
			for i := 56; i < 64; i++ {
				vals[i] = int32(i%7 + 1)
			}
			vals[0] = 40
			return writeInts(m, exe, "g_coef", vals)
		},
		BestSetup: func(m *sim.Machine, exe *asm.Executable) error {
			// DC-only block: all eight columns take the shortcut.
			vals := make([]int32, 64)
			vals[0] = 80
			return writeInts(m, exe, "g_coef", vals)
		},
		Check: func(m *sim.Machine, exe *asm.Executable, rv int32) error {
			// Round-trip property is exercised in the test suite; here we
			// sanity-check that the output landed within the clamp range.
			addr := exe.Symbols["g_outb"]
			for i := 0; i < 64; i++ {
				v, err := m.ReadWord(addr + uint32(4*i))
				if err != nil {
					return err
				}
				if v < -128 || v > 127 {
					return fmt.Errorf("idct: sample %d = %d outside [-128,127]", i, v)
				}
			}
			return nil
		},
	})
}
