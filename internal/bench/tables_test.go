package bench

import (
	"strings"
	"testing"

	"cinderella/internal/ipet"
)

func TestGroupFormatting(t *testing.T) {
	cases := map[int64]string{
		0: "0", 12: "12", 123: "123", 1234: "1,234",
		604169: "604,169", 1264430: "1,264,430", -4512: "-4,512",
	}
	for in, want := range cases {
		if got := group(in); got != want {
			t.Errorf("group(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full table run in short mode")
	}
	rows, err := RunAll(ipet.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	var b strings.Builder
	WriteTableI(&b, rows)
	WriteTableII(&b, rows)
	WriteTableIII(&b, rows)
	WriteSolverStats(&b, rows)
	out := b.String()
	for _, want := range []string{
		"TABLE I", "TABLE II", "TABLE III",
		"check_data", "dhry", "8)3", // dhry's sets column: 8 generated ) 3 solved
		"Pessimism", "Root integral",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q", want)
		}
	}
	// Table II pessimism must never be negative (enclosure), and the
	// Table III worst-case side must be clearly positive somewhere.
	sawHardwareGap := false
	for _, r := range rows {
		lo, hi := r.PessimismCalc()
		if lo < 0 || hi < 0 {
			t.Errorf("%s: negative Table II pessimism", r.Name)
		}
		_, mhi := r.PessimismMeas()
		if mhi > 0.15 {
			sawHardwareGap = true
		}
	}
	if !sawHardwareGap {
		t.Error("Table III shows no hardware pessimism")
	}
}
