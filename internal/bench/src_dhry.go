package bench

import (
	"fmt"

	"cinderella/internal/asm"
	"cinderella/internal/sim"
)

func init() {
	register(&Benchmark{
		Name:       "dhry",
		Desc:       "Dhrystone benchmark",
		Root:       "dhry",
		PaperLines: 761,
		PaperSets:  8,
		Source: `
/* dhry: a Dhrystone 2.1 adaptation. Records become parallel int arrays,
 * strings become int arrays compared element-wise; the procedure and
 * branch structure of the original main loop is preserved. RUNS = 50. */
const RUNS = 50;
const STRSIZE = 30;
const IDENT1 = 0;
const IDENT2 = 1;
const IDENT3 = 2;

int intGlob;
int boolGlob;
int ch1Glob;
int ch2Glob;
int arr1Glob[50];
int arr2Glob[50][50];

/* Two "records": discriminant, enum component, int component, string. */
int rec1Discr;
int rec1Enum;
int rec1Int;
int rec1Str[STRSIZE];
int rec2Discr;
int rec2Enum;
int rec2Int;
int rec2Str[STRSIZE];

int str1Glob[STRSIZE];
int str2Glob[STRSIZE];

int main() { return dhry(); }

void proc4() {
    int boolLoc;
    boolLoc = ch1Glob == 'A';
    boolGlob = boolLoc | boolGlob;
    ch2Glob = 'B';
}

void proc5() {
    ch1Glob = 'A';
    boolGlob = 0;
}

void proc7(int int1Par, int int2Par) {
    int intLoc;
    intLoc = int1Par + 2;
    intGlob = int2Par + intLoc;
}

void proc8(int arr1Par[], int int1Par, int int2Par) {
    int intLoc, intIndex;
    intLoc = int1Par + 5;
    arr1Par[intLoc] = int2Par;
    arr1Par[intLoc + 1] = arr1Par[intLoc];
    arr1Par[intLoc + 30] = intLoc;
    for (intIndex = intLoc; intIndex <= intLoc + 1; intIndex++) {
        arr2Glob[intLoc][intIndex] = intLoc;
    }
    arr2Glob[intLoc][intLoc - 1] = arr2Glob[intLoc][intLoc - 1] + 1;
    arr2Glob[intLoc + 20][intLoc] = arr1Par[intLoc];
    intGlob = 5;
}

int func1(int ch1Par, int ch2Par) {
    int chLoc1, chLoc2;
    chLoc1 = ch1Par;
    chLoc2 = chLoc1;
    if (chLoc2 != ch2Par)
        return IDENT1;
    else {
        ch1Glob = chLoc1;
        return IDENT2;
    }
}

int func2(int str1Par[], int str2Par[]) {
    int intLoc, chLoc;
    intLoc = 2;
    chLoc = 'A';
    while (intLoc <= 2) {
        if (func1(str1Par[intLoc], str2Par[intLoc + 1]) == IDENT1) {
            chLoc = 'A';
            intLoc = intLoc + 1;
        } else {
            intLoc = intLoc + 3;
        }
    }
    if (chLoc >= 'W' && chLoc < 'Z')
        intLoc = 7;
    if (chLoc == 'R')
        return 1;
    else {
        if (strgt(str1Par, str2Par)) {
            intLoc = intLoc + 7;
            intGlob = intLoc;
            return 1;
        }
        return 0;
    }
}

int func3(int enumParIn) {
    int enumLoc;
    enumLoc = enumParIn;
    if (enumLoc == IDENT3)
        return 1;
    return 0;
}

/* strgt: lexicographic > on the int-array strings. */
int strgt(int a[], int b[]) {
    int i;
    for (i = 0; i < STRSIZE; i++) {
        if (a[i] > b[i]) return 1;
        if (a[i] < b[i]) return 0;
    }
    return 0;
}

void strcopy(int dst[], int src[]) {
    int i;
    for (i = 0; i < STRSIZE; i++) {
        dst[i] = src[i];
    }
}

void proc6(int enumValPar) {
    int enumRes;
    enumRes = enumValPar;
    if (func3(enumValPar) == 0)
        enumRes = IDENT1;
    if (enumValPar == IDENT1)
        enumRes = IDENT1;
    else if (enumValPar == IDENT2)
        enumRes = IDENT3;
    rec1Enum = enumRes;
}

void proc3() {
    /* In the original, Proc_3 follows a pointer that is always valid. */
    if (rec2Discr == 0)
        rec1Int = 10;
    proc7(10, intGlob);
}

void proc1() {
    /* Operates on the record pair as Proc_1 does on *PtrParIn. */
    rec1Discr = rec2Discr;
    rec1Int = 5;
    rec2Int = rec1Int;
    proc3();
    if (rec1Discr == 0) {
        rec1Int = 6;
        proc6(rec1Enum);
        rec2Int = intGlob;
    } else {
        strcopy(rec1Str, rec2Str);
    }
}

void proc2(int int1Par) {
    int intLoc, done;
    intLoc = int1Par + 10;
    done = 0;
    while (done == 0) {
        if (ch1Glob == 'A') {
            intLoc = intLoc - 1;
            intGlob = intLoc - int1Par;
            done = 1;
        } else {
            done = 1;
        }
    }
}

int dhry() {
    int run, intLoc1, intLoc2, intLoc3, chIndex;

    /* Initialization, as in the Dhrystone main preamble. */
    rec2Discr = 0;
    rec2Enum = IDENT3;
    rec2Int = 40;
    intGlob = 0;
    boolGlob = 0;
    ch1Glob = 'A';
    ch2Glob = 'B';
    for (chIndex = 0; chIndex < STRSIZE; chIndex++) {
        str1Glob[chIndex] = 'D' + chIndex % 20;
        str2Glob[chIndex] = 'D' + chIndex % 20;
        rec2Str[chIndex] = 'S';
    }
    str2Glob[2] = 'X';
    arr1Glob[8] = 7;

    for (run = 0; run < RUNS; run++) {
        proc5();
        proc4();
        intLoc1 = 2;
        intLoc2 = 3;
        intLoc3 = 0;

        /* FACT A: str1Glob[3] vs str2Glob[3+...] comparison inside
         * func2 is input-determined; func2's overall result is fixed. */
        if (func2(str1Glob, str2Glob) == 1) {
            intLoc3 = intLoc1 * intLoc2;     /* arm A1 */
        } else {
            intLoc3 = intLoc1 + intLoc2;     /* arm A2 */
        }

        while (intLoc1 < intLoc2) {
            intLoc3 = 5 * intLoc1 - intLoc2;
            proc7(intLoc1, intLoc2);
            intLoc1 = intLoc1 + 1;
        }

        proc8(arr1Glob, 3, 7);
        proc1();

        /* FACT B: boolGlob was rebuilt by proc5/proc4 every iteration. */
        if (boolGlob == 1) {
            intLoc3 = intLoc3 + 1;           /* arm B1 */
            proc2(intLoc1);
        } else {
            intLoc3 = intLoc3 - 1;           /* arm B2 */
        }

        /* FACT C: func1 on equal characters returns IDENT2. */
        if (func1(ch1Glob, ch2Glob) == IDENT2) {
            intLoc3 = intLoc3 + 2;           /* arm C1 */
        } else {
            intLoc3 = intLoc3 + intGlob;     /* arm C2 */
        }
        intGlob = intGlob + intLoc3;
    }
    return intGlob;
}
`,
		// Annotations below are filled in by dhryAnnotations (the block
		// numbers of arms A/B/C depend on the compiled CFG and are
		// asserted by TestDhryBlockNumbering).
		Annotations: dhryAnnotations,
		Check: func(m *sim.Machine, exe *asm.Executable, rv int32) error {
			bg, err := readInt(m, exe, "g_boolGlob")
			if err != nil {
				return err
			}
			if bg != 1 {
				return fmt.Errorf("dhry: boolGlob = %d, want 1", bg)
			}
			ig, err := readInt(m, exe, "g_intGlob")
			if err != nil {
				return err
			}
			if ig == 0 {
				return fmt.Errorf("dhry: intGlob stayed 0")
			}
			return nil
		},
	})
}

// dhryAnnotations encodes the paper's dhry row: three disjunctive
// functionality facts whose cross product yields 8 constraint sets, 5 of
// which are trivially null (the paper: "of the eight constraint sets of
// function dhry, five of them are detected as null sets and eliminated").
// The block numbers are asserted against the compiled CFG by
// TestDhryBlockNumbering; placeholders here are replaced once known.
// In the compiled CFG of dhry (asserted by TestDhryBlockNumbering):
// x10/x11 are the then/else arms of the func2 test (arm A), x18 is the
// boolGlob then-arm that calls proc2 (arm B), and x23 is the func1==IDENT2
// then-arm (arm C).
var dhryAnnotations = `
func dhry {
    loop 1: 30 .. 30
    loop 2: 50 .. 50
    loop 3: 1 .. 1
    (x10 = 0 & x11 = 50) | (x10 = 50 & x11 = 0)
    (x10 = 0 & x18 = 50) | (x10 = 50 & x18 = 0)
    (x18 = 50) | (x23 = 0)
}
func func2 {
    ; the character comparison settles in one iteration
    loop 1: 1 .. 1
    x9 = 0      ; chLoc stays 'A': the >= 'W' test short-circuits
    x12 = 0     ; ... so intLoc = 7 is dead
    x14 = 0     ; chLoc == 'R' never holds
    x17 = 0     ; str1Glob is never lexicographically greater
}
func func1 {
    x3 = 0      ; the compared characters always differ
}
func proc1 {
    x5 = 0      ; the record discriminant is always 0: no string copy
}
func strgt {
    ; the strings agree on the first two characters and differ at the third
    loop 1: 2 .. 2
    x4 = 0      ; never greater before the difference
    x6 = x1     ; every call returns through the less-than arm
}
func strcopy {
    loop 1: 30 .. 30
}
func proc8 {
    loop 1: 2 .. 2
}
func proc2 {
    loop 1: 1 .. 1
}
`
