package bench

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/ipet"
)

// parametricBench is one repeated-query sweep workload: a program whose
// annotations leave one loop bound symbolic, with the declared parameter
// domain (256 bound combinations each).
type parametricBench struct {
	name  string
	prog  *cfg.Program
	root  string
	file  *constraint.File
	specs []ipet.ParamSpec
}

// explosionLoopProgram is the n-diamond path-explosion chain with a
// trailing counted loop appended, so the 2^n-set workload has a loop bound
// to parametrize. Returns the CFG and the annotation text (which leaves the
// loop's upper end as the symbol n1).
func explosionLoopProgram(n int) (*cfg.Program, string, error) {
	var sb, ab strings.Builder
	sb.WriteString("main:\n")
	ab.WriteString("func main {\n")
	ab.WriteString("    loop 1: 1 .. n1\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "        beq r1, r0, .La%d\n", i)
		fmt.Fprintf(&sb, "        mul r2, r2, r2\n")
		fmt.Fprintf(&sb, "        jmp .Lb%d\n", i)
		fmt.Fprintf(&sb, ".La%d:  addi r2, r2, 1\n", i)
		fmt.Fprintf(&sb, ".Lb%d:  addi r3, r3, 1\n", i)
		fmt.Fprintf(&ab, "    (x%d = 1 & x%d = 0) | (x%d = 0 & x%d = 1)\n",
			3*i+2, 3*i+3, 3*i+2, 3*i+3)
	}
	sb.WriteString(".Lt:    addi r4, r4, 1\n")
	sb.WriteString("        bne r4, r5, .Lt\n")
	sb.WriteString("        halt\n")
	ab.WriteString("}\n")
	exe, err := asm.Assemble(sb.String())
	if err != nil {
		return nil, "", err
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		return nil, "", err
	}
	return prog, ab.String(), nil
}

// parametricWorkloads builds the sweep workloads: dhry with its 30-iteration
// outer loop made symbolic over 256 values, and the 64-set explosion chain
// with its trailing loop symbolic over 256 values. The options mirror
// sessionBenchWorkloads so the session-warm baseline caches cleanly.
func parametricWorkloads(t *testing.T) ([]parametricBench, ipet.Options) {
	t.Helper()
	opts := ipet.DefaultOptions()
	opts.Workers = 1
	opts.PruneNullSets = false
	opts.IncumbentPrune = false

	dhryBM, ok := ByName("dhry")
	if !ok {
		t.Fatal("unknown benchmark dhry")
	}
	built, err := dhryBM.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	symText := strings.Replace(dhryBM.Annotations, "loop 1: 30 .. 30", "loop 1: 30 .. n1", 1)
	if symText == dhryBM.Annotations {
		t.Fatal("dhry parametrization found no loop bound to replace")
	}
	dhryFile, err := constraint.Parse(symText)
	if err != nil {
		t.Fatal(err)
	}

	exProg, exAnnots, err := explosionLoopProgram(6)
	if err != nil {
		t.Fatal(err)
	}
	exFile, err := constraint.Parse(exAnnots)
	if err != nil {
		t.Fatal(err)
	}

	return []parametricBench{
		{"dhry", built.CFG, dhryBM.Root, dhryFile, []ipet.ParamSpec{{Name: "n1", Lo: 30, Hi: 285}}},
		{"explosion64", exProg, "main", exFile, []ipet.ParamSpec{{Name: "n1", Lo: 1, Hi: 256}}},
	}, opts
}

// parametricRows runs the repeated-query sweep and produces the
// BENCH_estimate.json rows, enforcing the gates along the way:
//
//   - every swept point's formula answer bit-matches a session-warm
//     concrete solve of the same bound scenario, with zero fallbacks;
//   - ParamBound.Eval is at least 10x faster per query than a session-warm
//     Estimate, and allocates nothing;
//   - the one-shot baseline is measured on a 16-point stride subset.
func parametricRows(t *testing.T) []EstimatePerf {
	t.Helper()
	workloads, opts := parametricWorkloads(t)
	var rows []EstimatePerf
	for _, w := range workloads {
		sess, err := ipet.Prepare(w.prog, w.root, opts)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := sess.Parametrize(w.file, w.specs)
		if err != nil {
			t.Fatalf("%s: Parametrize: %v", w.name, err)
		}

		sp := w.specs[0]
		nPoints := int(sp.Hi - sp.Lo + 1)
		stride := nPoints / 16
		if stride == 0 {
			stride = 1
		}
		points := make([][]int64, 0, nPoints)
		var subsetAns []*ipet.Analyzer
		var subsetFiles []*constraint.File
		var lastParam, lastWarm *ipet.Estimate
		for theta := sp.Lo; theta <= sp.Hi; theta++ {
			points = append(points, []int64{theta})
			bound, err := w.file.Bind(map[string]int64{sp.Name: theta})
			if err != nil {
				t.Fatalf("%s: Bind(%d): %v", w.name, theta, err)
			}
			an, err := sess.Analyzer(bound)
			if err != nil {
				t.Fatalf("%s: Analyzer(%d): %v", w.name, theta, err)
			}
			want, err := an.Estimate()
			if err != nil {
				t.Fatalf("%s n1=%d: concrete estimate: %v", w.name, theta, err)
			}
			got, err := pb.EstimateAt([]int64{theta})
			if err != nil {
				t.Fatalf("%s n1=%d: EstimateAt: %v", w.name, theta, err)
			}
			if got.WCET.Cycles != want.WCET.Cycles || got.BCET.Cycles != want.BCET.Cycles {
				t.Errorf("%s n1=%d: formula bound [%d, %d] != concrete [%d, %d]",
					w.name, theta, got.BCET.Cycles, got.WCET.Cycles, want.BCET.Cycles, want.WCET.Cycles)
			}
			if int(theta-sp.Lo)%stride == 0 && len(subsetAns) < 16 {
				subsetAns = append(subsetAns, an)
				subsetFiles = append(subsetFiles, bound)
			}
			lastParam, lastWarm = got, want
		}
		sweepStats := pb.Stats()
		if sweepStats.ParamFallbacks != 0 {
			t.Errorf("%s: %d of %d swept points fell back to the concrete solver — formula coverage hole",
				w.name, sweepStats.ParamFallbacks, nPoints)
		}

		// Warm the subset analyzers to steady state before timing them.
		for _, an := range subsetAns {
			if _, err := an.Estimate(); err != nil {
				t.Fatal(err)
			}
		}

		paramRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, ok := pb.Eval(points[i%len(points)]); !ok {
					b.Fatal("uncovered point inside the swept domain")
				}
			}
		})
		sessRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := subsetAns[i%len(subsetAns)].Estimate(); err != nil {
					b.Fatal(err)
				}
			}
		})
		var lastOne *ipet.Estimate
		oneRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				an, err := ipet.New(w.prog, w.root, opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := an.Apply(subsetFiles[i%len(subsetFiles)]); err != nil {
					b.Fatal(err)
				}
				if lastOne, err = an.Estimate(); err != nil {
					b.Fatal(err)
				}
			}
		})

		if float64(paramRes.NsPerOp())*10 > float64(sessRes.NsPerOp()) {
			t.Errorf("%s: parametric eval %d ns/op vs session-warm %d ns/op — want at least 10x",
				w.name, paramRes.NsPerOp(), sessRes.NsPerOp())
		}
		if allocs := testing.AllocsPerRun(100, func() { pb.Eval(points[0]) }); allocs != 0 {
			t.Errorf("%s: Eval allocates %.1f per op on the hot path", w.name, allocs)
		}

		paramRow := EstimatePerf{
			Name:        w.name + "/sweep-parametric",
			NsPerOp:     float64(paramRes.NsPerOp()),
			AllocsPerOp: float64(paramRes.AllocsPerOp()),
		}
		paramRow.FillFromEstimate(lastParam)
		// Record the deterministic sweep counters, not the benchmark-inflated
		// ones: one formula eval per swept point, zero fallbacks.
		paramRow.FormulaEvals = sweepStats.FormulaEvals
		paramRow.ParamRegions = sweepStats.ParamRegions
		paramRow.ParamFallbacks = sweepStats.ParamFallbacks
		sessRow := EstimatePerf{
			Name:        w.name + "/sweep-session",
			NsPerOp:     float64(sessRes.NsPerOp()),
			AllocsPerOp: float64(sessRes.AllocsPerOp()),
		}
		sessRow.FillFromEstimate(lastWarm)
		oneRow := EstimatePerf{
			Name:        w.name + "/sweep-oneshot",
			NsPerOp:     float64(oneRes.NsPerOp()),
			AllocsPerOp: float64(oneRes.AllocsPerOp()),
		}
		oneRow.FillFromEstimate(lastOne)
		rows = append(rows, paramRow, sessRow, oneRow)
		t.Logf("%s: parametric %d ns/op (%d regions) vs session-warm %d ns/op vs one-shot %d ns/op over %d points",
			w.name, paramRes.NsPerOp(), sweepStats.ParamRegions, sessRes.NsPerOp(), oneRes.NsPerOp(), nPoints)
	}
	return rows
}

// TestParametricSweepGate is the CI bench-smoke gate for the parametric
// layer: the full 256-point sweeps bit-match the concrete solver with zero
// fallbacks, and the formula answers repeated queries at least 10x faster
// than the session-warm path with zero allocations per eval.
func TestParametricSweepGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs timed benchmarks")
	}
	parametricRows(t)
}

// BenchmarkParamEval measures the hot path the tentpole promises: one
// piecewise-linear formula evaluation per repeated WCET query. ReportAllocs
// documents the zero-allocation property (gated in parametricRows and in
// internal/ipet's TestParamEvalNoAllocs).
func BenchmarkParamEval(b *testing.B) {
	opts := ipet.DefaultOptions()
	opts.Workers = 1
	opts.PruneNullSets = false
	dhryBM, ok := ByName("dhry")
	if !ok {
		b.Fatal("unknown benchmark dhry")
	}
	built, err := dhryBM.Build(opts)
	if err != nil {
		b.Fatal(err)
	}
	symText := strings.Replace(dhryBM.Annotations, "loop 1: 30 .. 30", "loop 1: 30 .. n1", 1)
	file, err := constraint.Parse(symText)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := ipet.Prepare(built.CFG, dhryBM.Root, opts)
	if err != nil {
		b.Fatal(err)
	}
	pb, err := sess.Parametrize(file, []ipet.ParamSpec{{Name: "n1", Lo: 30, Hi: 285}})
	if err != nil {
		b.Fatal(err)
	}
	points := make([][]int64, 256)
	for i := range points {
		points[i] = []int64{30 + int64(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := pb.Eval(points[i%len(points)]); !ok {
			b.Fatal("uncovered point inside the swept domain")
		}
	}
}

// TestParametricDifferentialGrid is the CI differential gate: on dhry and
// des, the piecewise-linear formula is replayed against the fully
// independent one-shot concrete solver (fresh Analyzer per point, no shared
// session state) over a 16-point grid of the symbolic loop bound.
func TestParametricDifferentialGrid(t *testing.T) {
	opts := ipet.DefaultOptions()
	opts.Workers = 1
	for _, tc := range []struct {
		bench  string
		old    string
		lo, hi int64
	}{
		{"dhry", "loop 1: 30 .. 30", 30, 45},
		{"des", "loop 1: 56 .. 56", 56, 71},
	} {
		bm, ok := ByName(tc.bench)
		if !ok {
			t.Fatalf("unknown benchmark %q", tc.bench)
		}
		built, err := bm.Build(opts)
		if err != nil {
			t.Fatal(err)
		}
		symText := strings.Replace(bm.Annotations, tc.old, strings.Split(tc.old, "..")[0]+".. n1", 1)
		if symText == bm.Annotations {
			t.Fatalf("%s: no loop bound %q to replace", tc.bench, tc.old)
		}
		file, err := constraint.Parse(symText)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := ipet.Prepare(built.CFG, bm.Root, opts)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := sess.Parametrize(file, []ipet.ParamSpec{{Name: "n1", Lo: tc.lo, Hi: tc.hi}})
		if err != nil {
			t.Fatalf("%s: Parametrize: %v", tc.bench, err)
		}
		for theta := tc.lo; theta <= tc.hi; theta++ {
			bound, err := file.Bind(map[string]int64{"n1": theta})
			if err != nil {
				t.Fatal(err)
			}
			an, err := ipet.New(built.CFG, bm.Root, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := an.Apply(bound); err != nil {
				t.Fatal(err)
			}
			want, wantErr := an.Estimate()
			got, gotErr := pb.EstimateAt([]int64{theta})
			switch {
			case wantErr != nil:
				var inf, gotInf *ipet.InfeasibleError
				if !errors.As(wantErr, &inf) {
					t.Fatalf("%s n1=%d: oracle: %v", tc.bench, theta, wantErr)
				}
				if !errors.As(gotErr, &gotInf) {
					t.Errorf("%s n1=%d: oracle infeasible but formula said %v", tc.bench, theta, gotErr)
				}
			case gotErr != nil:
				t.Errorf("%s n1=%d: EstimateAt: %v", tc.bench, theta, gotErr)
			case got.WCET.Cycles != want.WCET.Cycles || got.BCET.Cycles != want.BCET.Cycles:
				t.Errorf("%s n1=%d: formula [%d, %d] != oracle [%d, %d]",
					tc.bench, theta, got.BCET.Cycles, got.WCET.Cycles, want.BCET.Cycles, want.WCET.Cycles)
			}
		}
		st := pb.Stats()
		t.Logf("%s: %d regions, %d formula evals, %d fallbacks over the grid",
			tc.bench, st.ParamRegions, st.FormulaEvals, st.ParamFallbacks)
	}
}
