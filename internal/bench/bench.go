// Package bench contains the benchmark suite of Table I: the thirteen
// routines the paper evaluates (check_data, fft, piksrt, des, line, circle,
// jpeg_fdct_islow, jpeg_idct_islow, recon, fullsearch, whetstone, dhry,
// matgen), rewritten in the MC dialect, together with their functionality
// annotations and the hand-identified extreme-case data sets that
// Experiments 1 and 2 require.
package bench

import (
	"fmt"
	"sort"

	"cinderella/internal/asm"
	"cinderella/internal/cc"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/eval"
	"cinderella/internal/ipet"
	"cinderella/internal/march"
	"cinderella/internal/sim"
)

// Benchmark is one Table I routine.
type Benchmark struct {
	// Name is the paper's row label.
	Name string
	// Desc is the Table I description.
	Desc string
	// Root is the routine whose bound is estimated.
	Root string
	// Source is the MC program text.
	Source string
	// Annotations is the functionality constraint file.
	Annotations string
	// WorstSetup and BestSetup install the extreme-case data sets. Nil
	// when the routine's timing is input-independent.
	WorstSetup func(m *sim.Machine, exe *asm.Executable) error
	BestSetup  func(m *sim.Machine, exe *asm.Executable) error
	// Check validates functional correctness after a plain run of Root
	// with the worst-case data (return value in rv).
	Check func(m *sim.Machine, exe *asm.Executable, rv int32) error
	// PaperLines and PaperSets reproduce the Table I columns for
	// comparison in EXPERIMENTS.md.
	PaperLines int
	PaperSets  int
}

var registry []*Benchmark

func register(b *Benchmark) { registry = append(registry, b) }

// All returns the benchmark suite in Table I order.
func All() []*Benchmark {
	out := make([]*Benchmark, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return tableOrder(out[i].Name) < tableOrder(out[j].Name) })
	return out
}

// ByName returns one benchmark.
func ByName(name string) (*Benchmark, bool) {
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	return nil, false
}

var tableIOrder = []string{
	"check_data", "fft", "piksrt", "des", "line", "circle",
	"jpeg_fdct_islow", "jpeg_idct_islow", "recon", "fullsearch",
	"whetstone", "dhry", "matgen",
}

func tableOrder(name string) int {
	for i, n := range tableIOrder {
		if n == name {
			return i
		}
	}
	return len(tableIOrder)
}

// Built bundles everything needed to run experiments on one benchmark.
type Built struct {
	Bench *Benchmark
	Exe   *asm.Executable
	CFG   *cfg.Program
	An    *ipet.Analyzer
	Est   *ipet.Estimate
	// SourceLines counts non-empty source lines (the Table I Lines column
	// for our MC rewrite).
	SourceLines int
}

// Build compiles and analyzes a benchmark with the given options.
func (b *Benchmark) Build(opts ipet.Options) (*Built, error) {
	exe, _, err := cc.Build(b.Source)
	if err != nil {
		return nil, fmt.Errorf("bench %s: compile: %w", b.Name, err)
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		return nil, fmt.Errorf("bench %s: cfg: %w", b.Name, err)
	}
	an, err := ipet.New(prog, b.Root, opts)
	if err != nil {
		return nil, fmt.Errorf("bench %s: analyze: %w", b.Name, err)
	}
	file, err := constraint.Parse(b.Annotations)
	if err != nil {
		return nil, fmt.Errorf("bench %s: annotations: %w", b.Name, err)
	}
	if err := an.Apply(file); err != nil {
		return nil, fmt.Errorf("bench %s: apply: %w", b.Name, err)
	}
	est, err := an.Estimate()
	if err != nil {
		return nil, fmt.Errorf("bench %s: estimate: %w", b.Name, err)
	}
	return &Built{
		Bench:       b,
		Exe:         exe,
		CFG:         prog,
		An:          an,
		Est:         est,
		SourceLines: countLines(b.Source),
	}, nil
}

func countLines(src string) int {
	n := 0
	blank := true
	for _, c := range src {
		switch c {
		case '\n':
			if !blank {
				n++
			}
			blank = true
		case ' ', '\t', '\r':
		default:
			blank = false
		}
	}
	if !blank {
		n++
	}
	return n
}

// setup adapts a benchmark setup function to the eval.Setup signature.
func (bt *Built) setup(f func(m *sim.Machine, exe *asm.Executable) error) eval.Setup {
	if f == nil {
		return nil
	}
	return func(m *sim.Machine) error { return f(m, bt.Exe) }
}

// Costs returns the per-function block cost map for the eval harness.
func (bt *Built) Costs() map[string][]march.BlockCost {
	out := map[string][]march.BlockCost{}
	for name := range bt.CFG.Funcs {
		out[name] = bt.An.BlockCosts(name)
	}
	return out
}

// EstimatedBound returns the analysis bound as an eval interval.
func (bt *Built) EstimatedBound() eval.Bound {
	return eval.Bound{Lo: bt.Est.BCET.Cycles, Hi: bt.Est.WCET.Cycles}
}

// CalculatedBound runs the Experiment 1 protocol.
func (bt *Built) CalculatedBound() (eval.Bound, error) {
	return eval.CalculatedBound(bt.Exe, bt.CFG, bt.Bench.Root, bt.Costs(),
		bt.setup(bt.Bench.WorstSetup), bt.setup(bt.Bench.BestSetup), sim.Config{})
}

// MeasuredBound runs the Experiment 2 protocol.
func (bt *Built) MeasuredBound() (eval.Bound, error) {
	return eval.MeasuredBound(bt.Exe, bt.Bench.Root,
		bt.setup(bt.Bench.WorstSetup), bt.setup(bt.Bench.BestSetup), sim.Config{})
}

// RunWorst executes the routine once with the worst-case data and applies
// the benchmark's functional check.
func (bt *Built) RunWorst() error {
	m, err := sim.New(bt.Exe, sim.Config{})
	if err != nil {
		return err
	}
	if bt.Bench.WorstSetup != nil {
		if err := bt.Bench.WorstSetup(m, bt.Exe); err != nil {
			return err
		}
	}
	rv, err := m.CallNamed(bt.Bench.Root)
	if err != nil {
		return err
	}
	if bt.Bench.Check != nil {
		return bt.Bench.Check(m, bt.Exe, rv)
	}
	return nil
}
