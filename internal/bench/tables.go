package bench

import (
	"fmt"
	"io"
	"strings"

	"cinderella/internal/eval"
	"cinderella/internal/ipet"
)

// Row collects every number the three tables report for one benchmark.
type Row struct {
	Name string
	Desc string
	// Lines is our MC source size; PaperLines/PaperSets echo Table I.
	Lines      int
	PaperLines int
	Sets       int
	PaperSets  int
	PrunedSets int
	// Estimated, Calculated and Measured are the three bounds.
	Estimated  eval.Bound
	Calculated eval.Bound
	Measured   eval.Bound
	// LPSolves/Branches reproduce the Section VI solver observation.
	LPSolves     int
	Branches     int
	RootIntegral bool
}

// PessimismCalc returns the Table II pessimism pair
// [(Cl-El)/Cl, (Eu-Cu)/Cu].
func (r *Row) PessimismCalc() (lo, hi float64) {
	return eval.Pessimism(r.Estimated, r.Calculated)
}

// PessimismMeas returns the Table III pessimism pair.
func (r *Row) PessimismMeas() (lo, hi float64) {
	return eval.Pessimism(r.Estimated, r.Measured)
}

// RunAll builds and evaluates the full suite, producing one Row per
// benchmark.
func RunAll(opts ipet.Options) ([]*Row, error) {
	var rows []*Row
	for _, b := range All() {
		bt, err := b.Build(opts)
		if err != nil {
			return nil, err
		}
		calc, err := bt.CalculatedBound()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		meas, err := bt.MeasuredBound()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		rows = append(rows, &Row{
			Name:         b.Name,
			Desc:         b.Desc,
			Lines:        bt.SourceLines,
			PaperLines:   b.PaperLines,
			Sets:         bt.Est.NumSets,
			PaperSets:    b.PaperSets,
			PrunedSets:   bt.Est.PrunedSets,
			Estimated:    bt.EstimatedBound(),
			Calculated:   calc,
			Measured:     meas,
			LPSolves:     bt.Est.LPSolves,
			Branches:     bt.Est.Branches,
			RootIntegral: bt.Est.AllRootIntegral,
		})
	}
	return rows, nil
}

// WriteTableI renders the Table I analog: the benchmark set with sizes and
// constraint-set counts.
func WriteTableI(w io.Writer, rows []*Row) {
	fmt.Fprintln(w, "TABLE I: SET OF BENCHMARK EXAMPLES")
	fmt.Fprintf(w, "%-17s %-42s %6s %6s %5s %6s\n",
		"Function", "Description", "Lines", "(pap.)", "Sets", "(pap.)")
	for _, r := range rows {
		sets := fmt.Sprintf("%d", r.Sets)
		if r.PrunedSets > 0 {
			sets = fmt.Sprintf("%d)%d", r.Sets, r.Sets-r.PrunedSets)
		}
		fmt.Fprintf(w, "%-17s %-42s %6d %6d %5s %6d\n",
			r.Name, r.Desc, r.Lines, r.PaperLines, sets, r.PaperSets)
	}
}

// WriteTableII renders the Table II analog: estimated vs calculated bound
// and the path-analysis pessimism.
func WriteTableII(w io.Writer, rows []*Row) {
	fmt.Fprintln(w, "TABLE II: PESSIMISM IN PATH ANALYSIS")
	fmt.Fprintf(w, "%-17s %-24s %-24s %s\n",
		"Function", "Estimated Bound", "Calculated Bound", "Pessimism")
	for _, r := range rows {
		lo, hi := r.PessimismCalc()
		fmt.Fprintf(w, "%-17s %-24s %-24s [%.2f, %.2f]\n",
			r.Name, bound(r.Estimated), bound(r.Calculated), lo, hi)
	}
}

// WriteTableIII renders the Table III analog: estimated vs measured bound
// and the hardware-model pessimism.
func WriteTableIII(w io.Writer, rows []*Row) {
	fmt.Fprintln(w, "TABLE III: DISCREPANCY BETWEEN THE ESTIMATED AND THE MEASURED BOUND")
	fmt.Fprintf(w, "%-17s %-24s %-24s %s\n",
		"Function", "Estimated Bound", "Measured Bound", "Pessimism")
	for _, r := range rows {
		lo, hi := r.PessimismMeas()
		fmt.Fprintf(w, "%-17s %-24s %-24s [%.2f, %.2f]\n",
			r.Name, bound(r.Estimated), bound(r.Measured), lo, hi)
	}
}

// WriteSolverStats renders the Section VI solver observation (E-S1).
func WriteSolverStats(w io.Writer, rows []*Row) {
	fmt.Fprintln(w, "ILP SOLVER BEHAVIOUR (Section VI observation)")
	fmt.Fprintf(w, "%-17s %9s %9s %s\n", "Function", "LP calls", "Branches", "Root integral")
	for _, r := range rows {
		fmt.Fprintf(w, "%-17s %9d %9d %v\n", r.Name, r.LPSolves, r.Branches, r.RootIntegral)
	}
}

func bound(b eval.Bound) string {
	return fmt.Sprintf("[%s, %s]", group(b.Lo), group(b.Hi))
}

// group renders an integer with thousands separators, as the paper's
// tables do.
func group(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}
