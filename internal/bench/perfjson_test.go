package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/ipet"
)

// estimateWorkload is one named analyzer the perf artifact measures.
type estimateWorkload struct {
	name string
	an   *ipet.Analyzer
}

// explosionWorkload builds the n-diamond path-explosion chain (2^n
// functionality sets) used by examples/pathexplosion, as an analyzer.
func explosionWorkload(n int, opts ipet.Options) (*ipet.Analyzer, error) {
	var sb, ab strings.Builder
	sb.WriteString("main:\n")
	ab.WriteString("func main {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "        beq r1, r0, .La%d\n", i)
		fmt.Fprintf(&sb, "        mul r2, r2, r2\n")
		fmt.Fprintf(&sb, "        jmp .Lb%d\n", i)
		fmt.Fprintf(&sb, ".La%d:  addi r2, r2, 1\n", i)
		fmt.Fprintf(&sb, ".Lb%d:  addi r3, r3, 1\n", i)
		fmt.Fprintf(&ab, "    (x%d = 1 & x%d = 0) | (x%d = 0 & x%d = 1)\n",
			3*i+2, 3*i+3, 3*i+2, 3*i+3)
	}
	sb.WriteString("        halt\n")
	ab.WriteString("}\n")
	exe, err := asm.Assemble(sb.String())
	if err != nil {
		return nil, err
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		return nil, err
	}
	an, err := ipet.New(prog, "main", opts)
	if err != nil {
		return nil, err
	}
	f, err := constraint.Parse(ab.String())
	if err != nil {
		return nil, err
	}
	if err := an.Apply(f); err != nil {
		return nil, err
	}
	return an, nil
}

// TestWriteEstimateBenchJSON measures steady-state Estimate cost on the
// multi-set workloads — dhry, des, and the 64-set path-explosion chain —
// with the incremental machinery off (the exhaustive cold solver) and on,
// and writes the rows to BENCH_estimate.json. The artifact lands in
// $CINDERELLA_BENCH_JSON when set (CI and refresh runs), otherwise in a
// temp dir. On the 64-set workload the incremental path must spend at most
// half the cold path's simplex pivots.
func TestWriteEstimateBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs timed benchmarks")
	}
	mode := func(incremental bool) ipet.Options {
		opts := ipet.DefaultOptions()
		opts.Workers = 1
		if !incremental {
			opts.DedupSets, opts.WarmStart, opts.IncumbentPrune = false, false, false
		}
		return opts
	}
	var workloads []estimateWorkload
	for _, incremental := range []bool{false, true} {
		suffix := "/cold"
		if incremental {
			suffix = "/incremental"
		}
		for _, name := range []string{"dhry", "des"} {
			bm, ok := ByName(name)
			if !ok {
				t.Fatalf("unknown benchmark %q", name)
			}
			opts := mode(incremental)
			opts.PruneNullSets = false // dhry presents all 8 sets
			bt, err := bm.Build(opts)
			if err != nil {
				t.Fatal(err)
			}
			workloads = append(workloads, estimateWorkload{name + suffix, bt.An})
		}
		an, err := explosionWorkload(6, mode(incremental))
		if err != nil {
			t.Fatal(err)
		}
		workloads = append(workloads, estimateWorkload{"explosion64" + suffix, an})
	}

	recs := make([]EstimatePerf, 0, len(workloads))
	for _, w := range workloads {
		var est *ipet.Estimate
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				est, err = w.an.Estimate()
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		rec := EstimatePerf{
			Name:        w.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: float64(res.AllocsPerOp()),
		}
		rec.FillFromEstimate(est)
		recs = append(recs, rec)
	}

	byName := map[string]EstimatePerf{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	coldP, incrP := byName["explosion64/cold"].Pivots, byName["explosion64/incremental"].Pivots
	if incrP*2 > coldP {
		t.Errorf("explosion64 pivots: cold %d, incremental %d — want at least a 2x reduction", coldP, incrP)
	}
	for _, name := range []string{"dhry", "des", "explosion64"} {
		c, i := byName[name+"/cold"], byName[name+"/incremental"]
		if c.WCET != i.WCET || c.BCET != i.BCET {
			t.Errorf("%s: incremental bound [%d,%d] != cold [%d,%d]",
				name, i.BCET, i.WCET, c.BCET, c.WCET)
		}
	}

	path := os.Getenv("CINDERELLA_BENCH_JSON")
	if path == "" {
		path = filepath.Join(t.TempDir(), "BENCH_estimate.json")
	}
	if err := WriteEstimatePerfFile(path, recs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []EstimatePerf
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if len(back) != len(recs) {
		t.Fatalf("artifact has %d rows, want %d", len(back), len(recs))
	}
	t.Logf("wrote %s (%d rows); explosion64 pivots cold %d -> incremental %d",
		path, len(recs), coldP, incrP)
}
