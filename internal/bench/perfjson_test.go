package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cinderella/internal/asm"
	"cinderella/internal/cfg"
	"cinderella/internal/constraint"
	"cinderella/internal/ipet"
)

// estimateWorkload is one named analyzer the perf artifact measures.
type estimateWorkload struct {
	name string
	an   *ipet.Analyzer
}

// explosionProgram builds the n-diamond path-explosion chain (2^n
// functionality sets) as a CFG plus annotation text; the generator itself
// is the exported ExplosionAsm.
func explosionProgram(n int) (*cfg.Program, string, error) {
	asmText, annots := ExplosionAsm(n)
	exe, err := asm.Assemble(asmText)
	if err != nil {
		return nil, "", err
	}
	prog, err := cfg.Build(exe)
	if err != nil {
		return nil, "", err
	}
	return prog, annots, nil
}

// explosionWorkload is explosionProgram wrapped as a one-shot analyzer.
func explosionWorkload(n int, opts ipet.Options) (*ipet.Analyzer, error) {
	prog, annots, err := explosionProgram(n)
	if err != nil {
		return nil, err
	}
	an, err := ipet.New(prog, "main", opts)
	if err != nil {
		return nil, err
	}
	f, err := constraint.Parse(annots)
	if err != nil {
		return nil, err
	}
	if err := an.Apply(f); err != nil {
		return nil, err
	}
	return an, nil
}

// TestWriteEstimateBenchJSON measures steady-state Estimate cost on the
// multi-set workloads — dhry, des, and the 64-set path-explosion chain —
// with the incremental machinery off (the exhaustive cold solver) and on,
// and writes the rows to BENCH_estimate.json. The artifact lands in
// $CINDERELLA_BENCH_JSON when set (CI and refresh runs), otherwise in a
// temp dir. On the 64-set workload the incremental path must spend at most
// half the cold path's simplex pivots.
// perfWorkloads builds the cold/incremental analyzer pairs the perf
// artifact and the CI pivot-regression gate both measure.
func perfWorkloads(t *testing.T) []estimateWorkload {
	t.Helper()
	mode := func(incremental bool) ipet.Options {
		opts := ipet.DefaultOptions()
		opts.Workers = 1
		if !incremental {
			opts.DedupSets, opts.WarmStart, opts.IncumbentPrune = false, false, false
		}
		return opts
	}
	var workloads []estimateWorkload
	for _, incremental := range []bool{false, true} {
		suffix := "/cold"
		if incremental {
			suffix = "/incremental"
		}
		for _, name := range []string{"dhry", "des"} {
			bm, ok := ByName(name)
			if !ok {
				t.Fatalf("unknown benchmark %q", name)
			}
			opts := mode(incremental)
			opts.PruneNullSets = false // dhry presents all 8 sets
			bt, err := bm.Build(opts)
			if err != nil {
				t.Fatal(err)
			}
			workloads = append(workloads, estimateWorkload{name + suffix, bt.An})
		}
		an, err := explosionWorkload(6, mode(incremental))
		if err != nil {
			t.Fatal(err)
		}
		workloads = append(workloads, estimateWorkload{"explosion64" + suffix, an})
	}
	// Certified rows: the incremental configuration plus the exact-rational
	// verification layer, so the artifact records certification overhead
	// against the matching /incremental row.
	certOpts := mode(true)
	certOpts.Certify = true
	certOpts.PruneNullSets = false
	for _, name := range []string{"dhry", "des"} {
		bm, ok := ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		bt, err := bm.Build(certOpts)
		if err != nil {
			t.Fatal(err)
		}
		workloads = append(workloads, estimateWorkload{name + "/certified", bt.An})
	}
	exOpts := mode(true)
	exOpts.Certify = true
	exAn, err := explosionWorkload(6, exOpts)
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, estimateWorkload{"explosion64/certified", exAn})
	return workloads
}

func TestWriteEstimateBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs timed benchmarks")
	}
	workloads := perfWorkloads(t)

	recs := make([]EstimatePerf, 0, len(workloads))
	for _, w := range workloads {
		var est *ipet.Estimate
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				est, err = w.an.Estimate()
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		rec := EstimatePerf{
			Name:        w.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: float64(res.AllocsPerOp()),
		}
		rec.FillFromEstimate(est)
		recs = append(recs, rec)
	}

	byName := map[string]EstimatePerf{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	coldP, incrP := byName["explosion64/cold"].Pivots, byName["explosion64/incremental"].Pivots
	if incrP*2 > coldP {
		t.Errorf("explosion64 pivots: cold %d, incremental %d — want at least a 2x reduction", coldP, incrP)
	}
	for _, name := range []string{"dhry", "des", "explosion64"} {
		c, i := byName[name+"/cold"], byName[name+"/incremental"]
		if c.WCET != i.WCET || c.BCET != i.BCET {
			t.Errorf("%s: incremental bound [%d,%d] != cold [%d,%d]",
				name, i.BCET, i.WCET, c.BCET, c.WCET)
		}
	}
	for _, name := range []string{"dhry", "des", "explosion64"} {
		u, c := byName[name+"/incremental"], byName[name+"/certified"]
		if !c.Certified {
			t.Errorf("%s/certified row is not certified: %+v", name, c)
		}
		if c.WCET != u.WCET || c.BCET != u.BCET {
			t.Errorf("%s: certified bound [%d,%d] != uncertified [%d,%d]",
				name, c.BCET, c.WCET, u.BCET, u.WCET)
		}
		if c.CertFailures != 0 {
			t.Errorf("%s/certified: %d certificate failures on a healthy solver", name, c.CertFailures)
		}
	}

	recs = append(recs, sessionRows(t)...)
	recs = append(recs, parametricRows(t)...)
	recs = append(recs, prepareRows(t)...)

	path := os.Getenv("CINDERELLA_BENCH_JSON")
	if path == "" {
		path = filepath.Join(t.TempDir(), "BENCH_estimate.json")
	}
	if err := WriteEstimatePerfFile(path, recs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []EstimatePerf
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if len(back) != len(recs) {
		t.Fatalf("artifact has %d rows, want %d", len(back), len(recs))
	}
	t.Logf("wrote %s (%d rows); explosion64 pivots cold %d -> incremental %d",
		path, len(recs), coldP, incrP)
}

// TestCertifiedBenchmarksIdentical is the certification bit-identity gate
// on the real Table I programs: a certified dhry/des analysis must report
// exactly the bounds, counts, and winning sets of the uncertified one at
// every worker count — the exact layer only confirms, never moves, a
// healthy solver's answer.
func TestCertifiedBenchmarksIdentical(t *testing.T) {
	for _, name := range []string{"dhry", "des"} {
		bm, ok := ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		plainOpts := ipet.DefaultOptions()
		plainOpts.Workers = 1
		plainBuilt, err := bm.Build(plainOpts)
		if err != nil {
			t.Fatal(err)
		}
		plain := plainBuilt.Est
		for _, workers := range []int{1, 4} {
			opts := ipet.DefaultOptions()
			opts.Workers = workers
			opts.Certify = true
			bt, err := bm.Build(opts)
			if err != nil {
				t.Fatal(err)
			}
			cert := bt.Est
			if !cert.WCET.Certified || !cert.BCET.Certified {
				t.Errorf("%s workers=%d: bounds not certified: %+v / %+v",
					name, workers, cert.WCET, cert.BCET)
			}
			if cert.Stats.CertFailures != 0 {
				t.Errorf("%s workers=%d: %d certificate failures on a healthy solver",
					name, workers, cert.Stats.CertFailures)
			}
			// Strip the certificate-layer fields; everything else must match.
			w, b := cert.WCET, cert.BCET
			w.Certified, w.RecheckedSets = false, 0
			b.Certified, b.RecheckedSets = false, 0
			if !reflect.DeepEqual(w, plain.WCET) || !reflect.DeepEqual(b, plain.BCET) {
				t.Errorf("%s workers=%d: certified report diverges from uncertified:\ncert WCET:  %+v\nplain WCET: %+v\ncert BCET:  %+v\nplain BCET: %+v",
					name, workers, w, plain.WCET, b, plain.BCET)
			}
		}
	}
}

// sessionRows measures the prepared-session workflow: one session estimates
// a two-scenario rotation (the benchmark's annotations and a one-disjunct
// perturbation) after warm-up, against the one-shot path that rebuilds an
// Analyzer from the CFG for every query. The warm session call must be at
// least 3x cheaper than the one-shot in both ns/op and simplex pivots, and
// its BoundReports must be bit-identical to the one-shot's.
func sessionRows(t *testing.T) []EstimatePerf {
	t.Helper()
	workloads, opts := sessionBenchWorkloads(t)
	var rows []EstimatePerf
	for _, w := range workloads {
		files := w.files
		oneShot := func(si int) *ipet.Estimate {
			an, err := ipet.New(w.prog, w.root, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := an.Apply(files[si]); err != nil {
				t.Fatal(err)
			}
			est, err := an.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			return est
		}
		ans, warm := warmSession(t, w, opts)
		ref := [2]*ipet.Estimate{oneShot(0), oneShot(1)}
		for si := range files {
			if !reflect.DeepEqual(warm[si].WCET, ref[si].WCET) || !reflect.DeepEqual(warm[si].BCET, ref[si].BCET) {
				t.Errorf("%s scenario %d: session report diverges from one-shot: [%d,%d] vs [%d,%d]",
					w.name, si, warm[si].BCET.Cycles, warm[si].WCET.Cycles, ref[si].BCET.Cycles, ref[si].WCET.Cycles)
			}
		}
		warmPivots := warm[0].Stats.Pivots + warm[1].Stats.Pivots
		coldPivots := ref[0].Stats.Pivots + ref[1].Stats.Pivots
		if warmPivots*3 > coldPivots {
			t.Errorf("%s: warm session pivots %d vs one-shot %d — want at least a 3x reduction",
				w.name, warmPivots, coldPivots)
		}

		sessRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ans[i%2].Estimate(); err != nil {
					b.Fatal(err)
				}
			}
		})
		oneRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				an, err := ipet.New(w.prog, w.root, opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := an.Apply(files[i%2]); err != nil {
					b.Fatal(err)
				}
				if _, err := an.Estimate(); err != nil {
					b.Fatal(err)
				}
			}
		})
		if float64(sessRes.NsPerOp())*3 > float64(oneRes.NsPerOp()) {
			t.Errorf("%s: warm session %d ns/op vs one-shot %d ns/op — want at least 3x",
				w.name, sessRes.NsPerOp(), oneRes.NsPerOp())
		}

		oneRow := EstimatePerf{
			Name:        w.name + "/oneshot",
			NsPerOp:     float64(oneRes.NsPerOp()),
			AllocsPerOp: float64(oneRes.AllocsPerOp()),
		}
		oneRow.FillFromEstimate(ref[1])
		sessRow := EstimatePerf{
			Name:        w.name + "/session",
			NsPerOp:     float64(sessRes.NsPerOp()),
			AllocsPerOp: float64(sessRes.AllocsPerOp()),
		}
		sessRow.FillFromEstimate(warm[1])
		rows = append(rows, oneRow, sessRow)
		t.Logf("%s: session %d ns/op %d pivots vs one-shot %d ns/op %d pivots",
			w.name, sessRes.NsPerOp(), warmPivots, oneRes.NsPerOp(), coldPivots)
	}
	return rows
}

// sessionBench is one prepared-session workload: a program plus two
// annotation scenarios, the benchmark's own and a one-disjunct
// perturbation.
type sessionBench struct {
	name  string
	prog  *cfg.Program
	root  string
	files [2]*constraint.File
}

func sessionBenchWorkloads(t *testing.T) ([]sessionBench, ipet.Options) {
	t.Helper()
	opts := ipet.DefaultOptions()
	opts.Workers = 1
	opts.PruneNullSets = false // match the dhry cold/incremental rows
	// Dominated outcomes depend on the run's incumbent and are never cached,
	// so a session replay would re-prove domination per call; with pruning
	// off every set solves to a cacheable Optimal/Infeasible once. The
	// one-shot baseline runs the same options, keeping the comparison fair.
	opts.IncumbentPrune = false

	parse := func(name, text string) *constraint.File {
		f, err := constraint.Parse(text)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return f
	}

	dhryBM, ok := ByName("dhry")
	if !ok {
		t.Fatal("unknown benchmark dhry")
	}
	dhryBuilt, err := dhryBM.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := strings.Replace(dhryBM.Annotations, "(x23 = 0)", "(x23 <= 0)", 1)
	if perturbed == dhryBM.Annotations {
		t.Fatal("dhry perturbation found nothing to replace")
	}

	desBM, ok := ByName("des")
	if !ok {
		t.Fatal("unknown benchmark des")
	}
	desBuilt, err := desBM.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	desPerturbed := strings.Replace(desBM.Annotations, "x8 = 28", "x8 <= 28", 1)
	if desPerturbed == desBM.Annotations {
		t.Fatal("des perturbation found nothing to replace")
	}

	exProg, exAnnots, err := explosionProgram(6)
	if err != nil {
		t.Fatal(err)
	}
	exPerturbed := strings.Replace(exAnnots, "(x17 = 1", "(x17 <= 1", 1)
	if exPerturbed == exAnnots {
		t.Fatal("explosion perturbation found nothing to replace")
	}

	return []sessionBench{
		{
			name: "dhry", prog: dhryBuilt.CFG, root: dhryBM.Root,
			files: [2]*constraint.File{parse("dhry", dhryBM.Annotations), parse("dhry'", perturbed)},
		},
		{
			name: "des", prog: desBuilt.CFG, root: desBM.Root,
			files: [2]*constraint.File{parse("des", desBM.Annotations), parse("des'", desPerturbed)},
		},
		{
			name: "explosion64", prog: exProg, root: "main",
			files: [2]*constraint.File{parse("explosion64", exAnnots), parse("explosion64'", exPerturbed)},
		},
	}, opts
}

// warmSession runs the session workflow on a workload: one prepared
// session, one analyzer per scenario (the session shares the front end and
// solver caches, the analyzer memoizes its plan), two rotations. The first
// rotation fills the caches; the returned estimates are the warm steady
// state of the second.
func warmSession(t *testing.T, w sessionBench, opts ipet.Options) ([2]*ipet.Analyzer, [2]*ipet.Estimate) {
	t.Helper()
	sess, err := ipet.Prepare(w.prog, w.root, opts)
	if err != nil {
		t.Fatal(err)
	}
	var ans [2]*ipet.Analyzer
	for si := range w.files {
		if ans[si], err = sess.Analyzer(w.files[si]); err != nil {
			t.Fatal(err)
		}
	}
	var warm [2]*ipet.Estimate
	for round := 0; round < 2; round++ {
		for si := range w.files {
			warm[si], err = ans[si].Estimate()
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return ans, warm
}

// TestEstimatePivotRegressionVsCommitted is the CI bench-smoke gate: it
// replays the perf workloads (whose pivot counters are deterministic at
// Workers=1) and fails when one spends far more simplex pivots than the
// committed BENCH_estimate.json row — a solver-work regression that pure
// timing noise could hide. Refresh the artifact after intentional solver
// changes with:
//
//	CINDERELLA_BENCH_JSON=$PWD/BENCH_estimate.json go test -run TestWriteEstimateBenchJSON ./internal/bench/
func TestEstimatePivotRegressionVsCommitted(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the estimate workloads")
	}
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_estimate.json"))
	if os.IsNotExist(err) {
		t.Skip("no committed BENCH_estimate.json")
	}
	if err != nil {
		t.Fatal(err)
	}
	var committed []EstimatePerf
	if err := json.Unmarshal(data, &committed); err != nil {
		t.Fatal(err)
	}
	byName := map[string]EstimatePerf{}
	for _, r := range committed {
		byName[r.Name] = r
	}
	check := func(name string, pivots int) {
		c, ok := byName[name]
		if !ok {
			t.Errorf("committed artifact lacks row %q; refresh BENCH_estimate.json", name)
			return
		}
		// Generous bound: small solver changes legitimately shift pivot
		// counts, the gate is for order-of-magnitude regressions.
		if limit := c.Pivots + c.Pivots/4 + 16; pivots > limit {
			t.Errorf("%s: %d pivots vs committed %d (limit %d) — solver-work regression",
				name, pivots, c.Pivots, limit)
		}
	}
	checkAllocs := func(name string, allocs float64) {
		c, ok := byName[name]
		if !ok || c.AllocsPerOp == 0 {
			return // pivot check already flags a missing row
		}
		// Same spirit as the pivot gate: catch the steady-state solve paths
		// growing per-op allocations (a pooled scratch regressing to fresh
		// slices), not runtime-version jitter.
		if limit := c.AllocsPerOp*1.25 + 64; allocs > limit {
			t.Errorf("%s: %.0f allocs/op vs committed %.0f (limit %.0f) — allocation regression",
				name, allocs, c.AllocsPerOp, limit)
		}
	}

	for _, w := range perfWorkloads(t) {
		// The artifact records the steady state (memoized plan, warm bases
		// built): measure the second Estimate.
		var est *ipet.Estimate
		for i := 0; i < 2; i++ {
			var err error
			if est, err = w.an.Estimate(); err != nil {
				t.Fatal(err)
			}
		}
		check(w.name, est.Stats.Pivots)
		an := w.an
		checkAllocs(w.name, testing.AllocsPerRun(3, func() {
			if _, err := an.Estimate(); err != nil {
				t.Fatal(err)
			}
		}))
	}
	workloads, opts := sessionBenchWorkloads(t)
	for _, w := range workloads {
		_, warm := warmSession(t, w, opts)
		check(w.name+"/session", warm[1].Stats.Pivots)
	}
}
