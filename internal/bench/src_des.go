package bench

import (
	"fmt"

	"cinderella/internal/asm"
	"cinderella/internal/sim"
)

const desSource = `
/* des: the Data Encryption Standard, bit-array formulation with the
 * standard FIPS 46 tables. Encrypts the 64-bit block in pt[] under key[]
 * into ct[]. All permutation tables are 1-based, MSB first. */

int ip[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17,  9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7
};
int fp[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41,  9, 49, 17, 57, 25
};
int etab[48] = {
    32,  1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
     8,  9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32,  1
};
int ptab[32] = {
    16,  7, 20, 21, 29, 12, 28, 17,  1, 15, 23, 26,  5, 18, 31, 10,
     2,  8, 24, 14, 32, 27,  3,  9, 19, 13, 30,  6, 22, 11,  4, 25
};
int pc1[56] = {
    57, 49, 41, 33, 25, 17,  9,  1, 58, 50, 42, 34, 26, 18,
    10,  2, 59, 51, 43, 35, 27, 19, 11,  3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,  7, 62, 54, 46, 38, 30, 22,
    14,  6, 61, 53, 45, 37, 29, 21, 13,  5, 28, 20, 12,  4
};
int pc2[48] = {
    14, 17, 11, 24,  1,  5,  3, 28, 15,  6, 21, 10,
    23, 19, 12,  4, 26,  8, 16,  7, 27, 20, 13,  2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32
};
int shifts[16] = {1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1};

int sbox[512] = {
    /* S1 */
    14,  4, 13,  1,  2, 15, 11,  8,  3, 10,  6, 12,  5,  9,  0,  7,
     0, 15,  7,  4, 14,  2, 13,  1, 10,  6, 12, 11,  9,  5,  3,  8,
     4,  1, 14,  8, 13,  6,  2, 11, 15, 12,  9,  7,  3, 10,  5,  0,
    15, 12,  8,  2,  4,  9,  1,  7,  5, 11,  3, 14, 10,  0,  6, 13,
    /* S2 */
    15,  1,  8, 14,  6, 11,  3,  4,  9,  7,  2, 13, 12,  0,  5, 10,
     3, 13,  4,  7, 15,  2,  8, 14, 12,  0,  1, 10,  6,  9, 11,  5,
     0, 14,  7, 11, 10,  4, 13,  1,  5,  8, 12,  6,  9,  3,  2, 15,
    13,  8, 10,  1,  3, 15,  4,  2, 11,  6,  7, 12,  0,  5, 14,  9,
    /* S3 */
    10,  0,  9, 14,  6,  3, 15,  5,  1, 13, 12,  7, 11,  4,  2,  8,
    13,  7,  0,  9,  3,  4,  6, 10,  2,  8,  5, 14, 12, 11, 15,  1,
    13,  6,  4,  9,  8, 15,  3,  0, 11,  1,  2, 12,  5, 10, 14,  7,
     1, 10, 13,  0,  6,  9,  8,  7,  4, 15, 14,  3, 11,  5,  2, 12,
    /* S4 */
     7, 13, 14,  3,  0,  6,  9, 10,  1,  2,  8,  5, 11, 12,  4, 15,
    13,  8, 11,  5,  6, 15,  0,  3,  4,  7,  2, 12,  1, 10, 14,  9,
    10,  6,  9,  0, 12, 11,  7, 13, 15,  1,  3, 14,  5,  2,  8,  4,
     3, 15,  0,  6, 10,  1, 13,  8,  9,  4,  5, 11, 12,  7,  2, 14,
    /* S5 */
     2, 12,  4,  1,  7, 10, 11,  6,  8,  5,  3, 15, 13,  0, 14,  9,
    14, 11,  2, 12,  4,  7, 13,  1,  5,  0, 15, 10,  3,  9,  8,  6,
     4,  2,  1, 11, 10, 13,  7,  8, 15,  9, 12,  5,  6,  3,  0, 14,
    11,  8, 12,  7,  1, 14,  2, 13,  6, 15,  0,  9, 10,  4,  5,  3,
    /* S6 */
    12,  1, 10, 15,  9,  2,  6,  8,  0, 13,  3,  4, 14,  7,  5, 11,
    10, 15,  4,  2,  7, 12,  9,  5,  6,  1, 13, 14,  0, 11,  3,  8,
     9, 14, 15,  5,  2,  8, 12,  3,  7,  0,  4, 10,  1, 13, 11,  6,
     4,  3,  2, 12,  9,  5, 15, 10, 11, 14,  1,  7,  6,  0,  8, 13,
    /* S7 */
     4, 11,  2, 14, 15,  0,  8, 13,  3, 12,  9,  7,  5, 10,  6,  1,
    13,  0, 11,  7,  4,  9,  1, 10, 14,  3,  5, 12,  2, 15,  8,  6,
     1,  4, 11, 13, 12,  3,  7, 14, 10, 15,  6,  8,  0,  5,  9,  2,
     6, 11, 13,  8,  1,  4, 10,  7,  9,  5,  0, 15, 14,  2,  3, 12,
    /* S8 */
    13,  2,  8,  4,  6, 15, 11,  1, 10,  9,  3, 14,  5,  0, 12,  7,
     1, 15, 13,  8, 10,  3,  7,  4, 12,  5,  6, 11,  0, 14,  9,  2,
     7, 11,  4,  1,  9, 12, 14,  2,  0,  6, 10, 13, 15,  3,  5,  8,
     2,  1, 14,  7,  4, 10,  8, 13, 15, 12,  9,  0,  3,  5,  6, 11
};

int pt[64];
int key[64];
int ct[64];
int subk[16][48];
int lr[64];
int er[48];
int sp[32];
int fo[32];
int cd[56];

int main() { return des(); }

void keyschedule() {
    int i, r, s, j, t1, t2;
    for (i = 0; i < 56; i++) {
        cd[i] = key[pc1[i] - 1];
    }
    for (r = 0; r < 16; r++) {
        s = shifts[r];
        for (j = 0; j < s; j++) {
            t1 = cd[0];
            for (i = 0; i < 27; i++) cd[i] = cd[i + 1];
            cd[27] = t1;
            t2 = cd[28];
            for (i = 28; i < 55; i++) cd[i] = cd[i + 1];
            cd[55] = t2;
        }
        for (i = 0; i < 48; i++) {
            subk[r][i] = cd[pc2[i] - 1];
        }
    }
}

void feistel(int r) {
    int i, b, k, row, col, v;
    for (i = 0; i < 48; i++) {
        er[i] = lr[32 + etab[i] - 1] ^ subk[r][i];
    }
    for (b = 0; b < 8; b++) {
        k = b * 6;
        row = er[k] * 2 + er[k + 5];
        col = er[k + 1] * 8 + er[k + 2] * 4 + er[k + 3] * 2 + er[k + 4];
        v = sbox[b * 64 + row * 16 + col];
        sp[b * 4 + 0] = (v >> 3) & 1;
        sp[b * 4 + 1] = (v >> 2) & 1;
        sp[b * 4 + 2] = (v >> 1) & 1;
        sp[b * 4 + 3] = v & 1;
    }
    for (i = 0; i < 32; i++) {
        fo[i] = sp[ptab[i] - 1];
    }
}

int des() {
    int i, r, t;
    keyschedule();
    for (i = 0; i < 64; i++) {
        lr[i] = pt[ip[i] - 1];
    }
    for (r = 0; r < 16; r++) {
        feistel(r);
        for (i = 0; i < 32; i++) {
            t = lr[32 + i];
            lr[32 + i] = lr[i] ^ fo[i];
            lr[i] = t;
        }
    }
    /* Undo the final swap: the preoutput block is R16 L16. */
    for (i = 0; i < 32; i++) {
        t = lr[i];
        lr[i] = lr[32 + i];
        lr[32 + i] = t;
    }
    for (i = 0; i < 64; i++) {
        ct[i] = lr[fp[i] - 1];
    }
    return ct[0];
}
`

// bits64 expands a 64-bit value MSB-first into 0/1 words.
func bits64(v uint64) []int32 {
	out := make([]int32, 64)
	for i := 0; i < 64; i++ {
		out[i] = int32(v >> (63 - i) & 1)
	}
	return out
}

func init() {
	// The classic FIPS worked example: key 133457799BBCDFF1 encrypting
	// 0123456789ABCDEF yields 85E813540F0AB405.
	const (
		desKey   = 0x133457799BBCDFF1
		desPlain = 0x0123456789ABCDEF
		desWant  = 0x85E813540F0AB405
	)
	setupDES := func(m *sim.Machine, exe *asm.Executable) error {
		if err := writeInts(m, exe, "g_pt", bits64(desPlain)); err != nil {
			return err
		}
		return writeInts(m, exe, "g_key", bits64(desKey))
	}
	register(&Benchmark{
		Name:       "des",
		Desc:       "Data Encryption Standard",
		Root:       "des",
		PaperLines: 192,
		PaperSets:  1,
		Source:     desSource,
		// All loops are fixed-count except the key-schedule rotation,
		// which runs the per-round shift count (1 or 2).
		Annotations: `
func keyschedule {
    loop 1: 56 .. 56
    loop 2: 16 .. 16
    loop 3: 1 .. 2
    loop 4: 27 .. 27
    loop 5: 27 .. 27
    loop 6: 48 .. 48
    ; the shift schedule sums to exactly 28 single rotations (x8 is the
    ; first block of the rotate body)
    x8 = 28
}
func feistel {
    loop 1: 48 .. 48
    loop 2: 8 .. 8
    loop 3: 32 .. 32
}
func des {
    loop 1: 64 .. 64
    loop 2: 16 .. 16
    loop 3: 32 .. 32
    loop 4: 32 .. 32
    loop 5: 64 .. 64
}
`,
		WorstSetup: setupDES,
		BestSetup:  setupDES,
		Check: func(m *sim.Machine, exe *asm.Executable, rv int32) error {
			addr := exe.Symbols["g_ct"]
			var got uint64
			for i := 0; i < 64; i++ {
				v, err := m.ReadWord(addr + uint32(4*i))
				if err != nil {
					return err
				}
				got = got<<1 | uint64(v&1)
			}
			if got != desWant {
				return fmt.Errorf("des: ciphertext %016X, want %016X", got, uint64(desWant))
			}
			return nil
		},
	})
}
